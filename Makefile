# Developer entry points.  `make check` is the CI gate: vet + build + tests
# + race on the protocol-critical packages + a 1-iteration smoke run of the
# hostperf data-plane benchmarks (catches bit-rot in the benchmark harness
# without paying full benchmark time) + a profiler export smoke run.
GO ?= go

.PHONY: check vet build test race bench-smoke bench hostperf docs profile-smoke mem-smoke serve-smoke metrics-smoke

check: vet build test race bench-smoke docs profile-smoke mem-smoke serve-smoke metrics-smoke

# Documentation lint: package doc comments on every Go package, and every
# relative markdown link must resolve (cmd/doccheck, stdlib only).
docs:
	$(GO) run ./cmd/doccheck

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/genima/... ./internal/memsys/... ./internal/core/... \
		./internal/san/... ./internal/vmmc/... ./internal/nodeos/... ./internal/wire/... \
		./internal/sim/... ./internal/metrics/... ./internal/farm/...
	$(GO) test -race -run 'TestFig5RaceSmoke|TestFig5RaceSmokeEventSched|TestFig5ContendedSyncRaceSmoke|TestFrameLeakBothSched' ./internal/bench/

bench-smoke:
	$(GO) test -run '^$$' -bench=. -benchtime=1x ./internal/bench/hostperf/

# Memory smoke: frame-leak assertions after every fig5-small cell (the COW
# frame gauge must return to baseline, on both schedulers) plus the
# paper-scale 4M-point FFT (-full-size), which must complete in host memory
# and release every frame.
mem-smoke:
	CABLES_FULLSIZE=1 $(GO) test -count=1 -run 'TestMemSmoke|TestFrameLeakBothSched' ./internal/bench/

# Simulation-farm soak (docs/SERVE.md): push >= 1000 queued cells through a
# live `cablesim serve` farm, assert the queue genuinely backs up, the
# cache-hit ratio on a repeated sweep, bounded heap, and a clean SIGTERM
# drain with no leaked goroutines.  Gated behind CABLES_SOAK=1 so plain
# `go test ./...` stays fast.
serve-smoke:
	CABLES_SOAK=1 $(GO) test -count=1 -run TestServeSoak -v ./internal/farm/

# Telemetry-plane smoke (docs/OBSERVABILITY.md §7): boot a real farm, run a
# fault-plan sweep twice (miss then hit), scrape GET /metrics, and assert
# the key families, the cache-hit counter, the fresh-only run histogram,
# the sim-event bridge, and the readyz drain flip.  Gated behind
# CABLES_METRICS_SMOKE=1 so plain `go test ./...` stays fast.
metrics-smoke:
	CABLES_METRICS_SMOKE=1 $(GO) test -count=1 -run TestMetricsSmoke -v ./internal/farm/

# Profiler export smoke: run one profiled cell, export the Perfetto
# timeline, and validate it (well-formed JSON, spans nest per thread).
profile-smoke:
	$(GO) run ./cmd/cablesim profile -scale test -apps FFT -procs 4 -o /tmp/cables-profile-smoke.json
	$(GO) run ./cmd/traceck /tmp/cables-profile-smoke.json

# Full host-time benchmark suite; rewrites BENCH_dataplane.json (the perf
# trajectory artifact — commit it so successive PRs can compare).
hostperf:
	$(GO) run ./cmd/cablesim hostperf

# The paper-reproduction benchmarks (virtual time).
bench:
	$(GO) test -bench=. -benchmem .
