// Package repro exposes the experiment harness as Go benchmarks: one bench
// per table and figure of the paper (run them all with
// `go test -bench=. -benchmem`).  Each benchmark regenerates its artifact
// and reports the headline virtual-time quantities as custom metrics, so
// `go test -bench` output doubles as a compact reproduction log.
//
// Benchmarks default to the fast "test" problem scale; set
// CABLES_SCALE=paper for the evaluation sizes used in EXPERIMENTS.md.
package repro

import (
	"io"
	"os"
	"testing"

	"cables/internal/apps/appapi"
	"cables/internal/apps/fft"
	"cables/internal/apps/omp"
	"cables/internal/bench"
	"cables/internal/bench/hostperf"
	cables "cables/internal/core"
	"cables/internal/openmp"
	"cables/internal/sim"
)

func scale() bench.Scale {
	if os.Getenv("CABLES_SCALE") == "paper" {
		return bench.ScalePaper
	}
	return bench.ScaleTest
}

// BenchmarkTable3_VMMCCosts regenerates Table 3 (basic VMMC costs).
func BenchmarkTable3_VMMCCosts(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.Table3(io.Discard)
	}
}

// BenchmarkTable4_BasicEvents regenerates Table 4 (CableS basic-event
// costs with breakdowns).
func BenchmarkTable4_BasicEvents(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.Table4(io.Discard)
	}
}

// BenchmarkTable5_PthreadsPrograms regenerates Table 5 (PN, PC, PIPE and
// the OpenMP programs with per-operation costs).
func BenchmarkTable5_PthreadsPrograms(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.Table5(io.Discard, scale(), 1)
	}
}

// BenchmarkTable6_OpenMPSpeedups regenerates Table 6 (OpenMP SPLASH-2
// speedups on 4/8/16 processors).
func BenchmarkTable6_OpenMPSpeedups(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.Table6(io.Discard, scale(), 1)
	}
}

// benchFig5App runs one application of Figure 5 on both systems at the
// given processor count and reports the parallel-section virtual times.
func benchFig5App(b *testing.B, app string, procs int) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		g, gerr := bench.RunApp(app, bench.BackendGenima, procs, scale(), nil)
		c, cerr := bench.RunApp(app, bench.BackendCables, procs, scale(), nil)
		if i == b.N-1 {
			if gerr == nil {
				b.ReportMetric(g.Parallel.Millis(), "genima-vms")
			}
			if cerr == nil {
				b.ReportMetric(c.Parallel.Millis(), "cables-vms")
				b.ReportMetric(c.MisplacedPct(), "misplaced-%")
			}
		}
	}
}

// BenchmarkFig5_* regenerate Figure 5 (one per application, at 8
// processors; the cablesim CLI sweeps the full 1..32 range).

func BenchmarkFig5_FFT(b *testing.B)      { benchFig5App(b, "FFT", 8) }
func BenchmarkFig5_LU(b *testing.B)       { benchFig5App(b, "LU", 8) }
func BenchmarkFig5_OCEAN(b *testing.B)    { benchFig5App(b, "OCEAN", 8) }
func BenchmarkFig5_RADIX(b *testing.B)    { benchFig5App(b, "RADIX", 8) }
func BenchmarkFig5_WATER(b *testing.B)    { benchFig5App(b, "WATER-SPATIAL", 8) }
func BenchmarkFig5_WATERFL(b *testing.B)  { benchFig5App(b, "WATER-SPAT-FL", 8) }
func BenchmarkFig5_VOLREND(b *testing.B)  { benchFig5App(b, "VOLREND", 8) }
func BenchmarkFig5_RAYTRACE(b *testing.B) { benchFig5App(b, "RAYTRACE", 8) }

// BenchmarkFig6_Misplacement regenerates Figure 6's metric across all
// applications at 8 processors on CableS.
func BenchmarkFig6_Misplacement(b *testing.B) {
	for i := 0; i < b.N; i++ {
		total := 0.0
		for _, app := range bench.AppNames {
			res, err := bench.RunApp(app, bench.BackendCables, 8, scale(), nil)
			if err == nil {
				total += res.MisplacedPct()
			}
		}
		if i == b.N-1 {
			b.ReportMetric(total/float64(len(bench.AppNames)), "avg-misplaced-%")
		}
	}
}

// BenchmarkLimits_Tables1and2 regenerates the registration-limit
// demonstration (Tables 1/2: base system fails, CableS survives).
func BenchmarkLimits_Tables1and2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.Limits(io.Discard)
	}
}

// --- Ablations (DESIGN.md §5) ---

// BenchmarkAblation_MapGranularity4K reruns the worst misplacement victim
// (VOLREND) with 4 KB OS mapping granularity — the paper's planned Linux
// port — and reports that misplacement vanishes.
func BenchmarkAblation_MapGranularity4K(b *testing.B) {
	costs := sim.DefaultCosts()
	costs.MapGranularity = 4 << 10
	for i := 0; i < b.N; i++ {
		res, err := bench.RunApp("VOLREND", bench.BackendCables, 8, scale(), costs)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(res.MisplacedPct(), "misplaced-%")
			b.ReportMetric(res.Parallel.Millis(), "cables-vms")
		}
	}
}

// BenchmarkAblation_RoundRobinPlacement replaces first-touch home placement
// with round-robin in the CableS allocator and measures the damage on a
// single-writer application (FFT).
func BenchmarkAblation_RoundRobinPlacement(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rt := cables.NewM4(cables.M4Config{Procs: 8, ProcsPerNode: 2,
			ArenaBytes: 256 << 20, Placement: "roundrobin"})
		res := runFFTOn(rt)
		if i == b.N-1 {
			b.ReportMetric(res.Parallel.Millis(), "roundrobin-vms")
		}
		rt2 := cables.NewM4(cables.M4Config{Procs: 8, ProcsPerNode: 2, ArenaBytes: 256 << 20})
		res2 := runFFTOn(rt2)
		if i == b.N-1 {
			b.ReportMetric(res2.Parallel.Millis(), "firsttouch-vms")
		}
	}
}

// BenchmarkAblation_CentralVsNativeBarrier compares the pthread_barrier
// extension against the literal mutex+cond barrier across 8 threads.
func BenchmarkAblation_CentralVsNativeBarrier(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rt := cables.New(cables.Config{MaxNodes: 4, ProcsPerNode: 2, CoordinatorMain: true})
		main := rt.Start()
		cb, err := rt.NewCentralBarrier(main.Task, 8)
		if err != nil {
			b.Fatal(err)
		}
		var nat, cen sim.Time
		done := make(chan [2]sim.Time, 8)
		for w := 0; w < 8; w++ {
			rt.Create(main.Task, func(th *cables.Thread) {
				rt.Barrier(th.Task, "align", 8)
				t0 := th.Task.Now()
				rt.Barrier(th.Task, "native", 8)
				t1 := th.Task.Now()
				cb.Wait(th)
				t2 := th.Task.Now()
				done <- [2]sim.Time{t1 - t0, t2 - t1}
			})
		}
		for w := 0; w < 8; w++ {
			d := <-done
			if d[0] > nat {
				nat = d[0]
			}
			if d[1] > cen {
				cen = d[1]
			}
		}
		if i == b.N-1 {
			b.ReportMetric(nat.Micros(), "native-vus")
			b.ReportMetric(cen.Micros(), "central-vus")
		}
	}
}

// BenchmarkAblation_OpenMPPoolWarmup quantifies what thread pooling saves:
// region dispatch on a warm pool vs pool creation with node attaches.
func BenchmarkAblation_OpenMPPoolWarmup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := openmp.New(openmp.Config{Procs: 8, ProcsPerNode: 2})
		main := r.Main()
		t0 := main.Now()
		r.Warmup()
		warm := main.Now() - t0
		t1 := main.Now()
		r.Parallel(func(o *omp.OMP) { o.Task().Compute(10 * sim.Microsecond) })
		region := main.Now() - t1
		r.Close()
		if i == b.N-1 {
			b.ReportMetric(warm.Millis(), "pool-create-vms")
			b.ReportMetric(region.Millis(), "warm-region-vms")
		}
	}
}

// --- Host performance (wall-clock, DESIGN.md §5b) ---
//
// Unlike everything above, these report simulator host time, not virtual
// time.  The full suite (plus BENCH_dataplane.json) is `cablesim hostperf`;
// the two below are the headline kernel-vs-reference comparison.

// BenchmarkHostperf_DiffKernel benchmarks the word-level diff kernel on a
// fully rewritten page.
func BenchmarkHostperf_DiffKernel(b *testing.B) { hostperf.DiffKernelDense(b) }

// BenchmarkHostperf_DiffReference benchmarks the byte-wise reference diff
// on the same page, for the speedup ratio.
func BenchmarkHostperf_DiffReference(b *testing.B) { hostperf.DiffRefDense(b) }

func runFFTOn(rt *cables.M4Runtime) appapi.Result {
	m := 12
	if scale() == bench.ScalePaper {
		m = 16
	}
	return fft.Run(rt, fft.Config{M: m})
}
