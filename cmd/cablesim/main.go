// Command cablesim regenerates the paper's tables and figures from the
// simulated CableS/GeNIMA systems.
//
// Usage:
//
//	cablesim table3                 # basic VMMC costs
//	cablesim table4                 # CableS basic-event costs + breakdowns
//	cablesim table5 [-scale s]      # pthreads programs, per-op costs
//	cablesim table6 [-scale s]      # OpenMP SPLASH-2 speedups
//	cablesim fig5 [-scale s] [-apps FFT,LU,...] [-procs 1,4,8]
//	cablesim fig6 [-scale s] [-apps ...] [-procs ...] [-gran 4096]
//	cablesim protocols [-scale s] [-apps ...] [-procs 8]  # coherence-protocol comparison
//	cablesim limits                 # Tables 1/2 registration-limit demo
//	cablesim hostperf [-o file] [-compare old.json]  # host-time benchmarks → JSON
//	cablesim counters [-trace] [-profile] [-apps ...] [-procs ...]  # protocol counters
//	cablesim faults -plan <spec> [-seed N] [-profile] [-apps ...] [-procs ...]
//	cablesim profile [-scale s] [-apps ...] [-procs ...] [-top N] [-o trace.json]
//	cablesim serve [-addr :8080] [-jobs N] [-cache-entries N] [-max-queue N]
//	cablesim top [-addr :8080] [-interval 2s] [-n N]  # live farm view via /metrics
//	cablesim all [-scale s]         # everything above (not hostperf/faults/serve/top)
//
// -scale is "test" (fast), "paper" (scaled evaluation sizes, default) or
// "full" (the testbed's actual SPLASH-2 problem sizes; -full-size is a
// shorthand).  Full-size runs need the copy-on-write frame store to fit in
// host memory — see EXPERIMENTS.md for expected runtimes and footprints.
// -gran overrides the OS mapping granularity in bytes (64 KB default;
// 4096 emulates the paper's planned Linux port) for fig5/fig6.
// -jobs bounds how many independent simulation cells run concurrently on
// the host (default: one per host processor).  Cells are independent
// virtual-time experiments, so every table and figure is byte-identical
// for any -jobs value; -jobs 1 runs the classic sequential sweep.
// -o is where hostperf writes its report (default BENCH_dataplane.json);
// hostperf measures simulator wall-clock only and never changes any
// virtual-time result.  -compare prints ns/op and allocs/op deltas of the
// fresh hostperf report against a previous one.
// -trace makes `counters` attach a protocol trace ring to each run and
// print its per-kind event census, the tail, and how many events the
// bounded ring dropped (so truncated traces are visible, never silent).
// -plan is a fault plan (see internal/fault: e.g.
// "send:p=0.05;detach:node=1,at=5ms"); -seed picks the deterministic
// injection stream — the same plan and seed reproduce the same faults.
// `profile` attaches the virtual-time profiler to every cell and prints its
// span roll-up, hot-page and lock-contention tables, and per-barrier-epoch
// counter windows; with -o it also writes the merged per-thread timeline as
// Chrome trace-viewer / Perfetto JSON (load at https://ui.perfetto.dev).
// -top bounds the hot-page/lock/epoch rows (default 5).  -profile appends
// the same profile block to each `counters` or `faults` cell.  Profiling
// follows the observability invariance rule: it records spans and charges
// nothing, so all results are bit-identical with and without it.
// -contended-sync and -coalesce select opt-in wire-plane modes for
// fig5/fig6/fig5+6/counters: the first makes synchronization messages
// reserve NIC occupancy (sync traffic queues behind data traffic), the
// second applies GeNIMA's release protocol-opt of one coalesced remote
// write per home node.  Both default off, reproducing the paper exactly.
// -sched selects the thread-manager backend every simulation runs under
// ("goroutine" or "event", see DESIGN.md §10); results are checksum-
// identical across backends, only host wall-clock changes.  The
// CABLES_SCHED environment variable sets the same default process-wide.
// -protocol selects the coherence protocol ("genima", "commutative" or
// "delegate", see DESIGN.md §5e) for every simulation in the process; the
// CABLES_PROTOCOL environment variable sets the same default.  Unlike
// -sched, the variants deliberately change the wire schedule (and so
// virtual times); only the computed data (checksums) is invariant.
// `protocols` runs each app under all three protocols side by side and
// reports time, checksum, messages, bytes, and the profiler's lock-wait
// split — the comparison table of EXPERIMENTS.md §"Coherence protocols".
// `serve` runs the simulation farm: a long-running HTTP/JSON service
// (internal/farm, API reference in docs/SERVE.md) that accepts sweep specs,
// shards cells across a bounded worker pool, streams per-cell progress, and
// content-addresses results so identical cells across sweeps and clients
// are simulated exactly once.  -addr is the listen address, -cache-entries
// bounds the LRU result cache, -max-queue bounds admitted-but-unstarted
// cells; SIGTERM/SIGINT drain gracefully (in-flight cells complete, queued
// cells are rejected with a retriable status).  The farm exposes a
// Prometheus-format telemetry plane on GET /metrics plus a GET /readyz
// probe that flips to 503 once a drain begins (docs/OBSERVABILITY.md §7),
// and logs one structured record per request to stderr.
// `top` is the terminal companion: it polls a running farm's /metrics at
// -interval (against -addr) and prints qps, cell-latency p50/p95/p99,
// cache-hit ratio, queue depth, pool utilization, and per-protocol cell
// throughput — consuming only the standard exposition, nothing private.
// -n bounds the refresh count (0 polls until interrupted).
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"

	"cables/internal/bench"
	"cables/internal/bench/hostperf"
	"cables/internal/coherence"
	"cables/internal/farm"
	"cables/internal/fault"
	"cables/internal/profile"
	"cables/internal/sim"
	"cables/internal/trace"
	"cables/internal/wire"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd := os.Args[1]
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	scale := fs.String("scale", "paper", `problem sizes: "test", "paper" or "full"`)
	fullSize := fs.Bool("full-size", false,
		`shorthand for -scale full: the paper testbed's actual SPLASH-2 problem sizes`)
	apps := fs.String("apps", "", "comma-separated application list (fig5/fig6)")
	procs := fs.String("procs", "", "comma-separated processor counts (fig5/fig6)")
	gran := fs.Int("gran", 0, "OS mapping granularity in bytes (default 64 KB)")
	out := fs.String("o", "BENCH_dataplane.json", "hostperf report path")
	jobs := fs.Int("jobs", bench.DefaultJobs(),
		"max concurrent simulation cells (1 = sequential; results are identical either way)")
	compare := fs.String("compare", "", "hostperf: print deltas against a previous report (path to old JSON)")
	traceOn := fs.Bool("trace", false, "counters: attach a protocol trace ring and print its census, tail and drop count")
	profileOn := fs.Bool("profile", false, "counters/faults: attach the virtual-time profiler and print each cell's profile block")
	top := fs.Int("top", 5, "profile: rows shown in the hot-page/lock-contention/epoch tables")
	planSpec := fs.String("plan", "", `faults: fault plan, e.g. "send:p=0.05;detach:node=1,at=5ms"`)
	seed := fs.Uint64("seed", 1, "faults: deterministic injection seed")
	addr := fs.String("addr", ":8080", "serve: HTTP listen address; top: farm base URL or host:port")
	interval := fs.Duration("interval", 2*time.Second, "top: poll interval")
	iters := fs.Int("n", 0, "top: number of refreshes (0 = until interrupted)")
	cacheEntries := fs.Int("cache-entries", 4096, "serve: content-addressed result cache bound (LRU entries)")
	maxQueue := fs.Int("max-queue", 65536, "serve: max admitted-but-unstarted cells before 503")
	contended := fs.Bool("contended-sync", false,
		"wire plane: synchronization messages reserve NIC occupancy (fig5/fig6/counters)")
	coalesce := fs.Bool("coalesce", false,
		"wire plane: GeNIMA release coalesces diffs into one remote write per home (fig5/fig6/counters)")
	sched := fs.String("sched", sim.DefaultSchedulerName(),
		fmt.Sprintf("thread-manager backend: %s (virtual-time results are identical; host speed differs)",
			strings.Join(sim.SchedulerNames(), "|")))
	protocol := fs.String("protocol", coherence.DefaultName(),
		fmt.Sprintf("coherence protocol: %s (data checksums are identical; wire schedule differs)",
			strings.Join(coherence.Names(), "|")))
	if err := fs.Parse(os.Args[2:]); err != nil {
		os.Exit(2)
	}
	if err := sim.SetDefaultScheduler(*sched); err != nil {
		fmt.Fprintf(os.Stderr, "cablesim: %v\n", err)
		os.Exit(2)
	}
	if err := coherence.SetDefault(*protocol); err != nil {
		fmt.Fprintf(os.Stderr, "cablesim: %v\n", err)
		os.Exit(2)
	}
	outSet := false
	fs.Visit(func(f *flag.Flag) {
		if f.Name == "o" {
			outSet = true
		}
	})

	sc := bench.Scale(*scale)
	if *fullSize {
		sc = bench.ScaleFull
	}
	if sc != bench.ScaleTest && sc != bench.ScalePaper && sc != bench.ScaleFull {
		fmt.Fprintf(os.Stderr, "cablesim: unknown scale %q\n", *scale)
		os.Exit(2)
	}
	var costs *sim.Costs
	if *gran > 0 {
		costs = sim.DefaultCosts()
		costs.MapGranularity = *gran
	}
	appList := splitList(*apps)
	procList := parseInts(*procs)
	wopts := wire.Options{ContendedSync: *contended, Coalesce: *coalesce}

	w := os.Stdout
	switch cmd {
	case "table3":
		bench.Table3(w)
	case "table4":
		bench.Table4(w)
	case "table5":
		bench.Table5(w, sc, *jobs)
	case "table6":
		bench.Table6(w, sc, *jobs)
	case "fig5":
		data := bench.RunFig5Wire(appList, procList, sc, costs, *jobs, wopts)
		bench.Fig5(w, data, procList)
	case "fig6":
		data := bench.RunFig5Wire(appList, procList, sc, costs, *jobs, wopts)
		bench.Fig6(w, data, procList)
	case "fig5+6":
		data := bench.RunFig5Wire(appList, procList, sc, costs, *jobs, wopts)
		bench.Fig5(w, data, procList)
		bench.Fig6(w, data, procList)
	case "protocols":
		p := 8
		if len(procList) > 0 {
			p = procList[0]
		}
		bench.RunProtocols(w, appList, p, sc, costs, *jobs)
	case "limits":
		bench.Limits(w)
	case "hostperf":
		if err := hostperf.WriteFile(*out, w); err != nil {
			fmt.Fprintf(os.Stderr, "cablesim: hostperf: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(w, "wrote %s\n", *out)
		if *compare != "" {
			if err := hostperf.CompareFiles(w, *compare, *out); err != nil {
				fmt.Fprintf(os.Stderr, "cablesim: hostperf compare: %v\n", err)
				os.Exit(1)
			}
		}
	case "counters":
		runCounters(w, appList, procList, sc, costs, *jobs, *traceOn, *profileOn, *top, wopts)
	case "profile":
		cells := bench.RunProfile(w, appList, procList, sc, costs, *jobs, *top, wopts)
		if outSet {
			f, err := os.Create(*out)
			if err != nil {
				fmt.Fprintf(os.Stderr, "cablesim: profile: %v\n", err)
				os.Exit(1)
			}
			werr := profile.WriteTrace(f, bench.TraceCells(cells))
			if cerr := f.Close(); werr == nil {
				werr = cerr
			}
			if werr != nil {
				fmt.Fprintf(os.Stderr, "cablesim: profile: writing %s: %v\n", *out, werr)
				os.Exit(1)
			}
			fmt.Fprintf(w, "wrote %s\n", *out)
		}
		for i := range cells {
			if cells[i].Err != nil {
				os.Exit(1)
			}
		}
	case "serve":
		logger := slog.New(slog.NewTextHandler(os.Stderr, nil))
		srv := farm.New(farm.Config{Jobs: *jobs, CacheEntries: *cacheEntries, MaxQueue: *maxQueue,
			Logger: logger})
		hs := &http.Server{Addr: *addr, Handler: srv.Handler()}
		drained := srv.DrainOnSignal(os.Interrupt, syscall.SIGTERM)
		go func() {
			// Wait for the drain (in-flight cells done, queued cells
			// rejected retriable), then close the listener so running
			// response streams finish cleanly.
			<-drained
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			_ = hs.Shutdown(ctx)
		}()
		fmt.Fprintf(w, "cablesim serve: listening on %s (jobs=%d cache=%d queue=%d sched=%s protocol=%s)\n",
			*addr, *jobs, *cacheEntries, *maxQueue, sim.DefaultSchedulerName(), coherence.DefaultName())
		if err := hs.ListenAndServe(); err != nil && err != http.ErrServerClosed {
			fmt.Fprintf(os.Stderr, "cablesim: serve: %v\n", err)
			os.Exit(1)
		}
		<-drained
		fmt.Fprintln(w, "cablesim serve: drained")
	case "top":
		if err := runTop(w, *addr, *interval, *iters); err != nil {
			fmt.Fprintf(os.Stderr, "cablesim: top: %v\n", err)
			os.Exit(1)
		}
	case "faults":
		if *planSpec == "" {
			fmt.Fprintln(os.Stderr, "cablesim: faults needs -plan (see internal/fault for the spec language)")
			os.Exit(2)
		}
		plan, err := fault.ParsePlan(*planSpec)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cablesim: %v\n", err)
			os.Exit(2)
		}
		profTop := 0
		if *profileOn {
			profTop = *top
		}
		bench.RunFaults(w, plan, *seed, appList, procList, sc, costs, *jobs, profTop)
	case "all":
		bench.Table3(w)
		bench.Table4(w)
		bench.Table5(w, sc, *jobs)
		bench.Table6(w, sc, *jobs)
		data := bench.RunFig5(appList, procList, sc, costs, *jobs)
		bench.Fig5(w, data, procList)
		bench.Fig6(w, data, procList)
		bench.Limits(w)
	default:
		usage()
		os.Exit(2)
	}
}

// runCounters runs applications on both backends and dumps the system
// event counters — the protocol-level profile behind the figures.  Cells
// run up to jobs at a time; each cell renders its block into a slot and the
// blocks print in the original sequential order.  With traceOn, each run
// also carries a protocol trace ring whose per-kind census, recent tail,
// and dropped-event count are appended to the block (the ring is bounded:
// a non-zero dropped count means the census covers only the retained
// suffix).  With profileOn, each run also carries the virtual-time profiler
// and its profile block (top rows per table) is appended.
func runCounters(w *os.File, apps []string, procs []int, sc bench.Scale, costs *sim.Costs, jobs int, traceOn, profileOn bool, top int, wopts wire.Options) {
	// A non-default coherence protocol is labeled on every block so sweep
	// output under different protocols stays distinguishable; the default
	// keeps the blocks byte-identical to the pre-protocol output.
	label := ""
	if proto := coherence.DefaultName(); proto != coherence.ProtoGenima {
		label = " [protocol=" + proto + "]"
	}
	if len(apps) == 0 {
		apps = bench.AppNames
	}
	if len(procs) == 0 {
		procs = []int{8}
	}
	type spec struct {
		app     string
		procs   int
		backend string
	}
	var specs []spec
	for _, app := range apps {
		for _, p := range procs {
			for _, backend := range []string{bench.BackendGenima, bench.BackendCables} {
				specs = append(specs, spec{app, p, backend})
			}
		}
	}
	blocks := make([]string, len(specs))
	errs := bench.RunCells(jobs, len(specs), func(i int) {
		s := specs[i]
		if traceOn || profileOn {
			ringCap := -1
			if traceOn {
				ringCap = 4096
			}
			res, ctr, ring, prof, err := bench.RunAppObservedWire(s.app, s.backend, s.procs, sc, costs, ringCap, profileOn, wopts)
			if err != nil {
				blocks[i] = fmt.Sprintf("%s/%s p=%d: FAILED: %v\n", s.app, s.backend, s.procs, err)
				return
			}
			block := fmt.Sprintf("%s%s\n  %s\n", res, label, ctr)
			if ring != nil {
				block += traceBlock(ring)
			}
			if prof != nil {
				block += bench.ProfileBlock(profile.Build(prof.Logs()), prof.Epochs.Windows(), top)
			}
			blocks[i] = block
			return
		}
		res, ctr, err := bench.RunAppCountersWire(s.app, s.backend, s.procs, sc, costs, wopts)
		if err != nil {
			blocks[i] = fmt.Sprintf("%s/%s p=%d: FAILED: %v\n", s.app, s.backend, s.procs, err)
			return
		}
		blocks[i] = fmt.Sprintf("%s%s\n  %s\n", res, label, ctr)
	})
	for i, b := range blocks {
		if errs[i] != nil {
			fmt.Fprintf(w, "%s/%s p=%d: FAILED: %v\n",
				specs[i].app, specs[i].backend, specs[i].procs, errs[i])
			continue
		}
		fmt.Fprint(w, b)
	}
}

// traceBlock renders a run's trace ring: per-kind counts sorted by kind,
// the last few events, and — crucially — how many events the bounded ring
// overwrote, so a truncated trace is never mistaken for a complete one.
func traceBlock(ring *trace.Ring) string {
	var b strings.Builder
	counts := ring.Counts()
	kinds := make([]string, 0, len(counts))
	for k := range counts {
		kinds = append(kinds, string(k))
	}
	sort.Strings(kinds)
	b.WriteString("  trace:")
	for _, k := range kinds {
		fmt.Fprintf(&b, " %s=%d", k, counts[trace.Kind(k)])
	}
	fmt.Fprintf(&b, " dropped=%d\n", ring.Dropped())
	if tail := ring.Tail(8); tail != "" {
		for _, line := range strings.Split(strings.TrimRight(tail, "\n"), "\n") {
			b.WriteString("    " + line + "\n")
		}
	}
	return b.String()
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}

func parseInts(s string) []int {
	var out []int
	for _, p := range splitList(s) {
		v, err := strconv.Atoi(p)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cablesim: bad processor count %q\n", p)
			os.Exit(2)
		}
		out = append(out, v)
	}
	return out
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: cablesim <table3|counters|table4|table5|table6|fig5|fig6|fig5+6|protocols|limits|hostperf|faults|profile|serve|top|all> [flags]
flags: -scale test|paper|full (-full-size)  -apps A,B  -procs 1,4,8  -gran bytes  -jobs N  -o report.json  -compare old.json
       -trace -profile (counters)  -plan "send:p=0.05;detach:node=1,at=5ms" -seed N -profile (faults)
       -top N -o trace.json (profile: Perfetto/Chrome trace-viewer timeline)
       -contended-sync -coalesce (fig5/fig6/counters wire-plane modes)
       -sched goroutine|event (thread-manager backend; results identical, host speed differs)
       -protocol genima|commutative|delegate (coherence protocol; checksums identical, wire schedule differs)
       -addr :8080 -cache-entries N -max-queue N (serve: the simulation farm, docs/SERVE.md)
       -addr :8080 -interval 2s -n N (top: live farm view scraped from /metrics, docs/OBSERVABILITY.md)`)
}
