package main

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"time"

	"cables/internal/metrics"
)

// runTop is `cablesim top`: a polling terminal view of a running farm,
// driven purely by scraping GET /metrics — it consumes exactly the same
// exposition any Prometheus collector would, so everything it displays is
// observable by standard tooling too.  Each tick fetches a fresh scrape,
// diffs it against the previous one for rates (qps, per-protocol cell
// throughput), and reads gauges and histogram quantiles directly.
// iterations == 0 polls until interrupted.
func runTop(w io.Writer, baseURL string, interval time.Duration, iterations int) error {
	baseURL = strings.TrimSuffix(baseURL, "/")
	if !strings.Contains(baseURL, "://") {
		baseURL = "http://" + baseURL
	}
	client := &http.Client{Timeout: interval}
	var prev *metrics.Scrape
	prevAt := time.Now()
	for i := 0; iterations == 0 || i < iterations; i++ {
		if i > 0 {
			time.Sleep(interval)
		}
		cur, err := scrapeMetrics(client, baseURL)
		if err != nil {
			return fmt.Errorf("scrape %s/metrics: %w", baseURL, err)
		}
		now := time.Now()
		fmt.Fprint(w, renderTop(prev, cur, now.Sub(prevAt).Seconds()))
		prev, prevAt = cur, now
	}
	return nil
}

// scrapeMetrics fetches and parses one exposition.
func scrapeMetrics(client *http.Client, baseURL string) (*metrics.Scrape, error) {
	resp, err := client.Get(baseURL + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("status %d", resp.StatusCode)
	}
	return metrics.ParseText(resp.Body)
}

// renderTop renders one refresh of the top view.  prev is nil on the first
// tick (rates print as "-"); dt is the wall-clock seconds since prev.
func renderTop(prev, cur *metrics.Scrape, dt float64) string {
	var b strings.Builder

	queue, _ := cur.Value("cables_farm_queue_depth", nil)
	running, _ := cur.Value("cables_farm_cells_running", nil)
	workers, _ := cur.Value("cables_farm_pool_workers", nil)
	util, _ := cur.Value("cables_farm_pool_utilization_percent", nil)
	entries, _ := cur.Value("cables_farm_cache_entries", nil)
	draining, _ := cur.Value("cables_farm_draining", nil)

	state := "serving"
	if draining > 0 {
		state = "DRAINING"
	}
	fmt.Fprintf(&b, "cablesim top — %s  workers %.0f  running %.0f (%.0f%%)  queued %.0f  cache %.0f entries\n",
		state, workers, running, util, queue, entries)

	// Request and cell completion rates over the last interval.
	fmt.Fprintf(&b, "  http qps %s   cells/s %s   hit ratio %s\n",
		rate(prev, cur, dt, func(s *metrics.Scrape) float64 {
			return sumAll(s, "cables_farm_http_request_seconds_count")
		}),
		rate(prev, cur, dt, func(s *metrics.Scrape) float64 {
			return sumAll(s, "cables_farm_cells_terminal_total")
		}),
		hitRatio(cur))

	// Cell latency quantiles from the cumulative run histogram.
	p50, ok50 := cur.Quantile("cables_farm_cell_run_seconds", 0.50, nil)
	p95, ok95 := cur.Quantile("cables_farm_cell_run_seconds", 0.95, nil)
	p99, ok99 := cur.Quantile("cables_farm_cell_run_seconds", 0.99, nil)
	qw, okqw := cur.Quantile("cables_farm_cell_queue_wait_seconds", 0.95, nil)
	fmt.Fprintf(&b, "  cell latency p50 %s  p95 %s  p99 %s   queue-wait p95 %s\n",
		durOrDash(p50, ok50), durOrDash(p95, ok95), durOrDash(p99, ok99), durOrDash(qw, okqw))

	// Per-protocol throughput: completed fresh cells per second, from the
	// run histogram's per-series counts.
	byProto := cur.SumBy("cables_farm_cell_run_seconds_count", "protocol")
	protos := make([]string, 0, len(byProto))
	for p := range byProto {
		protos = append(protos, p)
	}
	sort.Strings(protos)
	if len(protos) > 0 {
		b.WriteString("  per-protocol cells/s:")
		for _, p := range protos {
			name := p
			if name == "" {
				name = "default"
			}
			r := rate(prev, cur, dt, func(s *metrics.Scrape) float64 {
				return s.SumBy("cables_farm_cell_run_seconds_count", "protocol")[p]
			})
			fmt.Fprintf(&b, "  %s %s", name, r)
		}
		b.WriteByte('\n')
	}
	b.WriteByte('\n')
	return b.String()
}

// sumAll sums every sample of a family, across all label sets.
func sumAll(s *metrics.Scrape, name string) float64 {
	total := 0.0
	for _, sm := range s.Samples {
		if sm.Name == name {
			total += sm.Value
		}
	}
	return total
}

// rate formats (cur-prev)/dt for a counter read by fn, "-" without a prev.
func rate(prev, cur *metrics.Scrape, dt float64, fn func(*metrics.Scrape) float64) string {
	if prev == nil || dt <= 0 {
		return "-"
	}
	d := fn(cur) - fn(prev)
	if d < 0 {
		d = 0 // the farm restarted between ticks
	}
	return fmt.Sprintf("%.1f", d/dt)
}

// hitRatio renders lifetime cache hits over all admissions.
func hitRatio(s *metrics.Scrape) string {
	by := s.SumBy("cables_farm_cache_requests_total", "outcome")
	total := by["hit"] + by["miss"] + by["coalesced"]
	if total == 0 {
		return "-"
	}
	return fmt.Sprintf("%.1f%%", by["hit"]/total*100)
}

// durOrDash renders a seconds value as a duration, "-" when absent.
func durOrDash(v float64, ok bool) string {
	if !ok {
		return "-"
	}
	return time.Duration(v * float64(time.Second)).Round(10 * time.Microsecond).String()
}
