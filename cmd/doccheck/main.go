// Command doccheck lints the repository's documentation surface, using only
// the standard library:
//
//   - every Go package (outside _test packages) must carry a package doc
//     comment, and non-main packages must start it with the canonical
//     "Package <name> ..." form godoc expects;
//   - every relative link in the markdown files must resolve to a file or
//     directory that exists in the repository;
//   - no non-test code outside the communication substrate (internal/wire,
//     internal/vmmc) may charge CatComm directly — all cross-node traffic
//     must flow through the wire plane's choke point.
//
// It walks the tree rooted at the optional -root flag (default ".") and
// exits non-zero listing every violation, so CI can gate on it
// (`make docs`).
package main

import (
	"flag"
	"fmt"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

func main() {
	root := flag.String("root", ".", "repository root to lint")
	flag.Parse()

	var problems []string
	pkgProblems, err := checkPackageDocs(*root)
	if err != nil {
		fmt.Fprintf(os.Stderr, "doccheck: %v\n", err)
		os.Exit(2)
	}
	problems = append(problems, pkgProblems...)

	linkProblems, err := checkMarkdownLinks(*root)
	if err != nil {
		fmt.Fprintf(os.Stderr, "doccheck: %v\n", err)
		os.Exit(2)
	}
	problems = append(problems, linkProblems...)

	commProblems, err := checkCommCharges(*root)
	if err != nil {
		fmt.Fprintf(os.Stderr, "doccheck: %v\n", err)
		os.Exit(2)
	}
	problems = append(problems, commProblems...)

	if len(problems) > 0 {
		sort.Strings(problems)
		for _, p := range problems {
			fmt.Fprintln(os.Stderr, p)
		}
		fmt.Fprintf(os.Stderr, "doccheck: %d problem(s)\n", len(problems))
		os.Exit(1)
	}
	fmt.Println("doccheck: ok")
}

// skipDir reports whether a directory should not be descended into.
func skipDir(name string) bool {
	return name == ".git" || name == "testdata" || name == "vendor" ||
		strings.HasPrefix(name, ".") && name != "." && name != ".github"
}

// checkPackageDocs requires a package doc comment on every Go package: any
// comment for main packages, the canonical "Package <name>" form otherwise.
// One documented file per package is enough (the Go convention: the doc
// lives in one file, commonly the one named after the package).
func checkPackageDocs(root string) ([]string, error) {
	dirs := map[string]bool{}
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if path != root && skipDir(d.Name()) {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") && !strings.HasSuffix(path, "_test.go") {
			dirs[filepath.Dir(path)] = true
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	var problems []string
	for dir := range dirs {
		fset := token.NewFileSet()
		pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
			return !strings.HasSuffix(fi.Name(), "_test.go")
		}, parser.ParseComments|parser.PackageClauseOnly)
		if err != nil {
			return nil, fmt.Errorf("parse %s: %v", dir, err)
		}
		for name, pkg := range pkgs {
			if strings.HasSuffix(name, "_test") {
				continue
			}
			doc := ""
			for _, f := range pkg.Files {
				if f.Doc != nil {
					doc = f.Doc.Text()
					break
				}
			}
			switch {
			case doc == "":
				problems = append(problems,
					fmt.Sprintf("%s: package %s has no package doc comment", dir, name))
			case name != "main" && !strings.HasPrefix(doc, "Package "+name+" ") &&
				!strings.HasPrefix(doc, "Package "+name+"\n"):
				problems = append(problems,
					fmt.Sprintf("%s: package %s doc comment does not start with %q",
						dir, name, "Package "+name))
			}
		}
	}
	return problems, nil
}

// commChargeAllowed lists the directories whose non-test code may charge
// CatComm directly: the wire plane (the choke point itself) and vmmc (the
// NIC model the plane delegates data transfers to).  Everything else must
// route cross-node traffic through wire.Plane.Do.
var commChargeAllowed = []string{
	filepath.Join("internal", "wire"),
	filepath.Join("internal", "vmmc"),
}

// commCharge matches a direct communication charge or attribution.
var commCharge = regexp.MustCompile(`\.(Charge|Attribute)\(sim\.CatComm`)

// checkCommCharges scans non-test Go sources for direct CatComm charges
// outside the allowed substrate directories — the lint that keeps the wire
// plane the single choke point for cross-node costs.
func checkCommCharges(root string) ([]string, error) {
	var problems []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if path != root && skipDir(d.Name()) {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		for _, dir := range commChargeAllowed {
			if strings.HasPrefix(rel, dir+string(filepath.Separator)) {
				return nil
			}
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for i, line := range strings.Split(string(data), "\n") {
			if commCharge.MatchString(line) {
				problems = append(problems, fmt.Sprintf(
					"%s:%d: direct CatComm charge outside internal/wire and internal/vmmc; route it through wire.Plane.Do",
					path, i+1))
			}
		}
		return nil
	})
	return problems, err
}

// mdLink matches the target of an inline markdown link: ](target).
var mdLink = regexp.MustCompile(`\]\(([^()\s]+)\)`)

// checkMarkdownLinks resolves every relative link in every .md file against
// the filesystem.  External schemes, mailto and pure-fragment links are
// skipped; a #fragment suffix on a file link is stripped before the check.
func checkMarkdownLinks(root string) ([]string, error) {
	var problems []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if path != root && skipDir(d.Name()) {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".md") {
			return nil
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for _, m := range mdLink.FindAllStringSubmatch(string(data), -1) {
			target := m[1]
			if strings.Contains(target, "://") ||
				strings.HasPrefix(target, "mailto:") ||
				strings.HasPrefix(target, "#") {
				continue
			}
			if i := strings.IndexByte(target, '#'); i >= 0 {
				target = target[:i]
			}
			if target == "" {
				continue
			}
			resolved := filepath.Join(filepath.Dir(path), filepath.FromSlash(target))
			if _, err := os.Stat(resolved); err != nil {
				problems = append(problems,
					fmt.Sprintf("%s: broken link %q (%s does not exist)", path, m[1], resolved))
			}
		}
		return nil
	})
	return problems, err
}
