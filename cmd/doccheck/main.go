// Command doccheck lints the repository's documentation surface, using only
// the standard library:
//
//   - every Go package (outside _test packages) must carry a package doc
//     comment, and non-main packages must start it with the canonical
//     "Package <name> ..." form godoc expects;
//   - every relative link in the markdown files must resolve to a file or
//     directory that exists in the repository;
//   - no non-test code outside the communication substrate (internal/wire,
//     internal/vmmc) may charge CatComm directly — all cross-node traffic
//     must flow through the wire plane's choke point;
//   - every observability name the code defines — stats event keys, trace
//     event kinds, profiler span and mark names — must appear backquoted in
//     a docs/OBSERVABILITY.md inventory table, so adding an event without
//     documenting it fails CI;
//   - every registered thread-manager backend (internal/sim schedulerNames)
//     must appear backquoted in EXPERIMENTS.md, so an undocumented
//     `-sched` value fails CI;
//   - every HTTP route the simulation farm registers (internal/farm routes)
//     must appear backquoted in a docs/SERVE.md table, and every farm stats
//     key (internal/farm statsKeys) in a SERVE.md or OBSERVABILITY.md
//     table, so the served API surface cannot drift from its reference;
//   - every Prometheus metric family the farm registers (internal/farm
//     familyNames) must appear backquoted in a docs/OBSERVABILITY.md table,
//     so registering an instrument without documenting it fails CI.
//
// It walks the tree rooted at the optional -root flag (default ".") and
// exits non-zero listing every violation, so CI can gate on it
// (`make docs`).
package main

import (
	"flag"
	"fmt"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

func main() {
	root := flag.String("root", ".", "repository root to lint")
	flag.Parse()

	var problems []string
	pkgProblems, err := checkPackageDocs(*root)
	if err != nil {
		fmt.Fprintf(os.Stderr, "doccheck: %v\n", err)
		os.Exit(2)
	}
	problems = append(problems, pkgProblems...)

	linkProblems, err := checkMarkdownLinks(*root)
	if err != nil {
		fmt.Fprintf(os.Stderr, "doccheck: %v\n", err)
		os.Exit(2)
	}
	problems = append(problems, linkProblems...)

	commProblems, err := checkCommCharges(*root)
	if err != nil {
		fmt.Fprintf(os.Stderr, "doccheck: %v\n", err)
		os.Exit(2)
	}
	problems = append(problems, commProblems...)

	invProblems, err := checkObservabilityInventory(*root)
	if err != nil {
		fmt.Fprintf(os.Stderr, "doccheck: %v\n", err)
		os.Exit(2)
	}
	problems = append(problems, invProblems...)

	schedProblems, err := checkSchedulerDocs(*root)
	if err != nil {
		fmt.Fprintf(os.Stderr, "doccheck: %v\n", err)
		os.Exit(2)
	}
	problems = append(problems, schedProblems...)

	farmProblems, err := checkFarmDocs(*root)
	if err != nil {
		fmt.Fprintf(os.Stderr, "doccheck: %v\n", err)
		os.Exit(2)
	}
	problems = append(problems, farmProblems...)

	protoProblems, err := checkProtocolDocs(*root)
	if err != nil {
		fmt.Fprintf(os.Stderr, "doccheck: %v\n", err)
		os.Exit(2)
	}
	problems = append(problems, protoProblems...)

	metricProblems, err := checkMetricsDocs(*root)
	if err != nil {
		fmt.Fprintf(os.Stderr, "doccheck: %v\n", err)
		os.Exit(2)
	}
	problems = append(problems, metricProblems...)

	if len(problems) > 0 {
		sort.Strings(problems)
		for _, p := range problems {
			fmt.Fprintln(os.Stderr, p)
		}
		fmt.Fprintf(os.Stderr, "doccheck: %d problem(s)\n", len(problems))
		os.Exit(1)
	}
	fmt.Println("doccheck: ok")
}

// skipDir reports whether a directory should not be descended into.
func skipDir(name string) bool {
	return name == ".git" || name == "testdata" || name == "vendor" ||
		strings.HasPrefix(name, ".") && name != "." && name != ".github"
}

// checkPackageDocs requires a package doc comment on every Go package: any
// comment for main packages, the canonical "Package <name>" form otherwise.
// One documented file per package is enough (the Go convention: the doc
// lives in one file, commonly the one named after the package).
func checkPackageDocs(root string) ([]string, error) {
	dirs := map[string]bool{}
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if path != root && skipDir(d.Name()) {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") && !strings.HasSuffix(path, "_test.go") {
			dirs[filepath.Dir(path)] = true
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	var problems []string
	for dir := range dirs {
		fset := token.NewFileSet()
		pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
			return !strings.HasSuffix(fi.Name(), "_test.go")
		}, parser.ParseComments|parser.PackageClauseOnly)
		if err != nil {
			return nil, fmt.Errorf("parse %s: %v", dir, err)
		}
		for name, pkg := range pkgs {
			if strings.HasSuffix(name, "_test") {
				continue
			}
			doc := ""
			for _, f := range pkg.Files {
				if f.Doc != nil {
					doc = f.Doc.Text()
					break
				}
			}
			switch {
			case doc == "":
				problems = append(problems,
					fmt.Sprintf("%s: package %s has no package doc comment", dir, name))
			case name != "main" && !strings.HasPrefix(doc, "Package "+name+" ") &&
				!strings.HasPrefix(doc, "Package "+name+"\n"):
				problems = append(problems,
					fmt.Sprintf("%s: package %s doc comment does not start with %q",
						dir, name, "Package "+name))
			}
		}
	}
	return problems, nil
}

// commChargeAllowed lists the directories whose non-test code may charge
// CatComm directly: the wire plane (the choke point itself) and vmmc (the
// NIC model the plane delegates data transfers to).  Everything else must
// route cross-node traffic through wire.Plane.Do.
var commChargeAllowed = []string{
	filepath.Join("internal", "wire"),
	filepath.Join("internal", "vmmc"),
}

// commCharge matches a direct communication charge or attribution.
var commCharge = regexp.MustCompile(`\.(Charge|Attribute)\(sim\.CatComm`)

// checkCommCharges scans non-test Go sources for direct CatComm charges
// outside the allowed substrate directories — the lint that keeps the wire
// plane the single choke point for cross-node costs.
func checkCommCharges(root string) ([]string, error) {
	var problems []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if path != root && skipDir(d.Name()) {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		for _, dir := range commChargeAllowed {
			if strings.HasPrefix(rel, dir+string(filepath.Separator)) {
				return nil
			}
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for i, line := range strings.Split(string(data), "\n") {
			if commCharge.MatchString(line) {
				problems = append(problems, fmt.Sprintf(
					"%s:%d: direct CatComm charge outside internal/wire and internal/vmmc; route it through wire.Plane.Do",
					path, i+1))
			}
		}
		return nil
	})
	return problems, err
}

// backtick matches a backquoted inline-code token in markdown.
var backtick = regexp.MustCompile("`([^`]+)`")

// quoted matches a double-quoted Go string literal (no escapes — the
// inventory names are plain identifiers).
var quoted = regexp.MustCompile(`"([^"\\]+)"`)

// sliceLiteral extracts the quoted strings from a `var <name> = [...]...{`
// composite literal in a Go source file: everything between the opening
// brace after the declaration and the first closing brace.
func sliceLiteral(path, name string) ([]string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	src := string(data)
	i := strings.Index(src, "var "+name+" = [")
	if i < 0 {
		return nil, fmt.Errorf("%s: declaration of %s not found", path, name)
	}
	src = src[i:]
	open := strings.IndexByte(src, '{')
	close := strings.IndexByte(src, '}')
	if open < 0 || close < open {
		return nil, fmt.Errorf("%s: malformed literal for %s", path, name)
	}
	var names []string
	for _, m := range quoted.FindAllStringSubmatch(src[open:close], -1) {
		names = append(names, m[1])
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("%s: no names in literal for %s", path, name)
	}
	return names, nil
}

// constStrings extracts the values of string constants of the given type,
// declared in the `<Name>  Type = "value"` form.
func constStrings(path, typeName string) ([]string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	re := regexp.MustCompile(`\b` + typeName + `\s*=\s*"([^"\\]+)"`)
	var names []string
	for _, m := range re.FindAllStringSubmatch(string(data), -1) {
		names = append(names, m[1])
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("%s: no %s string constants found", path, typeName)
	}
	return names, nil
}

// checkObservabilityInventory keeps docs/OBSERVABILITY.md's inventory
// tables in lock-step with the code: every stats event key, trace event
// kind, and profiler span/mark name defined in the source must appear as a
// backquoted token in a table row of the doc.  Adding an event without
// documenting it is a CI failure, so the inventories cannot drift.
func checkObservabilityInventory(root string) ([]string, error) {
	docPath := filepath.Join(root, "docs", "OBSERVABILITY.md")
	documented, err := tableTokens(docPath)
	if err != nil {
		return nil, err
	}

	type group struct {
		what  string
		src   string
		names []string
	}
	var groups []group

	statsKeys, err := sliceLiteral(filepath.Join(root, "internal", "stats", "stats.go"), "eventKeys")
	if err != nil {
		return nil, err
	}
	groups = append(groups, group{"stats event key", "internal/stats/stats.go", statsKeys})

	traceKinds, err := constStrings(filepath.Join(root, "internal", "trace", "trace.go"), "Kind")
	if err != nil {
		return nil, err
	}
	groups = append(groups, group{"trace event kind", "internal/trace/trace.go", traceKinds})

	spanNames, err := sliceLiteral(filepath.Join(root, "internal", "profile", "profile.go"), "spanNames")
	if err != nil {
		return nil, err
	}
	groups = append(groups, group{"profiler span kind", "internal/profile/profile.go", spanNames})

	markNames, err := sliceLiteral(filepath.Join(root, "internal", "profile", "profile.go"), "markNames")
	if err != nil {
		return nil, err
	}
	groups = append(groups, group{"profiler mark kind", "internal/profile/profile.go", markNames})

	var problems []string
	for _, g := range groups {
		for _, name := range g.names {
			if !documented[name] {
				problems = append(problems, fmt.Sprintf(
					"%s: %s %q (defined in %s) missing from the inventory tables",
					docPath, g.what, name, g.src))
			}
		}
	}
	return problems, nil
}

// checkSchedulerDocs keeps EXPERIMENTS.md in lock-step with the
// thread-manager backend registry: every name in internal/sim's
// schedulerNames must appear backquoted somewhere in the experiments doc,
// so registering a new `-sched` backend without documenting how to select
// it is a CI failure.
func checkSchedulerDocs(root string) ([]string, error) {
	docPath := filepath.Join(root, "EXPERIMENTS.md")
	data, err := os.ReadFile(docPath)
	if err != nil {
		return nil, err
	}
	documented := map[string]bool{}
	for _, m := range backtick.FindAllStringSubmatch(string(data), -1) {
		documented[m[1]] = true
	}

	names, err := sliceLiteral(filepath.Join(root, "internal", "sim", "sched.go"), "schedulerNames")
	if err != nil {
		return nil, err
	}
	var problems []string
	for _, name := range names {
		if !documented[name] {
			problems = append(problems, fmt.Sprintf(
				"%s: scheduler backend %q (registered in internal/sim/sched.go) is not documented",
				docPath, name))
		}
	}
	return problems, nil
}

// checkProtocolDocs keeps the coherence-protocol surface documented:
// every name in internal/coherence's protocolNames must appear backquoted
// in both DESIGN.md (the protocol-seam section) and EXPERIMENTS.md (how to
// select it), and every wire op kind in internal/wire's kindNames must
// appear backquoted as `wire.<kind>` in docs/OBSERVABILITY.md — so
// shipping a new protocol or wire op kind without documenting it is a CI
// failure.
func checkProtocolDocs(root string) ([]string, error) {
	// Scan line by line, skipping fenced code blocks: a ``` fence has an
	// odd backtick count, which would desynchronize the pair-matching
	// regex for the rest of the file.
	backticksOf := func(path string) (map[string]bool, error) {
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		documented := map[string]bool{}
		inFence := false
		for _, line := range strings.Split(string(data), "\n") {
			if strings.HasPrefix(strings.TrimSpace(line), "```") {
				inFence = !inFence
				continue
			}
			if inFence {
				continue
			}
			for _, m := range backtick.FindAllStringSubmatch(line, -1) {
				documented[m[1]] = true
			}
		}
		return documented, nil
	}

	names, err := sliceLiteral(filepath.Join(root, "internal", "coherence", "coherence.go"), "protocolNames")
	if err != nil {
		return nil, err
	}
	var problems []string
	for _, doc := range []string{"DESIGN.md", "EXPERIMENTS.md"} {
		docPath := filepath.Join(root, doc)
		documented, err := backticksOf(docPath)
		if err != nil {
			return nil, err
		}
		for _, name := range names {
			if !documented[name] {
				problems = append(problems, fmt.Sprintf(
					"%s: coherence protocol %q (registered in internal/coherence/coherence.go) is not documented",
					docPath, name))
			}
		}
	}

	kinds, err := sliceLiteral(filepath.Join(root, "internal", "wire", "wire.go"), "kindNames")
	if err != nil {
		return nil, err
	}
	obsPath := filepath.Join(root, "docs", "OBSERVABILITY.md")
	inObs, err := backticksOf(obsPath)
	if err != nil {
		return nil, err
	}
	for _, kind := range kinds {
		if !inObs["wire."+kind] {
			problems = append(problems, fmt.Sprintf(
				"%s: wire op kind `wire.%s` (registered in internal/wire/wire.go) is not documented",
				obsPath, kind))
		}
	}
	return problems, nil
}

// tableTokens collects every backquoted token that appears on a markdown
// table row (a line starting with "|") of the given doc.
func tableTokens(docPath string) (map[string]bool, error) {
	data, err := os.ReadFile(docPath)
	if err != nil {
		return nil, err
	}
	documented := map[string]bool{}
	for _, line := range strings.Split(string(data), "\n") {
		if !strings.HasPrefix(strings.TrimSpace(line), "|") {
			continue
		}
		for _, m := range backtick.FindAllStringSubmatch(line, -1) {
			documented[m[1]] = true
		}
	}
	return documented, nil
}

// checkFarmDocs keeps the simulation farm's documented API surface in
// lock-step with the code: every HTTP route the server registers
// (internal/farm/server.go routes — Server.Handler panics if the mux and
// this literal disagree) must appear backquoted in a docs/SERVE.md table,
// and every service stats key (internal/farm/stats.go statsKeys) must
// appear in a SERVE.md or OBSERVABILITY.md table.  Adding an endpoint or a
// counter without documenting it is a CI failure.
func checkFarmDocs(root string) ([]string, error) {
	servePath := filepath.Join(root, "docs", "SERVE.md")
	inServe, err := tableTokens(servePath)
	if err != nil {
		return nil, err
	}
	obsPath := filepath.Join(root, "docs", "OBSERVABILITY.md")
	inObs, err := tableTokens(obsPath)
	if err != nil {
		return nil, err
	}

	var problems []string
	routes, err := sliceLiteral(filepath.Join(root, "internal", "farm", "server.go"), "routes")
	if err != nil {
		return nil, err
	}
	for _, r := range routes {
		if !inServe[r] {
			problems = append(problems, fmt.Sprintf(
				"%s: HTTP route %q (registered in internal/farm/server.go) missing from the endpoint table",
				servePath, r))
		}
	}

	keys, err := sliceLiteral(filepath.Join(root, "internal", "farm", "stats.go"), "statsKeys")
	if err != nil {
		return nil, err
	}
	for _, k := range keys {
		if !inServe[k] && !inObs[k] {
			problems = append(problems, fmt.Sprintf(
				"%s: farm stats key %q (defined in internal/farm/stats.go) missing from the SERVE.md and OBSERVABILITY.md tables",
				servePath, k))
		}
	}
	return problems, nil
}

// checkMetricsDocs keeps the telemetry plane documented: every Prometheus
// metric family the farm registers (internal/farm/metrics.go familyNames —
// newMetrics and the farm tests pin the literal against the live registry)
// must appear backquoted in a docs/OBSERVABILITY.md table, so a scraper
// never meets a family the reference does not explain.
func checkMetricsDocs(root string) ([]string, error) {
	docPath := filepath.Join(root, "docs", "OBSERVABILITY.md")
	documented, err := tableTokens(docPath)
	if err != nil {
		return nil, err
	}
	names, err := sliceLiteral(filepath.Join(root, "internal", "farm", "metrics.go"), "familyNames")
	if err != nil {
		return nil, err
	}
	var problems []string
	for _, name := range names {
		if !documented[name] {
			problems = append(problems, fmt.Sprintf(
				"%s: metric family %q (registered in internal/farm/metrics.go) missing from the farm metrics table",
				docPath, name))
		}
	}
	return problems, nil
}

// mdLink matches the target of an inline markdown link: ](target).
var mdLink = regexp.MustCompile(`\]\(([^()\s]+)\)`)

// checkMarkdownLinks resolves every relative link in every .md file against
// the filesystem.  External schemes, mailto and pure-fragment links are
// skipped; a #fragment suffix on a file link is stripped before the check.
func checkMarkdownLinks(root string) ([]string, error) {
	var problems []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if path != root && skipDir(d.Name()) {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".md") {
			return nil
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for _, m := range mdLink.FindAllStringSubmatch(string(data), -1) {
			target := m[1]
			if strings.Contains(target, "://") ||
				strings.HasPrefix(target, "mailto:") ||
				strings.HasPrefix(target, "#") {
				continue
			}
			if i := strings.IndexByte(target, '#'); i >= 0 {
				target = target[:i]
			}
			if target == "" {
				continue
			}
			resolved := filepath.Join(filepath.Dir(path), filepath.FromSlash(target))
			if _, err := os.Stat(resolved); err != nil {
				problems = append(problems,
					fmt.Sprintf("%s: broken link %q (%s does not exist)", path, m[1], resolved))
			}
		}
		return nil
	})
	return problems, err
}
