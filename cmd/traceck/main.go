// Command traceck validates an exported profiler timeline (the Chrome
// trace-viewer / Perfetto JSON that `cablesim profile -o` writes), using
// only the standard library.  It is the teeth behind `make profile-smoke`:
//
//   - the file must be a well-formed JSON object with "displayTimeUnit"
//     and a non-empty "traceEvents" array;
//   - every event must carry a known phase ("M" metadata, "X" complete
//     span, "i" instant) and a name;
//   - complete spans must have non-negative durations and must nest
//     properly per (pid, tid) thread lane — a span may not straddle its
//     parent's close, which is exactly the property Perfetto's flame view
//     relies on;
//   - every thread lane with spans must start with a root that contains
//     all later spans on that lane (the profiler's task `run` span).
//
// Usage: traceck [file]   (default trace.json).  Exits non-zero listing
// every violation.
package main

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
)

type event struct {
	Name string  `json:"name"`
	Ph   string  `json:"ph"`
	Pid  int     `json:"pid"`
	Tid  int     `json:"tid"`
	Ts   float64 `json:"ts"`
	Dur  float64 `json:"dur"`
}

type document struct {
	DisplayTimeUnit string  `json:"displayTimeUnit"`
	TraceEvents     []event `json:"traceEvents"`
}

// ns converts a trace timestamp (microseconds, possibly with float noise
// from the export's ns→µs division) back to exact integer nanoseconds.
func ns(us float64) int64 { return int64(math.Round(us * 1e3)) }

func main() {
	path := "trace.json"
	if len(os.Args) > 1 {
		path = os.Args[1]
	}
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "traceck: %v\n", err)
		os.Exit(2)
	}
	var doc document
	if err := json.Unmarshal(data, &doc); err != nil {
		fmt.Fprintf(os.Stderr, "traceck: %s: not valid JSON: %v\n", path, err)
		os.Exit(1)
	}

	var problems []string
	badf := func(format string, args ...any) {
		problems = append(problems, fmt.Sprintf(format, args...))
	}

	if doc.DisplayTimeUnit == "" {
		badf("missing displayTimeUnit")
	}
	if len(doc.TraceEvents) == 0 {
		badf("traceEvents is empty")
	}

	type iv struct {
		s, e int64
		name string
	}
	spans := map[[2]int][]iv{}
	var nSpans, nMeta, nInstants int
	for i, e := range doc.TraceEvents {
		if e.Name == "" {
			badf("event %d: empty name", i)
		}
		switch e.Ph {
		case "M":
			nMeta++
		case "i":
			nInstants++
		case "X":
			nSpans++
			if e.Dur < 0 {
				badf("event %d (%s): negative dur %v", i, e.Name, e.Dur)
				continue
			}
			key := [2]int{e.Pid, e.Tid}
			spans[key] = append(spans[key], iv{ns(e.Ts), ns(e.Ts + e.Dur), e.Name})
		default:
			badf("event %d (%s): unknown phase %q", i, e.Name, e.Ph)
		}
	}

	// Spans are exported in open order per thread; walking them with a
	// containment stack proves proper nesting.
	for key, ivs := range spans {
		root := ivs[0]
		var stack []iv
		for _, cur := range ivs {
			if cur.s < root.s || cur.e > root.e {
				badf("lane pid=%d tid=%d: span %s [%d,%d] escapes root %s [%d,%d]",
					key[0], key[1], cur.name, cur.s, cur.e, root.name, root.s, root.e)
				break
			}
			for len(stack) > 0 && cur.s >= stack[len(stack)-1].e {
				stack = stack[:len(stack)-1]
			}
			if len(stack) > 0 && cur.e > stack[len(stack)-1].e {
				top := stack[len(stack)-1]
				badf("lane pid=%d tid=%d: span %s [%d,%d] overlaps parent %s [%d,%d]",
					key[0], key[1], cur.name, cur.s, cur.e, top.name, top.s, top.e)
				break
			}
			stack = append(stack, cur)
		}
	}

	if len(problems) > 0 {
		for _, p := range problems {
			fmt.Fprintf(os.Stderr, "traceck: %s: %s\n", path, p)
		}
		fmt.Fprintf(os.Stderr, "traceck: %d problem(s)\n", len(problems))
		os.Exit(1)
	}
	fmt.Printf("traceck: %s ok (%d spans, %d instants, %d metadata, %d thread lanes)\n",
		path, nSpans, nInstants, nMeta, len(spans))
}
