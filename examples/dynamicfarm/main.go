// Dynamicfarm: the workload class the paper argues clusters were missing —
// a server-style task farm with *dynamic* behavior that the traditional SVM
// template (Figure 2: everything allocated and every node present at init)
// cannot express:
//
//   - worker threads are created and destroyed as load rises and falls,
//     attaching cluster nodes on demand and detaching them when idle;
//   - request buffers are malloc'd and freed mid-run from the global shared
//     heap;
//   - coordination uses condition variables, not just barriers.
//
// Run: go run ./examples/dynamicfarm
package main

import (
	"fmt"

	cables "cables/internal/core"
	"cables/internal/memsys"
	"cables/internal/sim"
)

func main() {
	rt := cables.New(cables.Config{MaxNodes: 4, ProcsPerNode: 2})
	main := rt.Start()
	acc := rt.Acc()
	mem := rt.Mem()

	mx := rt.NewMutex(main.Task)
	more := rt.NewCond(main.Task)
	qhead := mem.GlobalVar(8)  // next request id to serve
	qtail := mem.GlobalVar(8)  // last request id produced
	closed := mem.GlobalVar(8) // farm shutting down
	served := mem.GlobalVar(8)
	acc.WriteI64(main.Task, qhead, 0)
	acc.WriteI64(main.Task, qtail, 0)
	acc.WriteI64(main.Task, closed, 0)
	acc.WriteI64(main.Task, served, 0)

	worker := func(th *cables.Thread) {
		for {
			mx.Lock(th.Task)
			for acc.ReadI64(th.Task, qhead) == acc.ReadI64(th.Task, qtail) &&
				acc.ReadI64(th.Task, closed) == 0 {
				more.Wait(th, mx)
			}
			if acc.ReadI64(th.Task, qhead) == acc.ReadI64(th.Task, qtail) {
				mx.Unlock(th.Task)
				return // farm closed and drained
			}
			id := acc.ReadI64(th.Task, qhead)
			acc.WriteI64(th.Task, qhead, id+1)
			mx.Unlock(th.Task)

			// Serve the request with a freshly allocated shared buffer.
			buf, err := mem.Malloc(th.Task, 4096)
			if err != nil {
				panic(err)
			}
			for i := 0; i < 512; i++ {
				acc.WriteI64(th.Task, buf+memsys.Addr(i*8), id*1000+int64(i))
			}
			th.Task.Compute(200 * sim.Microsecond)
			sum := int64(0)
			for i := 0; i < 512; i++ {
				sum += acc.ReadI64(th.Task, buf+memsys.Addr(i*8))
			}
			if err := mem.Free(th.Task, buf); err != nil {
				panic(err)
			}
			_ = sum

			mx.Lock(th.Task)
			acc.WriteI64(th.Task, served, acc.ReadI64(th.Task, served)+1)
			mx.Unlock(th.Task)
		}
	}

	// Phase 1: light load, two workers (one node).
	pool := []*cables.Thread{rt.Create(main.Task, worker), rt.Create(main.Task, worker)}
	submit := func(n int) {
		mx.Lock(main.Task)
		tail := acc.ReadI64(main.Task, qtail)
		acc.WriteI64(main.Task, qtail, tail+int64(n))
		more.Broadcast(main.Task)
		mx.Unlock(main.Task)
	}
	submit(20)
	fmt.Printf("light load: %d nodes attached\n", rt.AttachedNodes())

	// Phase 2: burst — grow the farm; CableS attaches nodes on the fly.
	for i := 0; i < 5; i++ {
		pool = append(pool, rt.Create(main.Task, worker))
	}
	submit(60)
	fmt.Printf("burst load: %d nodes attached\n", rt.AttachedNodes())

	// Phase 3: drain and shut down; idle nodes detach as workers exit.
	mx.Lock(main.Task)
	acc.WriteI64(main.Task, closed, 1)
	more.Broadcast(main.Task)
	mx.Unlock(main.Task)
	for _, th := range pool {
		rt.Join(main.Task, th)
	}
	mx.Lock(main.Task)
	got := acc.ReadI64(main.Task, served)
	mx.Unlock(main.Task)

	fmt.Printf("served %d/80 requests\n", got)
	fmt.Printf("after shutdown: %d node(s) attached (idle nodes detached)\n", rt.AttachedNodes())
	fmt.Printf("virtual time: %v\n", rt.End(main.Task))
}
