// Openmp-lu: run the OpenMP LU program (as an OdinMP-style translator
// emits it) on CableS at several processor counts and report the paper's
// Table 6 metric — speedup of an SMP-style OpenMP code on the cluster.
//
// Run: go run ./examples/openmp-lu
package main

import (
	"fmt"

	"cables/internal/apps/omp"
	"cables/internal/openmp"
	"cables/internal/sim"
)

func main() {
	const n = 192
	var base sim.Time
	for _, procs := range []int{1, 4, 8} {
		r := openmp.New(openmp.Config{Procs: procs, ProcsPerNode: 2})
		res := omp.LU(r, n)
		if procs == 1 {
			base = res.Parallel
		}
		fmt.Printf("OMP LU n=%d procs=%-2d parallel=%-10v speedup=%.2f checksum=%.4g\n",
			n, procs, res.Parallel, float64(base)/float64(res.Parallel), res.Checksum)
	}
}
