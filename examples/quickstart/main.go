// Quickstart: the paper's Figure 4 programming model on CableS.
//
// A CableS program looks like an ordinary pthreads program: declare GLOBAL
// static variables, call pthread_start(), create threads anywhere, allocate
// shared memory at any time, synchronize with mutexes/conditions/barriers,
// and finish with pthread_end().  Underneath, the library attaches cluster
// nodes on demand and keeps the shared address space coherent.
//
// Run: go run ./examples/quickstart
package main

import (
	"fmt"

	cables "cables/internal/core"
	"cables/internal/memsys"
	"cables/internal/sim"
)

func main() {
	// A 4-node cluster of 2-way SMPs; only the master is attached until
	// thread creation needs more.
	rt := cables.New(cables.Config{MaxNodes: 4, ProcsPerNode: 2})

	// pthread_start(): initialize the library, get the main thread.
	main := rt.Start()
	acc := rt.Acc()

	// GLOBAL int total;  — a static variable shared by every thread.
	total := rt.Mem().GlobalVar(8)
	acc.WriteI64(main.Task, total, 0)

	// Shared memory can be allocated at any point during execution.
	const workers, items = 6, 1024
	data, err := rt.Mem().Malloc(main.Task, items*8)
	if err != nil {
		panic(err)
	}
	for i := int64(0); i < items; i++ {
		acc.WriteI64(main.Task, data+memsys.Addr(i*8), i)
	}

	mx := rt.NewMutex(main.Task)
	done := rt.NewCond(main.Task)
	finished := rt.Mem().GlobalVar(8)
	acc.WriteI64(main.Task, finished, 0)

	// pthread_create(): threads land on nodes round-robin; new nodes are
	// attached automatically when the current ones fill up.
	for w := 0; w < workers; w++ {
		w := w
		rt.Create(main.Task, func(th *cables.Thread) {
			sum := int64(0)
			for i := w; i < items; i += workers {
				sum += acc.ReadI64(th.Task, data+memsys.Addr(i*8))
				th.Task.Compute(200 * sim.Nanosecond)
			}
			mx.Lock(th.Task)
			acc.WriteI64(th.Task, total, acc.ReadI64(th.Task, total)+sum)
			acc.WriteI64(th.Task, finished, acc.ReadI64(th.Task, finished)+1)
			done.Signal(th.Task)
			mx.Unlock(th.Task)
		})
	}

	// Wait on a condition variable until every worker has reported.
	mx.Lock(main.Task)
	for acc.ReadI64(main.Task, finished) < workers {
		done.Wait(main, mx)
	}
	got := acc.ReadI64(main.Task, total)
	mx.Unlock(main.Task)

	// pthread_end().
	end := rt.End(main.Task)
	fmt.Printf("sum over shared array = %d (want %d)\n", got, int64(items*(items-1)/2))
	fmt.Printf("nodes attached on demand: %d\n", rt.AttachedNodes())
	fmt.Printf("virtual execution time: %v\n", end)
	fmt.Printf("system events: %v\n", rt.Cluster().Ctr)
}
