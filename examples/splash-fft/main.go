// Splash-fft: run the tuned SPLASH-2 FFT on both systems — the original
// SVM system (M4 macros on GeNIMA) and CableS (M4 macros on pthreads) — and
// compare parallel-section time and page placement, the paper's Figure 5/6
// methodology for one application.
//
// Run: go run ./examples/splash-fft
package main

import (
	"fmt"

	"cables/internal/apps/fft"
	cables "cables/internal/core"
	"cables/internal/m4"
)

func main() {
	const m, procs = 14, 8

	grt := m4.New(m4.Config{Procs: procs, ProcsPerNode: 2, ArenaBytes: 64 << 20})
	g := fft.Run(grt, fft.Config{M: m})
	fmt.Printf("base system : %v\n", g)

	crt := cables.NewM4(cables.M4Config{Procs: procs, ProcsPerNode: 2, ArenaBytes: 64 << 20})
	c := fft.Run(crt, fft.Config{M: m})
	fmt.Printf("CableS      : %v\n", c)

	fmt.Printf("\nchecksums agree: %v\n", g.Checksum == c.Checksum)
	fmt.Printf("CableS parallel-section overhead vs base: %+.1f%%\n",
		100*(float64(c.Parallel)/float64(g.Parallel)-1))
	fmt.Printf("CableS total includes %v of node-attach/init overhead (paper: init/termination)\n",
		c.Total-c.Parallel)
	fmt.Printf("pages misplaced by 64 KB map-unit binding: %.1f%%\n", c.MisplacedPct())
}
