module cables

go 1.22
