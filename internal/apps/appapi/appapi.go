// Package appapi defines the runtime interface the workloads are written
// against.  Two implementations exist: the base system (M4 macros directly
// on GeNIMA, package m4) and CableS (M4 macros on the pthreads API, package
// core).  Running the same application on both reproduces the paper's
// Figure 5 comparison.
package appapi

import (
	"cables/internal/memsys"
	"cables/internal/nodeos"
	"cables/internal/sim"
)

// Runtime is the shared-memory programming environment seen by a workload.
type Runtime interface {
	// Spawn starts a worker thread running fn, placed by the backend's
	// policy, and returns its identifier.  Charged to parent.
	Spawn(parent *sim.Task, fn func(t *sim.Task)) int
	// Join blocks parent until the identified thread finishes, merging
	// virtual clocks.
	Join(parent *sim.Task, id int)
	// Lock/Unlock are cluster-wide mutual exclusion on numbered locks.
	Lock(t *sim.Task, id int)
	Unlock(t *sim.Task, id int)
	// Barrier joins the named global barrier with the given party count.
	Barrier(t *sim.Task, name string, parties int)
	// Malloc allocates global shared memory.
	Malloc(t *sim.Task, label string, size int64) (memsys.Addr, error)
	// Acc is the shared-memory accessor for this backend.
	Acc() *memsys.Accessor
	// Procs is the number of processors configured for the run.
	Procs() int
	// Cluster exposes the simulated machine (for statistics).
	Cluster() *nodeos.Cluster
	// Main is the program's initial thread.
	Main() *sim.Task
	// Finish declares the run over and returns the virtual end time (max
	// over all threads, including Main).
	Finish() sim.Time
}

// Name reports a short backend name for reporting ("genima" or "cables").
type Name interface{ BackendName() string }

// BackendName returns rt's name, or "unknown".
func BackendName(rt Runtime) string {
	if n, ok := rt.(Name); ok {
		return n.BackendName()
	}
	return "unknown"
}
