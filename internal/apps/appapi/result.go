package appapi

import (
	"fmt"
	"sync"
	"sync/atomic"

	"cables/internal/sim"
)

// Result is what every workload reports; the experiment harness turns these
// into the paper's tables and figures.
type Result struct {
	App     string
	Backend string
	Procs   int

	// Total is the virtual time of the whole run, including initialization
	// and termination (where CableS's node-attach costs land).
	Total sim.Time
	// Parallel is the virtual time of the parallel section only — the
	// quantity plotted in Figure 5.
	Parallel sim.Time

	// Checksum validates the computation end to end through the coherence
	// protocol.
	Checksum float64

	// Misplaced/Touched give Figure 6's page-misplacement metric.
	Misplaced int
	Touched   int
}

// MisplacedPct returns the misplaced-page percentage.
func (r Result) MisplacedPct() float64 {
	if r.Touched == 0 {
		return 0
	}
	return 100 * float64(r.Misplaced) / float64(r.Touched)
}

// String summarizes the result on one line.
func (r Result) String() string {
	return fmt.Sprintf("%s/%s p=%d total=%v parallel=%v checksum=%g misplaced=%.1f%%",
		r.App, r.Backend, r.Procs, r.Total, r.Parallel, r.Checksum, r.MisplacedPct())
}

// Section tracks the parallel section's virtual extent across workers: the
// latest start-barrier exit to the latest worker end.
type Section struct {
	start atomic.Int64
	end   atomic.Int64
}

// Enter records t's exit from the start barrier.
func (s *Section) Enter(t *sim.Task) {
	for {
		cur := s.start.Load()
		now := int64(t.Now())
		if now <= cur || s.start.CompareAndSwap(cur, now) {
			return
		}
	}
}

// Leave records t's completion of parallel work.
func (s *Section) Leave(t *sim.Task) {
	for {
		cur := s.end.Load()
		now := int64(t.Now())
		if now <= cur || s.end.CompareAndSwap(cur, now) {
			return
		}
	}
}

// Duration returns the section's virtual length.
func (s *Section) Duration() sim.Time {
	d := sim.Time(s.end.Load() - s.start.Load())
	if d < 0 {
		return 0
	}
	return d
}

// RunWorkers spawns procs workers executing body(task, proc) and joins them
// all from rt's main thread — the CREATE/WAIT_FOR_END template every
// SPLASH-2 application uses.
func RunWorkers(rt Runtime, procs int, body func(t *sim.Task, proc int)) {
	main := rt.Main()
	ids := make([]int, procs)
	for p := 0; p < procs; p++ {
		p := p
		ids[p] = rt.Spawn(main, func(t *sim.Task) { body(t, p) })
	}
	for _, id := range ids {
		rt.Join(main, id)
	}
}

// Reduce accumulates per-worker float64 contributions deterministically
// (combined in worker order, independent of arrival order).
type Reduce struct {
	mu   sync.Mutex
	vals map[int]float64
}

// Add records worker p's contribution.
func (r *Reduce) Add(p int, v float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.vals == nil {
		r.vals = make(map[int]float64)
	}
	r.vals[p] += v
}

// Sum combines contributions in worker order.
func (r *Reduce) Sum(procs int) float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := 0.0
	for p := 0; p < procs; p++ {
		s += r.vals[p]
	}
	return s
}

// Finalize fills the common Result fields from the runtime state.
func Finalize(rt Runtime, res *Result, sec *Section) {
	res.Backend = BackendName(rt)
	res.Procs = rt.Procs()
	res.Total = rt.Finish()
	res.Parallel = sec.Duration()
	res.Misplaced, res.Touched = rt.Acc().Sp.MisplacedPages()
}
