package appapi_test

import (
	"strings"
	"sync"
	"testing"

	"cables/internal/apps/appapi"
	"cables/internal/m4"
	"cables/internal/sim"
)

func TestSectionTracksExtremes(t *testing.T) {
	var sec appapi.Section
	mk := func(at sim.Time) *sim.Task {
		task := sim.NewTask(1, 0, sim.DefaultCosts())
		task.SetNow(at)
		return task
	}
	sec.Enter(mk(5 * sim.Millisecond))
	sec.Enter(mk(3 * sim.Millisecond)) // earlier enter must not win
	sec.Leave(mk(20 * sim.Millisecond))
	sec.Leave(mk(12 * sim.Millisecond)) // earlier leave must not win
	if got := sec.Duration(); got != 15*sim.Millisecond {
		t.Errorf("duration: %v", got)
	}
}

func TestSectionConcurrent(t *testing.T) {
	var sec appapi.Section
	var wg sync.WaitGroup
	for i := 1; i <= 32; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			task := sim.NewTask(i, 0, sim.DefaultCosts())
			task.SetNow(sim.Time(i) * sim.Microsecond)
			sec.Enter(task)
			task.SetNow(sim.Time(100+i) * sim.Microsecond)
			sec.Leave(task)
		}()
	}
	wg.Wait()
	if got := sec.Duration(); got != 100*sim.Microsecond {
		t.Errorf("duration: %v (want max leave - max enter = 100us)", got)
	}
}

func TestReduceIsOrderIndependent(t *testing.T) {
	var a, b appapi.Reduce
	vals := []float64{0.1, 0.2, 0.3, 0.4}
	for p, v := range vals {
		a.Add(p, v)
	}
	for p := len(vals) - 1; p >= 0; p-- {
		b.Add(p, vals[p])
	}
	if a.Sum(4) != b.Sum(4) {
		t.Errorf("reduce order-dependent: %g vs %g", a.Sum(4), b.Sum(4))
	}
}

func TestResultFormatting(t *testing.T) {
	r := appapi.Result{
		App: "FFT", Backend: "cables", Procs: 8,
		Total: 2 * sim.Second, Parallel: sim.Second,
		Checksum: 42, Misplaced: 5, Touched: 50,
	}
	if r.MisplacedPct() != 10 {
		t.Errorf("pct: %v", r.MisplacedPct())
	}
	s := r.String()
	for _, want := range []string{"FFT", "cables", "p=8", "10.0%"} {
		if !strings.Contains(s, want) {
			t.Errorf("result string missing %q: %s", want, s)
		}
	}
	if (appapi.Result{}).MisplacedPct() != 0 {
		t.Error("zero-result pct")
	}
}

func TestRunWorkersRunsEachProcOnce(t *testing.T) {
	rt := m4.New(m4.Config{Procs: 6, ProcsPerNode: 2, ArenaBytes: 8 << 20})
	var mu sync.Mutex
	seen := map[int]int{}
	appapi.RunWorkers(rt, 6, func(task *sim.Task, p int) {
		mu.Lock()
		seen[p]++
		mu.Unlock()
	})
	for p := 0; p < 6; p++ {
		if seen[p] != 1 {
			t.Errorf("proc %d ran %d times", p, seen[p])
		}
	}
	if appapi.BackendName(rt) != "genima" {
		t.Error("backend name")
	}
}
