// Package fft ports the SPLASH-2 FFT kernel: a six-step 1D FFT over a
// sqrt(n) x sqrt(n) complex matrix with three transposes.  Workers own
// contiguous row blocks (single-writer at page granularity given appropriate
// alignment), so transposes are the all-to-all communication phases.
package fft

import (
	"math"

	"cables/internal/apps/appapi"
	"cables/internal/memsys"
	"cables/internal/sim"
)

// Config sizes the FFT run.
type Config struct {
	// M is log2 of the number of complex points; must be even (paper size:
	// m22; scaled default: m16).
	M int
}

// DefaultConfig returns the scaled default problem size.
func DefaultConfig() Config { return Config{M: 16} }

const flopCost = 5 * sim.Nanosecond // PentiumPro-era per-flop charge

// Run executes FFT on rt and reports the result.
func Run(rt appapi.Runtime, cfg Config) appapi.Result {
	if cfg.M == 0 {
		cfg = DefaultConfig()
	}
	if cfg.M%2 != 0 {
		cfg.M++
	}
	n := 1 << cfg.M
	rows := 1 << (cfg.M / 2) // matrix is rows x rows
	procs := rt.Procs()
	main := rt.Main()
	acc := rt.Acc()

	matBytes := int64(n) * 16 // complex128
	a, err := rt.Malloc(main, "fft.A", matBytes)
	if err != nil {
		panic("fft: " + err.Error())
	}
	b, err := rt.Malloc(main, "fft.B", matBytes)
	if err != nil {
		panic("fft: " + err.Error())
	}

	var sec appapi.Section
	var red appapi.Reduce

	appapi.RunWorkers(rt, procs, func(t *sim.Task, p int) {
		lo, hi := share(rows, procs, p)
		rowLen := 2 * rows // float64s per row (re,im interleaved)
		buf := make([]float64, rowLen)

		// Initialization: each worker touches and fills its own row blocks
		// of both matrices — the data placement the tuned application
		// establishes.
		for r := lo; r < hi; r++ {
			for c := 0; c < rows; c++ {
				idx := r*rows + c
				buf[2*c] = math.Sin(float64(idx))
				buf[2*c+1] = math.Cos(float64(idx)) * 0.5
			}
			acc.WriteF64s(t, rowAddr(a, r, rows), buf)
			for c := range buf {
				buf[c] = 0
			}
			acc.WriteF64s(t, rowAddr(b, r, rows), buf)
		}
		t.Compute(sim.Time(hi-lo) * sim.Time(rows) * 2 * flopCost)
		rt.Barrier(t, "fft.init", procs)
		sec.Enter(t)

		// Step 1: transpose A -> B (read columns remotely, write own rows).
		transpose(rt, t, acc, a, b, rows, lo, hi)
		rt.Barrier(t, "fft.t1", procs)
		// Step 2: 1D FFT on owned rows of B.
		fftRows(rt, t, acc, b, rows, lo, hi, buf)
		// Step 3: twiddle multiply on owned rows of B.
		twiddle(rt, t, acc, b, n, rows, lo, hi, buf)
		rt.Barrier(t, "fft.t2", procs)
		// Step 4: transpose B -> A.
		transpose(rt, t, acc, b, a, rows, lo, hi)
		rt.Barrier(t, "fft.t3", procs)
		// Step 5: 1D FFT on owned rows of A.
		fftRows(rt, t, acc, a, rows, lo, hi, buf)
		rt.Barrier(t, "fft.t4", procs)
		// Step 6: final transpose A -> B.
		transpose(rt, t, acc, a, b, rows, lo, hi)
		rt.Barrier(t, "fft.done", procs)

		// Checksum over owned rows of the result.
		sum := 0.0
		for r := lo; r < hi; r++ {
			acc.ReadF64s(t, rowAddr(b, r, rows), buf)
			for _, v := range buf {
				sum += math.Abs(v)
			}
		}
		red.Add(p, sum)
		sec.Leave(t)
	})

	res := appapi.Result{App: "FFT", Checksum: red.Sum(procs)}
	appapi.Finalize(rt, &res, &sec)
	return res
}

// share splits n items over procs, giving worker p its [lo,hi) range.
func share(n, procs, p int) (lo, hi int) {
	per := n / procs
	rem := n % procs
	lo = p*per + min(p, rem)
	hi = lo + per
	if p < rem {
		hi++
	}
	return lo, hi
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func rowAddr(base memsys.Addr, r, rows int) memsys.Addr {
	return base + memsys.Addr(r*rows*16)
}

// transpose writes dst rows [lo,hi) from src columns [lo,hi): the owned
// destination rows are local writes, the source columns stride across every
// other worker's rows (the communication phase).
func transpose(rt appapi.Runtime, t *sim.Task, acc *memsys.Accessor,
	src, dst memsys.Addr, rows, lo, hi int) {
	buf := make([]float64, 2*rows)
	for r := lo; r < hi; r++ {
		for c := 0; c < rows; c++ {
			e := src + memsys.Addr((c*rows+r)*16)
			buf[2*c] = acc.ReadF64(t, e)
			buf[2*c+1] = acc.ReadF64(t, e+8)
		}
		acc.WriteF64s(t, rowAddr(dst, r, rows), buf)
	}
}

// fftRows runs an in-place iterative radix-2 FFT over each owned row.
func fftRows(rt appapi.Runtime, t *sim.Task, acc *memsys.Accessor,
	base memsys.Addr, rows, lo, hi int, buf []float64) {
	for r := lo; r < hi; r++ {
		acc.ReadF64s(t, rowAddr(base, r, rows), buf)
		fft1d(buf)
		acc.WriteF64s(t, rowAddr(base, r, rows), buf)
		// ~5 flops per butterfly, n/2 log2(n) butterflies.
		nb := rows / 2 * log2(rows)
		t.Compute(sim.Time(nb) * 5 * flopCost)
	}
}

// twiddle multiplies element (r,c) by W_n^(r*c).
func twiddle(rt appapi.Runtime, t *sim.Task, acc *memsys.Accessor,
	base memsys.Addr, n, rows, lo, hi int, buf []float64) {
	for r := lo; r < hi; r++ {
		acc.ReadF64s(t, rowAddr(base, r, rows), buf)
		for c := 0; c < rows; c++ {
			ang := -2 * math.Pi * float64(r) * float64(c) / float64(n)
			wr, wi := math.Cos(ang), math.Sin(ang)
			re, im := buf[2*c], buf[2*c+1]
			buf[2*c] = re*wr - im*wi
			buf[2*c+1] = re*wi + im*wr
		}
		acc.WriteF64s(t, rowAddr(base, r, rows), buf)
		t.Compute(sim.Time(rows) * 8 * flopCost)
	}
}

// FFT1D exposes the kernel for the OpenMP variants of the application.
func FFT1D(v []float64) { fft1d(v) }

// fft1d is an in-place radix-2 complex FFT over interleaved (re,im) pairs.
func fft1d(v []float64) {
	n := len(v) / 2
	// Bit-reversal permutation.
	for i, j := 0, 0; i < n; i++ {
		if i < j {
			v[2*i], v[2*j] = v[2*j], v[2*i]
			v[2*i+1], v[2*j+1] = v[2*j+1], v[2*i+1]
		}
		m := n >> 1
		for m >= 1 && j&m != 0 {
			j ^= m
			m >>= 1
		}
		j |= m
	}
	for s := 1; s < n; s <<= 1 {
		ang := -math.Pi / float64(s)
		wr, wi := math.Cos(ang), math.Sin(ang)
		for k := 0; k < n; k += 2 * s {
			cr, ci := 1.0, 0.0
			for j := 0; j < s; j++ {
				p, q := 2*(k+j), 2*(k+j+s)
				tr := v[q]*cr - v[q+1]*ci
				ti := v[q]*ci + v[q+1]*cr
				v[q], v[q+1] = v[p]-tr, v[p+1]-ti
				v[p], v[p+1] = v[p]+tr, v[p+1]+ti
				cr, ci = cr*wr-ci*wi, cr*wi+ci*wr
			}
		}
	}
}

func log2(n int) int {
	l := 0
	for 1<<l < n {
		l++
	}
	return l
}
