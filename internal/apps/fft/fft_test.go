package fft

import (
	"math"
	"math/cmplx"
	"testing"

	"cables/internal/m4"
)

// TestFFT1DAgainstNaiveDFT validates the kernel against a direct O(n^2)
// DFT.
func TestFFT1DAgainstNaiveDFT(t *testing.T) {
	const n = 64
	in := make([]complex128, n)
	v := make([]float64, 2*n)
	for i := 0; i < n; i++ {
		re, im := math.Sin(float64(i)), math.Cos(float64(3*i))
		in[i] = complex(re, im)
		v[2*i], v[2*i+1] = re, im
	}
	FFT1D(v)
	for k := 0; k < n; k++ {
		var want complex128
		for j := 0; j < n; j++ {
			want += in[j] * cmplx.Exp(complex(0, -2*math.Pi*float64(k*j)/float64(n)))
		}
		got := complex(v[2*k], v[2*k+1])
		if cmplx.Abs(got-want) > 1e-9*float64(n) {
			t.Fatalf("bin %d: got %v want %v", k, got, want)
		}
	}
}

// TestParsevalEnergy: FFT preserves signal energy (Parseval's theorem).
func TestParsevalEnergy(t *testing.T) {
	const n = 256
	v := make([]float64, 2*n)
	energyIn := 0.0
	for i := 0; i < n; i++ {
		v[2*i] = math.Sin(float64(7 * i))
		energyIn += v[2*i] * v[2*i]
	}
	FFT1D(v)
	energyOut := 0.0
	for i := 0; i < n; i++ {
		energyOut += v[2*i]*v[2*i] + v[2*i+1]*v[2*i+1]
	}
	if math.Abs(energyOut/float64(n)-energyIn) > 1e-6*energyIn {
		t.Errorf("Parseval violated: in=%g out/n=%g", energyIn, energyOut/float64(n))
	}
}

// TestRunChecksumStableAcrossProcs: the parallel FFT computes the same
// result at any processor count.
func TestRunChecksumStableAcrossProcs(t *testing.T) {
	var base float64
	for _, procs := range []int{1, 2, 8} {
		rt := m4.New(m4.Config{Procs: procs, ProcsPerNode: 2, ArenaBytes: 32 << 20})
		res := Run(rt, Config{M: 10})
		if procs == 1 {
			base = res.Checksum
			continue
		}
		if rel := math.Abs(res.Checksum-base) / base; rel > 1e-9 {
			t.Errorf("p=%d checksum drift: %g vs %g", procs, res.Checksum, base)
		}
	}
}

func TestOddMIsRounded(t *testing.T) {
	rt := m4.New(m4.Config{Procs: 2, ProcsPerNode: 2, ArenaBytes: 32 << 20})
	res := Run(rt, Config{M: 9}) // becomes 10
	if res.Checksum == 0 {
		t.Error("zero checksum")
	}
}
