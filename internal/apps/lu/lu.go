// Package lu ports the SPLASH-2 LU kernel: blocked dense LU factorization
// (no pivoting) with contiguous blocks.  Blocks are 2D-scattered over a
// processor grid, so each owner's data is many small blocks interleaved with
// other owners' — under 64 KB map-unit home binding this produces the high
// page-misplacement percentages the paper reports for LU (with little
// performance impact thanks to LU's high computation-to-communication ratio).
package lu

import (
	"math"

	"cables/internal/apps/appapi"
	"cables/internal/memsys"
	"cables/internal/sim"
)

// Config sizes the LU run.
type Config struct {
	// N is the matrix dimension (paper: n4096; scaled default: 256).
	N int
	// B is the block size (SPLASH default 16).
	B int
}

// DefaultConfig returns the scaled default problem size.  Blocks of 32
// keep the computation-to-communication ratio of the paper-scale runs
// (n4096): one block update costs more than fetching its operands.
func DefaultConfig() Config { return Config{N: 512, B: 32} }

const flopCost = 5 * sim.Nanosecond

// Run executes LU on rt and reports the result.
func Run(rt appapi.Runtime, cfg Config) appapi.Result {
	if cfg.N == 0 {
		cfg = DefaultConfig()
	}
	n, bs := cfg.N, cfg.B
	nb := n / bs // blocks per dimension
	procs := rt.Procs()
	main := rt.Main()
	acc := rt.Acc()

	// Processor grid pr x pc (as square as possible).
	pr := 1
	for pr*pr < procs {
		pr++
	}
	for procs%pr != 0 {
		pr--
	}
	pc := procs / pr

	// Matrix stored block-contiguous: block (bi,bj) occupies bs*bs doubles.
	mat, err := rt.Malloc(main, "lu.A", int64(n)*int64(n)*8)
	if err != nil {
		panic("lu: " + err.Error())
	}
	blkAddr := func(bi, bj int) memsys.Addr {
		return mat + memsys.Addr(((bi*nb)+bj)*bs*bs*8)
	}
	owner := func(bi, bj int) int { return (bi%pr)*pc + (bj % pc) }

	var sec appapi.Section
	var red appapi.Reduce
	blkFlops := sim.Time(2*bs*bs*bs) * flopCost

	appapi.RunWorkers(rt, procs, func(t *sim.Task, p int) {
		buf := make([]float64, bs*bs)
		l := make([]float64, bs*bs)
		u := make([]float64, bs*bs)

		// Init: owners fill their blocks (diagonally dominant matrix).
		for bi := 0; bi < nb; bi++ {
			for bj := 0; bj < nb; bj++ {
				if owner(bi, bj) != p {
					continue
				}
				for i := 0; i < bs; i++ {
					for j := 0; j < bs; j++ {
						gi, gj := bi*bs+i, bj*bs+j
						v := 1.0 / (1 + float64(gi+gj))
						if gi == gj {
							v += float64(n)
						}
						buf[i*bs+j] = v
					}
				}
				acc.WriteF64s(t, blkAddr(bi, bj), buf)
			}
		}
		rt.Barrier(t, "lu.init", procs)
		sec.Enter(t)

		for k := 0; k < nb; k++ {
			// Factor the diagonal block.
			if owner(k, k) == p {
				acc.ReadF64s(t, blkAddr(k, k), buf)
				factorDiag(buf, bs)
				acc.WriteF64s(t, blkAddr(k, k), buf)
				t.Compute(blkFlops / 3)
			}
			rt.Barrier(t, "lu.diag", procs)
			// Perimeter: update row k and column k blocks.
			acc.ReadF64s(t, blkAddr(k, k), buf)
			for j := k + 1; j < nb; j++ {
				if owner(k, j) == p {
					acc.ReadF64s(t, blkAddr(k, j), u)
					lowerSolve(buf, u, bs)
					acc.WriteF64s(t, blkAddr(k, j), u)
					t.Compute(blkFlops / 2)
				}
				if owner(j, k) == p {
					acc.ReadF64s(t, blkAddr(j, k), l)
					upperSolve(buf, l, bs)
					acc.WriteF64s(t, blkAddr(j, k), l)
					t.Compute(blkFlops / 2)
				}
			}
			rt.Barrier(t, "lu.perim", procs)
			// Interior: A(i,j) -= L(i,k) * U(k,j).
			for i := k + 1; i < nb; i++ {
				for j := k + 1; j < nb; j++ {
					if owner(i, j) != p {
						continue
					}
					acc.ReadF64s(t, blkAddr(i, k), l)
					acc.ReadF64s(t, blkAddr(k, j), u)
					acc.ReadF64s(t, blkAddr(i, j), buf)
					matmulSub(buf, l, u, bs)
					acc.WriteF64s(t, blkAddr(i, j), buf)
					t.Compute(blkFlops)
				}
			}
			rt.Barrier(t, "lu.inner", procs)
		}

		// Checksum over owned blocks of the factored matrix.
		sum := 0.0
		for bi := 0; bi < nb; bi++ {
			for bj := 0; bj < nb; bj++ {
				if owner(bi, bj) != p {
					continue
				}
				acc.ReadF64s(t, blkAddr(bi, bj), buf)
				for _, v := range buf {
					sum += math.Abs(v)
				}
			}
		}
		red.Add(p, sum)
		sec.Leave(t)
	})

	res := appapi.Result{App: "LU", Checksum: red.Sum(procs)}
	appapi.Finalize(rt, &res, &sec)
	return res
}

// factorDiag factors a bs x bs block in place (Doolittle, no pivoting).
func factorDiag(a []float64, bs int) {
	for k := 0; k < bs; k++ {
		for i := k + 1; i < bs; i++ {
			a[i*bs+k] /= a[k*bs+k]
			for j := k + 1; j < bs; j++ {
				a[i*bs+j] -= a[i*bs+k] * a[k*bs+j]
			}
		}
	}
}

// lowerSolve computes U := L^-1 * U for the unit-lower triangle of diag.
func lowerSolve(diag, u []float64, bs int) {
	for k := 0; k < bs; k++ {
		for i := k + 1; i < bs; i++ {
			f := diag[i*bs+k]
			for j := 0; j < bs; j++ {
				u[i*bs+j] -= f * u[k*bs+j]
			}
		}
	}
}

// upperSolve computes L := L * U^-1 for the upper triangle of diag.
func upperSolve(diag, l []float64, bs int) {
	for j := 0; j < bs; j++ {
		d := diag[j*bs+j]
		for i := 0; i < bs; i++ {
			l[i*bs+j] /= d
			for k := j + 1; k < bs; k++ {
				l[i*bs+k] -= l[i*bs+j] * diag[j*bs+k]
			}
		}
	}
}

// matmulSub computes C -= A*B for bs x bs blocks.
func matmulSub(c, a, b []float64, bs int) {
	for i := 0; i < bs; i++ {
		for k := 0; k < bs; k++ {
			f := a[i*bs+k]
			if f == 0 {
				continue
			}
			for j := 0; j < bs; j++ {
				c[i*bs+j] -= f * b[k*bs+j]
			}
		}
	}
}
