package lu

import (
	"math"
	"testing"

	"cables/internal/m4"
)

// referenceLU factors the same diagonally dominant matrix sequentially
// with plain Doolittle elimination.
func referenceLU(n int) []float64 {
	a := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			v := 1.0 / (1 + float64(i+j))
			if i == j {
				v += float64(n)
			}
			a[i*n+j] = v
		}
	}
	for k := 0; k < n; k++ {
		for i := k + 1; i < n; i++ {
			a[i*n+k] /= a[k*n+k]
			for j := k + 1; j < n; j++ {
				a[i*n+j] -= a[i*n+k] * a[k*n+j]
			}
		}
	}
	return a
}

// TestBlockedLUMatchesReference: the parallel blocked factorization equals
// sequential unblocked elimination (same fill-in, no pivoting).
func TestBlockedLUMatchesReference(t *testing.T) {
	const n, bs = 64, 16
	ref := referenceLU(n)
	want := 0.0
	for _, v := range ref {
		want += math.Abs(v)
	}
	rt := m4.New(m4.Config{Procs: 4, ProcsPerNode: 2, ArenaBytes: 16 << 20})
	res := Run(rt, Config{N: n, B: bs})
	if rel := math.Abs(res.Checksum-want) / want; rel > 1e-9 {
		t.Errorf("blocked LU checksum %g, reference %g (rel %g)", res.Checksum, want, rel)
	}
}

// TestChecksumStableAcrossProcs: same factorization at any width.
func TestChecksumStableAcrossProcs(t *testing.T) {
	var base float64
	for _, procs := range []int{1, 4, 8} {
		rt := m4.New(m4.Config{Procs: procs, ProcsPerNode: 2, ArenaBytes: 16 << 20})
		res := Run(rt, Config{N: 96, B: 16})
		if procs == 1 {
			base = res.Checksum
			continue
		}
		if rel := math.Abs(res.Checksum-base) / base; rel > 1e-9 {
			t.Errorf("p=%d drift: %g vs %g", procs, res.Checksum, base)
		}
	}
}

// TestKernelFactorReconstruction: factorDiag's L and U multiply back to
// the original block.
func TestKernelFactorReconstruction(t *testing.T) {
	const bs = 8
	diag := make([]float64, bs*bs)
	for i := 0; i < bs; i++ {
		for j := 0; j < bs; j++ {
			diag[i*bs+j] = 1 / (1 + float64(i+j))
			if i == j {
				diag[i*bs+j] += bs
			}
		}
	}
	orig := append([]float64(nil), diag...)
	factorDiag(diag, bs)

	// Reconstruct L*U and compare with the original block.
	recon := make([]float64, bs*bs)
	for i := 0; i < bs; i++ {
		for j := 0; j < bs; j++ {
			sum := 0.0
			for k := 0; k <= min(i, j); k++ {
				l := diag[i*bs+k]
				if k == i {
					l = 1
				}
				if k <= j {
					sum += l * diag[k*bs+j]
				}
			}
			recon[i*bs+j] = sum
		}
	}
	for i := range recon {
		if math.Abs(recon[i]-orig[i]) > 1e-9 {
			t.Fatalf("LU reconstruction off at %d: %g vs %g", i, recon[i], orig[i])
		}
	}
}
