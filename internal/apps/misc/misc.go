// Package misc implements the three publicly-available pthreads programs of
// the paper's Table 5 — PN (prime numbers), PC (producer–consumer), and
// PIPE (a threaded pipeline) — written directly against the CableS pthreads
// API (dynamic thread creation, mutexes, condition variables, cancel, keys,
// GLOBAL static variables), with per-operation timing instrumentation.
package misc

import (
	"sync"

	cables "cables/internal/core"
	"cables/internal/memsys"
	"cables/internal/sim"
	"cables/internal/stats"
)

// OpStats aliases the shared per-operation timing collector.
type OpStats = stats.OpStats

// ProgResult is a pthreads demo program's outcome.
type ProgResult struct {
	Name   string
	Answer int64
	Total  sim.Time
	Stats  *OpStats
}

// RunPN computes the primes below limit with dynamically created worker
// threads, a GLOBAL counter guarded by a mutex, a progress condition watched
// by a monitor thread, and pthread_cancel to retire the monitor.
func RunPN(rt *cables.Runtime, limit, workers int) ProgResult {
	st := &OpStats{}
	main := rt.Start()
	acc := rt.Acc()
	count := rt.Mem().GlobalVar(8) // GLOBAL static variable
	acc.WriteI64(main.Task, count, 0)

	var mx *cables.Mutex
	var progress *cables.Cond
	st.Time(main.Task, "mutex_init", func() { mx = rt.NewMutex(main.Task) })
	st.Time(main.Task, "cond_init", func() { progress = rt.NewCond(main.Task) })

	// Monitor thread: waits for progress signals until canceled.
	var monitor *cables.Thread
	st.Time(main.Task, "create", func() {
		monitor = rt.Create(main.Task, func(th *cables.Thread) {
			mx.Lock(th.Task)
			for {
				progress.Wait(th, mx) // cancellation point
			}
		})
	})

	chunk := (limit + workers - 1) / workers
	threads := make([]*cables.Thread, workers)
	for w := 0; w < workers; w++ {
		w := w
		st.Time(main.Task, "create", func() {
			threads[w] = rt.Create(main.Task, func(th *cables.Thread) {
				lo := 2 + w*chunk
				hi := lo + chunk
				if hi > limit+2 {
					hi = limit + 2
				}
				found := int64(0)
				for n := lo; n < hi; n++ {
					if isPrime(n) {
						found++
					}
					th.Task.Compute(sim.Time(n%97) * 2 * sim.Nanosecond)
				}
				st.Time(th.Task, "mutex_lock", func() { mx.Lock(th.Task) })
				v := acc.ReadI64(th.Task, count)
				acc.WriteI64(th.Task, count, v+found)
				st.Time(th.Task, "cond_signal", func() { progress.Signal(th.Task) })
				st.Time(th.Task, "mutex_unlock", func() { mx.Unlock(th.Task) })
			})
		})
	}
	for _, th := range threads {
		st.Time(main.Task, "join", func() { rt.Join(main.Task, th) })
	}
	st.Time(main.Task, "cancel", func() { rt.Cancel(main.Task, monitor) })
	st.Time(main.Task, "join", func() { rt.Join(main.Task, monitor) })

	mx.Lock(main.Task)
	answer := acc.ReadI64(main.Task, count)
	mx.Unlock(main.Task)
	return ProgResult{Name: "PN", Answer: answer, Total: rt.End(main.Task), Stats: st}
}

// RunPC runs the two-thread bounded-buffer producer–consumer (single node,
// so Table 5 uses it to show the cost of purely local API operations).
func RunPC(rt *cables.Runtime, items int) ProgResult {
	st := &OpStats{}
	main := rt.Start()
	acc := rt.Acc()
	buf, err := rt.Mem().Malloc(main.Task, 16)
	if err != nil {
		panic("pc: " + err.Error())
	}
	acc.WriteI64(main.Task, buf, 0)
	acc.WriteI64(main.Task, buf+8, 0)
	mx := rt.NewMutex(main.Task)
	notFull := rt.NewCond(main.Task)
	notEmpty := rt.NewCond(main.Task)

	var sum int64
	var sumMu sync.Mutex
	var producer, consumer *cables.Thread
	st.Time(main.Task, "create", func() {
		producer = rt.Create(main.Task, func(th *cables.Thread) {
			for i := 1; i <= items; i++ {
				st.Time(th.Task, "mutex_lock", func() { mx.Lock(th.Task) })
				for acc.ReadI64(th.Task, buf+8) == 1 {
					st.Time(th.Task, "cond_wait", func() { notFull.Wait(th, mx) })
				}
				acc.WriteI64(th.Task, buf, int64(i))
				acc.WriteI64(th.Task, buf+8, 1)
				st.Time(th.Task, "cond_signal", func() { notEmpty.Signal(th.Task) })
				st.Time(th.Task, "mutex_unlock", func() { mx.Unlock(th.Task) })
			}
		})
	})
	st.Time(main.Task, "create", func() {
		consumer = rt.Create(main.Task, func(th *cables.Thread) {
			var s int64
			for i := 0; i < items; i++ {
				st.Time(th.Task, "mutex_lock", func() { mx.Lock(th.Task) })
				for acc.ReadI64(th.Task, buf+8) == 0 {
					st.Time(th.Task, "cond_wait", func() { notEmpty.Wait(th, mx) })
				}
				s += acc.ReadI64(th.Task, buf)
				acc.WriteI64(th.Task, buf+8, 0)
				st.Time(th.Task, "cond_signal", func() { notFull.Signal(th.Task) })
				st.Time(th.Task, "mutex_unlock", func() { mx.Unlock(th.Task) })
			}
			sumMu.Lock()
			sum = s
			sumMu.Unlock()
		})
	})
	st.Time(main.Task, "join", func() { rt.Join(main.Task, producer) })
	st.Time(main.Task, "join", func() { rt.Join(main.Task, consumer) })
	sumMu.Lock()
	defer sumMu.Unlock()
	return ProgResult{Name: "PC", Answer: sum, Total: rt.End(main.Task), Stats: st}
}

// RunPIPE builds a threaded pipeline: each stage transforms items flowing
// through shared single-slot buffers guarded by mutex+cond pairs; stages
// keep private state in thread-specific data (pthread keys).
func RunPIPE(rt *cables.Runtime, stages, items int) ProgResult {
	st := &OpStats{}
	main := rt.Start()
	acc := rt.Acc()

	// stage buffers: [value, full] per inter-stage link.
	links, err := rt.Mem().Malloc(main.Task, int64(stages+1)*16)
	if err != nil {
		panic("pipe: " + err.Error())
	}
	linkA := func(i int) memsys.Addr { return links + memsys.Addr(i*16) }
	mxs := make([]*cables.Mutex, stages+1)
	conds := make([]*cables.Cond, stages+1)
	for i := 0; i <= stages; i++ {
		acc.WriteI64(main.Task, linkA(i), 0)
		acc.WriteI64(main.Task, linkA(i)+8, 0)
		mxs[i] = rt.NewMutex(main.Task)
		conds[i] = rt.NewCond(main.Task)
	}
	key := rt.KeyCreate(main.Task)

	push := func(th *cables.Thread, link int, v int64) {
		st.Time(th.Task, "mutex_lock", func() { mxs[link].Lock(th.Task) })
		for acc.ReadI64(th.Task, linkA(link)+8) == 1 {
			st.Time(th.Task, "cond_wait", func() { conds[link].Wait(th, mxs[link]) })
		}
		acc.WriteI64(th.Task, linkA(link), v)
		acc.WriteI64(th.Task, linkA(link)+8, 1)
		st.Time(th.Task, "cond_broadcast", func() { conds[link].Broadcast(th.Task) })
		st.Time(th.Task, "mutex_unlock", func() { mxs[link].Unlock(th.Task) })
	}
	pull := func(th *cables.Thread, link int) int64 {
		st.Time(th.Task, "mutex_lock", func() { mxs[link].Lock(th.Task) })
		for acc.ReadI64(th.Task, linkA(link)+8) == 0 {
			st.Time(th.Task, "cond_wait", func() { conds[link].Wait(th, mxs[link]) })
		}
		v := acc.ReadI64(th.Task, linkA(link))
		acc.WriteI64(th.Task, linkA(link)+8, 0)
		st.Time(th.Task, "cond_broadcast", func() { conds[link].Broadcast(th.Task) })
		st.Time(th.Task, "mutex_unlock", func() { mxs[link].Unlock(th.Task) })
		return v
	}

	threads := make([]*cables.Thread, stages)
	for s := 0; s < stages; s++ {
		s := s
		st.Time(main.Task, "create", func() {
			threads[s] = rt.Create(main.Task, func(th *cables.Thread) {
				th.SetSpecific(key, int64(0)) // per-stage running count (TSD)
				for i := 0; i < items; i++ {
					v := pull(th, s)
					v = v*2 + 1 // the stage's calculation
					th.Task.Compute(500 * sim.Nanosecond)
					cnt := th.GetSpecific(key).(int64)
					th.SetSpecific(key, cnt+1)
					push(th, s+1, v)
				}
			})
		})
	}
	// A feeder thread sources the pipeline while the main thread drains it
	// (the pipeline holds only one item per link, so one thread cannot do
	// both).
	feeder := rt.Create(main.Task, func(th *cables.Thread) {
		for i := 1; i <= items; i++ {
			push(th, 0, int64(i))
		}
	})
	var sum int64
	for i := 0; i < items; i++ {
		sum += pull(main, stages)
	}
	rt.Join(main.Task, feeder)
	for _, th := range threads {
		st.Time(main.Task, "join", func() { rt.Join(main.Task, th) })
	}
	return ProgResult{Name: "PIPE", Answer: sum, Total: rt.End(main.Task), Stats: st}
}

func isPrime(n int) bool {
	if n < 2 {
		return false
	}
	for d := 2; d*d <= n; d++ {
		if n%d == 0 {
			return false
		}
	}
	return true
}
