package misc

import (
	"testing"

	cables "cables/internal/core"
)

func newRT(nodes int) *cables.Runtime {
	return cables.New(cables.Config{MaxNodes: nodes, ProcsPerNode: 2})
}

// primesBelow counts primes in [2, limit+1] the boring way.
func primesBelow(limit int) int64 {
	var n int64
	for v := 2; v < limit+2; v++ {
		if isPrime(v) {
			n++
		}
	}
	return n
}

// TestPNComputesPrimeCount: the distributed count matches a sequential
// sieve, exercising create/join/mutex/cond/cancel along the way.
func TestPNComputesPrimeCount(t *testing.T) {
	const limit = 2000
	res := RunPN(newRT(4), limit, 5)
	if want := primesBelow(limit); res.Answer != want {
		t.Errorf("primes: got %d want %d", res.Answer, want)
	}
	for _, op := range []string{"create", "join", "mutex_lock", "cond_signal", "cancel"} {
		if _, n := res.Stats.Avg(op); n == 0 {
			t.Errorf("op %q never measured", op)
		}
	}
}

// TestPCTransfersEveryItem: the bounded buffer delivers all items exactly
// once (sum formula), using only local operations on one node.
func TestPCTransfersEveryItem(t *testing.T) {
	const items = 200
	// Whether the buffer ever blocks is an interleaving outcome: a
	// perfectly alternating producer/consumer pair always finds the buffer
	// in the right state and records no cond waits.  The sum must hold on
	// every run; the blocking machinery must be exercised by at least one.
	waited := false
	for attempt := 0; attempt < 5 && !waited; attempt++ {
		res := RunPC(newRT(1), items)
		if want := int64(items * (items + 1) / 2); res.Answer != want {
			t.Fatalf("sum: got %d want %d", res.Answer, want)
		}
		_, n := res.Stats.Avg("cond_wait")
		waited = n > 0
	}
	if !waited {
		t.Error("no condition waits recorded in any attempt — buffer never blocked")
	}
}

// TestPIPEAppliesStagesInOrder: item v becomes f^S(v) with f(x)=2x+1, so
// f^S(v) = 2^S * v + (2^S - 1).
func TestPIPEAppliesStagesInOrder(t *testing.T) {
	const stages, items = 5, 60
	res := RunPIPE(newRT(4), stages, items)
	mult := int64(1) << stages
	var want int64
	for i := 1; i <= items; i++ {
		want += mult*int64(i) + (mult - 1)
	}
	if res.Answer != want {
		t.Errorf("pipeline output: got %d want %d", res.Answer, want)
	}
	if _, n := res.Stats.Avg("cond_broadcast"); n == 0 {
		t.Error("no broadcasts recorded")
	}
}

// TestProgramsReportOpStats: Table 5's inputs are non-degenerate.
func TestProgramsReportOpStats(t *testing.T) {
	res := RunPN(newRT(2), 500, 3)
	if avg, n := res.Stats.Avg("mutex_unlock"); n == 0 || avg <= 0 {
		t.Errorf("mutex_unlock: avg=%v n=%d", avg, n)
	}
	if res.Total <= 0 {
		t.Error("no virtual time elapsed")
	}
}
