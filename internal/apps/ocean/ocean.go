// Package ocean ports (a scaled form of) the SPLASH-2 OCEAN application:
// an eddy-current ocean simulation dominated by red-black SOR relaxations
// over many 2D grids.  OCEAN matters to the paper for two reasons: (1) it
// allocates many shared grids, so the base system's static per-segment
// registration exhausts NIC regions at 32 processors while CableS (one
// protocol region per node) keeps running; (2) rows are page-padded and
// partitioned in contiguous row blocks, so placement stays good even at
// 64 KB map-unit granularity (<10% misplaced pages in Figure 6).
package ocean

import (
	"math"

	"cables/internal/apps/appapi"
	"cables/internal/memsys"
	"cables/internal/sim"
)

// Config sizes the OCEAN run.
type Config struct {
	// N is the grid dimension (paper: n514; scaled default: 256).  Rows are
	// padded to a page, as in the SPLASH-2 "contiguous partitions" version.
	N int
	// Iters is the number of red-black SOR sweeps per grid.
	Iters int
	// AuxGrids is the number of additional small shared grids allocated
	// (multigrid levels, forcing terms, ...); OCEAN's segment count is what
	// trips the base system's registration limits.
	AuxGrids int
}

// DefaultConfig returns the scaled default problem size.
func DefaultConfig() Config { return Config{N: 256, Iters: 4, AuxGrids: 42} }

const (
	flopCost = 5 * sim.Nanosecond
	rowBytes = memsys.PageSize // page-padded rows
	mainGrid = 8               // number of full-size grids
)

// Run executes OCEAN on rt.  If the base system cannot register the shared
// segments (the paper's 32-processor failure), Run returns an error result
// via the Failed field of the harness — here we panic with the registration
// error wrapped, which the harness catches per experiment.
func Run(rt appapi.Runtime, cfg Config) (appapi.Result, error) {
	if cfg.N == 0 {
		cfg = DefaultConfig()
	}
	n := cfg.N
	procs := rt.Procs()
	main := rt.Main()
	acc := rt.Acc()

	grids := make([]memsys.Addr, mainGrid)
	for g := range grids {
		a, err := rt.Malloc(main, "ocean.grid", int64(n)*rowBytes)
		if err != nil {
			return appapi.Result{App: "OCEAN"}, err
		}
		grids[g] = a
	}
	for i := 0; i < cfg.AuxGrids; i++ {
		if _, err := rt.Malloc(main, "ocean.aux", rowBytes); err != nil {
			return appapi.Result{App: "OCEAN"}, err
		}
	}

	rowA := func(g memsys.Addr, r int) memsys.Addr { return g + memsys.Addr(r)*rowBytes }

	var sec appapi.Section
	var red appapi.Reduce

	appapi.RunWorkers(rt, procs, func(t *sim.Task, p int) {
		lo, hi := share(n, procs, p)
		row := make([]float64, n)
		up := make([]float64, n)
		down := make([]float64, n)

		// Init: owners fill their row blocks of every main grid.
		for g, ga := range grids {
			for r := lo; r < hi; r++ {
				for c := 0; c < n; c++ {
					row[c] = math.Sin(float64(g+1)*float64(r*n+c)) * 0.01
				}
				acc.WriteF64s(t, rowA(ga, r), row)
			}
		}
		rt.Barrier(t, "ocean.init", procs)
		sec.Enter(t)

		// Red-black SOR sweeps over the first two grids, with the third as
		// the forcing term — the relaxation structure of OCEAN's solver.
		resid := 0.0
		for it := 0; it < cfg.Iters; it++ {
			for color := 0; color < 2; color++ {
				for gi := 0; gi < 2; gi++ {
					ga := grids[gi]
					// Rows inside the worker's block are read whole; the
					// two boundary rows belong to neighbours and are read
					// only at the stable (opposite-color) columns they
					// contribute to the stencil.
					loadRow := func(dst []float64, rr, r int) {
						if rr >= lo && rr < hi {
							acc.ReadF64s(t, rowA(ga, rr), dst)
							return
						}
						for c := 1 + (r+color)%2; c < n-1; c += 2 {
							dst[c] = acc.ReadF64(t, rowA(ga, rr)+memsys.Addr(c*8))
						}
					}
					for r := lo; r < hi; r++ {
						if r == 0 || r == n-1 {
							continue
						}
						loadRow(up, r-1, r)
						acc.ReadF64s(t, rowA(ga, r), row)
						loadRow(down, r+1, r)
						// Only the active color's points are written back:
						// the opposite color is concurrently read by the
						// neighbouring rows' owners (red-black dependence).
						for c := 1 + (r+color)%2; c < n-1; c += 2 {
							v := 0.25 * (up[c] + down[c] + row[c-1] + row[c+1])
							resid += math.Abs(v - row[c])
							acc.WriteF64(t, rowA(ga, r)+memsys.Addr(c*8), v)
						}
						t.Compute(sim.Time(n/2) * 6 * flopCost)
					}
				}
				rt.Barrier(t, "ocean.sor", procs)
			}
			// Stream-function updates on two more grids (local sweeps).
			for gi := 4; gi < 6; gi++ {
				ga := grids[gi]
				sa := grids[gi+2]
				for r := lo; r < hi; r++ {
					acc.ReadF64s(t, rowA(ga, r), row)
					acc.ReadF64s(t, rowA(sa, r), up)
					for c := 0; c < n; c++ {
						row[c] += 0.5 * up[c]
					}
					acc.WriteF64s(t, rowA(ga, r), row)
					t.Compute(sim.Time(n) * 2 * flopCost)
				}
			}
			rt.Barrier(t, "ocean.step", procs)
		}
		red.Add(p, resid)
		sec.Leave(t)
	})

	res := appapi.Result{App: "OCEAN", Checksum: red.Sum(procs)}
	appapi.Finalize(rt, &res, &sec)
	return res, nil
}

func share(n, procs, p int) (lo, hi int) {
	per := n / procs
	rem := n % procs
	lo = p*per + min(p, rem)
	hi = lo + per
	if p < rem {
		hi++
	}
	return lo, hi
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
