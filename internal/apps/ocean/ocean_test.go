package ocean

import (
	"math"
	"testing"

	"cables/internal/m4"
)

func runOcean(t *testing.T, procs, n, iters int) float64 {
	t.Helper()
	rt := m4.New(m4.Config{Procs: procs, ProcsPerNode: 2, ArenaBytes: 64 << 20})
	res, err := Run(rt, Config{N: n, Iters: iters, AuxGrids: 4})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return res.Checksum
}

// TestResidualStableAcrossProcs: the SOR sweeps visit the same points in
// the same order per row regardless of partitioning.
func TestResidualStableAcrossProcs(t *testing.T) {
	base := runOcean(t, 1, 64, 2)
	for _, procs := range []int{4, 8} {
		got := runOcean(t, procs, 64, 2)
		if rel := math.Abs(got-base) / base; rel > 1e-9 {
			t.Errorf("p=%d residual drift: %g vs %g", procs, got, base)
		}
	}
}

// TestMoreItersMoreWork: the residual accumulator grows with sweeps.
func TestMoreItersMoreWork(t *testing.T) {
	two := runOcean(t, 2, 64, 2)
	four := runOcean(t, 2, 64, 4)
	if four <= two {
		t.Errorf("iterations did not accumulate: 2=%g 4=%g", two, four)
	}
}

// TestSegmentCountTripsBaseRegistration reproduces the paper's OCEAN
// observation at the allocation level: the default 50 segments register on
// up to 8 nodes but not on 16.
func TestSegmentCountTripsBaseRegistration(t *testing.T) {
	rt16 := m4.New(m4.Config{Procs: 32, ProcsPerNode: 2, ArenaBytes: 64 << 20})
	if _, err := Run(rt16, Config{N: 64, Iters: 1, AuxGrids: 42}); err == nil {
		t.Error("expected registration failure on 16 nodes")
	}
	rt8 := m4.New(m4.Config{Procs: 16, ProcsPerNode: 2, ArenaBytes: 64 << 20})
	if _, err := Run(rt8, Config{N: 64, Iters: 1, AuxGrids: 42}); err != nil {
		t.Errorf("unexpected failure on 8 nodes: %v", err)
	}
}
