// Package omp contains the three OpenMP SPLASH-2 programs of the paper's
// §3.3 (FFT, LU, OCEAN), written the way an OpenMP-to-pthreads translator
// (OdinMP) emits them and executed on CableS.  These are SMP-style codes:
// the master thread initializes all shared data, so every page is homed on
// the first node and the cluster pays remote faults for most accesses —
// which is why their speedups (Table 6) are far below the DSM-tuned
// SPLASH-2 versions of Figure 5.
package omp

import (
	"math"

	"cables/internal/apps/appapi"
	"cables/internal/apps/fft"
	"cables/internal/memsys"
	"cables/internal/openmp"
	"cables/internal/sim"
)

const flopCost = 5 * sim.Nanosecond

// FFT runs the OpenMP FFT (m = log2 points, even) on r.
func FFT(r *openmp.Runtime, m int) appapi.Result {
	if m%2 != 0 {
		m++
	}
	n := 1 << m
	rows := 1 << (m / 2)
	main := r.Main()
	acc := r.Acc()
	a := r.Malloc(main, int64(n)*16)
	b := r.Malloc(main, int64(n)*16)
	rowA := func(base memsys.Addr, row int) memsys.Addr {
		return base + memsys.Addr(row*rows*16)
	}

	// The SPLASH-2 OpenMP FFT initializes inside a parallel region, so
	// first touch distributes the rows; the poor cluster speedups come from
	// the all-to-all transposes and barriers, not from initialization.
	r.Warmup()
	r.Parallel(func(o *OMP) {
		t := o.Task()
		buf := make([]float64, 2*rows)
		o.For(0, rows, func(row int) {
			for c := 0; c < rows; c++ {
				idx := row*rows + c
				buf[2*c] = math.Sin(float64(idx))
				buf[2*c+1] = 0.5 * math.Cos(float64(idx))
			}
			acc.WriteF64s(t, rowA(a, row), buf)
		})
	})

	var sum float64
	pStart := main.Now()
	r.Parallel(func(o *OMP) { runFFTRegion(r, o, a, b, rows, n, &sum) })
	parallel := main.Now() - pStart
	r.Close()
	return r.Result("OMP-FFT", parallel, sum)
}

// OMP aliases the package's per-thread handle for the program bodies.
type OMP = openmp.OMP

func runFFTRegion(r *openmp.Runtime, o *OMP, a, b memsys.Addr, rows, n int, sum *float64) {
	acc := r.Acc()
	t := o.Task()
	buf := make([]float64, 2*rows)
	rowA := func(base memsys.Addr, row int) memsys.Addr {
		return base + memsys.Addr(row*rows*16)
	}
	// Transpose a -> b.
	o.For(0, rows, func(row int) {
		for c := 0; c < rows; c++ {
			e := a + memsys.Addr((c*rows+row)*16)
			buf[2*c] = acc.ReadF64(t, e)
			buf[2*c+1] = acc.ReadF64(t, e+8)
		}
		acc.WriteF64s(t, rowA(b, row), buf)
	})
	// Row FFTs + twiddle.
	o.For(0, rows, func(row int) {
		acc.ReadF64s(t, rowA(b, row), buf)
		fft.FFT1D(buf)
		for c := 0; c < rows; c++ {
			ang := -2 * math.Pi * float64(row) * float64(c) / float64(n)
			wr, wi := math.Cos(ang), math.Sin(ang)
			re, im := buf[2*c], buf[2*c+1]
			buf[2*c] = re*wr - im*wi
			buf[2*c+1] = re*wi + im*wr
		}
		acc.WriteF64s(t, rowA(b, row), buf)
		t.Compute(sim.Time(rows) * 13 * flopCost)
	})
	// Transpose b -> a, final row FFTs.
	o.For(0, rows, func(row int) {
		for c := 0; c < rows; c++ {
			e := b + memsys.Addr((c*rows+row)*16)
			buf[2*c] = acc.ReadF64(t, e)
			buf[2*c+1] = acc.ReadF64(t, e+8)
		}
		fft.FFT1D(buf)
		acc.WriteF64s(t, rowA(a, row), buf)
		t.Compute(sim.Time(rows) * 5 * flopCost)
	})
	// Reduction: checksum.
	local := 0.0
	o.ForNowait(0, rows, func(row int) {
		acc.ReadF64s(t, rowA(a, row), buf)
		for _, v := range buf {
			local += math.Abs(v)
		}
	})
	o.Critical("fft.sum", func() { *sum += local })
	o.Barrier()
}

// LU runs the OpenMP LU (unblocked row-cyclic, as the OpenMP SPLASH port
// distributes it) of dimension n on r.
func LU(r *openmp.Runtime, n int) appapi.Result {
	main := r.Main()
	acc := r.Acc()
	mat := r.Malloc(main, int64(n)*int64(n)*8)
	rowA := func(i int) memsys.Addr { return mat + memsys.Addr(i*n*8) }

	row := make([]float64, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			v := 1.0 / (1 + float64(i+j))
			if i == j {
				v += float64(n)
			}
			row[j] = v
		}
		acc.WriteF64s(main, rowA(i), row)
	}

	var sum float64
	r.Warmup()
	pStart := main.Now()
	r.Parallel(func(o *OMP) {
		t := o.Task()
		piv := make([]float64, n)
		mine := make([]float64, n)
		for k := 0; k < n-1; k++ {
			acc.ReadF64s(t, rowA(k), piv)
			// Row-cyclic elimination of rows below k.
			o.For(k+1, n, func(i int) {
				acc.ReadF64s(t, rowA(i), mine)
				f := mine[k] / piv[k]
				mine[k] = f
				for j := k + 1; j < n; j++ {
					mine[j] -= f * piv[j]
				}
				acc.WriteF64s(t, rowA(i), mine)
				t.Compute(sim.Time(n-k) * 2 * flopCost)
			})
		}
		local := 0.0
		o.ForNowait(0, n, func(i int) {
			acc.ReadF64s(t, rowA(i), mine)
			for _, v := range mine {
				local += math.Abs(v)
			}
		})
		o.Critical("lu.sum", func() { sumAdd(&sum, local) })
		o.Barrier()
	})
	parallel := main.Now() - pStart
	r.Close()
	return r.Result("OMP-LU", parallel, sum)
}

// Ocean runs the OpenMP OCEAN (red-black SOR on master-initialized grids).
func Ocean(r *openmp.Runtime, n, iters int) appapi.Result {
	main := r.Main()
	acc := r.Acc()
	grid := r.Malloc(main, int64(n)*memsys.PageSize)
	rowA := func(i int) memsys.Addr { return grid + memsys.Addr(i)*memsys.PageSize }

	row := make([]float64, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			row[j] = 0.01 * math.Sin(float64(i*n+j))
		}
		acc.WriteF64s(main, rowA(i), row)
	}

	var sum float64
	r.Warmup()
	pStart := main.Now()
	r.Parallel(func(o *OMP) {
		t := o.Task()
		mid := make([]float64, n)
		local := 0.0
		for it := 0; it < iters; it++ {
			for color := 0; color < 2; color++ {
				o.For(1, n-1, func(i int) {
					acc.ReadF64s(t, rowA(i), mid)
					// Up/down rows may belong to other threads: read only
					// the stable (opposite-color) columns the stencil uses,
					// and write back only the active color.
					for j := 1 + (i+color)%2; j < n-1; j += 2 {
						upV := acc.ReadF64(t, rowA(i-1)+memsys.Addr(j*8))
						downV := acc.ReadF64(t, rowA(i+1)+memsys.Addr(j*8))
						v := 0.25 * (upV + downV + mid[j-1] + mid[j+1])
						local += math.Abs(v - mid[j])
						acc.WriteF64(t, rowA(i)+memsys.Addr(j*8), v)
					}
					t.Compute(sim.Time(n/2) * 6 * flopCost)
				})
			}
		}
		o.Critical("ocean.sum", func() { sumAdd(&sum, local) })
		o.Barrier()
	})
	parallel := main.Now() - pStart
	r.Close()
	return r.Result("OMP-OCEAN", parallel, sum)
}

func sumAdd(dst *float64, v float64) { *dst += v }
