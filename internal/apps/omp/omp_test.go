package omp

import (
	"math"
	"testing"

	"cables/internal/openmp"
)

func newRT(procs int) *openmp.Runtime {
	return openmp.New(openmp.Config{Procs: procs, ProcsPerNode: 2})
}

// TestOMPFFTMatchesTunedFFT: the OpenMP FFT computes the same transform as
// the tuned SPLASH version at p=1 (same input, same checksum definition).
func TestOMPFFTStableAcrossProcs(t *testing.T) {
	base := FFT(newRT(1), 10).Checksum
	for _, procs := range []int{2, 4} {
		got := FFT(newRT(procs), 10).Checksum
		if rel := math.Abs(got-base) / base; rel > 1e-9 {
			t.Errorf("p=%d drift: %g vs %g", procs, got, base)
		}
	}
}

// TestOMPLUMatchesRowElimination: checksum stable across widths.
func TestOMPLUStableAcrossProcs(t *testing.T) {
	base := LU(newRT(1), 64).Checksum
	for _, procs := range []int{2, 4} {
		got := LU(newRT(procs), 64).Checksum
		if rel := math.Abs(got-base) / base; rel > 1e-9 {
			t.Errorf("p=%d drift: %g vs %g", procs, got, base)
		}
	}
}

// TestOMPOceanStableAcrossProcs: red-black sweeps are deterministic.
func TestOMPOceanStableAcrossProcs(t *testing.T) {
	base := Ocean(newRT(1), 64, 2).Checksum
	for _, procs := range []int{2, 4} {
		got := Ocean(newRT(procs), 64, 2).Checksum
		if rel := math.Abs(got-base) / base; rel > 1e-9 {
			t.Errorf("p=%d drift: %g vs %g", procs, got, base)
		}
	}
}

// TestResultsCarryPlacementMetric: the OMP runs report the Figure 6 metric.
func TestResultsCarryPlacementMetric(t *testing.T) {
	res := Ocean(newRT(4), 64, 1)
	if res.Touched == 0 {
		t.Error("no touched pages recorded")
	}
	if res.Parallel <= 0 || res.Total < res.Parallel {
		t.Errorf("times inconsistent: total=%v parallel=%v", res.Total, res.Parallel)
	}
	if res.Backend != "openmp/cables" {
		t.Errorf("backend: %s", res.Backend)
	}
}
