// Package radix ports the SPLASH-2 RADIX kernel: a parallel radix sort.
// Each pass builds per-processor histograms over contiguous key blocks, a
// global prefix computes write offsets, and the permutation phase scatters
// keys across the whole destination array — the communication- and
// false-sharing-heavy access pattern the paper cites ([5,16]).
package radix

import (
	"cables/internal/apps/appapi"
	"cables/internal/memsys"
	"cables/internal/sim"
)

// Config sizes the RADIX run.
type Config struct {
	// N is the number of 64-bit keys (paper: n16777216; scaled default 128K).
	N int
	// RadixBits is the digit width (SPLASH default: 10 bits -> radix 1024).
	RadixBits int
	// Passes is the number of digit passes.
	Passes int
}

// DefaultConfig returns the scaled default problem size.
func DefaultConfig() Config { return Config{N: 128 << 10, RadixBits: 10, Passes: 2} }

const opCost = 5 * sim.Nanosecond

// Run executes RADIX on rt.
func Run(rt appapi.Runtime, cfg Config) appapi.Result {
	if cfg.N == 0 {
		cfg = DefaultConfig()
	}
	n := cfg.N
	radix := 1 << cfg.RadixBits
	procs := rt.Procs()
	main := rt.Main()
	acc := rt.Acc()

	src, err := rt.Malloc(main, "radix.keys", int64(n)*8)
	if err != nil {
		panic("radix: " + err.Error())
	}
	dst, err := rt.Malloc(main, "radix.keys2", int64(n)*8)
	if err != nil {
		panic("radix: " + err.Error())
	}
	// hist[p][d]: per-processor digit counts; offs[p][d]: write cursors.
	hist, err := rt.Malloc(main, "radix.hist", int64(procs)*int64(radix)*8)
	if err != nil {
		panic("radix: " + err.Error())
	}
	offs, err := rt.Malloc(main, "radix.offs", int64(procs)*int64(radix)*8)
	if err != nil {
		panic("radix: " + err.Error())
	}
	histA := func(p, d int) memsys.Addr { return hist + memsys.Addr((p*radix+d)*8) }
	offsA := func(p, d int) memsys.Addr { return offs + memsys.Addr((p*radix+d)*8) }

	var sec appapi.Section
	var red appapi.Reduce

	appapi.RunWorkers(rt, procs, func(t *sim.Task, p int) {
		lo, hi := share(n, procs, p)
		keys := make([]int64, hi-lo)
		counts := make([]int64, radix)

		// Init: fill owned key block with a deterministic pseudo-random
		// sequence bounded by the sortable digit range.
		rng := newWorkerRNG(p)
		mask := int64(1)<<(cfg.RadixBits*cfg.Passes) - 1
		for i := range keys {
			keys[i] = int64(rng.Uint64()) & mask
		}
		acc.WriteI64s(t, src+memsys.Addr(lo*8), keys)
		rt.Barrier(t, "radix.init", procs)
		sec.Enter(t)

		from, to := src, dst
		for pass := 0; pass < cfg.Passes; pass++ {
			shift := uint(pass * cfg.RadixBits)
			// Phase 1: local histogram over the owned block.
			acc.ReadI64s(t, from+memsys.Addr(lo*8), keys)
			for i := range counts {
				counts[i] = 0
			}
			for _, k := range keys {
				counts[(k>>shift)&int64(radix-1)]++
			}
			t.Compute(sim.Time(len(keys)) * 2 * opCost)
			acc.WriteI64s(t, histA(p, 0), counts)
			rt.Barrier(t, "radix.hist", procs)

			// Phase 2: processor 0 computes global prefix offsets.
			if p == 0 {
				cursor := int64(0)
				col := make([]int64, procs)
				for d := 0; d < radix; d++ {
					for q := 0; q < procs; q++ {
						col[q] = acc.ReadI64(t, histA(q, d))
					}
					for q := 0; q < procs; q++ {
						acc.WriteI64(t, offsA(q, d), cursor)
						cursor += col[q]
					}
				}
				t.Compute(sim.Time(radix*procs) * 2 * opCost)
			}
			rt.Barrier(t, "radix.prefix", procs)

			// Phase 3: permute — scattered remote writes over the whole
			// destination array (heavy diffing at the closing barrier).
			acc.ReadI64s(t, offsA(p, 0), counts)
			for _, k := range keys {
				d := (k >> shift) & int64(radix-1)
				acc.WriteI64(t, to+memsys.Addr(counts[d]*8), k)
				counts[d]++
			}
			t.Compute(sim.Time(len(keys)) * 3 * opCost)
			rt.Barrier(t, "radix.permute", procs)
			from, to = to, from
		}

		// Verify sortedness of the owned block of the final array.
		acc.ReadI64s(t, from+memsys.Addr(lo*8), keys)
		sum := 0.0
		violations := 0.0
		prev := int64(-1)
		if lo > 0 {
			prev = acc.ReadI64(t, from+memsys.Addr((lo-1)*8))
		}
		for _, k := range keys {
			if k < prev {
				violations++
			}
			prev = k
			sum += float64(k)
		}
		red.Add(p, sum+violations*1e18) // violations poison the checksum
		sec.Leave(t)
	})

	res := appapi.Result{App: "RADIX", Checksum: red.Sum(procs)}
	appapi.Finalize(rt, &res, &sec)
	return res
}

// newWorkerRNG seeds worker p's deterministic key stream.
func newWorkerRNG(p int) *sim.RNG { return sim.NewRNG(uint64(p)*77 + 13) }

func share(n, procs, p int) (lo, hi int) {
	per := n / procs
	rem := n % procs
	lo = p*per + min(p, rem)
	hi = lo + per
	if p < rem {
		hi++
	}
	return lo, hi
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
