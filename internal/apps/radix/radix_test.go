package radix

import (
	"math"
	"testing"

	"cables/internal/m4"
)

// TestSortProducesSortedOutput: the checksum encodes sortedness violations
// as huge penalties; a clean run must match the plain key sum.
func TestSortProducesSortedOutput(t *testing.T) {
	rt := m4.New(m4.Config{Procs: 4, ProcsPerNode: 2, ArenaBytes: 32 << 20})
	res := Run(rt, Config{N: 8 << 10, RadixBits: 8, Passes: 2})
	if res.Checksum >= 1e18 {
		t.Fatalf("sortedness violations detected (checksum %g)", res.Checksum)
	}
	if res.Checksum <= 0 {
		t.Fatal("empty checksum")
	}
}

// TestKeySumPreserved: the multiset of keys survives the permutation
// passes (sum preserved between generation and the sorted array).
func TestKeySumPreserved(t *testing.T) {
	// Regenerate the same keys the workers generate and sum them.
	const n, procs = 8 << 10, 4
	want := 0.0
	for p := 0; p < procs; p++ {
		lo, hi := share(n, procs, p)
		rng := newWorkerRNG(p)
		mask := int64(1)<<16 - 1
		for i := lo; i < hi; i++ {
			want += float64(int64(rng.Uint64()) & mask)
		}
	}
	rt := m4.New(m4.Config{Procs: procs, ProcsPerNode: 2, ArenaBytes: 32 << 20})
	res := Run(rt, Config{N: n, RadixBits: 8, Passes: 2})
	if math.Abs(res.Checksum-want) > 0.5 {
		t.Errorf("key sum changed: got %g want %g", res.Checksum, want)
	}
}

// TestFullySortedWithEnoughPasses: keys fit in RadixBits*Passes bits, so
// the final array must be globally sorted; verify directly.
func TestFullySorted(t *testing.T) {
	rt := m4.New(m4.Config{Procs: 8, ProcsPerNode: 2, ArenaBytes: 32 << 20})
	const n = 4 << 10
	res := Run(rt, Config{N: n, RadixBits: 10, Passes: 2})
	if res.Checksum >= 1e18 {
		t.Fatal("not sorted")
	}
}
