// Package raytrace ports the SPLASH-2 RAYTRACE application in scaled form:
// a ray tracer over a shared, read-mostly scene with a dynamic tile work
// queue (task stealing through a lock-protected counter).  Scene pages
// replicate on first fault and are never written, so RAYTRACE keeps low
// misplacement and scales well; the work queue lock is the contended
// resource.
package raytrace

import (
	"math"

	"cables/internal/apps/appapi"
	"cables/internal/memsys"
	"cables/internal/sim"
)

// Config sizes the RAYTRACE run.
type Config struct {
	// Image is the square image dimension (scaled default 128).
	Image int
	// Spheres is the scene object count.
	Spheres int
	// Tile is the square tile size handed out by the work queue.
	Tile int
	// GridBytes sizes the read-only acceleration grid built by the master
	// (the bulk of RAYTRACE's footprint — car.512.env in the paper); its
	// pages replicate on demand and are never misplaced, which keeps
	// RAYTRACE's Figure 6 percentage low.
	GridBytes int64
}

// DefaultConfig returns the scaled default problem size.
func DefaultConfig() Config {
	return Config{Image: 128, Spheres: 64, Tile: 16, GridBytes: 2 << 20}
}

const flopCost = 5 * sim.Nanosecond

// Run executes RAYTRACE on rt.
func Run(rt appapi.Runtime, cfg Config) appapi.Result {
	if cfg.Image == 0 {
		cfg = DefaultConfig()
	}
	img, ns, tile := cfg.Image, cfg.Spheres, cfg.Tile
	procs := rt.Procs()
	main := rt.Main()
	acc := rt.Acc()

	// Scene: ns spheres of 8 doubles (center xyz, radius, color rgb, pad).
	scene, err := rt.Malloc(main, "ray.scene", int64(ns)*64)
	if err != nil {
		panic("raytrace: " + err.Error())
	}
	image, err := rt.Malloc(main, "ray.image", int64(img)*int64(img)*8)
	if err != nil {
		panic("raytrace: " + err.Error())
	}
	// Work queue: one shared counter of tiles handed out.
	queue, err := rt.Malloc(main, "ray.queue", 8)
	if err != nil {
		panic("raytrace: " + err.Error())
	}
	// Acceleration grid: large, read-only, master-built.
	grid, err := rt.Malloc(main, "ray.grid", cfg.GridBytes)
	if err != nil {
		panic("raytrace: " + err.Error())
	}
	gridWords := int(cfg.GridBytes / 8)

	// The main thread builds the scene (read-only thereafter).
	{
		rec := make([]float64, 8)
		for s := 0; s < ns; s++ {
			rec[0] = 4 * math.Sin(float64(3*s))
			rec[1] = 4 * math.Cos(float64(5*s))
			rec[2] = 6 + 3*math.Sin(float64(s))
			rec[3] = 0.3 + 0.2*math.Abs(math.Cos(float64(s)))
			rec[4] = 0.5 + 0.5*math.Sin(float64(7*s))
			acc.WriteF64s(main, scene+memsys.Addr(s*64), rec)
		}
		acc.WriteI64(main, queue, 0)
		cellRow := make([]float64, 512)
		for o := 0; o < gridWords; o += len(cellRow) {
			for k := range cellRow {
				cellRow[k] = math.Mod(float64(o+k)*0.618, 1)
			}
			acc.WriteF64s(main, grid+memsys.Addr(o*8), cellRow)
		}
	}

	tilesPerDim := img / tile
	totalTiles := tilesPerDim * tilesPerDim

	var sec appapi.Section
	var red appapi.Reduce

	appapi.RunWorkers(rt, procs, func(t *sim.Task, p int) {
		rt.Barrier(t, "ray.init", procs)
		sec.Enter(t)

		// Cache the scene locally: the pages replicate on first fault and
		// all later intersection tests run against the local copy.
		local := make([]float64, ns*8)
		acc.ReadF64s(t, scene, local)

		row := make([]float64, tile)
		sum := 0.0
		for {
			// Dynamic tile queue (task stealing in the original program).
			rt.Lock(t, 1)
			tid := acc.ReadI64(t, queue)
			if int(tid) < totalTiles {
				acc.WriteI64(t, queue, tid+1)
			}
			rt.Unlock(t, 1)
			if int(tid) >= totalTiles {
				break
			}
			tx, ty := int(tid)%tilesPerDim, int(tid)/tilesPerDim
			// Traverse the grid cells this tile's rays pass through: a
			// read-only slice of the acceleration structure, replicated on
			// first fault.
			gslice := make([]float64, 512)
			goff := (int(tid) * 4096) % (gridWords - len(gslice))
			acc.ReadF64s(t, grid+memsys.Addr(goff*8), gslice)
			gterm := gslice[0] * 1e-9
			for y := ty * tile; y < (ty+1)*tile; y++ {
				for x := tx * tile; x < (tx+1)*tile; x++ {
					v := trace(local, ns, x, y, img) + gterm
					row[x-tx*tile] = v
					sum += v
				}
				acc.WriteF64s(t, image+memsys.Addr((y*img+tx*tile)*8), row)
				t.Compute(sim.Time(tile) * sim.Time(ns) * 12 * flopCost)
			}
		}
		red.Add(p, sum)
		sec.Leave(t)
	})

	res := appapi.Result{App: "RAYTRACE", Checksum: red.Sum(procs)}
	appapi.Finalize(rt, &res, &sec)
	return res
}

// trace fires one primary ray and returns its shade.
func trace(scene []float64, ns, x, y, img int) float64 {
	// Ray from origin through the pixel on a z=1 screen.
	dx := (float64(x)/float64(img) - 0.5) * 2
	dy := (float64(y)/float64(img) - 0.5) * 2
	dz := 1.0
	n := math.Sqrt(dx*dx + dy*dy + dz*dz)
	dx, dy, dz = dx/n, dy/n, dz/n

	best := math.Inf(1)
	shade := 0.05 // background
	for s := 0; s < ns; s++ {
		cx, cy, cz := scene[s*8], scene[s*8+1], scene[s*8+2]
		r := scene[s*8+3]
		// Solve |o + t d - c|^2 = r^2 with o at the origin.
		b := dx*cx + dy*cy + dz*cz
		c := cx*cx + cy*cy + cz*cz - r*r
		disc := b*b - c
		if disc <= 0 {
			continue
		}
		th := b - math.Sqrt(disc)
		if th > 0.01 && th < best {
			best = th
			// Lambertian-ish shade from a fixed light direction.
			px, py, pz := dx*th, dy*th, dz*th
			nx, ny, nz := (px-cx)/r, (py-cy)/r, (pz-cz)/r
			l := nx*0.57 + ny*0.57 + nz*0.57
			if l < 0 {
				l = 0
			}
			shade = 0.1 + 0.9*l*scene[s*8+4]
		}
	}
	return shade
}
