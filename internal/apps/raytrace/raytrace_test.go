package raytrace

import (
	"math"
	"testing"

	"cables/internal/m4"
)

func runRay(t *testing.T, procs int) float64 {
	t.Helper()
	rt := m4.New(m4.Config{Procs: procs, ProcsPerNode: 2, ArenaBytes: 32 << 20})
	res := Run(rt, Config{Image: 64, Spheres: 32, Tile: 16, GridBytes: 256 << 10})
	if res.Checksum <= 0 {
		t.Fatal("empty image")
	}
	return res.Checksum
}

// TestImageSumIndependentOfScheduling: the dynamic tile queue assigns work
// nondeterministically, but the rendered image (and so its sum) must not
// depend on who rendered what.
func TestImageSumIndependentOfScheduling(t *testing.T) {
	base := runRay(t, 1)
	for _, procs := range []int{4, 8} {
		got := runRay(t, procs)
		if rel := math.Abs(got-base) / base; rel > 1e-9 {
			t.Errorf("p=%d image drift: %g vs %g", procs, got, base)
		}
	}
}

// TestTraceHitsAndMisses exercises the intersection kernel directly.
func TestTraceHitsAndMisses(t *testing.T) {
	// One sphere dead ahead.
	scene := make([]float64, 8)
	scene[0], scene[1], scene[2] = 0, 0, 5 // center
	scene[3] = 1                           // radius
	scene[4] = 1                           // albedo
	hit := trace(scene, 1, 32, 32, 64)     // center pixel
	if hit <= 0.05 {
		t.Errorf("center ray missed: %g", hit)
	}
	miss := trace(scene, 1, 0, 0, 64) // far corner
	if miss != 0.05 {
		t.Errorf("corner ray hit: %g", miss)
	}
}

// TestNearestSphereWins: with two spheres on the same ray the closer one
// sets the shade.
func TestNearestSphereWins(t *testing.T) {
	scene := make([]float64, 16)
	// Far bright sphere.
	scene[0], scene[1], scene[2], scene[3], scene[4] = 0, 0, 9, 1, 1.0
	// Near dim sphere.
	scene[8], scene[9], scene[10], scene[11], scene[12] = 0, 0, 4, 1, 0.2
	two := trace(scene, 2, 32, 32, 64)
	near := trace(scene[8:], 1, 32, 32, 64)
	if math.Abs(two-near) > 1e-12 {
		t.Errorf("occlusion wrong: two=%g near-only=%g", two, near)
	}
}
