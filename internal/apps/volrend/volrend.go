// Package volrend ports the SPLASH-2 VOLREND application in scaled form:
// volume rendering by ray casting over a shared, read-only volume, writing
// an image whose scanline groups are handed out dynamically.  The image
// rows are small relative to the 64 KB map unit and are claimed by whichever
// node renders first, so image pages written by other processors in later
// frames are badly placed — VOLREND is the paper's worst case (Figure 6
// high misplacement AND real slowdown: speedup 12.09 on the base system vs
// 6.49 on CableS at 32 processors).
package volrend

import (
	"math"

	"cables/internal/apps/appapi"
	"cables/internal/memsys"
	"cables/internal/sim"
)

// Config sizes the VOLREND run.
type Config struct {
	// Volume is the cubic volume dimension (scaled default 32).
	Volume int
	// Image is the square image dimension (scaled default 128).
	Image int
	// Frames is the number of rendered frames (rotating viewpoint).
	Frames int
	// RowsPerTask is the scanline-group size handed out by the queue.
	RowsPerTask int
}

// DefaultConfig returns the scaled default problem size.  The image
// dominates the footprint (as in the paper's head dataset renders), so the
// scanline misplacement drives both Figure 6 and the CableS slowdown.
func DefaultConfig() Config { return Config{Volume: 32, Image: 256, Frames: 2, RowsPerTask: 2} }

const flopCost = 5 * sim.Nanosecond

// Run executes VOLREND on rt.
func Run(rt appapi.Runtime, cfg Config) appapi.Result {
	if cfg.Volume == 0 {
		cfg = DefaultConfig()
	}
	vol, img := cfg.Volume, cfg.Image
	procs := rt.Procs()
	main := rt.Main()
	acc := rt.Acc()

	volume, err := rt.Malloc(main, "vol.volume", int64(vol*vol*vol)*8)
	if err != nil {
		panic("volrend: " + err.Error())
	}
	image, err := rt.Malloc(main, "vol.image", int64(img*img)*8)
	if err != nil {
		panic("volrend: " + err.Error())
	}
	queue, err := rt.Malloc(main, "vol.queue", 8)
	if err != nil {
		panic("volrend: " + err.Error())
	}

	// Main builds the volume: a smooth density field (read-only afterwards).
	{
		row := make([]float64, vol)
		for z := 0; z < vol; z++ {
			for y := 0; y < vol; y++ {
				for x := 0; x < vol; x++ {
					cx := float64(x-vol/2) / float64(vol)
					cy := float64(y-vol/2) / float64(vol)
					cz := float64(z-vol/2) / float64(vol)
					row[x] = math.Exp(-8*(cx*cx+cy*cy+cz*cz)) +
						0.3*math.Sin(6*cx)*math.Sin(6*cy)*math.Sin(6*cz)
				}
				acc.WriteF64s(main, volume+memsys.Addr(((z*vol+y)*vol)*8), row)
			}
		}
	}

	var sec appapi.Section
	var red appapi.Reduce

	appapi.RunWorkers(rt, procs, func(t *sim.Task, p int) {
		rt.Barrier(t, "vol.init", procs)
		sec.Enter(t)

		// Replicate the volume locally (read-only pages fault in once).
		local := make([]float64, vol*vol*vol)
		acc.ReadF64s(t, volume, local)

		sample := func(x, y, z float64) float64 {
			xi, yi, zi := int(x), int(y), int(z)
			if xi < 0 || yi < 0 || zi < 0 || xi >= vol-1 || yi >= vol-1 || zi >= vol-1 {
				return 0
			}
			return local[(zi*vol+yi)*vol+xi]
		}

		row := make([]float64, img)
		sum := 0.0
		tasksPerFrame := img / cfg.RowsPerTask
		for f := 0; f < cfg.Frames; f++ {
			ang := float64(f) * 0.3
			sa, ca := math.Sin(ang), math.Cos(ang)
			for {
				rt.Lock(t, 1)
				task := acc.ReadI64(t, queue)
				if int(task) < tasksPerFrame {
					acc.WriteI64(t, queue, task+1)
				}
				rt.Unlock(t, 1)
				if int(task) >= tasksPerFrame {
					break
				}
				for ry := 0; ry < cfg.RowsPerTask; ry++ {
					y := int(task)*cfg.RowsPerTask + ry
					for x := 0; x < img; x++ {
						// Cast a rotated ray through the volume.
						ox := float64(x) / float64(img) * float64(vol)
						oy := float64(y) / float64(img) * float64(vol)
						acc06 := 0.0
						opacity := 0.0
						for s := 0; s < vol; s++ {
							sz := float64(s)
							rx := ca*(ox-float64(vol)/2) - sa*(sz-float64(vol)/2) + float64(vol)/2
							rz := sa*(ox-float64(vol)/2) + ca*(sz-float64(vol)/2) + float64(vol)/2
							d := sample(rx, oy, rz)
							if d > 0.1 {
								contrib := d * (1 - opacity) * 0.25
								acc06 += contrib
								opacity += d * 0.2
								if opacity >= 1 {
									break
								}
							}
						}
						row[x] = acc06
						sum += acc06
					}
					acc.WriteF64s(t, image+memsys.Addr(y*img*8), row)
					t.Compute(sim.Time(img) * sim.Time(vol) * 8 * flopCost)
				}
			}
			// Frame barrier; processor 0 resets the queue for the next frame.
			rt.Barrier(t, "vol.frame", procs)
			if p == 0 {
				rt.Lock(t, 1)
				acc.WriteI64(t, queue, 0)
				rt.Unlock(t, 1)
			}
			rt.Barrier(t, "vol.reset", procs)
		}
		red.Add(p, sum)
		sec.Leave(t)
	})

	res := appapi.Result{App: "VOLREND", Checksum: red.Sum(procs)}
	appapi.Finalize(rt, &res, &sec)
	return res
}
