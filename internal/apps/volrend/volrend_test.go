package volrend

import (
	"math"
	"testing"

	"cables/internal/m4"
)

func runVol(t *testing.T, procs int) float64 {
	t.Helper()
	rt := m4.New(m4.Config{Procs: procs, ProcsPerNode: 2, ArenaBytes: 32 << 20})
	res := Run(rt, Config{Volume: 16, Image: 64, Frames: 2, RowsPerTask: 2})
	if res.Checksum <= 0 {
		t.Fatal("nothing rendered")
	}
	return res.Checksum
}

// TestRenderIndependentOfScheduling: scanline groups are distributed by a
// dynamic queue; the rendered frames must not depend on the distribution.
func TestRenderIndependentOfScheduling(t *testing.T) {
	base := runVol(t, 1)
	for _, procs := range []int{4, 8} {
		got := runVol(t, procs)
		if rel := math.Abs(got-base) / base; rel > 1e-9 {
			t.Errorf("p=%d drift: %g vs %g", procs, got, base)
		}
	}
}

// TestFramesAccumulate: rendering more frames yields a larger total.
func TestFramesAccumulate(t *testing.T) {
	rt1 := m4.New(m4.Config{Procs: 2, ProcsPerNode: 2, ArenaBytes: 32 << 20})
	one := Run(rt1, Config{Volume: 16, Image: 32, Frames: 1, RowsPerTask: 2})
	rt3 := m4.New(m4.Config{Procs: 2, ProcsPerNode: 2, ArenaBytes: 32 << 20})
	three := Run(rt3, Config{Volume: 16, Image: 32, Frames: 3, RowsPerTask: 2})
	if three.Checksum <= one.Checksum {
		t.Errorf("frames did not accumulate: 1=%g 3=%g", one.Checksum, three.Checksum)
	}
}
