// Package water ports the SPLASH-2 WATER-SPATIAL application (and the
// WATER-SPAT-FL variant): molecular dynamics over water molecules binned
// into a 3D cell grid, with short-range forces computed from neighboring
// cells.  Molecule state is stored cell-major in separate position /
// velocity / force arrays; cells are block-partitioned over processors, so
// one processor's molecules occupy a run of records big enough for per-page
// (4 KB) first touch to place correctly but far smaller than a 64 KB map
// unit — which is exactly why WATER shows high misplaced-page percentages
// in the paper's Figure 6, with little performance impact (computation
// dominates and synchronization is infrequent).
package water

import (
	"math"

	"cables/internal/apps/appapi"
	"cables/internal/memsys"
	"cables/internal/sim"
)

// Config sizes the WATER run.
type Config struct {
	// Molecules is the molecule count (paper: 32768; scaled default 4096).
	Molecules int
	// Steps is the number of timesteps.
	Steps int
	// Cells is the cell-grid dimension (Cells^3 cells total); Molecules is
	// rounded down to a multiple of Cells^3.
	Cells int
	// FineLocks selects the WATER-SPAT-FL variant: per-cell locks guard
	// force publication instead of the owner-computes rule alone.
	FineLocks bool
}

// DefaultConfig returns the scaled default problem size.
func DefaultConfig() Config { return Config{Molecules: 4096, Steps: 2, Cells: 8} }

const flopCost = 5 * sim.Nanosecond

// Run executes WATER on rt.
func Run(rt appapi.Runtime, cfg Config) appapi.Result {
	if cfg.Molecules == 0 {
		cfg = DefaultConfig()
	}
	nm, steps, cdim := cfg.Molecules, cfg.Steps, cfg.Cells
	ncells := cdim * cdim * cdim
	if nm%ncells != 0 {
		nm -= nm % ncells
	}
	mpc := nm / ncells // molecules per cell (static occupancy)
	procs := rt.Procs()
	main := rt.Main()
	acc := rt.Acc()

	// Cell-major state arrays: 3 doubles per molecule each.
	alloc := func(label string) memsys.Addr {
		a, err := rt.Malloc(main, label, int64(nm)*24)
		if err != nil {
			panic("water: " + err.Error())
		}
		return a
	}
	pos := alloc("water.pos")
	vel := alloc("water.vel")
	frc := alloc("water.frc")
	cellA := func(base memsys.Addr, c int) memsys.Addr {
		return base + memsys.Addr(c*mpc*24)
	}
	// Cells are block-partitioned over processors.
	cellOwner := func(c int) int { return c * procs / ncells }

	name := "WATER-SPATIAL"
	if cfg.FineLocks {
		name = "WATER-SPAT-FL"
	}

	var sec appapi.Section
	var red appapi.Reduce

	appapi.RunWorkers(rt, procs, func(t *sim.Task, p int) {
		cp := make([]float64, mpc*3) // own cell positions
		np := make([]float64, mpc*3) // neighbor cell positions
		cf := make([]float64, mpc*3) // own cell forces
		cv := make([]float64, mpc*3) // own cell velocities
		zero := make([]float64, mpc*3)

		// Init: owners place their cells' molecules on a jittered lattice.
		for c := 0; c < ncells; c++ {
			if cellOwner(c) != p {
				continue
			}
			cx, cy, cz := c%cdim, (c/cdim)%cdim, c/(cdim*cdim)
			for m := 0; m < mpc; m++ {
				i := c*mpc + m
				cp[m*3+0] = float64(cx) + 0.2 + 0.6*math.Abs(math.Sin(float64(i)))
				cp[m*3+1] = float64(cy) + 0.2 + 0.6*math.Abs(math.Cos(float64(3*i)))
				cp[m*3+2] = float64(cz) + 0.2 + 0.6*math.Abs(math.Sin(float64(7*i)))
			}
			acc.WriteF64s(t, cellA(pos, c), cp)
			acc.WriteF64s(t, cellA(vel, c), zero)
			acc.WriteF64s(t, cellA(frc, c), zero)
		}
		rt.Barrier(t, "water.init", procs)
		sec.Enter(t)

		potential := 0.0
		for step := 0; step < steps; step++ {
			// Force phase: positions are read-only; forces are written only
			// by each cell's owner.
			for c := 0; c < ncells; c++ {
				if cellOwner(c) != p {
					continue
				}
				acc.ReadF64s(t, cellA(pos, c), cp)
				for i := range cf {
					cf[i] = 0
				}
				pairs := 0
				forEachNeighbor(c, cdim, func(nc int) {
					src := np
					if nc == c {
						src = cp
					} else {
						acc.ReadF64s(t, cellA(pos, nc), np)
					}
					for m := 0; m < mpc; m++ {
						px, py, pz := cp[m*3], cp[m*3+1], cp[m*3+2]
						for o := 0; o < mpc; o++ {
							if nc == c && o == m {
								continue
							}
							dx, dy, dz := px-src[o*3], py-src[o*3+1], pz-src[o*3+2]
							r2 := dx*dx + dy*dy + dz*dz + 0.01
							if r2 > 1.0 { // cutoff
								continue
							}
							inv := 1 / r2
							f := inv * inv * (inv - 0.5)
							cf[m*3+0] += f * dx
							cf[m*3+1] += f * dy
							cf[m*3+2] += f * dz
							potential += inv
							pairs++
						}
					}
				})
				// Publish the cell's forces; WATER-SPAT-FL guards the
				// publication with a per-cell lock.
				if cfg.FineLocks {
					rt.Lock(t, 100+c)
				}
				acc.WriteF64s(t, cellA(frc, c), cf)
				if cfg.FineLocks {
					rt.Unlock(t, 100+c)
				}
				t.Compute(sim.Time(pairs)*12*flopCost + sim.Time(mpc)*10*flopCost)
			}
			rt.Barrier(t, "water.force", procs)

			// Integrate phase: owners advance their cells' molecules.
			for c := 0; c < ncells; c++ {
				if cellOwner(c) != p {
					continue
				}
				acc.ReadF64s(t, cellA(pos, c), cp)
				acc.ReadF64s(t, cellA(vel, c), cv)
				acc.ReadF64s(t, cellA(frc, c), cf)
				const dt = 0.002
				for i := range cp {
					cv[i] += dt * cf[i]
					cp[i] += dt * cv[i]
				}
				acc.WriteF64s(t, cellA(pos, c), cp)
				acc.WriteF64s(t, cellA(vel, c), cv)
				t.Compute(sim.Time(mpc) * 12 * flopCost)
			}
			rt.Barrier(t, "water.integrate", procs)
		}

		// Global potential-energy reduction under a lock (the paper's
		// lock-protected global sums).
		rt.Lock(t, 1)
		rt.Unlock(t, 1)
		red.Add(p, potential)
		sec.Leave(t)
	})

	res := appapi.Result{App: name, Checksum: red.Sum(procs)}
	appapi.Finalize(rt, &res, &sec)
	return res
}

// forEachNeighbor visits c and its (up to 26) adjacent cells.
func forEachNeighbor(c, cdim int, fn func(nc int)) {
	cx, cy, cz := c%cdim, (c/cdim)%cdim, c/(cdim*cdim)
	for dz := -1; dz <= 1; dz++ {
		for dy := -1; dy <= 1; dy++ {
			for dx := -1; dx <= 1; dx++ {
				x, y, z := cx+dx, cy+dy, cz+dz
				if x < 0 || y < 0 || z < 0 || x >= cdim || y >= cdim || z >= cdim {
					continue
				}
				fn((z*cdim+y)*cdim + x)
			}
		}
	}
}
