package water

import (
	"math"
	"testing"

	"cables/internal/m4"
)

func runWater(t *testing.T, procs int, fl bool) float64 {
	t.Helper()
	rt := m4.New(m4.Config{Procs: procs, ProcsPerNode: 2, ArenaBytes: 32 << 20})
	res := Run(rt, Config{Molecules: 512, Steps: 2, Cells: 4, FineLocks: fl})
	if res.Checksum <= 0 {
		t.Fatalf("no interactions computed (checksum %g)", res.Checksum)
	}
	return res.Checksum
}

// TestPotentialStableAcrossProcs: the potential-energy sum is independent
// of the processor count (same pairs, deterministic order per cell).
func TestPotentialStableAcrossProcs(t *testing.T) {
	base := runWater(t, 1, false)
	for _, procs := range []int{2, 8} {
		got := runWater(t, procs, false)
		if rel := math.Abs(got-base) / base; rel > 1e-9 {
			t.Errorf("p=%d potential drift: %g vs %g", procs, got, base)
		}
	}
}

// TestFineLockVariantSameAnswer: WATER-SPAT-FL computes the same physics.
func TestFineLockVariantSameAnswer(t *testing.T) {
	plain := runWater(t, 4, false)
	fl := runWater(t, 4, true)
	if rel := math.Abs(plain-fl) / plain; rel > 1e-9 {
		t.Errorf("variant mismatch: %g vs %g", plain, fl)
	}
}

// TestNeighborEnumeration checks the cell adjacency helper on corners,
// edges and interior cells.
func TestNeighborEnumeration(t *testing.T) {
	count := func(c, cdim int) int {
		n := 0
		forEachNeighbor(c, cdim, func(int) { n++ })
		return n
	}
	if got := count(0, 4); got != 8 { // corner: 2x2x2
		t.Errorf("corner: %d", got)
	}
	center := (2*4+2)*4 + 2
	if got := count(center, 4); got != 27 {
		t.Errorf("interior: %d", got)
	}
	edge := (0*4+0)*4 + 2 // on one face-edge
	if got := count(edge, 4); got != 12 {
		t.Errorf("edge: %d", got)
	}
}

// TestNeighborSymmetry: neighbor relation is symmetric.
func TestNeighborSymmetry(t *testing.T) {
	const cdim = 3
	adj := make(map[[2]int]bool)
	for c := 0; c < cdim*cdim*cdim; c++ {
		forEachNeighbor(c, cdim, func(nc int) { adj[[2]int{c, nc}] = true })
	}
	for k := range adj {
		if !adj[[2]int{k[1], k[0]}] {
			t.Fatalf("asymmetric: %v", k)
		}
	}
}

// TestMoleculeCountRounding: molecule counts not divisible by the cell
// count are rounded down rather than crashing.
func TestMoleculeCountRounding(t *testing.T) {
	rt := m4.New(m4.Config{Procs: 2, ProcsPerNode: 2, ArenaBytes: 32 << 20})
	res := Run(rt, Config{Molecules: 130, Steps: 1, Cells: 4})
	if res.Checksum <= 0 {
		t.Error("rounded run computed nothing")
	}
}
