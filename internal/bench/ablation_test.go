package bench

import (
	"io"
	"strings"
	"testing"

	"cables/internal/sim"
)

// TestFig5AndFig6Formatting: the figure tables carry one row per
// (application, system) with a cell per processor count.
func TestFig5AndFig6Formatting(t *testing.T) {
	procs := []int{1, 4}
	data := RunFig5([]string{"FFT"}, procs, ScaleTest, nil, 1)
	f5 := Fig5(io.Discard, data, procs).String()
	if !strings.Contains(f5, "FFT") || !strings.Contains(f5, "genima") ||
		!strings.Contains(f5, "cables") {
		t.Errorf("fig5 table malformed:\n%s", f5)
	}
	f6 := Fig6(io.Discard, data, procs).String()
	if !strings.Contains(f6, "FFT") || !strings.Contains(f6, "%") {
		t.Errorf("fig6 table malformed:\n%s", f6)
	}
}

// TestGranularityAblationErasesMisplacement: the paper attributes CableS's
// placement overhead entirely to WindowsNT's 64 KB mapping granularity; at
// 4 KB (the planned Linux port) misplacement must vanish.
func TestGranularityAblationErasesMisplacement(t *testing.T) {
	nt, err := RunApp("LU", BackendCables, 8, ScaleTest, nil)
	if err != nil {
		t.Fatal(err)
	}
	if nt.MisplacedPct() < 10 {
		t.Fatalf("precondition: LU at 64KB should misplace pages (got %.1f%%)",
			nt.MisplacedPct())
	}
	costs := sim.DefaultCosts()
	costs.MapGranularity = 4 << 10
	linux, err := RunApp("LU", BackendCables, 8, ScaleTest, costs)
	if err != nil {
		t.Fatal(err)
	}
	if linux.Misplaced != 0 {
		t.Errorf("4KB granularity still misplaces %d pages", linux.Misplaced)
	}
	if linux.Checksum != nt.Checksum {
		t.Errorf("granularity changed the computation: %g vs %g",
			linux.Checksum, nt.Checksum)
	}
}

// TestLinuxProfileRunsApps: the full Linux OS profile (cheaper threads,
// 4 KB units) is a valid configuration end to end.
func TestLinuxProfileRunsApps(t *testing.T) {
	costs := sim.DefaultCosts().LinuxOS()
	res, err := RunApp("WATER-SPATIAL", BackendCables, 4, ScaleTest, costs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Checksum <= 0 || res.Misplaced != 0 {
		t.Errorf("linux profile run: %v", res)
	}
}
