package bench

import (
	"cables/internal/apps/appapi"
	cables "cables/internal/core"
	"cables/internal/fault"
	"cables/internal/m4"
	"cables/internal/sim"
	"cables/internal/stats"
	"cables/internal/wire"
)

// CellOptions bundles every code-relevant knob one simulation cell can
// carry beyond (app, backend, procs, scale, costs): the thread-manager
// backend, the wire plane's opt-in modes, and an optional fault injector.
// The zero value reproduces the paper-faithful default cell exactly, so
// NewRuntimeWire and NewFaultRuntime are thin wrappers over NewRuntimeOpts.
// The simulation farm (internal/farm) canonicalizes these fields into its
// content-addressed cache key.
type CellOptions struct {
	// Sched names the thread-manager backend (sim.SchedulerNames); empty
	// selects the process default.
	Sched string
	// Wire selects the wire plane's opt-in modes (-contended-sync,
	// -coalesce).
	Wire wire.Options
	// Fault optionally injects deterministic faults (see internal/fault).
	Fault *fault.Injector
	// Protocol names the coherence policy (coherence.Names); empty selects
	// the process default (CABLES_PROTOCOL / `cablesim -protocol`).
	Protocol string
}

// NewRuntimeOpts builds an application runtime on the chosen backend with
// every per-cell option explicit.  It is the single construction point the
// other NewRuntime* helpers delegate to.
func NewRuntimeOpts(backend string, procs int, arena int64, costs *sim.Costs, o CellOptions) appapi.Runtime {
	switch backend {
	case BackendGenima:
		return m4.New(m4.Config{Procs: procs, ProcsPerNode: 2, ArenaBytes: arena,
			Costs: costs, Wire: o.Wire, Fault: o.Fault, Sched: o.Sched, Protocol: o.Protocol})
	case BackendCables:
		return cables.NewM4(cables.M4Config{Procs: procs, ProcsPerNode: 2, ArenaBytes: arena,
			Costs: costs, Wire: o.Wire, Fault: o.Fault, Sched: o.Sched, Protocol: o.Protocol})
	default:
		panic("bench: unknown backend " + backend)
	}
}

// RunAppCell runs one (app, backend, procs) cell with explicit per-cell
// options and returns the result plus the run's event counters.  This is
// the farm's cell entry point: identical arguments produce identical
// deterministic outputs (checksums, placement censuses, counter totals up
// to documented scheduling jitter), which is what makes the results safe to
// content-address and serve from cache.
func RunAppCell(name, backend string, procs int, scale Scale, costs *sim.Costs, o CellOptions) (appapi.Result, *stats.Counters, error) {
	rt := NewRuntimeOpts(backend, procs, 256<<20, costs, o)
	res, err := runAppOn(rt, name, scale)
	return res, rt.Cluster().Ctr, err
}
