package bench

import (
	"fmt"
	"io"

	"cables/internal/apps/appapi"
	"cables/internal/coherence"
	cables "cables/internal/core"
	"cables/internal/fault"
	"cables/internal/genima"
	"cables/internal/m4"
	"cables/internal/profile"
	"cables/internal/sim"
	"cables/internal/stats"
	"cables/internal/trace"
	"cables/internal/wire"
)

// NewFaultRuntime builds an application runtime with a fault injector
// installed.  inj may be nil, in which case this is exactly NewRuntime.
func NewFaultRuntime(backend string, procs int, arena int64, costs *sim.Costs, inj *fault.Injector) appapi.Runtime {
	return NewRuntimeOpts(backend, procs, arena, costs, CellOptions{Fault: inj})
}

// protocolOf digs the SVM protocol instance out of either backend (for
// attaching a trace ring); nil if the backend is unknown.
func protocolOf(rt appapi.Runtime) *genima.Protocol {
	switch b := rt.(type) {
	case *m4.Runtime:
		return b.Protocol()
	case *cables.M4Runtime:
		return b.Runtime().Protocol()
	}
	return nil
}

// AttachRing wires one trace ring everywhere events originate: the SVM
// protocol (page-fault/lock/barrier events), the wire plane (wire.* op
// events and page migrations), and the fault injector if present
// (fault.* events).  This is the single attach point; callers never touch
// the three sinks individually.
func AttachRing(rt appapi.Runtime, ringCap int) *trace.Ring {
	ring := trace.NewRing(ringCap)
	if p := protocolOf(rt); p != nil {
		p.Trace = ring
	}
	cl := rt.Cluster()
	cl.Wire.BindTrace(ring)
	if inj := cl.Wire.Fault(); inj != nil {
		inj.BindTrace(ring)
	}
	return ring
}

// RunAppTraced runs an application with a trace ring of the given capacity
// attached (AttachRing), returning the result, the event counters, and the
// ring (inspect Events/Counts/Dropped).
func RunAppTraced(name, backend string, procs int, scale Scale, costs *sim.Costs, ringCap int) (appapi.Result, *stats.Counters, *trace.Ring, error) {
	return RunAppTracedWire(name, backend, procs, scale, costs, ringCap, wire.Options{})
}

// RunAppTracedWire is RunAppTraced with explicit wire-plane options.
func RunAppTracedWire(name, backend string, procs int, scale Scale, costs *sim.Costs, ringCap int, w wire.Options) (appapi.Result, *stats.Counters, *trace.Ring, error) {
	rt := NewRuntimeWire(backend, procs, 256<<20, costs, w)
	ring := AttachRing(rt, ringCap)
	res, err := runAppOn(rt, name, scale)
	return res, rt.Cluster().Ctr, ring, err
}

// RunAppFault runs an application with the given fault injector installed
// (one trace ring attached to the protocol, the wire plane and the injector
// via AttachRing) and returns the result plus the run's counters and ring.
func RunAppFault(name, backend string, procs int, scale Scale, costs *sim.Costs, inj *fault.Injector, ringCap int) (appapi.Result, *stats.Counters, *trace.Ring, error) {
	rt := NewFaultRuntime(backend, procs, 256<<20, costs, inj)
	ring := AttachRing(rt, ringCap)
	res, err := runAppOn(rt, name, scale)
	return res, rt.Cluster().Ctr, ring, err
}

// FaultCell is one (app, procs, backend) outcome of a faulted sweep.
type FaultCell struct {
	Res      appapi.Result
	Ctr      *stats.Counters
	Injected int64 // fault firings observed by the cell's injector
	Dropped  int64 // trace events the cell's ring overwrote
	Report   *profile.Report
	Windows  []stats.EpochWindow
	Err      error
}

// faultEvents are the injection/recovery counters summarized per cell.
var faultEvents = []stats.Event{
	stats.EvFaultsInjected, stats.EvSendRetries, stats.EvFetchRetries,
	stats.EvNotifyLost, stats.EvRegRecoveries, stats.EvLockRehomes,
	stats.EvBarrierRehomes, stats.EvPageRehomes, stats.EvNodeDetaches,
	stats.EvAttachDelays,
}

// RunFaults runs the Figure 5 sweep under a fault plan and renders the
// outcome table: a cell completes DEGRADED (with its parallel time) when
// faults fired during it, FAILED only when the run did not complete, and a
// bare time when the plan never triggered in that cell.  Every cell gets
// its own injector built from the same plan+seed, so cells are independent
// and the whole table is reproducible from (plan, seed).  profTop > 0
// attaches a profiler to every cell and appends its profile block (top
// profTop rows) under the cell's census.
func RunFaults(w io.Writer, plan fault.Plan, seed uint64, apps []string, procs []int, scale Scale, costs *sim.Costs, jobs, profTop int) *stats.Table {
	if len(apps) == 0 {
		apps = AppNames
	}
	if len(procs) == 0 {
		procs = ProcCounts
	}
	specs := fig5Cells(apps, procs)
	cells := make([]FaultCell, len(specs))
	errs := RunCells(jobs, len(specs), func(i int) {
		s := specs[i]
		inj := fault.New(plan, seed)
		c := &cells[i]
		if profTop > 0 {
			res, ctr, ring, prof, err := RunAppFaultProfiled(s.app, s.backend, s.procs, scale, costs, inj, 0)
			c.Res, c.Ctr, c.Err = res, ctr, err
			c.Dropped = ring.Dropped()
			c.Report = profile.Build(prof.Logs())
			c.Windows = prof.Epochs.Windows()
		} else {
			res, ctr, ring, err := RunAppFault(s.app, s.backend, s.procs, scale, costs, inj, 0)
			c.Res, c.Ctr, c.Err = res, ctr, err
			c.Dropped = ring.Dropped()
		}
		c.Injected = inj.Injected()
	})

	header := []string{"Application", "System"}
	for _, p := range procs {
		header = append(header, fmt.Sprintf("%dp", p))
	}
	tab := stats.NewTable(header...)
	byCell := make(map[string]FaultCell, len(specs))
	for i, s := range specs {
		c := cells[i]
		if errs[i] != nil && c.Err == nil {
			c.Err = errs[i]
		}
		byCell[fmt.Sprintf("%s/%d/%s", s.app, s.procs, s.backend)] = c
	}
	for _, app := range apps {
		for _, backend := range []string{BackendGenima, BackendCables} {
			row := []string{app, backend}
			for _, p := range procs {
				c := byCell[fmt.Sprintf("%s/%d/%s", app, p, backend)]
				switch {
				case c.Err != nil:
					row = append(row, "FAILED")
				case c.Injected > 0:
					row = append(row, fmt.Sprintf("DEGRADED(%v)", c.Res.Parallel))
				default:
					row = append(row, c.Res.Parallel.String())
				}
			}
			tab.AddRow(row...)
		}
	}
	// Label the active protocol when it is not the default, so DEGRADED
	// cells from different protocol sweeps stay distinguishable; the
	// default's census lines are byte-identical to the pre-protocol output.
	label := ""
	if proto := coherence.DefaultName(); proto != coherence.ProtoGenima {
		label = " protocol=" + proto
	}
	if w != nil {
		fprintf(w, "Fault sweep: plan %q seed %d%s\n%s\n", plan, seed, label, tab)
		for _, app := range apps {
			for _, p := range procs {
				for _, backend := range []string{BackendGenima, BackendCables} {
					c := byCell[fmt.Sprintf("%s/%d/%s", app, p, backend)]
					if c.Err != nil || c.Ctr == nil {
						continue
					}
					line := ""
					for _, e := range faultEvents {
						if v := c.Ctr.Load(e); v != 0 {
							line += fmt.Sprintf(" %s=%d", e, v)
						}
					}
					// Ring truncation rides every census: a quiet cell still
					// reports dropped=0, and an overwritten ring is never
					// silently passed off as complete.
					fprintf(w, "%s/%s%s p=%d:%s dropped=%d\n", app, backend, label, p, line, c.Dropped)
					if c.Report != nil {
						fprintf(w, "%s", ProfileBlock(c.Report, c.Windows, profTop))
					}
				}
			}
		}
	}
	return tab
}
