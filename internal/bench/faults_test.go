package bench

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"cables/internal/fault"
	"cables/internal/memsys"
	"cables/internal/sim"
	"cables/internal/stats"
	"cables/internal/trace"
)

// runSequential drives a strictly sequential workload — one runnable task at
// a time (each worker is joined before the next spawns) — so every fault
// decision happens at a host-schedule-independent virtual instant.  The
// parallel SPLASH kernels legitimately jitter their protocol counters across
// runs (see parallel_test.go); this workload does not, which is what lets
// the determinism test demand bit-identical counters and traces.
func runSequential(t *testing.T, inj *fault.Injector) (map[string]int64, uint64, sim.Time) {
	t.Helper()
	// The genima backend spreads workers round-robin over the three nodes of
	// a 6-processor run, so workers 1, 2, 4, 5 take remote page faults and
	// flush remote diffs — the operations the send/fetch/notify rules target.
	rt := NewFaultRuntime(BackendGenima, 6, 64<<20, nil, inj)
	ring := trace.NewRing(1 << 14)
	if p := protocolOf(rt); p != nil {
		p.Trace = ring
	}
	if inj != nil {
		inj.BindTrace(ring)
	}
	main := rt.Main()
	acc := rt.Acc()
	a, err := rt.Malloc(main, "seq", 256<<10)
	if err != nil {
		t.Fatalf("malloc: %v", err)
	}
	// First-touch every page on the master so every worker's accesses are
	// remote-homed.
	for p := 0; p < 64; p++ {
		acc.WriteI64(main, a+memsys.Addr(p*memsys.PageSize), int64(p))
	}
	for w := 0; w < 6; w++ {
		id := rt.Spawn(main, func(task *sim.Task) {
			base := a + memsys.Addr(w*10*memsys.PageSize)
			for p := 0; p < 10; p++ {
				addr := base + memsys.Addr(p*memsys.PageSize)
				rt.Lock(task, 1)
				acc.WriteI64(task, addr, acc.ReadI64(task, addr)+int64(w+p))
				rt.Unlock(task, 1)
			}
			rt.Barrier(task, fmt.Sprintf("seq%d", w), 1)
		})
		rt.Join(main, id)
	}
	end := rt.Finish()
	if ring.Dropped() != 0 {
		t.Fatalf("trace ring dropped %d events; grow it or the checksum is partial", ring.Dropped())
	}
	return rt.Cluster().Ctr.Snapshot(), ring.Checksum(), end
}

// TestFaultDeterminismPinned is the reproducibility contract of
// internal/fault: the same plan and seed reproduce the identical run —
// every counter and every trace event — however the host schedules it.
func TestFaultDeterminismPinned(t *testing.T) {
	const spec = "send:p=0.3;fetch:p=0.3;notify:p=0.3;detach:node=2,at=3ms"
	plan := fault.MustParsePlan(spec)
	snap1, sum1, end1 := runSequential(t, fault.New(plan, 42))
	snap2, sum2, end2 := runSequential(t, fault.New(plan, 42))
	if !reflect.DeepEqual(snap1, snap2) {
		t.Errorf("counters differ across identical plan+seed runs:\n%v\n%v", snap1, snap2)
	}
	if sum1 != sum2 {
		t.Errorf("trace checksums differ: %#x != %#x", sum1, sum2)
	}
	if end1 != end2 {
		t.Errorf("virtual end times differ: %v != %v", end1, end2)
	}
	if snap1["faultsInjected"] == 0 {
		t.Error("plan never fired; the pin is vacuous")
	}
	// A different seed must produce a different run (same plan).
	snap3, _, _ := runSequential(t, fault.New(plan, 43))
	if reflect.DeepEqual(snap1, snap3) {
		t.Error("seed 43 reproduced the seed-42 counters exactly; decisions ignore the seed")
	}
}

// TestFaultsDisabledBitIdentical checks the other half of the contract: a
// nil injector and a plan whose windows never open both charge exactly what
// the fault-free build charges.
func TestFaultsDisabledBitIdentical(t *testing.T) {
	snapNil, sumNil, endNil := runSequential(t, nil)
	neverPlan := fault.MustParsePlan("send:p=1,from=9000s;detach:node=2,at=9000s")
	inj := fault.New(neverPlan, 1)
	snapOff, sumOff, endOff := runSequential(t, inj)
	if !reflect.DeepEqual(snapNil, snapOff) {
		t.Errorf("dormant plan perturbed counters:\n%v\n%v", snapNil, snapOff)
	}
	if sumNil != sumOff || endNil != endOff {
		t.Errorf("dormant plan perturbed the run: checksum %#x/%#x end %v/%v",
			sumNil, sumOff, endNil, endOff)
	}
	if inj.Injected() != 0 {
		t.Errorf("dormant plan injected %d faults", inj.Injected())
	}
	if snapNil["faultsInjected"] != 0 {
		t.Error("fault counters non-zero without faults")
	}
}

// TestDetachCompletesDegraded is the acceptance scenario from the issue: a
// seeded fault plan that detaches one node mid-run must leave FFT and OCEAN
// completing with correct results — DEGRADED cells, never FAILED.
func TestDetachCompletesDegraded(t *testing.T) {
	const spec = "send:p=0.05;detach:node=1,at=2ms"
	plan := fault.MustParsePlan(spec)
	for _, app := range []string{"FFT", "OCEAN"} {
		for _, backend := range []string{BackendGenima, BackendCables} {
			inj := fault.New(plan, 7)
			res, ctr, _, err := RunAppFault(app, backend, 4, ScaleTest, nil, inj, 0)
			if err != nil {
				t.Errorf("%s/%s: FAILED under detach plan: %v", app, backend, err)
				continue
			}
			if inj.Injected() == 0 {
				t.Errorf("%s/%s: plan never fired; not a degradation test", app, backend)
			}
			if ctr.Load(stats.EvNodeDetaches) != 1 {
				t.Errorf("%s/%s: nodeDetaches=%d, want 1", app, backend,
					ctr.Load(stats.EvNodeDetaches))
			}
			if res.Parallel <= 0 {
				t.Errorf("%s/%s: implausible parallel time %v", app, backend, res.Parallel)
			}
		}
	}
}

// TestRunFaultsRendersDegraded checks the table renderer end to end: faulted
// cells read DEGRADED with their time, and nothing reads FAILED.
func TestRunFaultsRendersDegraded(t *testing.T) {
	var b strings.Builder
	plan := fault.MustParsePlan("send:p=0.2;detach:node=1,at=2ms")
	RunFaults(&b, plan, 7, []string{"FFT"}, []int{4}, ScaleTest, nil, 2, 0)
	out := b.String()
	if strings.Contains(out, "FAILED") {
		t.Errorf("faulted sweep failed a cell:\n%s", out)
	}
	if !strings.Contains(out, "DEGRADED(") {
		t.Errorf("no DEGRADED cell in output:\n%s", out)
	}
	if !strings.Contains(out, "nodeDetaches=1") {
		t.Errorf("per-cell fault counters missing:\n%s", out)
	}
	if !strings.Contains(out, "dropped=") {
		t.Errorf("census line does not surface ring truncation:\n%s", out)
	}
	if !strings.Contains(out, fmt.Sprintf("seed %d", 7)) || !strings.Contains(out, plan.String()) {
		t.Errorf("header does not identify plan+seed:\n%s", out)
	}
}
