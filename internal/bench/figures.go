package bench

import (
	"errors"
	"fmt"
	"io"

	"cables/internal/apps/appapi"
	cables "cables/internal/core"
	"cables/internal/m4"
	"cables/internal/memsys"
	"cables/internal/sim"
	"cables/internal/stats"
	"cables/internal/vmmc"
	"cables/internal/wire"
)

// Fig5Cell is one (app, procs, backend) outcome.
type Fig5Cell struct {
	Res appapi.Result
	Err error
}

// Fig5Data maps app -> procs -> backend -> outcome.
type Fig5Data map[string]map[int]map[string]Fig5Cell

// fig5CellSpec identifies one (app, procs, backend) cell of the sweep.
type fig5CellSpec struct {
	app     string
	procs   int
	backend string
}

// fig5Cells flattens the sweep into a deterministic cell list.
func fig5Cells(apps []string, procs []int) []fig5CellSpec {
	specs := make([]fig5CellSpec, 0, len(apps)*len(procs)*2)
	for _, app := range apps {
		for _, p := range procs {
			for _, backend := range []string{BackendGenima, BackendCables} {
				specs = append(specs, fig5CellSpec{app, p, backend})
			}
		}
	}
	return specs
}

// RunFig5 executes the Figure 5 sweep (every SPLASH-2 application on both
// systems across the processor counts) and returns the raw results; Fig5
// and Fig6 format them.  Up to jobs cells run concurrently on the host;
// each cell is an independent simulation, so the assembled data — keyed by
// (app, procs, backend) — is identical for any jobs value (jobs <= 1 runs
// the sweep sequentially, exactly as before).
func RunFig5(apps []string, procs []int, scale Scale, costs *sim.Costs, jobs int) Fig5Data {
	return RunFig5Wire(apps, procs, scale, costs, jobs, wire.Options{})
}

// RunFig5Wire is RunFig5 with explicit wire-plane options: every cell of the
// sweep runs with the same op-plane modes (-contended-sync, -coalesce).
func RunFig5Wire(apps []string, procs []int, scale Scale, costs *sim.Costs, jobs int, w wire.Options) Fig5Data {
	if len(apps) == 0 {
		apps = AppNames
	}
	if len(procs) == 0 {
		procs = ProcCounts
	}
	specs := fig5Cells(apps, procs)
	cells := make([]Fig5Cell, len(specs))
	errs := RunCells(jobs, len(specs), func(i int) {
		res, err := RunAppWire(specs[i].app, specs[i].backend, specs[i].procs, scale, costs, w)
		cells[i] = Fig5Cell{Res: res, Err: err}
	})
	data := make(Fig5Data)
	for i, s := range specs {
		byProcs, ok := data[s.app]
		if !ok {
			byProcs = make(map[int]map[string]Fig5Cell)
			data[s.app] = byProcs
		}
		byBackend, ok := byProcs[s.procs]
		if !ok {
			byBackend = make(map[string]Fig5Cell)
			byProcs[s.procs] = byBackend
		}
		cell := cells[i]
		if errs[i] != nil && cell.Err == nil {
			cell.Err = errs[i] // cell panicked; isolate it, keep the sweep
		}
		byBackend[s.backend] = cell
	}
	return data
}

// Fig5 prints the Figure 5 series: execution time of the parallel section
// for the original SVM system (M4) and for CableS (M4 on pthreads), per
// processor count.  A registration failure prints as FAILED — the paper's
// OCEAN-at-32-processors case on the base system.
func Fig5(w io.Writer, data Fig5Data, procs []int) *stats.Table {
	if len(procs) == 0 {
		procs = ProcCounts
	}
	header := []string{"Application", "System"}
	for _, p := range procs {
		header = append(header, fmt.Sprintf("%dp", p))
	}
	tab := stats.NewTable(header...)
	for _, app := range AppNames {
		byProcs, ok := data[app]
		if !ok {
			continue
		}
		for _, backend := range []string{BackendGenima, BackendCables} {
			row := []string{app, backend}
			for _, p := range procs {
				cell := byProcs[p][backend]
				switch {
				case cell.Err != nil:
					row = append(row, "FAILED")
				default:
					row = append(row, cell.Res.Parallel.String())
				}
			}
			tab.AddRow(row...)
		}
	}
	if w != nil {
		fprintf(w, "Figure 5: SPLASH-2 parallel-section time, M4 (genima) vs M4-pthreads (cables)\n%s\n", tab)
	}
	return tab
}

// Fig6 prints the Figure 6 series: the percentage of pages CableS places on
// a different home than the base system's per-page first touch, per
// application and processor count.
func Fig6(w io.Writer, data Fig5Data, procs []int) *stats.Table {
	if len(procs) == 0 {
		procs = ProcCounts
	}
	header := []string{"Application"}
	for _, p := range procs {
		header = append(header, fmt.Sprintf("%dp", p))
	}
	tab := stats.NewTable(header...)
	for _, app := range AppNames {
		byProcs, ok := data[app]
		if !ok {
			continue
		}
		row := []string{app}
		for _, p := range procs {
			cell := byProcs[p][BackendCables]
			if cell.Err != nil {
				row = append(row, "FAILED")
			} else {
				row = append(row, fmt.Sprintf("%.1f%%", cell.Res.MisplacedPct()))
			}
		}
		tab.AddRow(row...)
	}
	if w != nil {
		fprintf(w, "Figure 6: %% pages misplaced by CableS (64 KB map-unit first touch)\n%s\n", tab)
	}
	return tab
}

// Limits demonstrates Tables 1 and 2: which SAN registration limits bind
// the base SVM system and which bind CableS.
func Limits(w io.Writer) *stats.Table {
	tab := stats.NewTable("Scenario", "Base SVM (GeNIMA)", "CableS")

	// Scenario 1: many shared segments on a 16-node system.  The base
	// system registers each segment on every node (regions ~ S x N); CableS
	// uses one growing protocol region per node.
	baseSegs := func() (int, error) {
		rt := m4.New(m4.Config{Procs: 32, ProcsPerNode: 2, ArenaBytes: 64 << 20})
		for i := 0; i < 60; i++ {
			if _, err := rt.Malloc(rt.Main(), "seg", 256<<10); err != nil {
				return i, err
			}
		}
		return 60, nil
	}
	cablesSegs := func() (int, error) {
		rt := cables.NewM4(cables.M4Config{Procs: 32, ProcsPerNode: 2, ArenaBytes: 64 << 20})
		for i := 0; i < 60; i++ {
			a, err := rt.Malloc(rt.Main(), "seg", 256<<10)
			if err != nil {
				return i, err
			}
			rt.Acc().WriteI64(rt.Main(), a, 1) // bind the home
		}
		return 60, nil
	}
	bn, berr := baseSegs()
	cn, cerr := cablesSegs()
	tab.AddRow("60 segments, 16 nodes (region count)",
		limitCell(bn, berr), limitCell(cn, cerr))

	// Scenario 2: shared data bigger than one NIC's registered-memory
	// limit.  The base system registers the whole arena on every NIC;
	// CableS pins only each node's home portion (arena/N), so it can run
	// problems ~N x larger (the paper's OCEAN observation).
	bigBase := func() (int, error) {
		rt := m4.New(m4.Config{Procs: 32, ProcsPerNode: 2, ArenaBytes: 512 << 20})
		for i := 0; i < 10; i++ {
			if _, err := rt.Malloc(rt.Main(), "big", 40<<20); err != nil {
				return i, err
			}
		}
		return 10, nil
	}
	bigCables := func() (n int, err error) {
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("%v", r)
			}
		}()
		rt := cables.NewM4(cables.M4Config{Procs: 32, ProcsPerNode: 2, ArenaBytes: 512 << 20})
		main := rt.Main()
		const size, per = int64(40 << 20), 10
		addrs := make([]memsys.Addr, 0, per)
		for i := 0; i < per; i++ {
			a, mErr := rt.Malloc(main, "big", size)
			if mErr != nil {
				return i, mErr
			}
			addrs = append(addrs, a)
		}
		// The application's threads first-touch their own partitions, so
		// each node pins only arena/N — the double-mapping advantage.
		appapi.RunWorkers(rt, 32, func(t *sim.Task, p int) {
			acc := rt.Acc()
			stripe := size / 32
			for _, a := range addrs {
				lo := int64(p) * stripe
				for off := lo; off < lo+stripe; off += 64 << 10 {
					acc.WriteI64(t, a+memsys.Addr(off), 1)
				}
			}
		})
		return per, nil
	}
	bn2, berr2 := bigBase()
	cn2, cerr2 := bigCables()
	tab.AddRow("10 x 40 MB shared data (registered bytes)",
		limitCell(bn2, berr2), limitCell(cn2, cerr2))

	if w != nil {
		fprintf(w, "Tables 1/2: SAN limits binding each system (NIC: %d regions, %d MB registered, %d MB pinned)\n%s\n",
			vmmc.DefaultLimits().MaxRegions,
			vmmc.DefaultLimits().MaxRegisteredBytes>>20,
			vmmc.DefaultLimits().MaxPinnedBytes>>20, tab)
	}
	return tab
}

func limitCell(n int, err error) string {
	if err == nil {
		return fmt.Sprintf("OK (%d allocations)", n)
	}
	for _, sentinel := range []error{vmmc.ErrRegionLimit, vmmc.ErrRegisteredLimit, vmmc.ErrPinnedLimit} {
		if errors.Is(err, sentinel) {
			return fmt.Sprintf("FAILED after %d (%v)", n, sentinel)
		}
	}
	return fmt.Sprintf("FAILED after %d", n)
}
