package bench

import (
	"io"
	"strings"
	"testing"
)

// TestLimitsTable checks the Tables 1/2 demonstration: the base system hits
// both NIC limits, CableS hits neither in these scenarios.
func TestLimitsTable(t *testing.T) {
	s := Limits(io.Discard).String()
	t.Logf("\n%s", s)
	lines := strings.Split(s, "\n")
	var segs, big string
	for _, l := range lines {
		if strings.HasPrefix(l, "60 segments") {
			segs = l
		}
		if strings.HasPrefix(l, "10 x 40 MB") {
			big = l
		}
	}
	if !strings.Contains(segs, "region table full") || !strings.Contains(segs, "OK (60") {
		t.Errorf("region-count scenario wrong: %s", segs)
	}
	if !strings.Contains(big, "registered-memory limit") || !strings.Contains(big, "OK (10") {
		t.Errorf("registered-bytes scenario wrong: %s", big)
	}
}

// TestFig5OceanFailsOnlyAt32OnBase reproduces the paper's registration
// failure point: OCEAN runs on the base system up to 16 processors and
// fails at 32; CableS runs everywhere.
func TestFig5OceanFailsOnlyAt32OnBase(t *testing.T) {
	data := RunFig5([]string{"OCEAN"}, []int{16, 32}, ScaleTest, nil, 2)
	if err := data["OCEAN"][16][BackendGenima].Err; err != nil {
		t.Errorf("base OCEAN at 16 procs should run: %v", err)
	}
	if err := data["OCEAN"][32][BackendGenima].Err; err == nil {
		t.Error("base OCEAN at 32 procs should fail registration")
	}
	for _, p := range []int{16, 32} {
		if err := data["OCEAN"][p][BackendCables].Err; err != nil {
			t.Errorf("CableS OCEAN at %d procs should run: %v", p, err)
		}
	}
}
