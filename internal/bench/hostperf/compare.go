package hostperf

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
)

// maxWirePlaneOverhead is the comparison gate on the wire plane's per-op
// dispatch cost: Plane.Do may add at most 2% of one flush operation over
// the pre-plane inline sequence (the Derived["wire_plane_overhead"] ratio).
const maxWirePlaneOverhead = 0.02

// maxProfileOverhead is the comparison gate on the profiler's detached
// probe cost: an uninstrumented run may pay at most 0.5% of one flush
// operation per span site (the Derived["profile_overhead"] ratio) — with
// no profiler attached, OpenSpan/CloseSpan must stay a nil check.
const maxProfileOverhead = 0.005

// maxProtocolDispatchOverhead is the comparison gate on the coherence
// protocol seam: the interface consultations one flush performs on the
// default genima path (per-diff MergeDiff plus the Merge mode check) may
// cost at most 1% of the flush itself
// (Derived["protocol_dispatch_overhead"]), and must not allocate.
const maxProtocolDispatchOverhead = 0.01

// maxMetricsIncOverhead is the comparison gate on the telemetry plane's
// hottest path: incrementing a labeled counter through a cached child
// pointer may cost at most 0.1% of one flush operation — with the flush at
// tens of microseconds, that holds the increment to a few tens of
// nanoseconds — and must not allocate.
const maxMetricsIncOverhead = 0.001

// maxMetricsWithOverhead is the gate on the uncached pattern — resolving
// the child by label values on every call, then incrementing.  The map
// lookup makes it a handful of times slower than the cached path, but it
// must stay under 0.5% of a flush (and allocation-free).
const maxMetricsWithOverhead = 0.005

// maxMetricsScrapeOverhead is the comparison gate on one full /metrics
// text exposition of a farm-shaped registry: reader-paid, so merely
// bounded — at most 2× one flush operation.
const maxMetricsScrapeOverhead = 2.0

// minSchedSpeedup is the comparison gate on the event scheduler backend:
// fig5-small at jobs=NumCPU must run at least this much faster under
// sched/event than under sched/goroutine (Derived["fig5_small_speedup_sched"]).
// The gate is enforced on hosts with GOMAXPROCS >= 2, where free-running
// goroutines genuinely contend for cores and park/wake through futexes; on
// a single-processor host the Go scheduler is already effectively
// cooperative, there is no cross-core contention to eliminate, and the
// measured gap (recorded in the report either way) is informational.
const minSchedSpeedup = 2.0

// maxMemRegression is the comparison gate on end-to-end memory: each e2e
// application's allocation rate (B/op, the Derived["mem_*_bytes_per_op"]
// values) may grow by at most 25% over the previous report.  The COW frame
// store bought a multi-fold reduction here; this keeps eager page copies
// from creeping back in.
const maxMemRegression = 1.25

// Compare prints a benchstat-style delta table of two reports: per
// benchmark, old and new ns/op and allocs/op with the relative change.
// Benchmarks present in only one report are listed with "-" on the missing
// side, so renamed or added cases are visible rather than silently dropped.
// It returns an error when the new report violates a perf guard —
// wire_plane_overhead exceeding maxWirePlaneOverhead, profile_overhead
// exceeding maxProfileOverhead, or any allocation on the wire fast path —
// so `cablesim hostperf -compare` fails loudly on a choke-point regression.
func Compare(w io.Writer, old, cur Report) error {
	names := make(map[string]bool, len(old.Benchmarks)+len(cur.Benchmarks))
	for n := range old.Benchmarks {
		names[n] = true
	}
	for n := range cur.Benchmarks {
		names[n] = true
	}
	sorted := make([]string, 0, len(names))
	for n := range names {
		sorted = append(sorted, n)
	}
	sort.Strings(sorted)

	fmt.Fprintf(w, "hostperf delta (old: go %s gomaxprocs=%d, new: go %s gomaxprocs=%d)\n",
		old.Go, old.GOMAXPROCS, cur.Go, cur.GOMAXPROCS)
	fmt.Fprintf(w, "%-26s %14s %14s %8s   %10s %10s %8s\n",
		"benchmark", "old ns/op", "new ns/op", "delta", "old allocs", "new allocs", "delta")
	for _, n := range sorted {
		o, haveOld := old.Benchmarks[n]
		c, haveCur := cur.Benchmarks[n]
		switch {
		case !haveOld:
			fmt.Fprintf(w, "%-26s %14s %14.1f %8s   %10s %10d %8s\n",
				n, "-", c.NsPerOp, "new", "-", c.AllocsPerOp, "new")
		case !haveCur:
			fmt.Fprintf(w, "%-26s %14.1f %14s %8s   %10d %10s %8s\n",
				n, o.NsPerOp, "-", "gone", o.AllocsPerOp, "-", "gone")
		default:
			fmt.Fprintf(w, "%-26s %14.1f %14.1f %8s   %10d %10d %8s\n",
				n, o.NsPerOp, c.NsPerOp, pctDelta(o.NsPerOp, c.NsPerOp),
				o.AllocsPerOp, c.AllocsPerOp,
				pctDelta(float64(o.AllocsPerOp), float64(c.AllocsPerOp)))
		}
	}
	if ov, ok := cur.Derived["wire_plane_overhead"]; ok && ov > maxWirePlaneOverhead {
		return fmt.Errorf("wire_plane_overhead %.4f exceeds the %.0f%% gate: Plane.Do dispatch has regressed",
			ov, maxWirePlaneOverhead*100)
	}
	if ov, ok := cur.Derived["profile_overhead"]; ok && ov > maxProfileOverhead {
		return fmt.Errorf("profile_overhead %.4f exceeds the %.1f%% gate: the detached span probe is no longer free",
			ov, maxProfileOverhead*100)
	}
	if n, ok := cur.Derived["wire_do_allocs_per_op"]; ok && n > 0 {
		return fmt.Errorf("wire/do allocates (%.0f allocs/op): the wire fast path must stay allocation-free", n)
	}
	if ov, ok := cur.Derived["protocol_dispatch_overhead"]; ok && ov > maxProtocolDispatchOverhead {
		return fmt.Errorf("protocol_dispatch_overhead %.4f exceeds the %.0f%% gate: the coherence-protocol seam is no longer free on the genima path",
			ov, maxProtocolDispatchOverhead*100)
	}
	if n, ok := cur.Derived["protocol_dispatch_allocs_per_op"]; ok && n > 0 {
		return fmt.Errorf("protocol/dispatch allocates (%.0f allocs/op): the genima fast path must stay allocation-free", n)
	}
	if ov, ok := cur.Derived["metrics_inc_overhead"]; ok && ov > maxMetricsIncOverhead {
		return fmt.Errorf("metrics_inc_overhead %.5f exceeds the %.1f%% gate: the telemetry instrument hot path is no longer a padded atomic add",
			ov, maxMetricsIncOverhead*100)
	}
	if ov, ok := cur.Derived["metrics_with_overhead"]; ok && ov > maxMetricsWithOverhead {
		return fmt.Errorf("metrics_with_overhead %.5f exceeds the %.1f%% gate: label resolution is no longer an allocation-free map lookup",
			ov, maxMetricsWithOverhead*100)
	}
	for _, key := range []string{"metrics_inc_allocs_per_op", "metrics_with_allocs_per_op", "metrics_observe_allocs_per_op"} {
		if n, ok := cur.Derived[key]; ok && n > 0 {
			return fmt.Errorf("%s is %.0f: telemetry instruments must stay allocation-free on the hot path", key, n)
		}
	}
	if ov, ok := cur.Derived["metrics_scrape_overhead"]; ok && ov > maxMetricsScrapeOverhead {
		return fmt.Errorf("metrics_scrape_overhead %.2f exceeds the %.0fx-flush gate: one /metrics exposition has grown too expensive",
			ov, maxMetricsScrapeOverhead)
	}
	if sp, ok := cur.Derived["fig5_small_speedup_sched"]; ok && cur.GOMAXPROCS >= 2 && sp < minSchedSpeedup {
		return fmt.Errorf("fig5_small_speedup_sched %.2f below the %.1fx gate: the event scheduler no longer beats free-running goroutines on a %d-way host",
			sp, minSchedSpeedup, cur.GOMAXPROCS)
	}
	for _, key := range []string{"mem_fft_bytes_per_op", "mem_ocean_bytes_per_op", "mem_fig5_small_bytes_per_op"} {
		o, haveO := old.Derived[key]
		c, haveC := cur.Derived[key]
		if haveO && haveC && o > 0 && c > o*maxMemRegression {
			return fmt.Errorf("mem_regression: %s %.0f exceeds %.0f×%.2f: eager page copies are creeping back into the data plane",
				key, c, o, maxMemRegression)
		}
	}
	return nil
}

// pctDelta renders the relative change from old to new.
func pctDelta(old, cur float64) string {
	if old == 0 {
		if cur == 0 {
			return "0%"
		}
		return "+inf"
	}
	return fmt.Sprintf("%+.1f%%", (cur-old)/old*100)
}

// CompareFiles loads two report files and prints their delta table.
func CompareFiles(w io.Writer, oldPath, newPath string) error {
	old, err := readReport(oldPath)
	if err != nil {
		return err
	}
	cur, err := readReport(newPath)
	if err != nil {
		return err
	}
	return Compare(w, old, cur)
}

func readReport(path string) (Report, error) {
	var r Report
	f, err := os.Open(path)
	if err != nil {
		return r, err
	}
	defer f.Close()
	if err := json.NewDecoder(f).Decode(&r); err != nil {
		return r, fmt.Errorf("%s: %w", path, err)
	}
	return r, nil
}
