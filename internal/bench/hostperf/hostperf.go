// Package hostperf measures the host-side (wall-clock) performance of the
// SVM data plane: the diff kernel, the flush and acquire paths, and two
// end-to-end applications.  These are ns/op and allocs/op of the simulator
// itself — NOT virtual time.  The virtual-time quantities (every table and
// figure) must be unaffected by anything tuned here; see DESIGN.md §5b.
//
// The same benchmark bodies back three entry points:
//
//   - `go test -bench=. ./internal/bench/hostperf` (and -benchtime=1x as a
//     smoke test in `make check`);
//   - the root-level Benchmark wrappers in bench_test.go;
//   - `cablesim hostperf`, which runs the suite via testing.Benchmark and
//     writes BENCH_dataplane.json so successive PRs accumulate a perf
//     trajectory.
package hostperf

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"sync"
	"testing"

	"cables/internal/bench"
	"cables/internal/coherence"
	"cables/internal/m4"
	"cables/internal/memsys"
	"cables/internal/sim"
)

// Case is one named host-perf benchmark.
type Case struct {
	Name string
	Fn   func(b *testing.B)
}

// Cases returns the data-plane benchmark suite in reporting order.  The
// sweep/ cases measure multicore host scaling: the end-to-end applications
// re-run under a GOMAXPROCS sweep (a single simulation is itself
// concurrent — one goroutine per simulated thread), and sweep/fig5-small
// times the parallel experiment harness on a small Figure 5 grid at
// -jobs 1 vs the host's processor count.
func Cases() []Case {
	cases := []Case{
		{"diff/kernel/clean", DiffKernelClean},
		{"diff/ref/clean", DiffRefClean},
		{"diff/kernel/sparse", DiffKernelSparse},
		{"diff/ref/sparse", DiffRefSparse},
		{"diff/kernel/dense", DiffKernelDense},
		{"diff/ref/dense", DiffRefDense},
		{"flush", Flush},
		{"acquire", Acquire},
		{"wire/do", WireDo},
		{"wire/direct", WireDirect},
		{"protocol/dispatch", ProtocolDispatch},
		{"metrics/inc", MetricsInc},
		{"metrics/with", MetricsWith},
		{"metrics/observe", MetricsObserve},
		{"metrics/scrape", MetricsScrape},
		{"profile/detached", ProfileDetached},
		{"profile/attached", ProfileAttached},
		{"e2e/fft", E2EFFT},
		{"e2e/ocean", E2EOcean},
	}
	for _, g := range SweepProcs() {
		g := g
		cases = append(cases,
			Case{fmt.Sprintf("sweep/fft/g%d", g), withGOMAXPROCS(g, E2EFFT)},
			Case{fmt.Sprintf("sweep/ocean/g%d", g), withGOMAXPROCS(g, E2EOcean)},
		)
	}
	cases = append(cases,
		Case{"sweep/fig5-small/jobs1", Fig5Small(1)},
		Case{fmt.Sprintf("sweep/fig5-small/jobs%d", fig5SmallParJobs()), Fig5Small(fig5SmallParJobs())},
	)
	// Thread-manager backend comparison: the same workloads pinned to each
	// scheduler (virtual-time results are identical across backends; only
	// the simulator's wall-clock changes).  fig5-small runs at jobs=NumCPU,
	// the configuration the sched gate watches.
	for _, s := range sim.SchedulerNames() {
		s := s
		cases = append(cases,
			Case{"sched/" + s + "/fig5-small", withScheduler(s, Fig5Small(bench.DefaultJobs()))},
			Case{"sched/" + s + "/fft", withScheduler(s, E2EFFT)},
			Case{"sched/" + s + "/ocean", withScheduler(s, E2EOcean)},
		)
	}
	return cases
}

// withScheduler wraps a benchmark body so every simulation it creates runs
// under the named thread-manager backend, restoring the prior default.
func withScheduler(name string, fn func(b *testing.B)) func(b *testing.B) {
	return func(b *testing.B) {
		old := sim.DefaultSchedulerName()
		if err := sim.SetDefaultScheduler(name); err != nil {
			b.Fatal(err)
		}
		defer sim.SetDefaultScheduler(old)
		fn(b)
	}
}

// fig5SmallParJobs is the parallel-harness width for sweep/fig5-small: the
// host width, floored at 2 so the pooled path is exercised (and named
// distinctly from the jobs1 baseline) even on a single-processor host.
func fig5SmallParJobs() int {
	if j := bench.DefaultJobs(); j > 2 {
		return j
	}
	return 2
}

// SweepProcs returns the GOMAXPROCS sweep points {1, 2, NumCPU},
// deduplicated and sorted (a 1-CPU host sweeps {1, 2}; a 2-CPU host {1, 2}).
func SweepProcs() []int {
	pts := []int{1, 2, runtime.NumCPU()}
	sort.Ints(pts)
	out := pts[:1]
	for _, p := range pts[1:] {
		if p != out[len(out)-1] {
			out = append(out, p)
		}
	}
	return out
}

// withGOMAXPROCS wraps a benchmark body so it runs under the given
// GOMAXPROCS, restoring the previous value afterwards.  Wall-clock only:
// virtual-time results are invariant under host parallelism (DESIGN.md §5b).
func withGOMAXPROCS(n int, fn func(b *testing.B)) func(b *testing.B) {
	return func(b *testing.B) {
		old := runtime.GOMAXPROCS(n)
		defer runtime.GOMAXPROCS(old)
		fn(b)
	}
}

// Fig5Small returns a benchmark of the parallel experiment harness: one op
// is a small Figure 5 grid (FFT and LU at 1 and 4 processors, both
// backends, test scale) run with the given -jobs bound.
func Fig5Small(jobs int) func(b *testing.B) {
	return func(b *testing.B) {
		b.ReportAllocs()
		memsys.ResetFramesPeak()
		for i := 0; i < b.N; i++ {
			bench.RunFig5([]string{"FFT", "LU"}, []int{1, 4}, bench.ScaleTest, nil, jobs)
		}
		reportResidentPeak(b)
	}
}

// reportResidentPeak attaches the COW frame store's resident high-water mark
// (in bytes, since the preceding ResetFramesPeak) to the benchmark result.
// It is a gauge over the whole measured body, not a per-op quantity.
func reportResidentPeak(b *testing.B) {
	b.ReportMetric(float64(memsys.FramesResidentPeak()*memsys.PageSize), "bytes_resident_peak")
}

// --- Diff kernel microbenchmarks ---

// diffInput builds a (data, twin, home) triple with the given dirty shape.
func diffInput(kind string) (data, twin, home []byte) {
	r := rand.New(rand.NewSource(42))
	twin = make([]byte, memsys.PageSize)
	r.Read(twin)
	home = make([]byte, memsys.PageSize)
	r.Read(home)
	data = append([]byte(nil), twin...)
	switch kind {
	case "clean":
		// identical pages: the common false-alarm flush
	case "sparse":
		// a handful of scattered scalar writes, the lock-protected-counter shape
		for i := 0; i < 8; i++ {
			off := r.Intn(memsys.PageSize - 8)
			r.Read(data[off : off+8])
		}
	case "dense":
		// fully rewritten page, the bulk-phase shape
		r.Read(data)
	default:
		panic("hostperf: unknown diff input " + kind)
	}
	return data, twin, home
}

func benchDiff(b *testing.B, kind string, fn func(data, twin, home []byte) int) {
	data, twin, home := diffInput(kind)
	b.SetBytes(memsys.PageSize)
	b.ReportAllocs()
	b.ResetTimer()
	sink := 0
	for i := 0; i < b.N; i++ {
		sink += fn(data, twin, home)
	}
	_ = sink
}

// DiffKernelClean benchmarks the word-level kernel on an unchanged page.
func DiffKernelClean(b *testing.B) { benchDiff(b, "clean", memsys.DiffPage) }

// DiffRefClean benchmarks the byte-wise reference on an unchanged page.
func DiffRefClean(b *testing.B) { benchDiff(b, "clean", memsys.DiffPageRef) }

// DiffKernelSparse benchmarks the kernel on a page with 8 scattered dirty words.
func DiffKernelSparse(b *testing.B) { benchDiff(b, "sparse", memsys.DiffPage) }

// DiffRefSparse benchmarks the reference on the same sparse page.
func DiffRefSparse(b *testing.B) { benchDiff(b, "sparse", memsys.DiffPageRef) }

// DiffKernelDense benchmarks the kernel on a fully rewritten page.
func DiffKernelDense(b *testing.B) { benchDiff(b, "dense", memsys.DiffPage) }

// DiffRefDense benchmarks the reference on the same dense page.
func DiffRefDense(b *testing.B) { benchDiff(b, "dense", memsys.DiffPageRef) }

// --- Protocol-path benchmarks ---

// Flush measures the release-side path: a non-home writer dirties 8 pages
// (sparse stores) and flushes the interval; per op that is 8 twin captures,
// 8 diffs applied to remote homes, and one write-notice publication.
func Flush(b *testing.B) {
	rt := m4.New(m4.Config{Procs: 4, ProcsPerNode: 2, ArenaBytes: 32 << 20})
	main := rt.Main()
	acc := rt.Acc()
	addr, err := rt.Malloc(main, "flushbench", 8<<12)
	if err != nil {
		b.Fatal(err)
	}
	// Home the pages on node 0 so the node-1 writer must twin + diff.
	for i := 0; i < 8; i++ {
		acc.WriteI64(main, addr+memsys.Addr(i<<12), 1)
	}
	rt.Protocol().Flush(main)
	rt.Spawn(main, func(th *sim.Task) {}) // occupy the node-0 worker slot
	var wg sync.WaitGroup
	wg.Add(1)
	rt.Spawn(main, func(th *sim.Task) {
		defer wg.Done()
		if th.NodeID == 0 {
			b.Error("worker landed on node 0")
			return
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for p := 0; p < 8; p++ {
				for w := 0; w < 512; w += 3 {
					acc.WriteI64(th, addr+memsys.Addr(p<<12+w*8), int64(i+w))
				}
			}
			rt.Protocol().Flush(th)
		}
	})
	wg.Wait()
}

// Acquire measures the acquire-side path with a strict 2-node lock
// ping-pong: each op is one lock round trip — acquire (invalidate the
// peer's last interval), four scalar updates, release (flush).
func Acquire(b *testing.B) {
	rt := m4.New(m4.Config{Procs: 2, ProcsPerNode: 1, ArenaBytes: 16 << 20})
	main := rt.Main()
	acc := rt.Acc()
	addr, err := rt.Malloc(main, "acqbench", 4<<12)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		acc.WriteI64(main, addr+memsys.Addr(i<<12), 0)
	}
	rt.Protocol().Flush(main)

	turn := [2]chan struct{}{make(chan struct{}, 1), make(chan struct{}, 1)}
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		w := w
		wg.Add(1)
		rt.Spawn(main, func(th *sim.Task) {
			defer wg.Done()
			if w == 0 {
				b.ReportAllocs()
				b.ResetTimer()
			}
			for i := 0; i < b.N; i++ {
				<-turn[w]
				rt.Lock(th, 1)
				for s := 0; s < 4; s++ {
					v := acc.ReadI64(th, addr+memsys.Addr(s<<12))
					acc.WriteI64(th, addr+memsys.Addr(s<<12), v+1)
				}
				rt.Unlock(th, 1)
				turn[1-w] <- struct{}{}
			}
		})
	}
	turn[0] <- struct{}{}
	wg.Wait()
}

// dispatchPol is a package-level interface variable so the compiler cannot
// devirtualize the calls under test: the benchmark must pay the same
// indirect-call cost the flush path pays through Protocol.pol.
var dispatchPol coherence.Protocol = coherence.MustNew(coherence.ProtoGenima)

// ProtocolDispatch measures what the coherence-protocol seam adds to one
// flush operation on the default (genima) fast path: the per-diff
// MergeDiff consultations (8, matching the Flush benchmark's dirty-page
// count) plus the per-flush Merge mode check, all through the interface.
// Every call is a no-op under genima — the benchmark prices the interface
// indirection itself, which the protocol_dispatch_overhead compare gate
// holds at ≤1% of a flush, with zero allocations.
func ProtocolDispatch(b *testing.B) {
	b.ReportAllocs()
	b.ResetTimer()
	sink := false
	for i := 0; i < b.N; i++ {
		if dispatchPol.Merge() {
			sink = !sink
		}
		for p := 0; p < 8; p++ {
			if dispatchPol.MergeDiff(1, memsys.PageID(p), 0, 128) {
				sink = !sink
			}
		}
	}
	_ = sink
}

// --- End-to-end application benchmarks ---

func benchApp(b *testing.B, app string) {
	b.ReportAllocs()
	memsys.ResetFramesPeak()
	for i := 0; i < b.N; i++ {
		if _, err := bench.RunApp(app, bench.BackendGenima, 8, bench.ScaleTest, nil); err != nil {
			b.Fatal(err)
		}
	}
	reportResidentPeak(b)
}

// E2EFFT runs the whole FFT reproduction (genima backend, 8 procs, test
// scale) per op — the end-to-end wall-clock cost of a simulated run.
func E2EFFT(b *testing.B) { benchApp(b, "FFT") }

// E2EOcean runs OCEAN end-to-end per op.
func E2EOcean(b *testing.B) { benchApp(b, "OCEAN") }

// --- Report generation ---

// Metric is one benchmark's host-time result.  BytesResidentPeak is the COW
// frame store's resident high-water mark (bytes) over the measured body —
// present only for the end-to-end and fig5-small cases, which report it.
type Metric struct {
	NsPerOp           float64 `json:"ns_per_op"`
	AllocsPerOp       int64   `json:"allocs_per_op"`
	BytesPerOp        int64   `json:"bytes_per_op"`
	BytesResidentPeak int64   `json:"bytes_resident_peak,omitempty"`
	N                 int     `json:"n"`
}

// Report is the BENCH_dataplane.json schema.  Derived holds the headline
// ratios future PRs watch: kernel-vs-reference diff speedups and the
// allocation rate of the flush path.
type Report struct {
	Go         string             `json:"go"`
	GOMAXPROCS int                `json:"gomaxprocs"`
	Benchmarks map[string]Metric  `json:"benchmarks"`
	Derived    map[string]float64 `json:"derived"`
}

// Run executes the full suite via testing.Benchmark and assembles a Report.
func Run() Report {
	rep := Report{
		Go:         runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Benchmarks: make(map[string]Metric),
		Derived:    make(map[string]float64),
	}
	for _, c := range Cases() {
		r := testing.Benchmark(c.Fn)
		m := Metric{
			NsPerOp:     float64(r.NsPerOp()),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			N:           r.N,
		}
		if peak, ok := r.Extra["bytes_resident_peak"]; ok {
			m.BytesResidentPeak = int64(peak)
		}
		rep.Benchmarks[c.Name] = m
	}
	for _, kind := range []string{"clean", "sparse", "dense"} {
		ref := rep.Benchmarks["diff/ref/"+kind]
		ker := rep.Benchmarks["diff/kernel/"+kind]
		if ker.NsPerOp > 0 {
			rep.Derived["diff_speedup_"+kind] = ref.NsPerOp / ker.NsPerOp
		}
	}
	// Wire-plane dispatch overhead: the host-time cost Plane.Do adds over
	// the inline charge+count sequence call sites used before the plane,
	// expressed relative to one flush operation (a representative protocol
	// op).  Compare gates on this staying under 2%.
	if fl := rep.Benchmarks["flush"].NsPerOp; fl > 0 {
		delta := rep.Benchmarks["wire/do"].NsPerOp - rep.Benchmarks["wire/direct"].NsPerOp
		if delta < 0 {
			delta = 0
		}
		rep.Derived["wire_plane_overhead"] = delta / fl
		// Detached profiler probe cost at a span site, relative to the same
		// flush yardstick.  Compare gates on this staying under 0.5%: with no
		// profiler attached the probes must be invisible.
		rep.Derived["profile_overhead"] = rep.Benchmarks["profile/detached"].NsPerOp / fl
	}
	// The wire fast path must stay allocation-free whether or not a
	// profiler/ring is attached; Compare gates this at exactly zero.
	rep.Derived["wire_do_allocs_per_op"] = float64(rep.Benchmarks["wire/do"].AllocsPerOp)
	// Coherence-protocol seam cost on the default fast path: the interface
	// consultations one flush performs, relative to the flush itself.
	// Compare gates the ratio at 1% and the allocation count at zero.
	if fl := rep.Benchmarks["flush"].NsPerOp; fl > 0 {
		rep.Derived["protocol_dispatch_overhead"] = rep.Benchmarks["protocol/dispatch"].NsPerOp / fl
	}
	rep.Derived["protocol_dispatch_allocs_per_op"] = float64(rep.Benchmarks["protocol/dispatch"].AllocsPerOp)
	// Telemetry-plane costs: the instrument hot paths must be free (ratios
	// against the flush yardstick, gated well under 1%) and allocation-free;
	// the scrape is reader-paid and merely bounded.
	if fl := rep.Benchmarks["flush"].NsPerOp; fl > 0 {
		rep.Derived["metrics_inc_overhead"] = rep.Benchmarks["metrics/inc"].NsPerOp / fl
		rep.Derived["metrics_with_overhead"] = rep.Benchmarks["metrics/with"].NsPerOp / fl
		rep.Derived["metrics_scrape_overhead"] = rep.Benchmarks["metrics/scrape"].NsPerOp / fl
	}
	rep.Derived["metrics_inc_allocs_per_op"] = float64(rep.Benchmarks["metrics/inc"].AllocsPerOp)
	rep.Derived["metrics_with_allocs_per_op"] = float64(rep.Benchmarks["metrics/with"].AllocsPerOp)
	rep.Derived["metrics_observe_allocs_per_op"] = float64(rep.Benchmarks["metrics/observe"].AllocsPerOp)
	rep.Derived["flush_allocs_per_op"] = float64(rep.Benchmarks["flush"].AllocsPerOp)
	rep.Derived["flush_bytes_per_op"] = float64(rep.Benchmarks["flush"].BytesPerOp)
	rep.Derived["acquire_allocs_per_op"] = float64(rep.Benchmarks["acquire"].AllocsPerOp)
	// Memory footprint of the end-to-end runs and the parallel harness:
	// allocation rate (B/op — what the mem_regression gate in Compare
	// watches) plus the COW frame store's resident high-water mark.
	for key, name := range map[string]string{
		"fft":        "e2e/fft",
		"ocean":      "e2e/ocean",
		"fig5_small": "sweep/fig5-small/jobs1",
	} {
		m := rep.Benchmarks[name]
		rep.Derived["mem_"+key+"_bytes_per_op"] = float64(m.BytesPerOp)
		rep.Derived["mem_"+key+"_resident_peak"] = float64(m.BytesResidentPeak)
	}
	// Multicore host scaling: wall-clock speedup of each e2e app at the
	// swept GOMAXPROCS values over its single-processor run, and of the
	// parallel fig5 harness over the sequential sweep.
	for _, app := range []string{"fft", "ocean"} {
		base := rep.Benchmarks[fmt.Sprintf("sweep/%s/g1", app)]
		for _, g := range SweepProcs() {
			if g == 1 {
				continue
			}
			m := rep.Benchmarks[fmt.Sprintf("sweep/%s/g%d", app, g)]
			if m.NsPerOp > 0 {
				rep.Derived[fmt.Sprintf("sweep_%s_speedup_g%d", app, g)] = base.NsPerOp / m.NsPerOp
			}
		}
	}
	if par := rep.Benchmarks[fmt.Sprintf("sweep/fig5-small/jobs%d", fig5SmallParJobs())]; par.NsPerOp > 0 {
		rep.Derived["fig5_small_jobs_speedup"] =
			rep.Benchmarks["sweep/fig5-small/jobs1"].NsPerOp / par.NsPerOp
	}
	// Scheduler-backend speedups: goroutine-backend wall clock over
	// event-backend wall clock for the same workload (>1 means the event
	// scheduler is faster).  The fig5-small entry is the one the -compare
	// sched gate watches.
	for _, name := range []string{"fig5-small", "fft", "ocean"} {
		gor := rep.Benchmarks["sched/"+sim.SchedGoroutine+"/"+name]
		evt := rep.Benchmarks["sched/"+sim.SchedEvent+"/"+name]
		if gor.NsPerOp > 0 && evt.NsPerOp > 0 {
			key := "sweep_" + name + "_speedup_sched"
			if name == "fig5-small" {
				key = "fig5_small_speedup_sched"
			}
			rep.Derived[key] = gor.NsPerOp / evt.NsPerOp
		}
	}
	return rep
}

// WriteJSON renders the report as indented JSON.
func (r Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteFile runs the suite and writes the report to path, printing a
// one-line summary per benchmark to out.
func WriteFile(path string, out io.Writer) error {
	// Open the output before the multi-minute suite runs, so a bad path
	// fails immediately instead of after the benchmarks.
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	rep := Run()
	for _, c := range Cases() {
		m := rep.Benchmarks[c.Name]
		fmt.Fprintf(out, "%-26s %14.1f ns/op %8d B/op %6d allocs/op\n",
			c.Name, m.NsPerOp, m.BytesPerOp, m.AllocsPerOp)
	}
	keys := make([]string, 0, len(rep.Derived))
	for k := range rep.Derived {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(out, "%-26s %14.2f\n", k, rep.Derived[k])
	}
	return rep.WriteJSON(f)
}
