package hostperf

import (
	"bytes"
	"encoding/json"
	"testing"
)

// BenchmarkDataplane exposes the whole suite under `go test -bench`; `make
// check` smoke-runs it with -benchtime=1x.
func BenchmarkDataplane(b *testing.B) {
	for _, c := range Cases() {
		b.Run(c.Name, c.Fn)
	}
}

// TestReportJSONShape checks the report serializes with the fields the
// trajectory tooling expects, without running the expensive suite.
func TestReportJSONShape(t *testing.T) {
	rep := Report{
		Go:         "gotest",
		GOMAXPROCS: 1,
		Benchmarks: map[string]Metric{"flush": {NsPerOp: 1, AllocsPerOp: 2, BytesPerOp: 3, N: 4}},
		Derived:    map[string]float64{"diff_speedup_dense": 5},
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if back.Benchmarks["flush"].AllocsPerOp != 2 || back.Derived["diff_speedup_dense"] != 5 {
		t.Fatalf("round trip lost data: %+v", back)
	}
}
