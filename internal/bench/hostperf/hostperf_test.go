package hostperf

import (
	"bytes"
	"encoding/json"
	"testing"
)

// BenchmarkDataplane exposes the whole suite under `go test -bench`; `make
// check` smoke-runs it with -benchtime=1x.
func BenchmarkDataplane(b *testing.B) {
	for _, c := range Cases() {
		b.Run(c.Name, c.Fn)
	}
}

// TestReportJSONShape checks the report serializes with the fields the
// trajectory tooling expects, without running the expensive suite.
func TestReportJSONShape(t *testing.T) {
	rep := Report{
		Go:         "gotest",
		GOMAXPROCS: 1,
		Benchmarks: map[string]Metric{"flush": {NsPerOp: 1, AllocsPerOp: 2, BytesPerOp: 3, N: 4}},
		Derived:    map[string]float64{"diff_speedup_dense": 5},
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if back.Benchmarks["flush"].AllocsPerOp != 2 || back.Derived["diff_speedup_dense"] != 5 {
		t.Fatalf("round trip lost data: %+v", back)
	}
}

// TestCompareGatesWirePlaneOverhead: the delta printer doubles as a perf
// gate — a fresh report whose wire_plane_overhead ratio exceeds 2% makes
// Compare (and so `cablesim hostperf -compare`) return an error.
func TestCompareGatesWirePlaneOverhead(t *testing.T) {
	old := Report{Benchmarks: map[string]Metric{}, Derived: map[string]float64{}}
	ok := Report{Benchmarks: map[string]Metric{},
		Derived: map[string]float64{"wire_plane_overhead": 0.004}}
	var buf bytes.Buffer
	if err := Compare(&buf, old, ok); err != nil {
		t.Fatalf("overhead under the gate rejected: %v", err)
	}
	bad := Report{Benchmarks: map[string]Metric{},
		Derived: map[string]float64{"wire_plane_overhead": 0.05}}
	if err := Compare(&buf, old, bad); err == nil {
		t.Fatal("5% wire-plane overhead passed the 2% gate")
	}
}

// TestCompareGatesProfileOverhead: the profiler's detached-probe gate —
// a report whose profile_overhead exceeds 0.5% of a flush, or whose wire
// fast path allocates, makes Compare return an error.
func TestCompareGatesProfileOverhead(t *testing.T) {
	old := Report{Benchmarks: map[string]Metric{}, Derived: map[string]float64{}}
	ok := Report{Benchmarks: map[string]Metric{},
		Derived: map[string]float64{"profile_overhead": 0.001, "wire_do_allocs_per_op": 0}}
	var buf bytes.Buffer
	if err := Compare(&buf, old, ok); err != nil {
		t.Fatalf("overhead under the gate rejected: %v", err)
	}
	slow := Report{Benchmarks: map[string]Metric{},
		Derived: map[string]float64{"profile_overhead": 0.02}}
	if err := Compare(&buf, old, slow); err == nil {
		t.Fatal("2% detached-probe overhead passed the 0.5% gate")
	}
	leaky := Report{Benchmarks: map[string]Metric{},
		Derived: map[string]float64{"wire_do_allocs_per_op": 1}}
	if err := Compare(&buf, old, leaky); err == nil {
		t.Fatal("an allocating wire fast path passed the zero-alloc gate")
	}
}

// TestCompareGatesProtocolDispatch: the coherence-protocol seam gate — a
// report whose protocol_dispatch_overhead exceeds 1% of a flush, or whose
// genima dispatch path allocates, makes Compare return an error.
func TestCompareGatesProtocolDispatch(t *testing.T) {
	old := Report{Benchmarks: map[string]Metric{}, Derived: map[string]float64{}}
	ok := Report{Benchmarks: map[string]Metric{},
		Derived: map[string]float64{"protocol_dispatch_overhead": 0.002, "protocol_dispatch_allocs_per_op": 0}}
	var buf bytes.Buffer
	if err := Compare(&buf, old, ok); err != nil {
		t.Fatalf("overhead under the gate rejected: %v", err)
	}
	slow := Report{Benchmarks: map[string]Metric{},
		Derived: map[string]float64{"protocol_dispatch_overhead": 0.05}}
	if err := Compare(&buf, old, slow); err == nil {
		t.Fatal("5% protocol-dispatch overhead passed the 1% gate")
	}
	leaky := Report{Benchmarks: map[string]Metric{},
		Derived: map[string]float64{"protocol_dispatch_allocs_per_op": 1}}
	if err := Compare(&buf, old, leaky); err == nil {
		t.Fatal("an allocating genima dispatch path passed the zero-alloc gate")
	}
}

// TestProtocolDispatchOverheadSmall runs the dispatch and flush benchmarks
// on this host and checks the seam's consultation cost stays under the
// gate and allocation-free: the default genima protocol must be invisible.
func TestProtocolDispatchOverheadSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmarks under -short")
	}
	rep := Report{Benchmarks: map[string]Metric{}, Derived: map[string]float64{}}
	for _, c := range Cases() {
		switch c.Name {
		case "flush", "protocol/dispatch":
			r := testing.Benchmark(c.Fn)
			rep.Benchmarks[c.Name] = Metric{
				NsPerOp: float64(r.NsPerOp()), AllocsPerOp: r.AllocsPerOp(), N: r.N}
		}
	}
	ov := rep.Benchmarks["protocol/dispatch"].NsPerOp / rep.Benchmarks["flush"].NsPerOp
	if ov > maxProtocolDispatchOverhead {
		t.Errorf("protocol dispatch overhead %.4f exceeds the %.2f gate (dispatch %.1fns, flush %.1fns)",
			ov, maxProtocolDispatchOverhead, rep.Benchmarks["protocol/dispatch"].NsPerOp,
			rep.Benchmarks["flush"].NsPerOp)
	}
	if n := rep.Benchmarks["protocol/dispatch"].AllocsPerOp; n != 0 {
		t.Errorf("protocol/dispatch allocates: %d allocs/op", n)
	}
}

// TestProfileOverheadSmall runs the detached-probe and flush benchmarks on
// this host and checks the derived ratio stays under the gate, and that
// both the detached probe site and the wire fast path are allocation-free.
func TestProfileOverheadSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmarks under -short")
	}
	rep := Report{Benchmarks: map[string]Metric{}, Derived: map[string]float64{}}
	for _, c := range Cases() {
		switch c.Name {
		case "flush", "profile/detached", "wire/do":
			r := testing.Benchmark(c.Fn)
			rep.Benchmarks[c.Name] = Metric{
				NsPerOp: float64(r.NsPerOp()), AllocsPerOp: r.AllocsPerOp(), N: r.N}
		}
	}
	ov := rep.Benchmarks["profile/detached"].NsPerOp / rep.Benchmarks["flush"].NsPerOp
	if ov > maxProfileOverhead {
		t.Errorf("detached profiler probe overhead %.4f exceeds the %.3f gate (probe %.1fns, flush %.1fns)",
			ov, maxProfileOverhead, rep.Benchmarks["profile/detached"].NsPerOp,
			rep.Benchmarks["flush"].NsPerOp)
	}
	if n := rep.Benchmarks["profile/detached"].AllocsPerOp; n != 0 {
		t.Errorf("detached probe allocates: %d allocs/op", n)
	}
	if n := rep.Benchmarks["wire/do"].AllocsPerOp; n != 0 {
		t.Errorf("wire/do allocates: %d allocs/op", n)
	}
}

// TestWirePlaneOverheadSmall runs just the three relevant benchmarks once
// each and checks the derived ratio stays under the gate on this host: the
// choke point must cost a negligible fraction of a real protocol op.
func TestWirePlaneOverheadSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmarks under -short")
	}
	rep := Report{Benchmarks: map[string]Metric{}, Derived: map[string]float64{}}
	for _, c := range Cases() {
		switch c.Name {
		case "flush", "wire/do", "wire/direct":
			r := testing.Benchmark(c.Fn)
			rep.Benchmarks[c.Name] = Metric{NsPerOp: float64(r.NsPerOp()), N: r.N}
		}
	}
	delta := rep.Benchmarks["wire/do"].NsPerOp - rep.Benchmarks["wire/direct"].NsPerOp
	if delta < 0 {
		delta = 0
	}
	ov := delta / rep.Benchmarks["flush"].NsPerOp
	if ov > maxWirePlaneOverhead {
		t.Errorf("wire plane dispatch overhead %.4f exceeds the %.2f gate (do %.1fns, direct %.1fns, flush %.1fns)",
			ov, maxWirePlaneOverhead, rep.Benchmarks["wire/do"].NsPerOp,
			rep.Benchmarks["wire/direct"].NsPerOp, rep.Benchmarks["flush"].NsPerOp)
	}
}
