package hostperf

import (
	"fmt"
	"io"
	"testing"

	"cables/internal/metrics"
)

// --- Telemetry-plane benchmarks ---
//
// The farm increments labeled counters and observes histograms on every
// admitted cell and HTTP request, so the instrument hot path must cost a
// few nanoseconds and never allocate (internal/metrics package doc).  Three
// cases price the plane:
//
//   - metrics/inc: increment through a cached child pointer — the pattern
//     hot call sites use (the farm's Stats handles).
//   - metrics/with: resolve the child by label values on every op, then
//     increment — the pattern incidental call sites use.  The fixed-size
//     array key keeps even this allocation-free.
//   - metrics/scrape: render a farm-shaped registry to text — the cost one
//     GET /metrics poll imposes on the host, paid by the reader.

// benchRegistry builds a registry shaped like the farm's: a handful of
// plain counters and gauges, labeled counter families with a few children
// each, and labeled latency histograms with populated series.
func benchRegistry() (*metrics.Registry, *metrics.CounterVec, *metrics.HistogramVec) {
	r := metrics.NewRegistry()
	for i := 0; i < 6; i++ {
		r.Counter(fmt.Sprintf("bench_plain_%d_total", i), "plain counter").Add(int64(i))
		r.Gauge(fmt.Sprintf("bench_gauge_%d", i), "gauge").Set(int64(i))
	}
	cv := r.CounterVec("bench_cells_total", "labeled counter", "app", "backend", "outcome")
	hv := r.HistogramVec("bench_run_seconds", "labeled histogram", nil,
		"app", "backend", "outcome")
	for _, app := range []string{"FFT", "LU", "OCEAN", "BARNES"} {
		for _, backend := range []string{"genima", "cables"} {
			cv.With(app, backend, "done").Add(100)
			h := hv.With(app, backend, "done")
			for i := 0; i < 32; i++ {
				h.Observe(float64(i) / 10)
			}
		}
	}
	return r, cv, hv
}

// MetricsInc measures one labeled-counter increment through a cached child
// pointer — the per-cell hot path.  Gated at zero allocations.
func MetricsInc(b *testing.B) {
	_, cv, _ := benchRegistry()
	c := cv.With("FFT", "genima", "done")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

// MetricsWith measures label resolution plus increment on every op — the
// uncached pattern.  The array-keyed child map keeps it allocation-free.
func MetricsWith(b *testing.B) {
	_, cv, _ := benchRegistry()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cv.With("FFT", "genima", "done").Inc()
	}
}

// MetricsObserve measures one histogram observation through a cached child:
// bucket scan, two atomic adds, and the float-sum CAS.
func MetricsObserve(b *testing.B) {
	_, _, hv := benchRegistry()
	h := hv.With("FFT", "genima", "done")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(0.042)
	}
}

// MetricsScrape measures one full text exposition of the farm-shaped
// registry — what each GET /metrics poll costs the host.
func MetricsScrape(b *testing.B) {
	r, _, _ := benchRegistry()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := r.WritePrometheus(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}
