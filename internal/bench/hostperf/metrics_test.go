package hostperf

import (
	"bytes"
	"testing"
)

// TestCompareGatesMetrics: the telemetry-plane gates — a report whose
// cached-increment or With-per-call cost exceeds its flush-relative bound,
// whose instruments allocate, or whose scrape grows past the 2×-flush
// bound, makes Compare return an error.
func TestCompareGatesMetrics(t *testing.T) {
	old := Report{Benchmarks: map[string]Metric{}, Derived: map[string]float64{}}
	ok := Report{Benchmarks: map[string]Metric{}, Derived: map[string]float64{
		"metrics_inc_overhead":          0.0002,
		"metrics_with_overhead":         0.002,
		"metrics_scrape_overhead":       1.5,
		"metrics_inc_allocs_per_op":     0,
		"metrics_with_allocs_per_op":    0,
		"metrics_observe_allocs_per_op": 0,
	}}
	var buf bytes.Buffer
	if err := Compare(&buf, old, ok); err != nil {
		t.Fatalf("costs under the gates rejected: %v", err)
	}
	for name, bad := range map[string]map[string]float64{
		"slow inc":          {"metrics_inc_overhead": 0.01},
		"slow with":         {"metrics_with_overhead": 0.02},
		"slow scrape":       {"metrics_scrape_overhead": 5},
		"allocating inc":    {"metrics_inc_allocs_per_op": 1},
		"allocating with":   {"metrics_with_allocs_per_op": 2},
		"allocating histog": {"metrics_observe_allocs_per_op": 1},
	} {
		cur := Report{Benchmarks: map[string]Metric{}, Derived: bad}
		if err := Compare(&buf, old, cur); err == nil {
			t.Errorf("%s passed the telemetry gates", name)
		}
	}
}

// TestMetricsOverheadSmall runs the telemetry benchmarks against the flush
// yardstick on this host: the instrument hot paths must stay within their
// flush-relative bounds and allocation-free, and one scrape of a
// farm-shaped registry must stay bounded.
func TestMetricsOverheadSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmarks under -short")
	}
	rep := Report{Benchmarks: map[string]Metric{}, Derived: map[string]float64{}}
	for _, c := range Cases() {
		switch c.Name {
		case "flush", "metrics/inc", "metrics/with", "metrics/observe", "metrics/scrape":
			r := testing.Benchmark(c.Fn)
			rep.Benchmarks[c.Name] = Metric{
				NsPerOp: float64(r.NsPerOp()), AllocsPerOp: r.AllocsPerOp(), N: r.N}
		}
	}
	fl := rep.Benchmarks["flush"].NsPerOp
	if ov := rep.Benchmarks["metrics/inc"].NsPerOp / fl; ov > maxMetricsIncOverhead {
		t.Errorf("metrics/inc overhead %.5f exceeds the %.3f gate (inc %.1fns, flush %.1fns)",
			ov, maxMetricsIncOverhead, rep.Benchmarks["metrics/inc"].NsPerOp, fl)
	}
	if ov := rep.Benchmarks["metrics/with"].NsPerOp / fl; ov > maxMetricsWithOverhead {
		t.Errorf("metrics/with overhead %.5f exceeds the %.3f gate (with %.1fns, flush %.1fns)",
			ov, maxMetricsWithOverhead, rep.Benchmarks["metrics/with"].NsPerOp, fl)
	}
	if ov := rep.Benchmarks["metrics/scrape"].NsPerOp / fl; ov > maxMetricsScrapeOverhead {
		t.Errorf("metrics/scrape overhead %.2f exceeds the %.0fx gate (scrape %.1fns, flush %.1fns)",
			ov, maxMetricsScrapeOverhead, rep.Benchmarks["metrics/scrape"].NsPerOp, fl)
	}
	for _, name := range []string{"metrics/inc", "metrics/with", "metrics/observe"} {
		if n := rep.Benchmarks[name].AllocsPerOp; n != 0 {
			t.Errorf("%s allocates: %d allocs/op", name, n)
		}
	}
}
