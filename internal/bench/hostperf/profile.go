package hostperf

import (
	"testing"

	"cables/internal/profile"
	"cables/internal/sim"
)

// ProfileDetached measures an instrumented span site with no profiler
// attached: one OpenSpan/CloseSpan pair on a probe-less task, i.e. two nil
// checks.  This is the cost every probe site adds to an unprofiled run;
// the profile_overhead derived metric expresses it relative to one flush
// operation and Compare gates it at 0.5%.
func ProfileDetached(b *testing.B) {
	task := sim.NewTask(1, 0, sim.DefaultCosts())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		task.OpenSpan(uint8(profile.SpanFault), uint64(i))
		task.CloseSpan()
	}
}

// ProfileAttached measures the same site with a profiler adopted: span
// append plus a breakdown snapshot on open and on close.  Informational,
// not gated — this cost is paid only in runs that asked for a profile.
func ProfileAttached(b *testing.B) {
	task := sim.NewTask(1, 0, sim.DefaultCosts())
	profile.New().Adopt(task)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		task.OpenSpan(uint8(profile.SpanFault), uint64(i))
		task.CloseSpan()
	}
}
