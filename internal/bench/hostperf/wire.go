package hostperf

import (
	"testing"

	"cables/internal/san"
	"cables/internal/sim"
	"cables/internal/stats"
	"cables/internal/vmmc"
	"cables/internal/wire"
)

// newWirePlane builds a small plane (and substrate) for the dispatch
// microbenchmarks.
func newWirePlane() *wire.Plane {
	ctr := stats.NewCounters(4)
	fab := san.New(4, sim.DefaultCosts(), ctr)
	return wire.New(fab, vmmc.NewSystem(fab, vmmc.DefaultLimits()), wire.Options{})
}

// WireDo measures one control-plane op through the choke point: Plane.Do's
// dispatch, flat-cost lookup, charge, counters and (detached) trace check.
func WireDo(b *testing.B) {
	p := newWirePlane()
	task := sim.NewTask(1, 0, sim.DefaultCosts())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Do(task, wire.Op{Kind: wire.KindAdminReq, Dst: 1})
	}
}

// WireDirect measures the pre-plane equivalent of the same op: the inline
// charge plus the two counter bumps every call site used to perform itself.
// The delta against wire/do is the plane's per-op dispatch overhead.
func WireDirect(b *testing.B) {
	ctr := stats.NewCounters(4)
	costs := sim.DefaultCosts()
	task := sim.NewTask(1, 0, costs)
	// The category is irrelevant to the charge path's host cost; an aliased
	// CatComm keeps this baseline out of the wire-plane choke-point lint
	// (cmd/doccheck), which it is deliberately measuring life without.
	cat := sim.CatComm
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		task.Charge(cat, costs.AdminReqComm)
		ctr.Add(0, stats.EvMessagesSent, 1)
		ctr.Add(0, stats.EvBytesSent, 16)
	}
}
