package bench

import (
	"os"
	"testing"

	"cables/internal/memsys"
	"cables/internal/sim"
)

// These are the `make mem-smoke` frame-leak assertions: every successful
// run tears its space down (suite.go's Release call), so the process-wide
// resident-frame gauge must return exactly to its pre-run level after each
// cell.  A nonzero residue means a refcount leak somewhere in the COW frame
// store — a twin not retired, an intern table entry not drained, or an
// unbalanced Ref/Release pair.

// runLeakChecked runs one cell sequentially and asserts the gauge returns
// to its baseline.
func runLeakChecked(t *testing.T, app, backend string, procs int, scale Scale) {
	t.Helper()
	base := memsys.FramesResident()
	if _, err := RunApp(app, backend, procs, scale, nil); err != nil {
		t.Fatalf("%s/%s at %d procs: %v", app, backend, procs, err)
	}
	if got := memsys.FramesResident(); got != base {
		t.Errorf("%s/%s at %d procs leaked %d frames (resident %d, baseline %d)",
			app, backend, procs, got-base, got, base)
	}
}

// TestFrameLeakBothSched runs one cell per thread-manager backend and
// checks the frame gauge returns to baseline under each.
func TestFrameLeakBothSched(t *testing.T) {
	for _, sched := range sim.SchedulerNames() {
		sched := sched
		t.Run(sched, func(t *testing.T) {
			setScheduler(t, sched)
			runLeakChecked(t, "FFT", BackendGenima, 4, ScaleTest)
		})
	}
}

// TestMemSmoke sweeps the fig5-small grid (FFT and LU at 1 and 4
// processors, both backends) cell by cell, asserting after every cell that
// framesResident is back at its baseline.  Cells run sequentially — the
// gauge is process-global, so concurrent cells would see each other.
func TestMemSmoke(t *testing.T) {
	for _, app := range []string{"FFT", "LU"} {
		for _, procs := range []int{1, 4} {
			for _, backend := range []string{BackendGenima, BackendCables} {
				runLeakChecked(t, app, backend, procs, ScaleTest)
			}
		}
	}
}

// TestMemSmokeFullSizeFFT runs the paper testbed's actual 4M-point FFT
// (M=22, 128 MB of matrices) end to end: it must complete within host
// memory — feasible only since frames went copy-on-write — and release
// every frame afterwards.  ~7 s of wall clock, so it is gated behind
// CABLES_FULLSIZE=1 (`make mem-smoke` sets it) rather than slowing every
// `go test ./...`.
func TestMemSmokeFullSizeFFT(t *testing.T) {
	if os.Getenv("CABLES_FULLSIZE") == "" {
		t.Skip("full-size FFT takes several seconds; set CABLES_FULLSIZE=1 (or run `make mem-smoke`)")
	}
	memsys.ResetFramesPeak()
	runLeakChecked(t, "FFT", BackendGenima, 8, ScaleFull)
	peakBytes := memsys.FramesResidentPeak() * memsys.PageSize
	t.Logf("full-size FFT peak resident: %d MiB", peakBytes>>20)
	if peakBytes < 128<<20 {
		t.Errorf("peak resident %d bytes — a 4M-point FFT must materialize its 128 MB of matrices; is the full-size config wired up?", peakBytes)
	}
}
