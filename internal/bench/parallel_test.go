package bench

import (
	"errors"
	"io"
	"runtime"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"

	"cables/internal/stats"
)

// TestRunCellsCoversAllCells: every index runs exactly once for any jobs
// value, including jobs > n and jobs <= 0.
func TestRunCellsCoversAllCells(t *testing.T) {
	for _, jobs := range []int{0, 1, 3, 64} {
		const n = 17
		var hits [n]atomic.Int32
		errs := RunCells(jobs, n, func(i int) { hits[i].Add(1) })
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Errorf("jobs=%d: cell %d ran %d times", jobs, i, got)
			}
			if errs[i] != nil {
				t.Errorf("jobs=%d: cell %d unexpected error: %v", jobs, i, errs[i])
			}
		}
	}
}

// TestRunCellsIsolatesPanics: a panicking cell reports an error in its slot
// and every other cell still runs.
func TestRunCellsIsolatesPanics(t *testing.T) {
	boom := errors.New("boom")
	for _, jobs := range []int{1, 4} {
		const n = 9
		var ran [n]atomic.Bool
		errs := RunCells(jobs, n, func(i int) {
			ran[i].Store(true)
			if i == 4 {
				panic(boom)
			}
		})
		for i := 0; i < n; i++ {
			if !ran[i].Load() {
				t.Errorf("jobs=%d: cell %d never ran", jobs, i)
			}
			if (i == 4) != (errs[i] != nil) {
				t.Errorf("jobs=%d: cell %d error = %v", jobs, i, errs[i])
			}
		}
	}
}

// jitterTolerance bounds the simulator's inherent run-to-run virtual-time
// jitter: cells whose threads contend dynamically (lock order, page-fault
// interleaving) vary by ~1-3% between identical sequential runs, with or
// without the parallel harness.  The harness must not widen that envelope.
const jitterTolerance = 0.10

func relDiff(a, b float64) float64 {
	m := a
	if b > m {
		m = b
	}
	if m == 0 {
		return 0
	}
	d := a - b
	if d < 0 {
		d = -d
	}
	return d / m
}

// TestHarnessDeterminism: a 4-worker sweep produces the same artifact as
// the sequential sweep — identical cell structure, error outcomes and
// computation checksums, identical rendered-table shape, and virtual times
// equal up to the simulator's pre-existing run-to-run jitter (which is
// present even when comparing two -jobs 1 runs; the harness itself
// assembles cells into fixed slots and adds no ordering dependence).
func TestHarnessDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the fig5/table6 grids twice")
	}
	apps, procs := []string{"FFT", "LU"}, []int{1, 4}

	seqData := RunFig5(apps, procs, ScaleTest, nil, 1)
	parData := RunFig5(apps, procs, ScaleTest, nil, 4)
	for _, app := range apps {
		for _, p := range procs {
			for _, backend := range []string{BackendGenima, BackendCables} {
				s, q := seqData[app][p][backend], parData[app][p][backend]
				if (s.Err == nil) != (q.Err == nil) {
					t.Errorf("%s/%s p=%d: error outcome differs: jobs=1 %v, jobs=4 %v",
						app, backend, p, s.Err, q.Err)
					continue
				}
				if s.Err != nil {
					continue
				}
				if s.Res.Checksum != q.Res.Checksum {
					t.Errorf("%s/%s p=%d: checksum differs: %g vs %g",
						app, backend, p, s.Res.Checksum, q.Res.Checksum)
				}
				if s.Res.Misplaced != q.Res.Misplaced {
					t.Errorf("%s/%s p=%d: misplaced pages differ: %d vs %d",
						app, backend, p, s.Res.Misplaced, q.Res.Misplaced)
				}
				if d := relDiff(float64(s.Res.Parallel), float64(q.Res.Parallel)); d > jitterTolerance {
					t.Errorf("%s/%s p=%d: parallel time differs by %.1f%%: %v vs %v",
						app, backend, p, d*100, s.Res.Parallel, q.Res.Parallel)
				}
			}
		}
	}

	// The rendered tables agree on shape: same header, same row labels.
	shape := func(tab string) []string {
		var labels []string
		for _, line := range strings.Split(tab, "\n") {
			f := strings.Fields(line)
			if len(f) > 0 {
				labels = append(labels, f[0])
			}
		}
		return labels
	}
	seq5 := shape(Fig5(io.Discard, seqData, procs).String())
	par5 := shape(Fig5(io.Discard, parData, procs).String())
	if !slicesEqual(seq5, par5) {
		t.Errorf("fig5 row structure differs: %v vs %v", seq5, par5)
	}

	seq6 := Table6(io.Discard, ScaleTest, 1).String()
	par6 := Table6(io.Discard, ScaleTest, 4).String()
	if !slicesEqual(shape(seq6), shape(par6)) {
		t.Errorf("table6 row structure differs:\n--- jobs=1\n%s\n--- jobs=4\n%s", seq6, par6)
	}
	compareSpeedupTables(t, seq6, par6)
}

func slicesEqual(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// compareSpeedupTables checks that every numeric cell of two rendered
// Table 6 instances agrees within the jitter tolerance.
func compareSpeedupTables(t *testing.T, a, b string) {
	t.Helper()
	la, lb := strings.Split(a, "\n"), strings.Split(b, "\n")
	if len(la) != len(lb) {
		t.Errorf("table6 line count differs: %d vs %d", len(la), len(lb))
		return
	}
	for i := range la {
		fa, fb := strings.Fields(la[i]), strings.Fields(lb[i])
		if len(fa) != len(fb) {
			t.Errorf("table6 line %d field count differs: %q vs %q", i, la[i], lb[i])
			continue
		}
		for j := range fa {
			va, errA := strconv.ParseFloat(fa[j], 64)
			vb, errB := strconv.ParseFloat(fb[j], 64)
			switch {
			case errA == nil && errB == nil:
				if relDiff(va, vb) > jitterTolerance {
					t.Errorf("table6 cell [%d][%d] differs by >%.0f%%: %v vs %v",
						i, j, jitterTolerance*100, va, vb)
				}
			case fa[j] != fb[j]:
				t.Errorf("table6 cell [%d][%d] differs: %q vs %q", i, j, fa[j], fb[j])
			}
		}
	}
}

// TestFig5RaceSmoke is the `make race` data-plane smoke cell: one fig5
// column (FFT at 4 processors, both backends) run through the 2-worker
// harness under the race detector.
func TestFig5RaceSmoke(t *testing.T) {
	data := RunFig5([]string{"FFT"}, []int{4}, ScaleTest, nil, 2)
	for _, backend := range []string{BackendGenima, BackendCables} {
		if err := data["FFT"][4][backend].Err; err != nil {
			t.Errorf("FFT/%s at 4 procs: %v", backend, err)
		}
	}
}

// TestRepeatRunStableUnderGOMAXPROCS: with host parallelism enabled, two
// identical runs agree on every structurally deterministic protocol counter
// and on the computation's checksum.  (Timing-dependent counters like page
// faults may legitimately vary with goroutine interleaving; the structural
// ones may not.)
func TestRepeatRunStableUnderGOMAXPROCS(t *testing.T) {
	old := runtime.GOMAXPROCS(0)
	if old < 2 {
		runtime.GOMAXPROCS(2)
		defer runtime.GOMAXPROCS(old)
	}
	pinned := []stats.Event{
		stats.EvThreadsCreated,
		stats.EvBarriers,
		stats.EvLockAcquires,
		stats.EvNodesAttached,
	}
	type run struct {
		counters []int64
		checksum float64
	}
	do := func() run {
		res, ctr, err := RunAppCounters("FFT", BackendGenima, 4, ScaleTest, nil)
		if err != nil {
			t.Fatal(err)
		}
		r := run{checksum: res.Checksum}
		for _, e := range pinned {
			r.counters = append(r.counters, ctr.Load(e))
		}
		return r
	}
	a, b := do(), do()
	if a.checksum != b.checksum {
		t.Errorf("checksum differs across identical runs: %g vs %g", a.checksum, b.checksum)
	}
	for i, e := range pinned {
		if a.counters[i] != b.counters[i] {
			t.Errorf("counter %d (event %d) differs across identical runs: %d vs %d",
				i, e, a.counters[i], b.counters[i])
		}
	}
}
