package bench

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"
)

// DefaultJobs is the harness's default worker count: one per host processor.
// Every (app, procs, backend) simulation cell is an independent virtual-time
// experiment, so cells can run on separate host cores without affecting any
// virtual-time result (DESIGN.md §5b).
func DefaultJobs() int { return runtime.GOMAXPROCS(0) }

// Isolate runs fn with the harness's per-cell panic isolation: a panic in
// fn is captured and returned as an error ("panicked: <value>") instead of
// unwinding into the caller.  RunCells and the farm pool workers both wrap
// cell bodies in it, so one failing cell can never take down a sweep or a
// long-running worker.
func Isolate(fn func()) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("panicked: %v", r)
		}
	}()
	fn()
	return nil
}

// ErrPoolDraining is returned by Pool.Submit once Drain has begun: the pool
// no longer accepts work and the caller should treat the submission as
// retriable against a fresh pool (the farm maps it to a retriable HTTP
// status).
var ErrPoolDraining = errors.New("bench: pool is draining")

// Pool is a long-lived bounded worker pool — the persistent form of the
// RunCells harness that the simulation farm (internal/farm) keeps running
// across HTTP requests.  A fixed set of workers drains a FIFO queue of
// jobs; every job body runs under Isolate so a panicking job is swallowed
// by the submitter's own wrapper (which is where errors are recorded) and
// never kills a worker.
//
// Lifecycle: NewPool starts the workers; Submit enqueues; Wait blocks until
// the pool is momentarily idle (queue empty, nothing running); Drain stops
// intake, lets in-flight jobs complete, shuts the workers down and returns
// the jobs that never started — the graceful-drain contract the farm's
// SIGTERM path relies on (queued cells are handed back to be rejected with
// a retriable status, not silently dropped).
type Pool struct {
	mu          sync.Mutex
	cond        *sync.Cond
	queue       []poolJob
	running     int
	width       int
	draining    bool
	observer    func(queued, running int)
	jobObserver func(wait, run time.Duration)
	workers     sync.WaitGroup
}

// poolJob is one queued job with its enqueue time, so the worker that picks
// it up can report the queue wait to the job observer.
type poolJob struct {
	fn func()
	at time.Time
}

// NewPool starts a pool of the given number of workers (at least 1).
func NewPool(workers int) *Pool {
	if workers < 1 {
		workers = 1
	}
	p := &Pool{width: workers}
	p.cond = sync.NewCond(&p.mu)
	p.workers.Add(workers)
	for w := 0; w < workers; w++ {
		go p.worker()
	}
	return p
}

// Workers returns the pool's width — the worker count it was created with.
func (p *Pool) Workers() int { return p.width }

// SetObserver registers fn to be called with the pool's (queued, running)
// depths after every state transition — submit, job start, job completion,
// drain.  The farm uses it to export queue-depth and cells-running gauges.
// fn runs with the pool's mutex held, so it must be O(1) and must not call
// back into the pool.
func (p *Pool) SetObserver(fn func(queued, running int)) {
	p.mu.Lock()
	p.observer = fn
	p.mu.Unlock()
}

// SetJobObserver registers fn to be called once per completed job with the
// time the job spent queued (enqueue to worker pickup) and running (pickup
// to completion).  fn runs on the worker goroutine outside the pool's
// mutex, after the completion transition — the farm feeds its queue-wait
// and run-latency histograms from it.
func (p *Pool) SetJobObserver(fn func(wait, run time.Duration)) {
	p.mu.Lock()
	p.jobObserver = fn
	p.mu.Unlock()
}

// notifyLocked broadcasts a state transition to workers, waiters and the
// observer.  Callers hold p.mu.
func (p *Pool) notifyLocked() {
	if p.observer != nil {
		p.observer(len(p.queue), p.running)
	}
	p.cond.Broadcast()
}

// Submit enqueues fn; it returns ErrPoolDraining once Drain has begun.
func (p *Pool) Submit(fn func()) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.draining {
		return ErrPoolDraining
	}
	p.queue = append(p.queue, poolJob{fn: fn, at: time.Now()})
	p.notifyLocked()
	return nil
}

// Depth returns the current (queued, running) job counts.
func (p *Pool) Depth() (queued, running int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.queue), p.running
}

// Wait blocks until the pool is idle: the queue is empty and no job is
// running.  It does not stop the workers; more work may be submitted after.
func (p *Pool) Wait() {
	p.mu.Lock()
	for len(p.queue) > 0 || p.running > 0 {
		p.cond.Wait()
	}
	p.mu.Unlock()
}

// Drain stops intake, waits for every in-flight job to complete, shuts the
// workers down, and returns the queued jobs that never started (oldest
// first).  Concurrent Drain calls are safe; late callers wait for the first
// drain to finish and return nil.
func (p *Pool) Drain() []func() {
	p.mu.Lock()
	if p.draining {
		p.mu.Unlock()
		p.workers.Wait()
		return nil
	}
	p.draining = true
	left := make([]func(), len(p.queue))
	for i, j := range p.queue {
		left[i] = j.fn
	}
	p.queue = nil
	p.notifyLocked()
	p.mu.Unlock()
	p.workers.Wait()
	return left
}

// worker is one pool worker: pick the oldest queued job, run it isolated,
// repeat until drain.
func (p *Pool) worker() {
	defer p.workers.Done()
	for {
		p.mu.Lock()
		for len(p.queue) == 0 && !p.draining {
			p.cond.Wait()
		}
		if p.draining {
			p.mu.Unlock()
			return
		}
		job := p.queue[0]
		p.queue = p.queue[1:]
		p.running++
		wait := time.Since(job.at)
		p.notifyLocked()
		p.mu.Unlock()
		// The submitter's wrapper records errors; Isolate here only keeps a
		// stray panic from killing the worker itself.
		start := time.Now()
		_ = Isolate(job.fn)
		run := time.Since(start)
		p.mu.Lock()
		p.running--
		obs := p.jobObserver
		p.notifyLocked()
		p.mu.Unlock()
		if obs != nil {
			obs(wait, run)
		}
	}
}

// RunCells executes fn(i) for each cell i in [0, n) on a bounded pool of at
// most jobs concurrent workers and returns per-cell panic errors (nil for
// cells that completed).  Determinism contract: fn(i) must write its result
// only into the i-th slot of a pre-shaped result slice, so the assembled
// output is identical whatever order cells finish in.  jobs <= 1 runs every
// cell inline on the caller's goroutine, reproducing the sequential
// harness's behavior exactly.
//
// Each cell runs with panic isolation (Isolate): one failing cell records
// its error and the rest of the sweep continues.  The parallel path is a
// transient Pool — the same worker machinery the simulation farm keeps
// alive across requests.
func RunCells(jobs, n int, fn func(i int)) []error {
	errs := make([]error, n)
	call := func(i int) {
		if err := Isolate(func() { fn(i) }); err != nil {
			errs[i] = fmt.Errorf("bench: cell %d %v", i, err)
		}
	}
	if jobs <= 1 || n <= 1 {
		for i := 0; i < n; i++ {
			call(i)
		}
		return errs
	}
	if jobs > n {
		jobs = n
	}
	p := NewPool(jobs)
	for i := 0; i < n; i++ {
		i := i
		// Submit cannot fail: nothing drains this transient pool until
		// every cell is in.
		_ = p.Submit(func() { call(i) })
	}
	p.Wait()
	p.Drain()
	return errs
}
