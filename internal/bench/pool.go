package bench

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// DefaultJobs is the harness's default worker count: one per host processor.
// Every (app, procs, backend) simulation cell is an independent virtual-time
// experiment, so cells can run on separate host cores without affecting any
// virtual-time result (DESIGN.md §5b).
func DefaultJobs() int { return runtime.GOMAXPROCS(0) }

// RunCells executes fn(i) for each cell i in [0, n) on a bounded pool of at
// most jobs concurrent workers and returns per-cell panic errors (nil for
// cells that completed).  Determinism contract: fn(i) must write its result
// only into the i-th slot of a pre-shaped result slice, so the assembled
// output is identical whatever order cells finish in.  jobs <= 1 runs every
// cell inline on the caller's goroutine, reproducing the sequential
// harness's behavior exactly.
//
// Each cell runs with panic isolation: one failing cell records its error
// and the rest of the sweep continues.
func RunCells(jobs, n int, fn func(i int)) []error {
	errs := make([]error, n)
	call := func(i int) {
		defer func() {
			if r := recover(); r != nil {
				errs[i] = fmt.Errorf("bench: cell %d panicked: %v", i, r)
			}
		}()
		fn(i)
	}
	if jobs <= 1 || n <= 1 {
		for i := 0; i < n; i++ {
			call(i)
		}
		return errs
	}
	if jobs > n {
		jobs = n
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < jobs; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				call(i)
			}
		}()
	}
	wg.Wait()
	return errs
}
