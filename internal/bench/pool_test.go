package bench

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestPoolRunsAll: every submitted job executes exactly once and Wait
// blocks until the pool is idle.
func TestPoolRunsAll(t *testing.T) {
	p := NewPool(4)
	defer p.Drain()
	var ran atomic.Int64
	for i := 0; i < 100; i++ {
		if err := p.Submit(func() { ran.Add(1) }); err != nil {
			t.Fatalf("Submit: %v", err)
		}
	}
	p.Wait()
	if got := ran.Load(); got != 100 {
		t.Errorf("ran %d jobs, want 100", got)
	}
	if q, r := p.Depth(); q != 0 || r != 0 {
		t.Errorf("depth (%d,%d) after Wait, want (0,0)", q, r)
	}
}

// TestPoolDrainReturnsQueued: with one worker held, Drain completes the
// in-flight job, returns the unstarted ones, and Submit afterwards fails
// with ErrPoolDraining.
func TestPoolDrainReturnsQueued(t *testing.T) {
	p := NewPool(1)
	started := make(chan struct{})
	release := make(chan struct{})
	var inFlightDone, queuedRan atomic.Bool
	if err := p.Submit(func() {
		close(started)
		<-release
		inFlightDone.Store(true)
	}); err != nil {
		t.Fatal(err)
	}
	<-started
	for i := 0; i < 3; i++ {
		if err := p.Submit(func() { queuedRan.Store(true) }); err != nil {
			t.Fatal(err)
		}
	}

	done := make(chan []func())
	go func() { done <- p.Drain() }()
	time.Sleep(10 * time.Millisecond) // let Drain flip the intake off
	close(release)
	var unstarted []func()
	select {
	case unstarted = <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Drain hung")
	}

	if !inFlightDone.Load() {
		t.Error("Drain returned before the in-flight job completed")
	}
	if queuedRan.Load() {
		t.Error("a queued job ran during Drain")
	}
	if len(unstarted) != 3 {
		t.Errorf("Drain returned %d unstarted jobs, want 3", len(unstarted))
	}
	if err := p.Submit(func() {}); err != ErrPoolDraining {
		t.Errorf("Submit after Drain: err %v, want ErrPoolDraining", err)
	}
}

// TestPoolObserver: the observer sees every queued/running transition and
// ends at (0, 0) once the pool is idle.
func TestPoolObserver(t *testing.T) {
	p := NewPool(2)
	defer p.Drain()
	var mu sync.Mutex
	var lastQ, lastR, maxR int
	p.SetObserver(func(queued, running int) {
		mu.Lock()
		lastQ, lastR = queued, running
		if running > maxR {
			maxR = running
		}
		mu.Unlock()
	})
	for i := 0; i < 20; i++ {
		p.Submit(func() { time.Sleep(time.Millisecond) })
	}
	p.Wait()
	mu.Lock()
	defer mu.Unlock()
	if lastQ != 0 || lastR != 0 {
		t.Errorf("observer ended at queued=%d running=%d, want 0,0", lastQ, lastR)
	}
	if maxR < 1 || maxR > 2 {
		t.Errorf("observed max running %d, want within [1,2]", maxR)
	}
}

// TestPoolJobObserver: the per-job observer fires once per completed job
// with a plausible (wait, run) pair — the run at least as long as the
// job's sleep, and a job queued behind a busy worker charged its wait.
func TestPoolJobObserver(t *testing.T) {
	p := NewPool(1)
	defer p.Drain()
	if w := p.Workers(); w != 1 {
		t.Fatalf("Workers() = %d, want 1", w)
	}
	type sample struct{ wait, run time.Duration }
	var mu sync.Mutex
	var got []sample
	p.SetJobObserver(func(wait, run time.Duration) {
		mu.Lock()
		got = append(got, sample{wait, run})
		mu.Unlock()
	})
	const hold = 20 * time.Millisecond
	p.Submit(func() { time.Sleep(hold) })
	p.Submit(func() {}) // queued behind the first on the single worker
	p.Wait()
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 2 {
		t.Fatalf("job observer fired %d times, want 2", len(got))
	}
	if got[0].run < hold {
		t.Errorf("first job run %v, want >= %v", got[0].run, hold)
	}
	if got[1].wait < hold/2 {
		t.Errorf("second job wait %v, want >= %v (it was queued behind the %v hold)",
			got[1].wait, hold/2, hold)
	}
}

// TestNewPoolClampsWidth: NewPool(0) still runs jobs on one worker.
func TestNewPoolClampsWidth(t *testing.T) {
	p := NewPool(0)
	defer p.Drain()
	if w := p.Workers(); w != 1 {
		t.Errorf("Workers() after NewPool(0) = %d, want 1", w)
	}
	var ran atomic.Bool
	p.Submit(func() { ran.Store(true) })
	p.Wait()
	if !ran.Load() {
		t.Error("job did not run on the clamped pool")
	}
}

// TestIsolateRecoversPanics: Isolate converts a panic into an error and a
// clean return into nil.
func TestIsolateRecoversPanics(t *testing.T) {
	if err := Isolate(func() { panic("boom") }); err == nil {
		t.Error("Isolate swallowed a panic without reporting it")
	}
	if err := Isolate(func() {}); err != nil {
		t.Errorf("Isolate on clean fn: %v", err)
	}
}
