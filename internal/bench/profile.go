package bench

import (
	"fmt"
	"io"
	"strings"

	"cables/internal/apps/appapi"
	"cables/internal/fault"
	"cables/internal/profile"
	"cables/internal/sim"
	"cables/internal/stats"
	"cables/internal/trace"
	"cables/internal/wire"
)

// AttachProfiler wires a fresh virtual-time profiler to a runtime: every
// task the cluster creates from here on is adopted (nodeos.Cluster.Prof),
// the already-existing main task is adopted explicitly, and a
// stats.EpochLog snapshots the counters at every barrier release.  This is
// the single attach point, next to AttachRing; call it before the run
// starts.  Attaching records spans and charges nothing — the invariance
// rule — so results are bit-identical with and without a profiler.
func AttachProfiler(rt appapi.Runtime) *profile.Profiler {
	prof := profile.New()
	cl := rt.Cluster()
	cl.Prof = prof
	prof.Adopt(rt.Main())
	prof.Epochs = stats.NewEpochLog(cl.Ctr)
	if p := protocolOf(rt); p != nil {
		p.Epochs = prof.Epochs
	}
	return prof
}

// RunAppProfiled runs an application with a profiler attached, returning
// the result, the counters, and the profiler (read logs after the run).
func RunAppProfiled(name, backend string, procs int, scale Scale, costs *sim.Costs) (appapi.Result, *stats.Counters, *profile.Profiler, error) {
	return RunAppProfiledWire(name, backend, procs, scale, costs, wire.Options{})
}

// RunAppProfiledWire is RunAppProfiled with explicit wire-plane options.
func RunAppProfiledWire(name, backend string, procs int, scale Scale, costs *sim.Costs, w wire.Options) (appapi.Result, *stats.Counters, *profile.Profiler, error) {
	rt := NewRuntimeWire(backend, procs, 256<<20, costs, w)
	prof := AttachProfiler(rt)
	res, err := runAppOn(rt, name, scale)
	return res, rt.Cluster().Ctr, prof, err
}

// RunAppObservedWire runs an application with any combination of observers
// attached: ringCap >= 0 attaches a trace ring of that capacity (0 = the
// ring's default), withProf a profiler.  The unused returns are nil.
func RunAppObservedWire(name, backend string, procs int, scale Scale, costs *sim.Costs, ringCap int, withProf bool, w wire.Options) (appapi.Result, *stats.Counters, *trace.Ring, *profile.Profiler, error) {
	rt := NewRuntimeWire(backend, procs, 256<<20, costs, w)
	var ring *trace.Ring
	if ringCap >= 0 {
		ring = AttachRing(rt, ringCap)
	}
	var prof *profile.Profiler
	if withProf {
		prof = AttachProfiler(rt)
	}
	res, err := runAppOn(rt, name, scale)
	return res, rt.Cluster().Ctr, ring, prof, err
}

// RunAppFaultProfiled is RunAppFault with a profiler attached as well.
func RunAppFaultProfiled(name, backend string, procs int, scale Scale, costs *sim.Costs, inj *fault.Injector, ringCap int) (appapi.Result, *stats.Counters, *trace.Ring, *profile.Profiler, error) {
	rt := NewFaultRuntime(backend, procs, 256<<20, costs, inj)
	ring := AttachRing(rt, ringCap)
	prof := AttachProfiler(rt)
	res, err := runAppOn(rt, name, scale)
	return res, rt.Cluster().Ctr, ring, prof, err
}

// ProfileCell is one (app, procs, backend) outcome of a profiled sweep.
type ProfileCell struct {
	App     string
	Backend string
	Procs   int
	Res     appapi.Result
	Report  *profile.Report
	Logs    []*profile.TaskLog
	Windows []stats.EpochWindow
	Err     error
}

// Label renders the cell in the harness's usual "APP/backend p=N" shape.
func (c *ProfileCell) Label() string {
	return fmt.Sprintf("%s/%s p=%d", c.App, c.Backend, c.Procs)
}

// RunProfile runs the profiled sweep (`cablesim profile`): every cell gets
// a profiler, and its category roll-up, hot-page and lock-contention
// tables, and per-barrier-epoch counter windows print per cell.  top
// bounds the hot-page/lock/epoch rows (<=0 means the default 5).  The
// returned cells carry the task logs for a timeline export
// (profile.WriteTrace).
func RunProfile(w io.Writer, apps []string, procs []int, scale Scale, costs *sim.Costs, jobs, top int, wopts wire.Options) []ProfileCell {
	if len(apps) == 0 {
		apps = AppNames
	}
	if len(procs) == 0 {
		procs = []int{8}
	}
	cells := make([]ProfileCell, 0, len(apps)*len(procs)*2)
	for _, app := range apps {
		for _, p := range procs {
			for _, backend := range []string{BackendGenima, BackendCables} {
				cells = append(cells, ProfileCell{App: app, Backend: backend, Procs: p})
			}
		}
	}
	errs := RunCells(jobs, len(cells), func(i int) {
		c := &cells[i]
		res, _, prof, err := RunAppProfiledWire(c.App, c.Backend, c.Procs, scale, costs, wopts)
		c.Res, c.Err = res, err
		c.Logs = prof.Logs()
		c.Report = profile.Build(c.Logs)
		c.Windows = prof.Epochs.Windows()
	})
	for i := range cells {
		c := &cells[i]
		if c.Err == nil && errs[i] != nil {
			c.Err = errs[i]
		}
		if w == nil {
			continue
		}
		if c.Err != nil {
			fprintf(w, "%s: FAILED: %v\n", c.Label(), c.Err)
			continue
		}
		fprintf(w, "%s\n%s", c.Res, ProfileBlock(c.Report, c.Windows, top))
	}
	return cells
}

// ProfileBlock renders one cell's profile: the per-span-kind category
// roll-up with its reconciliation check, the hottest pages, the most
// contended locks, and the per-barrier-epoch counter windows.  Shared by
// `cablesim profile` and the -profile flag on counters/faults.
func ProfileBlock(r *profile.Report, windows []stats.EpochWindow, top int) string {
	if top <= 0 {
		top = 5
	}
	var b strings.Builder
	fmt.Fprintf(&b, "  profile: tasks=%d spans=%d", len(r.Tasks), spanCount(r))
	if r.Anomalies > 0 {
		fmt.Fprintf(&b, " anomalies=%d", r.Anomalies)
	}
	b.WriteByte('\n')

	total := r.Total.Total()
	for k := 0; k < profile.NumSpanKinds; k++ {
		kt := &r.Kinds[k]
		if kt.Count == 0 {
			continue
		}
		self := kt.Self.Total()
		share := 0.0
		if total > 0 {
			share = 100 * float64(self) / float64(total)
		}
		fmt.Fprintf(&b, "    %-8s n=%-7d self=%-10v %5.1f%%  [%s]\n",
			profile.SpanKind(k), kt.Count, self, share, kt.Self)
	}
	sum := r.KindSum()
	status := "ok"
	if sum != r.Total {
		status = fmt.Sprintf("MISMATCH spans=%v", sum)
	}
	fmt.Fprintf(&b, "  reconcile: tasks=%v spans=%v %s\n", r.Total.Total(), sum.Total(), status)

	if n := min(top, len(r.Pages)); n > 0 {
		fmt.Fprintf(&b, "  hot pages (top %d of %d, fault stall %v):\n", n, len(r.Pages), r.FaultTime())
		for _, ps := range r.Pages[:n] {
			fmt.Fprintf(&b, "    page=0x%-6x faults=%-5d fills=%-5d diffs=%-5d migrations=%-3d stall=%-10v max=%v\n",
				ps.Page, ps.Faults, ps.Fills, ps.Diffs, ps.Migrations, ps.Stall, ps.MaxStall)
		}
	}
	if n := min(top, len(r.Locks)); n > 0 {
		fmt.Fprintf(&b, "  locks (top %d of %d):\n", n, len(r.Locks))
		for _, ls := range r.Locks[:n] {
			fmt.Fprintf(&b, "    lock=%-6d acq=%-5d contended=%-5d remote=%-5d wait=%-10v (transfer=%v holdblk=%v max=%v) hold=%v\n",
				ls.Lock, ls.Acquires, ls.Contended, ls.Remote, ls.Wait,
				ls.Transfer, ls.HoldBlocked, ls.MaxWait, ls.Hold)
		}
	}
	if len(windows) > 0 {
		n := min(top, len(windows))
		fmt.Fprintf(&b, "  epochs (%d; first %d):\n", len(windows), n)
		for _, ep := range windows[:n] {
			fmt.Fprintf(&b, "    %-12s @%-10v %s\n", ep.Label, sim.Time(ep.At), ep.Delta)
		}
	}
	return b.String()
}

func spanCount(r *profile.Report) int {
	n := 0
	for i := range r.Kinds {
		n += r.Kinds[i].Count
	}
	return n
}

// TraceCells converts profiled sweep cells into the exporter's shape,
// skipping failed cells.
func TraceCells(cells []ProfileCell) []profile.TraceCell {
	out := make([]profile.TraceCell, 0, len(cells))
	for i := range cells {
		c := &cells[i]
		if c.Err != nil || len(c.Logs) == 0 {
			continue
		}
		out = append(out, profile.TraceCell{Label: c.Label(), Logs: c.Logs})
	}
	return out
}
