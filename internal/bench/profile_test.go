package bench

import (
	"encoding/json"
	"math"
	"strings"
	"testing"

	"cables/internal/profile"
	"cables/internal/sim"
	"cables/internal/wire"
)

// TestProfilerInvariance pins the invariance rule end to end on both
// backends: attaching the profiler leaves the deterministic results — the
// computation checksum and the page-placement census — bit-identical.
// (Virtual times jitter by a few microseconds run to run with or without a
// profiler, so they are not part of the pin; see the determinism notes in
// docs/OBSERVABILITY.md.)
func TestProfilerInvariance(t *testing.T) {
	for _, backend := range []string{BackendGenima, BackendCables} {
		for _, app := range []string{"FFT", "WATER-SPATIAL"} {
			plain, err := RunApp(app, backend, 4, ScaleTest, nil)
			if err != nil {
				t.Fatalf("%s/%s plain: %v", app, backend, err)
			}
			profiled, _, prof, err := RunAppProfiled(app, backend, 4, ScaleTest, nil)
			if err != nil {
				t.Fatalf("%s/%s profiled: %v", app, backend, err)
			}
			if plain.Checksum != profiled.Checksum ||
				plain.Misplaced != profiled.Misplaced ||
				plain.Touched != profiled.Touched {
				t.Errorf("%s/%s: profiler changed the result:\nplain:    %+v\nprofiled: %+v",
					app, backend, plain, profiled)
			}
			if len(prof.Logs()) == 0 {
				t.Errorf("%s/%s: profiler adopted no tasks", app, backend)
			}
		}
	}
}

// TestProfileReconciliation pins the accounting invariants on both
// backends: per task, span self costs telescope to exactly the task's own
// category breakdown; per cell, the per-kind roll-up equals the sum over
// tasks; and fault-span time equals the per-page stall total.
func TestProfileReconciliation(t *testing.T) {
	for _, backend := range []string{BackendGenima, BackendCables} {
		_, _, prof, err := RunAppProfiled("FFT", backend, 4, ScaleTest, nil)
		if err != nil {
			t.Fatalf("%s: %v", backend, err)
		}
		logs := prof.Logs()
		var faultTime sim.Time
		for _, l := range logs {
			if l.Anomalies() != 0 {
				t.Errorf("%s task %d: %d anomalies on a clean run",
					backend, l.Task().ID, l.Anomalies())
			}
			var selves sim.Breakdown
			for i := range l.Spans() {
				s := &l.Spans()[i]
				self := s.Self()
				selves.AddAll(&self)
				if s.Kind == profile.SpanFault {
					faultTime += s.Dur()
				}
			}
			want := l.Task().Snapshot().Sub(l.Base())
			if selves != want {
				t.Errorf("%s task %d: span selves %v != task breakdown %v",
					backend, l.Task().ID, selves, want)
			}
		}
		r := profile.Build(logs)
		if got := r.KindSum(); got != r.Total {
			t.Errorf("%s: KindSum %v != Total %v", backend, got, r.Total)
		}
		if got := r.FaultTime(); got != faultTime {
			t.Errorf("%s: per-page stall total %v != fault span time %v",
				backend, got, faultTime)
		}
		if r.Kinds[profile.SpanFault].Count == 0 {
			t.Errorf("%s: no fault spans recorded", backend)
		}
		if r.Kinds[profile.SpanBarrier].Count == 0 {
			t.Errorf("%s: no barrier spans recorded", backend)
		}
	}
}

// TestProfileLockAttribution checks that a lock-using application yields a
// lock-contention profile with paired acquires and non-negative splits.
func TestProfileLockAttribution(t *testing.T) {
	for _, backend := range []string{BackendGenima, BackendCables} {
		_, _, prof, err := RunAppProfiled("WATER-SPATIAL", backend, 4, ScaleTest, nil)
		if err != nil {
			t.Fatalf("%s: %v", backend, err)
		}
		r := profile.Build(prof.Logs())
		if len(r.Locks) == 0 {
			t.Fatalf("%s: WATER-SPATIAL recorded no lock profile", backend)
		}
		for _, ls := range r.Locks {
			if ls.Acquires == 0 {
				t.Errorf("%s lock %d: zero acquires", backend, ls.Lock)
			}
			if ls.Wait < 0 || ls.Transfer < 0 || ls.HoldBlocked < 0 || ls.Hold < 0 {
				t.Errorf("%s lock %d: negative time in %+v", backend, ls.Lock, ls)
			}
			if ls.Transfer+ls.HoldBlocked > ls.Wait {
				t.Errorf("%s lock %d: split %v+%v exceeds wait %v",
					backend, ls.Lock, ls.Transfer, ls.HoldBlocked, ls.Wait)
			}
			if ls.Contended > ls.Acquires || ls.Remote > ls.Acquires {
				t.Errorf("%s lock %d: counts exceed acquires: %+v", backend, ls.Lock, ls)
			}
		}
	}
}

// TestRunProfileRendersAndExports drives the sweep end to end: the report
// reconciles in the rendered output and the exported timeline is valid
// Chrome trace-viewer JSON with properly nested spans per thread.
func TestRunProfileRendersAndExports(t *testing.T) {
	var b strings.Builder
	cells := RunProfile(&b, []string{"FFT"}, []int{4}, ScaleTest, nil, 2, 3, wire.Options{})
	out := b.String()
	if strings.Contains(out, "MISMATCH") || strings.Contains(out, "FAILED") {
		t.Fatalf("profiled sweep did not reconcile:\n%s", out)
	}
	for _, want := range []string{"reconcile:", "hot pages", "epochs (", "FFT/genima p=4", "FFT/cables p=4"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}

	var buf strings.Builder
	if err := profile.WriteTrace(&buf, TraceCells(cells)); err != nil {
		t.Fatalf("WriteTrace: %v", err)
	}
	var doc struct {
		TraceEvents []struct {
			Ph  string  `json:"ph"`
			Pid int     `json:"pid"`
			Tid int     `json:"tid"`
			Ts  float64 `json:"ts"`
			Dur float64 `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(buf.String()), &doc); err != nil {
		t.Fatalf("exported trace is not JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("exported trace is empty")
	}
	// Spans on one thread must nest: sorted by (start, -end), each event is
	// contained by the enclosing ones on the stack.
	type iv struct{ s, e int64 }
	byThread := map[[2]int][]iv{}
	for _, e := range doc.TraceEvents {
		if e.Ph != "X" {
			continue
		}
		if e.Dur < 0 {
			t.Fatalf("negative dur: %+v", e)
		}
		// Timestamps are microseconds; round back to integer nanoseconds so
		// the containment check is exact.
		ns := func(us float64) int64 { return int64(math.Round(us * 1e3)) }
		byThread[[2]int{e.Pid, e.Tid}] = append(byThread[[2]int{e.Pid, e.Tid}], iv{ns(e.Ts), ns(e.Ts + e.Dur)})
	}
	for key, ivs := range byThread {
		var stack []iv
		for _, cur := range ivs { // export order is open order per thread
			for len(stack) > 0 && cur.s >= stack[len(stack)-1].e {
				stack = stack[:len(stack)-1]
			}
			if len(stack) > 0 && cur.e > stack[len(stack)-1].e {
				t.Fatalf("thread %v: span [%v,%v] overlaps parent [%v,%v]",
					key, cur.s, cur.e, stack[len(stack)-1].s, stack[len(stack)-1].e)
			}
			stack = append(stack, cur)
		}
	}
}

// TestEpochWindowsCoverRun checks the per-barrier counter windows: labels
// come from the app's barriers and the deltas sum to the final counters.
func TestEpochWindowsCoverRun(t *testing.T) {
	_, ctr, prof, err := RunAppProfiled("FFT", BackendGenima, 4, ScaleTest, nil)
	if err != nil {
		t.Fatal(err)
	}
	windows := prof.Epochs.Windows()
	if len(windows) == 0 {
		t.Fatal("no epoch windows recorded")
	}
	sums := map[string]int64{}
	for _, w := range windows {
		if !strings.Contains(w.Label, "fft") {
			t.Errorf("unexpected epoch label %q", w.Label)
		}
		for k, v := range w.Delta {
			sums[k] += v
		}
	}
	// The last window ends at the final barrier; only counters that cannot
	// grow after it must match exactly, so compare against the snapshot the
	// final mark took: every summed key must be <= the final counter value.
	final := ctr.Snapshot()
	for k, v := range sums {
		if v > final[k] {
			t.Errorf("windows overcount %s: %d > final %d", k, v, final[k])
		}
	}
	if sums["barriers"] == 0 {
		t.Error("windows attribute no barriers")
	}
}
