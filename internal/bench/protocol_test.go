package bench

import (
	"testing"

	"cables/internal/coherence"
	"cables/internal/sim"
	"cables/internal/stats"
	"cables/internal/wire"
)

// setProtocol pins the process-default coherence protocol for one test,
// restoring the prior default afterwards (mirror of setScheduler).
func setProtocol(t *testing.T, name string) {
	t.Helper()
	saved := coherence.DefaultName()
	if err := coherence.SetDefault(name); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := coherence.SetDefault(saved); err != nil {
			t.Errorf("restore protocol default: %v", err)
		}
	})
}

// smokeProtocols returns the protocols a smoke test should cover: just
// the process default when the CI matrix pinned one via CABLES_PROTOCOL,
// every registered protocol otherwise.
func smokeProtocols() []string {
	if def := coherence.DefaultName(); def != coherence.ProtoGenima {
		return []string{def}
	}
	return coherence.Names()
}

// TestDefaultProtocolPlumbing: an empty CellOptions.Protocol resolves to
// the process default (what CABLES_PROTOCOL / `cablesim -protocol` set),
// so a cell run with the default pinned to delegate actually delegates.
// The scheduler is pinned to goroutine because delegation triggers only on
// acquires that are contended at call time, and the event scheduler's
// cooperative switching never produces one at this scale.
func TestDefaultProtocolPlumbing(t *testing.T) {
	setProtocol(t, coherence.ProtoDelegate)
	_, ctr, err := RunAppCell("WATER-SPATIAL", BackendGenima, 8, ScaleTest, nil,
		CellOptions{Sched: sim.SchedGoroutine})
	if err != nil {
		t.Fatal(err)
	}
	if ctr.Load(stats.EvDelegations) == 0 {
		t.Error("process-default delegate protocol was not picked up by an empty CellOptions")
	}
}

// TestFig5ProtocolSmoke is the CI backend × protocol matrix entry point:
// it runs the fig5-small grid (FFT and LU at 1 and 4 processors, both
// system backends) under the protocol selected by CABLES_PROTOCOL — or
// all three when none is pinned — and checks every cell completes with a
// checksum bit-identical to the genima baseline of the same cell.  The
// applications compute the same data under every coherence policy; only
// the wire schedule may differ.
func TestFig5ProtocolSmoke(t *testing.T) {
	for _, proto := range smokeProtocols() {
		for _, app := range []string{"FFT", "LU"} {
			for _, procs := range []int{1, 4} {
				for _, backend := range []string{BackendGenima, BackendCables} {
					base, _, err := RunAppCell(app, backend, procs, ScaleTest, nil,
						CellOptions{Protocol: coherence.ProtoGenima})
					if err != nil {
						t.Fatalf("%s/%s p=%d genima baseline: %v", app, backend, procs, err)
					}
					got, _, err := RunAppCell(app, backend, procs, ScaleTest, nil,
						CellOptions{Protocol: proto})
					if err != nil {
						t.Fatalf("%s/%s p=%d under %s: %v", app, backend, procs, proto, err)
					}
					if got.Checksum != base.Checksum {
						t.Errorf("%s/%s p=%d: checksum %v under %s, %v under genima",
							app, backend, procs, got.Checksum, proto, base.Checksum)
					}
				}
			}
		}
	}
}

// TestProtocolDeterminism pins, for every protocol, bit-identical
// checksums across the two system backends, the two scheduler backends,
// and -jobs 1 vs N.  The workload set exercises each policy for real:
// FFT (pure barriers), RADIX (write-shared ranking pages — commutative
// merges), WATER-SPATIAL (contended cell locks — delegation).
func TestProtocolDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("runs 72 simulations")
	}
	apps := []string{"FFT", "RADIX", "WATER-SPATIAL"}
	backends := []string{BackendGenima, BackendCables}
	for _, proto := range coherence.Names() {
		ref := map[string]float64{} // app/backend -> jobs=1 goroutine-sched checksum
		for _, sched := range sim.SchedulerNames() {
			for _, jobs := range []int{1, 4} {
				type cell struct {
					app, backend string
					sum          float64
					err          error
				}
				cells := make([]cell, 0, len(apps)*len(backends))
				for _, app := range apps {
					for _, backend := range backends {
						cells = append(cells, cell{app: app, backend: backend})
					}
				}
				RunCells(jobs, len(cells), func(i int) {
					c := &cells[i]
					res, _, err := RunAppCell(c.app, c.backend, 8, ScaleTest, nil,
						CellOptions{Protocol: proto, Sched: sched})
					c.sum, c.err = res.Checksum, err
				})
				for _, c := range cells {
					if c.err != nil {
						t.Fatalf("%s/%s under %s sched=%s jobs=%d: %v",
							c.app, c.backend, proto, sched, jobs, c.err)
					}
					key := c.app + "/" + c.backend
					if want, ok := ref[key]; !ok {
						ref[key] = c.sum
					} else if c.sum != want {
						t.Errorf("%s under %s: checksum %v at sched=%s jobs=%d, %v at sched=%s jobs=1",
							key, proto, c.sum, sched, jobs, want, sim.SchedGoroutine)
					}
				}
			}
		}
	}
}

// TestWireConservationProtocols extends the op plane's accounting contract
// to the protocol variants: under commutative (whose wire.merge ops ride
// the data plane) and delegate (whose delreq/deldone ops ride the control
// plane), every byte the counters report as sent or fetched still appears
// as the Arg of exactly one wire.* trace event.
func TestWireConservationProtocols(t *testing.T) {
	for _, proto := range coherence.Names() {
		for _, sched := range sim.SchedulerNames() {
			for _, app := range []string{"RADIX", "WATER-SPATIAL"} {
				res, ctr, ring, err := RunAppCellTraced(app, BackendGenima, 8, ScaleTest, nil, 1<<19,
					CellOptions{Protocol: proto, Sched: sched})
				if err != nil {
					t.Fatalf("%s under %s/%s: %v", app, proto, sched, err)
				}
				if res.Checksum == 0 {
					t.Fatalf("%s under %s/%s: empty run", app, proto, sched)
				}
				if d := ring.Dropped(); d != 0 {
					t.Fatalf("%s under %s/%s: ring dropped %d events; the sum would be partial", app, proto, sched, d)
				}
				var traced int64
				for _, e := range ring.Events() {
					if wire.IsWire(e.Kind) {
						traced += int64(e.Arg)
					}
				}
				counted := ctr.Load(stats.EvBytesSent) + ctr.Load(stats.EvBytesFetched)
				if traced != counted {
					t.Errorf("%s under %s/%s: conservation violated: wire trace Args sum to %d bytes, counters report %d",
						app, proto, sched, traced, counted)
				}
				// The variant under test must actually have exercised its
				// policy on this workload, or the invariant check is
				// vacuous.  Merges fire under both schedulers; delegation
				// needs contended acquires, which only the preemptive
				// goroutine scheduler produces at this scale.
				switch proto {
				case coherence.ProtoCommutative:
					if app == "RADIX" && ctr.Load(stats.EvCommMerges) == 0 {
						t.Errorf("commutative ran RADIX under %s without a single merge", sched)
					}
				case coherence.ProtoDelegate:
					if app == "WATER-SPATIAL" && sched == sim.SchedGoroutine &&
						ctr.Load(stats.EvDelegations) == 0 {
						t.Errorf("delegate ran WATER-SPATIAL without a single delegation")
					}
				}
			}
		}
	}
}

// TestProtocolsTableSmoke runs the `cablesim protocols` harness on a small
// app set and checks the table carries one row per (app, protocol) with
// matching checksums down each app's column, plus the effects the variants
// exist for: commutative strictly reduces messages on a write-shared app.
func TestProtocolsTableSmoke(t *testing.T) {
	apps := []string{"FFT", "RADIX"}
	protos := coherence.Names()
	cells := make([]ProtocolCell, len(apps)*len(protos))
	errs := RunCells(DefaultJobs(), len(cells), func(i int) {
		app, proto := apps[i/len(protos)], protos[i%len(protos)]
		c := &cells[i]
		c.App, c.Protocol = app, proto
		res, ctr, _, err := RunAppCellProfiled(app, BackendGenima, 8, ScaleTest, nil,
			CellOptions{Protocol: proto})
		c.Res, c.Err = res, err
		if err == nil {
			c.Messages = ctr.Load(stats.EvMessagesSent)
			c.Merges = ctr.Load(stats.EvCommMerges)
		}
	})
	for i, e := range errs {
		if e != nil || cells[i].Err != nil {
			t.Fatalf("cell %d (%s/%s): %v %v", i, cells[i].App, cells[i].Protocol, e, cells[i].Err)
		}
	}
	byApp := map[string]map[string]ProtocolCell{}
	for _, c := range cells {
		if byApp[c.App] == nil {
			byApp[c.App] = map[string]ProtocolCell{}
		}
		byApp[c.App][c.Protocol] = c
	}
	for app, row := range byApp {
		base := row[coherence.ProtoGenima]
		for proto, c := range row {
			if c.Res.Checksum != base.Res.Checksum {
				t.Errorf("%s: checksum %v under %s, %v under genima", app, c.Res.Checksum, proto, base.Res.Checksum)
			}
		}
	}
	radix := byApp["RADIX"]
	if g, c := radix[coherence.ProtoGenima], radix[coherence.ProtoCommutative]; c.Messages >= g.Messages {
		t.Errorf("commutative did not reduce RADIX messages: %d vs %d under genima", c.Messages, g.Messages)
	} else if c.Merges == 0 {
		t.Error("commutative reduced messages without reporting merges")
	}
}
