package bench

import (
	"fmt"
	"io"

	"cables/internal/apps/appapi"
	"cables/internal/coherence"
	"cables/internal/profile"
	"cables/internal/sim"
	"cables/internal/stats"
	"cables/internal/trace"
)

// ProtocolCell is one (app, protocol) outcome of a protocol comparison
// sweep: the run's result plus the wire-traffic and lock-wait aggregates
// the three coherence protocols differ on.
type ProtocolCell struct {
	App      string
	Protocol string
	Res      appapi.Result
	Messages int64    // EvMessagesSent: control + data messages issued
	KBytes   int64    // EvBytesSent + EvBytesFetched, in KiB
	LockWait sim.Time // total contended lock wait across all locks
	Transfer sim.Time // wait spent on grant/state transfer (wire latency)
	HoldBlk  sim.Time // wait spent blocked behind the holder
	Merges   int64    // EvCommMerges (commutative)
	Delegs   int64    // EvDelegations (delegate)
	Err      error
}

// RunAppCellProfiled is RunAppCell with a profiler attached, for sweeps
// that need the lock-wait split alongside the counters.
func RunAppCellProfiled(name, backend string, procs int, scale Scale, costs *sim.Costs, o CellOptions) (appapi.Result, *stats.Counters, *profile.Profiler, error) {
	rt := NewRuntimeOpts(backend, procs, 256<<20, costs, o)
	prof := AttachProfiler(rt)
	res, err := runAppOn(rt, name, scale)
	return res, rt.Cluster().Ctr, prof, err
}

// RunAppCellTraced is RunAppCell with a trace ring attached, for tests
// that check the wire conservation invariant under per-cell options.
func RunAppCellTraced(name, backend string, procs int, scale Scale, costs *sim.Costs, ringCap int, o CellOptions) (appapi.Result, *stats.Counters, *trace.Ring, error) {
	rt := NewRuntimeOpts(backend, procs, 256<<20, costs, o)
	ring := AttachRing(rt, ringCap)
	res, err := runAppOn(rt, name, scale)
	return res, rt.Cluster().Ctr, ring, err
}

// RunProtocols runs each app under every coherence protocol on the genima
// backend (the protocols are a genima-layer policy; the backend choice
// does not change the comparison) and renders the side-by-side table:
// virtual time, data checksum, messages, bytes, and the profiler's
// lock-wait split (total / transfer / hold-blocked).  The checksum column
// is the data-identity witness — all three protocols must compute the
// same answer.  jobs > 1 runs cells in parallel.
func RunProtocols(w io.Writer, apps []string, procs int, scale Scale, costs *sim.Costs, jobs int) *stats.Table {
	if len(apps) == 0 {
		apps = AppNames
	}
	if procs <= 0 {
		procs = 8
	}
	protos := coherence.Names()
	cells := make([]ProtocolCell, len(apps)*len(protos))
	errs := RunCells(jobs, len(cells), func(i int) {
		app, proto := apps[i/len(protos)], protos[i%len(protos)]
		c := &cells[i]
		c.App, c.Protocol = app, proto
		res, ctr, prof, err := RunAppCellProfiled(app, BackendGenima, procs, scale, costs,
			CellOptions{Protocol: proto})
		c.Res, c.Err = res, err
		if err != nil {
			return
		}
		c.Messages = ctr.Load(stats.EvMessagesSent)
		c.KBytes = (ctr.Load(stats.EvBytesSent) + ctr.Load(stats.EvBytesFetched)) >> 10
		c.Merges = ctr.Load(stats.EvCommMerges)
		c.Delegs = ctr.Load(stats.EvDelegations)
		rep := profile.Build(prof.Logs())
		for _, ls := range rep.Locks {
			c.LockWait += ls.Wait
			c.Transfer += ls.Transfer
			c.HoldBlk += ls.HoldBlocked
		}
	})

	tab := stats.NewTable("Application", "Protocol", "Time", "Checksum",
		"Msgs", "KB", "LockWait", "Transfer", "HoldBlk", "Extra")
	for i, c := range cells {
		if c.Err == nil && errs[i] != nil {
			c.Err = errs[i]
		}
		if c.Err != nil {
			tab.AddRow(c.App, c.Protocol, "FAILED", "-", "-", "-", "-", "-", "-",
				fmt.Sprintf("%v", c.Err))
			continue
		}
		extra := ""
		switch {
		case c.Merges > 0:
			extra = fmt.Sprintf("merges=%d", c.Merges)
		case c.Delegs > 0:
			extra = fmt.Sprintf("delegations=%d", c.Delegs)
		}
		tab.AddRow(c.App, c.Protocol, c.Res.Parallel.String(),
			fmt.Sprintf("%08x", uint32(c.Res.Checksum)),
			fmt.Sprintf("%d", c.Messages), fmt.Sprintf("%d", c.KBytes),
			c.LockWait.String(), c.Transfer.String(), c.HoldBlk.String(), extra)
	}
	if w != nil {
		fprintf(w, "Coherence protocols: %s backend, %d procs, scale %s\n%s",
			BackendGenima, procs, scale, tab)
	}
	return tab
}
