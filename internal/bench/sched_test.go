package bench

import (
	"io"
	"strconv"
	"strings"
	"testing"

	"cables/internal/memsys"
	"cables/internal/sim"
)

// crossSchedTolerance bounds virtual-time disagreement between the two
// thread-manager backends.  It is wider than the run-to-run jitterTolerance
// because the difference is systematic, not noise: the event backend wakes
// lock and barrier waiters in virtual-time order where free-running
// goroutines wake in host order, and on lock-heavy cells (LU at 4
// processors) the resulting contention sequence shifts simulated time by a
// consistent ~13%.  Computation checksums and row shape get no tolerance
// at all.
const crossSchedTolerance = 0.25

// setScheduler switches the process-default thread-manager backend for the
// duration of the test.  Tests in this package run sequentially, so the
// global default is safe to swap.
func setScheduler(t *testing.T, name string) {
	t.Helper()
	saved := sim.DefaultSchedulerName()
	if err := sim.SetDefaultScheduler(name); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := sim.SetDefaultScheduler(saved); err != nil {
			t.Errorf("restore scheduler default: %v", err)
		}
	})
}

// TestSchedulerBackendEquivalence pins the figure-5 grid across the two
// thread-manager backends: the computation checksums are structural results
// of the simulated protocol and must be bit-identical no matter which
// backend interleaved the threads; misplaced-page counts may shift by at
// most one map unit of first-touch racing, and virtual times may differ
// only within the cross-scheduler envelope.
func TestSchedulerBackendEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the fig5 grid once per scheduler backend")
	}
	apps, procs := []string{"FFT", "LU"}, []int{1, 4}
	data := map[string]Fig5Data{}
	for _, name := range sim.SchedulerNames() {
		setScheduler(t, name)
		data[name] = RunFig5(apps, procs, ScaleTest, nil, 2)
	}
	gor, evt := data[sim.SchedGoroutine], data[sim.SchedEvent]
	for _, app := range apps {
		for _, p := range procs {
			for _, backend := range []string{BackendGenima, BackendCables} {
				g, e := gor[app][p][backend], evt[app][p][backend]
				if (g.Err == nil) != (e.Err == nil) {
					t.Errorf("%s/%s p=%d: error outcome differs: goroutine %v, event %v",
						app, backend, p, g.Err, e.Err)
					continue
				}
				if g.Err != nil {
					continue
				}
				if g.Res.Checksum != e.Res.Checksum {
					t.Errorf("%s/%s p=%d: checksum differs across schedulers: %g vs %g",
						app, backend, p, g.Res.Checksum, e.Res.Checksum)
				}
				// Misplacement (the Figure 6 metric) counts pages whose
				// map-unit-granularity home lost the first-touch race to
				// another node; which node wins a contended unit is an
				// interleaving outcome, so the backends may legitimately
				// disagree by up to one map unit's worth of pages.  Each
				// backend's own count stays pinned exactly by
				// TestSchedulerJobsDeterminism.
				unitPages := sim.DefaultCosts().MapGranularity / memsys.PageSize
				if d := g.Res.Misplaced - e.Res.Misplaced; d > unitPages || -d > unitPages {
					t.Errorf("%s/%s p=%d: misplaced pages differ across schedulers by more than one map unit: %d vs %d",
						app, backend, p, g.Res.Misplaced, e.Res.Misplaced)
				}
				if d := relDiff(float64(g.Res.Parallel), float64(e.Res.Parallel)); d > crossSchedTolerance {
					t.Errorf("%s/%s p=%d: parallel time differs by %.1f%% across schedulers: %v vs %v",
						app, backend, p, d*100, g.Res.Parallel, e.Res.Parallel)
				}
			}
		}
	}

	// The rendered figure agrees on row structure across backends.
	shape := func(tab string) []string {
		var labels []string
		for _, line := range strings.Split(tab, "\n") {
			if f := strings.Fields(line); len(f) > 0 {
				labels = append(labels, f[0])
			}
		}
		return labels
	}
	g5 := shape(Fig5(io.Discard, gor, procs).String())
	e5 := shape(Fig5(io.Discard, evt, procs).String())
	if !slicesEqual(g5, e5) {
		t.Errorf("fig5 row structure differs across schedulers: %v vs %v", g5, e5)
	}
}

// TestTable4BackendEquivalence renders the Table 4 API-cost suite under
// both backends.  Within one backend the rendering must be byte-identical
// run to run; across backends the structure and every non-timing cell must
// match exactly, while timing cells may differ within the jitter envelope
// (the mutex+cond central barrier's cost depends on cond-broadcast wake-up
// order, which the backends legitimately resolve differently).
func TestTable4BackendEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the table4 suite twice per scheduler backend")
	}
	render := map[string]string{}
	for _, name := range sim.SchedulerNames() {
		setScheduler(t, name)
		a := Table4(io.Discard).String()
		b := Table4(io.Discard).String()
		if a != b {
			t.Errorf("%s: table4 is not reproducible within one backend:\n--- first\n%s\n--- second\n%s",
				name, a, b)
		}
		render[name] = a
	}
	compareTable4(t, render[sim.SchedGoroutine], render[sim.SchedEvent])
}

// compareTable4 checks two rendered Table 4 instances agree cell by cell:
// exactly for labels and counts, within the jitter tolerance for times.
func compareTable4(t *testing.T, a, b string) {
	t.Helper()
	la, lb := strings.Split(a, "\n"), strings.Split(b, "\n")
	if len(la) != len(lb) {
		t.Errorf("table4 line count differs across schedulers: %d vs %d", len(la), len(lb))
		return
	}
	for i := range la {
		fa, fb := strings.Fields(la[i]), strings.Fields(lb[i])
		if len(fa) != len(fb) {
			t.Errorf("table4 line %d field count differs: %q vs %q", i, la[i], lb[i])
			continue
		}
		for j := range fa {
			if ta, okA := parseTime(fa[j]); okA {
				if tb, okB := parseTime(fb[j]); okB {
					if relDiff(float64(ta), float64(tb)) > crossSchedTolerance {
						t.Errorf("table4 cell [%d][%d] differs by >%.0f%% across schedulers: %v vs %v",
							i, j, crossSchedTolerance*100, ta, tb)
					}
					continue
				}
			}
			va, errA := strconv.ParseFloat(fa[j], 64)
			vb, errB := strconv.ParseFloat(fb[j], 64)
			if errA == nil && errB == nil {
				if relDiff(va, vb) > crossSchedTolerance {
					t.Errorf("table4 cell [%d][%d] differs by >%.0f%% across schedulers: %v vs %v",
						i, j, crossSchedTolerance*100, va, vb)
				}
				continue
			}
			if fa[j] != fb[j] {
				t.Errorf("table4 cell [%d][%d] differs across schedulers: %q vs %q", i, j, fa[j], fb[j])
			}
		}
	}
}

// TestSchedulerJobsDeterminism re-runs the harness-determinism pin under
// each backend: a jobs=1 sweep and a jobs=4 sweep must produce identical
// structural results — the event backend's slot discipline must not make
// cell results depend on how many cells share the host.
func TestSchedulerJobsDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a fig5 column twice per scheduler backend")
	}
	apps, procs := []string{"FFT"}, []int{1, 4}
	for _, name := range sim.SchedulerNames() {
		t.Run(name, func(t *testing.T) {
			setScheduler(t, name)
			seq := RunFig5(apps, procs, ScaleTest, nil, 1)
			par := RunFig5(apps, procs, ScaleTest, nil, 4)
			for _, app := range apps {
				for _, p := range procs {
					for _, backend := range []string{BackendGenima, BackendCables} {
						s, q := seq[app][p][backend], par[app][p][backend]
						if (s.Err == nil) != (q.Err == nil) {
							t.Errorf("%s/%s p=%d: error outcome differs: jobs=1 %v, jobs=4 %v",
								app, backend, p, s.Err, q.Err)
							continue
						}
						if s.Err != nil {
							continue
						}
						if s.Res.Checksum != q.Res.Checksum {
							t.Errorf("%s/%s p=%d: checksum differs: %g vs %g",
								app, backend, p, s.Res.Checksum, q.Res.Checksum)
						}
						if s.Res.Misplaced != q.Res.Misplaced {
							t.Errorf("%s/%s p=%d: misplaced pages differ: %d vs %d",
								app, backend, p, s.Res.Misplaced, q.Res.Misplaced)
						}
						if d := relDiff(float64(s.Res.Parallel), float64(q.Res.Parallel)); d > jitterTolerance {
							t.Errorf("%s/%s p=%d: parallel time differs by %.1f%%: %v vs %v",
								app, backend, p, d*100, s.Res.Parallel, q.Res.Parallel)
						}
					}
				}
			}
		})
	}
}

// TestFig5RaceSmokeEventSched is the event-backend leg of the `make race`
// data-plane smoke: one fig5 column through the 2-worker harness with the
// slot-disciplined scheduler under the race detector.
func TestFig5RaceSmokeEventSched(t *testing.T) {
	setScheduler(t, sim.SchedEvent)
	data := RunFig5([]string{"FFT"}, []int{4}, ScaleTest, nil, 2)
	for _, backend := range []string{BackendGenima, BackendCables} {
		if err := data["FFT"][4][backend].Err; err != nil {
			t.Errorf("FFT/%s at 4 procs: %v", backend, err)
		}
	}
}
