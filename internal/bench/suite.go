// Package bench is the experiment harness: it reconstructs every table and
// figure of the paper's evaluation (§3) from the simulated systems.  Each
// exported TableN/FigN function prints the same rows/series the paper
// reports; bench_test.go at the repository root exposes them as Go
// benchmarks.
//
// Beyond the paper's artifacts the harness exposes counter profiles
// (RunAppCounters, RunAppTraced — `cablesim counters [-trace]`), fault
// sweeps under a deterministic injection plan (RunFaults — `cablesim
// faults`, cells render DEGRADED rather than FAILED when the plan fires),
// and host wall-clock benchmarks (subpackage hostperf).  Independent cells
// run concurrently on a bounded worker pool (RunCells, `-jobs N`) without
// changing any virtual-time result.
package bench

import (
	"fmt"
	"io"

	"cables/internal/apps/appapi"
	"cables/internal/apps/fft"
	"cables/internal/apps/lu"
	"cables/internal/apps/ocean"
	"cables/internal/apps/radix"
	"cables/internal/apps/raytrace"
	"cables/internal/apps/volrend"
	"cables/internal/apps/water"
	"cables/internal/sim"
	"cables/internal/stats"
	"cables/internal/wire"
)

// Scale selects problem sizes: "test" for quick CI-size runs, "paper" for
// the (scaled-down) evaluation sizes used to regenerate the figures, and
// "full" for the paper testbed's actual SPLASH-2 problem sizes (feasible in
// host memory since the COW frame store; see EXPERIMENTS.md `-full-size`).
type Scale string

// Recognized scales.
const (
	ScaleTest  Scale = "test"
	ScalePaper Scale = "paper"
	ScaleFull  Scale = "full"
)

// Backend names.
const (
	BackendGenima = "genima" // the original, optimized SVM system (M4)
	BackendCables = "cables" // M4 macros on CableS pthreads
)

// AppNames lists the SPLASH-2 applications in the paper's Figure 5 order.
var AppNames = []string{
	"FFT", "LU", "OCEAN", "RADIX",
	"WATER-SPATIAL", "WATER-SPAT-FL", "VOLREND", "RAYTRACE",
}

// ProcCounts is the paper's processor sweep.
var ProcCounts = []int{1, 4, 8, 16, 32}

// NewRuntime builds an application runtime on the chosen backend with the
// default (paper-faithful) wire plane.
func NewRuntime(backend string, procs int, arena int64, costs *sim.Costs) appapi.Runtime {
	return NewRuntimeWire(backend, procs, arena, costs, wire.Options{})
}

// NewRuntimeWire builds an application runtime on the chosen backend with
// explicit wire-plane options (-contended-sync, -coalesce).
func NewRuntimeWire(backend string, procs int, arena int64, costs *sim.Costs, w wire.Options) appapi.Runtime {
	return NewRuntimeOpts(backend, procs, arena, costs, CellOptions{Wire: w})
}

// RunApp executes the named application at the given processor count on the
// given backend.  Registration failures (the base system's NIC limits)
// surface as errors, exactly like the paper's OCEAN-at-32 case.
func RunApp(name, backend string, procs int, scale Scale, costs *sim.Costs) (appapi.Result, error) {
	return RunAppWire(name, backend, procs, scale, costs, wire.Options{})
}

// RunAppWire is RunApp with explicit wire-plane options.
func RunAppWire(name, backend string, procs int, scale Scale, costs *sim.Costs, w wire.Options) (appapi.Result, error) {
	return runAppOn(NewRuntimeWire(backend, procs, 256<<20, costs, w), name, scale)
}

// RunAppCounters runs an application and also returns the system event
// counters (the `cablesim counters` profile).
func RunAppCounters(name, backend string, procs int, scale Scale, costs *sim.Costs) (appapi.Result, *stats.Counters, error) {
	return RunAppCountersWire(name, backend, procs, scale, costs, wire.Options{})
}

// RunAppCountersWire is RunAppCounters with explicit wire-plane options.
func RunAppCountersWire(name, backend string, procs int, scale Scale, costs *sim.Costs, w wire.Options) (appapi.Result, *stats.Counters, error) {
	rt := NewRuntimeWire(backend, procs, 256<<20, costs, w)
	res, err := runAppOn(rt, name, scale)
	return res, rt.Cluster().Ctr, err
}

// runAppOn dispatches to the workload implementations.
func runAppOn(rt appapi.Runtime, name string, scale Scale) (res appapi.Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("bench: %s panicked: %v", name, r)
		}
	}()
	switch name {
	case "FFT":
		m := 18 // per-worker row blocks stay map-unit aligned at 32 procs
		switch scale {
		case ScaleTest:
			m = 12
		case ScaleFull:
			m = 22 // the paper testbed's 4M-point input (128 MB of matrices)
		}
		res = fft.Run(rt, fft.Config{M: m})
	case "LU":
		cfg := lu.DefaultConfig()
		switch scale {
		case ScaleTest:
			cfg.N = 192
		case ScaleFull:
			cfg.N = 2048 // 32 MB matrix, SPLASH-2's large input
		}
		res = lu.Run(rt, cfg)
	case "OCEAN":
		cfg := ocean.DefaultConfig()
		switch scale {
		case ScaleTest:
			cfg.N, cfg.Iters = 64, 2
		case ScaleFull:
			cfg.N = 512 // the testbed's 514x514 grid, at the solver's power-of-two
		}
		res, err = ocean.Run(rt, cfg)
	case "RADIX":
		cfg := radix.DefaultConfig()
		switch scale {
		case ScaleTest:
			cfg.N = 16 << 10
		case ScaleFull:
			cfg.N = 4 << 20 // 4M keys
		}
		res = radix.Run(rt, cfg)
	case "WATER-SPATIAL":
		cfg := water.DefaultConfig()
		switch scale {
		case ScaleTest:
			cfg.Molecules, cfg.Cells = 512, 4
		case ScaleFull:
			cfg.Molecules, cfg.Cells = 32768, 16
		}
		res = water.Run(rt, cfg)
	case "WATER-SPAT-FL":
		cfg := water.DefaultConfig()
		cfg.FineLocks = true
		switch scale {
		case ScaleTest:
			cfg.Molecules, cfg.Cells = 512, 4
		case ScaleFull:
			cfg.Molecules, cfg.Cells = 32768, 16
		}
		res = water.Run(rt, cfg)
	case "RAYTRACE":
		cfg := raytrace.DefaultConfig()
		switch scale {
		case ScaleTest:
			cfg.Image = 64
		case ScaleFull:
			cfg.Image = 512
		}
		res = raytrace.Run(rt, cfg)
	case "VOLREND":
		cfg := volrend.DefaultConfig()
		switch scale {
		case ScaleTest:
			cfg.Image, cfg.Frames = 64, 2
		case ScaleFull:
			cfg.Image = 256
		}
		res = volrend.Run(rt, cfg)
	default:
		return res, fmt.Errorf("bench: unknown application %q", name)
	}
	if err == nil {
		// Tear the space down: every frame reference is dropped and the
		// pool repopulated for the next cell, so back-to-back runs reuse
		// frames instead of re-allocating them (and mem-smoke can assert
		// that framesResident returns to its baseline).  A failed run may
		// leak blocked worker goroutines that still hold frame pointers,
		// so its frames are left to the garbage collector instead.
		rt.Acc().Sp.Release()
	}
	return res, err
}

// fprintf writes formatted output, ignoring errors (report streams).
func fprintf(w io.Writer, format string, args ...any) {
	fmt.Fprintf(w, format, args...)
}
