package bench

import (
	"math"
	"testing"
)

// TestAppsAgreeAcrossBackends runs every SPLASH-2 port on both the base
// system and CableS at the same processor count and requires identical
// results — the end-to-end check that both memory systems are coherent.
func TestAppsAgreeAcrossBackends(t *testing.T) {
	for _, app := range AppNames {
		app := app
		t.Run(app, func(t *testing.T) {
			g, err := RunApp(app, BackendGenima, 4, ScaleTest, nil)
			if err != nil {
				t.Fatalf("genima run: %v", err)
			}
			c, err := RunApp(app, BackendCables, 4, ScaleTest, nil)
			if err != nil {
				t.Fatalf("cables run: %v", err)
			}
			if g.Checksum == 0 || c.Checksum == 0 {
				t.Fatalf("zero checksum: genima=%g cables=%g", g.Checksum, c.Checksum)
			}
			if diff := math.Abs(g.Checksum-c.Checksum) / math.Abs(g.Checksum); diff > 1e-9 {
				t.Errorf("checksum mismatch: genima=%g cables=%g (rel %g)",
					g.Checksum, c.Checksum, diff)
			}
			if g.Parallel <= 0 || c.Parallel <= 0 {
				t.Errorf("non-positive parallel section: genima=%v cables=%v",
					g.Parallel, c.Parallel)
			}
			if g.Misplaced != 0 {
				t.Errorf("base system misplaced %d pages; its placement is the reference",
					g.Misplaced)
			}
			t.Logf("genima: %v", g)
			t.Logf("cables: %v", c)
		})
	}
}

// TestComputeAppsSpeedUp checks that compute-bound applications actually
// get faster with more processors on the base system.
func TestComputeAppsSpeedUp(t *testing.T) {
	for _, app := range []string{"LU", "RAYTRACE"} {
		app := app
		t.Run(app, func(t *testing.T) {
			seq, err := RunApp(app, BackendGenima, 1, ScaleTest, nil)
			if err != nil {
				t.Fatalf("p=1: %v", err)
			}
			par, err := RunApp(app, BackendGenima, 8, ScaleTest, nil)
			if err != nil {
				t.Fatalf("p=8: %v", err)
			}
			sp := float64(seq.Parallel) / float64(par.Parallel)
			if sp < 1.5 {
				t.Errorf("speedup at 8 procs: got %.2f, want >= 1.5 (seq=%v par=%v)",
					sp, seq.Parallel, par.Parallel)
			}
			t.Logf("%s speedup at 8 procs: %.2f", app, sp)
		})
	}
}
