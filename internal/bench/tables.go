package bench

import (
	"fmt"
	"io"
	"runtime"

	cables "cables/internal/core"
	"cables/internal/m4"
	"cables/internal/memsys"
	"cables/internal/nodeos"
	"cables/internal/openmp"
	"cables/internal/sim"
	"cables/internal/stats"
	"cables/internal/wire"

	"cables/internal/apps/misc"
	"cables/internal/apps/omp"
)

// Table3 regenerates the paper's Table 3: basic VMMC operation costs.
func Table3(w io.Writer) *stats.Table {
	tab := stats.NewTable("VMMC Operation", "Overhead")

	// Each operation runs on a fresh, idle cluster so no NIC occupancy
	// from a previous measurement queues behind it.
	measure := func(fn func(cl *nodeos.Cluster, t *sim.Task)) sim.Time {
		cl := nodeos.NewCluster(nodeos.Config{NumNodes: 2, ProcsPerNode: 2})
		t := cl.NewTask(0, 0)
		fn(cl, t)
		return t.Now()
	}

	op := func(k wire.Kind, size int) func(cl *nodeos.Cluster, t *sim.Task) {
		return func(cl *nodeos.Cluster, t *sim.Task) {
			cl.Wire.Do(t, wire.Op{Kind: k, Dst: 1, Size: size})
		}
	}
	send1 := measure(op(wire.KindWrite, 8))
	fetch1 := measure(op(wire.KindFetch, 8))
	send4k := measure(op(wire.KindWrite, 4096))
	fetch4k := measure(op(wire.KindFetch, 4096))
	notif := measure(op(wire.KindNotify, 8))

	const streamBytes = 64 << 20
	bwSend := measure(op(wire.KindStream, streamBytes))
	bwMBs := float64(streamBytes) / bwSend.Seconds() / 1e6
	bwFetch := measure(op(wire.KindStreamFetch, streamBytes))
	bwFetchMBs := float64(streamBytes) / bwFetch.Seconds() / 1e6

	tab.AddRow("1-word send (one-way lat)", send1.String())
	tab.AddRow("1-word fetch (round-trip lat)", fetch1.String())
	tab.AddRow("4 KByte send (one-way lat)", send4k.String())
	tab.AddRow("4 KByte fetch (round-trip lat)", fetch4k.String())
	tab.AddRow("Maximum ping-pong bandwidth", fmt.Sprintf("%.0f MBytes/s", bwMBs))
	tab.AddRow("Maximum fetch bandwidth", fmt.Sprintf("%.0f MBytes/s", bwFetchMBs))
	tab.AddRow("Notification", notif.String())
	if w != nil {
		fprintf(w, "Table 3: basic VMMC costs\n%s\n", tab)
	}
	return tab
}

// row4 is one Table 4 measurement.
type row4 struct {
	name  string
	total sim.Time
	brk   sim.Breakdown
}

// measureOp runs fn on t and captures its virtual duration and breakdown.
func measureOp(t *sim.Task, name string, fn func()) row4 {
	b0 := t.Snapshot()
	t0 := t.Now()
	fn()
	return row4{name: name, total: t.Now() - t0, brk: t.Snapshot().Sub(b0)}
}

// Table4 regenerates the paper's Table 4: CableS execution times for the
// basic events, with local/remote/OS/communication breakdowns, measured on
// 2- and 4-node configurations with no application data.
func Table4(w io.Writer) *stats.Table {
	var rows []row4

	// --- Node attach ---
	{
		rt := cables.New(cables.Config{MaxNodes: 4, ProcsPerNode: 2})
		main := rt.Start().Task
		rows = append(rows, measureOp(main, "attach node", func() {
			if _, err := rt.AttachNode(main); err != nil {
				panic(err)
			}
		}))
	}

	// --- Thread create (local / remote) ---
	{
		rt := cables.New(cables.Config{MaxNodes: 2, ProcsPerNode: 2, PrestartNodes: 2})
		main := rt.Start().Task
		block := make(chan struct{})
		var ths []*cables.Thread
		rows = append(rows, measureOp(main, "local thread create", func() {
			ths = append(ths, rt.Create(main, func(*cables.Thread) { <-block }))
		}))
		rows = append(rows, measureOp(main, "remote thread create", func() {
			ths = append(ths, rt.Create(main, func(*cables.Thread) { <-block }))
		}))
		close(block)
		for _, th := range ths {
			rt.Join(main, th)
		}
	}

	// --- Mutexes ---
	{
		rt := cables.New(cables.Config{MaxNodes: 2, ProcsPerNode: 2,
			ThreadsPerNode: 1, PrestartNodes: 2})
		main := rt.Start().Task
		mx := rt.NewMutex(main)
		rows = append(rows, measureOp(main, "local mutex lock (first time)", func() { mx.Lock(main) }))
		rows = append(rows, measureOp(main, "mutex unlock", func() { mx.Unlock(main) }))
		rows = append(rows, measureOp(main, "local mutex lock", func() { mx.Lock(main) }))
		mx.Unlock(main)
		// Remote: a thread on node 1 acquires a lock last held on node 0.
		step := make(chan struct{})
		var remoteFirst, remoteAgain row4
		th := rt.Create(main, func(th *cables.Thread) {
			remoteFirst = measureOp(th.Task, "remote mutex lock (first time)", func() { mx.Lock(th.Task) })
			mx.Unlock(th.Task)
			<-step // main re-takes the lock so it is again remote for us
			remoteAgain = measureOp(th.Task, "remote mutex lock", func() { mx.Lock(th.Task) })
			mx.Unlock(th.Task)
		})
		for rt.Cluster().Ctr.Load(stats.EvLockAcquires) < 3 { // wait for first remote acquire
			runtime.Gosched()
		}
		mx.Lock(main)
		mx.Unlock(main)
		step <- struct{}{}
		rt.Join(main, th)
		rows = append(rows, remoteFirst, remoteAgain)
	}

	// --- Condition variables ---
	{
		rt := cables.New(cables.Config{MaxNodes: 2, ProcsPerNode: 2,
			ThreadsPerNode: 1, PrestartNodes: 2})
		rt.Stats = &stats.OpStats{}
		main := rt.Start().Task
		mx := rt.NewMutex(main)
		cond := rt.NewCond(main)
		ready := make(chan struct{})
		th := rt.Create(main, func(th *cables.Thread) {
			mx.Lock(th.Task)
			close(ready)
			cond.Wait(th, mx)
			mx.Unlock(th.Task)
		})
		<-ready
		mx.Lock(main)
		rows = append(rows, measureOp(main, "conditional signal", func() { cond.Signal(main) }))
		mx.Unlock(main)
		rt.Join(main, th)
		// The wait's API overhead is recorded by the library itself,
		// excluding blocking time and the mutex re-acquisition.
		waitCost, _ := rt.Stats.Avg("cond_wait")
		c := rt.Cluster().Costs
		waitRow := row4{name: "conditional wait", total: waitCost}
		waitRow.brk[sim.CatLocal] = c.CondWaitLocal
		waitRow.brk[sim.CatComm] = c.CondWaitComm
		rows = append(rows, waitRow)

		// Broadcast with one remote waiter.
		ready2 := make(chan struct{})
		th2 := rt.Create(main, func(th *cables.Thread) {
			mx.Lock(th.Task)
			close(ready2)
			cond.Wait(th, mx)
			mx.Unlock(th.Task)
		})
		<-ready2
		mx.Lock(main)
		for rt.Cluster().Ctr.Load(stats.EvCondWaits) < 2 {
			runtime.Gosched()
		}
		rows = append(rows, measureOp(main, "conditional broadcast", func() { cond.Broadcast(main) }))
		mx.Unlock(main)
		rt.Join(main, th2)
	}

	// --- Barriers (GeNIMA native vs pthreads mutex+cond) ---
	{
		mrt := m4.New(m4.Config{Procs: 8, ProcsPerNode: 2, ArenaBytes: 16 << 20})
		var natRow row4
		bar := mrt.Protocol().NewBarrier("t4")
		done := make(chan row4, 8)
		for i := 0; i < 8; i++ {
			mrt.Spawn(mrt.Main(), func(t *sim.Task) {
				bar.Wait(t, 9)
				done <- measureOp(t, "GeNIMA barrier", func() { bar.Wait(t, 9) })
			})
		}
		bar.Wait(mrt.Main(), 9)
		natRow = measureOp(mrt.Main(), "GeNIMA barrier", func() { bar.Wait(mrt.Main(), 9) })
		for i := 0; i < 8; i++ {
			<-done
		}
		natRow.total -= natRow.brk[sim.CatWait]
		natRow.brk[sim.CatWait] = 0
		rows = append(rows, natRow)

		crt := cables.New(cables.Config{MaxNodes: 4, ProcsPerNode: 2, CoordinatorMain: true})
		cmain := crt.Start()
		cb, err := crt.NewCentralBarrier(cmain.Task, 8)
		if err != nil {
			panic(err)
		}
		ends := make(chan sim.Time, 8)
		starts := make(chan sim.Time, 8)
		var cths []*cables.Thread
		for i := 0; i < 8; i++ {
			cths = append(cths, crt.Create(cmain.Task, func(th *cables.Thread) {
				crt.Barrier(th.Task, "align", 8)
				starts <- th.Task.Now()
				cb.Wait(th)
				ends <- th.Task.Now()
			}))
		}
		for _, th := range cths {
			crt.Join(cmain.Task, th)
		}
		var maxStart, maxEnd sim.Time
		for i := 0; i < 8; i++ {
			if s := <-starts; s > maxStart {
				maxStart = s
			}
			if e := <-ends; e > maxEnd {
				maxEnd = e
			}
		}
		rows = append(rows, row4{name: "pthreads barrier", total: maxEnd - maxStart})
	}

	// --- Segment operations and administration ---
	{
		rt := cables.New(cables.Config{MaxNodes: 2, ProcsPerNode: 2,
			ThreadsPerNode: 1, PrestartNodes: 2})
		main := rt.Start().Task
		mem := rt.Mem()
		sp := rt.Protocol().Space()
		addr, err := mem.Malloc(main, 1<<20)
		if err != nil {
			panic(err)
		}
		unitPages := memsys.PageID(rt.Cluster().Costs.MapGranularity / memsys.PageSize)
		pid := sp.PageOf(addr)
		rows = append(rows, measureOp(main, "segment migration on ACB owner (first time)", func() {
			mem.HomeFor(main, pid)
		}))
		rows = append(rows, measureOp(main, "segment owner detect on ACB owner", func() {
			mem.HomeFor(main, pid)
		}))
		var migRow, detFirst, detAgain row4
		th := rt.Create(main, func(th *cables.Thread) {
			migRow = measureOp(th.Task, "segment migration (first time)", func() {
				mem.HomeFor(th.Task, pid+unitPages)
			})
			detFirst = measureOp(th.Task, "segment owner detect (first time)", func() {
				mem.HomeFor(th.Task, pid)
			})
			detAgain = measureOp(th.Task, "segment owner detect", func() {
				mem.HomeFor(th.Task, pid)
			})
		})
		rt.Join(main, th)
		rows = append(rows, migRow, detFirst, detAgain)

		var adminRow row4
		th2 := rt.Create(main, func(th *cables.Thread) {
			adminRow = measureOp(th.Task, "administration request", func() {
				rt.KeyCreate(th.Task)
			})
		})
		rt.Join(main, th2)
		rows = append(rows, adminRow)
	}

	tab := stats.NewTable("CableS Mechanism", "Total",
		"Local CableS", "Remote CableS", "Local OS", "Communication")
	cell := func(d sim.Time) string {
		if d == 0 {
			return "-"
		}
		return d.String()
	}
	for _, r := range rows {
		tab.AddRow(r.name, r.total.String(),
			cell(r.brk[sim.CatLocal]), cell(r.brk[sim.CatRemote]),
			cell(r.brk[sim.CatLocalOS]), cell(r.brk[sim.CatComm]))
	}
	if w != nil {
		fprintf(w, "Table 4: CableS execution times for the basic events\n%s\n", tab)
	}
	return tab
}

// Table5 regenerates the paper's Table 5: the pthreads programs (PN, PC,
// PIPE and the OpenMP SPLASH-2 programs) with the average execution time of
// each pthreads API operation during the run.  Each program is an
// independent simulation; up to jobs of them run concurrently on the host,
// with rows always emitted in the fixed program order.
func Table5(w io.Writer, scale Scale, jobs int) *stats.Table {
	newRT := func(nodes int) *cables.Runtime {
		return cables.New(cables.Config{MaxNodes: nodes, ProcsPerNode: 2})
	}
	limit, items := 20000, 300
	ompM, ompN := 12, 128
	if scale == ScalePaper {
		limit, items = 100000, 1000
		ompM, ompN = 14, 192
	}

	runOMP := func(name string, f func(r *openmp.Runtime) float64) misc.ProgResult {
		r := openmp.New(openmp.Config{Procs: 8, ProcsPerNode: 2})
		r.Stats = &stats.OpStats{}
		f(r)
		return misc.ProgResult{Name: name, Total: r.Finish(), Stats: r.Stats}
	}
	cells := []struct {
		name string
		run  func() misc.ProgResult
	}{
		{"PN", func() misc.ProgResult { return misc.RunPN(newRT(4), limit, 7) }},
		{"PC", func() misc.ProgResult { return misc.RunPC(newRT(1), items) }},
		{"PIPE", func() misc.ProgResult { return misc.RunPIPE(newRT(4), 6, items) }},
		{"OMP FFT", func() misc.ProgResult {
			return runOMP("OMP FFT", func(r *openmp.Runtime) float64 { return omp.FFT(r, ompM).Checksum })
		}},
		{"OMP LU", func() misc.ProgResult {
			return runOMP("OMP LU", func(r *openmp.Runtime) float64 { return omp.LU(r, ompN).Checksum })
		}},
		{"OMP OCEAN", func() misc.ProgResult {
			return runOMP("OMP OCEAN", func(r *openmp.Runtime) float64 { return omp.Ocean(r, ompN, 2).Checksum })
		}},
	}
	progs := make([]misc.ProgResult, len(cells))
	errs := RunCells(jobs, len(cells), func(i int) {
		progs[i] = cells[i].run()
	})

	cols := []string{"create", "join", "mutex_lock", "mutex_unlock",
		"cond_wait", "cond_signal", "cond_broadcast", "barrier", "cancel"}
	tab := stats.NewTable(append([]string{"PROGRAM", "Total"}, cols...)...)
	for i, p := range progs {
		if errs[i] != nil {
			// The cell panicked: render a FAILED row and keep the table.
			row := append([]string{cells[i].name, "FAILED"}, make([]string, len(cols))...)
			for j := range cols {
				row[2+j] = "-"
			}
			tab.AddRow(row...)
			continue
		}
		row := []string{p.Name, p.Total.String()}
		for _, op := range cols {
			avg, n := p.Stats.Avg(op)
			if n == 0 {
				row = append(row, "-")
			} else {
				row = append(row, fmt.Sprintf("%v", avg))
			}
		}
		tab.AddRow(row...)
	}
	if w != nil {
		fprintf(w, "Table 5: pthreads programs, average per-operation cost\n%s\n", tab)
	}
	return tab
}

// Table6 regenerates the paper's Table 6: speedups of the three OpenMP
// SPLASH-2 programs on 4, 8 and 16 processors (SMP-style codes with naive
// placement, hence the modest numbers).  The apps x procs grid runs as
// independent cells, up to jobs at a time, assembled in fixed order.
func Table6(w io.Writer, scale Scale, jobs int) *stats.Table {
	m, n := 12, 128
	iters := 2
	if scale == ScalePaper {
		m, n = 16, 384
	}
	procsList := []int{1, 4, 8, 16}

	type appRun struct {
		name string
		run  func(r *openmp.Runtime) sim.Time
	}
	apps := []appRun{
		{"FFT", func(r *openmp.Runtime) sim.Time { return omp.FFT(r, m).Parallel }},
		{"LU", func(r *openmp.Runtime) sim.Time { return omp.LU(r, n).Parallel }},
		{"OCEAN", func(r *openmp.Runtime) sim.Time { return omp.Ocean(r, n, iters).Parallel }},
	}

	times := make([]sim.Time, len(apps)*len(procsList))
	errs := RunCells(jobs, len(times), func(i int) {
		a, p := apps[i/len(procsList)], procsList[i%len(procsList)]
		r := openmp.New(openmp.Config{Procs: p, ProcsPerNode: 2})
		times[i] = a.run(r)
	})

	tab := stats.NewTable("PROGRAM", "4 procs.", "8 procs.", "16 procs.")
	for ai, a := range apps {
		base := times[ai*len(procsList)]
		baseErr := errs[ai*len(procsList)]
		row := []string{a.name}
		for pi := range procsList[1:] {
			i := ai*len(procsList) + pi + 1
			if baseErr != nil || errs[i] != nil || times[i] == 0 {
				row = append(row, "FAILED")
				continue
			}
			row = append(row, fmt.Sprintf("%.2f", float64(base)/float64(times[i])))
		}
		tab.AddRow(row...)
	}
	if w != nil {
		fprintf(w, "Table 6: OpenMP SPLASH-2 speedups on CableS\n%s\n", tab)
	}
	return tab
}
