package bench

import (
	"io"
	"strconv"
	"strings"
	"testing"

	"cables/internal/sim"
)

// approx asserts d is within tol (fractional) of want.
func approx(t *testing.T, name string, d, want sim.Time, tol float64) {
	t.Helper()
	lo := sim.Time(float64(want) * (1 - tol))
	hi := sim.Time(float64(want) * (1 + tol))
	if d < lo || d > hi {
		t.Errorf("%s: got %v, want %v +/- %.0f%%", name, d, want, tol*100)
	}
}

// TestTable3MatchesPaper checks the calibrated VMMC costs against the
// paper's Table 3 values.
func TestTable3MatchesPaper(t *testing.T) {
	tab := Table3(io.Discard)
	s := tab.String()
	for _, want := range []string{
		"7.8",  // 1-word send 7.8us
		"22",   // 1-word fetch
		"51.9", // 4KB send (paper: 52us)
		"80.9", // 4KB fetch (paper: 81us)
		"125 MBytes/s",
		"18.0us", // notification
	} {
		if !strings.Contains(s, want) {
			t.Errorf("Table 3 missing value %q in:\n%s", want, s)
		}
	}
}

// TestTable4MatchesPaper regenerates Table 4 and spot-checks the headline
// rows against the paper's measurements.
func TestTable4MatchesPaper(t *testing.T) {
	tab := Table4(io.Discard)
	s := tab.String()
	t.Logf("\n%s", s)
	rows := map[string]sim.Time{
		"attach node":                    3690 * sim.Millisecond,
		"local thread create":            766 * sim.Microsecond,
		"remote thread create":           819 * sim.Microsecond,
		"local mutex lock (first time)":  33 * sim.Microsecond,
		"local mutex lock":               4 * sim.Microsecond,
		"remote mutex lock (first time)": 122 * sim.Microsecond,
		"remote mutex lock":              101 * sim.Microsecond,
		"mutex unlock":                   6 * sim.Microsecond,
		"conditional signal":             100 * sim.Microsecond,
		"GeNIMA barrier":                 70 * sim.Microsecond,
		"administration request":         20 * sim.Microsecond,
	}
	for name, want := range rows {
		got, ok := findRowTotal(s, name)
		if !ok {
			t.Errorf("row %q missing", name)
			continue
		}
		approx(t, name, got, want, 0.25)
	}
	// The pthreads (mutex+cond) barrier must be orders of magnitude slower
	// than the native one.
	pb, ok := findRowTotal(s, "pthreads barrier")
	if !ok || pb < sim.Millisecond {
		t.Errorf("pthreads barrier: got %v ok=%v, want >= 1ms", pb, ok)
	}
}

// findRowTotal extracts the Total cell of the named row from a rendered
// table.
func findRowTotal(table, name string) (sim.Time, bool) {
	for _, line := range strings.Split(table, "\n") {
		if !strings.HasPrefix(line, name+" ") {
			continue
		}
		fields := strings.Fields(strings.TrimPrefix(line, name))
		if len(fields) == 0 {
			continue
		}
		// Skip rows whose name merely starts with the requested name
		// (e.g. "local mutex lock (first time)" vs "local mutex lock").
		if d, ok := parseTime(fields[0]); ok {
			return d, true
		}
	}
	return 0, false
}

func parseTime(s string) (sim.Time, bool) {
	i := 0
	for i < len(s) && (s[i] == '.' || (s[i] >= '0' && s[i] <= '9')) {
		i++
	}
	if i == 0 {
		return 0, false
	}
	v, err := strconv.ParseFloat(s[:i], 64)
	if err != nil {
		return 0, false
	}
	switch s[i:] {
	case "us":
		return sim.Time(v * float64(sim.Microsecond)), true
	case "ms":
		return sim.Time(v * float64(sim.Millisecond)), true
	case "s":
		return sim.Time(v * float64(sim.Second)), true
	}
	return 0, false
}
