package bench

import (
	"testing"

	"cables/internal/memsys"
	"cables/internal/sim"
	"cables/internal/stats"
	"cables/internal/wire"
)

// TestWireConservationInvariant checks the op plane's accounting contract
// end to end on both backends: every byte the counters report as sent or
// fetched appears as the Arg of exactly one wire.* trace event, so the
// retained trace ring (no drops) sums to the byte counters.
func TestWireConservationInvariant(t *testing.T) {
	for _, backend := range []string{BackendGenima, BackendCables} {
		res, ctr, ring, err := RunAppTraced("FFT", backend, 4, ScaleTest, nil, 1<<19)
		if err != nil {
			t.Fatalf("%s: %v", backend, err)
		}
		if res.Checksum == 0 {
			t.Fatalf("%s: empty run", backend)
		}
		if d := ring.Dropped(); d != 0 {
			t.Fatalf("%s: ring dropped %d events; the sum would be partial", backend, d)
		}
		var traced int64
		for _, e := range ring.Events() {
			if wire.IsWire(e.Kind) {
				traced += int64(e.Arg)
			}
		}
		counted := ctr.Load(stats.EvBytesSent) + ctr.Load(stats.EvBytesFetched)
		if traced != counted {
			t.Errorf("%s: conservation violated: wire trace Args sum to %d bytes, counters report %d",
				backend, traced, counted)
		}
		if traced == 0 {
			t.Errorf("%s: no wire traffic traced; the invariant is vacuous", backend)
		}
	}
}

// coalesceWorkload is a strictly sequential (host-schedule-independent)
// genima run in which each worker dirties many remote-homed pages inside
// one critical section, so every release flushes a burst of diffs to one
// home — the shape the GeNIMA release protocol-opt coalesces.  It returns
// the run's counters and virtual end time.
func coalesceWorkload(t *testing.T, w wire.Options) (*stats.Counters, sim.Time) {
	t.Helper()
	rt := NewRuntimeWire(BackendGenima, 6, 64<<20, nil, w)
	main := rt.Main()
	acc := rt.Acc()
	a, err := rt.Malloc(main, "seq", 256<<10)
	if err != nil {
		t.Fatalf("malloc: %v", err)
	}
	// Master first-touches every page, homing them all on node 0; workers on
	// the other nodes then dirty 10 pages per critical section.
	for p := 0; p < 64; p++ {
		acc.WriteI64(main, a+memsys.Addr(p*memsys.PageSize), int64(p))
	}
	for wkr := 0; wkr < 6; wkr++ {
		id := rt.Spawn(main, func(task *sim.Task) {
			base := a + memsys.Addr(wkr*10*memsys.PageSize)
			rt.Lock(task, 1)
			for p := 0; p < 10; p++ {
				addr := base + memsys.Addr(p*memsys.PageSize)
				acc.WriteI64(task, addr, acc.ReadI64(task, addr)+int64(wkr+p))
			}
			rt.Unlock(task, 1)
		})
		rt.Join(main, id)
	}
	// Validate the data survived whichever flush encoding ran.
	sum := int64(0)
	for p := 0; p < 64; p++ {
		sum += acc.ReadI64(main, a+memsys.Addr(p*memsys.PageSize))
	}
	want := int64(0)
	for p := 0; p < 64; p++ {
		want += int64(p)
	}
	for wkr := 0; wkr < 6; wkr++ {
		for p := 0; p < 10; p++ {
			want += int64(wkr + p)
		}
	}
	if sum != want {
		t.Fatalf("data corrupted: checksum %d, want %d", sum, want)
	}
	end := rt.Finish()
	return rt.Cluster().Ctr, end
}

// TestCoalesceFewerMessages checks -coalesce semantics: the same workload
// produces the same data and the same number of diffs, carried by strictly
// fewer wire messages (one remote write per home per release instead of one
// per page).
func TestCoalesceFewerMessages(t *testing.T) {
	plain, _ := coalesceWorkload(t, wire.Options{})
	coal, _ := coalesceWorkload(t, wire.Options{Coalesce: true})
	if p, c := plain.Load(stats.EvDiffsSent), coal.Load(stats.EvDiffsSent); p != c {
		t.Errorf("coalescing changed the diff count: %d vs %d", p, c)
	}
	p, c := plain.Load(stats.EvMessagesSent), coal.Load(stats.EvMessagesSent)
	if c >= p {
		t.Errorf("coalescing did not reduce messages: %d vs %d", p, c)
	}
	if pb, cb := plain.Load(stats.EvDiffBytes), coal.Load(stats.EvDiffBytes); pb != cb {
		t.Errorf("coalescing changed the diffed bytes: %d vs %d", pb, cb)
	}
}

// TestDefaultWireOptionsBitIdentical pins the plane's compatibility
// contract at the harness level: explicitly passing the zero Options
// reproduces RunApp exactly, counter for counter, on a deterministic
// sequential workload.
func TestDefaultWireOptionsBitIdentical(t *testing.T) {
	a, enda := coalesceWorkload(t, wire.Options{})
	b, endb := coalesceWorkload(t, wire.Options{})
	if enda != endb {
		t.Errorf("sequential workload not reproducible: end %v vs %v", enda, endb)
	}
	for _, e := range []stats.Event{
		stats.EvMessagesSent, stats.EvBytesSent, stats.EvBytesFetched,
		stats.EvWireOps, stats.EvDiffsSent, stats.EvPageFaults,
	} {
		if va, vb := a.Load(e), b.Load(e); va != vb {
			t.Errorf("counter %v differs across identical runs: %d vs %d", e, va, vb)
		}
	}
}

// TestFig5ContendedSyncRaceSmoke is the `make race` cell for the
// -contended-sync mode: one fig5 column with sync traffic holding NIC
// occupancy, under the race detector, on both backends.
func TestFig5ContendedSyncRaceSmoke(t *testing.T) {
	data := RunFig5Wire([]string{"FFT"}, []int{4}, ScaleTest, nil, 2,
		wire.Options{ContendedSync: true})
	for _, backend := range []string{BackendGenima, BackendCables} {
		cell := data["FFT"][4][backend]
		if cell.Err != nil {
			t.Errorf("FFT/%s at 4 procs: %v", backend, cell.Err)
		}
		if cell.Res.Parallel <= 0 {
			t.Errorf("FFT/%s: implausible parallel time %v", backend, cell.Res.Parallel)
		}
	}
}
