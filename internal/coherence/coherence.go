// Package coherence defines the pluggable coherence-policy seam of the
// simulator and its built-in implementations.
//
// The GeNIMA engine (internal/genima) owns the *mechanism* of home-based
// shared virtual memory — twins, diffs, write notices, the interval log,
// invalidation — and consults a Protocol for *policy*: which diffs may be
// batched into commutative merges, and whether a contended critical
// section should execute at the lock holder's node instead of migrating
// pages to the waiter.  Three protocols ship:
//
//   - genima: the baseline home-based write-invalidate protocol of the
//     paper.  Every hook is a no-op, so the engine behaves (and costs)
//     exactly as it did before the seam existed.
//   - commutative: pages observed to be write-shared (diffed to the same
//     home by more than one node) are treated as reduction targets.
//     Their diffs still reach the home byte-for-byte, but each flush
//     carries them in one `wire.merge` op per home instead of one
//     `wire.write` per page — the buffered-merge idea of the parallel
//     commutative-updates line of work.
//   - delegate: the first contended Acquire on a lock picks the current
//     holder's node as the lock's sticky delegation server; subsequent
//     contended critical sections ship a descriptor there (`wire.delreq`)
//     and execute against the server's memory, turning page ping-pong
//     into local hand-offs at the server (`wire.deldone` on return).
//
// Selection is by name: the -protocol flag of cmd/cablesim and the
// CABLES_PROTOCOL environment variable set the process default (exactly
// like CABLES_SCHED for scheduler backends); bench.CellOptions and the
// farm spec carry an explicit per-cell override.
package coherence

import (
	"fmt"
	"os"
	"sort"
	"sync"
	"sync/atomic"

	"cables/internal/memsys"
)

// Protocol is the policy seam consulted by the GeNIMA engine.  Hooks are
// called from simulated application threads concurrently; implementations
// must be safe for concurrent use.  Node arguments are always the task's
// *memory* node (sim.Task.MemNode), so a delegated critical section is
// observed at its server, not its origin.
type Protocol interface {
	// Name returns the protocol's registry name (one of Names).
	Name() string

	// Merge reports whether the engine should run a merge lane during
	// Flush (allocate the per-home merge batch and honor MergeDiff
	// verdicts).  Protocols that never merge return false so the genima
	// fast path stays allocation-free.
	Merge() bool

	// PageFetch observes a remote page fill: node fetched pid from home.
	PageFetch(node int, pid memsys.PageID, home int)

	// MergeDiff is consulted once per outbound diff (node flushing pid to
	// home, diffBytes of payload).  Returning true routes the diff into
	// the flush's merge batch — one wire op per home — instead of a
	// per-page remote write.  The verdict is only honored when Merge()
	// is true and the flush is running a merge lane.
	MergeDiff(node int, pid memsys.PageID, home, diffBytes int) bool

	// LockAcquire is consulted when an Acquire finds the lock held.
	// holderNode is the node the current holder is executing on, and
	// waiterNode the contender's home node.  A non-negative return is
	// the delegation server the waiter's critical section should execute
	// on; -1 leaves the acquire on the normal grant path.
	LockAcquire(lockID, holderNode, waiterNode int) int

	// LockRelease observes a release: the critical section executed on
	// execNode for a thread whose home is originNode.
	LockRelease(lockID, execNode, originNode int)

	// BarrierRelease observes the last arriver releasing a barrier.
	BarrierRelease(name string, parties int)
}

// Registry names, in the order of protocolNames.
const (
	ProtoGenima      = "genima"
	ProtoCommutative = "commutative"
	ProtoDelegate    = "delegate"
)

// protocolNames lists every selectable protocol.  cmd/doccheck parses
// this literal and cross-checks DESIGN.md / EXPERIMENTS.md, so a new
// protocol that is not documented fails `make docs`.
var protocolNames = []string{"genima", "commutative", "delegate"}

// Names returns the selectable protocol names (copy; callers may sort).
func Names() []string {
	out := make([]string, len(protocolNames))
	copy(out, protocolNames)
	return out
}

// Valid reports whether name selects a known protocol.
func Valid(name string) bool {
	for _, n := range protocolNames {
		if n == name {
			return true
		}
	}
	return false
}

// defaultProtocol is the process-wide default, settable once at startup
// via CABLES_PROTOCOL and at runtime via SetDefault (cablesim -protocol).
var defaultProtocol atomic.Pointer[string]

func init() {
	name := ProtoGenima
	if env := os.Getenv("CABLES_PROTOCOL"); env != "" {
		if !Valid(env) {
			panic(fmt.Sprintf("CABLES_PROTOCOL=%q: unknown protocol (have %v)", env, protocolNames))
		}
		name = env
	}
	defaultProtocol.Store(&name)
}

// DefaultName returns the process-default protocol name.
func DefaultName() string { return *defaultProtocol.Load() }

// SetDefault sets the process-default protocol.  It returns an error on
// an unknown name and ignores the empty string (keeps the current
// default), so flag plumbing can pass its value through unconditionally.
func SetDefault(name string) error {
	if name == "" {
		return nil
	}
	if !Valid(name) {
		return fmt.Errorf("unknown protocol %q (have %v)", name, protocolNames)
	}
	defaultProtocol.Store(&name)
	return nil
}

// New builds a fresh protocol instance by name; the empty string selects
// the process default.  Instances carry per-run state (write-sharing
// observations, delegation servers) and must not be shared across runs.
func New(name string) (Protocol, error) {
	if name == "" {
		name = DefaultName()
	}
	switch name {
	case ProtoGenima:
		return genimaProtocol{}, nil
	case ProtoCommutative:
		return newCommutative(), nil
	case ProtoDelegate:
		return newDelegate(), nil
	}
	return nil, fmt.Errorf("unknown protocol %q (have %v)", name, protocolNames)
}

// MustNew is New for known-good names (panics otherwise).
func MustNew(name string) Protocol {
	p, err := New(name)
	if err != nil {
		panic(err)
	}
	return p
}

// genimaProtocol is the baseline: every hook is a no-op, so the engine
// reproduces the pre-seam GeNIMA behavior bit for bit.  The zero-size
// struct keeps the per-diff MergeDiff consultation a trivial interface
// call with no state access (hostperf gates it at <=1% of a flush).
type genimaProtocol struct{}

func (genimaProtocol) Name() string                                    { return ProtoGenima }
func (genimaProtocol) Merge() bool                                     { return false }
func (genimaProtocol) PageFetch(int, memsys.PageID, int)               {}
func (genimaProtocol) MergeDiff(int, memsys.PageID, int, int) bool     { return false }
func (genimaProtocol) LockAcquire(lockID, holder, waiter int) int      { return -1 }
func (genimaProtocol) LockRelease(lockID, execNode, originNode int)    {}
func (genimaProtocol) BarrierRelease(string, int)                      {}

// commutative detects write-shared pages at runtime: the second distinct
// node that diffs a page marks it a reduction target, and every later
// diff of that page rides the flush's merge batch.  Detection state is a
// mutex-guarded map; the diff kernel (memsys.DiffPage over 4 KiB)
// dominates the per-diff cost by orders of magnitude.
type commutative struct {
	mu     sync.Mutex
	writer map[memsys.PageID]int32 // last diffing node + 1 (0 = none yet)
	shared map[memsys.PageID]bool  // observed multi-writer pages
}

func newCommutative() *commutative {
	return &commutative{
		writer: make(map[memsys.PageID]int32),
		shared: make(map[memsys.PageID]bool),
	}
}

func (c *commutative) Name() string { return ProtoCommutative }
func (c *commutative) Merge() bool  { return true }

func (c *commutative) PageFetch(int, memsys.PageID, int) {}

func (c *commutative) MergeDiff(node int, pid memsys.PageID, home, diffBytes int) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if w := c.writer[pid]; w != 0 && w != int32(node)+1 {
		c.shared[pid] = true
	}
	c.writer[pid] = int32(node) + 1
	return c.shared[pid]
}

func (c *commutative) LockAcquire(lockID, holder, waiter int) int   { return -1 }
func (c *commutative) LockRelease(lockID, execNode, originNode int) {}
func (c *commutative) BarrierRelease(string, int)                   {}

// SharedPages returns the pages observed as write-shared so far, sorted
// (tests and diagnostics).
func (c *commutative) SharedPages() []memsys.PageID {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]memsys.PageID, 0, len(c.shared))
	for pid := range c.shared {
		out = append(out, pid)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// delegate assigns each lock a sticky delegation server: the node the
// holder was executing on at the lock's first contended acquire.  Every
// later contended critical section on that lock executes at the server,
// so the lock's data pages stop ping-ponging and grant hand-offs between
// queued waiters become server-local.
type delegate struct {
	mu     sync.Mutex
	server map[int]int // lock id -> sticky server node
}

func newDelegate() *delegate {
	return &delegate{server: make(map[int]int)}
}

func (d *delegate) Name() string { return ProtoDelegate }
func (d *delegate) Merge() bool  { return false }

func (d *delegate) PageFetch(int, memsys.PageID, int) {}

func (d *delegate) MergeDiff(int, memsys.PageID, int, int) bool { return false }

func (d *delegate) LockAcquire(lockID, holderNode, waiterNode int) int {
	d.mu.Lock()
	defer d.mu.Unlock()
	if srv, ok := d.server[lockID]; ok {
		return srv
	}
	if holderNode < 0 {
		return -1
	}
	d.server[lockID] = holderNode
	return holderNode
}

func (d *delegate) LockRelease(lockID, execNode, originNode int) {}
func (d *delegate) BarrierRelease(string, int)                   {}

// ServerOf returns the sticky server chosen for a lock, or -1 if the
// lock has never been contended (tests and diagnostics).
func (d *delegate) ServerOf(lockID int) int {
	d.mu.Lock()
	defer d.mu.Unlock()
	if srv, ok := d.server[lockID]; ok {
		return srv
	}
	return -1
}
