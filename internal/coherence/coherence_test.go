package coherence

import (
	"testing"

	"cables/internal/memsys"
)

func TestRegistry(t *testing.T) {
	names := Names()
	if len(names) != 3 || names[0] != ProtoGenima {
		t.Fatalf("Names() = %v, want genima first of three", names)
	}
	names[0] = "clobbered"
	if Names()[0] != ProtoGenima {
		t.Fatal("Names() returned the internal slice, not a copy")
	}
	for _, n := range Names() {
		if !Valid(n) {
			t.Errorf("Valid(%q) = false for a registered name", n)
		}
		p, err := New(n)
		if err != nil {
			t.Fatalf("New(%q): %v", n, err)
		}
		if p.Name() != n {
			t.Errorf("New(%q).Name() = %q", n, p.Name())
		}
	}
	if Valid("treadmarks") {
		t.Error("Valid accepted an unregistered name")
	}
	if _, err := New("treadmarks"); err == nil {
		t.Error("New accepted an unregistered name")
	}
}

func TestDefaultSelection(t *testing.T) {
	old := DefaultName()
	defer SetDefault(old)

	if err := SetDefault(ProtoDelegate); err != nil {
		t.Fatal(err)
	}
	if DefaultName() != ProtoDelegate {
		t.Fatalf("DefaultName() = %q after SetDefault(delegate)", DefaultName())
	}
	// Empty selects the default; empty SetDefault keeps it.
	if err := SetDefault(""); err != nil || DefaultName() != ProtoDelegate {
		t.Fatalf("SetDefault(\"\") changed the default to %q (err %v)", DefaultName(), err)
	}
	p, err := New("")
	if err != nil || p.Name() != ProtoDelegate {
		t.Fatalf("New(\"\") = %v, %v; want the process default", p, err)
	}
	if err := SetDefault("treadmarks"); err == nil {
		t.Fatal("SetDefault accepted an unregistered name")
	}
}

// TestGenimaIsInert pins the baseline contract: every hook declines, so
// the engine's behavior cannot depend on the seam being consulted.
func TestGenimaIsInert(t *testing.T) {
	p := MustNew(ProtoGenima)
	if p.Merge() {
		t.Error("genima runs a merge lane")
	}
	if p.MergeDiff(1, 2, 0, 128) {
		t.Error("genima merged a diff")
	}
	if srv := p.LockAcquire(1, 0, 1); srv != -1 {
		t.Errorf("genima delegated a lock to node %d", srv)
	}
}

// TestCommutativeSharingDetection: a page becomes a reduction target at
// the second distinct writer and stays one; single-writer pages never do.
func TestCommutativeSharingDetection(t *testing.T) {
	c := MustNew(ProtoCommutative).(*commutative)
	if c.MergeDiff(0, 7, 2, 64) {
		t.Error("first writer marked page 7 shared")
	}
	if c.MergeDiff(0, 7, 2, 64) {
		t.Error("repeated same-writer diffs marked page 7 shared")
	}
	if !c.MergeDiff(1, 7, 2, 64) {
		t.Error("second distinct writer did not mark page 7 shared")
	}
	if !c.MergeDiff(0, 7, 2, 64) {
		t.Error("page 7 lost its reduction-target status")
	}
	if c.MergeDiff(3, 9, 2, 64) {
		t.Error("single-writer page 9 marked shared")
	}
	if got := c.SharedPages(); len(got) != 1 || got[0] != memsys.PageID(7) {
		t.Errorf("SharedPages() = %v, want [7]", got)
	}
}

// TestDelegateStickyServer: the first contended acquire fixes the server
// at the holder's node; later acquires reuse it regardless of holder.
func TestDelegateStickyServer(t *testing.T) {
	d := MustNew(ProtoDelegate).(*delegate)
	if srv := d.ServerOf(5); srv != -1 {
		t.Fatalf("uncontended lock has server %d", srv)
	}
	if srv := d.LockAcquire(5, -1, 2); srv != -1 {
		t.Fatalf("unknown holder delegated to node %d", srv)
	}
	if srv := d.LockAcquire(5, 3, 2); srv != 3 {
		t.Fatalf("first contended acquire chose server %d, want holder node 3", srv)
	}
	if srv := d.LockAcquire(5, 1, 0); srv != 3 {
		t.Fatalf("server moved to %d, want sticky 3", srv)
	}
	if srv := d.ServerOf(5); srv != 3 {
		t.Fatalf("ServerOf(5) = %d, want 3", srv)
	}
	// Independent locks get independent servers.
	if srv := d.LockAcquire(6, 1, 0); srv != 1 {
		t.Fatalf("lock 6 server %d, want 1", srv)
	}
}

// TestFreshInstancesPerRun: New must not share mutable state between
// instances — a run's sharing observations cannot leak into the next.
func TestFreshInstancesPerRun(t *testing.T) {
	a := MustNew(ProtoCommutative).(*commutative)
	a.MergeDiff(0, 7, 2, 64)
	a.MergeDiff(1, 7, 2, 64)
	b := MustNew(ProtoCommutative).(*commutative)
	if b.MergeDiff(2, 7, 2, 64) {
		t.Error("a fresh commutative instance inherited sharing state")
	}
	x := MustNew(ProtoDelegate).(*delegate)
	x.LockAcquire(5, 3, 2)
	if srv := MustNew(ProtoDelegate).(*delegate).ServerOf(5); srv != -1 {
		t.Errorf("a fresh delegate instance inherited server %d", srv)
	}
}
