package cables_test

import (
	"testing"

	cables "cables/internal/core"
	"cables/internal/fault"
	"cables/internal/memsys"
	"cables/internal/sim"
	"cables/internal/stats"
)

func newFaultRT(maxNodes int, plan string, seed uint64) (*cables.Runtime, *fault.Injector) {
	inj := fault.New(fault.MustParsePlan(plan), seed)
	rt := cables.New(cables.Config{
		MaxNodes:       maxNodes,
		ProcsPerNode:   2,
		ThreadsPerNode: 1, // force workers onto fresh nodes
		ArenaBytes:     64 << 20,
		Fault:          inj,
	})
	rt.Start()
	return rt, inj
}

// fnvNode mirrors genima's barrier-manager placement hash so the test can
// pick a barrier name managed on a specific node.
func fnvNode(name string, nodes int) int {
	h := uint64(14695981039346656037)
	for _, c := range []byte(name) {
		h = (h ^ uint64(c)) * 1099511628211
	}
	return int(h % uint64(nodes))
}

// TestDetachRehomesPagesLocksAndBarriers is the §2.2-style decommission
// scenario: a worker on node 1 first-touches pages, holds a lock and leaves;
// the fault plan then detaches node 1.  Every piece of protocol state homed
// there must re-home on demand — with the data intact — and no new thread
// may land on the dead node.
func TestDetachRehomesPagesLocksAndBarriers(t *testing.T) {
	rt, inj := newFaultRT(2, "detach:node=1,at=5s", 1)
	main := rt.Main()
	acc := rt.Acc()
	ctr := rt.Cluster().Ctr

	a, err := rt.Mem().Malloc(main.Task, 64<<10)
	if err != nil {
		t.Fatalf("malloc: %v", err)
	}
	mx := rt.NewMutex(main.Task)

	// The worker lands on node 1 (ThreadsPerNode=1 fills node 0 with main),
	// first-touches all 16 pages of the unit, and last-holds the lock.  Node
	// attach costs ~3.69s of virtual time, so all of this happens before the
	// detach instant at 5s.
	worker := rt.Create(main.Task, func(th *cables.Thread) {
		if th.Task.NodeID != 1 {
			t.Errorf("worker placed on node %d, want 1", th.Task.NodeID)
		}
		for p := 0; p < 16; p++ {
			acc.WriteI64(th.Task, a+memsys.Addr(p*memsys.PageSize), int64(100+p))
		}
		mx.Lock(th.Task)
		mx.Unlock(th.Task)
	})
	rt.Join(main.Task, worker)

	sp := rt.Protocol().Space()
	if home := sp.Home(sp.PageOf(a)); home != 1 {
		t.Fatalf("pages homed on node %d before detach, want 1", home)
	}

	// Cross the detach instant on the main thread's clock.
	if main.Task.Now() >= 5*sim.Second {
		t.Fatalf("main already past the detach instant at %v; test premise broken", main.Task.Now())
	}
	main.Task.Charge(sim.CatCompute, 5*sim.Second-main.Task.Now()+sim.Millisecond)

	// Reading the pages from node 0 must adopt them (home moves off the dead
	// node) and the values written on node 1 must survive.
	for p := 0; p < 16; p++ {
		if got := acc.ReadI64(main.Task, a+memsys.Addr(p*memsys.PageSize)); got != int64(100+p) {
			t.Errorf("page %d: got %d, want %d (data lost in re-home)", p, got, 100+p)
		}
	}
	if home := sp.Home(sp.PageOf(a)); home != 0 {
		t.Errorf("pages still homed on detached node (home=%d)", home)
	}
	if got := ctr.Load(stats.EvPageRehomes); got == 0 {
		t.Error("no page re-homes counted")
	}

	// The lock was last held on node 1: the next acquire pulls its state over.
	mx.Lock(main.Task)
	mx.Unlock(main.Task)
	if got := ctr.Load(stats.EvLockRehomes); got != 1 {
		t.Errorf("lock re-homes: %d, want 1", got)
	}

	// A barrier whose arrival counter is managed on node 1 re-homes to the
	// master at the next wait.
	name := "b0"
	for i := 0; fnvNode(name, 2) != 1; i++ {
		name = string(rune('a'+i)) + "bar"
	}
	rt.Barrier(main.Task, name, 1)
	if got := ctr.Load(stats.EvBarrierRehomes); got != 1 {
		t.Errorf("barrier re-homes: %d, want 1", got)
	}

	if got := ctr.Load(stats.EvNodeDetaches); got != 1 {
		t.Errorf("node detaches: %d, want 1", got)
	}
	if inj.Injected() == 0 {
		t.Error("injector saw no injections")
	}

	// New threads must avoid the dead node: with node 1 gone, placement
	// overloads the master instead of re-attaching the detached node.
	late := rt.Create(main.Task, func(th *cables.Thread) {
		if th.Task.NodeID != 0 {
			t.Errorf("post-detach thread on node %d, want 0 (master)", th.Task.NodeID)
		}
	})
	rt.Join(main.Task, late)
	if got := rt.AttachedNodes(); got != 1 {
		t.Errorf("attached nodes after detach: %d, want 1", got)
	}
}

// TestAttachDelayCharged checks that an attach rule stretches exactly the
// attaching thread's clock by the plan's delay, and is counted.
func TestAttachDelayCharged(t *testing.T) {
	base := cables.New(cables.Config{
		MaxNodes: 2, ProcsPerNode: 2, ThreadsPerNode: 1, ArenaBytes: 64 << 20,
	})
	base.Start()
	worker := base.Create(base.Main().Task, func(th *cables.Thread) {})
	base.Join(base.Main().Task, worker)
	baseNow := base.Main().Task.Now()

	rt, inj := newFaultRT(2, "attach:node=1,delay=500ms", 1)
	worker = rt.Create(rt.Main().Task, func(th *cables.Thread) {})
	rt.Join(rt.Main().Task, worker)
	if got, want := rt.Main().Task.Now()-baseNow, 500*sim.Millisecond; got != want {
		t.Errorf("attach delay stretched the run by %v, want exactly %v", got, want)
	}
	if rt.Cluster().Ctr.Load(stats.EvAttachDelays) != 1 {
		t.Error("attach delay not counted")
	}
	if inj.Injected() != 1 {
		t.Errorf("injected: %d, want 1", inj.Injected())
	}
}

// TestHomePlacementAvoidsDetachedNode checks first-touch placement: a unit
// first touched after the owner-to-be has detached homes on the master.
func TestHomePlacementAvoidsDetachedNode(t *testing.T) {
	rt, _ := newFaultRT(2, "detach:node=1,at=4s", 1)
	main := rt.Main()
	acc := rt.Acc()
	a, err := rt.Mem().Malloc(main.Task, 128<<10) // two map units
	if err != nil {
		t.Fatalf("malloc: %v", err)
	}
	// Worker attaches node 1 (~3.69s) then idles past the detach instant and
	// only then first-touches its unit: placement must skip its own dead node.
	worker := rt.Create(main.Task, func(th *cables.Thread) {
		th.Task.Charge(sim.CatCompute, 4*sim.Second)
		acc.WriteI64(th.Task, a+64<<10, 7)
	})
	rt.Join(main.Task, worker)
	sp := rt.Protocol().Space()
	if home := sp.Home(sp.PageOf(a + 64<<10)); home != 0 {
		t.Errorf("first touch on a detached node homed the unit on node %d, want master", home)
	}
	if got := acc.ReadI64(main.Task, a+64<<10); got != 7 {
		t.Errorf("value: %d, want 7", got)
	}
}
