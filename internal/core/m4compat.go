package cables

import (
	"fmt"
	"sync"

	"cables/internal/apps/appapi"
	"cables/internal/fault"
	"cables/internal/memsys"
	"cables/internal/nodeos"
	"cables/internal/sim"
	"cables/internal/wire"
)

// M4Runtime adapts CableS to the appapi.Runtime interface: it is the
// paper's "implementation of the M4 macros for our pthreads system" used to
// run the SPLASH-2 applications on CableS (Figure 5's dashed lines).
// Workers are pthreads; nodes attach dynamically as threads are created;
// BARRIER maps to the pthread_barrier extension; G_MALLOC maps to the
// dynamic shared-memory allocator with map-unit first-touch placement.
type M4Runtime struct {
	rt    *Runtime
	procs int

	mu      sync.Mutex
	threads map[int]*Thread
	nextID  int
	mutexes map[int]*Mutex
}

// M4Config shapes an M4-on-CableS run.
type M4Config struct {
	Procs        int
	ProcsPerNode int
	ArenaBytes   int64
	Costs        *sim.Costs
	// Placement optionally overrides the allocator's home policy.
	Placement string
	// Fault optionally injects deterministic faults (see internal/fault).
	Fault *fault.Injector
	// Wire selects the wire plane's opt-in modes.
	Wire wire.Options
	// Protocol names the coherence policy (coherence.Names); empty
	// selects the process default.
	Protocol string
	// Sched names the thread-manager backend (sim.SchedulerNames); empty
	// selects the process default (CABLES_SCHED / `cablesim -sched`).
	Sched string
}

// NewM4 builds the CableS backend for a P-processor run.
func NewM4(cfg M4Config) *M4Runtime {
	if cfg.Procs <= 0 {
		panic(fmt.Sprintf("cables: invalid processor count %d", cfg.Procs))
	}
	if cfg.ProcsPerNode <= 0 {
		cfg.ProcsPerNode = 2
	}
	nodes := (cfg.Procs + cfg.ProcsPerNode - 1) / cfg.ProcsPerNode
	rt := New(Config{
		MaxNodes:        nodes,
		ProcsPerNode:    cfg.ProcsPerNode,
		ArenaBytes:      cfg.ArenaBytes,
		Costs:           cfg.Costs,
		Placement:       cfg.Placement,
		CoordinatorMain: true,
		Fault:           cfg.Fault,
		Wire:            cfg.Wire,
		Sched:           cfg.Sched,
		Protocol:        cfg.Protocol,
	})
	rt.Start()
	return &M4Runtime{
		rt:      rt,
		procs:   cfg.Procs,
		threads: make(map[int]*Thread),
		mutexes: make(map[int]*Mutex),
	}
}

// BackendName implements appapi.Name.
func (m *M4Runtime) BackendName() string { return "cables" }

// Runtime exposes the underlying CableS runtime.
func (m *M4Runtime) Runtime() *Runtime { return m.rt }

// Cluster implements appapi.Runtime.
func (m *M4Runtime) Cluster() *nodeos.Cluster { return m.rt.cl }

// Main implements appapi.Runtime.
func (m *M4Runtime) Main() *sim.Task { return m.rt.main.Task }

// Procs implements appapi.Runtime.
func (m *M4Runtime) Procs() int { return m.procs }

// Acc implements appapi.Runtime.
func (m *M4Runtime) Acc() *memsys.Accessor { return m.rt.Acc() }

// Spawn implements appapi.Runtime (the CREATE macro via pthread_create).
func (m *M4Runtime) Spawn(parent *sim.Task, fn func(t *sim.Task)) int {
	th := m.rt.Create(parent, func(th *Thread) { fn(th.Task) })
	m.mu.Lock()
	m.nextID++
	id := m.nextID
	m.threads[id] = th
	m.mu.Unlock()
	return id
}

// Join implements appapi.Runtime (WAIT_FOR_END via pthread_join).
func (m *M4Runtime) Join(parent *sim.Task, id int) {
	m.mu.Lock()
	th, ok := m.threads[id]
	m.mu.Unlock()
	if !ok {
		panic(fmt.Sprintf("cables: join of unknown worker %d", id))
	}
	m.rt.Join(parent, th)
}

func (m *M4Runtime) mutex(t *sim.Task, id int) *Mutex {
	m.mu.Lock()
	defer m.mu.Unlock()
	mx, ok := m.mutexes[id]
	if !ok {
		mx = m.rt.NewMutex(t)
		m.mutexes[id] = mx
	}
	return mx
}

// Lock implements appapi.Runtime (LOCK via pthread_mutex_lock).
func (m *M4Runtime) Lock(t *sim.Task, id int) { m.mutex(t, id).Lock(t) }

// Unlock implements appapi.Runtime (UNLOCK via pthread_mutex_unlock).
func (m *M4Runtime) Unlock(t *sim.Task, id int) { m.mutex(t, id).Unlock(t) }

// Barrier implements appapi.Runtime (BARRIER via the pthread_barrier
// extension).
func (m *M4Runtime) Barrier(t *sim.Task, name string, parties int) {
	m.rt.Barrier(t, name, parties)
}

// Malloc implements appapi.Runtime (G_MALLOC via the dynamic allocator).
func (m *M4Runtime) Malloc(t *sim.Task, label string, size int64) (memsys.Addr, error) {
	return m.rt.mem.Malloc(t, size)
}

// Finish implements appapi.Runtime.
func (m *M4Runtime) Finish() sim.Time { return m.rt.End(m.rt.main.Task) }

var _ appapi.Runtime = (*M4Runtime)(nil)
