package cables

import (
	"sync"
	"sync/atomic"

	"cables/internal/memsys"
	"cables/internal/profile"
	"cables/internal/sim"
	"cables/internal/stats"
	"cables/internal/vmmc"
	"cables/internal/wire"
)

// MemManager implements CableS's dynamic global memory management (§2.1.3):
//
//   - a shared-heap allocator (malloc/free at any time during execution);
//   - first-touch home placement bound at the OS mapping granularity (64 KB
//     map units on WindowsNT) — the source of the paper's misplaced pages;
//   - the global segment directory, kept on the ACB master node, with the
//     owner-detect / claim cost model of Table 4;
//   - double virtual mappings: each node's home pages live in one contiguous
//     pinned protocol region registered as a single (growing) NIC region,
//     so the per-NIC static region count is O(nodes), not O(segments×nodes);
//   - the GLOBAL static-variable region, homed on the first node;
//   - a page migration mechanism (no policy, as in the paper).
//
// MemManager is also the protocol's Placement: page homes are resolved here.
type MemManager struct {
	rt *Runtime
	sp *memsys.Space

	unitShift uint // log2(map unit / page)
	unitHome  []atomic.Int32
	unitSeen  [][]atomic.Bool // [node][unit]: directory info cached?

	homeRegion []vmmc.RegionID

	allocMu    sync.Mutex
	allocs     map[memsys.Addr]int64
	freeList   []freeBlock
	globalBase memsys.Addr
	globalNext memsys.Addr
	globalEnd  memsys.Addr

	roundRobin bool
	rrNext     atomic.Int64

	// faultCount[unit][node] counts remote faults for the migration policy
	// extension (nil until EnableMigrationTracking).
	faultCount [][]atomic.Int64
}

type freeBlock struct {
	addr memsys.Addr
	size int64
}

func newMemManager(rt *Runtime) *MemManager {
	return &MemManager{
		rt:         rt,
		allocs:     make(map[memsys.Addr]int64),
		homeRegion: make([]vmmc.RegionID, rt.cfg.MaxNodes),
		roundRobin: rt.cfg.Placement == "roundrobin",
	}
}

// bind attaches the manager to the protocol's address space; called once
// from New after the protocol exists.
func (m *MemManager) bind(sp *memsys.Space) {
	m.sp = sp
	unitPages := m.rt.cl.Costs.MapGranularity / memsys.PageSize
	if unitPages < 1 {
		unitPages = 1
	}
	shift := uint(0)
	for 1<<shift < unitPages {
		shift++
	}
	m.unitShift = shift
	units := (sp.NumPages() + (1 << shift) - 1) >> shift
	m.unitHome = make([]atomic.Int32, units)
	for i := range m.unitHome {
		m.unitHome[i].Store(memsys.NoHome)
	}
	m.unitSeen = make([][]atomic.Bool, m.rt.cfg.MaxNodes)
	for n := range m.unitSeen {
		m.unitSeen[n] = make([]atomic.Bool, units)
	}
}

// UnitOf returns the map unit containing pid.
func (m *MemManager) UnitOf(pid memsys.PageID) int { return int(pid >> m.unitShift) }

// initNode sets up a node's NIC state when it is attached: one pinned,
// growable protocol region for its home pages; static import entries for
// every already-attached peer (and vice versa); and one dynamic registration
// covering the application view of the shared arena, managed on demand by
// the communication layer.
func (m *MemManager) initNode(t *sim.Task, node int) {
	nic := m.rt.cl.VMMC.NIC(node)
	id, err := nic.Register("cables.homepages", 0, true, false)
	if err != nil {
		panic("cables: home-region registration failed: " + err.Error())
	}
	m.homeRegion[node] = id
	if _, err := nic.Register("cables.appmap", m.sp.Size(), false, true); err != nil {
		panic("cables: dynamic app-map registration failed: " + err.Error())
	}
	a := m.rt.acb
	a.mu.Lock()
	for peer := 0; peer < m.rt.cfg.MaxNodes; peer++ {
		if peer == node || !a.attached[peer] {
			continue
		}
		_, err1 := nic.Register("cables.import", 0, false, false)
		_, err2 := m.rt.cl.VMMC.NIC(peer).Register("cables.import", 0, false, false)
		if err1 != nil || err2 != nil {
			a.mu.Unlock()
			panic("cables: import registration failed")
		}
	}
	a.mu.Unlock()
	if t != nil {
		m.rt.cl.Nodes[node].ChargeMapSegment(t)
	}
}

// initGlobalData reserves the GLOBAL static-variable region and homes it on
// the master node (the paper's _declspec(allocate("GLOBAL_DATA")) area).
func (m *MemManager) initGlobalData(t *sim.Task, size int64) {
	addr, err := m.sp.AllocSegment("GLOBAL_DATA", size, int64(m.rt.cl.Costs.MapGranularity))
	if err != nil {
		panic("cables: GLOBAL_DATA reservation failed: " + err.Error())
	}
	m.globalBase, m.globalNext = addr, addr
	m.globalEnd = addr + memsys.Addr(size)
	first := m.sp.PageOf(addr)
	last := m.sp.PageOf(addr + memsys.Addr(size) - 1)
	for u := m.UnitOf(first); u <= m.UnitOf(last); u++ {
		m.unitHome[u].Store(int32(m.rt.acb.masterNode))
	}
	if err := m.growHome(t, m.rt.acb.masterNode, int64(m.rt.cl.Costs.MapGranularity)*int64(m.UnitOf(last)-m.UnitOf(first)+1)); err != nil {
		panic("cables: GLOBAL_DATA pinning failed: " + err.Error())
	}
	m.rt.cl.Nodes[m.rt.acb.masterNode].ChargeMapSegment(t)
}

// GlobalVar carves a static global variable out of the GLOBAL_DATA region
// (what the GLOBAL type quantifier does at link time in the paper).
func (m *MemManager) GlobalVar(size int64) memsys.Addr {
	m.allocMu.Lock()
	defer m.allocMu.Unlock()
	addr := (m.globalNext + 63) &^ 63
	if addr+memsys.Addr(size) > m.globalEnd {
		panic("cables: GLOBAL_DATA region exhausted")
	}
	m.globalNext = addr + memsys.Addr(size)
	return addr
}

// growHome extends a node's pinned home-pages region by extra bytes on
// behalf of thread t.  Under fault injection the grow rides out transient
// NIC registration-memory exhaustion via VMMC's deregister/re-register
// recovery before the caller falls back to another home.
func (m *MemManager) growHome(t *sim.Task, node int, extra int64) error {
	if t != nil {
		return m.rt.cl.VMMC.GrowRecover(t, node, m.homeRegion[node], extra)
	}
	return m.rt.cl.VMMC.NIC(node).Grow(m.homeRegion[node], extra)
}

// HomeFor implements genima.Placement: resolve the home of a faulting page
// through the global directory, claiming the page's map unit by first touch
// when unowned.  This is where the 64 KB granularity binds placement.
func (m *MemManager) HomeFor(t *sim.Task, pid memsys.PageID) int {
	unit := m.UnitOf(pid)
	c := m.rt.cl.Costs
	node := t.MemNode()
	master := m.rt.acb.masterNode

	if h := m.unitHome[unit].Load(); h >= 0 {
		m.chargeDetect(t, unit)
		return int(h)
	}

	want := int32(node)
	if m.roundRobin {
		want = int32(m.rrNext.Add(1)-1) % int32(m.rt.cfg.MaxNodes)
	}
	// Never place a new home on a node a fault plan has detached: the unit
	// falls through to the master, which can always host it.
	if m.rt.cl.Fault.Detached(int(want), t.Now()) {
		want = int32(master)
	}
	if m.unitHome[unit].CompareAndSwap(memsys.NoHome, want) {
		// This touch claimed the unit: segment migration (first time).
		unitBytes := int64(memsys.PageSize) << m.unitShift
		if err := m.growHome(t, int(want), unitBytes); err != nil {
			// Pinned/registered limit on the desired home: fall back to the
			// master node's region (placement degrades, execution survives).
			if err2 := m.growHome(t, master, unitBytes); err2 != nil {
				panic("cables: no node can host home pages: " + err.Error())
			}
			m.unitHome[unit].Store(int32(master))
			want = int32(master)
		}
		if node == master {
			t.Charge(sim.CatLocal, c.SegMigrateLocal)
			t.Charge(sim.CatLocalOS, c.SegMigrateLocalOS)
		} else {
			t.Charge(sim.CatLocal, c.SegMigrateLocal+3*sim.Microsecond)
			t.Charge(sim.CatLocalOS, c.SegMigrateLocalOS-2*sim.Microsecond)
			m.rt.cl.Wire.Do(t, wire.Op{Kind: wire.KindSegMigrate, Dst: master, Arg: uint64(unit)})
		}
		m.unitSeen[node][unit].Store(true)
		m.rt.cl.Ctr.Add(node, stats.EvSegMigrations, 1)
		return int(want)
	}
	m.chargeDetect(t, unit)
	return int(m.unitHome[unit].Load())
}

// chargeDetect applies the owner-detect cost model: free when the directory
// entry is cached locally or the caller is the ACB owner, one directory
// fetch otherwise.
func (m *MemManager) chargeDetect(t *sim.Task, unit int) {
	c := m.rt.cl.Costs
	node := t.MemNode()
	t.Charge(sim.CatLocal, c.SegDetectLocal)
	if !m.unitSeen[node][unit].Load() {
		m.unitSeen[node][unit].Store(true)
		if node != m.rt.acb.masterNode {
			m.rt.cl.Wire.Do(t, wire.Op{Kind: wire.KindSegDetect, Dst: m.rt.acb.masterNode, Arg: uint64(unit)})
		}
	}
	m.rt.cl.Ctr.Add(node, stats.EvOwnerDetects, 1)
}

// Malloc allocates global shared memory dynamically (any time, any thread).
func (m *MemManager) Malloc(t *sim.Task, size int64) (memsys.Addr, error) {
	if size <= 0 {
		return 0, errf("cables: malloc of %d bytes", size)
	}
	m.rt.chargeAdmin(t)
	m.allocMu.Lock()
	defer m.allocMu.Unlock()
	size = (size + 63) &^ 63
	// First-fit over the free list.
	for i, fb := range m.freeList {
		if fb.size >= size {
			m.allocs[fb.addr] = size
			if fb.size == size {
				m.freeList = append(m.freeList[:i], m.freeList[i+1:]...)
			} else {
				m.freeList[i] = freeBlock{addr: fb.addr + memsys.Addr(size), size: fb.size - size}
			}
			m.rt.cl.Ctr.Add(t.NodeID, stats.EvSharedAllocated, size)
			return fb.addr, nil
		}
	}
	// Large allocations come back map-unit aligned, mirroring VirtualAlloc's
	// 64 KB-aligned reservations on WindowsNT.
	align := int64(64)
	if size >= int64(m.rt.cl.Costs.MapGranularity) {
		align = int64(m.rt.cl.Costs.MapGranularity)
	}
	addr, err := m.sp.AllocSegment("cables.malloc", size, align)
	if err != nil {
		return 0, err
	}
	m.allocs[addr] = size
	m.rt.cl.Ctr.Add(t.NodeID, stats.EvSharedAllocated, size)
	return addr, nil
}

// Free returns a block to the shared heap (deallocation during execution,
// which the base system's template forbids).
func (m *MemManager) Free(t *sim.Task, addr memsys.Addr) error {
	m.rt.chargeAdmin(t)
	m.allocMu.Lock()
	defer m.allocMu.Unlock()
	size, ok := m.allocs[addr]
	if !ok {
		return errf("cables: free of unallocated address %#x", uint64(addr))
	}
	delete(m.allocs, addr)
	m.freeList = append(m.freeList, freeBlock{addr: addr, size: size})
	return nil
}

// MigratePage moves the primary copy of pid to dst — the migration
// *mechanism* of §2.1.3 (CableS provides no policy; callers must quiesce
// writers to the page, e.g. migrate between phases at a barrier).
func (m *MemManager) MigratePage(t *sim.Task, pid memsys.PageID, dst int) {
	src := m.sp.Home(pid)
	if src == dst || src < 0 {
		return
	}
	t.OpenSpan(uint8(profile.SpanMigrate), uint64(pid))
	defer t.CloseSpan()
	sc := m.sp.Copy(src, pid)
	dc := m.sp.Copy(dst, pid)
	sc.Mu.Lock()
	dc.Mu.Lock()
	if sc.Data() != nil {
		// The new home aliases the old home's frame instead of copying it
		// (writers are quiesced per the contract above); the frame crosses
		// nodes, so AdoptFrame pins it out of the page pool.
		dc.AdoptFrame(m.sp, sc)
	} else {
		dc.EnsureFrame()
	}
	dc.SetValid(true)
	sc.SetValid(false)
	m.sp.SetHome(pid, dst)
	dc.Mu.Unlock()
	sc.Mu.Unlock()
	// The pull from the old home goes through the wire plane as a migrate
	// op, so the move shows up in the trace (`migrate`, page id) and the
	// pageMigrations counter instead of masquerading as a plain fetch.
	m.rt.cl.Wire.Do(t, wire.Op{Kind: wire.KindMigrate, Dst: src, Size: memsys.PageSize, Arg: uint64(pid)})
	m.rt.cl.Nodes[dst].ChargeMapSegment(t)
	m.rt.proto.PublishInvalidate(dst, pid)
}
