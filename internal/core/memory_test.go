package cables_test

import (
	"testing"
	"testing/quick"

	cables "cables/internal/core"
	"cables/internal/memsys"
	"cables/internal/sim"
	"cables/internal/stats"
	"cables/internal/trace"
	"cables/internal/wire"
)

// TestMallocAlignment: large allocations come back map-unit aligned
// (VirtualAlloc behavior), small ones 64-byte aligned.
func TestMallocAlignment(t *testing.T) {
	rt := newRT(2)
	main := rt.Main().Task
	mem := rt.Mem()
	small, err := mem.Malloc(main, 100)
	if err != nil {
		t.Fatal(err)
	}
	if uint64(small)%64 != 0 {
		t.Errorf("small allocation misaligned: %#x", uint64(small))
	}
	big, err := mem.Malloc(main, 128<<10)
	if err != nil {
		t.Fatal(err)
	}
	if uint64(big)%(64<<10) != 0 {
		t.Errorf("large allocation not unit-aligned: %#x", uint64(big))
	}
}

// TestMallocNonOverlap is a property test over mixed malloc/free sequences.
func TestMallocNonOverlap(t *testing.T) {
	rt := newRT(2)
	main := rt.Main().Task
	mem := rt.Mem()
	type alloc struct {
		a    memsys.Addr
		size int64
	}
	var live []alloc
	f := func(raw uint16, free bool) bool {
		if free && len(live) > 0 {
			if err := mem.Free(main, live[0].a); err != nil {
				return false
			}
			live = live[1:]
			return true
		}
		size := int64(raw%8192) + 1
		a, err := mem.Malloc(main, size)
		if err != nil {
			return true // arena exhausted is a clean failure
		}
		for _, o := range live {
			if a < o.a+memsys.Addr(o.size) && o.a < a+memsys.Addr(size) {
				return false
			}
		}
		live = append(live, alloc{a, size})
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestMallocErrors(t *testing.T) {
	rt := newRT(2)
	main := rt.Main().Task
	if _, err := rt.Mem().Malloc(main, 0); err == nil {
		t.Error("zero malloc accepted")
	}
	if _, err := rt.Mem().Malloc(main, -8); err == nil {
		t.Error("negative malloc accepted")
	}
	if err := rt.Mem().Free(main, memsys.Addr(0x123)); err == nil {
		t.Error("bogus free accepted")
	}
}

// TestGlobalVarExhaustion: the GLOBAL_DATA region is finite.
func TestGlobalVarExhaustion(t *testing.T) {
	rt := cables.New(cables.Config{MaxNodes: 2, ProcsPerNode: 2, GlobalDataBytes: 4096})
	rt.Start()
	mem := rt.Mem()
	for i := 0; i < 64; i++ {
		mem.GlobalVar(64)
	}
	defer func() {
		if recover() == nil {
			t.Error("no panic on exhaustion")
		}
	}()
	mem.GlobalVar(64)
}

// TestRoundRobinPlacement: the ablation policy spreads unit homes over
// nodes regardless of who touches first.
func TestRoundRobinPlacement(t *testing.T) {
	rt := cables.New(cables.Config{
		MaxNodes: 4, ProcsPerNode: 2, Placement: "roundrobin",
		PrestartNodes: 4, ArenaBytes: 64 << 20,
	})
	main := rt.Start()
	acc := rt.Acc()
	a, err := rt.Mem().Malloc(main.Task, 8*64<<10) // 8 map units
	if err != nil {
		t.Fatal(err)
	}
	homes := map[int]bool{}
	sp := rt.Protocol().Space()
	for u := 0; u < 8; u++ {
		addr := a + memsys.Addr(u*64<<10)
		acc.WriteI64(main.Task, addr, 1) // all touched by the main node
		homes[sp.Home(sp.PageOf(addr))] = true
	}
	if len(homes) < 3 {
		t.Errorf("round-robin used only %d nodes: %v", len(homes), homes)
	}
}

// TestFirstTouchPlacement: default policy homes units on the toucher.
func TestFirstTouchPlacement(t *testing.T) {
	rt := newRT(2)
	main := rt.Main()
	acc := rt.Acc()
	a, err := rt.Mem().Malloc(main.Task, 64<<10)
	if err != nil {
		t.Fatal(err)
	}
	acc.WriteI64(main.Task, a, 1)
	sp := rt.Protocol().Space()
	if home := sp.Home(sp.PageOf(a)); home != 0 {
		t.Errorf("first-touch home: %d", home)
	}
}

// TestMemManagerMigratePage: the migration mechanism moves the primary copy
// and keeps data intact for subsequent readers.
func TestMemManagerMigratePage(t *testing.T) {
	rt := newRT(2)
	main := rt.Main()
	acc := rt.Acc()
	mem := rt.Mem()
	a, err := mem.Malloc(main.Task, 8)
	if err != nil {
		t.Fatal(err)
	}
	acc.WriteI64(main.Task, a, 321)
	rt.Protocol().Flush(main.Task)
	sp := rt.Protocol().Space()
	pid := sp.PageOf(a)
	src := sp.Home(pid)
	dst := (src + 1) % 2
	mem.MigratePage(main.Task, pid, dst)
	if sp.Home(pid) != dst {
		t.Fatalf("home not moved: %d", sp.Home(pid))
	}

	th := rt.Create(main.Task, func(th *cables.Thread) {
		mxv := rt.NewMutex(th.Task)
		mxv.Lock(th.Task)
		mxv.Unlock(th.Task)
		if got := acc.ReadI64(th.Task, a); got != 321 {
			t.Errorf("post-migration read: %d", got)
		}
	})
	rt.Join(main.Task, th)
}

// TestAdminChargesDependOnNode: ACB requests are cheap on the master node,
// one round trip elsewhere.
func TestAdminChargesDependOnNode(t *testing.T) {
	rt := cables.New(cables.Config{MaxNodes: 2, ProcsPerNode: 2,
		ThreadsPerNode: 1, PrestartNodes: 2})
	main := rt.Start()
	before := main.Task.Now()
	rt.KeyCreate(main.Task)
	masterCost := main.Task.Now() - before

	var remoteCost sim.Time
	th := rt.Create(main.Task, func(th *cables.Thread) {
		b := th.Task.Now()
		rt.KeyCreate(th.Task)
		remoteCost = th.Task.Now() - b
	})
	rt.Join(main.Task, th)
	if masterCost >= remoteCost {
		t.Errorf("master admin %v should be cheaper than remote %v", masterCost, remoteCost)
	}
	if remoteCost != 20*sim.Microsecond {
		t.Errorf("remote admin: %v want 20us", remoteCost)
	}
}

// TestThreadSpecificData exercises pthread keys.
func TestThreadSpecificData(t *testing.T) {
	rt := newRT(2)
	main := rt.Main()
	key := rt.KeyCreate(main.Task)
	key2 := rt.KeyCreate(main.Task)
	if key == key2 {
		t.Fatal("keys collide")
	}
	results := make(chan int, 4)
	var ths []*cables.Thread
	for i := 0; i < 4; i++ {
		i := i
		ths = append(ths, rt.Create(main.Task, func(th *cables.Thread) {
			th.SetSpecific(key, i*10)
			if th.GetSpecific(key2) != nil {
				t.Error("unset key returned value")
			}
			results <- th.GetSpecific(key).(int)
		}))
	}
	for _, th := range ths {
		rt.Join(main.Task, th)
	}
	seen := map[int]bool{}
	for i := 0; i < 4; i++ {
		seen[<-results] = true
	}
	if len(seen) != 4 {
		t.Errorf("TSD values collided: %v", seen)
	}
}

// TestMigratePageTraced: the migration fetch rides the wire plane, so an
// attached trace ring sees both the `migrate` protocol event (Arg = page
// id) and the `wire.migrate` transfer, and the pageMigrations counter
// advances — this is what `cablesim counters -trace` renders.
func TestMigratePageTraced(t *testing.T) {
	rt := newRT(2)
	main := rt.Main()
	acc := rt.Acc()
	mem := rt.Mem()
	a, err := mem.Malloc(main.Task, 8)
	if err != nil {
		t.Fatal(err)
	}
	acc.WriteI64(main.Task, a, 7)
	rt.Protocol().Flush(main.Task)
	sp := rt.Protocol().Space()
	pid := sp.PageOf(a)

	ring := trace.NewRing(64)
	rt.Cluster().Wire.BindTrace(ring)
	before := rt.Cluster().Ctr.Load(stats.EvPageMigrations)
	home := sp.Home(pid)
	// First hop: the old home is the caller's node, so the copy is local.
	// The hop back pulls the page from the remote home — a wire transfer.
	mem.MigratePage(main.Task, pid, (home+1)%2)
	mem.MigratePage(main.Task, pid, home)

	if got := rt.Cluster().Ctr.Load(stats.EvPageMigrations) - before; got != 2 {
		t.Errorf("pageMigrations advanced by %d, want 2", got)
	}
	var sawMigrate, sawWire bool
	for _, e := range ring.Events() {
		if e.Kind == trace.KindMigrate && e.Arg == uint64(pid) {
			sawMigrate = true
		}
		if e.Kind == wire.KindMigrate.TraceKind() {
			sawWire = true
		}
	}
	if !sawMigrate {
		t.Error("no migrate trace event with the page id")
	}
	if !sawWire {
		t.Error("no wire.migrate transfer event")
	}
}
