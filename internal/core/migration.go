package cables

import (
	"sync/atomic"

	"cables/internal/memsys"
	"cables/internal/sim"
	"cables/internal/stats"
)

// Migration policy.  The paper implements the *mechanisms* for home-page
// migration but "does not yet provide a policy" (§2.1.3, Table 2).  This
// file supplies the natural extension the paper points at: count
// remotely-served faults per map unit and, at an application-chosen
// quiescent point, re-home the units that one node keeps missing on.

// EnableMigrationTracking starts counting remote faults per (map unit,
// faulting node); required before MigrateHotUnits.
func (m *MemManager) EnableMigrationTracking() {
	if m.faultCount != nil {
		return
	}
	units := len(m.unitHome)
	nodes := m.rt.cfg.MaxNodes
	m.faultCount = make([][]atomic.Int64, units)
	for u := range m.faultCount {
		m.faultCount[u] = make([]atomic.Int64, nodes)
	}
	m.rt.proto.OnRemoteFault = func(node int, pid memsys.PageID) {
		m.faultCount[m.UnitOf(pid)][node].Add(1)
	}
}

// MigrateHotUnits scans the fault counters and re-homes every map unit on
// which a single remote node has taken at least threshold faults since the
// last scan.  The caller must be at a quiescent point for the affected data
// (e.g. a barrier between phases) — the same contract the paper's migration
// mechanism carries.  Returns the number of units migrated.
func (m *MemManager) MigrateHotUnits(t *sim.Task, threshold int64) int {
	if m.faultCount == nil || threshold <= 0 {
		return 0
	}
	migrated := 0
	unitPages := memsys.PageID(1) << m.unitShift
	for u := range m.faultCount {
		home := m.unitHome[u].Load()
		if home < 0 {
			continue
		}
		best, bestN := int64(0), -1
		for n := range m.faultCount[u] {
			v := m.faultCount[u][n].Swap(0)
			if v > best {
				best, bestN = v, n
			}
		}
		if bestN < 0 || int32(bestN) == home || best < threshold {
			continue
		}
		// Re-home every placed page of the unit to the hot node.
		first := memsys.PageID(u) << m.unitShift
		for pid := first; pid < first+unitPages && int(pid) < m.sp.NumPages(); pid++ {
			if m.sp.Home(pid) == int(home) {
				m.MigratePage(t, pid, bestN)
			}
		}
		m.unitHome[u].Store(int32(bestN))
		migrated++
		m.rt.cl.Ctr.Add(t.NodeID, stats.EvSegMigrations, 1)
	}
	return migrated
}
