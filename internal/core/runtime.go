// Package cables implements the paper's contribution: CableS (Cluster
// enabled threadS), a pthreads programming interface for SVM clusters with
//
//   - dynamic thread management: threads may be created and destroyed at any
//     time; nodes are attached to the application on demand and detached when
//     empty (§2.2);
//   - dynamic global memory management: shared memory can be allocated and
//     freed throughout execution, with first-touch home placement at the
//     OS mapping granularity, a global segment directory kept in the ACB,
//     migration mechanisms, and double virtual mappings that keep NIC
//     registration to one region per node (§2.1.3);
//   - modern synchronization: mutexes on system locks, condition variables,
//     and a pthread_barrier extension (§2.3);
//   - transparent global static variables (the GLOBAL quantifier region).
//
// The coherence machinery underneath is the same home-based release-
// consistent protocol as the base system (package genima); CableS replaces
// its placement, registration and management layers.
package cables

import (
	"fmt"
	"sync"

	"cables/internal/fault"
	"cables/internal/genima"
	"cables/internal/memsys"
	"cables/internal/nodeos"
	"cables/internal/profile"
	"cables/internal/sim"
	"cables/internal/stats"
	"cables/internal/wire"
)

// Config selects the cluster shape and CableS policies.
type Config struct {
	// MaxNodes is the cluster size available for on-demand attach.
	MaxNodes int
	// ProcsPerNode is the SMP width (paper: 2).
	ProcsPerNode int
	// ThreadsPerNode is the maximum threads placed on a node before a new
	// node is attached (paper: "when threads exceed a maximum number, a new
	// node is attached"); defaults to ProcsPerNode.
	ThreadsPerNode int
	// ArenaBytes is the shared arena size (default 256 MB).
	ArenaBytes int64
	// GlobalDataBytes reserves the GLOBAL static-variable region (default 1 MB).
	GlobalDataBytes int64
	// Costs optionally overrides the cost table.
	Costs *sim.Costs
	// PrestartNodes attaches this many nodes at Start (default 1: only the
	// master; others attach on demand).
	PrestartNodes int
	// Placement overrides home placement: "firsttouch" (default) or
	// "roundrobin" (ablation).
	Placement string
	// CoordinatorMain marks the main thread as a pure coordinator that
	// spends the run blocked in joins: it does not occupy a scheduling slot
	// when placing new threads (the SPLASH CREATE/WAIT_FOR_END template).
	CoordinatorMain bool
	// Fault optionally injects deterministic faults (transient NIC
	// failures, registration pressure, node lifecycle events); nil keeps
	// every charge bit-identical to the fault-free build.
	Fault *fault.Injector
	// Wire selects the wire plane's opt-in modes (contended sync, release
	// coalescing); the zero value reproduces the default schedule.
	Wire wire.Options
	// Sched names the thread-manager backend (sim.SchedulerNames); empty
	// selects the process default (CABLES_SCHED / `cablesim -sched`).
	Sched string
	// Protocol names the coherence policy (coherence.Names); empty selects
	// the process default (CABLES_PROTOCOL / `cablesim -protocol`).
	Protocol string
}

// Runtime is one CableS application instance.
type Runtime struct {
	cl    *nodeos.Cluster
	proto *genima.Protocol
	cfg   Config
	mem   *MemManager
	acb   *ACB
	main  *Thread

	// Stats, when set, receives per-operation cost records from the
	// library itself (used by the Table 4 microbenchmarks to report API
	// overheads separated from blocking time).
	Stats *stats.OpStats
}

// Thread is a pthread: a simulated task plus CableS bookkeeping.
type Thread struct {
	// Task is the simulated execution context; pass it to memory accessors.
	Task *sim.Task
	// TID is the application-wide pthread identifier.
	TID int

	rt   *Runtime
	done chan struct{}
	end  sim.Time
	ret  any

	cancelCh   chan struct{}
	cancelOnce sync.Once

	keyMu sync.Mutex
	keys  map[int]any
}

// ACB is the application control block: the per-application global state
// kept on the master node and updated via direct remote operations (§2.2).
type ACB struct {
	masterNode int

	mu         sync.Mutex
	threads    map[int]*Thread
	liveOnNode []int
	attached   []bool
	numAttach  int
	nextTID    int
	rrNode     int
	endMax     sim.Time
	nextLockID int
	nextCondID int
	nextKey    int
}

// New creates a CableS runtime.  Call Start to obtain the main thread
// (the pthread_start() of the paper's programming model, Figure 4).
func New(cfg Config) *Runtime {
	if cfg.MaxNodes <= 0 {
		cfg.MaxNodes = 16
	}
	if cfg.ProcsPerNode <= 0 {
		cfg.ProcsPerNode = 2
	}
	if cfg.ThreadsPerNode <= 0 {
		cfg.ThreadsPerNode = cfg.ProcsPerNode
	}
	if cfg.ArenaBytes <= 0 {
		cfg.ArenaBytes = 256 << 20
	}
	if cfg.GlobalDataBytes <= 0 {
		cfg.GlobalDataBytes = 1 << 20
	}
	if cfg.PrestartNodes <= 0 {
		cfg.PrestartNodes = 1
	}
	cl := nodeos.NewCluster(nodeos.Config{
		NumNodes:     cfg.MaxNodes,
		ProcsPerNode: cfg.ProcsPerNode,
		Costs:        cfg.Costs,
		Fault:        cfg.Fault,
		Wire:         cfg.Wire,
		Sched:        cfg.Sched,
	})
	rt := &Runtime{cl: cl, cfg: cfg}
	rt.acb = &ACB{
		masterNode: 0,
		threads:    make(map[int]*Thread),
		liveOnNode: make([]int, cfg.MaxNodes),
		attached:   make([]bool, cfg.MaxNodes),
	}
	rt.mem = newMemManager(rt)
	rt.proto = genima.New(cl, cfg.ArenaBytes, rt.mem)
	if err := rt.proto.UseProtocol(cfg.Protocol); err != nil {
		panic(fmt.Sprintf("cables: %v", err))
	}
	rt.mem.bind(rt.proto.Space())
	return rt
}

// Cluster exposes the simulated machine.
func (rt *Runtime) Cluster() *nodeos.Cluster { return rt.cl }

// Protocol exposes the underlying SVM protocol (statistics, tests).
func (rt *Runtime) Protocol() *genima.Protocol { return rt.proto }

// Acc returns the shared-memory accessor.
func (rt *Runtime) Acc() *memsys.Accessor { return rt.proto.Accessor() }

// Mem returns the dynamic memory manager.
func (rt *Runtime) Mem() *MemManager { return rt.mem }

// Start initializes the application on the master node and returns the main
// thread (pthread_start()).
func (rt *Runtime) Start() *Thread {
	if rt.main != nil {
		return rt.main
	}
	rt.acb.mu.Lock()
	rt.acb.attached[0] = true
	rt.acb.numAttach = 1
	rt.acb.nextTID = 1
	rt.acb.mu.Unlock()
	rt.cl.Nodes[0].SetAttached(true)

	task := rt.cl.NewTask(0, 0)
	rt.main = &Thread{
		Task: task, TID: 0, rt: rt,
		done: make(chan struct{}), cancelCh: make(chan struct{}),
	}
	rt.acb.mu.Lock()
	rt.acb.threads[0] = rt.main
	if !rt.cfg.CoordinatorMain {
		rt.acb.liveOnNode[0]++
	}
	rt.acb.mu.Unlock()
	rt.cl.Nodes[0].ThreadStarted()

	rt.mem.initNode(task, 0)
	rt.mem.initGlobalData(task, rt.cfg.GlobalDataBytes)
	for n := 1; n < rt.cfg.PrestartNodes && n < rt.cfg.MaxNodes; n++ {
		rt.attachNode(task, n)
	}
	return rt.main
}

// Main returns the main thread (valid after Start).
func (rt *Runtime) Main() *Thread { return rt.main }

// chargeAdmin charges an ACB administration request: cheap on the master
// node, one round trip otherwise (Table 4, "administration request").
func (rt *Runtime) chargeAdmin(t *sim.Task) {
	c := rt.cl.Costs
	t.Charge(sim.CatLocal, c.AdminReqLocal)
	if t.NodeID != rt.acb.masterNode {
		rt.cl.Wire.Do(t, wire.Op{Kind: wire.KindAdminReq, Dst: rt.acb.masterNode})
	}
	rt.cl.Ctr.Add(t.NodeID, stats.EvAdminRequests, 1)
}

// attachNode introduces node into the application: the master creates a
// remote process, the new node initializes and maps all existing global
// memory, and the master broadcasts its existence (§2.2 case ii).
// Caller must NOT hold acb.mu.
func (rt *Runtime) attachNode(t *sim.Task, node int) {
	t.OpenSpan(uint8(profile.SpanAttach), uint64(node))
	defer t.CloseSpan()
	c := rt.cl.Costs
	// A fault plan may delay the node's boot; the attaching thread blocks
	// for the extra latency before the normal attach sequence begins.
	if d := rt.cl.Fault.AttachDelay(node, t.Now()); d > 0 {
		t.Charge(sim.CatWait, d)
	}
	// Charged sequential chain (sums to the observed 3690 ms total).
	t.Charge(sim.CatLocal, c.AttachLocal)
	t.Charge(sim.CatLocalOS, c.AttachLocalOS)
	rt.cl.Wire.Do(t, wire.Op{Kind: wire.KindAttach, Dst: node})
	t.Charge(sim.CatRemote, c.AttachRemote)
	// The remote process creation overlaps the above (paper: breakdowns "will
	// not exactly add up to the total"); attribute without advancing.
	t.Attribute(sim.CatRemoteOS, c.AttachRemoteOS)

	rt.mem.initNode(t, node)

	rt.acb.mu.Lock()
	rt.acb.attached[node] = true
	rt.acb.numAttach++
	rt.acb.mu.Unlock()
	rt.cl.Nodes[node].SetAttached(true)
	rt.cl.Ctr.Add(t.NodeID, stats.EvNodesAttached, 1)
}

// AttachNode explicitly attaches the next unattached node to the
// application (applications may also warm nodes up front; thread creation
// attaches nodes implicitly).  Returns the node id.
func (rt *Runtime) AttachNode(t *sim.Task) (int, error) {
	rt.acb.mu.Lock()
	node := -1
	for n := 0; n < rt.cfg.MaxNodes; n++ {
		if !rt.acb.attached[n] && !rt.cl.Fault.Detached(n, t.Now()) {
			node = n
			break
		}
	}
	rt.acb.mu.Unlock()
	if node < 0 {
		return -1, errf("cables: no unattached node available")
	}
	rt.attachNode(t, node)
	return node, nil
}

// pickNode chooses the node for a new thread at virtual instant now:
// round-robin over attached nodes, attaching a fresh node when all attached
// nodes are at the ThreadsPerNode limit.  Nodes a fault plan has detached by
// now are never chosen; their in-flight threads drain but no new work lands
// on them.  Returns the node and whether attach is required.
func (rt *Runtime) pickNode(now sim.Time) (node int, needAttach bool) {
	dead := func(n int) bool { return rt.cl.Fault.Detached(n, now) }
	a := rt.acb
	a.mu.Lock()
	defer a.mu.Unlock()
	live := 0
	for n := 0; n < rt.cfg.MaxNodes; n++ {
		if a.attached[n] {
			live += a.liveOnNode[n]
		}
	}
	if live+1 > a.numAttach*rt.cfg.ThreadsPerNode {
		for n := 0; n < rt.cfg.MaxNodes; n++ {
			if !a.attached[n] && !dead(n) {
				a.attached[n] = true // reserve; attach completes outside
				a.numAttach++
				a.liveOnNode[n]++
				return n, true
			}
		}
	}
	for i := 0; i < rt.cfg.MaxNodes; i++ {
		n := (a.rrNode + i) % rt.cfg.MaxNodes
		if a.attached[n] && !dead(n) && a.liveOnNode[n] < rt.cfg.ThreadsPerNode {
			a.rrNode = (n + 1) % rt.cfg.MaxNodes
			a.liveOnNode[n]++
			return n, false
		}
	}
	// Every attached node is full and no node is left: overload round-robin.
	// The master can always take overload, so this terminates even when a
	// fault plan has detached every other node.
	n := a.rrNode % rt.cfg.MaxNodes
	for !a.attached[n] || (dead(n) && n != a.masterNode) {
		n = (n + 1) % rt.cfg.MaxNodes
	}
	a.rrNode = (n + 1) % rt.cfg.MaxNodes
	a.liveOnNode[n]++
	return n, false
}

// Create starts a new pthread running fn (pthread_create).  Placement and
// costs follow §2.2: local create, remote create on an attached node, or
// node attach.
func (rt *Runtime) Create(parent *sim.Task, fn func(th *Thread)) *Thread {
	parent.CancelPoint()
	// Thread creation has release semantics: the parent's writes must be
	// visible to the child (POSIX 4.12).
	rt.proto.Flush(parent)
	c := rt.cl.Costs
	node, needAttach := rt.pickNode(parent.Now())
	parent.OpenSpan(uint8(profile.SpanCreate), uint64(node))
	defer parent.CloseSpan()
	if needAttach {
		rt.acb.mu.Lock()
		rt.acb.attached[node] = false // attachNode re-marks under its own charges
		rt.acb.numAttach--
		rt.acb.mu.Unlock()
		rt.attachNode(parent, node)
	}

	switch {
	case node == parent.NodeID:
		parent.Charge(sim.CatLocal, c.ThreadCreateLocal)
		parent.Charge(sim.CatLocalOS, c.OSThreadCreate)
	default:
		parent.Charge(sim.CatLocal, c.ThreadCreateReqLocal)
		parent.Charge(sim.CatRemote, c.ThreadCreateReqRemote)
		rt.cl.Wire.Do(parent, wire.Op{Kind: wire.KindThreadCreate, Dst: node})
		parent.Charge(sim.CatRemoteOS, c.OSRemoteThreadCreate)
	}

	a := rt.acb
	a.mu.Lock()
	tid := a.nextTID
	a.nextTID++
	th := &Thread{
		Task:     rt.cl.NewTask(node, parent.Now()),
		TID:      tid,
		rt:       rt,
		done:     make(chan struct{}),
		cancelCh: make(chan struct{}),
	}
	a.threads[tid] = th
	a.mu.Unlock()

	rt.cl.Ctr.Add(node, stats.EvThreadsCreated, 1)
	rt.cl.Nodes[node].ThreadStarted()
	rt.cl.Sched.Go(th.Task, func() { th.run(fn) })
	return th
}

// run executes the thread body, handling cancellation unwinds and exit
// bookkeeping (including node detach when a node empties, §2.2).
func (th *Thread) run(fn func(*Thread)) {
	defer func() {
		r := recover()
		if r != nil && r != sim.ErrCanceled {
			panic(r)
		}
		th.finish()
	}()
	th.rt.proto.ApplyAcquire(th.Task) // acquire the parent's pre-create writes
	fn(th)
}

func (th *Thread) finish() {
	rt := th.rt
	// Thread exit has release semantics: a joiner must see its writes.
	rt.proto.Flush(th.Task)
	node := th.Task.NodeID
	rt.cl.Nodes[node].ThreadStopped()
	a := rt.acb
	a.mu.Lock()
	a.liveOnNode[node]--
	if th.Task.Now() > a.endMax {
		a.endMax = th.Task.Now()
	}
	empty := a.liveOnNode[node] == 0 && node != a.masterNode
	if empty && a.attached[node] {
		// Dynamic detach: the node leaves the application when no threads
		// remain on it (mechanism per §2.2).
		a.attached[node] = false
		a.numAttach--
		rt.cl.Nodes[node].SetAttached(false)
	}
	a.mu.Unlock()
	th.end = th.Task.Now()
	close(th.done)
}

// Join blocks the caller until th finishes (pthread_join), merging clocks
// and reading completion state from the ACB.
func (rt *Runtime) Join(t *sim.Task, th *Thread) {
	t.CancelPoint()
	// The joining thread blocks in the OS and releases its processor (and
	// its scheduler slot: the joined thread may need it to finish).
	node := rt.cl.Nodes[t.NodeID]
	node.ThreadStopped()
	rt.cl.Sched.Block(t)
	<-th.done
	rt.cl.Sched.Unblock(t)
	node.ThreadStarted()
	rt.chargeAdmin(t)
	t.WaitUntil(th.end)
	rt.proto.ApplyAcquire(t) // join has acquire semantics
}

// Cancel requests cancellation of th (pthread_cancel); the thread unwinds
// at its next cancellation point.
func (rt *Runtime) Cancel(t *sim.Task, th *Thread) {
	rt.chargeAdmin(t)
	th.Task.Cancel()
	th.cancelOnce.Do(func() { close(th.cancelCh) })
}

// KeyCreate allocates a thread-specific-data key (pthread_key_create).
func (rt *Runtime) KeyCreate(t *sim.Task) int {
	rt.chargeAdmin(t)
	a := rt.acb
	a.mu.Lock()
	defer a.mu.Unlock()
	a.nextKey++
	return a.nextKey
}

// SetSpecific stores thread-specific data (pthread_setspecific).
func (th *Thread) SetSpecific(key int, v any) {
	th.keyMu.Lock()
	defer th.keyMu.Unlock()
	if th.keys == nil {
		th.keys = make(map[int]any)
	}
	th.keys[key] = v
}

// GetSpecific retrieves thread-specific data (pthread_getspecific).
func (th *Thread) GetSpecific(key int) any {
	th.keyMu.Lock()
	defer th.keyMu.Unlock()
	return th.keys[key]
}

// AttachedNodes reports how many nodes the application currently spans.
func (rt *Runtime) AttachedNodes() int {
	rt.acb.mu.Lock()
	defer rt.acb.mu.Unlock()
	return rt.acb.numAttach
}

// End declares the application over (pthread_end) and returns the virtual
// end time (max over all threads).
func (rt *Runtime) End(t *sim.Task) sim.Time {
	a := rt.acb
	a.mu.Lock()
	defer a.mu.Unlock()
	if t.Now() > a.endMax {
		a.endMax = t.Now()
	}
	return a.endMax
}

// newLockID allocates a cluster-wide lock identifier from the ACB.
func (rt *Runtime) newLockID() int {
	a := rt.acb
	a.mu.Lock()
	defer a.mu.Unlock()
	a.nextLockID++
	return a.nextLockID
}

// newCondID allocates a cluster-wide condition-variable identifier (used
// only to key the profiler's cond-wait spans; see Cond.id).
func (rt *Runtime) newCondID() int {
	a := rt.acb
	a.mu.Lock()
	defer a.mu.Unlock()
	a.nextCondID++
	return a.nextCondID
}

func errf(format string, args ...any) error { return fmt.Errorf(format, args...) }
