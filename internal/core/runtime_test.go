package cables_test

import (
	"sync"
	"testing"

	cables "cables/internal/core"
	"cables/internal/memsys"
	"cables/internal/sim"
	"cables/internal/stats"
)

func newRT(maxNodes int) *cables.Runtime {
	rt := cables.New(cables.Config{
		MaxNodes:     maxNodes,
		ProcsPerNode: 2,
		ArenaBytes:   64 << 20,
	})
	rt.Start()
	return rt
}

// TestDynamicNodeAttach checks that creating more threads than fit on the
// master node attaches new nodes on the fly, charging the attach cost.
func TestDynamicNodeAttach(t *testing.T) {
	rt := newRT(4)
	main := rt.Main()
	if got := rt.AttachedNodes(); got != 1 {
		t.Fatalf("attached at start: got %d want 1", got)
	}
	var wg sync.WaitGroup
	release := make(chan struct{})
	var threads []*cables.Thread
	for i := 0; i < 7; i++ { // main + 7 = 8 threads = 4 nodes x 2
		wg.Add(1)
		threads = append(threads, rt.Create(main.Task, func(th *cables.Thread) {
			wg.Done()
			<-release
		}))
	}
	wg.Wait()
	if got := rt.AttachedNodes(); got != 4 {
		t.Errorf("attached after creates: got %d want 4", got)
	}
	if rt.Cluster().Ctr.Load(stats.EvNodesAttached) != 3 {
		t.Errorf("attach count: got %d want 3", rt.Cluster().Ctr.Load(stats.EvNodesAttached))
	}
	// Three attaches at ~3.69 s each dominate the main thread's clock.
	if main.Task.Now() < 3*3690*sim.Millisecond {
		t.Errorf("main clock %v does not reflect three node attaches", main.Task.Now())
	}
	close(release)
	for _, th := range threads {
		rt.Join(main.Task, th)
	}
	// All worker nodes emptied: dynamic detach should have kicked in.
	if got := rt.AttachedNodes(); got != 1 {
		t.Errorf("attached after joins: got %d want 1 (dynamic detach)", got)
	}
}

// TestMallocFreeReuse allocates, frees and re-allocates shared memory during
// execution — the pattern the base system's template forbids.
func TestMallocFreeReuse(t *testing.T) {
	rt := newRT(2)
	main := rt.Main().Task
	mem := rt.Mem()
	a, err := mem.Malloc(main, 4096)
	if err != nil {
		t.Fatalf("malloc: %v", err)
	}
	rt.Acc().WriteI64(main, a, 42)
	if err := mem.Free(main, a); err != nil {
		t.Fatalf("free: %v", err)
	}
	b, err := mem.Malloc(main, 4096)
	if err != nil {
		t.Fatalf("re-malloc: %v", err)
	}
	if b != a {
		t.Errorf("free list not reused: got %#x want %#x", uint64(b), uint64(a))
	}
	if err := mem.Free(main, b); err != nil {
		t.Fatalf("free: %v", err)
	}
	if err := mem.Free(main, b); err == nil {
		t.Error("double free not detected")
	}
}

// TestGlobalStaticVariables verifies the GLOBAL_DATA region: carved at
// startup, homed on the master, shared by all threads.
func TestGlobalStaticVariables(t *testing.T) {
	rt := newRT(2)
	main := rt.Main()
	g := rt.Mem().GlobalVar(8)
	acc := rt.Acc()
	acc.WriteI64(main.Task, g, 7)

	mx := rt.NewMutex(main.Task)
	mx.Lock(main.Task)
	mx.Unlock(main.Task)

	done := make(chan int64, 4)
	var ths []*cables.Thread
	for i := 0; i < 4; i++ {
		ths = append(ths, rt.Create(main.Task, func(th *cables.Thread) {
			mx.Lock(th.Task)
			v := acc.ReadI64(th.Task, g)
			acc.WriteI64(th.Task, g, v+1)
			mx.Unlock(th.Task)
			done <- v
		}))
	}
	for _, th := range ths {
		rt.Join(main.Task, th)
	}
	mx.Lock(main.Task)
	if got := acc.ReadI64(main.Task, g); got != 11 {
		t.Errorf("GLOBAL counter: got %d want 11", got)
	}
	mx.Unlock(main.Task)
	if home := rt.Protocol().Space().Home(rt.Protocol().Space().PageOf(g)); home != 0 {
		t.Errorf("GLOBAL_DATA home: got node %d want 0", home)
	}
}

// TestCondProducerConsumer runs a bounded-buffer producer/consumer over
// condition variables — the PC program of Table 5 in miniature.
func TestCondProducerConsumer(t *testing.T) {
	rt := newRT(2)
	main := rt.Main()
	acc := rt.Acc()
	mem := rt.Mem()
	buf, err := mem.Malloc(main.Task, 16) // {value, full}
	if err != nil {
		t.Fatalf("malloc: %v", err)
	}
	mx := rt.NewMutex(main.Task)
	notFull := rt.NewCond(main.Task)
	notEmpty := rt.NewCond(main.Task)

	const items = 40
	sum := make(chan int64, 1)
	producer := rt.Create(main.Task, func(th *cables.Thread) {
		for i := 1; i <= items; i++ {
			mx.Lock(th.Task)
			for acc.ReadI64(th.Task, buf+8) == 1 {
				notFull.Wait(th, mx)
			}
			acc.WriteI64(th.Task, buf, int64(i))
			acc.WriteI64(th.Task, buf+8, 1)
			notEmpty.Signal(th.Task)
			mx.Unlock(th.Task)
		}
	})
	consumer := rt.Create(main.Task, func(th *cables.Thread) {
		var s int64
		for i := 0; i < items; i++ {
			mx.Lock(th.Task)
			for acc.ReadI64(th.Task, buf+8) == 0 {
				notEmpty.Wait(th, mx)
			}
			s += acc.ReadI64(th.Task, buf)
			acc.WriteI64(th.Task, buf+8, 0)
			notFull.Signal(th.Task)
			mx.Unlock(th.Task)
		}
		sum <- s
	})
	rt.Join(main.Task, producer)
	rt.Join(main.Task, consumer)
	if got, want := <-sum, int64(items*(items+1)/2); got != want {
		t.Errorf("consumed sum: got %d want %d", got, want)
	}
}

// TestCancelUnblocksCondWait cancels a thread parked in a condition wait.
func TestCancelUnblocksCondWait(t *testing.T) {
	rt := newRT(2)
	main := rt.Main()
	mx := rt.NewMutex(main.Task)
	cond := rt.NewCond(main.Task)
	started := make(chan struct{})
	victim := rt.Create(main.Task, func(th *cables.Thread) {
		mx.Lock(th.Task)
		close(started)
		cond.Wait(th, mx) // never signaled
		t.Error("wait returned without cancellation")
	})
	<-started
	rt.Cancel(main.Task, victim)
	rt.Join(main.Task, victim)
}

// TestPthreadBarrierAndCentralBarrier checks both barrier flavors agree on
// semantics while the central (mutex+cond) one costs orders of magnitude
// more — the Table 4 comparison.
func TestPthreadBarrierAndCentralBarrier(t *testing.T) {
	rt := newRT(4)
	main := rt.Main()
	const parties = 8

	central, err := rt.NewCentralBarrier(main.Task, parties)
	if err != nil {
		t.Fatalf("central barrier: %v", err)
	}
	var mu sync.Mutex
	var nativeCost, centralCost sim.Time
	var ths []*cables.Thread
	for i := 0; i < parties; i++ {
		ths = append(ths, rt.Create(main.Task, func(th *cables.Thread) {
			// Align clocks first: creation is sequential (node attaches),
			// so threads start far apart in virtual time.
			rt.Barrier(th.Task, "align", parties)
			t0 := th.Task.Now()
			rt.Barrier(th.Task, "native", parties)
			t1 := th.Task.Now()
			central.Wait(th)
			t2 := th.Task.Now()
			mu.Lock()
			if t1-t0 > nativeCost {
				nativeCost = t1 - t0
			}
			if t2-t1 > centralCost {
				centralCost = t2 - t1
			}
			mu.Unlock()
		}))
	}
	for _, th := range ths {
		rt.Join(main.Task, th)
	}
	if centralCost < 10*nativeCost {
		t.Errorf("central barrier (%v) should be far costlier than native (%v)",
			centralCost, nativeCost)
	}
}

// TestMapUnitMisplacement drives the Figure 6 metric: with 64 KB map units,
// pages first touched by different nodes inside one unit get misplaced.
func TestMapUnitMisplacement(t *testing.T) {
	rt := cables.New(cables.Config{
		MaxNodes:       2,
		ProcsPerNode:   2,
		ThreadsPerNode: 1, // force the worker onto node 1
		ArenaBytes:     64 << 20,
	})
	rt.Start()
	main := rt.Main()
	acc := rt.Acc()
	// One 64 KB unit = 16 pages.  Thread on node 1 touches odd pages after
	// node 0's main touches page 0 (claiming the whole unit).
	a, err := rt.Mem().Malloc(main.Task, 64<<10)
	if err != nil {
		t.Fatalf("malloc: %v", err)
	}
	acc.WriteI64(main.Task, a, 1) // claims the unit for node 0

	other := rt.Create(main.Task, func(th *cables.Thread) {
		for p := 1; p < 16; p++ {
			acc.WriteI64(th.Task, a+memsys.Addr(p*memsys.PageSize), int64(p))
		}
	})
	rt.Join(main.Task, other)

	mis, total := rt.Protocol().Space().MisplacedPages()
	if total < 16 {
		t.Fatalf("touched pages: got %d want >= 16", total)
	}
	if mis != 15 {
		t.Errorf("misplaced pages: got %d want 15 (unit claimed by node 0, 15 pages touched by node 1)", mis)
	}
}
