package cables_test

import (
	"testing"

	cables "cables/internal/core"
	"cables/internal/sim"
)

// TestCondCancelDrainsClaimedGrant races a signal against cancellation of a
// cond waiter, under both scheduler backends.  When the signal claims the
// waiter first (removing it from the wait list) and the waiter then honors
// the cancel, a grant is in flight on the task's reusable grant channel;
// the cancellation unwind must drain it, or the task's next park would
// consume a stale grant.  The assertion on Grant()'s buffer makes an
// undrained grant a hard failure; the select inside ParkCancelable picks
// randomly when both the grant and the cancel are ready, so the iterations
// exercise both the wake-up and the abandonment branch.
func TestCondCancelDrainsClaimedGrant(t *testing.T) {
	for _, sched := range sim.SchedulerNames() {
		t.Run(sched, func(t *testing.T) {
			for i := 0; i < 40; i++ {
				rt := cables.New(cables.Config{
					MaxNodes:     2,
					ProcsPerNode: 2,
					ArenaBytes:   4 << 20,
					Sched:        sched,
				})
				rt.Start()
				main := rt.Main()
				mx := rt.NewMutex(main.Task)
				cond := rt.NewCond(main.Task)
				waiting := make(chan struct{})
				victim := rt.Create(main.Task, func(th *cables.Thread) {
					mx.Lock(th.Task)
					close(waiting)
					cond.Wait(th, mx) // canceled or signaled, depending on the race
					mx.Unlock(th.Task)
				})
				<-waiting
				// Wait is registered before it releases the mutex, so once we
				// can take it the victim is (or is about to be) parked.
				mx.Lock(main.Task)
				mx.Unlock(main.Task)
				// Race the two in both orders.  Signal-then-cancel exercises
				// the plain wake-up (the parked select is won by whichever
				// channel fires first, and the grant got there first).
				// Cancel-then-signal is the dangerous interleaving: the
				// waiter is readied on the cancel branch but has not yet
				// unwound, so Signal still finds it registered, claims it,
				// and leaves a grant in flight that the unwind must drain.
				if i%2 == 0 {
					cond.Signal(main.Task)
					rt.Cancel(main.Task, victim)
				} else {
					rt.Cancel(main.Task, victim)
					cond.Signal(main.Task)
				}
				rt.Join(main.Task, victim)
				if n := len(victim.Task.Grant()); n != 0 {
					t.Fatalf("iteration %d: %d stale grant(s) left on the reusable channel after a canceled wait",
						i, n)
				}
			}
		})
	}
}
