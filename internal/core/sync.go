package cables

import (
	"sync"

	"cables/internal/memsys"
	"cables/internal/profile"
	"cables/internal/sim"
	"cables/internal/stats"
	"cables/internal/wire"
)

// Mutex is a pthread mutex.  CableS implements mutexes directly on the
// underlying SVM system locks (§2.3); registration with the ACB happens at
// init, and the first acquire from each node pays the additional
// bookkeeping the paper reports in Table 4.
type Mutex struct {
	rt *Runtime
	id int
}

// NewMutex registers a mutex with the ACB (pthread_mutex_init).
func (rt *Runtime) NewMutex(t *sim.Task) *Mutex {
	rt.chargeAdmin(t)
	return &Mutex{rt: rt, id: rt.newLockID()}
}

// Lock acquires the mutex (pthread_mutex_lock).
func (m *Mutex) Lock(t *sim.Task) { m.rt.proto.NewLock(m.id).Acquire(t) }

// Unlock releases the mutex (pthread_mutex_unlock).
func (m *Mutex) Unlock(t *sim.Task) { m.rt.proto.NewLock(m.id).Release(t) }

// condWaiter is one thread parked on a condition variable.
type condWaiter struct {
	t     *sim.Task
	start sim.Time
}

// Cond is a pthread condition variable.  Waiter bookkeeping lives in the
// ACB; signals and broadcasts are small remote writes that activate threads
// on remote nodes (§2.3).  Waiters spin for a bounded time and then block
// on an OS event when their node is oversubscribed (Karlin et al. [22]).
type Cond struct {
	rt *Runtime
	// id keys the profiler's cond-wait spans.  It comes from its own ACB
	// counter (not newLockID: lock ids are wire-op payload, and sharing the
	// sequence would shift them and the trace checksums they pin).
	id int

	mu      sync.Mutex
	waiters []*condWaiter
}

// NewCond registers a condition variable with the ACB (pthread_cond_init).
func (rt *Runtime) NewCond(t *sim.Task) *Cond {
	rt.chargeAdmin(t)
	return &Cond{rt: rt, id: rt.newCondID()}
}

// Wait atomically releases mx and suspends th until signaled
// (pthread_cond_wait); mx is re-acquired before returning.  Wait is a
// cancellation point.
func (c *Cond) Wait(th *Thread, mx *Mutex) {
	t := th.Task
	// No cancellation check while the mutex is held: a cancel that lands
	// here is honored by the select below, after the mutex is released.
	t.OpenSpan(uint8(profile.SpanCond), uint64(c.id))
	costs := c.rt.cl.Costs
	t.Charge(sim.CatLocal, costs.CondWaitLocal)
	// ACB waiter registration: a small write to the master's control block.
	c.rt.cl.Wire.Do(t, wire.Op{Kind: wire.KindCondWait, Dst: c.rt.acb.masterNode})
	t.Charge(sim.CatWait, 10*sim.Microsecond) // ACB update round-trip slack
	if c.rt.Stats != nil {
		// The API overhead of the wait itself, excluding blocking time and
		// the mutex re-acquisition (the paper's Table 4 methodology).
		c.rt.Stats.Record("cond_wait",
			costs.CondWaitLocal+costs.CondWaitComm+10*sim.Microsecond)
	}
	c.rt.cl.Ctr.Add(t.NodeID, stats.EvCondWaits, 1)

	node := c.rt.cl.Nodes[t.NodeID]
	// Spin when the node has spare processors; otherwise block on an OS
	// event and pay the wake-up penalty if the wait outlasts the spin bound.
	spinning := node.Runnable() <= node.Processors
	// The waiter parks through the scheduler on the task's reusable grant
	// channel (no per-wait allocation); see the reuse contract on
	// sim.Task.Grant.
	w := &condWaiter{t: t, start: t.Now()}
	c.mu.Lock()
	c.waiters = append(c.waiters, w)
	c.mu.Unlock()

	mx.Unlock(t)
	if !spinning {
		node.ThreadStopped()
	}
	grant, ok := t.Sched().ParkCancelable(t, th.cancelCh)
	if !ok {
		c.mu.Lock()
		found := false
		for i, x := range c.waiters {
			if x == w {
				c.waiters = append(c.waiters[:i], c.waiters[i+1:]...)
				found = true
				break
			}
		}
		c.mu.Unlock()
		if !found {
			// A signal or broadcast already claimed this waiter, so a grant
			// is in flight (or delivered).  Consume it — the wake-up is
			// dropped, exactly as before, but the reusable channel must not
			// carry a stale grant into the task's next wait.
			<-t.Grant()
		}
		if !spinning {
			node.ThreadStarted()
		}
		// Close the cond span before the cancellation unwind so the span
		// stack stays balanced on the canceled thread's log.
		t.CloseSpan()
		panic(sim.ErrCanceled)
	}
	if !spinning {
		node.ThreadStarted()
	}
	waited := grant - w.start
	t.WaitUntil(grant)
	if !spinning && waited > costs.SpinBeforeBlock {
		t.Charge(sim.CatLocalOS, costs.OSBlockWake)
	}
	c.rt.proto.ApplyAcquire(t)
	mx.Lock(t)
	t.CloseSpan()
}

// Signal wakes one waiter (pthread_cond_signal).
func (c *Cond) Signal(t *sim.Task) {
	costs := c.rt.cl.Costs
	c.rt.proto.Flush(t)
	t.Charge(sim.CatLocal, costs.CondSignalLocal)
	t.Charge(sim.CatLocalOS, costs.CondSignalOS)
	c.rt.cl.Ctr.Add(t.NodeID, stats.EvCondSignals, 1)

	c.mu.Lock()
	var w *condWaiter
	if len(c.waiters) > 0 {
		w = c.waiters[0]
		c.waiters = c.waiters[1:]
	}
	c.mu.Unlock()
	if w == nil {
		return
	}
	if w.t.NodeID != t.NodeID {
		c.rt.cl.Wire.Do(t, wire.Op{Kind: wire.KindCondSignal, Dst: w.t.NodeID})
	} else {
		t.Charge(sim.CatLocal, 5*sim.Microsecond)
	}
	c.rt.cl.Sched.Unpark(w.t, t.Now())
}

// Broadcast wakes all waiters (pthread_cond_broadcast).  Cost grows with
// the number of nodes hosting waiters: one remote write each (§3.2).
func (c *Cond) Broadcast(t *sim.Task) {
	costs := c.rt.cl.Costs
	c.rt.proto.Flush(t)
	t.Charge(sim.CatLocal, costs.CondBcastLocal)
	t.Charge(sim.CatLocalOS, costs.CondBcastOS)

	c.mu.Lock()
	ws := c.waiters
	c.waiters = nil
	c.mu.Unlock()

	notified := make(map[int]bool)
	for _, w := range ws {
		if w.t.NodeID != t.NodeID && !notified[w.t.NodeID] {
			notified[w.t.NodeID] = true
			c.rt.cl.Wire.Do(t, wire.Op{Kind: wire.KindCondBcast, Dst: w.t.NodeID})
		}
	}
	now := t.Now()
	for _, w := range ws {
		c.rt.cl.Sched.Unpark(w.t, now)
	}
	c.rt.cl.Ctr.Add(t.NodeID, stats.EvCondSignals, int64(len(ws)))
}

// Barrier is the pthread_barrier(number_of_threads) extension CableS adds
// for legacy parallel applications (§2.3); it rides the SVM system's native
// barrier mechanism rather than point-to-point mutex/cond synchronization.
func (rt *Runtime) Barrier(t *sim.Task, name string, parties int) {
	rt.proto.NewBarrier("pthread."+name).Wait(t, parties)
}

// CentralBarrier is the barrier the paper measures as "pthreads barrier" in
// Table 4: built literally from a mutex, a condition variable and a shared
// variable, with the synchronization variable handled by a single node —
// the centralization that makes it orders of magnitude slower than the
// native barrier.
type CentralBarrier struct {
	rt      *Runtime
	mx      *Mutex
	cond    *Cond
	count   memsys.Addr // shared int64
	gen     memsys.Addr // shared int64
	parties int
}

// NewCentralBarrier allocates the barrier's shared state.
func (rt *Runtime) NewCentralBarrier(t *sim.Task, parties int) (*CentralBarrier, error) {
	state, err := rt.mem.Malloc(t, 16)
	if err != nil {
		return nil, err
	}
	b := &CentralBarrier{
		rt:      rt,
		mx:      rt.NewMutex(t),
		cond:    rt.NewCond(t),
		count:   state,
		gen:     state + 8,
		parties: parties,
	}
	acc := rt.Acc()
	acc.WriteI64(t, b.count, 0)
	acc.WriteI64(t, b.gen, 0)
	return b, nil
}

// Wait joins the barrier.
func (b *CentralBarrier) Wait(th *Thread) {
	t := th.Task
	acc := b.rt.Acc()
	b.mx.Lock(t)
	g := acc.ReadI64(t, b.gen)
	n := acc.ReadI64(t, b.count) + 1
	acc.WriteI64(t, b.count, n)
	if int(n) == b.parties {
		acc.WriteI64(t, b.count, 0)
		acc.WriteI64(t, b.gen, g+1)
		b.cond.Broadcast(t)
		b.mx.Unlock(t)
		return
	}
	for acc.ReadI64(t, b.gen) == g {
		b.cond.Wait(th, b.mx)
	}
	b.mx.Unlock(t)
}
