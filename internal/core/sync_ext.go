package cables

import (
	"sync"

	"cables/internal/sim"
)

// This file rounds out the pthreads API surface beyond the paper's core
// three primitives: trylock, once-initialization, reader/writer locks and
// detached threads.  All are built from the same underlying mechanisms
// (system locks, the ACB, conditions), as a real CableS port would build
// them.

// TryLock attempts the mutex without blocking (pthread_mutex_trylock); it
// reports whether the lock was obtained.  A failed attempt still costs the
// remote probe when the lock is managed elsewhere.
func (m *Mutex) TryLock(t *sim.Task) bool {
	return m.rt.proto.NewLock(m.id).TryAcquire(t)
}

// Once runs its function exactly once across the whole cluster
// (pthread_once): the winner executes under a system lock, later callers
// see the done flag via the usual coherence path.
type Once struct {
	rt   *Runtime
	mx   *Mutex
	done bool
	mu   sync.Mutex
}

// NewOnce registers a once-control with the ACB.
func (rt *Runtime) NewOnce(t *sim.Task) *Once {
	return &Once{rt: rt, mx: rt.NewMutex(t)}
}

// Do runs fn if no other thread has; all callers return only after fn ran.
func (o *Once) Do(th *Thread, fn func()) {
	o.mu.Lock()
	done := o.done
	o.mu.Unlock()
	if done {
		o.rt.chargeAdmin(th.Task) // flag check via ACB
		return
	}
	o.mx.Lock(th.Task)
	o.mu.Lock()
	done = o.done
	o.mu.Unlock()
	if !done {
		fn()
		o.mu.Lock()
		o.done = true
		o.mu.Unlock()
	}
	o.mx.Unlock(th.Task)
}

// RWLock is a pthread rwlock built from a mutex and two conditions —
// writer-preferring, the common NPTL default.
type RWLock struct {
	rt      *Runtime
	mx      *Mutex
	rdOK    *Cond
	wrOK    *Cond
	mu      sync.Mutex
	readers int
	writer  bool
	wrWait  int
}

// NewRWLock registers a reader/writer lock (pthread_rwlock_init).
func (rt *Runtime) NewRWLock(t *sim.Task) *RWLock {
	return &RWLock{
		rt:   rt,
		mx:   rt.NewMutex(t),
		rdOK: rt.NewCond(t),
		wrOK: rt.NewCond(t),
	}
}

// RLock acquires the lock shared (pthread_rwlock_rdlock).
func (l *RWLock) RLock(th *Thread) {
	l.mx.Lock(th.Task)
	for {
		l.mu.Lock()
		ok := !l.writer && l.wrWait == 0
		if ok {
			l.readers++
		}
		l.mu.Unlock()
		if ok {
			break
		}
		l.rdOK.Wait(th, l.mx)
	}
	l.mx.Unlock(th.Task)
}

// RUnlock releases a shared hold.
func (l *RWLock) RUnlock(th *Thread) {
	l.mx.Lock(th.Task)
	l.mu.Lock()
	l.readers--
	last := l.readers == 0
	l.mu.Unlock()
	if last {
		l.wrOK.Signal(th.Task)
	}
	l.mx.Unlock(th.Task)
}

// Lock acquires the lock exclusive (pthread_rwlock_wrlock).
func (l *RWLock) Lock(th *Thread) {
	l.mx.Lock(th.Task)
	l.mu.Lock()
	l.wrWait++
	l.mu.Unlock()
	for {
		l.mu.Lock()
		ok := !l.writer && l.readers == 0
		if ok {
			l.writer = true
			l.wrWait--
		}
		l.mu.Unlock()
		if ok {
			break
		}
		l.wrOK.Wait(th, l.mx)
	}
	l.mx.Unlock(th.Task)
}

// Unlock releases the exclusive hold.
func (l *RWLock) Unlock(th *Thread) {
	l.mx.Lock(th.Task)
	l.mu.Lock()
	l.writer = false
	l.mu.Unlock()
	l.wrOK.Signal(th.Task)
	l.rdOK.Broadcast(th.Task)
	l.mx.Unlock(th.Task)
}

// Detach marks th detached (pthread_detach): nobody will join it; its node
// bookkeeping is reclaimed when it exits, as usual.
func (rt *Runtime) Detach(t *sim.Task, th *Thread) {
	rt.chargeAdmin(t)
	// Joining a detached thread is a programming error in POSIX; here the
	// done channel simply never gets a Join, which is already safe.
}
