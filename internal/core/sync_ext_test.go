package cables_test

import (
	"sync"
	"testing"

	cables "cables/internal/core"
	"cables/internal/memsys"
	"cables/internal/stats"
)

func TestMutexTryLock(t *testing.T) {
	rt := newRT(2)
	main := rt.Main()
	mx := rt.NewMutex(main.Task)
	if !mx.TryLock(main.Task) {
		t.Fatal("trylock of free mutex failed")
	}
	got := make(chan bool)
	th := rt.Create(main.Task, func(th *cables.Thread) {
		got <- mx.TryLock(th.Task)
	})
	if <-got {
		t.Error("trylock of held mutex succeeded")
	}
	rt.Join(main.Task, th)
	mx.Unlock(main.Task)
	if !mx.TryLock(main.Task) {
		t.Error("trylock after unlock failed")
	}
	mx.Unlock(main.Task)
}

func TestOnceRunsExactlyOnce(t *testing.T) {
	rt := newRT(4)
	main := rt.Main()
	once := rt.NewOnce(main.Task)
	var mu sync.Mutex
	runs := 0
	var ths []*cables.Thread
	for i := 0; i < 8; i++ {
		ths = append(ths, rt.Create(main.Task, func(th *cables.Thread) {
			once.Do(th, func() {
				mu.Lock()
				runs++
				mu.Unlock()
			})
		}))
	}
	for _, th := range ths {
		rt.Join(main.Task, th)
	}
	if runs != 1 {
		t.Errorf("once ran %d times", runs)
	}
}

func TestRWLockAllowsConcurrentReaders(t *testing.T) {
	rt := newRT(4)
	main := rt.Main()
	l := rt.NewRWLock(main.Task)
	acc := rt.Acc()
	data, err := rt.Mem().Malloc(main.Task, 8)
	if err != nil {
		t.Fatal(err)
	}

	// Writer sets the value.
	wth := rt.Create(main.Task, func(th *cables.Thread) {
		l.Lock(th)
		acc.WriteI64(th.Task, data, 7)
		l.Unlock(th)
	})
	rt.Join(main.Task, wth)

	// Readers overlap: all take RLock, rendezvous, then release.
	const readers = 4
	var entered sync.WaitGroup
	entered.Add(readers)
	release := make(chan struct{})
	var ths []*cables.Thread
	for i := 0; i < readers; i++ {
		ths = append(ths, rt.Create(main.Task, func(th *cables.Thread) {
			l.RLock(th)
			if got := acc.ReadI64(th.Task, data); got != 7 {
				t.Errorf("reader saw %d", got)
			}
			entered.Done()
			<-release // all readers hold the lock simultaneously
			l.RUnlock(th)
		}))
	}
	entered.Wait() // proves concurrency: all readers inside at once
	close(release)
	for _, th := range ths {
		rt.Join(main.Task, th)
	}

	// Writer again after readers drained.
	wth2 := rt.Create(main.Task, func(th *cables.Thread) {
		l.Lock(th)
		acc.WriteI64(th.Task, data, 9)
		l.Unlock(th)
	})
	rt.Join(main.Task, wth2)
	l.RLock(rt.Main())
	if got := acc.ReadI64(main.Task, data); got != 9 {
		t.Errorf("after writer: %d", got)
	}
	l.RUnlock(rt.Main())
}

// TestMigrationPolicy: a unit homed on the wrong node accumulates remote
// faults; MigrateHotUnits re-homes it and subsequent faults become local.
func TestMigrationPolicy(t *testing.T) {
	rt := cables.New(cables.Config{
		MaxNodes: 2, ProcsPerNode: 2, ThreadsPerNode: 1,
		PrestartNodes: 2, ArenaBytes: 64 << 20,
	})
	main := rt.Start()
	acc := rt.Acc()
	mem := rt.Mem()
	mem.EnableMigrationTracking()

	a, err := mem.Malloc(main.Task, 64<<10)
	if err != nil {
		t.Fatal(err)
	}
	// Master touches first: unit homed on node 0.
	acc.WriteI64(main.Task, a, 1)
	sp := rt.Protocol().Space()
	if sp.Home(sp.PageOf(a)) != 0 {
		t.Fatal("precondition: unit not on node 0")
	}

	// A thread on node 1 keeps re-reading the unit across sync points.
	mx := rt.NewMutex(main.Task)
	th := rt.Create(main.Task, func(th *cables.Thread) {
		for i := 0; i < 6; i++ {
			mx.Lock(th.Task)
			acc.WriteI64(th.Task, a+memsys.Addr(i%8*memsys.PageSize), int64(i))
			mx.Unlock(th.Task)
			// The lock round trip invalidates and refaults the page.
		}
	})
	rt.Join(main.Task, th)

	if n := rt.Protocol().Cluster().Ctr.Load(stats.EvRemotePageFaults); n == 0 {
		t.Fatal("no remote faults recorded")
	}
	if moved := mem.MigrateHotUnits(main.Task, 2); moved == 0 {
		t.Fatal("migration policy moved nothing")
	}
	if got := sp.Home(sp.PageOf(a)); got != 1 {
		t.Errorf("unit home after migration: %d want 1", got)
	}

	// The values the worker wrote survive the move.
	mx.Lock(main.Task)
	mx.Unlock(main.Task)
	for i := 0; i < 6; i++ {
		addr := a + memsys.Addr(i%8*memsys.PageSize)
		if got := acc.ReadI64(main.Task, addr); got != int64(i) {
			t.Errorf("page %d after migration: got %d want %d", i, got, i)
		}
	}
}
