package farm

import (
	"container/list"
	"sync"

	"cables/internal/apps/appapi"
	"cables/internal/stats"
)

// CellResult is the cached, JSON-served outcome of one simulation cell.
// It is immutable once stored: a cache hit serves exactly these bytes, so
// repeated identical sweeps are bit-identical to the cold run that filled
// the entry.
type CellResult struct {
	// Key is the cell's content address (CellKey.Hash) and Canonical the
	// string it hashes — returned so clients can verify what they got.
	Key       string `json:"key"`
	Canonical string `json:"canonical"`
	// Result is the workload outcome (times, checksum, placement census).
	Result appapi.Result `json:"result"`
	// Counters is the run's full event-counter snapshot (rendered only for
	// kind=counters sweeps, but always cached).
	Counters stats.Snapshot `json:"counters,omitempty"`
	// Injected counts fault firings; Degraded mirrors the batch CLI's
	// DEGRADED rendering (faults fired, run still completed correctly).
	Injected int64 `json:"faultsInjected"`
	Degraded bool  `json:"degraded"`
	// Err is the failure message for cells that did not complete.
	Err string `json:"error,omitempty"`
	// HostNS is the host wall-clock the fresh simulation took; cache hits
	// return the original value (how much time the cache saved).
	HostNS int64 `json:"hostNs"`
}

// Cache is a bounded LRU of CellResults keyed by content address.  Entry
// count is the bound (results are small, a few hundred bytes of struct plus
// the counter snapshot); the least-recently-used entry is evicted first and
// every eviction is reported through onEvict so the farm's `cacheEvicted`
// counter cannot miss one.
type Cache struct {
	mu      sync.Mutex
	max     int
	order   *list.List // front = most recently used; values are *cacheEntry
	entries map[string]*list.Element
	onEvict func()
}

type cacheEntry struct {
	key string
	res *CellResult
}

// NewCache creates a cache bounded to max entries (at least 1).  onEvict,
// if non-nil, is called once per evicted entry.
func NewCache(max int, onEvict func()) *Cache {
	if max < 1 {
		max = 1
	}
	return &Cache{
		max:     max,
		order:   list.New(),
		entries: make(map[string]*list.Element),
		onEvict: onEvict,
	}
}

// Get returns the cached result for key, refreshing its recency.
func (c *Cache) Get(key string) (*CellResult, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).res, true
}

// Put stores res under key, evicting least-recently-used entries beyond the
// bound.  Storing an existing key refreshes the entry.
func (c *Cache) Put(key string, res *CellResult) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		el.Value.(*cacheEntry).res = res
		c.order.MoveToFront(el)
		return
	}
	c.entries[key] = c.order.PushFront(&cacheEntry{key: key, res: res})
	for c.order.Len() > c.max {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).key)
		if c.onEvict != nil {
			c.onEvict()
		}
	}
}

// Len returns the current entry count.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
