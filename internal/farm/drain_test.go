package farm

import (
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"strings"
	"syscall"
	"testing"
	"time"
)

// waitGoroutines polls until the goroutine count returns to at most base
// (plus slack for runtime helpers) — a goleak-style leak check with a
// deadline instead of a snapshot race.
func waitGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= base+2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	t.Errorf("goroutines leaked: %d > baseline %d\n%s", runtime.NumGoroutine(), base, buf[:n])
}

// TestDrainCompletesInFlightRejectsQueued: with one worker and a held cell,
// Drain must let the running cell finish, reject every still-queued cell
// with a retriable status, and refuse new sweeps with a retriable 503.
func TestDrainCompletesInFlightRejectsQueued(t *testing.T) {
	base := runtime.NumGoroutine()
	srv := New(Config{Jobs: 1})
	started := make(chan struct{}, 1)
	release := make(chan struct{})
	srv.runCell = func(k CellKey) *CellResult {
		started <- struct{}{}
		<-release
		return &CellResult{}
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Three distinct cells on one worker: the first runs, two sit queued.
	sv := postSweep(t, ts, `{"apps":["FFT","LU","RADIX"],"procs":[1],"backends":["genima"],"scale":"test"}`)
	<-started

	drained := make(chan struct{})
	go func() { srv.Drain(); close(drained) }()

	// Intake must turn away new work retriably while the drain is pending.
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := ts.Client().Post(ts.URL+"/v1/sweeps", "application/json",
			strings.NewReader(`{"apps":["OCEAN"],"procs":[1],"backends":["genima"],"scale":"test"}`))
		if err != nil {
			t.Fatalf("POST during drain: %v", err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusServiceUnavailable {
			if resp.Header.Get("Retry-After") == "" {
				t.Error("draining 503 missing Retry-After")
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("intake never started refusing during drain (last status %d)", resp.StatusCode)
		}
		time.Sleep(2 * time.Millisecond)
	}

	close(release)
	<-drained

	final := getSweep(t, ts, sv.ID)
	if final.Status != "drained" {
		t.Errorf("sweep status %q, want drained", final.Status)
	}
	var done, rejected int
	for _, c := range final.Cells {
		switch c.Status {
		case CellDone:
			done++
		case CellRejected:
			rejected++
			if !c.Retriable {
				t.Errorf("rejected cell %s/%d not marked retriable", c.App, c.Procs)
			}
		default:
			t.Errorf("cell %s/%d left in state %s after drain", c.App, c.Procs, c.Status)
		}
	}
	if done != 1 || rejected != 2 {
		t.Errorf("done=%d rejected=%d, want 1 in-flight completed and 2 queued rejected", done, rejected)
	}

	snap := srv.StatsSnapshot()
	if snap["cellsRejected"] != 2 || snap["cellsDone"] != 1 {
		t.Errorf("stats after drain: %v", snap)
	}
	if snap["queueDepth"] != 0 || snap["cellsRunning"] != 0 {
		t.Errorf("gauges nonzero after drain: %v", snap)
	}
	admissionInvariant(t, srv)

	ts.Close()
	waitGoroutines(t, base)
}

// TestDrainIdempotent: draining twice (or concurrently) must not hang or
// double-reject.
func TestDrainIdempotent(t *testing.T) {
	srv := New(Config{Jobs: 2})
	done := make(chan struct{}, 2)
	for i := 0; i < 2; i++ {
		go func() { srv.Drain(); done <- struct{}{} }()
	}
	for i := 0; i < 2; i++ {
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Fatal("concurrent Drain hung")
		}
	}
	if !srv.Draining() {
		t.Error("Draining() false after Drain")
	}
}

// TestServeSigtermDrain: DrainOnSignal must run the full drain when the
// process receives SIGTERM, releasing waiters and all worker goroutines.
func TestServeSigtermDrain(t *testing.T) {
	base := runtime.NumGoroutine()
	srv := New(Config{Jobs: 2})
	srv.runCell = func(k CellKey) *CellResult { return &CellResult{} }
	ts := httptest.NewServer(srv.Handler())
	waitSweep(t, ts, postSweep(t, ts, `{"apps":["FFT"],"procs":[1],"backends":["genima"],"scale":"test"}`).ID)

	drained := srv.DrainOnSignal(syscall.SIGTERM)
	p, err := os.FindProcess(os.Getpid())
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case <-drained:
	case <-time.After(10 * time.Second):
		t.Fatal("SIGTERM did not drain the farm")
	}
	if !srv.Draining() {
		t.Error("Draining() false after signal drain")
	}
	ts.Close()
	waitGoroutines(t, base)
}

// TestQueueBoundRejectsSweeps: a sweep that would exceed MaxQueue is turned
// away retriably as a unit — no partial admission.
func TestQueueBoundRejectsSweeps(t *testing.T) {
	srv := New(Config{Jobs: 1, MaxQueue: 2})
	release := make(chan struct{})
	srv.runCell = func(k CellKey) *CellResult {
		<-release
		return &CellResult{}
	}
	// Cleanups run after defers: release the worker first, then drain.
	t.Cleanup(func() { srv.Drain() })
	defer close(release)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// First sweep: one cell runs, filling the single worker; a second cell
	// occupies the whole queue allowance.
	postSweep(t, ts, `{"apps":["FFT","LU"],"procs":[1],"backends":["genima"],"scale":"test"}`)

	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := ts.Client().Post(ts.URL+"/v1/sweeps", "application/json",
			strings.NewReader(`{"apps":["RADIX","OCEAN"],"procs":[1],"backends":["genima"],"scale":"test"}`))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusServiceUnavailable {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("over-bound sweep accepted (status %d)", resp.StatusCode)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if got := srv.Stats().SweepsRejected.Load(); got < 1 {
		t.Errorf("sweepsRejected = %d, want >= 1", got)
	}
}
