// Package farm turns the batch experiment harness into a long-running
// simulation service: `cablesim serve` (docs/SERVE.md is the API
// reference).
//
// Clients POST experiment sweep specs — figure/table cells, schedule
// flags, `-sched` backend, fault plan, seed, scale — as JSON; the farm
// expands each spec into simulation cells, shards the cells across a
// bounded worker pool (the same bench.Pool machinery behind `-jobs`), and
// streams per-cell progress over SSE or newline-delimited JSON.
//
// Results are content-addressed: each cell's cache key is the SHA-256 of a
// canonical rendering of every code-relevant input (app, procs, backend,
// scale, scheduler, granularity, wire-plane modes, fault plan, seed — see
// CellKey.Canonical), so identical cells across sweeps and across
// concurrent clients are simulated exactly once.  The first request
// simulates and fills the cache; concurrent duplicates coalesce onto the
// in-flight simulation; later duplicates are served from cache
// bit-identically — the workloads' deterministic checksums are the proof
// that a cached result equals a fresh run.
//
// On SIGTERM/SIGINT the farm drains gracefully: intake returns a retriable
// 503, in-flight cells run to completion, queued cells are rejected with a
// retriable status, and every worker goroutine exits (Server.Drain,
// Server.DrainOnSignal).  Service-level counters and gauges — cells
// queued/running, cache hits/misses/evictions, queue depth — are exported
// at /v1/stats and documented in docs/SERVE.md and docs/OBSERVABILITY.md
// (cmd/doccheck keeps both inventories in lock-step with the code).
package farm
