package farm

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"cables/internal/bench"
	"cables/internal/sim"
)

// newTestFarm builds a server plus an HTTP front for it and arranges a full
// drain at cleanup so no worker goroutine outlives the test.
func newTestFarm(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	srv := New(cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Drain()
	})
	return srv, ts
}

// postSweep submits a spec and decodes the accepted sweep view.
func postSweep(t *testing.T, ts *httptest.Server, spec string) sweepView {
	t.Helper()
	resp, err := ts.Client().Post(ts.URL+"/v1/sweeps", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatalf("POST /v1/sweeps: %v", err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /v1/sweeps: status %d body %s", resp.StatusCode, body)
	}
	var sv sweepView
	if err := json.Unmarshal(body, &sv); err != nil {
		t.Fatalf("decode sweep: %v (%s)", err, body)
	}
	return sv
}

// getSweep fetches one sweep view.
func getSweep(t *testing.T, ts *httptest.Server, id string) sweepView {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + "/v1/sweeps/" + id)
	if err != nil {
		t.Fatalf("GET sweep: %v", err)
	}
	defer resp.Body.Close()
	var sv sweepView
	if err := json.NewDecoder(resp.Body).Decode(&sv); err != nil {
		t.Fatalf("decode sweep: %v", err)
	}
	return sv
}

// waitSweep polls until the sweep leaves "running" (or the deadline hits).
func waitSweep(t *testing.T, ts *httptest.Server, id string) sweepView {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		sv := getSweep(t, ts, id)
		if sv.Status != "running" {
			return sv
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("sweep %s did not finish", id)
	return sweepView{}
}

// getBody fetches a URL and returns (status, raw body).
func getBody(t *testing.T, ts *httptest.Server, path string) (int, []byte) {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, body
}

// admissionInvariant checks cellsQueued == cacheHits+cellsCoalesced+cacheMisses.
func admissionInvariant(t *testing.T, s *Server) {
	t.Helper()
	snap := s.StatsSnapshot()
	if snap["cellsQueued"] != snap["cacheHits"]+snap["cellsCoalesced"]+snap["cacheMisses"] {
		t.Errorf("admission invariant broken: %v", snap)
	}
}

// TestCacheServesIdenticalResults is the acceptance-criterion test: an
// identical sweep against a warm instance re-simulates zero cells, every
// cell is served from cache, and the served results — checksums above all —
// are bit-identical to the cold run, on both thread-manager backends.
func TestCacheServesIdenticalResults(t *testing.T) {
	for _, sched := range sim.SchedulerNames() {
		t.Run(sched, func(t *testing.T) {
			srv, ts := newTestFarm(t, Config{Jobs: 2})
			spec := fmt.Sprintf(`{"kind":"counters","apps":["FFT"],"procs":[1,4],"scale":"test","sched":%q}`, sched)

			cold := waitSweep(t, ts, postSweep(t, ts, spec).ID)
			if cold.Status != "done" {
				t.Fatalf("cold sweep: status %s", cold.Status)
			}
			if n := len(cold.Cells); n != 4 {
				t.Fatalf("cold sweep: %d cells, want 4", n)
			}
			misses := srv.Stats().CacheMisses.Load()
			if misses != 4 {
				t.Fatalf("cold sweep: %d misses, want 4", misses)
			}

			// Fresh out-of-band runs prove the cached payloads carry the
			// deterministic results, not stale or swapped entries.
			for _, c := range cold.Cells {
				if c.Result == nil || c.Result.Err != "" {
					t.Fatalf("cell %s/%d: missing or failed result", c.App, c.Procs)
				}
				res, _, err := bench.RunAppCell(c.App, c.Backend, c.Procs, bench.ScaleTest, nil,
					bench.CellOptions{Sched: sched})
				if err != nil {
					t.Fatalf("fresh %s/%s/%d: %v", c.App, c.Backend, c.Procs, err)
				}
				if res.Checksum != c.Result.Result.Checksum {
					t.Errorf("%s/%s p=%d: cached checksum %v != fresh %v",
						c.App, c.Backend, c.Procs, c.Result.Result.Checksum, res.Checksum)
				}
			}

			warm := waitSweep(t, ts, postSweep(t, ts, spec).ID)
			if warm.Status != "done" {
				t.Fatalf("warm sweep: status %s", warm.Status)
			}
			if srv.Stats().CacheMisses.Load() != misses {
				t.Errorf("warm sweep re-simulated cells: misses %d -> %d",
					misses, srv.Stats().CacheMisses.Load())
			}
			if hits := srv.Stats().CacheHits.Load(); hits != 4 {
				t.Errorf("warm sweep: %d cache hits, want 4", hits)
			}
			for i, c := range warm.Cells {
				if !c.Cached || c.Status != CellDone {
					t.Errorf("warm cell %d: cached=%t status=%s", i, c.Cached, c.Status)
				}
			}

			// Bit-identity of the served bytes: the result payload of each
			// warm cell must equal the cold one's, and two fetches of the
			// content address must return identical bodies.
			for i := range cold.Cells {
				cb, _ := json.Marshal(cold.Cells[i].Result)
				wb, _ := json.Marshal(warm.Cells[i].Result)
				if !bytes.Equal(cb, wb) {
					t.Errorf("cell %d: warm result bytes differ from cold", i)
				}
				code1, b1 := getBody(t, ts, "/v1/cells/"+cold.Cells[i].Key)
				code2, b2 := getBody(t, ts, "/v1/cells/"+cold.Cells[i].Key)
				if code1 != http.StatusOK || !bytes.Equal(b1, b2) {
					t.Errorf("cell %d: content-address fetches differ (codes %d/%d)", i, code1, code2)
				}
			}
			admissionInvariant(t, srv)
		})
	}
}

// TestCacheNearMiss: flipping any single code-relevant flag must miss the
// cache, while code-irrelevant differences (kind, seed without a plan)
// must hit it.
func TestCacheNearMiss(t *testing.T) {
	srv, ts := newTestFarm(t, Config{Jobs: 2})
	base := `"apps":["FFT"],"procs":[1],"backends":["genima"],"scale":"test"`
	run := func(spec string) {
		t.Helper()
		sv := waitSweep(t, ts, postSweep(t, ts, spec).ID)
		if sv.Status != "done" {
			t.Fatalf("sweep %s: status %s", spec, sv.Status)
		}
	}

	run(`{` + base + `}`)
	misses := srv.Stats().CacheMisses.Load()
	if misses != 1 {
		t.Fatalf("base sweep: %d misses, want 1", misses)
	}

	for i, variant := range []string{
		`{` + base + `,"contendedSync":true}`,
		`{` + base + `,"coalesce":true}`,
		`{` + base + `,"gran":4096}`,
		`{` + base + `,"plan":"send:p=0.01","seed":1}`,
		`{` + base + `,"plan":"send:p=0.01","seed":2}`,
		`{` + base + `,"scale":"paper"}`,
	} {
		run(variant)
		want := misses + int64(i) + 1
		if got := srv.Stats().CacheMisses.Load(); got != want {
			t.Errorf("variant %d (%s): misses %d, want %d (must not hit the cache)", i, variant, got, want)
		}
	}
	total := srv.Stats().CacheMisses.Load()

	// Code-irrelevant differences: a different seed with no fault plan is
	// canonicalized away, and kind only changes rendering.
	for _, same := range []string{
		`{` + base + `,"seed":99}`,
		`{` + base + `,"kind":"counters"}`,
		`{` + base + `,"kind":"fig6"}`,
	} {
		run(same)
		if got := srv.Stats().CacheMisses.Load(); got != total {
			t.Errorf("spec %s: missed the cache (misses %d -> %d), want hit", same, total, got)
		}
	}
	admissionInvariant(t, srv)
}

// TestConcurrentSweepsCoalesce: identical cells submitted by concurrent
// clients while the first is still queued/running must coalesce onto one
// simulation — never run twice.
func TestConcurrentSweepsCoalesce(t *testing.T) {
	srv, _ := newTestFarm(t, Config{Jobs: 1})
	release := make(chan struct{})
	srv.runCell = func(k CellKey) *CellResult {
		<-release
		return &CellResult{}
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	spec := `{"apps":["FFT","LU"],"procs":[1],"backends":["genima"],"scale":"test"}`
	ids := make([]string, 3)
	for i := range ids {
		ids[i] = postSweep(t, ts, spec).ID
	}
	close(release)
	for _, id := range ids {
		if sv := waitSweep(t, ts, id); sv.Status != "done" {
			t.Fatalf("sweep %s: status %s", id, sv.Status)
		}
	}
	snap := srv.StatsSnapshot()
	if snap["cacheMisses"] != 2 {
		t.Errorf("misses = %d, want 2 (one per unique cell)", snap["cacheMisses"])
	}
	if snap["cellsCoalesced"]+snap["cacheHits"] != 4 {
		t.Errorf("coalesced+hits = %d, want 4 (duplicate cells must not re-simulate): %v",
			snap["cellsCoalesced"]+snap["cacheHits"], snap)
	}
	admissionInvariant(t, srv)
}

// TestStreamFormats: the progress stream replays every cell transition and
// terminates with the sweep event, in both SSE and NDJSON framing.
func TestStreamFormats(t *testing.T) {
	srv, ts := newTestFarm(t, Config{Jobs: 1})
	srv.runCell = func(k CellKey) *CellResult { return &CellResult{} }
	sv := waitSweep(t, ts, postSweep(t, ts,
		`{"apps":["FFT"],"procs":[1],"backends":["genima","cables"],"scale":"test"}`).ID)

	code, body := getBody(t, ts, "/v1/sweeps/"+sv.ID+"/stream")
	if code != http.StatusOK {
		t.Fatalf("stream: status %d", code)
	}
	if got := strings.Count(string(body), "event: cell"); got < 4 {
		t.Errorf("SSE stream: %d cell events, want >= 4 (queued+done per cell):\n%s", got, body)
	}
	if !strings.Contains(string(body), "event: sweep") {
		t.Errorf("SSE stream missing terminal sweep event:\n%s", body)
	}

	code, body = getBody(t, ts, "/v1/sweeps/"+sv.ID+"/stream?format=ndjson")
	if code != http.StatusOK {
		t.Fatalf("ndjson stream: status %d", code)
	}
	lines := strings.Split(strings.TrimSpace(string(body)), "\n")
	var last struct {
		Event string          `json:"event"`
		Data  json.RawMessage `json:"data"`
	}
	for _, line := range lines {
		if err := json.Unmarshal([]byte(line), &last); err != nil {
			t.Fatalf("ndjson line %q: %v", line, err)
		}
	}
	if last.Event != "sweep" {
		t.Errorf("ndjson stream: last event %q, want sweep", last.Event)
	}
}

// TestRouteSurface: every route in the routes literal is mounted and
// responds; unknown resources 404 with the uniform error body.
func TestRouteSurface(t *testing.T) {
	srv, ts := newTestFarm(t, Config{Jobs: 1})
	srv.runCell = func(k CellKey) *CellResult { return &CellResult{} }
	sv := waitSweep(t, ts, postSweep(t, ts, `{"apps":["FFT"],"procs":[1],"backends":["genima"],"scale":"test"}`).ID)

	for path, want := range map[string]int{
		"/healthz":                        http.StatusOK,
		"/readyz":                         http.StatusOK,
		"/metrics":                        http.StatusOK,
		"/v1/stats":                       http.StatusOK,
		"/v1/sweeps":                      http.StatusOK,
		"/v1/sweeps/" + sv.ID:             http.StatusOK,
		"/v1/sweeps/" + sv.ID + "/stream": http.StatusOK,
		"/v1/sweeps/nope":                 http.StatusNotFound,
		"/v1/cells/nope":                  http.StatusNotFound,
		"/v1/cells/" + sv.Cells[0].Key:    http.StatusOK,
	} {
		code, body := getBody(t, ts, path)
		if code != want {
			t.Errorf("GET %s: status %d, want %d (%s)", path, code, want, body)
		}
	}

	// Bad specs are 400s, not panics.
	for _, bad := range []string{
		`{"apps":["NOPE"]}`, `{"scale":"huge"}`, `{"procs":[0]}`,
		`{"plan":"bogus:zzz"}`, `{"sched":"fiber"}`, `{"unknownField":1}`, `not json`,
	} {
		resp, err := ts.Client().Post(ts.URL+"/v1/sweeps", "application/json", strings.NewReader(bad))
		if err != nil {
			t.Fatalf("POST bad spec: %v", err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("POST %q: status %d, want 400", bad, resp.StatusCode)
		}
	}
}

// TestSpecCanonicalization pins the cache-key semantics documented in
// docs/SERVE.md: plan spellings canonicalize, seeds without plans zero out,
// and every code-relevant field lands in the canonical string.
func TestSpecCanonicalization(t *testing.T) {
	s := Spec{Apps: []string{"FFT"}, Procs: []int{4}, Backends: []string{"genima"},
		Plan: "send:p=0.0500", Seed: 7, Scale: "test"}
	if err := s.Normalize(); err != nil {
		t.Fatal(err)
	}
	cells := s.Cells()
	if len(cells) != 1 {
		t.Fatalf("cells: %d, want 1", len(cells))
	}
	k := cells[0]
	canon := k.Canonical()
	for _, want := range []string{"app=FFT", "procs=4", "backend=genima", "scale=test",
		"sched=" + sim.DefaultSchedulerName(), "seed=7", "plan=send:p=0.05"} {
		if !strings.Contains(canon, want) {
			t.Errorf("canonical %q missing %q", canon, want)
		}
	}

	// Same experiment, different plan spelling: same address.
	s2 := s
	s2.Plan = "send:p=0.05"
	if err := s2.Normalize(); err != nil {
		t.Fatal(err)
	}
	if s2.Cells()[0].Hash() != k.Hash() {
		t.Error("equivalent plan spellings produced different cache keys")
	}

	// No plan: the seed is code-irrelevant and must canonicalize to 0.
	s3 := Spec{Apps: []string{"FFT"}, Procs: []int{4}, Backends: []string{"genima"},
		Scale: "test", Seed: 123}
	if err := s3.Normalize(); err != nil {
		t.Fatal(err)
	}
	if s3.Seed != 0 {
		t.Errorf("fault-free seed not canonicalized: %d", s3.Seed)
	}
}

// TestRouteLiteralMatchesHandler pins that the doccheck-linted routes
// literal and the mounted handler set cannot drift apart (Handler panics on
// a mismatch; this exercises it).
func TestRouteLiteralMatchesHandler(t *testing.T) {
	srv := New(Config{Jobs: 1})
	defer srv.Drain()
	if srv.Handler() == nil {
		t.Fatal("Handler returned nil")
	}
	if len(routes) != 9 {
		t.Errorf("routes literal has %d entries; update docs/SERVE.md and this pin together", len(routes))
	}
}
