package farm

import (
	"strconv"

	"cables/internal/metrics"
	"cables/internal/stats"
)

// familyNames lists every metric family the farm registers, as string
// literals.  Two gates pin this inventory: cmd/doccheck requires each name
// to appear backquoted in a docs/OBSERVABILITY.md table, and
// TestFamilyNamesMatchRegistry requires it to equal the registry's actual
// contents — so the exposition, the literal, and the docs cannot drift
// apart.  All families are host-side service telemetry (real time), never
// virtual-time simulation results.
var familyNames = []string{
	"cables_farm_cache_entries",
	"cables_farm_cache_evictions_total",
	"cables_farm_cache_requests_total",
	"cables_farm_cell_queue_wait_seconds",
	"cables_farm_cell_run_seconds",
	"cables_farm_cells_admitted_total",
	"cables_farm_cells_running",
	"cables_farm_cells_terminal_total",
	"cables_farm_draining",
	"cables_farm_http_request_seconds",
	"cables_farm_pool_utilization_percent",
	"cables_farm_pool_workers",
	"cables_farm_queue_depth",
	"cables_farm_sweeps_rejected_total",
	"cables_farm_sweeps_total",
	"cables_sim_events_total",
}

// Metrics is the farm's registry plus every instrument handle the server
// touches.  Hot-path children (the cache-outcome and terminal-status
// counters the admission path bumps per cell) are resolved once here and
// cached in the legacy Stats view, per the internal/metrics discipline.
type Metrics struct {
	reg *metrics.Registry

	// Labeled families the server resolves per call site.
	cacheRequests *metrics.CounterVec   // outcome: hit | miss | coalesced
	cellsTerminal *metrics.CounterVec   // outcome: done | failed | rejected
	simEvents     *metrics.CounterVec   // event, app, backend, protocol
	cellRun       *metrics.HistogramVec // app, backend, protocol, sched, scale, outcome
	httpRequest   *metrics.HistogramVec // route, code
	queueWait     *metrics.Histogram

	// Gauges refreshed by the pool observer or at scrape time.
	cacheEntries *metrics.Gauge
	poolWorkers  *metrics.Gauge
	poolUtil     *metrics.Gauge
	draining     *metrics.Gauge

	// stats holds the pre-resolved children behind the legacy /v1/stats
	// counter names; Server.Stats() hands it to tests and the CLI.
	stats Stats
}

// newMetrics builds the farm's registry and resolves the hot children.
func newMetrics() *Metrics {
	r := metrics.NewRegistry()
	m := &Metrics{reg: r}

	m.stats.Sweeps = r.Counter("cables_farm_sweeps_total",
		"Sweeps accepted by POST /v1/sweeps.")
	m.stats.SweepsRejected = r.Counter("cables_farm_sweeps_rejected_total",
		"Sweeps refused (draining or queue full).")
	m.stats.CellsQueued = r.Counter("cables_farm_cells_admitted_total",
		"Cells admitted across all accepted sweeps.")

	m.cacheRequests = r.CounterVec("cables_farm_cache_requests_total",
		"Admitted cells by cache outcome: hit (served warm), coalesced (joined an in-flight identical cell), miss (fresh simulation enqueued).",
		"outcome")
	m.stats.CacheHits = m.cacheRequests.With("hit")
	m.stats.CacheMisses = m.cacheRequests.With("miss")
	m.stats.CellsCoalesced = m.cacheRequests.With("coalesced")

	m.cellsTerminal = r.CounterVec("cables_farm_cells_terminal_total",
		"Cells reaching a terminal status: done, failed, or rejected (drained before starting).",
		"outcome")
	m.stats.CellsDone = m.cellsTerminal.With("done")
	m.stats.CellsFailed = m.cellsTerminal.With("failed")
	m.stats.CellsRejected = m.cellsTerminal.With("rejected")

	m.stats.CacheEvicted = r.Counter("cables_farm_cache_evictions_total",
		"Result-cache entries evicted by the LRU bound.")
	m.stats.QueueDepth = r.Gauge("cables_farm_queue_depth",
		"Simulations queued behind the worker pool right now.")
	m.stats.CellsRunning = r.Gauge("cables_farm_cells_running",
		"Simulations executing right now.")

	m.cacheEntries = r.Gauge("cables_farm_cache_entries",
		"Result-cache entries currently resident.")
	m.poolWorkers = r.Gauge("cables_farm_pool_workers",
		"Worker-pool width (the Jobs config).")
	m.poolUtil = r.Gauge("cables_farm_pool_utilization_percent",
		"Running simulations as a percentage of pool width.")
	m.draining = r.Gauge("cables_farm_draining",
		"1 once a drain has begun, else 0.")

	m.cellRun = r.HistogramVec("cables_farm_cell_run_seconds",
		"Host wall-clock seconds one fresh simulation cell took to execute.",
		nil, "app", "backend", "protocol", "sched", "scale", "outcome")
	m.queueWait = r.Histogram("cables_farm_cell_queue_wait_seconds",
		"Host seconds a fresh cell waited in the pool queue before a worker picked it up.",
		nil)
	m.httpRequest = r.HistogramVec("cables_farm_http_request_seconds",
		"HTTP request handling latency by route pattern and status code.",
		nil, "route", "code")

	m.simEvents = r.CounterVec("cables_sim_events_total",
		"Virtual-time simulation events folded from fresh cell completions, by event kind and cell identity (cache hits do not re-count).",
		"event", "app", "backend", "protocol")

	return m
}

// observeCell records one fresh cell completion: the run-latency histogram
// sample and the fold of the cell's virtual-time counter snapshot into the
// fleet aggregates.  Only runFlight calls it, so cache hits and coalesced
// subscribers never double-count.
func (m *Metrics) observeCell(k CellKey, outcome string, hostSeconds float64, ctr stats.Snapshot) {
	m.cellRun.With(k.App, k.Backend, k.Protocol, k.Sched, k.Scale, outcome).
		Observe(hostSeconds)
	for event, n := range ctr {
		if n != 0 {
			m.simEvents.With(event, k.App, k.Backend, k.Protocol).Add(n)
		}
	}
}

// observeRequest records one handled HTTP request.
func (m *Metrics) observeRequest(route string, code int, seconds float64) {
	m.httpRequest.With(route, strconv.Itoa(code)).Observe(seconds)
}
