package farm

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"cables/internal/metrics"
)

// scrape fetches and parses GET /metrics.
func scrape(t *testing.T, client *http.Client, url string) *metrics.Scrape {
	t.Helper()
	resp, err := client.Get(url + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("Content-Type = %q, want text/plain", ct)
	}
	s, err := metrics.ParseText(resp.Body)
	if err != nil {
		t.Fatalf("parse exposition: %v", err)
	}
	return s
}

// TestFamilyNamesMatchRegistry pins the doccheck-linted familyNames literal
// to the registry's actual contents, so the docs inventory, the literal,
// and the exposition cannot drift apart.
func TestFamilyNamesMatchRegistry(t *testing.T) {
	got := newMetrics().reg.Families()
	if len(got) != len(familyNames) {
		t.Fatalf("registry has %d families, familyNames lists %d:\nregistry: %v\nliteral:  %v",
			len(got), len(familyNames), got, familyNames)
	}
	for i := range got {
		if got[i] != familyNames[i] {
			t.Errorf("family %d: registry %q, literal %q", i, got[i], familyNames[i])
		}
	}
}

// TestMetricsEndpoint runs the miss-then-hit sweep pattern and checks the
// exposition: every family present with HELP and TYPE headers, counters
// reflecting the admissions, the run histogram carrying the cell's labels.
func TestMetricsEndpoint(t *testing.T) {
	srv, ts := newTestFarm(t, Config{Jobs: 2})
	srv.runCell = func(k CellKey) *CellResult {
		return &CellResult{Counters: map[string]int64{"pageFaults": 3}}
	}
	spec := `{"apps":["FFT"],"procs":[1,2],"backends":["genima"],"scale":"test"}`
	waitSweep(t, ts, postSweep(t, ts, spec).ID)
	waitSweep(t, ts, postSweep(t, ts, spec).ID) // identical: pure cache hits

	scrape(t, ts.Client(), ts.URL) // its own sample lands after the handler returns
	s := scrape(t, ts.Client(), ts.URL)
	for _, fam := range familyNames {
		if _, ok := s.Type[fam]; !ok {
			t.Errorf("family %s missing a TYPE header", fam)
		}
		if _, ok := s.Help[fam]; !ok {
			t.Errorf("family %s missing a HELP line", fam)
		}
	}

	for name, labels := range map[string]map[string]string{
		"cables_farm_sweeps_total":         nil,
		"cables_farm_cells_admitted_total": nil,
		"cables_farm_cache_requests_total": {"outcome": "hit"},
		"cables_farm_cells_terminal_total": {"outcome": "done"},
	} {
		got, ok := s.Value(name, labels)
		want := map[string]float64{
			"cables_farm_sweeps_total":         2,
			"cables_farm_cells_admitted_total": 4,
			"cables_farm_cache_requests_total": 2,
			"cables_farm_cells_terminal_total": 4,
		}[name]
		if !ok || got != want {
			t.Errorf("%s%v = %v ok=%t, want %v", name, labels, got, ok, want)
		}
	}

	// Two fresh cells ran; the run histogram carries the cell identity and
	// only fresh executions (no double-count from the cache-hit resubmit).
	if got, ok := s.Value("cables_farm_cell_run_seconds_count",
		map[string]string{"app": "FFT", "backend": "genima", "outcome": "done"}); !ok || got != 2 {
		t.Errorf("cell_run count = %v ok=%t, want 2", got, ok)
	}
	// The sim-counter bridge folded each fresh cell's snapshot once.
	if got, ok := s.Value("cables_sim_events_total",
		map[string]string{"event": "pageFaults", "app": "FFT"}); !ok || got != 6 {
		t.Errorf("sim_events pageFaults = %v ok=%t, want 6", got, ok)
	}
	// Queue-wait histogram saw both pool jobs.
	if got, ok := s.Value("cables_farm_cell_queue_wait_seconds_count", nil); !ok || got != 2 {
		t.Errorf("queue_wait count = %v ok=%t, want 2", got, ok)
	}
	// The middleware recorded this test's own requests under route labels.
	byRoute := s.SumBy("cables_farm_http_request_seconds_count", "route")
	if byRoute["POST /v1/sweeps"] != 2 {
		t.Errorf("http_request count for POST /v1/sweeps = %v, want 2", byRoute["POST /v1/sweeps"])
	}
	if byRoute["GET /metrics"] == 0 {
		t.Error("http_request count for GET /metrics is zero")
	}
	if v, ok := s.Value("cables_farm_pool_workers", nil); !ok || v != 2 {
		t.Errorf("pool_workers = %v ok=%t, want 2", v, ok)
	}
}

// TestStatsAliasesMetrics pins the no-drift satellite: every /v1/stats
// counter equals the corresponding /metrics sample, because both read the
// same registry instruments.
func TestStatsAliasesMetrics(t *testing.T) {
	srv, ts := newTestFarm(t, Config{Jobs: 1})
	srv.runCell = func(k CellKey) *CellResult { return &CellResult{} }
	spec := `{"apps":["FFT"],"procs":[1,2,3],"backends":["genima"],"scale":"test"}`
	waitSweep(t, ts, postSweep(t, ts, spec).ID)
	waitSweep(t, ts, postSweep(t, ts, spec).ID)

	snap := srv.StatsSnapshot()
	s := scrape(t, ts.Client(), ts.URL)
	for key, sample := range map[string]struct {
		name   string
		labels map[string]string
	}{
		"sweeps":         {"cables_farm_sweeps_total", nil},
		"sweepsRejected": {"cables_farm_sweeps_rejected_total", nil},
		"cellsQueued":    {"cables_farm_cells_admitted_total", nil},
		"cacheHits":      {"cables_farm_cache_requests_total", map[string]string{"outcome": "hit"}},
		"cacheMisses":    {"cables_farm_cache_requests_total", map[string]string{"outcome": "miss"}},
		"cellsCoalesced": {"cables_farm_cache_requests_total", map[string]string{"outcome": "coalesced"}},
		"cellsDone":      {"cables_farm_cells_terminal_total", map[string]string{"outcome": "done"}},
		"cellsFailed":    {"cables_farm_cells_terminal_total", map[string]string{"outcome": "failed"}},
		"cellsRejected":  {"cables_farm_cells_terminal_total", map[string]string{"outcome": "rejected"}},
		"cacheEvicted":   {"cables_farm_cache_evictions_total", nil},
		"cacheEntries":   {"cables_farm_cache_entries", nil},
		"queueDepth":     {"cables_farm_queue_depth", nil},
		"cellsRunning":   {"cables_farm_cells_running", nil},
	} {
		got, ok := s.Value(sample.name, sample.labels)
		if !ok || int64(got) != snap[key] {
			t.Errorf("stats %q = %d but %s%v = %v ok=%t",
				key, snap[key], sample.name, sample.labels, got, ok)
		}
	}
	admissionInvariant(t, srv)
}

// TestConcurrentScrapes scrapes /metrics from two goroutines while a sweep
// is actively completing cells; with -race this is the farm's scrape-vs-
// hot-path gate.
func TestConcurrentScrapes(t *testing.T) {
	srv, ts := newTestFarm(t, Config{Jobs: 2})
	srv.runCell = func(k CellKey) *CellResult {
		time.Sleep(2 * time.Millisecond)
		return &CellResult{Counters: map[string]int64{"diffs": 1}}
	}
	sv := postSweep(t, ts,
		`{"apps":["FFT"],"procs":[1,2,3,4,5,6],"backends":["genima"],"scale":"test"}`)

	var wg sync.WaitGroup
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				scrape(t, ts.Client(), ts.URL)
			}
		}()
	}
	wg.Wait()
	waitSweep(t, ts, sv.ID)

	s := scrape(t, ts.Client(), ts.URL)
	if got, ok := s.Value("cables_farm_cells_terminal_total",
		map[string]string{"outcome": "done"}); !ok || got != 6 {
		t.Errorf("terminal done = %v ok=%t, want 6", got, ok)
	}
}

// TestReadyzFlipsOnDrain pins the readiness satellite: /readyz serves 200
// before a drain and 503 (with Retry-After) after one begins, while
// /healthz keeps answering 200 throughout.
func TestReadyzFlipsOnDrain(t *testing.T) {
	srv, ts := newTestFarm(t, Config{Jobs: 1})
	srv.runCell = func(k CellKey) *CellResult { return &CellResult{} }

	code, _ := getBody(t, ts, "/readyz")
	if code != http.StatusOK {
		t.Fatalf("/readyz before drain: %d, want 200", code)
	}

	srv.Drain()

	resp, err := ts.Client().Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("/readyz during drain: %d, want 503 (%s)", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("/readyz 503 missing Retry-After")
	}
	var errBody struct {
		Retriable bool `json:"retriable"`
	}
	if err := json.Unmarshal(body, &errBody); err != nil || !errBody.Retriable {
		t.Errorf("/readyz 503 body not retriable: %s", body)
	}

	// Liveness is not readiness: the process is still healthy.
	code, healthBody := getBody(t, ts, "/healthz")
	if code != http.StatusOK {
		t.Errorf("/healthz during drain: %d, want 200", code)
	}
	if !bytes.Contains(healthBody, []byte(`"draining":true`)) {
		t.Errorf("/healthz body does not report draining: %s", healthBody)
	}
	// And the drain gauge flips in the exposition.
	s := scrape(t, ts.Client(), ts.URL)
	if v, ok := s.Value("cables_farm_draining", nil); !ok || v != 1 {
		t.Errorf("cables_farm_draining = %v ok=%t, want 1", v, ok)
	}
}

// TestRequestIDAndSweepThreading pins the structured-log plumbing visible
// on the wire: responses carry X-Request-Id, and every streamed progress
// event self-identifies its sweep.
func TestRequestIDAndSweepThreading(t *testing.T) {
	srv, ts := newTestFarm(t, Config{Jobs: 1})
	srv.runCell = func(k CellKey) *CellResult { return &CellResult{} }

	resp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	first := resp.Header.Get("X-Request-Id")
	if first == "" {
		t.Fatal("response missing X-Request-Id")
	}
	resp, err = ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if second := resp.Header.Get("X-Request-Id"); second == first {
		t.Errorf("request ids did not advance: %q then %q", first, second)
	}

	sv := waitSweep(t, ts, postSweep(t, ts,
		`{"apps":["FFT"],"procs":[1],"backends":["genima"],"scale":"test"}`).ID)
	sr, err := ts.Client().Get(ts.URL + "/v1/sweeps/" + sv.ID + "/stream?format=ndjson")
	if err != nil {
		t.Fatal(err)
	}
	defer sr.Body.Close()
	raw, _ := io.ReadAll(sr.Body)
	for _, line := range strings.Split(strings.TrimSpace(string(raw)), "\n") {
		var ev struct {
			Event string   `json:"event"`
			Data  cellView `json:"data"`
		}
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("bad ndjson line %q: %v", line, err)
		}
		if ev.Event == "cell" && ev.Data.Sweep != sv.ID {
			t.Errorf("cell event sweep = %q, want %q (%s)", ev.Data.Sweep, sv.ID, line)
		}
	}
}
