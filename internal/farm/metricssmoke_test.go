package farm

import (
	"os"
	"runtime"
	"testing"
)

// TestMetricsSmoke is the `make metrics-smoke` gate: boot a real farm, run
// a small fault-plan sweep twice (miss then hit), scrape GET /metrics, and
// assert the key families are present with the cache-hit counter nonzero —
// then drain and check no goroutines leaked.  Real simulations run at test
// scale, so the smoke stays in single-digit seconds.  Gated behind
// CABLES_METRICS_SMOKE=1 to keep plain `go test ./...` fast.
func TestMetricsSmoke(t *testing.T) {
	if os.Getenv("CABLES_METRICS_SMOKE") != "1" {
		t.Skip("metrics smoke: set CABLES_METRICS_SMOKE=1 (run via `make metrics-smoke`)")
	}
	base := runtime.NumGoroutine()
	srv, ts := newTestFarm(t, Config{Jobs: 2})

	// Before any ready traffic the probe must answer 200.
	if code, _ := getBody(t, ts, "/readyz"); code != 200 {
		t.Fatalf("/readyz before sweeps: %d, want 200", code)
	}

	// The same fault-plan sweep twice: first all misses, second all hits.
	spec := `{"apps":["FFT"],"procs":[1,4],"backends":["genima","cables"],"scale":"test","plan":"send:p=0.0001","seed":7}`
	first := waitSweep(t, ts, postSweep(t, ts, spec).ID)
	if first.Status != "done" {
		t.Fatalf("first sweep: status %s", first.Status)
	}
	second := waitSweep(t, ts, postSweep(t, ts, spec).ID)
	if second.Status != "done" {
		t.Fatalf("second sweep: status %s", second.Status)
	}
	if second.Counts["cached"] != len(second.Cells) {
		t.Errorf("second sweep: %d/%d cells cached; the repeat was not a pure hit",
			second.Counts["cached"], len(second.Cells))
	}

	s := scrape(t, ts.Client(), ts.URL)
	for _, fam := range []string{
		"cables_farm_sweeps_total",
		"cables_farm_cache_requests_total",
		"cables_farm_cells_terminal_total",
		"cables_farm_cell_run_seconds",
		"cables_farm_cell_queue_wait_seconds",
		"cables_farm_http_request_seconds",
		"cables_sim_events_total",
	} {
		if _, ok := s.Type[fam]; !ok {
			t.Errorf("scrape missing key family %s", fam)
		}
	}
	if hits, ok := s.Value("cables_farm_cache_requests_total",
		map[string]string{"outcome": "hit"}); !ok || hits == 0 {
		t.Errorf("cache-hit counter = %v ok=%t, want nonzero after the repeat sweep", hits, ok)
	}
	if n := s.SumBy("cables_farm_cell_run_seconds_count", "outcome")["done"]; n != float64(len(first.Cells)) {
		t.Errorf("run histogram count = %v, want %d (fresh cells only)",
			n, len(first.Cells))
	}
	// Real fault-plan runs fold real virtual-time events into the bridge.
	if byEvent := s.SumBy("cables_sim_events_total", "event"); len(byEvent) == 0 {
		t.Error("sim-counter bridge folded no events from the fault-plan sweep")
	} else {
		t.Logf("bridge folded %d event kinds", len(byEvent))
	}
	if p95, ok := s.Quantile("cables_farm_cell_run_seconds", 0.95, nil); !ok || p95 <= 0 {
		t.Errorf("p95 cell latency = %v ok=%t, want > 0", p95, ok)
	}

	// Drain: /readyz flips to 503, and no goroutines outlive the farm.
	srv.Drain()
	if resp, err := ts.Client().Get(ts.URL + "/readyz"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != 503 {
			t.Errorf("/readyz after drain: %d, want 503", resp.StatusCode)
		}
	}
	ts.Close()
	waitGoroutines(t, base)
}
