package farm

import (
	"fmt"
	"strings"
	"testing"

	"cables/internal/coherence"
	"cables/internal/sim"
)

// pinGenimaDefault keeps these key-compat tests meaningful when the suite
// runs with CABLES_PROTOCOL set: Normalize fills empty protocol fields from
// the process default, and the compat contract is about the genima default.
func pinGenimaDefault(t *testing.T) {
	t.Helper()
	saved := coherence.DefaultName()
	if err := coherence.SetDefault(coherence.ProtoGenima); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { coherence.SetDefault(saved) })
}

// TestProtocolCacheKeyCompat pins the cache-address compatibility contract
// from DESIGN.md §5e: a default-protocol cell canonicalizes to the exact
// pre-protocol format string (so every cache entry addressed before the
// protocol seam existed keeps its key), and only non-default protocols
// extend it with a trailing |protocol= field.
func TestProtocolCacheKeyCompat(t *testing.T) {
	pinGenimaDefault(t)
	s := Spec{Apps: []string{"FFT"}, Procs: []int{4}, Backends: []string{"genima"}, Scale: "test"}
	if err := s.Normalize(); err != nil {
		t.Fatal(err)
	}
	k := s.Cells()[0]
	if k.Protocol != coherence.ProtoGenima {
		t.Fatalf("Normalize filled protocol %q, want the genima default", k.Protocol)
	}
	// The byte-exact pre-protocol canonical form.  If this breaks, every
	// previously cached default-protocol result silently goes cold.
	want := fmt.Sprintf("cables-farm-v1|app=FFT|procs=4|backend=genima|scale=test|sched=%s|gran=0|contended=false|coalesce=false|plan=|seed=0",
		sim.DefaultSchedulerName())
	if got := k.Canonical(); got != want {
		t.Errorf("default-protocol canonical form drifted:\n got %q\nwant %q", got, want)
	}

	// An explicit "genima" and an empty field are the same experiment.
	ke := k
	ke.Protocol = ""
	if ke.Hash() != k.Hash() {
		t.Error("explicit genima and empty protocol hash to different keys")
	}

	// Non-default protocols append exactly one field and change the key.
	for _, proto := range []string{coherence.ProtoCommutative, coherence.ProtoDelegate} {
		kv := k
		kv.Protocol = proto
		if got, want := kv.Canonical(), k.Canonical()+"|protocol="+proto; got != want {
			t.Errorf("%s canonical form:\n got %q\nwant %q", proto, got, want)
		}
		if kv.Hash() == k.Hash() {
			t.Errorf("%s hashed identically to genima: the cache would serve the wrong protocol's results", proto)
		}
	}
}

// TestCacheNearMissProtocol drives the protocol field through the live
// farm: flipping the protocol is a code-relevant change (cache miss per
// variant), while naming the default explicitly is not (cache hit).
func TestCacheNearMissProtocol(t *testing.T) {
	pinGenimaDefault(t)
	srv, ts := newTestFarm(t, Config{Jobs: 2})
	base := `"apps":["FFT"],"procs":[1],"backends":["genima"],"scale":"test"`
	run := func(spec string) {
		t.Helper()
		sv := waitSweep(t, ts, postSweep(t, ts, spec).ID)
		if sv.Status != "done" {
			t.Fatalf("sweep %s: status %s", spec, sv.Status)
		}
	}

	run(`{` + base + `}`)
	misses := srv.Stats().CacheMisses.Load()
	if misses != 1 {
		t.Fatalf("base sweep: %d misses, want 1", misses)
	}

	for i, variant := range []string{
		`{` + base + `,"protocol":"commutative"}`,
		`{` + base + `,"protocol":"delegate"}`,
	} {
		run(variant)
		want := misses + int64(i) + 1
		if got := srv.Stats().CacheMisses.Load(); got != want {
			t.Errorf("variant %d (%s): misses %d, want %d (must not hit the cache)", i, variant, got, want)
		}
	}
	total := srv.Stats().CacheMisses.Load()

	// Naming the default is code-irrelevant: same key, cache hit.
	run(`{` + base + `,"protocol":"genima"}`)
	if got := srv.Stats().CacheMisses.Load(); got != total {
		t.Errorf(`explicit "genima" missed the cache (misses %d -> %d), want hit`, total, got)
	}

	// Unknown protocols are rejected at admission, not cached as cells.
	resp, err := ts.Client().Post(ts.URL+"/v1/sweeps", "application/json",
		strings.NewReader(`{`+base+`,"protocol":"treadmarks"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Errorf("unknown protocol admitted with status %d, want 400", resp.StatusCode)
	}
	admissionInvariant(t, srv)
}
