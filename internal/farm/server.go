package farm

import (
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"cables/internal/bench"
	"cables/internal/fault"
	"cables/internal/sim"
	"cables/internal/wire"
)

// Config sizes one farm server.
type Config struct {
	// Jobs is the worker-pool width — how many simulation cells execute
	// concurrently on the host (default bench.DefaultJobs()).
	Jobs int
	// CacheEntries bounds the content-addressed result cache (default
	// 4096 entries, LRU eviction).
	CacheEntries int
	// MaxQueue bounds admitted-but-unstarted simulations; a sweep that
	// would push the queue past it is refused with a retriable 503
	// (default 65536).
	MaxQueue int
	// Logger receives one structured record per handled HTTP request
	// (request id, method, route, status, duration) plus sweep-lifecycle
	// records.  nil discards — tests and embedded pools stay silent.
	Logger *slog.Logger
}

// routes lists every registered HTTP route as string literals.  Handler
// registers exactly this set, and cmd/doccheck requires each entry to
// appear backquoted in a docs/SERVE.md table — an undocumented endpoint
// fails CI.
var routes = []string{
	"GET /healthz",
	"GET /readyz",
	"GET /metrics",
	"GET /v1/stats",
	"POST /v1/sweeps",
	"GET /v1/sweeps",
	"GET /v1/sweeps/{id}",
	"GET /v1/sweeps/{id}/stream",
	"GET /v1/cells/{key}",
}

// Cell states reported in sweep responses and progress streams.
const (
	CellQueued   = "queued"   // admitted, simulation not started
	CellRunning  = "running"  // simulation executing (or coalesced onto one)
	CellDone     = "done"     // completed; result available
	CellFailed   = "failed"   // simulation errored; result carries the message
	CellRejected = "rejected" // drained before starting; retriable elsewhere/later
)

// Server is one farm instance: a worker pool, a content-addressed result
// cache, the sweep registry, and the drain state machine.  Create with New,
// mount Handler on an http.Server, call Drain (or DrainOnSignal) to stop.
type Server struct {
	cfg     Config
	pool    *bench.Pool
	cache   *Cache
	metrics *Metrics
	stats   *Stats // legacy handles into s.metrics' registry
	logger  *slog.Logger
	reqID   atomic.Int64

	mu       sync.Mutex
	sweeps   map[string]*sweep
	inflight map[string]*flight // cell hash -> pending/executing simulation
	nextID   int
	draining bool
	drained  chan struct{}

	// runCell executes one simulation cell; tests substitute a stub to
	// control timing.  The default is runCellSim.
	runCell func(CellKey) *CellResult
}

// sweep is the server-side state of one accepted sweep request.
type sweep struct {
	id        string
	spec      Spec
	refs      []*cellRef
	remaining int           // cells not yet terminal
	events    []streamEvent // progress log, replayed by /stream
	notify    chan struct{} // closed+rotated on every event append
}

// cellRef is one cell slot of one sweep.  Several refs (across sweeps) may
// subscribe to the same flight.
type cellRef struct {
	sw        *sweep
	key       CellKey
	hash      string
	status    string
	cached    bool
	retriable bool
	res       *CellResult
}

// flight is one in-flight simulation: the single execution every identical
// admitted cell coalesces onto.
type flight struct {
	key     CellKey
	hash    string
	started bool
	subs    []*cellRef
}

// streamEvent is one pre-rendered progress event.
type streamEvent struct {
	kind string // "cell" or "sweep"
	data []byte // JSON payload
}

// New creates a farm server and starts its worker pool.
func New(cfg Config) *Server {
	if cfg.Jobs <= 0 {
		cfg.Jobs = bench.DefaultJobs()
	}
	if cfg.CacheEntries <= 0 {
		cfg.CacheEntries = 4096
	}
	if cfg.MaxQueue <= 0 {
		cfg.MaxQueue = 65536
	}
	s := &Server{
		cfg:      cfg,
		pool:     bench.NewPool(cfg.Jobs),
		metrics:  newMetrics(),
		logger:   cfg.Logger,
		sweeps:   make(map[string]*sweep),
		inflight: make(map[string]*flight),
		drained:  make(chan struct{}),
		runCell:  runCellSim,
	}
	if s.logger == nil {
		s.logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	s.stats = &s.metrics.stats
	s.cache = NewCache(cfg.CacheEntries, func() { s.stats.CacheEvicted.Add(1) })
	workers := s.pool.Workers()
	s.metrics.poolWorkers.Set(int64(workers))
	s.pool.SetObserver(func(queued, running int) {
		s.stats.QueueDepth.Set(int64(queued))
		s.stats.CellsRunning.Set(int64(running))
		s.metrics.poolUtil.Set(int64(running * 100 / workers))
	})
	s.pool.SetJobObserver(func(wait, run time.Duration) {
		s.metrics.queueWait.Observe(wait.Seconds())
	})
	return s
}

// Stats exposes the service counters (tests and the CLI read them).  The
// handles alias the same registry instruments `GET /metrics` renders.
func (s *Server) Stats() *Stats { return s.stats }

// Metrics exposes the server's metrics registry (hostperf benchmarks the
// scrape path through it).
func (s *Server) Metrics() *Metrics { return s.metrics }

// StatsSnapshot is the /v1/stats payload: every Stats key plus the cache's
// current entry count.
func (s *Server) StatsSnapshot() map[string]int64 {
	snap := s.stats.Snapshot()
	snap["cacheEntries"] = int64(s.cache.Len())
	return snap
}

// Draining reports whether a drain has begun.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Drain stops intake, completes in-flight cells, rejects queued cells with
// a retriable status, and shuts the worker pool down.  It blocks until the
// drain is complete and is safe to call more than once.
func (s *Server) Drain() {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		<-s.drained
		return
	}
	s.draining = true
	s.mu.Unlock()
	s.metrics.draining.Set(1)
	s.logger.Info("drain started")

	// Wait for in-flight simulations; their completion paths take s.mu, so
	// the lock must be free here.  Queued-but-unstarted jobs come back
	// unrun and their flights are exactly the ones never marked started.
	s.pool.Drain()

	s.mu.Lock()
	for hash, f := range s.inflight {
		if f.started {
			continue // completed between pool drain and here
		}
		for _, ref := range f.subs {
			ref.retriable = true
			s.completeRef(ref, CellRejected, nil)
			s.stats.CellsRejected.Add(1)
		}
		delete(s.inflight, hash)
	}
	close(s.drained)
	s.mu.Unlock()
	s.logger.Info("drain complete")
}

// DrainOnSignal registers the given signals (default SIGINT+SIGTERM via the
// caller) and drains the server when the first one arrives.  The returned
// channel closes when the drain completes — `cablesim serve` waits on it
// before shutting the HTTP listener down.
func (s *Server) DrainOnSignal(sigs ...os.Signal) <-chan struct{} {
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, sigs...)
	done := make(chan struct{})
	go func() {
		<-ch
		signal.Stop(ch)
		s.Drain()
		close(done)
	}()
	return done
}

// Handler returns the farm's HTTP API, registering exactly the routes
// listed in the routes literal.  Every route is wrapped in the telemetry
// middleware: one cables_farm_http_request_seconds sample and one
// structured log record per request.
func (s *Server) Handler() http.Handler {
	handlers := map[string]http.HandlerFunc{
		"GET /healthz":               s.handleHealth,
		"GET /readyz":                s.handleReady,
		"GET /metrics":               s.handleMetrics,
		"GET /v1/stats":              s.handleStats,
		"POST /v1/sweeps":            s.handleSubmit,
		"GET /v1/sweeps":             s.handleList,
		"GET /v1/sweeps/{id}":        s.handleSweep,
		"GET /v1/sweeps/{id}/stream": s.handleStream,
		"GET /v1/cells/{key}":        s.handleCell,
	}
	mux := http.NewServeMux()
	for _, r := range routes {
		h, ok := handlers[r]
		if !ok {
			panic("farm: route " + r + " has no handler")
		}
		mux.HandleFunc(r, s.withTelemetry(r, h))
	}
	return mux
}

// statusWriter records the response status for the telemetry middleware.
// It forwards Flush so the stream endpoint keeps its SSE semantics through
// the wrapper.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// withTelemetry wraps one route's handler: assign a request id (echoed as
// X-Request-Id), time the request, record the latency histogram sample
// under the route pattern and status code, and emit one structured log
// record.  The request id is per-process monotonic — enough to correlate a
// log line with a client-observed response.
func (s *Server) withTelemetry(route string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		id := fmt.Sprintf("r%08d", s.reqID.Add(1))
		w.Header().Set("X-Request-Id", id)
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		start := time.Now()
		h(sw, r)
		dur := time.Since(start)
		s.metrics.observeRequest(route, sw.code, dur.Seconds())
		s.logger.Info("request",
			"id", id, "method", r.Method, "path", r.URL.Path,
			"route", route, "status", sw.code, "durUS", dur.Microseconds())
	}
}

// runCellSim executes one cell for real: it rebuilds the injector from the
// canonical plan+seed, applies the granularity override and wire-plane
// modes, and runs the workload through bench.RunAppCell.
func runCellSim(k CellKey) *CellResult {
	var costs *sim.Costs
	if k.Gran > 0 {
		costs = sim.DefaultCosts()
		costs.MapGranularity = k.Gran
	}
	var inj *fault.Injector
	if k.Plan != "" {
		plan, err := fault.ParsePlan(k.Plan)
		if err != nil {
			// Unreachable after Spec.Normalize; kept as a failed cell so a
			// corrupted key can never crash a worker.
			return &CellResult{Err: "farm: bad fault plan in cell key: " + err.Error()}
		}
		inj = fault.New(plan, k.Seed)
	}
	opt := bench.CellOptions{
		Sched:    k.Sched,
		Protocol: k.Protocol,
		Wire:     wire.Options{ContendedSync: k.ContendedSync, Coalesce: k.Coalesce},
		Fault:    inj,
	}
	res, ctr, err := bench.RunAppCell(k.App, k.Backend, k.Procs, bench.Scale(k.Scale), costs, opt)
	cr := &CellResult{Result: res}
	if ctr != nil {
		cr.Counters = ctr.Snapshot()
	}
	if inj != nil {
		cr.Injected = inj.Injected()
	}
	cr.Degraded = cr.Injected > 0 && err == nil
	if err != nil {
		cr.Err = err.Error()
	}
	return cr
}

// ---- admission ----

// handleSubmit admits one sweep: expand the spec into cells, serve what the
// cache already holds, coalesce onto in-flight identical cells, and enqueue
// the rest.  The response is the full sweep view (202) so clients see the
// cache classification immediately.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec Spec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, "bad spec JSON: "+err.Error(), false)
		return
	}
	if err := spec.Normalize(); err != nil {
		writeError(w, http.StatusBadRequest, err.Error(), false)
		return
	}
	cells := spec.Cells()

	s.mu.Lock()
	if s.draining {
		s.stats.SweepsRejected.Add(1)
		s.mu.Unlock()
		writeError(w, http.StatusServiceUnavailable, "server is draining", true)
		return
	}
	if s.stats.QueueDepth.Load()+int64(len(cells)) > int64(s.cfg.MaxQueue) {
		s.stats.SweepsRejected.Add(1)
		s.mu.Unlock()
		writeError(w, http.StatusServiceUnavailable, "queue is full", true)
		return
	}

	s.nextID++
	sw := &sweep{
		id:     fmt.Sprintf("s%06d", s.nextID),
		spec:   spec,
		notify: make(chan struct{}),
	}
	s.sweeps[sw.id] = sw
	sw.refs = make([]*cellRef, len(cells))
	sw.remaining = len(cells)
	for i, k := range cells {
		ref := &cellRef{sw: sw, key: k, hash: k.Hash(), status: CellQueued}
		sw.refs[i] = ref
		if res, ok := s.cache.Get(ref.hash); ok {
			ref.cached = true
			s.stats.CacheHits.Add(1)
			s.completeRef(ref, terminalStatus(res), res)
			continue
		}
		if f, ok := s.inflight[ref.hash]; ok {
			f.subs = append(f.subs, ref)
			if f.started {
				ref.status = CellRunning
			}
			s.stats.CellsCoalesced.Add(1)
			s.appendCellEvent(ref)
			continue
		}
		f := &flight{key: k, hash: ref.hash, subs: []*cellRef{ref}}
		s.inflight[ref.hash] = f
		s.stats.CacheMisses.Add(1)
		s.appendCellEvent(ref)
		if err := s.pool.Submit(func() { s.runFlight(f) }); err != nil {
			// A concurrent drain won the race; reject like any queued cell.
			ref.retriable = true
			s.completeRef(ref, CellRejected, nil)
			s.stats.CellsRejected.Add(1)
			delete(s.inflight, ref.hash)
		}
	}
	s.stats.Sweeps.Add(1)
	s.stats.CellsQueued.Add(int64(len(cells)))
	body := s.sweepViewLocked(sw)
	s.mu.Unlock()

	s.logger.Info("sweep accepted",
		"sweep", sw.id, "cells", len(cells),
		"cached", body.Counts["cached"], "kind", spec.Kind)
	writeJSON(w, http.StatusAccepted, body)
}

// runFlight is the pool job for one fresh simulation.
func (s *Server) runFlight(f *flight) {
	s.mu.Lock()
	f.started = true
	for _, ref := range f.subs {
		ref.status = CellRunning
		s.appendCellEvent(ref)
	}
	s.mu.Unlock()

	start := time.Now()
	var res *CellResult
	if err := bench.Isolate(func() { res = s.runCell(f.key) }); err != nil {
		res = &CellResult{Err: "farm: cell " + err.Error()}
	}
	res.Key = f.hash
	res.Canonical = f.key.Canonical()
	res.HostNS = time.Since(start).Nanoseconds()
	// Fresh completions (and only fresh completions — cache hits and
	// coalesced subscribers share this one execution) feed the run-latency
	// histogram and fold the cell's virtual-time counters into the fleet
	// aggregates.
	s.metrics.observeCell(f.key, terminalStatus(res),
		float64(res.HostNS)/1e9, res.Counters)

	s.mu.Lock()
	s.cache.Put(f.hash, res)
	delete(s.inflight, f.hash)
	status := terminalStatus(res)
	for _, ref := range f.subs {
		s.completeRef(ref, status, res)
	}
	s.mu.Unlock()
}

// terminalStatus maps a result to its cell status.
func terminalStatus(res *CellResult) string {
	if res.Err != "" {
		return CellFailed
	}
	return CellDone
}

// completeRef moves one cell to a terminal status, bumps the terminal
// counters, logs the progress event, and — when it is the sweep's last open
// cell — logs the sweep-terminal event.  Callers hold s.mu.
func (s *Server) completeRef(ref *cellRef, status string, res *CellResult) {
	ref.status = status
	ref.res = res
	switch status {
	case CellDone:
		s.stats.CellsDone.Add(1)
	case CellFailed:
		s.stats.CellsFailed.Add(1)
	}
	s.appendCellEvent(ref)
	ref.sw.remaining--
	if ref.sw.remaining == 0 {
		data, _ := json.Marshal(s.sweepSummaryLocked(ref.sw))
		ref.sw.events = append(ref.sw.events, streamEvent{kind: "sweep", data: data})
	}
}

// appendCellEvent logs one progress event for ref and wakes the sweep's
// stream watchers.  Callers hold s.mu.
func (s *Server) appendCellEvent(ref *cellRef) {
	data, _ := json.Marshal(s.cellViewLocked(ref))
	ref.sw.events = append(ref.sw.events, streamEvent{kind: "cell", data: data})
	close(ref.sw.notify)
	ref.sw.notify = make(chan struct{})
}

// ---- JSON views ----

// cellView is the wire form of one sweep cell.  Sweep carries the owning
// sweep's id so every SSE/NDJSON progress event is self-identifying — a
// client multiplexing several streams can attribute each event without
// tracking which connection it arrived on.
type cellView struct {
	Sweep     string      `json:"sweep"`
	Key       string      `json:"key"`
	App       string      `json:"app"`
	Procs     int         `json:"procs"`
	Backend   string      `json:"backend"`
	Status    string      `json:"status"`
	Cached    bool        `json:"cached"`
	Retriable bool        `json:"retriable,omitempty"`
	Result    *CellResult `json:"result,omitempty"`
}

// sweepView is the wire form of one sweep.
type sweepView struct {
	ID     string         `json:"id"`
	Spec   Spec           `json:"spec"`
	Status string         `json:"status"`
	Counts map[string]int `json:"counts"`
	Cells  []cellView     `json:"cells"`
}

// sweepSummary is the wire form used by the list endpoint and the terminal
// stream event.
type sweepSummary struct {
	ID     string         `json:"id"`
	Status string         `json:"status"`
	Counts map[string]int `json:"counts"`
}

// cellViewLocked renders one cell; kind=counters sweeps include the counter
// snapshot, other kinds serve the result without it.  Callers hold s.mu.
func (s *Server) cellViewLocked(ref *cellRef) cellView {
	v := cellView{
		Sweep: ref.sw.id,
		Key:   ref.hash, App: ref.key.App, Procs: ref.key.Procs, Backend: ref.key.Backend,
		Status: ref.status, Cached: ref.cached, Retriable: ref.retriable,
	}
	if ref.res != nil {
		res := *ref.res
		if ref.sw.spec.Kind != "counters" {
			res.Counters = nil
		}
		v.Result = &res
	}
	return v
}

// sweepStatusLocked derives the sweep status.  Callers hold s.mu.
func (s *Server) sweepStatusLocked(sw *sweep) (status string, counts map[string]int) {
	counts = map[string]int{}
	cached := 0
	for _, ref := range sw.refs {
		counts[ref.status]++
		if ref.cached {
			cached++
		}
	}
	counts["cached"] = cached
	switch {
	case sw.remaining > 0:
		status = "running"
	case counts[CellRejected] > 0:
		status = "drained"
	default:
		status = "done"
	}
	return status, counts
}

func (s *Server) sweepSummaryLocked(sw *sweep) sweepSummary {
	status, counts := s.sweepStatusLocked(sw)
	return sweepSummary{ID: sw.id, Status: status, Counts: counts}
}

func (s *Server) sweepViewLocked(sw *sweep) sweepView {
	status, counts := s.sweepStatusLocked(sw)
	v := sweepView{ID: sw.id, Spec: sw.spec, Status: status, Counts: counts,
		Cells: make([]cellView, len(sw.refs))}
	for i, ref := range sw.refs {
		v.Cells[i] = s.cellViewLocked(ref)
	}
	return v
}

// ---- read endpoints ----

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"ok": true, "draining": s.Draining()})
}

// handleReady is the readiness probe: 200 while the farm accepts sweeps,
// 503 (with Retry-After, like every retriable refusal) once a drain has
// begun — so a load balancer stops routing to a draining instance while
// /healthz keeps reporting the process alive.
func (s *Server) handleReady(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		writeError(w, http.StatusServiceUnavailable, "server is draining", true)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"ready": true})
}

// handleMetrics serves the Prometheus text exposition.  Point-in-time
// gauges that have no event to hang off (cache residency, drain state) are
// refreshed here, at scrape time; everything else is maintained by the hot
// paths.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.metrics.cacheEntries.Set(int64(s.cache.Len()))
	if s.Draining() {
		s.metrics.draining.Set(1)
	} else {
		s.metrics.draining.Set(0)
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	_ = s.metrics.reg.WritePrometheus(w)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{
		"counters": s.StatsSnapshot(),
		"draining": draining,
	})
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	ids := make([]string, 0, len(s.sweeps))
	for id := range s.sweeps {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	out := make([]sweepSummary, len(ids))
	for i, id := range ids {
		out[i] = s.sweepSummaryLocked(s.sweeps[id])
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{"sweeps": out})
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	sw, ok := s.sweeps[r.PathValue("id")]
	if !ok {
		s.mu.Unlock()
		writeError(w, http.StatusNotFound, "unknown sweep", false)
		return
	}
	body := s.sweepViewLocked(sw)
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, body)
}

func (s *Server) handleCell(w http.ResponseWriter, r *http.Request) {
	res, ok := s.cache.Get(r.PathValue("key"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown or evicted cell", false)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

// handleStream replays a sweep's progress log and follows it live: SSE
// frames by default (`event: cell|sweep`, `data: <json>`), newline-
// delimited JSON objects with `?format=ndjson`.  The stream ends after the
// terminal sweep event (or when the client goes away).
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	sw, ok := s.sweeps[r.PathValue("id")]
	s.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, "unknown sweep", false)
		return
	}
	ndjson := r.URL.Query().Get("format") == "ndjson"
	if ndjson {
		w.Header().Set("Content-Type", "application/x-ndjson")
	} else {
		w.Header().Set("Content-Type", "text/event-stream")
	}
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)

	idx := 0
	for {
		s.mu.Lock()
		events := append([]streamEvent(nil), sw.events[idx:]...)
		idx = len(sw.events)
		done := sw.remaining == 0
		notify := sw.notify
		s.mu.Unlock()

		for _, ev := range events {
			if ndjson {
				fmt.Fprintf(w, `{"event":%q,"data":%s}`+"\n", ev.kind, ev.data)
			} else {
				fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.kind, ev.data)
			}
		}
		if flusher != nil {
			flusher.Flush()
		}
		if done {
			return
		}
		select {
		case <-r.Context().Done():
			return
		case <-notify:
		}
	}
}

// ---- helpers ----

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

// writeError renders the uniform error body; retriable errors additionally
// carry `"retriable": true` and a Retry-After header so sweep drivers can
// back off and resubmit against a fresh instance.
func writeError(w http.ResponseWriter, code int, msg string, retriable bool) {
	if retriable {
		w.Header().Set("Retry-After", "5")
	}
	writeJSON(w, code, map[string]any{"error": msg, "retriable": retriable})
}
