package farm

import (
	"fmt"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"syscall"
	"testing"
	"time"
)

// TestServeSoak is the `make serve-smoke` soak: it pushes well over 1000
// queued cells through a live farm, asserts the queue actually backed up and
// drained, bounds resident memory, proves the cache-hit ratio on a repeated
// sweep, and finishes with a clean SIGTERM drain and no leaked goroutines.
// Real simulations run at test scale (a few ms per cell), so the whole soak
// stays in the tens of seconds.  Gated behind CABLES_SOAK=1 to keep plain
// `go test ./...` fast.
func TestServeSoak(t *testing.T) {
	if os.Getenv("CABLES_SOAK") != "1" {
		t.Skip("soak test: set CABLES_SOAK=1 (run via `make serve-smoke`)")
	}
	base := runtime.NumGoroutine()
	srv, ts := newTestFarm(t, Config{Jobs: 4})

	// Phase 1: 1000+ distinct cells (unique fault seeds on a real plan keep
	// every cache key fresh) across 250 sweeps of 4 cells each.  Two
	// paper-scale plug sweeps (8 cells at ~70-250ms each) occupy every
	// worker first, so the test-scale backlog genuinely reaches >= 1000
	// queued cells before the pool chews through it.
	const sweeps, perSweep, plugCells = 250, 4, 8
	ids := make([]string, 0, sweeps+2)
	ids = append(ids,
		postSweep(t, ts, `{"apps":["FFT"],"procs":[1,4],"backends":["genima","cables"],"scale":"paper"}`).ID,
		postSweep(t, ts, `{"apps":["FFT"],"procs":[2,8],"backends":["genima","cables"],"scale":"paper"}`).ID)
	// Submit from many goroutines so admission outruns the workers; a
	// sampler watches the depth gauge the whole time.
	var peak atomic.Int64
	sampling := make(chan struct{})
	go func() {
		for {
			select {
			case <-sampling:
				return
			default:
			}
			if d := srv.Stats().QueueDepth.Load(); d > peak.Load() {
				peak.Store(d)
			}
			time.Sleep(100 * time.Microsecond)
		}
	}()
	var wg sync.WaitGroup
	idCh := make(chan string, sweeps)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := g; i < sweeps; i += 16 {
				spec := fmt.Sprintf(
					`{"apps":["FFT"],"procs":[1,4],"backends":["genima","cables"],"scale":"test","plan":"send:p=0.0001","seed":%d}`, i+1)
				idCh <- postSweep(t, ts, spec).ID
			}
		}(g)
	}
	wg.Wait()
	close(idCh)
	for id := range idCh {
		ids = append(ids, id)
	}
	close(sampling)
	for _, id := range ids {
		if sv := waitSweep(t, ts, id); sv.Status != "done" {
			t.Fatalf("sweep %s: status %s", id, sv.Status)
		}
	}
	snap := srv.StatsSnapshot()
	if snap["cellsQueued"] < sweeps*perSweep+plugCells {
		t.Fatalf("queued %d cells, want >= %d", snap["cellsQueued"], sweeps*perSweep+plugCells)
	}
	if snap["cacheMisses"] != sweeps*perSweep+plugCells {
		t.Errorf("distinct-cell phase: %d misses, want %d", snap["cacheMisses"], sweeps*perSweep+plugCells)
	}
	if peak.Load() < 1000 {
		t.Errorf("queue depth peaked at %d; the soak never sustained >= 1000 queued cells", peak.Load())
	}
	t.Logf("distinct phase: %d cells, queue peak %d", snap["cellsQueued"], peak.Load())

	// Phase 2: repeat one 4-cell sweep 250 times; after the first, every
	// cell must be a hit or a coalesce — assert a >= 99%% hit ratio.
	repeated := `{"apps":["LU"],"procs":[1,4],"backends":["genima","cables"],"scale":"test"}`
	missesBefore := snap["cacheMisses"]
	ids = ids[:0]
	for i := 0; i < sweeps; i++ {
		ids = append(ids, postSweep(t, ts, repeated).ID)
	}
	for _, id := range ids {
		if sv := waitSweep(t, ts, id); sv.Status != "done" {
			t.Fatalf("repeated sweep %s: status %s", id, sv.Status)
		}
	}
	snap = srv.StatsSnapshot()
	newMisses := snap["cacheMisses"] - missesBefore
	if newMisses != perSweep {
		t.Errorf("repeated phase: %d misses, want exactly %d (one per unique cell)", newMisses, perSweep)
	}
	served := int64(sweeps * perSweep)
	ratio := float64(served-newMisses) / float64(served)
	if ratio < 0.99 {
		t.Errorf("cache-hit ratio %.4f, want >= 0.99", ratio)
	}
	t.Logf("repeated phase: hit ratio %.4f (%d served, %d simulated)", ratio, served, newMisses)
	admissionInvariant(t, srv)

	// Bounded memory: with the LRU holding at most CacheEntries test-scale
	// results, the heap must stay far under any runaway threshold.
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	if ms.HeapAlloc > 512<<20 {
		t.Errorf("heap ballooned to %d MiB after soak", ms.HeapAlloc>>20)
	}
	t.Logf("heap after soak: %d MiB, cache entries %d", ms.HeapAlloc>>20, snap["cacheEntries"])

	// Clean SIGTERM drain, no stragglers.
	drained := srv.DrainOnSignal(syscall.SIGTERM)
	p, _ := os.FindProcess(os.Getpid())
	if err := p.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case <-drained:
	case <-time.After(30 * time.Second):
		t.Fatal("SIGTERM drain did not complete")
	}
	ts.Close()
	waitGoroutines(t, base)
}
