package farm

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"

	"cables/internal/bench"
	"cables/internal/coherence"
	"cables/internal/fault"
	"cables/internal/sim"
)

// Spec is one experiment sweep request, the JSON body of POST /v1/sweeps.
// Every field is optional; zero values select the batch CLI's defaults.
// docs/SERVE.md is the authoritative schema reference (cmd/doccheck keeps
// it in lock-step with the routes and stats keys).
type Spec struct {
	// Kind selects the artifact the cells feed: "fig5" (default, results
	// only), "fig6" (same cells; clients read the misplacement fields) or
	// "counters" (per-cell responses also carry the counter snapshot).
	// Kind changes only the response rendering, never the simulation, so it
	// is deliberately NOT part of the cache key.
	Kind string `json:"kind,omitempty"`
	// Apps are SPLASH-2 application names (bench.AppNames); empty = all.
	Apps []string `json:"apps,omitempty"`
	// Procs are processor counts; empty = the paper sweep {1,4,8,16,32}.
	Procs []int `json:"procs,omitempty"`
	// Backends are SVM systems ("genima", "cables"); empty = both.
	Backends []string `json:"backends,omitempty"`
	// Scale is the problem-size class: "test", "paper" (default), "full".
	Scale string `json:"scale,omitempty"`
	// Sched is the thread-manager backend (sim.SchedulerNames); empty =
	// the serving process's default.  The resolved name is part of the
	// cache key.
	Sched string `json:"sched,omitempty"`
	// Protocol is the coherence protocol (coherence.Names); empty = the
	// serving process's default.  A non-default resolved name is part of
	// the cache key (the default keeps pre-protocol keys unchanged).
	Protocol string `json:"protocol,omitempty"`
	// Gran overrides the OS mapping granularity in bytes (0 = the model's
	// 64 KB default).
	Gran int `json:"gran,omitempty"`
	// ContendedSync and Coalesce are the wire plane's opt-in modes
	// (`-contended-sync`, `-coalesce`).
	ContendedSync bool `json:"contendedSync,omitempty"`
	Coalesce      bool `json:"coalesce,omitempty"`
	// Plan is a fault plan in the internal/fault DSL; it is canonicalized
	// (parsed and re-rendered) before hashing, so equivalent spellings
	// share cache entries.
	Plan string `json:"plan,omitempty"`
	// Seed is the fault-injection seed.  With an empty Plan the seed is
	// code-irrelevant and is canonicalized to 0, so seed-only-different
	// fault-free sweeps share cache entries.
	Seed uint64 `json:"seed,omitempty"`
}

// specKinds are the accepted Kind values.
var specKinds = map[string]bool{"fig5": true, "fig6": true, "counters": true}

// maxProcs bounds a cell's processor count; the paper sweep tops out at 32
// and the simulated SAN model is not meant to be scaled past this by a
// stray request.
const maxProcs = 64

// Normalize validates s and fills every defaulted field in place, so the
// spec echoed back to the client states exactly what will run.  It also
// performs the canonicalizations the cache key relies on: the fault plan is
// re-rendered in canonical DSL form and the seed is zeroed when no plan is
// set.
func (s *Spec) Normalize() error {
	if s.Kind == "" {
		s.Kind = "fig5"
	}
	if !specKinds[s.Kind] {
		return fmt.Errorf("farm: unknown kind %q (have fig5, fig6, counters)", s.Kind)
	}
	if len(s.Apps) == 0 {
		s.Apps = append([]string(nil), bench.AppNames...)
	}
	known := make(map[string]bool, len(bench.AppNames))
	for _, a := range bench.AppNames {
		known[a] = true
	}
	for _, a := range s.Apps {
		if !known[a] {
			return fmt.Errorf("farm: unknown application %q (have %v)", a, bench.AppNames)
		}
	}
	if len(s.Procs) == 0 {
		s.Procs = append([]int(nil), bench.ProcCounts...)
	}
	for _, p := range s.Procs {
		if p < 1 || p > maxProcs {
			return fmt.Errorf("farm: processor count %d out of range [1,%d]", p, maxProcs)
		}
	}
	if len(s.Backends) == 0 {
		s.Backends = []string{bench.BackendGenima, bench.BackendCables}
	}
	for _, b := range s.Backends {
		if b != bench.BackendGenima && b != bench.BackendCables {
			return fmt.Errorf("farm: unknown backend %q (have %s, %s)",
				b, bench.BackendGenima, bench.BackendCables)
		}
	}
	if s.Scale == "" {
		s.Scale = string(bench.ScalePaper)
	}
	switch bench.Scale(s.Scale) {
	case bench.ScaleTest, bench.ScalePaper, bench.ScaleFull:
	default:
		return fmt.Errorf("farm: unknown scale %q (have test, paper, full)", s.Scale)
	}
	if s.Sched == "" {
		s.Sched = sim.DefaultSchedulerName()
	}
	valid := false
	for _, n := range sim.SchedulerNames() {
		if n == s.Sched {
			valid = true
		}
	}
	if !valid {
		return fmt.Errorf("farm: unknown scheduler backend %q (have %v)", s.Sched, sim.SchedulerNames())
	}
	if s.Protocol == "" {
		s.Protocol = coherence.DefaultName()
	}
	if !coherence.Valid(s.Protocol) {
		return fmt.Errorf("farm: unknown coherence protocol %q (have %v)", s.Protocol, coherence.Names())
	}
	if s.Gran < 0 {
		return fmt.Errorf("farm: negative mapping granularity %d", s.Gran)
	}
	if s.Plan != "" {
		plan, err := fault.ParsePlan(s.Plan)
		if err != nil {
			return fmt.Errorf("farm: bad fault plan: %v", err)
		}
		s.Plan = plan.String()
	} else {
		s.Seed = 0
	}
	return nil
}

// Cells expands the normalized spec into its cell keys in deterministic
// sweep order: apps outermost, then procs, then backends (the batch CLI's
// order, so assembled sweep responses line up with the figures).
func (s Spec) Cells() []CellKey {
	cells := make([]CellKey, 0, len(s.Apps)*len(s.Procs)*len(s.Backends))
	for _, app := range s.Apps {
		for _, p := range s.Procs {
			for _, b := range s.Backends {
				cells = append(cells, CellKey{
					App: app, Procs: p, Backend: b,
					Scale: s.Scale, Sched: s.Sched, Protocol: s.Protocol, Gran: s.Gran,
					ContendedSync: s.ContendedSync, Coalesce: s.Coalesce,
					Plan: s.Plan, Seed: s.Seed,
				})
			}
		}
	}
	return cells
}

// CellKey identifies one simulation cell by every input that can change its
// output — the unit of content addressing.  Two cells with equal keys are
// the same experiment: the farm simulates the first and serves every later
// one from cache, with the deterministic checksums proving the cached and
// fresh results identical.
type CellKey struct {
	App           string `json:"app"`
	Procs         int    `json:"procs"`
	Backend       string `json:"backend"`
	Scale         string `json:"scale"`
	Sched         string `json:"sched"`
	Protocol      string `json:"protocol"`
	Gran          int    `json:"gran"`
	ContendedSync bool   `json:"contendedSync"`
	Coalesce      bool   `json:"coalesce"`
	Plan          string `json:"plan"`
	Seed          uint64 `json:"seed"`
}

// cacheSchema versions the canonical form.  Bump it when the meaning of any
// key field changes (or a new code-relevant field is added), so stale
// entries from an older serve build can never be mistaken for current ones.
const cacheSchema = "cables-farm-v1"

// Canonical renders the key as the canonical string that is hashed into the
// cache address: a fixed field order, every field present (defaults
// included), prefixed by the schema version.
func (k CellKey) Canonical() string {
	c := fmt.Sprintf("%s|app=%s|procs=%d|backend=%s|scale=%s|sched=%s|gran=%d|contended=%t|coalesce=%t|plan=%s|seed=%d",
		cacheSchema, k.App, k.Procs, k.Backend, k.Scale, k.Sched, k.Gran,
		k.ContendedSync, k.Coalesce, k.Plan, k.Seed)
	// The protocol field is appended only when non-default, so every
	// cache entry addressed before protocols existed keeps its key: a
	// default-protocol spec hashes identically to a pre-protocol one.
	if k.Protocol != "" && k.Protocol != coherence.ProtoGenima {
		c += "|protocol=" + k.Protocol
	}
	return c
}

// Hash returns the cell's content address: the hex SHA-256 of Canonical().
func (k CellKey) Hash() string {
	sum := sha256.Sum256([]byte(k.Canonical()))
	return hex.EncodeToString(sum[:])
}
