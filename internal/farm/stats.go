package farm

import "sync/atomic"

// Stats are the farm's own service counters — host-side bookkeeping of what
// the service did, entirely separate from the simulated runs' virtual-time
// counters (internal/stats).  Snapshot keys are listed in statsKeys;
// cmd/doccheck requires every key to appear in a docs/SERVE.md or
// docs/OBSERVABILITY.md table, so the inventory cannot drift.
//
// Admission accounting: every cell of every accepted sweep increments
// exactly one of cacheHits (served from the warm cache), cellsCoalesced
// (joined an identical cell already queued or running) or cacheMisses (a
// fresh simulation was enqueued), so
//
//	cellsQueued == cacheHits + cellsCoalesced + cacheMisses
//
// holds at all times, and once the farm is idle every admitted cell has
// reached exactly one terminal counter:
//
//	cellsQueued == cellsDone + cellsFailed + cellsRejected
type Stats struct {
	Sweeps         atomic.Int64 // sweeps accepted by POST /v1/sweeps
	SweepsRejected atomic.Int64 // sweeps refused (draining or queue full)
	CellsQueued    atomic.Int64 // cells admitted across all accepted sweeps
	CacheHits      atomic.Int64 // cells served from the warm result cache
	CacheMisses    atomic.Int64 // cells that enqueued a fresh simulation
	CellsCoalesced atomic.Int64 // cells that joined an in-flight identical cell
	CellsDone      atomic.Int64 // cells that reached status done
	CellsFailed    atomic.Int64 // cells whose simulation failed
	CellsRejected  atomic.Int64 // queued cells rejected retriable by a drain
	CacheEvicted   atomic.Int64 // cache entries evicted by the LRU bound

	// Gauges (current values, not monotonic).
	QueueDepth   atomic.Int64 // simulations queued behind the worker pool
	CellsRunning atomic.Int64 // simulations executing right now
}

// statsKeys lists every Snapshot key as string literals: cmd/doccheck
// parses this literal and requires each key in a SERVE.md/OBSERVABILITY.md
// inventory table.  cacheEntries is the cache's current entry count,
// reported alongside the counters by Server.StatsSnapshot.
var statsKeys = []string{
	"sweeps", "sweepsRejected",
	"cellsQueued", "cacheHits", "cacheMisses", "cellsCoalesced",
	"cellsDone", "cellsFailed", "cellsRejected",
	"cacheEvicted", "cacheEntries",
	"queueDepth", "cellsRunning",
}

// Snapshot returns the counters and gauges as a name->value map (the
// /v1/stats payload, minus the server-level cacheEntries gauge).
func (s *Stats) Snapshot() map[string]int64 {
	return map[string]int64{
		"sweeps":         s.Sweeps.Load(),
		"sweepsRejected": s.SweepsRejected.Load(),
		"cellsQueued":    s.CellsQueued.Load(),
		"cacheHits":      s.CacheHits.Load(),
		"cacheMisses":    s.CacheMisses.Load(),
		"cellsCoalesced": s.CellsCoalesced.Load(),
		"cellsDone":      s.CellsDone.Load(),
		"cellsFailed":    s.CellsFailed.Load(),
		"cellsRejected":  s.CellsRejected.Load(),
		"cacheEvicted":   s.CacheEvicted.Load(),
		"queueDepth":     s.QueueDepth.Load(),
		"cellsRunning":   s.CellsRunning.Load(),
	}
}
