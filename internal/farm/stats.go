package farm

import "cables/internal/metrics"

// Stats is the legacy /v1/stats view of the farm's service counters: named
// handles onto instruments that live in the server's metrics registry
// (metrics.go), so `/v1/stats` and `GET /metrics` read the very same atomic
// words and can never disagree.  Each handle is the pre-resolved child of
// its labeled family (CacheHits is cables_farm_cache_requests_total
// {outcome="hit"}, CellsDone is cables_farm_cells_terminal_total
// {outcome="done"}, ...), resolved once at registry construction per the
// hot-path discipline.  Snapshot keys are listed in statsKeys; cmd/doccheck
// requires every key to appear in a docs/SERVE.md or docs/OBSERVABILITY.md
// table, so the inventory cannot drift.
//
// Admission accounting: every cell of every accepted sweep increments
// exactly one of CacheHits (served from the warm cache), CellsCoalesced
// (joined an identical cell already queued or running) or CacheMisses (a
// fresh simulation was enqueued), so
//
//	cellsQueued == cacheHits + cellsCoalesced + cacheMisses
//
// holds at all times, and once the farm is idle every admitted cell has
// reached exactly one terminal counter:
//
//	cellsQueued == cellsDone + cellsFailed + cellsRejected
type Stats struct {
	Sweeps         *metrics.Counter // sweeps accepted by POST /v1/sweeps
	SweepsRejected *metrics.Counter // sweeps refused (draining or queue full)
	CellsQueued    *metrics.Counter // cells admitted across all accepted sweeps
	CacheHits      *metrics.Counter // cells served from the warm result cache
	CacheMisses    *metrics.Counter // cells that enqueued a fresh simulation
	CellsCoalesced *metrics.Counter // cells that joined an in-flight identical cell
	CellsDone      *metrics.Counter // cells that reached status done
	CellsFailed    *metrics.Counter // cells whose simulation failed
	CellsRejected  *metrics.Counter // queued cells rejected retriable by a drain
	CacheEvicted   *metrics.Counter // cache entries evicted by the LRU bound

	// Gauges (current values, not monotonic).
	QueueDepth   *metrics.Gauge // simulations queued behind the worker pool
	CellsRunning *metrics.Gauge // simulations executing right now
}

// statsKeys lists every Snapshot key as string literals: cmd/doccheck
// parses this literal and requires each key in a SERVE.md/OBSERVABILITY.md
// inventory table.  cacheEntries is the cache's current entry count,
// reported alongside the counters by Server.StatsSnapshot.
var statsKeys = []string{
	"sweeps", "sweepsRejected",
	"cellsQueued", "cacheHits", "cacheMisses", "cellsCoalesced",
	"cellsDone", "cellsFailed", "cellsRejected",
	"cacheEvicted", "cacheEntries",
	"queueDepth", "cellsRunning",
}

// Snapshot returns the counters and gauges as a name->value map (the
// /v1/stats payload, minus the server-level cacheEntries gauge).  The
// values are read straight from the registry instruments, so the snapshot
// is derived from — and stays aliased to — what /metrics exposes.
func (s *Stats) Snapshot() map[string]int64 {
	return map[string]int64{
		"sweeps":         s.Sweeps.Load(),
		"sweepsRejected": s.SweepsRejected.Load(),
		"cellsQueued":    s.CellsQueued.Load(),
		"cacheHits":      s.CacheHits.Load(),
		"cacheMisses":    s.CacheMisses.Load(),
		"cellsCoalesced": s.CellsCoalesced.Load(),
		"cellsDone":      s.CellsDone.Load(),
		"cellsFailed":    s.CellsFailed.Load(),
		"cellsRejected":  s.CellsRejected.Load(),
		"cacheEvicted":   s.CacheEvicted.Load(),
		"queueDepth":     s.QueueDepth.Load(),
		"cellsRunning":   s.CellsRunning.Load(),
	}
}
