// Package fault injects deterministic, virtual-time-scheduled faults into
// the simulated cluster: transient NIC send/fetch failures, notification
// loss, NIC registration-memory exhaustion, and node lifecycle events
// (delayed attach, mid-run detach).
//
// A fault plan (see ParsePlan) paired with a seed yields an Injector.  Every
// injection decision is a pure function of (per-rule seed key, src, dst,
// attempt, virtual now) — no shared RNG stream is consumed — so the same
// plan+seed reproduces identical decisions regardless of host goroutine
// interleaving.  Faults add latency, retries and re-homing work; they never
// lose data, so a faulted run completes with correct results (DEGRADED, not
// FAILED, in the bench harness).
//
// A nil *Injector disables all injection: consumers guard every hook with a
// nil check, and the simulator's virtual-time charges stay bit-identical to
// a build without the package.
package fault

import (
	"sync/atomic"

	"cables/internal/sim"
	"cables/internal/stats"
	"cables/internal/trace"
)

// Retry policy constants shared by the VMMC data-plane retry loops.
const (
	// MaxSendRetries bounds transient send/fetch/notify retries; past the
	// cap the operation proceeds (the fault window is treated as over for
	// that operation) so progress is guaranteed.
	MaxSendRetries = 8
	// MaxRegRetries bounds NIC registration-recovery attempts under
	// registration-memory pressure before falling back to remote homing.
	MaxRegRetries = 12
	// backoffBase is the first retry's backoff; attempt n waits
	// backoffBase << n, capped at backoffCap.
	backoffBase = 25 * sim.Microsecond
	backoffCap  = 800 * sim.Microsecond
)

// Backoff returns the exponential backoff delay charged before retry
// attempt (0-based): 25us, 50us, 100us, ... capped at 800us.
func Backoff(attempt int) sim.Time {
	d := backoffBase << uint(attempt)
	if d > backoffCap || d <= 0 {
		return backoffCap
	}
	return d
}

// Injector evaluates a fault plan against a seed.  All methods are safe for
// concurrent use; all decision methods are deterministic in their arguments.
// The zero-value rules: a nil *Injector injects nothing (callers nil-check).
type Injector struct {
	plan Plan
	seed uint64
	// keys[i] is rule i's decision-hash key, derived from the seed so that
	// two rules of the same kind fire independently.
	keys []uint64

	ctr   *stats.Counters
	ring  atomic.Pointer[trace.Ring]
	total atomic.Int64 // injections observed (DEGRADED detection)

	// detachSeen[n] flips once when node n's detach is first observed, so
	// the detach trace/counter event records exactly once, timestamped at
	// the plan's detach instant (deterministic even though the observing
	// query races).
	detachSeen []atomic.Bool
}

// New builds an injector for plan with the given seed.
func New(plan Plan, seed uint64) *Injector {
	rng := sim.NewRNG(seed)
	inj := &Injector{plan: plan, seed: seed, keys: make([]uint64, len(plan.Rules))}
	for i := range inj.keys {
		inj.keys[i] = rng.Uint64()
	}
	inj.detachSeen = make([]atomic.Bool, plan.MaxNode()+1)
	return inj
}

// Plan returns the injector's plan.
func (j *Injector) Plan() Plan { return j.plan }

// Seed returns the injector's seed.
func (j *Injector) Seed() uint64 { return j.seed }

// BindCounters routes injection counters into ctr (EvFaultsInjected and the
// per-class retry/loss events).  Call once during cluster construction.
func (j *Injector) BindCounters(ctr *stats.Counters) { j.ctr = ctr }

// BindTrace routes fault events into ring (kinds inject/detach/rehome/rereg).
func (j *Injector) BindTrace(ring *trace.Ring) { j.ring.Store(ring) }

// Injected reports how many faults have fired so far.  The bench harness
// renders a cell DEGRADED (instead of a bare time) when this is non-zero.
func (j *Injector) Injected() int64 {
	if j == nil {
		return 0
	}
	return j.total.Load()
}

// decide is the deterministic coin flip: rule i fires for (src, dst,
// attempt, now) iff hash(key_i, src, dst, attempt, now) < p.  The hash is
// SplitMix64 over the mixed arguments, matching sim.RNG's output quality.
func (j *Injector) decide(i, src, dst, attempt int, now sim.Time, p float64) bool {
	x := j.keys[i]
	x ^= uint64(src)*0x9E3779B97F4A7C15 + uint64(dst)*0xC2B2AE3D27D4EB4F
	x ^= uint64(attempt)*0x165667B19E3779F9 + uint64(now)
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	x ^= x >> 31
	return float64(x>>11)/(1<<53) < p
}

// note records one injection: bumps the stats counter ev on node, the
// global injected tally, and appends a trace event.
func (j *Injector) note(node int, ev stats.Event, kind trace.Kind, at sim.Time, arg uint64) {
	j.total.Add(1)
	if j.ctr != nil {
		j.ctr.Add(node, stats.EvFaultsInjected, 1)
		j.ctr.Add(node, ev, 1)
	}
	if r := j.ring.Load(); r != nil {
		r.Add(at, node, kind, arg)
	}
}

// fail evaluates all rules of kind k for an operation from src to dst at
// instant now, on retry attempt (0-based).
func (j *Injector) fail(k RuleKind, src, dst, attempt int, now sim.Time, ev stats.Event) bool {
	if j == nil {
		return false
	}
	for i := range j.plan.Rules {
		r := &j.plan.Rules[i]
		if r.Kind != k || !r.matches(src, now) {
			continue
		}
		if j.decide(i, src, dst, attempt, now, r.P) {
			j.note(src, ev, trace.KindInject, now, uint64(dst))
			return true
		}
	}
	return false
}

// FailSend reports whether the send from src to dst at virtual instant now
// (retry attempt, 0-based) suffers a transient NIC failure.
func (j *Injector) FailSend(src, dst, attempt int, now sim.Time) bool {
	return j.fail(KindSend, src, dst, attempt, now, stats.EvSendRetries)
}

// FailFetch reports whether the remote read by src from dst fails.
func (j *Injector) FailFetch(src, dst, attempt int, now sim.Time) bool {
	return j.fail(KindFetch, src, dst, attempt, now, stats.EvFetchRetries)
}

// LoseNotify reports whether the notification from src to dst is lost in
// flight (the sender times out and re-sends).
func (j *Injector) LoseNotify(src, dst, attempt int, now sim.Time) bool {
	return j.fail(KindNotify, src, dst, attempt, now, stats.EvNotifyLost)
}

// RegReserve returns the NIC registration-memory pressure (bytes reserved by
// a competing consumer) on node at instant now.  The VMMC layer subtracts it
// from the node's effective registered-byte limit.
func (j *Injector) RegReserve(node int, now sim.Time) int64 {
	if j == nil {
		return 0
	}
	var sum int64
	for i := range j.plan.Rules {
		r := &j.plan.Rules[i]
		if r.Kind == KindNICMem && r.matches(node, now) {
			sum += r.Reserve
		}
	}
	return sum
}

// NoteRegRecovery records one completed deregister/re-register recovery
// cycle on node at instant now (region id in arg).
func (j *Injector) NoteRegRecovery(node int, now sim.Time, region uint64) {
	if j == nil {
		return
	}
	j.note(node, stats.EvRegRecoveries, trace.KindRereg, now, region)
}

// DetachAt returns the virtual instant node detaches, or 0 if the plan
// never detaches it.
func (j *Injector) DetachAt(node int) sim.Time {
	if j == nil {
		return 0
	}
	for i := range j.plan.Rules {
		r := &j.plan.Rules[i]
		if r.Kind == KindDetach && r.Node == node {
			return r.From
		}
	}
	return 0
}

// Detached reports whether node has detached by virtual instant now.  The
// first observation records the detach through stats/trace, timestamped at
// the plan's detach instant.
func (j *Injector) Detached(node int, now sim.Time) bool {
	if j == nil {
		return false
	}
	at := j.DetachAt(node)
	if at == 0 || now < at {
		return false
	}
	if node < len(j.detachSeen) && j.detachSeen[node].CompareAndSwap(false, true) {
		j.note(node, stats.EvNodeDetaches, trace.KindDetach, at, uint64(node))
	}
	return true
}

// AttachDelay returns the extra virtual latency the plan imposes on node's
// attach, recording the injection if non-zero.
func (j *Injector) AttachDelay(node int, now sim.Time) sim.Time {
	if j == nil {
		return 0
	}
	var d sim.Time
	for i := range j.plan.Rules {
		r := &j.plan.Rules[i]
		if r.Kind == KindAttach && r.Node == node {
			d += r.Delay
		}
	}
	if d > 0 {
		j.note(node, stats.EvAttachDelays, trace.KindInject, now, uint64(node))
	}
	return d
}

// NoteRehome records protocol state (lock, barrier, or page — arg
// identifies it) re-homing from a detached node to node at instant now.
// The caller bumps the specific EvLockRehomes/EvBarrierRehomes/EvPageRehomes
// counter; this adds the shared tally and trace event.
func (j *Injector) NoteRehome(node int, now sim.Time, arg uint64) {
	if j == nil {
		return
	}
	j.total.Add(1)
	if j.ctr != nil {
		j.ctr.Add(node, stats.EvFaultsInjected, 1)
	}
	if r := j.ring.Load(); r != nil {
		r.Add(now, node, trace.KindRehome, arg)
	}
}
