package fault

import (
	"strings"
	"testing"

	"cables/internal/sim"
	"cables/internal/stats"
	"cables/internal/trace"
)

func TestParsePlanRoundTrip(t *testing.T) {
	specs := []string{
		"send:p=0.05",
		"send:p=0.05,node=2,from=1ms,to=80ms",
		"fetch:p=0.1,node=2",
		"notify:p=0.2,from=250us",
		"nicmem:node=1,reserve=64M,from=5ms,to=40ms",
		"nicmem:node=3,reserve=512K",
		"detach:node=3,at=200ms",
		"attach:node=2,delay=500ms",
		"send:p=0.05;detach:node=1,at=5ms;attach:node=2,delay=1s",
	}
	for _, spec := range specs {
		p, err := ParsePlan(spec)
		if err != nil {
			t.Errorf("ParsePlan(%q): %v", spec, err)
			continue
		}
		again, err := ParsePlan(p.String())
		if err != nil {
			t.Errorf("re-parse of %q (from %q): %v", p.String(), spec, err)
			continue
		}
		if p.String() != again.String() {
			t.Errorf("round trip of %q: %q != %q", spec, p.String(), again.String())
		}
	}
}

func TestParsePlanErrors(t *testing.T) {
	bad := map[string]string{
		"":                            "empty plan",
		"  ;  ;  ":                    "empty plan",
		"send":                        "missing ':'",
		"warp:p=0.5":                  "unknown rule kind",
		"send:0.5":                    "bad key=value",
		"send:node=1":                 "needs p=",
		"send:p=1.5":                  "outside [0,1]",
		"send:p=-0.1":                 "outside [0,1]",
		"send:p=0.5,bogus=1":          "unknown keys",
		"send:p=0.5,from=5ms,to=1ms":  "empty window",
		"send:p=0.5,from=xyz":         "bad from",
		"nicmem:reserve=64M":          "needs node=",
		"nicmem:node=1":               "needs reserve=",
		"nicmem:node=1,reserve=-4K":   "bad reserve",
		"detach:node=0,at=5ms":        "master cannot leave",
		"detach:node=2":               "needs at=",
		"detach:at=5ms":               "master cannot leave",
		"attach:delay=5ms":            "needs node=",
		"attach:node=2":               "needs delay=",
		"attach:node=2,delay=0ms":     "needs delay=",
		"send:p=0.5,node=-3":          "bad node",
	}
	for spec, want := range bad {
		if _, err := ParsePlan(spec); err == nil {
			t.Errorf("ParsePlan(%q) accepted; want error mentioning %q", spec, want)
		} else if !strings.Contains(err.Error(), want) {
			t.Errorf("ParsePlan(%q) = %v; want mention of %q", spec, err, want)
		}
	}
}

func TestParseDurUnits(t *testing.T) {
	cases := map[string]sim.Time{
		"800ns": 800,
		"250us": 250 * sim.Microsecond,
		"5ms":   5 * sim.Millisecond,
		"2s":    2 * sim.Second,
		"1.5ms": 1500 * sim.Microsecond,
		"42":    42,
	}
	for s, want := range cases {
		got, err := parseDur(s)
		if err != nil || got != want {
			t.Errorf("parseDur(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	if _, err := parseDur("-5ms"); err == nil {
		t.Error("negative duration accepted")
	}
}

func TestParseBytesUnits(t *testing.T) {
	cases := map[string]int64{
		"64":  64,
		"16K": 16 << 10,
		"64M": 64 << 20,
		"1G":  1 << 30,
	}
	for s, want := range cases {
		got, err := parseBytes(s)
		if err != nil || got != want {
			t.Errorf("parseBytes(%q) = %d, %v; want %d", s, got, err, want)
		}
	}
}

func TestBackoffExponentialAndCapped(t *testing.T) {
	want := []sim.Time{
		25 * sim.Microsecond, 50 * sim.Microsecond, 100 * sim.Microsecond,
		200 * sim.Microsecond, 400 * sim.Microsecond, 800 * sim.Microsecond,
		800 * sim.Microsecond, // capped from here on
	}
	for a, w := range want {
		if got := Backoff(a); got != w {
			t.Errorf("Backoff(%d) = %v, want %v", a, got, w)
		}
	}
	// Huge attempt counts must not overflow into a negative backoff.
	if got := Backoff(70); got != 800*sim.Microsecond {
		t.Errorf("Backoff(70) = %v, want cap", got)
	}
}

// TestDecideDeterministic pins the core contract: injection decisions are a
// pure function of (plan, seed, src, dst, attempt, now), independent of call
// order or interleaving.
func TestDecideDeterministic(t *testing.T) {
	plan := MustParsePlan("send:p=0.5")
	a := New(plan, 42)
	b := New(plan, 42)
	// Query b in reverse order: same decisions must come back.
	type q struct {
		src, dst, attempt int
		now               sim.Time
	}
	var queries []q
	for src := 0; src < 4; src++ {
		for dst := 0; dst < 4; dst++ {
			for att := 0; att < 3; att++ {
				queries = append(queries, q{src, dst, att, sim.Time(src*1000 + dst*10 + att)})
			}
		}
	}
	got := make([]bool, len(queries))
	for i, qq := range queries {
		got[i] = a.FailSend(qq.src, qq.dst, qq.attempt, qq.now)
	}
	for i := len(queries) - 1; i >= 0; i-- {
		qq := queries[i]
		if b.FailSend(qq.src, qq.dst, qq.attempt, qq.now) != got[i] {
			t.Fatalf("decision %d differs between injectors built from the same plan+seed", i)
		}
	}
	// Roughly half the coins should land heads at p=0.5.
	heads := 0
	for _, h := range got {
		if h {
			heads++
		}
	}
	if heads < len(got)/4 || heads > 3*len(got)/4 {
		t.Errorf("p=0.5 fired %d/%d times; hash badly biased", heads, len(got))
	}
	// A different seed should flip at least one decision.
	c := New(plan, 43)
	same := true
	for i, qq := range queries {
		if c.FailSend(qq.src, qq.dst, qq.attempt, qq.now) != got[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("seed 43 reproduced every seed-42 decision; key derivation broken")
	}
}

func TestRuleWindowsRespected(t *testing.T) {
	j := New(MustParsePlan("send:p=1,node=1,from=10ms,to=20ms"), 1)
	if j.FailSend(1, 0, 0, 5*sim.Millisecond) {
		t.Error("fired before window")
	}
	if !j.FailSend(1, 0, 0, 15*sim.Millisecond) {
		t.Error("p=1 did not fire inside window")
	}
	if j.FailSend(1, 0, 0, 25*sim.Millisecond) {
		t.Error("fired after window")
	}
	if j.FailSend(2, 0, 0, 15*sim.Millisecond) {
		t.Error("fired on a node the rule does not name")
	}
	if j.FailFetch(1, 0, 0, 15*sim.Millisecond) || j.LoseNotify(1, 0, 0, 15*sim.Millisecond) {
		t.Error("send rule triggered fetch/notify faults")
	}
}

func TestRegReserveWindows(t *testing.T) {
	j := New(MustParsePlan("nicmem:node=1,reserve=64M,from=5ms,to=40ms;nicmem:node=1,reserve=16M"), 1)
	if got := j.RegReserve(1, 1*sim.Millisecond); got != 16<<20 {
		t.Errorf("before window: %d, want open-ended rule only", got)
	}
	if got := j.RegReserve(1, 10*sim.Millisecond); got != (64<<20)+(16<<20) {
		t.Errorf("inside window: %d, want both rules summed", got)
	}
	if got := j.RegReserve(2, 10*sim.Millisecond); got != 0 {
		t.Errorf("other node pressured: %d", got)
	}
}

func TestDetachedRecordsOnce(t *testing.T) {
	j := New(MustParsePlan("detach:node=2,at=10ms"), 1)
	ctr := stats.NewCounters(4)
	ring := trace.NewRing(16)
	j.BindCounters(ctr)
	j.BindTrace(ring)
	if j.Detached(2, 5*sim.Millisecond) {
		t.Error("detached before the plan instant")
	}
	if j.Injected() != 0 {
		t.Error("pre-detach query injected something")
	}
	for i := 0; i < 5; i++ {
		if !j.Detached(2, 15*sim.Millisecond) {
			t.Fatal("not detached after the plan instant")
		}
	}
	if j.Detached(1, 15*sim.Millisecond) {
		t.Error("unplanned node detached")
	}
	if got := ctr.Load(stats.EvNodeDetaches); got != 1 {
		t.Errorf("detach recorded %d times, want once", got)
	}
	evs := ring.Events()
	if len(evs) != 1 || evs[0].Kind != trace.KindDetach || evs[0].At != 10*sim.Millisecond {
		t.Errorf("detach trace event: %v (want one KindDetach at the plan instant)", evs)
	}
	if j.DetachAt(2) != 10*sim.Millisecond || j.DetachAt(0) != 0 {
		t.Error("DetachAt wrong")
	}
}

func TestAttachDelay(t *testing.T) {
	j := New(MustParsePlan("attach:node=2,delay=500ms"), 1)
	if d := j.AttachDelay(1, 0); d != 0 {
		t.Errorf("undelayed node: %v", d)
	}
	if d := j.AttachDelay(2, 0); d != 500*sim.Millisecond {
		t.Errorf("delayed node: %v, want 500ms", d)
	}
	if j.Injected() != 1 {
		t.Errorf("injected tally: %d, want 1 (the delay)", j.Injected())
	}
}

// TestNilInjectorNoOps pins the "nil disables everything" contract every
// consumer relies on.
func TestNilInjectorNoOps(t *testing.T) {
	var j *Injector
	if j.FailSend(0, 1, 0, 0) || j.FailFetch(0, 1, 0, 0) || j.LoseNotify(0, 1, 0, 0) {
		t.Error("nil injector failed an operation")
	}
	if j.RegReserve(0, 0) != 0 || j.AttachDelay(0, 0) != 0 {
		t.Error("nil injector applied pressure or delay")
	}
	if j.Detached(0, 0) || j.DetachAt(0) != 0 {
		t.Error("nil injector detached a node")
	}
	if j.Injected() != 0 {
		t.Error("nil injector injected")
	}
	j.NoteRegRecovery(0, 0, 0) // must not panic
	j.NoteRehome(0, 0, 0)
}

func TestInjectionCountersAndTrace(t *testing.T) {
	j := New(MustParsePlan("send:p=1"), 7)
	ctr := stats.NewCounters(2)
	ring := trace.NewRing(8)
	j.BindCounters(ctr)
	j.BindTrace(ring)
	if !j.FailSend(0, 1, 0, 100) {
		t.Fatal("p=1 send did not fail")
	}
	if ctr.Load(stats.EvFaultsInjected) != 1 || ctr.Load(stats.EvSendRetries) != 1 {
		t.Errorf("counters: %s", ctr)
	}
	if c := ring.Counts(); c[trace.KindInject] != 1 {
		t.Errorf("trace counts: %v", c)
	}
	if j.Injected() != 1 {
		t.Errorf("injected: %d", j.Injected())
	}
}
