package fault

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"cables/internal/sim"
)

// RuleKind names a fault class a plan rule injects.
type RuleKind string

// The supported fault classes.
const (
	// KindSend makes NIC sends from a node fail transiently (the sender
	// times out and retries with backoff).
	KindSend RuleKind = "send"
	// KindFetch makes direct remote reads fail transiently.
	KindFetch RuleKind = "fetch"
	// KindNotify drops delivered notifications (the sender times out
	// waiting for the acknowledgement and re-sends).
	KindNotify RuleKind = "notify"
	// KindNICMem reserves NIC registration memory on a node for a window of
	// virtual time, forcing region deregister/re-register recovery when the
	// node needs to grow its pinned home region.
	KindNICMem RuleKind = "nicmem"
	// KindDetach removes a node from the application at a virtual instant:
	// no new threads, locks, or page homes are placed on it, and existing
	// protocol state re-homes away on demand.
	KindDetach RuleKind = "detach"
	// KindAttach delays a node's attach by a fixed virtual duration
	// (a slow-to-boot or oversubscribed machine).
	KindAttach RuleKind = "attach"
)

// Rule is one entry of a fault plan.
type Rule struct {
	Kind RuleKind
	// Node restricts the rule to one node (-1 = any).  For nicmem, detach
	// and attach rules the node is mandatory.
	Node int
	// P is the per-operation failure probability for send/fetch/notify.
	P float64
	// From/To bound the active window in virtual time.  To == 0 means
	// open-ended.  detach uses From as the detach instant.
	From, To sim.Time
	// Reserve is the registered-byte pressure applied by a nicmem rule.
	Reserve int64
	// Delay is the extra attach latency of an attach rule.
	Delay sim.Time
}

// active reports whether the rule's window covers virtual instant now.
func (r *Rule) active(now sim.Time) bool {
	return now >= r.From && (r.To == 0 || now < r.To)
}

// matches reports whether the rule applies to node at instant now.
func (r *Rule) matches(node int, now sim.Time) bool {
	return (r.Node < 0 || r.Node == node) && r.active(now)
}

// String renders the rule in the plan DSL (ParsePlan round-trips it).
func (r Rule) String() string {
	var parts []string
	switch r.Kind {
	case KindSend, KindFetch, KindNotify:
		parts = append(parts, fmt.Sprintf("p=%g", r.P))
		if r.Node >= 0 {
			parts = append(parts, fmt.Sprintf("node=%d", r.Node))
		}
		if r.From > 0 {
			parts = append(parts, "from="+formatDur(r.From))
		}
		if r.To > 0 {
			parts = append(parts, "to="+formatDur(r.To))
		}
	case KindNICMem:
		parts = append(parts, fmt.Sprintf("node=%d", r.Node),
			"reserve="+formatBytes(r.Reserve))
		if r.From > 0 {
			parts = append(parts, "from="+formatDur(r.From))
		}
		if r.To > 0 {
			parts = append(parts, "to="+formatDur(r.To))
		}
	case KindDetach:
		parts = append(parts, fmt.Sprintf("node=%d", r.Node), "at="+formatDur(r.From))
	case KindAttach:
		parts = append(parts, fmt.Sprintf("node=%d", r.Node), "delay="+formatDur(r.Delay))
	}
	return string(r.Kind) + ":" + strings.Join(parts, ",")
}

// Plan is a parsed fault plan: an ordered rule list.  Plans are pure data —
// pair one with a seed in New to obtain an Injector.
type Plan struct {
	Rules []Rule
}

// String renders the plan in the DSL; ParsePlan(p.String()) reproduces p.
func (p Plan) String() string {
	parts := make([]string, len(p.Rules))
	for i, r := range p.Rules {
		parts[i] = r.String()
	}
	return strings.Join(parts, ";")
}

// MaxNode returns the largest node index named by any rule (-1 if none).
func (p Plan) MaxNode() int {
	max := -1
	for _, r := range p.Rules {
		if r.Node > max {
			max = r.Node
		}
	}
	return max
}

// ParsePlan parses the fault-plan DSL: semicolon-separated rules of the form
// kind:key=value,key=value.  Examples:
//
//	send:p=0.05,from=1ms,to=80ms      5% transient send failures in a window
//	fetch:p=0.1,node=2                10% fetch failures on node 2's NIC
//	notify:p=0.2                      20% notification loss
//	nicmem:node=1,reserve=64M,from=5ms,to=40ms   NIC registration pressure
//	detach:node=3,at=200ms            node 3 leaves at t=200ms
//	attach:node=2,delay=500ms         node 2 attaches 500ms late
//
// Durations take ns/us/ms/s suffixes; byte sizes take K/M/G suffixes.
// Node 0 (the master) cannot detach.
func ParsePlan(spec string) (Plan, error) {
	var p Plan
	for _, rs := range strings.Split(spec, ";") {
		rs = strings.TrimSpace(rs)
		if rs == "" {
			continue
		}
		r, err := parseRule(rs)
		if err != nil {
			return Plan{}, err
		}
		p.Rules = append(p.Rules, r)
	}
	if len(p.Rules) == 0 {
		return Plan{}, fmt.Errorf("fault: empty plan %q", spec)
	}
	return p, nil
}

// MustParsePlan is ParsePlan panicking on error (for tests and fixed specs).
func MustParsePlan(spec string) Plan {
	p, err := ParsePlan(spec)
	if err != nil {
		panic(err)
	}
	return p
}

func parseRule(rs string) (Rule, error) {
	kind, rest, ok := strings.Cut(rs, ":")
	if !ok {
		return Rule{}, fmt.Errorf("fault: rule %q missing ':'", rs)
	}
	r := Rule{Kind: RuleKind(strings.TrimSpace(kind)), Node: -1}
	kvs := map[string]string{}
	var keys []string
	for _, kv := range strings.Split(rest, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(kv), "=")
		if !ok {
			return Rule{}, fmt.Errorf("fault: rule %q: bad key=value %q", rs, kv)
		}
		kvs[k] = v
		keys = append(keys, k)
	}
	take := func(k string) (string, bool) {
		v, ok := kvs[k]
		delete(kvs, k)
		return v, ok
	}
	var err error
	if v, ok := take("node"); ok {
		r.Node, err = strconv.Atoi(v)
		if err != nil || r.Node < 0 {
			return Rule{}, fmt.Errorf("fault: rule %q: bad node %q", rs, v)
		}
	}
	parseDurKey := func(k string, dst *sim.Time) error {
		if v, ok := take(k); ok {
			d, err := parseDur(v)
			if err != nil {
				return fmt.Errorf("fault: rule %q: bad %s: %v", rs, k, err)
			}
			*dst = d
		}
		return nil
	}
	switch r.Kind {
	case KindSend, KindFetch, KindNotify:
		v, ok := take("p")
		if !ok {
			return Rule{}, fmt.Errorf("fault: rule %q needs p=<probability>", rs)
		}
		r.P, err = strconv.ParseFloat(v, 64)
		if err != nil || r.P < 0 || r.P > 1 {
			return Rule{}, fmt.Errorf("fault: rule %q: probability %q outside [0,1]", rs, v)
		}
		if err := parseDurKey("from", &r.From); err != nil {
			return Rule{}, err
		}
		if err := parseDurKey("to", &r.To); err != nil {
			return Rule{}, err
		}
	case KindNICMem:
		if r.Node < 0 {
			return Rule{}, fmt.Errorf("fault: rule %q needs node=<n>", rs)
		}
		v, ok := take("reserve")
		if !ok {
			return Rule{}, fmt.Errorf("fault: rule %q needs reserve=<bytes>", rs)
		}
		r.Reserve, err = parseBytes(v)
		if err != nil || r.Reserve <= 0 {
			return Rule{}, fmt.Errorf("fault: rule %q: bad reserve %q", rs, v)
		}
		if err := parseDurKey("from", &r.From); err != nil {
			return Rule{}, err
		}
		if err := parseDurKey("to", &r.To); err != nil {
			return Rule{}, err
		}
	case KindDetach:
		if r.Node <= 0 {
			return Rule{}, fmt.Errorf("fault: rule %q: detach needs node>=1 (the master cannot leave)", rs)
		}
		if err := parseDurKey("at", &r.From); err != nil {
			return Rule{}, err
		}
		if r.From <= 0 {
			return Rule{}, fmt.Errorf("fault: rule %q needs at=<instant>", rs)
		}
	case KindAttach:
		if r.Node < 0 {
			return Rule{}, fmt.Errorf("fault: rule %q needs node=<n>", rs)
		}
		if err := parseDurKey("delay", &r.Delay); err != nil {
			return Rule{}, err
		}
		if r.Delay <= 0 {
			return Rule{}, fmt.Errorf("fault: rule %q needs delay=<duration>", rs)
		}
	default:
		return Rule{}, fmt.Errorf("fault: unknown rule kind %q", kind)
	}
	if len(kvs) > 0 {
		var left []string
		for k := range kvs {
			left = append(left, k)
		}
		sort.Strings(left)
		return Rule{}, fmt.Errorf("fault: rule %q: unknown keys %v", rs, left)
	}
	if r.To > 0 && r.To <= r.From {
		return Rule{}, fmt.Errorf("fault: rule %q: empty window (to <= from)", rs)
	}
	_ = keys
	return r, nil
}

// parseDur parses "250us", "5ms", "2s", "800ns" (bare numbers = nanoseconds).
func parseDur(s string) (sim.Time, error) {
	unit := sim.Time(1)
	num := s
	switch {
	case strings.HasSuffix(s, "ns"):
		num = s[:len(s)-2]
	case strings.HasSuffix(s, "us"):
		unit, num = sim.Microsecond, s[:len(s)-2]
	case strings.HasSuffix(s, "ms"):
		unit, num = sim.Millisecond, s[:len(s)-2]
	case strings.HasSuffix(s, "s"):
		unit, num = sim.Second, s[:len(s)-1]
	}
	v, err := strconv.ParseFloat(num, 64)
	if err != nil || v < 0 {
		return 0, fmt.Errorf("bad duration %q", s)
	}
	return sim.Time(v * float64(unit)), nil
}

func formatDur(d sim.Time) string {
	switch {
	case d >= sim.Second && d%sim.Second == 0:
		return fmt.Sprintf("%ds", d/sim.Second)
	case d >= sim.Millisecond && d%sim.Millisecond == 0:
		return fmt.Sprintf("%dms", d/sim.Millisecond)
	case d >= sim.Microsecond && d%sim.Microsecond == 0:
		return fmt.Sprintf("%dus", d/sim.Microsecond)
	default:
		return fmt.Sprintf("%dns", int64(d))
	}
}

// parseBytes parses "64", "16K", "64M", "1G".
func parseBytes(s string) (int64, error) {
	shift := 0
	num := s
	switch {
	case strings.HasSuffix(s, "K"):
		shift, num = 10, s[:len(s)-1]
	case strings.HasSuffix(s, "M"):
		shift, num = 20, s[:len(s)-1]
	case strings.HasSuffix(s, "G"):
		shift, num = 30, s[:len(s)-1]
	}
	v, err := strconv.ParseInt(num, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad byte size %q", s)
	}
	return v << shift, nil
}

func formatBytes(b int64) string {
	switch {
	case b >= 1<<30 && b%(1<<30) == 0:
		return fmt.Sprintf("%dG", b>>30)
	case b >= 1<<20 && b%(1<<20) == 0:
		return fmt.Sprintf("%dM", b>>20)
	case b >= 1<<10 && b%(1<<10) == 0:
		return fmt.Sprintf("%dK", b>>10)
	default:
		return strconv.FormatInt(b, 10)
	}
}
