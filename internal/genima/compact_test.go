package genima_test

import (
	"testing"

	"cables/internal/m4"
	"cables/internal/memsys"
	"cables/internal/sim"
	"cables/internal/stats"
)

// pingPong runs a deterministic 2-node lock ping-pong: two workers strictly
// alternate (channel-orchestrated) acquiring a lock and bumping counters on
// a few shared pages, producing two intervals of history per round.  It
// returns the headline coherence counters, the retained log length, and the
// final shared values — everything the compacted and uncompacted protocols
// must agree on.
func pingPong(t *testing.T, disableCompaction bool, rounds int) (invals, diffs, diffBytes, notices int64, logLen int, finals [4]int64) {
	t.Helper()
	rt := m4.New(m4.Config{Procs: 2, ProcsPerNode: 1, ArenaBytes: 16 << 20})
	rt.Protocol().DisableLogCompaction = disableCompaction
	main := rt.Main()
	acc := rt.Acc()
	// Four counters on four distinct pages, all homed on node 0, so the
	// node-1 worker twins and diffs every round.
	addr, err := rt.Malloc(main, "pingpong", 4<<12)
	if err != nil {
		t.Fatalf("malloc: %v", err)
	}
	slot := func(i int) memsys.Addr { return addr + memsys.Addr(i<<12) }
	for i := 0; i < 4; i++ {
		acc.WriteI64(main, slot(i), 0)
	}
	rt.Protocol().Flush(main)

	turn := [2]chan struct{}{make(chan struct{}, 1), make(chan struct{}, 1)}
	worker := func(w int) func(th *sim.Task) {
		return func(th *sim.Task) {
			for i := 0; i < rounds; i++ {
				<-turn[w]
				rt.Lock(th, 1)
				for s := 0; s < 4; s++ {
					v := acc.ReadI64(th, slot(s))
					acc.WriteI64(th, slot(s), v+1)
				}
				rt.Unlock(th, 1)
				turn[1-w] <- struct{}{}
			}
		}
	}
	ids := []int{rt.Spawn(main, worker(0)), rt.Spawn(main, worker(1))}
	turn[0] <- struct{}{}
	for _, id := range ids {
		rt.Join(main, id)
	}

	rt.Lock(main, 1)
	for i := 0; i < 4; i++ {
		finals[i] = acc.ReadI64(main, slot(i))
	}
	rt.Unlock(main, 1)

	ctr := rt.Cluster().Ctr
	return ctr.Load(stats.EvInvalidations), ctr.Load(stats.EvDiffsSent), ctr.Load(stats.EvDiffBytes),
		ctr.Load(stats.EvWriteNotices), rt.Protocol().LogLen(), finals
}

// TestLogCompactionEquivalentAndBounded is the compaction regression test:
// a long lock ping-pong must leave len(p.log) bounded (instead of growing
// with total history), while invalidation, diff, and write-notice counts —
// and of course the shared data — match the uncompacted implementation
// exactly.
func TestLogCompactionEquivalentAndBounded(t *testing.T) {
	const rounds = 500 // 2*rounds intervals: well past the compaction threshold

	uInv, uDiffs, uBytes, uNot, uLog, uFin := pingPong(t, true, rounds)
	cInv, cDiffs, cBytes, cNot, cLog, cFin := pingPong(t, false, rounds)

	if uFin != cFin {
		t.Fatalf("final shared values differ: uncompacted %v, compacted %v", uFin, cFin)
	}
	for i, v := range cFin {
		if want := int64(2 * rounds); v != want {
			t.Errorf("slot %d: final value %d, want %d", i, v, want)
		}
	}
	if uInv != cInv || uDiffs != cDiffs || uBytes != cBytes || uNot != cNot {
		t.Errorf("counter mismatch (uncompacted vs compacted): invalidations %d/%d, diffs %d/%d, diffBytes %d/%d, writeNotices %d/%d",
			uInv, cInv, uDiffs, cDiffs, uBytes, cBytes, uNot, cNot)
	}

	// The uncompacted log retains all history; the compacted one must stay
	// near the threshold regardless of rounds.
	if uLog < 2*rounds {
		t.Errorf("uncompacted log retained %d intervals, expected at least %d — workload no longer exercises compaction", uLog, 2*rounds)
	}
	if cLog > 300 {
		t.Errorf("compacted log retained %d intervals, want bounded (<= 300)", cLog)
	}
}
