// Package genima implements the base shared-virtual-memory protocol the
// paper builds CableS on: GeNIMA, a home-based, page-level protocol with
// release consistency over VMMC direct remote operations.
//
// Pages have a home node holding the primary copy.  Writers on other nodes
// capture a twin at the first write of an interval; at a release (lock
// release or barrier arrival) the node's dirty pages are diffed against
// their twins and the diffs applied to the homes with direct remote writes —
// no remote-processor involvement, exactly the property GeNIMA exploits on
// Myrinet.  Write notices are published through a totally ordered interval
// log; at an acquire a node invalidates every non-home page named by
// intervals it has not yet seen (a conservative variant of lazy release
// consistency — safe, never weaker; see DESIGN.md §5/§7).
//
// When a fault plan detaches a node mid-run (see internal/fault), the
// protocol degrades gracefully instead of failing: pages homed on the dead
// node are adopted by the next node that faults on them, lock state last
// held there is pulled over at the next acquire, and barrier arrival
// counters managed there re-home to the master at the next wait.  Re-homing
// charges virtual time and bumps the EvLockRehomes/EvBarrierRehomes/
// EvPageRehomes counters; data is never lost.
package genima

import (
	"fmt"
	"slices"
	"sync"
	"sync/atomic"

	"cables/internal/coherence"
	"cables/internal/memsys"
	"cables/internal/nodeos"
	"cables/internal/profile"
	"cables/internal/sim"
	"cables/internal/stats"
	"cables/internal/trace"
	"cables/internal/wire"
)

// Placement decides the home of a page on its first touch.  The base system
// uses per-page first touch (the faulting node); CableS substitutes map-unit
// granularity first touch with directory bookkeeping.
type Placement interface {
	HomeFor(t *sim.Task, pid memsys.PageID) int
}

// FirstTouch is the base system's placement: the faulting node becomes home.
type FirstTouch struct{}

// HomeFor returns the faulting node.
func (FirstTouch) HomeFor(t *sim.Task, _ memsys.PageID) int { return t.MemNode() }

// interval is one flushed write interval: the pages node dirtied.
type interval struct {
	node  int
	pages []memsys.PageID
}

// nodeState is the protocol's per-node bookkeeping.  The dirty set is a
// page-order-sorted-at-flush slice deduplicated by a bitmap (the slice
// backing ping-pongs between intervals via spare), replacing a per-interval
// map allocation on the hot flush path.
type nodeState struct {
	dirtyMu    sync.Mutex
	dirtyPages []memsys.PageID // unique pages dirtied in the current interval
	dirtyBits  []uint64        // bitmap over arena pages deduplicating dirtyPages
	spare      []memsys.PageID // recycled backing array for the next interval

	// Pad so the write-side group above and the acquire-side group below
	// land on separate cache lines: they are taken by different threads of
	// the node concurrently, and sharing a line would false-share on a
	// multicore host.
	_ [64]byte

	syncMu     sync.Mutex      // serializes acquire-side invalidation passes
	seen       atomic.Int64    // absolute log prefix already applied (atomic: compaction reads it cross-node)
	invBits    []uint64        // acquire-side dedup scratch (guarded by syncMu)
	invScratch []memsys.PageID // acquire-side invalidation list (guarded by syncMu)
}

// markDirty registers pid in the node's current interval; reports whether it
// was newly added.  Caller holds dirtyMu.
func (ns *nodeState) markDirty(pid memsys.PageID) bool {
	w, m := pid>>6, uint64(1)<<(pid&63)
	if ns.dirtyBits[w]&m != 0 {
		return false
	}
	ns.dirtyBits[w] |= m
	ns.dirtyPages = append(ns.dirtyPages, pid)
	return true
}

// Protocol is one application's SVM protocol instance.
type Protocol struct {
	cl    *nodeos.Cluster
	sp    *memsys.Space
	acc   *memsys.Accessor
	place Placement

	// pol is the pluggable coherence policy (internal/coherence).  The
	// engine owns the SVM mechanism — twins, diffs, notices, the interval
	// log — and consults pol at the policy points: per outbound diff
	// (merge routing), per remote fill (observation), and per contended
	// lock acquire/release (delegation).  Defaults to the no-op genima
	// policy; UseProtocol selects a variant before the run starts.
	pol coherence.Protocol

	// delMu guards delegated: the tasks currently executing a delegated
	// critical section, keyed to the lock that shipped them (so releasing
	// an unrelated inner lock does not end the delegation).  Touched only
	// on delegated paths, never by the genima fast path.
	delMu     sync.Mutex
	delegated map[*sim.Task]int

	logMu   sync.RWMutex
	log     []interval
	logBase atomic.Int64 // absolute index of log[0] (prefix truncated by compaction)

	// DisableLogCompaction retains the full interval log for the run's
	// lifetime (the pre-compaction behavior).  Used by tests and ablations
	// as the reference the compacting implementation is compared against.
	DisableLogCompaction bool

	nodes []*nodeState

	// OnRemoteFault, if set, observes every remotely-served page fault
	// (node that faulted, page).  CableS's migration policy counts these.
	OnRemoteFault func(node int, pid memsys.PageID)

	// Trace, if set, receives protocol events (faults, diffs,
	// invalidations, synchronization) with virtual timestamps.
	Trace *trace.Ring

	// Epochs, if set (bench.AttachProfiler), snapshots the run's counters
	// at every barrier release, windowing them into per-epoch deltas.
	Epochs *stats.EpochLog

	lockMu sync.Mutex
	locks  map[int]*SysLock

	barMu sync.Mutex
	bars  map[string]*Barrier
}

// New creates a protocol instance over the cluster with a fresh shared
// address space of arenaBytes.  place may be nil for base first touch.
func New(cl *nodeos.Cluster, arenaBytes int64, place Placement) *Protocol {
	p := &Protocol{
		cl:        cl,
		sp:        memsys.NewSpace(cl.NumNodes(), arenaBytes),
		place:     place,
		pol:       coherence.MustNew(coherence.ProtoGenima),
		delegated: make(map[*sim.Task]int),
		nodes:     make([]*nodeState, cl.NumNodes()),
		locks:     make(map[int]*SysLock),
		bars:      make(map[string]*Barrier),
	}
	if p.place == nil {
		p.place = FirstTouch{}
	}
	words := (p.sp.NumPages() + 63) / 64
	for i := range p.nodes {
		p.nodes[i] = &nodeState{
			dirtyBits: make([]uint64, words),
			invBits:   make([]uint64, words),
		}
	}
	p.acc = memsys.NewAccessor(p.sp, p)
	p.sp.BindUnshares(func(node int) { p.cl.Ctr.Add(node, stats.EvCowUnshares, 1) })
	return p
}

// SetPlacement replaces the placement policy (must be called before any
// shared accesses).
func (p *Protocol) SetPlacement(pl Placement) { p.place = pl }

// UseProtocol selects the coherence policy by name (internal/coherence;
// the empty string selects the process default).  Must be called before
// any shared accesses; each run gets a fresh policy instance.
func (p *Protocol) UseProtocol(name string) error {
	pol, err := coherence.New(name)
	if err != nil {
		return err
	}
	p.pol = pol
	return nil
}

// ProtocolName returns the active coherence policy's registry name.
func (p *Protocol) ProtocolName() string { return p.pol.Name() }

// Space returns the protocol's shared address space.
func (p *Protocol) Space() *memsys.Space { return p.sp }

// Accessor returns the application-facing memory accessor.
func (p *Protocol) Accessor() *memsys.Accessor { return p.acc }

// Cluster returns the underlying cluster.
func (p *Protocol) Cluster() *nodeos.Cluster { return p.cl }

// homeOf resolves (possibly placing) the home of pid for a fault by t.
func (p *Protocol) homeOf(t *sim.Task, pid memsys.PageID) int {
	p.sp.RecordToucher(pid, t.MemNode())
	if h := p.sp.Home(pid); h >= 0 {
		return h
	}
	want := p.place.HomeFor(t, pid)
	h, _ := p.sp.TryFirstTouch(pid, want)
	return h
}

// validate makes t's node copy of pid readable, fetching from the home when
// the home is remote.  Returns the (locked-free) copy.
func (p *Protocol) validate(t *sim.Task, pid memsys.PageID) *memsys.PageCopy {
	ctr := p.cl.Ctr
	costs := p.cl.Costs
	node := t.MemNode()
	t.OpenSpan(uint8(profile.SpanFault), uint64(pid))
	defer t.CloseSpan()
	ctr.Add(node, stats.EvPageFaults, 1)
	t.Charge(sim.CatLocal, costs.FaultHandler)
	if p.Trace != nil {
		p.Trace.Add(t.Now(), node, trace.KindFault, uint64(pid))
	}

	home := p.homeOf(t, pid)
	pc := p.sp.Copy(node, pid)
	pc.Mu.Lock()
	defer pc.Mu.Unlock()
	if pc.Valid() {
		return pc // raced with another thread's fault; already resolved
	}
	if home == node {
		pc.EnsureFrame()
		pc.SetValid(true)
		return pc
	}
	// Remote home: make sure the primary copy exists, then fetch it.  The
	// home node's flush lock is held exclusively for the copy so the DMA
	// reads a stable page image (home-node threads store under the shared
	// side of that lock).  No cycle is possible: a path only ever pairs
	// node N's flush lock with page copies on N or with the unique home
	// copy of a page homed elsewhere.
	for {
		p.acc.FlushBegin(home)
		hc := p.sp.Copy(home, pid)
		hc.Mu.Lock()
		if h := p.sp.Home(pid); h != home {
			// The page re-homed (a dead-node adoption by another faulter)
			// while this thread was taking the old home's locks: chase the
			// new home.
			hc.Mu.Unlock()
			p.acc.FlushEnd(home)
			home = h
			if home == node {
				// Re-homed onto this very node by a sibling thread.
				pc.EnsureFrame()
				pc.SetValid(true)
				return pc
			}
			continue
		}
		// A home a fault plan has detached cannot serve faults any longer:
		// the faulting node adopts the page — the fetched image becomes the
		// primary copy, and a synthetic write notice makes every peer drop
		// its stale copy at its next acquire.
		dead := p.cl.Fault.Detached(home, t.Now())
		if !hc.Valid() {
			hc.EnsureFrame()
			hc.SetValid(true)
		}
		// The fetch aliases the home's frame instead of copying it: with
		// the home's flush lock held exclusively no home store is
		// mid-flight, so the shared frame is a stable snapshot, and the
		// home's next write unshares it (the fetched replica keeps this
		// image — exactly what the eager copy gave it).  First the frame is
		// interned in the content-hash table, so identical pages collapse
		// onto one canonical frame cluster-wide; the fetch's virtual cost
		// (the wire op below) is charged unchanged either way.
		if p.sp.DedupFrame(hc) {
			ctr.Add(node, stats.EvDedupHits, 1)
		}
		pc.AdoptFrame(p.sp, hc)
		if dead {
			hc.SetValid(false)
			p.sp.SetHome(pid, node)
		}
		hc.Mu.Unlock()
		p.acc.FlushEnd(home)
		p.cl.Wire.Do(t, wire.Op{Kind: wire.KindFetch, Dst: home, Size: memsys.PageSize, Arg: uint64(pid)})
		if dead {
			// Adopting the page remaps it into this node's home region.
			t.Charge(sim.CatLocalOS, costs.OSMapSegment)
			ctr.Add(node, stats.EvPageRehomes, 1)
			p.cl.Fault.NoteRehome(node, t.Now(), uint64(pid))
			p.PublishInvalidate(node, pid)
		}
		ctr.Add(node, stats.EvRemotePageFaults, 1)
		p.pol.PageFetch(node, pid, home)
		if p.OnRemoteFault != nil {
			p.OnRemoteFault(node, pid)
		}
		if p.Trace != nil {
			p.Trace.Add(t.Now(), node, trace.KindRemoteFill, uint64(pid))
		}
		t.MarkSpan(uint8(profile.MarkFill), uint64(pid), uint64(memsys.PageSize))
		pc.SetValid(true)
		return pc
	}
}

// ReadFault implements memsys.FaultHandler.
func (p *Protocol) ReadFault(t *sim.Task, pid memsys.PageID) {
	t.CancelPoint()
	p.validate(t, pid)
}

// WriteFault implements memsys.FaultHandler: validates the page and opens a
// write interval on it (twin capture on non-home nodes).
func (p *Protocol) WriteFault(t *sim.Task, pid memsys.PageID) {
	t.CancelPoint()
	pc := p.validate(t, pid)
	pc.Mu.Lock()
	if !pc.Written() {
		if p.sp.Home(pid) != t.MemNode() {
			// Twin capture is a reference on the current frame, not a page
			// copy — the first store unshares the frame and the twin keeps
			// the pristine image.  The paper's system memcpy'd here, so the
			// virtual page-copy cost is still charged (bit-identity).
			pc.CaptureTwin()
			t.Charge(sim.CatLocal, sim.Time(memsys.PageSize)) // twin copy
		}
		pc.SetWritten(true)
		ns := p.nodes[t.MemNode()]
		ns.dirtyMu.Lock()
		ns.markDirty(pid)
		ns.dirtyMu.Unlock()
	}
	pc.Mu.Unlock()
}

// Flush ends the node's current write interval: every dirty page is diffed
// and the diff applied to its home with a direct remote write; the interval
// is published to the log.  Called at releases and barrier arrivals.
//
// Under wire.Options.Coalesce (the GeNIMA release "protocol opt") the
// per-page remote writes to one home gather into a single wire op per home:
// adjacent diff runs travel back-to-back and the interval's write notices
// piggyback in the one message header, so a release costs one message per
// home instead of one per page.  The diffs themselves (and their local
// diff-computation cost and counters) are unchanged.
func (p *Protocol) Flush(t *sim.Task) { p.flush(t) }

// flush is Flush returning the interval's published page list (the write
// notices).  The delegated-release path uses the list to drop the origin
// node's stale copies of the pages the critical section wrote; the slice
// aliases the interval stored in the log and must not be mutated.
func (p *Protocol) flush(t *sim.Task) []memsys.PageID {
	node := t.MemNode()
	ns := p.nodes[node]

	ns.dirtyMu.Lock()
	if len(ns.dirtyPages) == 0 {
		ns.dirtyMu.Unlock()
		return nil
	}
	// Take the interval's page list and clear its bitmap in one step, so a
	// concurrent WriteFault re-registers any page it redirties from here on
	// (exactly the semantics the old map swap gave).
	work := ns.dirtyPages
	ns.dirtyPages = ns.spare[:0]
	ns.spare = nil
	for _, pid := range work {
		ns.dirtyBits[pid>>6] &^= uint64(1) << (pid & 63)
	}
	ns.dirtyMu.Unlock()

	slices.Sort(work) // deterministic flush/notice order

	var batch map[int]int // coalesce mode: home node -> gathered diff bytes
	if p.cl.Wire.Options().Coalesce {
		batch = make(map[int]int)
	}
	var merge map[int]int // merging policies: home node -> reduction diff bytes
	if p.pol.Merge() {
		merge = make(map[int]int)
	}

	p.acc.FlushBegin(node)
	pages := make([]memsys.PageID, 0, len(work))
	for _, pid := range work {
		if p.flushPage(t, node, pid, batch, merge) {
			pages = append(pages, pid)
		}
	}
	if len(batch) > 0 {
		homes := make([]int, 0, len(batch))
		for h := range batch {
			homes = append(homes, h)
		}
		slices.Sort(homes) // deterministic issue order
		for _, h := range homes {
			p.cl.Wire.Do(t, wire.Op{Kind: wire.KindWrite, Dst: h, Size: batch[h] + 16})
		}
	}
	if len(merge) > 0 {
		// Reduction targets travel as one batched merge op per home — the
		// commutative protocol's entire effect on the wire schedule.  The
		// diffs themselves were applied to the homes byte-for-byte above,
		// so data and checksums are identical to the baseline.
		homes := make([]int, 0, len(merge))
		for h := range merge {
			homes = append(homes, h)
		}
		slices.Sort(homes) // deterministic issue order
		for _, h := range homes {
			p.cl.Wire.Do(t, wire.Op{Kind: wire.KindCommMerge, Dst: h, Size: merge[h] + 16})
			p.cl.Ctr.Add(node, stats.EvCommMerges, 1)
			t.MarkSpan(uint8(profile.MarkMerge), uint64(h), uint64(merge[h]))
		}
	}
	p.acc.FlushEnd(node)

	ns.dirtyMu.Lock()
	// Recycle the flushed interval's backing array.  A concurrent interval
	// may already have installed a spare; keep the larger of the two so
	// steady-state flushing stays allocation-free under churn instead of
	// repeatedly regrowing a small array.
	if cap(work) > cap(ns.spare) {
		ns.spare = work[:0]
	}
	ns.dirtyMu.Unlock()

	if len(pages) > 0 {
		p.logMu.Lock()
		p.log = append(p.log, interval{node: node, pages: pages})
		p.logMu.Unlock()
		p.cl.Ctr.Add(node, stats.EvWriteNotices, int64(len(pages)))
	}
	return pages
}

// flushPage diffs one dirty page to its home.  Returns whether the page was
// actually modified (and so needs a write notice).  A non-nil batch gathers
// the remote-write bytes per home instead of issuing per-page wire ops; a
// non-nil merge gathers the diffs the coherence policy routes to the
// flush's reduction batch (one wire.merge op per home).
func (p *Protocol) flushPage(t *sim.Task, node int, pid memsys.PageID, batch, merge map[int]int) bool {
	pc := p.sp.Copy(node, pid)
	pc.Mu.Lock()
	defer pc.Mu.Unlock()
	if !pc.Written() {
		return false
	}
	if p.sp.Home(pid) == node {
		// Home writes are already in place; only a notice is needed.
		pc.RetireTwin(p.sp) // possible only after a migration moved the home here
		pc.SetWritten(false)
		return true
	}
	if !pc.HasTwin() || pc.Data() == nil {
		pc.RetireTwin(p.sp)
		pc.SetWritten(false)
		return false
	}
	if p.diffToHome(t, node, pid, pc, batch, merge) == 0 {
		return false
	}
	if p.Trace != nil {
		p.Trace.Add(t.Now(), node, trace.KindDiff, uint64(pid))
	}
	return true
}

// diffToHome runs the diff kernel for pc against its twin, merges the dirty
// runs into the home copy, charges the (byte-exact) diff cost, and retires
// the twin to the page pool.  Both flushPage and forceDiffLocked funnel
// through here — it is the only place a diff is computed.  Caller holds
// pc.Mu; pc must have both data and twin, and the home must be remote.
// A non-nil batch defers the remote write: the diff bytes are gathered per
// home and the caller issues one coalesced wire op per home.  The coherence
// policy is consulted once per diff (MergeDiff); when it claims the diff
// and a merge batch is running, the bytes ride the reduction batch instead.
func (p *Protocol) diffToHome(t *sim.Task, node int, pid memsys.PageID, pc *memsys.PageCopy, batch, merge map[int]int) int {
	t.OpenSpan(uint8(profile.SpanDiff), uint64(pid))
	home := p.sp.Home(pid)
	hc := p.sp.Copy(home, pid)
	hc.Mu.Lock()
	if pc.TwinAliasesData() {
		// No store landed since twin capture (the unshare-on-write trigger
		// would have swapped the frame), so the diff is empty by
		// construction: skip the scan, keeping the empty-diff path's side
		// effects (the home copy is bound and validated, as DiffPage's
		// zero-byte merge used to leave it).  In practice a write fault is
		// always followed by its store, so this fires only on exotic
		// interleavings — the dominant clean-page case remains DiffPage's
		// four-words-per-branch scan over unshared pages.
		hc.EnsureFrame()
		hc.SetValid(true)
		hc.Mu.Unlock()
		pc.RetireTwin(p.sp)
		pc.SetWritten(false)
		t.CloseSpan()
		return 0
	}
	// The home frame may be aliased by fetched replicas or the dedup table;
	// privatize it before merging (replica holders keep the pre-merge
	// snapshot, which is exactly what their eager fetch copy was).
	hd, unshared := hc.EnsureExclusive(p.sp)
	if unshared {
		p.cl.Ctr.Add(node, stats.EvCowUnshares, 1)
	}
	diffBytes := memsys.DiffPage(pc.Data(), pc.TwinData(), hd)
	hc.SetValid(true)
	hc.Mu.Unlock()
	pc.RetireTwin(p.sp)
	pc.SetWritten(false)
	if diffBytes == 0 {
		t.CloseSpan()
		return 0
	}
	t.Charge(sim.CatLocal, p.cl.Costs.DiffTime(diffBytes))
	switch {
	case p.pol.MergeDiff(node, pid, home, diffBytes) && merge != nil:
		merge[home] += diffBytes
	case batch != nil:
		batch[home] += diffBytes
	default:
		p.cl.Wire.Do(t, wire.Op{Kind: wire.KindWrite, Dst: home, Size: diffBytes + 16, Arg: uint64(pid)})
	}
	p.cl.Ctr.Add(node, stats.EvDiffsSent, 1)
	p.cl.Ctr.Add(node, stats.EvDiffBytes, int64(diffBytes))
	t.CloseSpan()
	return diffBytes
}

// ApplyAcquire brings the node up to date with the interval log: all pages
// written by other nodes since the node's last acquire are invalidated
// (dirty local copies are force-flushed first so no local writes are lost).
// Called after obtaining a lock or leaving a barrier.
func (p *Protocol) ApplyAcquire(t *sim.Task) {
	node := t.MemNode()
	ns := p.nodes[node]
	ns.syncMu.Lock()
	defer ns.syncMu.Unlock()

	p.logMu.RLock()
	base := p.logBase.Load()
	end := base + int64(len(p.log))
	// ns.seen >= base always: compaction truncates only below the minimum
	// seen across nodes, so the unseen suffix is intact.
	pending := p.log[ns.seen.Load()-base : end-base]
	p.logMu.RUnlock()
	if len(pending) == 0 {
		return
	}

	// The invalidation list is deduplicated through a reusable bitmap and
	// accumulated into a scratch slice kept across acquires, so the pass
	// costs O(unseen pages) with no per-acquire allocation in steady state.
	notices := 0
	invalidate := ns.invScratch[:0]
	for _, iv := range pending {
		if iv.node == node {
			continue
		}
		for _, pid := range iv.pages {
			if p.sp.Home(pid) != node {
				if w, m := pid>>6, uint64(1)<<(pid&63); ns.invBits[w]&m == 0 {
					ns.invBits[w] |= m
					invalidate = append(invalidate, pid)
				}
			}
			notices++
		}
	}
	for _, pid := range invalidate {
		ns.invBits[pid>>6] &^= uint64(1) << (pid & 63)
	}
	if len(invalidate) > 0 {
		p.acc.FlushBegin(node)
		for _, pid := range invalidate {
			pc := p.sp.Copy(node, pid)
			pc.Mu.Lock()
			if pc.Written() {
				// Force the local interval's diff out before dropping the
				// copy, so concurrent false sharing cannot lose writes.
				p.forceDiffLocked(t, node, pid, pc)
			}
			if pc.Valid() {
				pc.SetValid(false)
				p.cl.Ctr.Add(node, stats.EvInvalidations, 1)
				if p.Trace != nil {
					p.Trace.Add(t.Now(), node, trace.KindInvalidate, uint64(pid))
				}
			}
			pc.RetireTwin(p.sp)
			// With the flush lock held exclusively no reader or writer is
			// inside this node's copies, so the invalidated copy's frame
			// reference can be dropped; if it was the last reference the
			// frame returns to the pool (or to the GC once it crossed
			// nodes) and the refetch aliases the home's frame instead of
			// allocating.
			pc.RetireData(p.sp)
			pc.Mu.Unlock()
		}
		p.acc.FlushEnd(node)
	}
	ns.invScratch = invalidate[:0]
	ns.seen.Store(end)
	t.Charge(sim.CatLocal, p.cl.Costs.WriteNotice*sim.Time(notices))
	p.maybeCompactLog()
}

// forceDiffLocked flushes one page's diff with pc.Mu already held.
func (p *Protocol) forceDiffLocked(t *sim.Task, node int, pid memsys.PageID, pc *memsys.PageCopy) {
	if p.sp.Home(pid) == node || !pc.HasTwin() {
		pc.SetWritten(false)
		return
	}
	p.diffToHome(t, node, pid, pc, nil, nil)
	ns := p.nodes[node]
	ns.dirtyMu.Lock()
	ns.dirtyBits[pid>>6] &^= uint64(1) << (pid & 63)
	ns.dirtyMu.Unlock()
}

// dropCopies invalidates node's local copies of pages, force-flushing any
// the node's own threads have dirtied first so no writes are lost.  Used
// when a delegated critical section returns to its origin node: the
// origin's pre-section copies of the pages the section wrote at the server
// are stale, and dropping them keeps the returning thread's own writes
// visible to it (pages homed at the origin took the diffs directly and are
// kept).
func (p *Protocol) dropCopies(t *sim.Task, node int, pages []memsys.PageID) {
	if len(pages) == 0 {
		return
	}
	p.acc.FlushBegin(node)
	for _, pid := range pages {
		if p.sp.Home(pid) == node {
			continue
		}
		pc := p.sp.Copy(node, pid)
		pc.Mu.Lock()
		if pc.Written() {
			p.forceDiffLocked(t, node, pid, pc)
		}
		if pc.Valid() {
			pc.SetValid(false)
			p.cl.Ctr.Add(node, stats.EvInvalidations, 1)
			if p.Trace != nil {
				p.Trace.Add(t.Now(), node, trace.KindInvalidate, uint64(pid))
			}
		}
		pc.RetireTwin(p.sp)
		pc.RetireData(p.sp)
		pc.Mu.Unlock()
	}
	p.acc.FlushEnd(node)
}

// logCompactThreshold is how many fully-applied intervals may accumulate
// before the log's prefix is truncated.  Small enough to bound memory on
// lock ping-pong workloads, large enough that compaction (an exclusive-lock
// copy) stays off the per-acquire fast path.
const logCompactThreshold = 256

// maybeCompactLog truncates the interval-log prefix that every node has
// already applied, keeping len(p.log) proportional to the unseen suffix
// instead of total history.  Readers hold snapshots of the old backing
// array, so the survivors are copied into a fresh slice rather than shifted
// in place.
func (p *Protocol) maybeCompactLog() {
	if p.DisableLogCompaction {
		return
	}
	min := int64(-1)
	for _, n := range p.nodes {
		if s := n.seen.Load(); min < 0 || s < min {
			min = s
		}
	}
	if min-p.logBase.Load() < logCompactThreshold {
		return
	}
	p.logMu.Lock()
	base := p.logBase.Load()
	min = base + int64(len(p.log))
	for _, n := range p.nodes { // re-read under the lock; seen only grows
		if s := n.seen.Load(); s < min {
			min = s
		}
	}
	if k := min - base; k > 0 {
		rest := make([]interval, int64(len(p.log))-k)
		copy(rest, p.log[k:])
		p.log = rest
		p.logBase.Store(min)
	}
	p.logMu.Unlock()
}

// LogLen returns the number of intervals currently retained in the log —
// after compaction, the unseen suffix plus at most logCompactThreshold
// applied ones.
func (p *Protocol) LogLen() int {
	p.logMu.RLock()
	defer p.logMu.RUnlock()
	return len(p.log)
}

// PublishInvalidate appends a synthetic write notice for pid attributed to
// node, so every other node drops its copy at its next acquire.  Used by
// the CableS page-migration mechanism.
func (p *Protocol) PublishInvalidate(node int, pid memsys.PageID) {
	p.logMu.Lock()
	p.log = append(p.log, interval{node: node, pages: []memsys.PageID{pid}})
	p.logMu.Unlock()
}

// Alloc carves a shared segment and, in the base system, statically
// registers it with every node's NIC (export on the segment's backing node
// plus an import entry per peer).  This is the registration pattern whose
// resource consumption CableS eliminates (Tables 1 and 2).
func (p *Protocol) Alloc(t *sim.Task, label string, size int64) (memsys.Addr, error) {
	a, err := p.sp.AllocSegment(label, size, memsys.PageSize)
	if err != nil {
		return 0, err
	}
	n := p.cl.NumNodes()
	for node := 0; node < n; node++ {
		nic := p.cl.VMMC.NIC(node)
		if _, err := nic.Register(label, size, true, false); err != nil {
			return 0, fmt.Errorf("genima: static registration failed: %w", err)
		}
		for peer := 0; peer < n; peer++ {
			if peer == node {
				continue
			}
			if _, err := nic.Register(label+"#import", 0, false, false); err != nil {
				return 0, fmt.Errorf("genima: static registration failed: %w", err)
			}
		}
		if t != nil {
			t.Charge(sim.CatLocalOS, p.cl.Costs.OSMapSegment)
		}
	}
	return a, nil
}
