// Package genima implements the base shared-virtual-memory protocol the
// paper builds CableS on: GeNIMA, a home-based, page-level protocol with
// release consistency over VMMC direct remote operations.
//
// Pages have a home node holding the primary copy.  Writers on other nodes
// capture a twin at the first write of an interval; at a release (lock
// release or barrier arrival) the node's dirty pages are diffed against
// their twins and the diffs applied to the homes with direct remote writes —
// no remote-processor involvement, exactly the property GeNIMA exploits on
// Myrinet.  Write notices are published through a totally ordered interval
// log; at an acquire a node invalidates every non-home page named by
// intervals it has not yet seen (a conservative variant of lazy release
// consistency — safe, never weaker; see DESIGN.md §5/§7).
package genima

import (
	"fmt"
	"sync"

	"cables/internal/memsys"
	"cables/internal/nodeos"
	"cables/internal/sim"
	"cables/internal/trace"
)

// Placement decides the home of a page on its first touch.  The base system
// uses per-page first touch (the faulting node); CableS substitutes map-unit
// granularity first touch with directory bookkeeping.
type Placement interface {
	HomeFor(t *sim.Task, pid memsys.PageID) int
}

// FirstTouch is the base system's placement: the faulting node becomes home.
type FirstTouch struct{}

// HomeFor returns the faulting node.
func (FirstTouch) HomeFor(t *sim.Task, _ memsys.PageID) int { return t.NodeID }

// interval is one flushed write interval: the pages node dirtied.
type interval struct {
	node  int
	pages []memsys.PageID
}

// nodeState is the protocol's per-node bookkeeping.
type nodeState struct {
	dirtyMu sync.Mutex
	dirty   map[memsys.PageID]struct{}

	syncMu sync.Mutex // serializes acquire-side invalidation passes
	seen   int        // prefix of the interval log already applied
}

// Protocol is one application's SVM protocol instance.
type Protocol struct {
	cl    *nodeos.Cluster
	sp    *memsys.Space
	acc   *memsys.Accessor
	place Placement

	logMu sync.RWMutex
	log   []interval

	nodes []*nodeState

	// OnRemoteFault, if set, observes every remotely-served page fault
	// (node that faulted, page).  CableS's migration policy counts these.
	OnRemoteFault func(node int, pid memsys.PageID)

	// Trace, if set, receives protocol events (faults, diffs,
	// invalidations, synchronization) with virtual timestamps.
	Trace *trace.Ring

	lockMu sync.Mutex
	locks  map[int]*SysLock

	barMu sync.Mutex
	bars  map[string]*Barrier
}

// New creates a protocol instance over the cluster with a fresh shared
// address space of arenaBytes.  place may be nil for base first touch.
func New(cl *nodeos.Cluster, arenaBytes int64, place Placement) *Protocol {
	p := &Protocol{
		cl:    cl,
		sp:    memsys.NewSpace(cl.NumNodes(), arenaBytes),
		place: place,
		nodes: make([]*nodeState, cl.NumNodes()),
		locks: make(map[int]*SysLock),
		bars:  make(map[string]*Barrier),
	}
	if p.place == nil {
		p.place = FirstTouch{}
	}
	for i := range p.nodes {
		p.nodes[i] = &nodeState{dirty: make(map[memsys.PageID]struct{})}
	}
	p.acc = memsys.NewAccessor(p.sp, p)
	return p
}

// SetPlacement replaces the placement policy (must be called before any
// shared accesses).
func (p *Protocol) SetPlacement(pl Placement) { p.place = pl }

// Space returns the protocol's shared address space.
func (p *Protocol) Space() *memsys.Space { return p.sp }

// Accessor returns the application-facing memory accessor.
func (p *Protocol) Accessor() *memsys.Accessor { return p.acc }

// Cluster returns the underlying cluster.
func (p *Protocol) Cluster() *nodeos.Cluster { return p.cl }

// homeOf resolves (possibly placing) the home of pid for a fault by t.
func (p *Protocol) homeOf(t *sim.Task, pid memsys.PageID) int {
	p.sp.RecordToucher(pid, t.NodeID)
	if h := p.sp.Home(pid); h >= 0 {
		return h
	}
	want := p.place.HomeFor(t, pid)
	h, _ := p.sp.TryFirstTouch(pid, want)
	return h
}

// validate makes t's node copy of pid readable, fetching from the home when
// the home is remote.  Returns the (locked-free) copy.
func (p *Protocol) validate(t *sim.Task, pid memsys.PageID) *memsys.PageCopy {
	ctr := p.cl.Ctr
	costs := p.cl.Costs
	ctr.PageFaults.Add(1)
	t.Charge(sim.CatLocal, costs.FaultHandler)
	if p.Trace != nil {
		p.Trace.Add(t.Now(), t.NodeID, trace.KindFault, uint64(pid))
	}

	home := p.homeOf(t, pid)
	pc := p.sp.Copy(t.NodeID, pid)
	pc.Mu.Lock()
	defer pc.Mu.Unlock()
	if pc.Valid() {
		return pc // raced with another thread's fault; already resolved
	}
	if home == t.NodeID {
		pc.EnsureData()
		pc.SetValid(true)
		return pc
	}
	// Remote home: make sure the primary copy exists, then fetch it.  The
	// home node's flush lock is held exclusively for the copy so the DMA
	// reads a stable page image (home-node threads store under the shared
	// side of that lock).  No cycle is possible: a path only ever pairs
	// node N's flush lock with page copies on N or with the unique home
	// copy of a page homed elsewhere.
	p.acc.FlushBegin(home)
	hc := p.sp.Copy(home, pid)
	hc.Mu.Lock()
	if !hc.Valid() {
		hc.EnsureData()
		hc.SetValid(true)
	}
	// Fetch into a fresh array and swap it in: readers that raced past the
	// validity check keep the array their own acquire justified.
	data := make([]byte, memsys.PageSize)
	copy(data, hc.Data())
	pc.ReplaceData(data)
	hc.Mu.Unlock()
	p.acc.FlushEnd(home)
	p.cl.VMMC.Fetch(t, home, memsys.PageSize)
	ctr.RemotePageFaults.Add(1)
	if p.OnRemoteFault != nil {
		p.OnRemoteFault(t.NodeID, pid)
	}
	if p.Trace != nil {
		p.Trace.Add(t.Now(), t.NodeID, trace.KindRemoteFill, uint64(pid))
	}
	pc.SetValid(true)
	return pc
}

// ReadFault implements memsys.FaultHandler.
func (p *Protocol) ReadFault(t *sim.Task, pid memsys.PageID) {
	t.CancelPoint()
	p.validate(t, pid)
}

// WriteFault implements memsys.FaultHandler: validates the page and opens a
// write interval on it (twin capture on non-home nodes).
func (p *Protocol) WriteFault(t *sim.Task, pid memsys.PageID) {
	t.CancelPoint()
	pc := p.validate(t, pid)
	pc.Mu.Lock()
	if !pc.Written() {
		if p.sp.Home(pid) != t.NodeID {
			twin := make([]byte, memsys.PageSize)
			copy(twin, pc.Data())
			pc.Twin = twin
			t.Charge(sim.CatLocal, sim.Time(memsys.PageSize)) // twin copy
		}
		pc.SetWritten(true)
		ns := p.nodes[t.NodeID]
		ns.dirtyMu.Lock()
		ns.dirty[pid] = struct{}{}
		ns.dirtyMu.Unlock()
	}
	pc.Mu.Unlock()
}

// Flush ends the node's current write interval: every dirty page is diffed
// and the diff applied to its home with a direct remote write; the interval
// is published to the log.  Called at releases and barrier arrivals.
func (p *Protocol) Flush(t *sim.Task) {
	node := t.NodeID
	ns := p.nodes[node]

	ns.dirtyMu.Lock()
	if len(ns.dirty) == 0 {
		ns.dirtyMu.Unlock()
		return
	}
	dirty := ns.dirty
	ns.dirty = make(map[memsys.PageID]struct{})
	ns.dirtyMu.Unlock()

	p.acc.FlushBegin(node)
	pages := make([]memsys.PageID, 0, len(dirty))
	for pid := range dirty {
		if p.flushPage(t, node, pid) {
			pages = append(pages, pid)
		}
	}
	p.acc.FlushEnd(node)

	if len(pages) > 0 {
		p.logMu.Lock()
		p.log = append(p.log, interval{node: node, pages: pages})
		p.logMu.Unlock()
		p.cl.Ctr.WriteNotices.Add(int64(len(pages)))
	}
}

// flushPage diffs one dirty page to its home.  Returns whether the page was
// actually modified (and so needs a write notice).
func (p *Protocol) flushPage(t *sim.Task, node int, pid memsys.PageID) bool {
	pc := p.sp.Copy(node, pid)
	pc.Mu.Lock()
	defer pc.Mu.Unlock()
	if !pc.Written() {
		return false
	}
	home := p.sp.Home(pid)
	if home == node {
		// Home writes are already in place; only a notice is needed.
		pc.SetWritten(false)
		return true
	}
	if pc.Twin == nil || pc.Data() == nil {
		pc.SetWritten(false)
		return false
	}
	diffBytes := 0
	hc := p.sp.Copy(home, pid)
	hc.Mu.Lock()
	hd := hc.EnsureData()
	pd := pc.Data()
	for i := 0; i < memsys.PageSize; i++ {
		if pd[i] != pc.Twin[i] {
			hd[i] = pd[i]
			diffBytes++
		}
	}
	hc.SetValid(true)
	hc.Mu.Unlock()
	pc.Twin = nil
	pc.SetWritten(false)
	if diffBytes == 0 {
		return false
	}
	t.Charge(sim.CatLocal, p.cl.Costs.DiffTime(diffBytes))
	p.cl.VMMC.RemoteWrite(t, home, diffBytes+16)
	p.cl.Ctr.DiffsSent.Add(1)
	p.cl.Ctr.DiffBytes.Add(int64(diffBytes))
	if p.Trace != nil {
		p.Trace.Add(t.Now(), node, trace.KindDiff, uint64(pid))
	}
	return true
}

// ApplyAcquire brings the node up to date with the interval log: all pages
// written by other nodes since the node's last acquire are invalidated
// (dirty local copies are force-flushed first so no local writes are lost).
// Called after obtaining a lock or leaving a barrier.
func (p *Protocol) ApplyAcquire(t *sim.Task) {
	node := t.NodeID
	ns := p.nodes[node]
	ns.syncMu.Lock()
	defer ns.syncMu.Unlock()

	p.logMu.RLock()
	end := len(p.log)
	pending := p.log[ns.seen:end]
	p.logMu.RUnlock()
	if len(pending) == 0 {
		return
	}

	notices := 0
	var invalidate []memsys.PageID
	for _, iv := range pending {
		if iv.node == node {
			continue
		}
		for _, pid := range iv.pages {
			if p.sp.Home(pid) != node {
				invalidate = append(invalidate, pid)
			}
			notices++
		}
	}
	if len(invalidate) > 0 {
		p.acc.FlushBegin(node)
		for _, pid := range invalidate {
			pc := p.sp.Copy(node, pid)
			pc.Mu.Lock()
			if pc.Written() {
				// Force the local interval's diff out before dropping the
				// copy, so concurrent false sharing cannot lose writes.
				p.forceDiffLocked(t, node, pid, pc)
			}
			if pc.Valid() {
				pc.SetValid(false)
				p.cl.Ctr.Invalidations.Add(1)
				if p.Trace != nil {
					p.Trace.Add(t.Now(), node, trace.KindInvalidate, uint64(pid))
				}
			}
			pc.Twin = nil
			pc.Mu.Unlock()
		}
		p.acc.FlushEnd(node)
	}
	ns.seen = end
	t.Charge(sim.CatLocal, p.cl.Costs.WriteNotice*sim.Time(notices))
}

// forceDiffLocked flushes one page's diff with pc.Mu already held.
func (p *Protocol) forceDiffLocked(t *sim.Task, node int, pid memsys.PageID, pc *memsys.PageCopy) {
	home := p.sp.Home(pid)
	if home == node || pc.Twin == nil {
		pc.SetWritten(false)
		return
	}
	diffBytes := 0
	hc := p.sp.Copy(home, pid)
	hc.Mu.Lock()
	hd := hc.EnsureData()
	pd := pc.Data()
	for i := 0; i < memsys.PageSize; i++ {
		if pd[i] != pc.Twin[i] {
			hd[i] = pd[i]
			diffBytes++
		}
	}
	hc.SetValid(true)
	hc.Mu.Unlock()
	pc.SetWritten(false)
	ns := p.nodes[node]
	ns.dirtyMu.Lock()
	delete(ns.dirty, pid)
	ns.dirtyMu.Unlock()
	if diffBytes > 0 {
		t.Charge(sim.CatLocal, p.cl.Costs.DiffTime(diffBytes))
		p.cl.VMMC.RemoteWrite(t, home, diffBytes+16)
		p.cl.Ctr.DiffsSent.Add(1)
		p.cl.Ctr.DiffBytes.Add(int64(diffBytes))
	}
}

// PublishInvalidate appends a synthetic write notice for pid attributed to
// node, so every other node drops its copy at its next acquire.  Used by
// the CableS page-migration mechanism.
func (p *Protocol) PublishInvalidate(node int, pid memsys.PageID) {
	p.logMu.Lock()
	p.log = append(p.log, interval{node: node, pages: []memsys.PageID{pid}})
	p.logMu.Unlock()
}

// Alloc carves a shared segment and, in the base system, statically
// registers it with every node's NIC (export on the segment's backing node
// plus an import entry per peer).  This is the registration pattern whose
// resource consumption CableS eliminates (Tables 1 and 2).
func (p *Protocol) Alloc(t *sim.Task, label string, size int64) (memsys.Addr, error) {
	a, err := p.sp.AllocSegment(label, size, memsys.PageSize)
	if err != nil {
		return 0, err
	}
	n := p.cl.NumNodes()
	for node := 0; node < n; node++ {
		nic := p.cl.VMMC.NIC(node)
		if _, err := nic.Register(label, size, true, false); err != nil {
			return 0, fmt.Errorf("genima: static registration failed: %w", err)
		}
		for peer := 0; peer < n; peer++ {
			if peer == node {
				continue
			}
			if _, err := nic.Register(label+"#import", 0, false, false); err != nil {
				return 0, fmt.Errorf("genima: static registration failed: %w", err)
			}
		}
		if t != nil {
			t.Charge(sim.CatLocalOS, p.cl.Costs.OSMapSegment)
		}
	}
	return a, nil
}
