package genima_test

import (
	"sync"
	"testing"

	"cables/internal/m4"
	"cables/internal/memsys"
	"cables/internal/sim"
	"cables/internal/stats"
)

func newRT(t *testing.T, procs int) *m4.Runtime {
	t.Helper()
	return m4.New(m4.Config{Procs: procs, ProcsPerNode: 2, ArenaBytes: 32 << 20})
}

// TestSingleWriterBlocks has each worker write its own block, then after a
// barrier every worker verifies every other worker's block — the basic
// coherence round trip (diff flush at release, invalidation + fetch at
// acquire).
func TestSingleWriterBlocks(t *testing.T) {
	const procs = 8
	const perWorker = 2048 // doubles; spans several pages each
	rt := newRT(t, procs)
	main := rt.Main()
	acc := rt.Acc()
	base, err := rt.Malloc(main, "blocks", int64(procs*perWorker*8))
	if err != nil {
		t.Fatalf("malloc: %v", err)
	}

	ids := make([]int, procs)
	for w := 0; w < procs; w++ {
		w := w
		ids[w] = rt.Spawn(main, func(th *sim.Task) {
			my := base + memsys.Addr(w*perWorker*8)
			for i := 0; i < perWorker; i++ {
				acc.WriteF64(th, my+memsys.Addr(i*8), float64(w*perWorker+i))
			}
			rt.Barrier(th, "b", procs)
			for o := 0; o < procs; o++ {
				other := base + memsys.Addr(o*perWorker*8)
				for i := 0; i < perWorker; i += 97 {
					got := acc.ReadF64(th, other+memsys.Addr(i*8))
					want := float64(o*perWorker + i)
					if got != want {
						t.Errorf("worker %d: block %d idx %d: got %v want %v", w, o, i, got, want)
						return
					}
				}
			}
		})
	}
	for _, id := range ids {
		rt.Join(main, id)
	}
	if f := rt.Cluster().Ctr.Load(stats.EvPageFaults); f == 0 {
		t.Error("expected page faults, saw none")
	}
	// Writers are first-touch homes of their own blocks, so readers fault
	// remotely but no diffs are needed.
	if f := rt.Cluster().Ctr.Load(stats.EvRemotePageFaults); f == 0 {
		t.Error("expected remote page faults, saw none")
	}
}

// TestLockCounter increments a shared counter under a system lock from all
// workers; release consistency must make every increment visible.
func TestLockCounter(t *testing.T) {
	const procs, iters = 8, 50
	rt := newRT(t, procs)
	main := rt.Main()
	acc := rt.Acc()
	addr, err := rt.Malloc(main, "ctr", 8)
	if err != nil {
		t.Fatalf("malloc: %v", err)
	}
	acc.WriteI64(main, addr, 0)
	rt.Protocol().Flush(main)

	var wg sync.WaitGroup
	for w := 0; w < procs; w++ {
		wg.Add(1)
		rt.Spawn(main, func(th *sim.Task) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				rt.Lock(th, 1)
				v := acc.ReadI64(th, addr)
				acc.WriteI64(th, addr, v+1)
				rt.Unlock(th, 1)
			}
		})
	}
	wg.Wait()
	rt.Lock(main, 1)
	got := acc.ReadI64(main, addr)
	rt.Unlock(main, 1)
	if got != procs*iters {
		t.Fatalf("counter: got %d want %d", got, procs*iters)
	}
}

// TestFalseSharing has two workers on different nodes write interleaved
// words of the same page under distinct locks; diffs must merge at the home
// without losing either writer's updates (multiple-writer protocol).
func TestFalseSharing(t *testing.T) {
	const words = 512 // one page
	rt := newRT(t, 4)
	main := rt.Main()
	acc := rt.Acc()
	addr, err := rt.Malloc(main, "page", words*8)
	if err != nil {
		t.Fatalf("malloc: %v", err)
	}

	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		w := w
		wg.Add(1)
		rt.Spawn(main, func(th *sim.Task) {
			defer wg.Done()
			rt.Barrier(th, "start", 2)
			for i := w; i < words; i += 2 {
				acc.WriteI64(th, addr+memsys.Addr(i*8), int64(1000+i))
			}
			rt.Barrier(th, "end", 2)
		})
	}
	wg.Wait()
	rt.Lock(main, 9)
	rt.Unlock(main, 9)
	for i := 0; i < words; i++ {
		if got := acc.ReadI64(main, addr+memsys.Addr(i*8)); got != int64(1000+i) {
			t.Fatalf("word %d: got %d want %d", i, got, 1000+i)
		}
	}
}

// TestBarrierTimeMerges checks that a barrier advances every participant to
// at least the slowest arrival's virtual time.
func TestBarrierTimeMerges(t *testing.T) {
	rt := newRT(t, 4)
	main := rt.Main()
	var mu sync.Mutex
	var ends []sim.Time
	var ids []int
	for w := 0; w < 4; w++ {
		w := w
		ids = append(ids, rt.Spawn(main, func(th *sim.Task) {
			th.Compute(sim.Time(w+1) * sim.Millisecond)
			rt.Barrier(th, "b", 4)
			mu.Lock()
			ends = append(ends, th.Now())
			mu.Unlock()
		}))
	}
	for _, id := range ids {
		rt.Join(main, id)
	}
	for _, e := range ends {
		if e < 4*sim.Millisecond {
			t.Errorf("participant left barrier at %v, before slowest arrival", e)
		}
	}
}

// TestStaticRegistrationLimit verifies that the base system's G_MALLOC
// pattern exhausts NIC regions with many segments on many nodes — the
// failure mode that kept OCEAN from running at 32 processors on the
// original system.
func TestStaticRegistrationLimit(t *testing.T) {
	rt := newRT(t, 32) // 16 nodes
	main := rt.Main()
	var err error
	for i := 0; i < 60; i++ {
		if _, err = rt.Malloc(main, "seg", 256<<10); err != nil {
			break
		}
	}
	if err == nil {
		t.Fatal("expected region-limit failure at 16 nodes x 60 segments")
	}

	rt8 := newRT(t, 8) // 4 nodes: same segments fit
	for i := 0; i < 60; i++ {
		if _, err := rt8.Malloc(rt8.Main(), "seg", 256<<10); err != nil {
			t.Fatalf("unexpected failure at 4 nodes: %v", err)
		}
	}
}
