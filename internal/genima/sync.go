package genima

import (
	"fmt"
	"sync"

	"cables/internal/profile"
	"cables/internal/sim"
	"cables/internal/stats"
	"cables/internal/trace"
	"cables/internal/wire"
)

// SysLock is a GeNIMA system lock: a cluster-wide mutual-exclusion primitive
// whose state lives on a manager node and is transferred with direct remote
// operations.  CableS implements pthread mutexes directly on system locks
// (§2.3) and the protocol uses them internally for global-state updates.
//
// Virtual-time semantics: acquisition charges the Table 4 costs depending on
// whether the lock was last held on the caller's node; contended acquires
// block (for real) until the holder releases and then advance the waiter's
// clock to the hand-off instant.
type SysLock struct {
	p  *Protocol
	id int

	mu          sync.Mutex
	held        bool
	queue       []lockWaiter // parked contended acquires, FIFO
	lastRelease sim.Time
	lastNode    int // node that last held (executed) the lock
	holder      int // node the current holder's critical section executes on
	server      int // sticky delegation server (coherence policy); -1 = none
	nodeSeen    []bool
}

// lockWaiter is one parked contended acquire.  atServer records — decided
// under l.mu at enqueue time — whether the waiter's critical section will
// execute at the lock's delegation server, so the releaser can route the
// grant without racing on the waiter's own state.
type lockWaiter struct {
	t        *sim.Task
	atServer bool
}

// NewLock creates (or returns) the system lock with the given id.
func (p *Protocol) NewLock(id int) *SysLock {
	p.lockMu.Lock()
	defer p.lockMu.Unlock()
	if l, ok := p.locks[id]; ok {
		return l
	}
	l := &SysLock{p: p, id: id, lastNode: -1, holder: -1, server: -1, nodeSeen: make([]bool, p.cl.NumNodes())}
	p.locks[id] = l
	return l
}

// chargeAcquire applies the Table 4 acquisition cost model for t.  All
// communication shares are issued as wire ops against the lock's manager
// node (the node that last held it — GeNIMA migrates lock state with the
// holder).
func (l *SysLock) chargeAcquire(t *sim.Task) {
	c := l.p.cl.Costs
	w := l.p.cl.Wire
	if inj := l.p.cl.Fault; l.lastNode >= 0 && l.lastNode != t.NodeID &&
		inj.Detached(l.lastNode, t.Now()) {
		// The manager copy of the lock state lives on a node that has left
		// the application: pull it to this node before acquiring (one bulk
		// state transfer plus the remote-acquire base cost), then treat the
		// acquisition as a fresh local one.
		w.Do(t, wire.Op{Kind: wire.KindRehome, Dst: l.lastNode, Arg: uint64(l.id)})
		t.Charge(sim.CatLocal, c.MutexRemoteBase)
		l.lastNode = -1
		l.p.cl.Ctr.Add(t.NodeID, stats.EvLockRehomes, 1)
		inj.NoteRehome(t.NodeID, t.Now(), uint64(l.id))
	}
	first := !l.nodeSeen[t.NodeID]
	l.nodeSeen[t.NodeID] = true
	local := l.lastNode == t.NodeID || l.lastNode == -1
	switch {
	case local && first:
		t.Charge(sim.CatLocal, c.MutexLocalFirstBase)
		w.Do(t, wire.Op{Kind: wire.KindLockFirst, Dst: t.NodeID, Arg: uint64(l.id)})
	case local:
		t.Charge(sim.CatLocal, c.MutexLocalFast)
	case first:
		t.Charge(sim.CatLocal, c.MutexRemoteBase-sim.Microsecond)
		t.Charge(sim.CatRemote, c.MutexRemoteRemote)
		w.Do(t, wire.Op{Kind: wire.KindLockRemoteFirst, Dst: l.lastNode, Arg: uint64(l.id)})
	default:
		t.Charge(sim.CatLocal, c.MutexRemoteBase)
		t.Charge(sim.CatRemote, c.MutexRemoteRemote)
		w.Do(t, wire.Op{Kind: wire.KindLockRemote, Dst: l.lastNode, Arg: uint64(l.id)})
	}
	l.p.cl.Ctr.Add(t.NodeID, stats.EvLockAcquires, 1)
	if !local {
		l.p.cl.Ctr.Add(t.NodeID, stats.EvRemoteLockAcquires, 1)
	}
}

// Acquire obtains the lock, charging acquisition costs, blocking behind the
// current holder, and applying acquire-side coherence.
func (l *SysLock) Acquire(t *sim.Task) {
	t.CancelPoint()
	t.OpenSpan(uint8(profile.SpanLock), uint64(l.id))
	l.mu.Lock()
	// For the contention profile: the manager was remote at request time
	// (chargeAcquire may re-home it).
	flags := lockFlags(l, t)
	l.chargeAcquire(t)
	if !l.held {
		l.held = true
		l.holder = t.MemNode()
		t.WaitUntil(l.lastRelease)
		l.mu.Unlock()
	} else {
		flags |= profile.LockContended
		// A contended acquire consults the coherence policy: a non-negative
		// answer is the delegation server this waiter's critical section
		// should execute on (the delegate protocol stickies it to the
		// holder's node at first contention; genima always says -1).
		srv := l.p.pol.LockAcquire(l.id, l.holder, t.NodeID)
		if srv >= 0 && l.server < 0 {
			l.server = srv
		}
		// Shipping is only possible when the waiter is not already inside a
		// delegated section (no nested re-targeting) and the server is a
		// different node; a waiter already on the server executes there
		// without a descriptor.
		ship := srv >= 0 && srv != t.NodeID && t.MemNode() == t.NodeID
		atServer := srv >= 0 && (srv == t.NodeID || ship)
		// Park through the scheduler (the task's reusable grant channel —
		// no allocation per contended acquire).  The acquire never abandons
		// the wait, so the grant is always consumed and the channel stays
		// clean for reuse.
		l.queue = append(l.queue, lockWaiter{t: t, atServer: atServer})
		l.mu.Unlock()
		if ship {
			// Ship the critical-section descriptor: flush the origin's
			// write interval first (release semantics travel with the
			// descriptor, so the section's reads at the server observe the
			// thread's pre-section writes), then execute against the
			// server's memory until the matching Release.
			flags |= profile.LockDelegated
			l.p.Flush(t)
			l.p.cl.Wire.Do(t, wire.Op{Kind: wire.KindDelegateReq, Dst: srv, Arg: uint64(l.id)})
			l.p.cl.Ctr.Add(t.NodeID, stats.EvDelegations, 1)
			t.MarkSpan(uint8(profile.MarkDelegate), uint64(l.id), uint64(srv))
			t.SetExecNode(srv)
			l.p.delMu.Lock()
			l.p.delegated[t] = l.id
			l.p.delMu.Unlock()
		}
		grant := t.Sched().Park(t) // real block until hand-off
		t.WaitUntil(grant)
	}
	t.MarkSpan(uint8(profile.MarkLockAcquired), uint64(l.id), flags)
	if l.p.Trace != nil {
		l.p.Trace.Add(t.Now(), t.NodeID, trace.KindLock, uint64(l.id))
	}
	l.p.ApplyAcquire(t)
	t.CloseSpan()
}

// lockFlags computes the profiler's acquire classification.  Caller holds
// l.mu.
func lockFlags(l *SysLock, t *sim.Task) uint64 {
	if l.lastNode >= 0 && l.lastNode != t.NodeID {
		return profile.LockRemote
	}
	return 0
}

// TryAcquire attempts the lock without blocking (pthread_mutex_trylock).
// A failed attempt on a remotely-managed lock still pays the probe.
func (l *SysLock) TryAcquire(t *sim.Task) bool {
	t.CancelPoint()
	t.OpenSpan(uint8(profile.SpanLock), uint64(l.id))
	l.mu.Lock()
	if l.held {
		if l.lastNode != t.NodeID && l.lastNode != -1 {
			l.p.cl.Wire.Do(t, wire.Op{Kind: wire.KindLockProbe, Dst: l.lastNode, Arg: uint64(l.id)})
		}
		t.Charge(sim.CatLocal, l.p.cl.Costs.MutexLocalFast)
		l.mu.Unlock()
		t.CloseSpan()
		return false
	}
	flags := lockFlags(l, t)
	l.chargeAcquire(t)
	l.held = true
	l.holder = t.MemNode()
	t.WaitUntil(l.lastRelease)
	l.mu.Unlock()
	t.MarkSpan(uint8(profile.MarkLockAcquired), uint64(l.id), flags)
	l.p.ApplyAcquire(t)
	t.CloseSpan()
	return true
}

// Release flushes the caller's write interval and hands the lock to the
// next waiter (if any).
func (l *SysLock) Release(t *sim.Task) {
	exec := t.MemNode()
	pages := l.p.flush(t)
	c := l.p.cl.Costs
	t.Charge(sim.CatLocal, c.MutexUnlock)
	// Did this lock's acquire ship the critical section to a server?  The
	// bookkeeping is keyed to the lock so releasing an unrelated inner lock
	// inside a delegated section does not end the delegation.
	delegated := false
	if exec != t.NodeID {
		l.p.delMu.Lock()
		if id, ok := l.p.delegated[t]; ok && id == l.id {
			delegated = true
			delete(l.p.delegated, t)
		}
		l.p.delMu.Unlock()
	}
	if delegated {
		// Completion notification from the server back to the origin node
		// (Do sources it at the server: the task still executes there).
		l.p.cl.Wire.Do(t, wire.Op{Kind: wire.KindDelegateDone, Dst: t.NodeID, Arg: uint64(l.id)})
	}
	l.p.pol.LockRelease(l.id, exec, t.NodeID)
	l.mu.Lock()
	if !l.held {
		l.mu.Unlock()
		panic(fmt.Sprintf("genima: release of unheld lock %d", l.id))
	}
	l.lastRelease = t.Now()
	l.lastNode = exec
	t.MarkSpan(uint8(profile.MarkLockReleased), uint64(l.id), 0)
	if len(l.queue) > 0 {
		w := l.queue[0]
		l.queue = l.queue[1:]
		if w.atServer {
			l.holder = l.server
		} else {
			l.holder = w.t.NodeID
		}
		release := l.lastRelease
		server := l.server
		l.mu.Unlock()
		if w.atServer && exec == server {
			// Server-local hand-off: both critical sections execute at the
			// delegation server, so the lock state never crosses the wire —
			// the waiter resumes after an in-memory transfer.  This is the
			// delegate protocol's transfer-wait reduction.
			w.t.Sched().Unpark(w.t, release+c.MutexLocalFast)
		} else {
			// Hand-off: the waiter resumes at the grant message's delivery
			// instant (release time plus grant latency; the releaser has
			// moved on, so the waiter absorbs the latency as wait time).
			dst := w.t.NodeID
			if w.atServer {
				dst = server
			}
			w.t.Sched().Unpark(w.t, l.p.cl.Wire.DeliverAt(release, wire.Op{
				Kind: wire.KindLockGrant, Src: exec, Dst: dst, Arg: uint64(l.id),
			}))
		}
	} else {
		l.held = false
		l.mu.Unlock()
	}
	if delegated {
		// Back at the origin: drop its stale copies of the pages the
		// critical section wrote at the server, so the thread's next reads
		// refetch its own writes instead of pre-section images.
		t.SetExecNode(-1)
		l.p.dropCopies(t, t.NodeID, pages)
	}
}

// Barrier is GeNIMA's native global barrier.  Arrival flushes the write
// interval; departure applies acquire-side coherence.  Virtual release time
// is the maximum arrival time, so imbalance shows up as CatWait.
type Barrier struct {
	p    *Protocol
	name string
	id   uint64 // name hash; the profiler's barrier key (also picks mgr)

	mu      sync.Mutex
	mgr     int         // node managing the barrier's arrival counter
	waiters []*sim.Task // parked parties of the current generation
	count   int
	arrived sim.Time // max arrival virtual time this generation
	release sim.Time // release instant of the previous generation
}

// NewBarrier creates (or returns) the named barrier.  The arrival counter
// is managed on a node picked by hashing the name, spreading barrier
// traffic across the cluster.
func (p *Protocol) NewBarrier(name string) *Barrier {
	p.barMu.Lock()
	defer p.barMu.Unlock()
	if b, ok := p.bars[name]; ok {
		return b
	}
	h := uint64(14695981039346656037)
	for _, c := range []byte(name) {
		h = (h ^ uint64(c)) * 1099511628211
	}
	b := &Barrier{p: p, name: name, id: h, mgr: int(h % uint64(p.cl.NumNodes()))}
	p.bars[name] = b
	return b
}

// Wait joins the barrier with the given party count.  All parties must pass
// the same count within a generation.
func (b *Barrier) Wait(t *sim.Task, parties int) {
	if parties <= 0 {
		panic(fmt.Sprintf("genima: barrier %q with %d parties", b.name, parties))
	}
	t.CancelPoint()
	t.OpenSpan(uint8(profile.SpanBarrier), b.id)
	b.p.Flush(t)
	c := b.p.cl.Costs
	t.Charge(sim.CatLocal, c.BarrierNative)

	b.mu.Lock()
	// Arrival announcement to the manager node (read under b.mu: a rehome
	// may move it).
	b.p.cl.Wire.Do(t, wire.Op{Kind: wire.KindBarrierArrive, Dst: b.mgr})
	if inj := b.p.cl.Fault; b.mgr != 0 && inj.Detached(b.mgr, t.Now()) {
		// The barrier's arrival counter is managed on a node that has left:
		// the observing party re-homes the counter state to the master (one
		// bulk state transfer) before arriving.
		b.p.cl.Wire.Do(t, wire.Op{Kind: wire.KindRehome, Dst: b.mgr, Arg: uint64(len(b.name))})
		b.mgr = 0
		b.p.cl.Ctr.Add(t.NodeID, stats.EvBarrierRehomes, 1)
		inj.NoteRehome(t.NodeID, t.Now(), uint64(len(b.name)))
	}
	if now := t.Now(); now > b.arrived {
		b.arrived = now
	}
	b.count++
	var release sim.Time
	switch {
	case b.count > parties:
		b.mu.Unlock()
		panic(fmt.Sprintf("genima: barrier %q overfilled (%d > %d parties)",
			b.name, b.count, parties))
	case b.count == parties:
		release = b.arrived
		b.release = release
		ws := b.waiters
		b.waiters = nil
		b.count = 0
		b.arrived = 0
		if b.p.Epochs != nil {
			// The last arriver closes the epoch: snapshot the counters at
			// the release instant for the per-epoch windows.
			b.p.Epochs.Mark(b.name, int64(b.release))
		}
		b.p.pol.BarrierRelease(b.name, parties)
		b.mu.Unlock()
		for _, w := range ws {
			w.Sched().Unpark(w, release)
		}
	default:
		// Park until the last arriver releases the generation; the grant
		// carries the release instant.
		b.waiters = append(b.waiters, t)
		b.mu.Unlock()
		release = t.Sched().Park(t)
	}

	t.WaitUntil(release)
	if b.p.Trace != nil {
		b.p.Trace.Add(t.Now(), t.NodeID, trace.KindBarrier, 0)
	}
	b.p.ApplyAcquire(t)
	b.p.cl.Ctr.Add(t.NodeID, stats.EvBarriers, 1)
	t.CloseSpan()
}
