package genima

import (
	"fmt"
	"sync"

	"cables/internal/profile"
	"cables/internal/sim"
	"cables/internal/stats"
	"cables/internal/trace"
	"cables/internal/wire"
)

// SysLock is a GeNIMA system lock: a cluster-wide mutual-exclusion primitive
// whose state lives on a manager node and is transferred with direct remote
// operations.  CableS implements pthread mutexes directly on system locks
// (§2.3) and the protocol uses them internally for global-state updates.
//
// Virtual-time semantics: acquisition charges the Table 4 costs depending on
// whether the lock was last held on the caller's node; contended acquires
// block (for real) until the holder releases and then advance the waiter's
// clock to the hand-off instant.
type SysLock struct {
	p  *Protocol
	id int

	mu          sync.Mutex
	held        bool
	queue       []*sim.Task // parked contended acquires, FIFO
	lastRelease sim.Time
	lastNode    int // node that last held the lock
	nodeSeen    []bool
}

// NewLock creates (or returns) the system lock with the given id.
func (p *Protocol) NewLock(id int) *SysLock {
	p.lockMu.Lock()
	defer p.lockMu.Unlock()
	if l, ok := p.locks[id]; ok {
		return l
	}
	l := &SysLock{p: p, id: id, lastNode: -1, nodeSeen: make([]bool, p.cl.NumNodes())}
	p.locks[id] = l
	return l
}

// chargeAcquire applies the Table 4 acquisition cost model for t.  All
// communication shares are issued as wire ops against the lock's manager
// node (the node that last held it — GeNIMA migrates lock state with the
// holder).
func (l *SysLock) chargeAcquire(t *sim.Task) {
	c := l.p.cl.Costs
	w := l.p.cl.Wire
	if inj := l.p.cl.Fault; l.lastNode >= 0 && l.lastNode != t.NodeID &&
		inj.Detached(l.lastNode, t.Now()) {
		// The manager copy of the lock state lives on a node that has left
		// the application: pull it to this node before acquiring (one bulk
		// state transfer plus the remote-acquire base cost), then treat the
		// acquisition as a fresh local one.
		w.Do(t, wire.Op{Kind: wire.KindRehome, Dst: l.lastNode, Arg: uint64(l.id)})
		t.Charge(sim.CatLocal, c.MutexRemoteBase)
		l.lastNode = -1
		l.p.cl.Ctr.Add(t.NodeID, stats.EvLockRehomes, 1)
		inj.NoteRehome(t.NodeID, t.Now(), uint64(l.id))
	}
	first := !l.nodeSeen[t.NodeID]
	l.nodeSeen[t.NodeID] = true
	local := l.lastNode == t.NodeID || l.lastNode == -1
	switch {
	case local && first:
		t.Charge(sim.CatLocal, c.MutexLocalFirstBase)
		w.Do(t, wire.Op{Kind: wire.KindLockFirst, Dst: t.NodeID, Arg: uint64(l.id)})
	case local:
		t.Charge(sim.CatLocal, c.MutexLocalFast)
	case first:
		t.Charge(sim.CatLocal, c.MutexRemoteBase-sim.Microsecond)
		t.Charge(sim.CatRemote, c.MutexRemoteRemote)
		w.Do(t, wire.Op{Kind: wire.KindLockRemoteFirst, Dst: l.lastNode, Arg: uint64(l.id)})
	default:
		t.Charge(sim.CatLocal, c.MutexRemoteBase)
		t.Charge(sim.CatRemote, c.MutexRemoteRemote)
		w.Do(t, wire.Op{Kind: wire.KindLockRemote, Dst: l.lastNode, Arg: uint64(l.id)})
	}
	l.p.cl.Ctr.Add(t.NodeID, stats.EvLockAcquires, 1)
	if !local {
		l.p.cl.Ctr.Add(t.NodeID, stats.EvRemoteLockAcquires, 1)
	}
}

// Acquire obtains the lock, charging acquisition costs, blocking behind the
// current holder, and applying acquire-side coherence.
func (l *SysLock) Acquire(t *sim.Task) {
	t.CancelPoint()
	t.OpenSpan(uint8(profile.SpanLock), uint64(l.id))
	l.mu.Lock()
	// For the contention profile: the manager was remote at request time
	// (chargeAcquire may re-home it).
	flags := lockFlags(l, t)
	l.chargeAcquire(t)
	if !l.held {
		l.held = true
		t.WaitUntil(l.lastRelease)
		l.mu.Unlock()
	} else {
		flags |= profile.LockContended
		// Park through the scheduler (the task's reusable grant channel —
		// no allocation per contended acquire).  The acquire never abandons
		// the wait, so the grant is always consumed and the channel stays
		// clean for reuse.
		l.queue = append(l.queue, t)
		l.mu.Unlock()
		grant := t.Sched().Park(t) // real block until hand-off
		t.WaitUntil(grant)
	}
	t.MarkSpan(uint8(profile.MarkLockAcquired), uint64(l.id), flags)
	if l.p.Trace != nil {
		l.p.Trace.Add(t.Now(), t.NodeID, trace.KindLock, uint64(l.id))
	}
	l.p.ApplyAcquire(t)
	t.CloseSpan()
}

// lockFlags computes the profiler's acquire classification.  Caller holds
// l.mu.
func lockFlags(l *SysLock, t *sim.Task) uint64 {
	if l.lastNode >= 0 && l.lastNode != t.NodeID {
		return profile.LockRemote
	}
	return 0
}

// TryAcquire attempts the lock without blocking (pthread_mutex_trylock).
// A failed attempt on a remotely-managed lock still pays the probe.
func (l *SysLock) TryAcquire(t *sim.Task) bool {
	t.CancelPoint()
	t.OpenSpan(uint8(profile.SpanLock), uint64(l.id))
	l.mu.Lock()
	if l.held {
		if l.lastNode != t.NodeID && l.lastNode != -1 {
			l.p.cl.Wire.Do(t, wire.Op{Kind: wire.KindLockProbe, Dst: l.lastNode, Arg: uint64(l.id)})
		}
		t.Charge(sim.CatLocal, l.p.cl.Costs.MutexLocalFast)
		l.mu.Unlock()
		t.CloseSpan()
		return false
	}
	flags := lockFlags(l, t)
	l.chargeAcquire(t)
	l.held = true
	t.WaitUntil(l.lastRelease)
	l.mu.Unlock()
	t.MarkSpan(uint8(profile.MarkLockAcquired), uint64(l.id), flags)
	l.p.ApplyAcquire(t)
	t.CloseSpan()
	return true
}

// Release flushes the caller's write interval and hands the lock to the
// next waiter (if any).
func (l *SysLock) Release(t *sim.Task) {
	l.p.Flush(t)
	c := l.p.cl.Costs
	t.Charge(sim.CatLocal, c.MutexUnlock)
	l.mu.Lock()
	if !l.held {
		l.mu.Unlock()
		panic(fmt.Sprintf("genima: release of unheld lock %d", l.id))
	}
	l.lastRelease = t.Now()
	l.lastNode = t.NodeID
	t.MarkSpan(uint8(profile.MarkLockReleased), uint64(l.id), 0)
	if len(l.queue) > 0 {
		next := l.queue[0]
		l.queue = l.queue[1:]
		l.mu.Unlock()
		// Hand-off: the waiter resumes at the grant message's delivery
		// instant (release time plus grant latency; the releaser has moved
		// on, so the waiter absorbs the latency as wait time).
		next.Sched().Unpark(next, l.p.cl.Wire.DeliverAt(l.lastRelease, wire.Op{
			Kind: wire.KindLockGrant, Src: t.NodeID, Dst: next.NodeID, Arg: uint64(l.id),
		}))
		return
	}
	l.held = false
	l.mu.Unlock()
}

// Barrier is GeNIMA's native global barrier.  Arrival flushes the write
// interval; departure applies acquire-side coherence.  Virtual release time
// is the maximum arrival time, so imbalance shows up as CatWait.
type Barrier struct {
	p    *Protocol
	name string
	id   uint64 // name hash; the profiler's barrier key (also picks mgr)

	mu      sync.Mutex
	mgr     int         // node managing the barrier's arrival counter
	waiters []*sim.Task // parked parties of the current generation
	count   int
	arrived sim.Time // max arrival virtual time this generation
	release sim.Time // release instant of the previous generation
}

// NewBarrier creates (or returns) the named barrier.  The arrival counter
// is managed on a node picked by hashing the name, spreading barrier
// traffic across the cluster.
func (p *Protocol) NewBarrier(name string) *Barrier {
	p.barMu.Lock()
	defer p.barMu.Unlock()
	if b, ok := p.bars[name]; ok {
		return b
	}
	h := uint64(14695981039346656037)
	for _, c := range []byte(name) {
		h = (h ^ uint64(c)) * 1099511628211
	}
	b := &Barrier{p: p, name: name, id: h, mgr: int(h % uint64(p.cl.NumNodes()))}
	p.bars[name] = b
	return b
}

// Wait joins the barrier with the given party count.  All parties must pass
// the same count within a generation.
func (b *Barrier) Wait(t *sim.Task, parties int) {
	if parties <= 0 {
		panic(fmt.Sprintf("genima: barrier %q with %d parties", b.name, parties))
	}
	t.CancelPoint()
	t.OpenSpan(uint8(profile.SpanBarrier), b.id)
	b.p.Flush(t)
	c := b.p.cl.Costs
	t.Charge(sim.CatLocal, c.BarrierNative)

	b.mu.Lock()
	// Arrival announcement to the manager node (read under b.mu: a rehome
	// may move it).
	b.p.cl.Wire.Do(t, wire.Op{Kind: wire.KindBarrierArrive, Dst: b.mgr})
	if inj := b.p.cl.Fault; b.mgr != 0 && inj.Detached(b.mgr, t.Now()) {
		// The barrier's arrival counter is managed on a node that has left:
		// the observing party re-homes the counter state to the master (one
		// bulk state transfer) before arriving.
		b.p.cl.Wire.Do(t, wire.Op{Kind: wire.KindRehome, Dst: b.mgr, Arg: uint64(len(b.name))})
		b.mgr = 0
		b.p.cl.Ctr.Add(t.NodeID, stats.EvBarrierRehomes, 1)
		inj.NoteRehome(t.NodeID, t.Now(), uint64(len(b.name)))
	}
	if now := t.Now(); now > b.arrived {
		b.arrived = now
	}
	b.count++
	var release sim.Time
	switch {
	case b.count > parties:
		b.mu.Unlock()
		panic(fmt.Sprintf("genima: barrier %q overfilled (%d > %d parties)",
			b.name, b.count, parties))
	case b.count == parties:
		release = b.arrived
		b.release = release
		ws := b.waiters
		b.waiters = nil
		b.count = 0
		b.arrived = 0
		if b.p.Epochs != nil {
			// The last arriver closes the epoch: snapshot the counters at
			// the release instant for the per-epoch windows.
			b.p.Epochs.Mark(b.name, int64(b.release))
		}
		b.mu.Unlock()
		for _, w := range ws {
			w.Sched().Unpark(w, release)
		}
	default:
		// Park until the last arriver releases the generation; the grant
		// carries the release instant.
		b.waiters = append(b.waiters, t)
		b.mu.Unlock()
		release = t.Sched().Park(t)
	}

	t.WaitUntil(release)
	if b.p.Trace != nil {
		b.p.Trace.Add(t.Now(), t.NodeID, trace.KindBarrier, 0)
	}
	b.p.ApplyAcquire(t)
	b.p.cl.Ctr.Add(t.NodeID, stats.EvBarriers, 1)
	t.CloseSpan()
}
