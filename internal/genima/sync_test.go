package genima_test

import (
	"sync"
	"testing"

	"cables/internal/sim"
	"cables/internal/stats"
)

// TestLockHandoffAdvancesWaiterClock: a contended acquire resumes no
// earlier than the holder's release instant.
func TestLockHandoffAdvancesWaiterClock(t *testing.T) {
	rt := newRT(t, 4)
	main := rt.Main()
	l := rt.Protocol().NewLock(7)

	holding := make(chan struct{})
	var waiterNow sim.Time
	var wg sync.WaitGroup
	wg.Add(2)
	rt.Spawn(main, func(th *sim.Task) {
		defer wg.Done()
		l.Acquire(th)
		close(holding)
		th.Compute(5 * sim.Millisecond)
		l.Release(th)
	})
	rt.Spawn(main, func(th *sim.Task) {
		defer wg.Done()
		<-holding
		l.Acquire(th)
		waiterNow = th.Now()
		l.Release(th)
	})
	wg.Wait()
	if waiterNow < 5*sim.Millisecond {
		t.Errorf("waiter resumed at %v, before holder's 5ms compute", waiterNow)
	}
}

// TestUnheldReleasePanics guards against lock misuse.
func TestUnheldReleasePanics(t *testing.T) {
	rt := newRT(t, 2)
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	rt.Protocol().NewLock(1).Release(rt.Main())
}

// TestBarrierOverfillPanics guards party-count misuse.
func TestBarrierOverfillPanics(t *testing.T) {
	rt := newRT(t, 2)
	b := rt.Protocol().NewBarrier("x")
	done := make(chan struct{})
	go func() {
		defer func() {
			recover()
			close(done)
		}()
		w1 := rt.Cluster().NewTask(0, 0)
		b.Wait(w1, 1) // completes alone
		b.Wait(w1, 1) // next generation, completes alone
	}()
	<-done
}

// TestBarrierReusableAcrossGenerations: the same barrier object works for
// many generations with consistent coherence.
func TestBarrierReusableAcrossGenerations(t *testing.T) {
	const procs, gens = 4, 20
	rt := newRT(t, procs)
	main := rt.Main()
	acc := rt.Acc()
	addr, err := rt.Malloc(main, "gen", 8)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < procs; w++ {
		w := w
		wg.Add(1)
		rt.Spawn(main, func(th *sim.Task) {
			defer wg.Done()
			for g := 0; g < gens; g++ {
				if g%procs == w {
					acc.WriteI64(th, addr, int64(g))
				}
				rt.Barrier(th, "g", procs)
				if got := acc.ReadI64(th, addr); got != int64(g) {
					t.Errorf("worker %d gen %d: got %d", w, g, got)
					return
				}
				rt.Barrier(th, "g2", procs)
			}
		})
	}
	wg.Wait()
}

// TestMigrationMechanism: PublishInvalidate makes stale copies refetch
// after a page's home moves.
func TestMigrationMechanism(t *testing.T) {
	rt := newRT(t, 4)
	main := rt.Main()
	acc := rt.Acc()
	proto := rt.Protocol()
	sp := proto.Space()
	addr, err := rt.Malloc(main, "mig", 8)
	if err != nil {
		t.Fatal(err)
	}
	acc.WriteI64(main, addr, 11)
	proto.Flush(main)
	pid := sp.PageOf(addr)
	home := sp.Home(pid)

	// Every node reads (and caches) the page.
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		rt.Spawn(main, func(th *sim.Task) {
			defer wg.Done()
			rt.Lock(th, 1)
			rt.Unlock(th, 1)
			if got := acc.ReadI64(th, addr); got != 11 {
				t.Errorf("pre-migration read: %d", got)
			}
		})
	}
	wg.Wait()

	// Move the home by hand (the CableS mechanism does this plus costs).
	dst := (home + 1) % 2
	sc, dc := sp.Copy(home, pid), sp.Copy(dst, pid)
	sc.Mu.Lock()
	dc.Mu.Lock()
	dc.AdoptFrame(sp, sc)
	dc.SetValid(true)
	sc.SetValid(false)
	sp.SetHome(pid, dst)
	dc.Mu.Unlock()
	sc.Mu.Unlock()
	proto.PublishInvalidate(dst, pid)

	// After the next acquire, everyone still reads the value — now served
	// by the new home.
	for w := 0; w < 4; w++ {
		wg.Add(1)
		rt.Spawn(main, func(th *sim.Task) {
			defer wg.Done()
			rt.Lock(th, 1)
			rt.Unlock(th, 1)
			if got := acc.ReadI64(th, addr); got != 11 {
				t.Errorf("post-migration read: %d", got)
			}
		})
	}
	wg.Wait()
	if sp.Home(pid) != dst {
		t.Error("home not moved")
	}
}

// TestForcedDiffOnInvalidation: a node with unflushed writes to a page that
// gets invalidated (false sharing) must not lose them.
func TestForcedDiffOnInvalidation(t *testing.T) {
	rt := newRT(t, 4)
	main := rt.Main()
	acc := rt.Acc()
	addr, err := rt.Malloc(main, "fs", 2*8)
	if err != nil {
		t.Fatal(err)
	}
	// Home the page on the main node so both workers write remotely.
	acc.WriteI64(main, addr, 0)
	acc.WriteI64(main, addr+8, 0)
	rt.Protocol().Flush(main)

	var wg sync.WaitGroup
	sync1 := make(chan struct{})
	wg.Add(2)
	rt.Spawn(main, func(th *sim.Task) {
		defer wg.Done()
		acc.WriteI64(th, addr, 111) // dirty word 0, do NOT release yet
		close(sync1)
		rt.Barrier(th, "fs", 2) // release happens here
	})
	rt.Spawn(main, func(th *sim.Task) {
		defer wg.Done()
		<-sync1
		// Writer 2 updates word 1 under a lock, forcing writer 1's node to
		// see a write notice for the page while it still has dirty data.
		rt.Lock(th, 3)
		acc.WriteI64(th, addr+8, 222)
		rt.Unlock(th, 3)
		rt.Barrier(th, "fs", 2)
	})
	wg.Wait()
	rt.Lock(main, 3)
	rt.Unlock(main, 3)
	if got := acc.ReadI64(main, addr); got != 111 {
		t.Errorf("word 0 lost: %d", got)
	}
	if got := acc.ReadI64(main, addr+8); got != 222 {
		t.Errorf("word 1 lost: %d", got)
	}
}

// TestReadOnlyPagesNeverDiff: pages that are only read produce no diffs.
func TestReadOnlyPagesNeverDiff(t *testing.T) {
	rt := newRT(t, 8)
	main := rt.Main()
	acc := rt.Acc()
	addr, err := rt.Malloc(main, "ro", 16<<10)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]float64, 2048)
	for i := range buf {
		buf[i] = float64(i)
	}
	acc.WriteF64s(main, addr, buf)
	rt.Protocol().Flush(main)
	before := rt.Cluster().Ctr.Load(stats.EvDiffsSent)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		rt.Spawn(main, func(th *sim.Task) {
			defer wg.Done()
			rt.Barrier(th, "ro", 8)
			dst := make([]float64, 2048)
			acc.ReadF64s(th, addr, dst)
			rt.Barrier(th, "ro2", 8)
		})
	}
	wg.Wait()
	if got := rt.Cluster().Ctr.Load(stats.EvDiffsSent); got != before {
		t.Errorf("read-only workload produced %d diffs", got-before)
	}
}

// TestSpawnJoinVisibility: writes before Spawn are visible to the child;
// child writes are visible after Join (POSIX create/join semantics).
func TestSpawnJoinVisibility(t *testing.T) {
	rt := newRT(t, 4)
	main := rt.Main()
	acc := rt.Acc()
	addr, err := rt.Malloc(main, "vis", 16)
	if err != nil {
		t.Fatal(err)
	}
	acc.WriteI64(main, addr, 5)
	id := rt.Spawn(main, func(th *sim.Task) {
		if got := acc.ReadI64(th, addr); got != 5 {
			t.Errorf("child saw %d", got)
		}
		acc.WriteI64(th, addr+8, 6)
	})
	rt.Join(main, id)
	if got := acc.ReadI64(main, addr+8); got != 6 {
		t.Errorf("parent saw %d after join", got)
	}
}
