// Package m4 implements the M4-macro programming environment (CREATE,
// WAIT_FOR_END, LOCK, BARRIER, G_MALLOC) directly on the base GeNIMA SVM
// system — the "original, optimized SVM system" configuration of the paper's
// Figure 5.  It follows the traditional SVM template (paper Figure 2): all
// nodes present from initialization, one worker thread per processor,
// static registration of shared segments.
package m4

import (
	"fmt"
	"sync"

	"cables/internal/apps/appapi"
	"cables/internal/fault"
	"cables/internal/genima"
	"cables/internal/memsys"
	"cables/internal/nodeos"
	"cables/internal/profile"
	"cables/internal/sim"
	"cables/internal/stats"
	"cables/internal/wire"
)

// Runtime is the M4-on-GeNIMA backend.
type Runtime struct {
	cl    *nodeos.Cluster
	proto *genima.Protocol
	procs int
	main  *sim.Task

	mu      sync.Mutex
	nextID  int
	nodeSeq int
	done    map[int]chan sim.Time
	endMax  sim.Time
}

// Config selects the run shape for the base system.
type Config struct {
	// Procs is the processor count (1, 4, 8, 16, 32 in the paper).
	Procs int
	// ProcsPerNode is the SMP width (paper: 2).
	ProcsPerNode int
	// ArenaBytes is the shared arena size.
	ArenaBytes int64
	// Costs optionally overrides the cost table.
	Costs *sim.Costs
	// Fault optionally injects deterministic faults (see internal/fault).
	Fault *fault.Injector
	// Wire selects the wire plane's opt-in modes (contended sync, release
	// coalescing); the zero value reproduces the default schedule.
	Wire wire.Options
	// Sched names the thread-manager backend (sim.SchedulerNames); empty
	// selects the process default (CABLES_SCHED / `cablesim -sched`).
	Sched string
	// Protocol names the coherence policy (coherence.Names); empty selects
	// the process default (CABLES_PROTOCOL / `cablesim -protocol`).
	Protocol string
}

// New builds a base-system runtime.  All nodes required for Procs are
// attached up front, as the traditional template demands.
func New(cfg Config) *Runtime {
	if cfg.Procs <= 0 {
		panic(fmt.Sprintf("m4: invalid processor count %d", cfg.Procs))
	}
	if cfg.ProcsPerNode <= 0 {
		cfg.ProcsPerNode = 2
	}
	if cfg.ArenaBytes <= 0 {
		cfg.ArenaBytes = 256 << 20
	}
	nodes := (cfg.Procs + cfg.ProcsPerNode - 1) / cfg.ProcsPerNode
	cl := nodeos.NewCluster(nodeos.Config{
		NumNodes:     nodes,
		ProcsPerNode: cfg.ProcsPerNode,
		Costs:        cfg.Costs,
		Fault:        cfg.Fault,
		Wire:         cfg.Wire,
		Sched:        cfg.Sched,
	})
	rt := &Runtime{
		cl:    cl,
		proto: genima.New(cl, cfg.ArenaBytes, genima.FirstTouch{}),
		procs: cfg.Procs,
		done:  make(map[int]chan sim.Time),
	}
	if err := rt.proto.UseProtocol(cfg.Protocol); err != nil {
		panic(fmt.Sprintf("m4: %v", err))
	}
	for _, n := range cl.Nodes {
		n.SetAttached(true)
	}
	rt.main = cl.NewTask(0, 0)
	cl.Nodes[0].ThreadStarted()
	return rt
}

// BackendName implements appapi.Name.
func (rt *Runtime) BackendName() string { return "genima" }

// Protocol exposes the underlying SVM protocol.
func (rt *Runtime) Protocol() *genima.Protocol { return rt.proto }

// Cluster implements appapi.Runtime.
func (rt *Runtime) Cluster() *nodeos.Cluster { return rt.cl }

// Main implements appapi.Runtime.
func (rt *Runtime) Main() *sim.Task { return rt.main }

// Procs implements appapi.Runtime.
func (rt *Runtime) Procs() int { return rt.procs }

// Acc implements appapi.Runtime.
func (rt *Runtime) Acc() *memsys.Accessor { return rt.proto.Accessor() }

// Spawn implements appapi.Runtime: the worker is placed round-robin over
// the cluster's nodes (one per processor in the traditional template).
func (rt *Runtime) Spawn(parent *sim.Task, fn func(t *sim.Task)) int {
	rt.mu.Lock()
	rt.nextID++
	id := rt.nextID
	node := rt.nodeSeq % rt.cl.NumNodes()
	rt.nodeSeq++
	ch := make(chan sim.Time, 1)
	rt.done[id] = ch
	rt.mu.Unlock()

	// Creation has release semantics (the child must see prior writes).
	rt.proto.Flush(parent)
	parent.OpenSpan(uint8(profile.SpanCreate), uint64(node))
	parent.Charge(sim.CatLocalOS, rt.cl.Costs.OSThreadCreate)
	if node != parent.NodeID {
		rt.cl.Wire.Do(parent, wire.Op{Kind: wire.KindSpawn, Dst: node})
	}
	parent.CloseSpan()
	child := rt.cl.NewTask(node, parent.Now())
	rt.cl.Ctr.Add(node, stats.EvThreadsCreated, 1)
	rt.cl.Nodes[node].ThreadStarted()
	rt.cl.Sched.Go(child, func() {
		defer func() {
			r := recover()
			rt.proto.Flush(child) // exit has release semantics
			rt.cl.Nodes[node].ThreadStopped()
			rt.mu.Lock()
			if child.Now() > rt.endMax {
				rt.endMax = child.Now()
			}
			rt.mu.Unlock()
			ch <- child.Now()
			if r != nil && r != sim.ErrCanceled {
				panic(r)
			}
		}()
		rt.proto.ApplyAcquire(child)
		fn(child)
	})
	return id
}

// Join implements appapi.Runtime.
func (rt *Runtime) Join(parent *sim.Task, id int) {
	rt.mu.Lock()
	ch, ok := rt.done[id]
	rt.mu.Unlock()
	if !ok {
		panic(fmt.Sprintf("m4: join of unknown thread %d", id))
	}
	// The joining thread blocks in the OS and releases its processor (and
	// its scheduler slot: the join waits on the child's real progress).
	node := rt.cl.Nodes[parent.NodeID]
	node.ThreadStopped()
	rt.cl.Sched.Block(parent)
	end := <-ch
	ch <- end // allow repeated joins from WAIT_FOR_END sweeps
	rt.cl.Sched.Unblock(parent)
	node.ThreadStarted()
	parent.WaitUntil(end)
	rt.proto.ApplyAcquire(parent) // join has acquire semantics
}

// Lock implements appapi.Runtime (the M4 LOCK macro).
func (rt *Runtime) Lock(t *sim.Task, id int) { rt.proto.NewLock(id).Acquire(t) }

// Unlock implements appapi.Runtime (the M4 UNLOCK macro).
func (rt *Runtime) Unlock(t *sim.Task, id int) { rt.proto.NewLock(id).Release(t) }

// Barrier implements appapi.Runtime (the M4 BARRIER macro).
func (rt *Runtime) Barrier(t *sim.Task, name string, parties int) {
	rt.proto.NewBarrier(name).Wait(t, parties)
}

// Malloc implements appapi.Runtime (the G_MALLOC macro): allocation plus
// static registration on every node, the base system's costly pattern.
func (rt *Runtime) Malloc(t *sim.Task, label string, size int64) (memsys.Addr, error) {
	return rt.proto.Alloc(t, label, size)
}

// Finish implements appapi.Runtime.
func (rt *Runtime) Finish() sim.Time {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if rt.main.Now() > rt.endMax {
		rt.endMax = rt.main.Now()
	}
	return rt.endMax
}

var _ appapi.Runtime = (*Runtime)(nil)
