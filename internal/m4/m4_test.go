package m4_test

import (
	"sync"
	"testing"

	"cables/internal/apps/appapi"
	"cables/internal/m4"
	"cables/internal/sim"
)

func TestConfigDefaultsAndShape(t *testing.T) {
	rt := m4.New(m4.Config{Procs: 7}) // odd count, default SMP width
	if rt.Procs() != 7 {
		t.Errorf("procs: %d", rt.Procs())
	}
	if got := rt.Cluster().NumNodes(); got != 4 { // ceil(7/2)
		t.Errorf("nodes: %d", got)
	}
	if appapi.BackendName(rt) != "genima" {
		t.Errorf("backend: %s", appapi.BackendName(rt))
	}
}

func TestInvalidProcsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	m4.New(m4.Config{Procs: 0})
}

// TestSpawnPlacesRoundRobin: workers are distributed over all nodes.
func TestSpawnPlacesRoundRobin(t *testing.T) {
	rt := m4.New(m4.Config{Procs: 8, ProcsPerNode: 2, ArenaBytes: 8 << 20})
	var mu sync.Mutex
	nodes := map[int]int{}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		rt.Spawn(rt.Main(), func(th *sim.Task) {
			defer wg.Done()
			mu.Lock()
			nodes[th.NodeID]++
			mu.Unlock()
		})
	}
	wg.Wait()
	if len(nodes) != 4 {
		t.Fatalf("used %d nodes: %v", len(nodes), nodes)
	}
	for n, c := range nodes {
		if c != 2 {
			t.Errorf("node %d got %d workers", n, c)
		}
	}
}

// TestJoinIsRepeatable: WAIT_FOR_END-style sweeps may join twice.
func TestJoinIsRepeatable(t *testing.T) {
	rt := m4.New(m4.Config{Procs: 2, ProcsPerNode: 2, ArenaBytes: 8 << 20})
	id := rt.Spawn(rt.Main(), func(th *sim.Task) { th.Compute(sim.Millisecond) })
	rt.Join(rt.Main(), id)
	rt.Join(rt.Main(), id) // must not hang or panic
	if rt.Main().Now() < sim.Millisecond {
		t.Error("join did not merge child clock")
	}
}

func TestJoinUnknownPanics(t *testing.T) {
	rt := m4.New(m4.Config{Procs: 2, ProcsPerNode: 2, ArenaBytes: 8 << 20})
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	rt.Join(rt.Main(), 999)
}

// TestFinishCoversAllThreads: Finish is the max over worker and main ends.
func TestFinishCoversAllThreads(t *testing.T) {
	rt := m4.New(m4.Config{Procs: 2, ProcsPerNode: 2, ArenaBytes: 8 << 20})
	id := rt.Spawn(rt.Main(), func(th *sim.Task) { th.Compute(7 * sim.Millisecond) })
	rt.Join(rt.Main(), id)
	if got := rt.Finish(); got < 7*sim.Millisecond {
		t.Errorf("finish: %v", got)
	}
}
