package memsys

import (
	"encoding/binary"
	"fmt"
	"math"

	"cables/internal/sim"
)

// FaultHandler is implemented by the SVM protocol.  The accessor invokes it
// when a simulated access finds the local page copy unusable; the handler
// must make the copy valid for reading (ReadFault) or valid-and-writable
// with a twin captured and the page registered dirty (WriteFault), charging
// the faulting task for all protocol work.
type FaultHandler interface {
	ReadFault(t *sim.Task, pid PageID)
	WriteFault(t *sim.Task, pid PageID)
}

// Accessor is the application-facing view of the shared address space for
// one protocol backend.  All simulated shared-memory accesses go through it;
// it implements the page-fault check that VM hardware performs in the real
// system.  The per-node writer/flusher locks live in the Space itself
// (Space.flush), so an accessor is just the (space, handler) pair and spaces
// are garbage-collected normally when dropped.
type Accessor struct {
	Sp *Space
	H  FaultHandler
}

// NewAccessor binds a space to a protocol fault handler.
func NewAccessor(sp *Space, h FaultHandler) *Accessor {
	return &Accessor{Sp: sp, H: h}
}

// FlushBegin takes the node's flush lock exclusively; the protocol calls it
// around interval flushes.
func (a *Accessor) FlushBegin(node int) { a.Sp.flush[node].Lock() }

// FlushEnd releases the flush lock.
func (a *Accessor) FlushEnd(node int) { a.Sp.flush[node].Unlock() }

func (a *Accessor) check(addr Addr, size int) (PageID, int) {
	if addr&(Addr(size)-1) != 0 {
		panic(fmt.Sprintf("memsys: unaligned %d-byte access at %#x", size, uint64(addr)))
	}
	if !a.Sp.Contains(addr, size) {
		panic(fmt.Sprintf("memsys: access [%#x,+%d) outside shared arena", uint64(addr), size))
	}
	return a.Sp.PageOf(addr), int(addr & PageMask)
}

// pageForRead returns a readable copy with the node's flush lock held
// shared, faulting if necessary.  The caller must release it via readEnd
// after the load.  Holding the lock over the byte access pairs with the
// acquire path, which invalidates (and retires page arrays) under the
// exclusive side — so a reader that passed the validity check can never
// observe an array after it returns to the page pool.
func (a *Accessor) pageForRead(t *sim.Task, pid PageID) *PageCopy {
	pc := a.Sp.Copy(t.MemNode(), pid)
	for {
		a.Sp.flush[t.MemNode()].RLock()
		if pc.Valid() {
			return pc
		}
		a.Sp.flush[t.MemNode()].RUnlock()
		a.H.ReadFault(t, pid)
	}
}

func (a *Accessor) readEnd(node int) { a.Sp.flush[node].RUnlock() }

// pageForWrite returns a writable copy with the node's flush lock held
// shared.  The caller must release it via writeEnd after the store.
//
// This is the unshare-on-write trigger of the COW frame store: a valid,
// written page whose frame is still shared (aliased by its twin, by the
// home copy it was fetched from, by other nodes' replicas, or by the
// canonical zero frame) is privatized here before the first store lands.
// While the shared flush lock is held with Written set, nothing can
// re-share the privatized frame — twin capture requires !Written (it
// happens-before the write that set it), and fetch adoption and interning
// take this node's flush lock exclusively when this node is the home — so
// one unshare per page per interval suffices and the per-store fast path
// is two atomic loads.
func (a *Accessor) pageForWrite(t *sim.Task, pid PageID) *PageCopy {
	pc := a.Sp.Copy(t.MemNode(), pid)
	for {
		a.Sp.flush[t.MemNode()].RLock()
		if pc.Valid() && pc.Written() {
			if f := pc.frame.Load(); f != nil && f.Exclusive() {
				return pc
			}
			pc.Mu.Lock()
			if _, copied := pc.EnsureExclusive(a.Sp); copied && a.Sp.unshares != nil {
				a.Sp.unshares(t.MemNode())
			}
			pc.Mu.Unlock()
			return pc
		}
		a.Sp.flush[t.MemNode()].RUnlock()
		a.H.WriteFault(t, pid)
	}
}

func (a *Accessor) writeEnd(node int) { a.Sp.flush[node].RUnlock() }

// --- Scalar accessors ---

// ReadF64 reads a float64 at addr.
func (a *Accessor) ReadF64(t *sim.Task, addr Addr) float64 {
	pid, off := a.check(addr, 8)
	pc := a.pageForRead(t, pid)
	v := binary.LittleEndian.Uint64(pc.Data()[off:])
	a.readEnd(t.MemNode())
	t.Compute(t.Costs().MemAccess)
	return math.Float64frombits(v)
}

// WriteF64 writes a float64 at addr.
func (a *Accessor) WriteF64(t *sim.Task, addr Addr, v float64) {
	pid, off := a.check(addr, 8)
	pc := a.pageForWrite(t, pid)
	binary.LittleEndian.PutUint64(pc.Data()[off:], math.Float64bits(v))
	a.writeEnd(t.MemNode())
	t.Compute(t.Costs().MemAccess)
}

// ReadI64 reads an int64 at addr.
func (a *Accessor) ReadI64(t *sim.Task, addr Addr) int64 {
	pid, off := a.check(addr, 8)
	pc := a.pageForRead(t, pid)
	v := binary.LittleEndian.Uint64(pc.Data()[off:])
	a.readEnd(t.MemNode())
	t.Compute(t.Costs().MemAccess)
	return int64(v)
}

// WriteI64 writes an int64 at addr.
func (a *Accessor) WriteI64(t *sim.Task, addr Addr, v int64) {
	pid, off := a.check(addr, 8)
	pc := a.pageForWrite(t, pid)
	binary.LittleEndian.PutUint64(pc.Data()[off:], uint64(v))
	a.writeEnd(t.MemNode())
	t.Compute(t.Costs().MemAccess)
}

// ReadI32 reads an int32 at addr.
func (a *Accessor) ReadI32(t *sim.Task, addr Addr) int32 {
	pid, off := a.check(addr, 4)
	pc := a.pageForRead(t, pid)
	v := binary.LittleEndian.Uint32(pc.Data()[off:])
	a.readEnd(t.MemNode())
	t.Compute(t.Costs().MemAccess)
	return int32(v)
}

// WriteI32 writes an int32 at addr.
func (a *Accessor) WriteI32(t *sim.Task, addr Addr, v int32) {
	pid, off := a.check(addr, 4)
	pc := a.pageForWrite(t, pid)
	binary.LittleEndian.PutUint32(pc.Data()[off:], uint32(v))
	a.writeEnd(t.MemNode())
	t.Compute(t.Costs().MemAccess)
}

// --- Block accessors (hot loops; page-wise fault checks, same charging) ---

// ReadF64s fills dst from the shared array starting at addr.
func (a *Accessor) ReadF64s(t *sim.Task, addr Addr, dst []float64) {
	if len(dst) == 0 {
		return
	}
	pid, off := a.check(addr, 8)
	i := 0
	for i < len(dst) {
		pc := a.pageForRead(t, pid)
		n := (PageSize - off) / 8
		if rem := len(dst) - i; n > rem {
			n = rem
		}
		for k := 0; k < n; k++ {
			dst[i+k] = math.Float64frombits(
				binary.LittleEndian.Uint64(pc.Data()[off+8*k:]))
		}
		a.readEnd(t.MemNode())
		i += n
		pid++
		off = 0
	}
	t.Compute(t.Costs().MemAccess * sim.Time(len(dst)))
}

// WriteF64s stores src into the shared array starting at addr.
func (a *Accessor) WriteF64s(t *sim.Task, addr Addr, src []float64) {
	if len(src) == 0 {
		return
	}
	pid, off := a.check(addr, 8)
	i := 0
	for i < len(src) {
		pc := a.pageForWrite(t, pid)
		n := (PageSize - off) / 8
		if rem := len(src) - i; n > rem {
			n = rem
		}
		for k := 0; k < n; k++ {
			binary.LittleEndian.PutUint64(pc.Data()[off+8*k:], math.Float64bits(src[i+k]))
		}
		a.writeEnd(t.MemNode())
		i += n
		pid++
		off = 0
	}
	t.Compute(t.Costs().MemAccess * sim.Time(len(src)))
}

// ReadI64s fills dst from the shared array starting at addr.
func (a *Accessor) ReadI64s(t *sim.Task, addr Addr, dst []int64) {
	if len(dst) == 0 {
		return
	}
	pid, off := a.check(addr, 8)
	i := 0
	for i < len(dst) {
		pc := a.pageForRead(t, pid)
		n := (PageSize - off) / 8
		if rem := len(dst) - i; n > rem {
			n = rem
		}
		for k := 0; k < n; k++ {
			dst[i+k] = int64(binary.LittleEndian.Uint64(pc.Data()[off+8*k:]))
		}
		a.readEnd(t.MemNode())
		i += n
		pid++
		off = 0
	}
	t.Compute(t.Costs().MemAccess * sim.Time(len(dst)))
}

// WriteI64s stores src into the shared array starting at addr.
func (a *Accessor) WriteI64s(t *sim.Task, addr Addr, src []int64) {
	if len(src) == 0 {
		return
	}
	pid, off := a.check(addr, 8)
	i := 0
	for i < len(src) {
		pc := a.pageForWrite(t, pid)
		n := (PageSize - off) / 8
		if rem := len(src) - i; n > rem {
			n = rem
		}
		for k := 0; k < n; k++ {
			binary.LittleEndian.PutUint64(pc.Data()[off+8*k:], uint64(src[i+k]))
		}
		a.writeEnd(t.MemNode())
		i += n
		pid++
		off = 0
	}
	t.Compute(t.Costs().MemAccess * sim.Time(len(src)))
}

// Touch validates a page range for reading without transferring data to the
// caller; used by applications for placement warm-up (first touch).
func (a *Accessor) Touch(t *sim.Task, addr Addr, n int) {
	if n <= 0 {
		return
	}
	first := a.Sp.PageOf(addr)
	last := a.Sp.PageOf(addr + Addr(n) - 1)
	for pid := first; pid <= last; pid++ {
		a.pageForRead(t, pid)
		a.readEnd(t.MemNode())
	}
}
