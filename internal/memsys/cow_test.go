package memsys

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"cables/internal/sim"
)

// This file checks the COW frame store against an eager-copy reference
// model: every operation the protocol performs on page copies (fetch,
// write, twin capture, flush-diff, invalidate) is mirrored on a model that
// clones bytes at every step, and the two must agree on every observable
// byte at every point.  It also checks the bookkeeping invariants the
// frames rely on: refcount misuse panics, unshare is idempotent, and a
// released space returns framesResident to its prior level (no leaks).

const cowHome = 0 // the model homes every page on node 0

// eagerCopy is the reference model of one node's page copy: plain slices,
// cloned eagerly exactly where the pre-COW implementation copied.
type eagerCopy struct {
	valid, written bool
	data, twin     []byte
}

// eagerModel mirrors a Space's per-node copy table.
type eagerModel struct {
	copies [][]eagerCopy
}

func newEagerModel(nodes, pages int) *eagerModel {
	m := &eagerModel{copies: make([][]eagerCopy, nodes)}
	for n := range m.copies {
		m.copies[n] = make([]eagerCopy, pages)
	}
	return m
}

func (m *eagerModel) at(node int, pid PageID) *eagerCopy { return &m.copies[node][pid] }

// homeData returns the authoritative home image, creating it as zeroes on
// first use (the eager equivalent of aliasing the canonical zero frame).
func (m *eagerModel) homeData(pid PageID) []byte {
	h := m.at(cowHome, pid)
	if h.data == nil {
		h.data = make([]byte, PageSize)
	}
	return h.data
}

// fetch validates node's copy from the home image (an eager byte copy).
func (m *eagerModel) fetch(node int, pid PageID) {
	e := m.at(node, pid)
	if e.valid {
		return
	}
	if node == cowHome {
		m.homeData(pid)
	} else {
		e.data = bytes.Clone(m.homeData(pid))
	}
	e.valid = true
}

// writeFault is fetch plus twin capture (non-home) and the dirty bit.
func (m *eagerModel) writeFault(node int, pid PageID) {
	m.fetch(node, pid)
	e := m.at(node, pid)
	if node != cowHome && e.twin == nil {
		e.twin = bytes.Clone(e.data)
	}
	e.written = true
}

// cowRefHandler implements the accessor's FaultHandler with the same frame
// operations the genima protocol performs (alias on fetch, dedup, twin as a
// reference), mirroring each transition on the eager model.
type cowRefHandler struct {
	sp    *Space
	model *eagerModel
}

func (h *cowRefHandler) ReadFault(t *sim.Task, pid PageID) {
	pc := h.sp.Copy(t.NodeID, pid)
	if pc.Valid() {
		return // write fault on an already-valid copy: no refetch
	}
	if t.NodeID == cowHome {
		pc.Mu.Lock()
		pc.EnsureFrame()
		pc.SetValid(true)
		pc.Mu.Unlock()
	} else {
		hc := h.sp.Copy(cowHome, pid)
		hc.Mu.Lock()
		hc.EnsureFrame()
		h.sp.DedupFrame(hc)
		pc.Mu.Lock()
		pc.AdoptFrame(h.sp, hc)
		pc.SetValid(true)
		pc.Mu.Unlock()
		hc.Mu.Unlock()
	}
	h.model.fetch(t.NodeID, pid)
}

func (h *cowRefHandler) WriteFault(t *sim.Task, pid PageID) {
	h.ReadFault(t, pid)
	pc := h.sp.Copy(t.NodeID, pid)
	pc.Mu.Lock()
	if t.NodeID != cowHome && !pc.HasTwin() {
		pc.CaptureTwin()
	}
	pc.SetWritten(true)
	pc.Mu.Unlock()
	h.model.writeFault(t.NodeID, pid)
}

// cowWorld is the system under test plus its mirror.
type cowWorld struct {
	t     *testing.T
	sp    *Space
	acc   *Accessor
	model *eagerModel
	tasks []*sim.Task
	nodes int
	pages int
}

func newCowWorld(t *testing.T, nodes, pages int) *cowWorld {
	sp := NewSpace(nodes, int64(pages)*PageSize)
	model := newEagerModel(nodes, pages)
	w := &cowWorld{
		t:     t,
		sp:    sp,
		acc:   NewAccessor(sp, &cowRefHandler{sp: sp, model: model}),
		model: model,
		nodes: nodes,
		pages: pages,
	}
	for n := 0; n < nodes; n++ {
		w.tasks = append(w.tasks, sim.NewTask(n+1, n, sim.DefaultCosts()))
	}
	return w
}

// write stores a value through the real accessor (exercising the
// unshare-on-write trigger) and mirrors the bytes into the model.
func (w *cowWorld) write(node int, pid PageID, off int, v uint64) {
	w.acc.WriteI64(w.tasks[node], w.sp.PageAddr(pid)+Addr(off), int64(v))
	binary.LittleEndian.PutUint64(w.model.at(node, pid).data[off:], v)
}

// flush mirrors the protocol's release path for one written page: diff the
// (data, twin) pair into the home image, retire the twin, clear the bit.
func (w *cowWorld) flush(node int, pid PageID) {
	pc := w.sp.Copy(node, pid)
	e := w.model.at(node, pid)
	if !pc.Written() || e.written != pc.Written() {
		w.t.Fatalf("node %d page %d: written bit diverged (cow %v, eager %v)",
			node, pid, pc.Written(), e.written)
	}
	w.acc.FlushBegin(node)
	w.flushLocked(node, pid)
	w.acc.FlushEnd(node)
}

func (w *cowWorld) flushLocked(node int, pid PageID) {
	pc := w.sp.Copy(node, pid)
	e := w.model.at(node, pid)
	if node != cowHome {
		hc := w.sp.Copy(cowHome, pid)
		hc.Mu.Lock()
		if !pc.TwinAliasesData() {
			hd, _ := hc.EnsureExclusive(w.sp)
			cowN := DiffPage(pc.Data(), pc.TwinData(), hd)
			eagerN := DiffPageRef(e.data, e.twin, w.model.homeData(pid))
			if cowN != eagerN {
				w.t.Fatalf("node %d page %d: diff size diverged (cow %d, eager %d)",
					node, pid, cowN, eagerN)
			}
		}
		hc.Mu.Unlock()
		pc.RetireTwin(w.sp)
		e.twin = nil
	}
	pc.SetWritten(false)
	e.written = false
}

// invalidate drops a non-home copy, force-flushing unflushed writes first
// (the false-sharing path).
func (w *cowWorld) invalidate(node int, pid PageID) {
	if node == cowHome {
		return
	}
	pc := w.sp.Copy(node, pid)
	e := w.model.at(node, pid)
	w.acc.FlushBegin(node)
	if pc.Written() {
		w.flushLocked(node, pid)
	}
	pc.SetValid(false)
	pc.RetireTwin(w.sp)
	pc.RetireData(w.sp)
	e.valid, e.written, e.data, e.twin = false, false, nil, nil
	w.acc.FlushEnd(node)
}

// verify compares every observable byte of one copy against the model.
func (w *cowWorld) verify(node int, pid PageID) {
	pc := w.sp.Copy(node, pid)
	e := w.model.at(node, pid)
	if pc.Valid() != e.valid {
		w.t.Fatalf("node %d page %d: validity diverged (cow %v, eager %v)", node, pid, pc.Valid(), e.valid)
	}
	if !e.valid {
		return
	}
	if !bytes.Equal(pc.Data(), e.data) {
		w.t.Fatalf("node %d page %d: data diverged from the eager reference", node, pid)
	}
	if (pc.HasTwin() && node != cowHome) != (e.twin != nil) {
		w.t.Fatalf("node %d page %d: twin presence diverged", node, pid)
	}
	if e.twin != nil && !bytes.Equal(pc.TwinData(), e.twin) {
		w.t.Fatalf("node %d page %d: twin diverged from the eager reference", node, pid)
	}
}

// TestCOWMatchesEagerReference is the property test: randomized
// read/write/fetch/flush/invalidate interleavings over several nodes and
// pages must keep the COW store byte-identical to the eager-copy reference,
// and releasing the space must return the resident-frame gauge to its
// starting level (no refcount leaks).
func TestCOWMatchesEagerReference(t *testing.T) {
	const nodes, pages, ops = 4, 8, 4000
	for seed := int64(1); seed <= 5; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			baseline := FramesResident()
			w := newCowWorld(t, nodes, pages)
			r := rand.New(rand.NewSource(seed))
			for i := 0; i < ops; i++ {
				node := r.Intn(nodes)
				pid := PageID(r.Intn(pages))
				switch r.Intn(10) {
				case 0, 1, 2, 3: // write (faults, twins and unshares as needed)
					w.write(node, pid, r.Intn(PageSize/8)*8, r.Uint64())
				case 4, 5: // read through the accessor (faults if invalid)
					w.acc.ReadI64(w.tasks[node], w.sp.PageAddr(pid)+Addr(r.Intn(PageSize/8)*8))
					w.model.fetch(node, pid)
				case 6, 7: // release-side flush of a dirty page
					if w.sp.Copy(node, pid).Written() {
						w.flush(node, pid)
					}
				case 8: // acquire-side invalidation
					w.invalidate(node, pid)
				case 9: // zero-content write-back: tests dedup onto the zero frame
					w.write(node, pid, r.Intn(PageSize/8)*8, 0)
				}
				w.verify(node, pid)
			}
			for n := 0; n < nodes; n++ {
				for p := PageID(0); p < PageID(pages); p++ {
					w.verify(n, p)
				}
			}
			w.sp.Release()
			if got := FramesResident(); got != baseline {
				t.Errorf("frame leak: %d frames resident after Release, baseline %d", got, baseline)
			}
		})
	}
}

// TestDedupFrameInterning checks the content-hash interner directly: equal
// content dedups onto one canonical frame, differing content does not, and
// a page written back to all-zeroes collapses onto the canonical zero frame.
func TestDedupFrameInterning(t *testing.T) {
	sp := NewSpace(1, 4*PageSize)
	a, b, c := sp.Copy(0, 0), sp.Copy(0, 1), sp.Copy(0, 2)
	for _, pc := range []*PageCopy{a, b, c} {
		pc.Mu.Lock()
		pc.EnsureExclusive(sp)
		pc.Mu.Unlock()
	}
	a.Data()[7] = 0x11
	b.Data()[7] = 0x11
	c.Data()[7] = 0x22

	a.Mu.Lock()
	if sp.DedupFrame(a) {
		t.Error("first intern reported a hit")
	}
	a.Mu.Unlock()
	b.Mu.Lock()
	if !sp.DedupFrame(b) {
		t.Error("identical content did not dedup")
	}
	b.Mu.Unlock()
	if a.Frame() != b.Frame() {
		t.Error("deduped copies do not alias one frame")
	}
	c.Mu.Lock()
	if sp.DedupFrame(c) {
		t.Error("differing content deduped")
	}
	c.Mu.Unlock()

	// All-zero content interns onto the permanent canonical zero frame.
	d := sp.Copy(0, 3)
	d.Mu.Lock()
	d.EnsureExclusive(sp)
	if !sp.DedupFrame(d) {
		t.Error("all-zero page did not dedup")
	}
	d.Mu.Unlock()
	if d.Frame() != ZeroFrame() {
		t.Error("all-zero page not aliased to the canonical zero frame")
	}
	sp.Release()
}

// TestFrameRefcountMisuse: releasing a frame below zero references panics
// rather than silently corrupting the pool.
func TestFrameRefcountMisuse(t *testing.T) {
	f := newFrame()
	f.crossNode.Store(true) // keep it out of the pool so the double release is observable
	f.Release(nil)
	defer func() {
		if recover() == nil {
			t.Error("release below zero did not panic")
		}
	}()
	f.Release(nil)
}

// TestUnshareIdempotent: once a copy's frame is exclusive, further
// EnsureExclusive calls are no-ops (no double unshare, no extra frames).
func TestUnshareIdempotent(t *testing.T) {
	sp := NewSpace(1, 1<<16)
	pc := sp.Copy(0, 0)
	pc.Mu.Lock()
	defer pc.Mu.Unlock()
	pc.EnsureExclusive(sp)
	pc.Data()[0] = 1
	pc.CaptureTwin()
	if _, unshared := pc.EnsureExclusive(sp); !unshared {
		t.Fatal("twinned frame did not unshare")
	}
	before := FramesResident()
	f := pc.Frame()
	for i := 0; i < 3; i++ {
		if _, unshared := pc.EnsureExclusive(sp); unshared {
			t.Fatal("exclusive frame unshared again")
		}
	}
	if pc.Frame() != f || FramesResident() != before {
		t.Error("repeat EnsureExclusive changed the frame or allocated")
	}
	pc.RetireTwin(sp)
}

// TestConcurrentUnshareHammer: many nodes alias one frame and unshare it
// concurrently; every node must end with a private frame carrying the
// original bytes plus exactly its own write (run under -race in CI).
func TestConcurrentUnshareHammer(t *testing.T) {
	const nodes = 8
	for round := 0; round < 50; round++ {
		sp := NewSpace(nodes, 1<<16)
		src := sp.Copy(0, 0)
		src.Mu.Lock()
		src.EnsureExclusive(sp)
		for i := range src.Data() {
			src.Data()[i] = byte(i)
		}
		src.Mu.Unlock()
		for n := 1; n < nodes; n++ {
			pc := sp.Copy(n, 0)
			pc.Mu.Lock()
			pc.AdoptFrame(sp, src)
			pc.SetValid(true)
			pc.Mu.Unlock()
		}
		var wg sync.WaitGroup
		for n := 1; n < nodes; n++ {
			n := n
			wg.Add(1)
			go func() {
				defer wg.Done()
				pc := sp.Copy(n, 0)
				pc.Mu.Lock()
				pc.EnsureExclusive(sp)
				pc.Data()[0] = byte(0x80 + n)
				pc.Mu.Unlock()
			}()
		}
		wg.Wait()
		for n := 1; n < nodes; n++ {
			pc := sp.Copy(n, 0)
			if !pc.Frame().Exclusive() {
				t.Fatalf("node %d frame still shared after unshare", n)
			}
			if got := pc.Data()[0]; got != byte(0x80+n) {
				t.Fatalf("node %d lost its write: %#x", n, got)
			}
			for i := 1; i < PageSize; i++ {
				if pc.Data()[i] != byte(i) {
					t.Fatalf("node %d byte %d corrupted during unshare", n, i)
				}
			}
		}
		sp.Release()
	}
}
