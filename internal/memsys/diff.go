package memsys

import (
	"encoding/binary"
	"fmt"
	"math/bits"
	"sync"
)

// This file is the optimized data-plane kernel shared by every SVM backend:
// a word-at-a-time page diff that applies run-length-encoded dirty runs to
// the home copy, and a sync.Pool of page buffers for twins and fetch copies.
//
// Invariance contract: DiffPage must return the exact count of bytes where
// data differs from twin — the same number the byte-wise reference produces
// — because that count feeds Costs.DiffTime and the DiffBytes counter, and
// every table/figure of the reproduction depends on it.  Only bytes that
// differ from the twin may be written to home: concurrent writers on other
// nodes merge their own diffs into the same home page (multiple-writer
// protocol), so copying an unchanged byte could clobber a committed remote
// update.  Optimizations here may change host CPU time only, never virtual
// time or merge semantics.

const (
	diffWord  = 8                  // bytes compared per step
	oneBytes  = 0x0101010101010101 // low bit of every byte lane
	highBytes = 0x8080808080808080 // high bit of every byte lane
)

// hasZeroByte reports a nonzero value iff some byte of x is zero (the exact
// SWAR test: borrow into a byte's high bit without that bit set in x).
func hasZeroByte(x uint64) uint64 {
	return (x - oneBytes) &^ x & highBytes
}

// nonzeroByteLanes folds each byte of x to its low bit: lane k of the result
// is 1 iff byte k of x is nonzero.  All shifts are masked below byte width,
// so no bits bleed across lane boundaries.
func nonzeroByteLanes(x uint64) uint64 {
	x |= (x >> 4) & 0x0f0f0f0f0f0f0f0f
	x |= (x >> 2) & 0x0303030303030303
	x |= (x >> 1) & oneBytes
	return x & oneBytes
}

// DiffPage compares data against twin eight bytes at a time, copies each
// maximal run of differing bytes into home, and returns the number of
// differing bytes (exactly what DiffPageRef returns).  All three slices
// must be at least PageSize long.
func DiffPage(data, twin, home []byte) int {
	if len(data) < PageSize || len(twin) < PageSize || len(home) < PageSize {
		panic(fmt.Sprintf("memsys: DiffPage on short pages (%d/%d/%d bytes)",
			len(data), len(twin), len(home)))
	}
	data, twin, home = data[:PageSize:PageSize], twin[:PageSize:PageSize], home[:PageSize:PageSize]
	diff := 0
	run := -1 // start of the open dirty run, or -1
	// Outer loop strides 32 bytes: four XORed words OR-folded into one
	// clean/dirty test, so unchanged spans (the common case) scan at four
	// words per branch.  Dirty blocks fall through to per-word handling.
	for w := 0; w < PageSize; w += 4 * diffWord {
		x0 := binary.LittleEndian.Uint64(data[w:]) ^ binary.LittleEndian.Uint64(twin[w:])
		x1 := binary.LittleEndian.Uint64(data[w+diffWord:]) ^ binary.LittleEndian.Uint64(twin[w+diffWord:])
		x2 := binary.LittleEndian.Uint64(data[w+2*diffWord:]) ^ binary.LittleEndian.Uint64(twin[w+2*diffWord:])
		x3 := binary.LittleEndian.Uint64(data[w+3*diffWord:]) ^ binary.LittleEndian.Uint64(twin[w+3*diffWord:])
		if x0|x1|x2|x3 == 0 {
			if run >= 0 {
				copy(home[run:w], data[run:w])
				run = -1
			}
			continue
		}
		if hasZeroByte(x0)|hasZeroByte(x1)|hasZeroByte(x2)|hasZeroByte(x3) == 0 {
			// Whole block dirty (no XOR byte is zero): extend the run
			// without folding lanes or scanning bytes.
			if run < 0 {
				run = w
			}
			diff += 4 * diffWord
			continue
		}
		for k, x := range [4]uint64{x0, x1, x2, x3} {
			lanes := nonzeroByteLanes(x)
			ww := w + k*diffWord
			if lanes == 0 {
				if run >= 0 {
					copy(home[run:ww], data[run:ww])
					run = -1
				}
				continue
			}
			if lanes == oneBytes { // every byte differs: extend without byte scan
				if run < 0 {
					run = ww
				}
				diff += diffWord
				continue
			}
			diff += bits.OnesCount64(lanes)
			for j := 0; j < diffWord; j++ {
				if lanes&(uint64(1)<<(8*j)) != 0 {
					if run < 0 {
						run = ww + j
					}
				} else if run >= 0 {
					copy(home[run:ww+j], data[run:ww+j])
					run = -1
				}
			}
		}
	}
	if run >= 0 {
		copy(home[run:], data[run:])
	}
	return diff
}

// DiffPageRef is the byte-wise reference implementation of DiffPage.  It is
// the semantic oracle for the property tests and the baseline for the
// hostperf benchmarks; protocol code must use DiffPage.
func DiffPageRef(data, twin, home []byte) int {
	diff := 0
	for i := 0; i < PageSize; i++ {
		if data[i] != twin[i] {
			home[i] = data[i]
			diff++
		}
	}
	return diff
}

// pagePool recycles standalone PageSize buffers (scratch pages for tests
// and benchmarks; page-copy storage lives in the frame pool, see frame.go).
// It stores *[PageSize]byte rather than slices: a pointer boxes into the
// pool's interface without allocating, where pooling a slice header would
// cost one heap allocation per Put and defeat the point.
//
// Zero-page fast path audit: buffers are no longer cleared on return — a
// returned buffer's contents are arbitrary, and GetPageBuf clears on hand-
// out instead, so callers that overwrite the whole page (fetch fills, copy
// targets) can use GetPageBufRaw and skip the 4 KB clear entirely.
var pagePool = sync.Pool{
	New: func() any { return new([PageSize]byte) },
}

// GetPageBuf returns a zeroed PageSize buffer from the pool.
func GetPageBuf() []byte {
	b := pagePool.Get().(*[PageSize]byte)
	clear(b[:])
	return b[:]
}

// GetPageBufRaw returns a PageSize buffer from the pool with arbitrary
// contents; for callers that overwrite the whole page before reading it.
func GetPageBufRaw() []byte {
	return pagePool.Get().(*[PageSize]byte)[:]
}

// PutPageBuf returns buf to the pool.  The caller must hold the only
// remaining reference; buffers that may still be read concurrently must
// never be returned.  Buffers that did not come from GetPageBuf (wrong
// capacity) are dropped.
func PutPageBuf(buf []byte) {
	if cap(buf) < PageSize {
		return
	}
	pagePool.Put((*[PageSize]byte)(buf[:PageSize]))
}
