package memsys

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

// refDiff applies the byte-wise reference to a copy of home and returns the
// resulting home plus the diff count.
func refDiff(data, twin, home []byte) ([]byte, int) {
	out := bytes.Clone(home)
	n := DiffPageRef(data, twin, out)
	return out, n
}

// kernelDiff does the same through the optimized kernel.
func kernelDiff(data, twin, home []byte) ([]byte, int) {
	out := bytes.Clone(home)
	n := DiffPage(data, twin, out)
	return out, n
}

// checkAgainstRef asserts the kernel and the reference agree on both the
// merged home bytes and the diff count for one (data, twin, home) triple.
func checkAgainstRef(t *testing.T, data, twin, home []byte, label string) {
	t.Helper()
	wantHome, wantN := refDiff(data, twin, home)
	gotHome, gotN := kernelDiff(data, twin, home)
	if gotN != wantN {
		t.Errorf("%s: diffBytes: kernel %d, reference %d", label, gotN, wantN)
	}
	if !bytes.Equal(gotHome, wantHome) {
		i := 0
		for i < PageSize && gotHome[i] == wantHome[i] {
			i++
		}
		t.Errorf("%s: merged home diverges at byte %d: kernel %#x, reference %#x",
			label, i, gotHome[i], wantHome[i])
	}
}

// fullPage builds a PageSize slice filled by fn(i).
func fullPage(fn func(i int) byte) []byte {
	b := make([]byte, PageSize)
	for i := range b {
		b[i] = fn(i)
	}
	return b
}

// TestDiffPageEdges covers the hand-picked boundary cases: all-equal,
// all-different, single bytes at the page edges, and runs straddling the
// 8-byte words the kernel compares at a time.  The home starts as a third,
// unrelated pattern so any write of an unchanged byte (which would clobber
// a concurrent writer's committed diff) shows up as divergence.
func TestDiffPageEdges(t *testing.T) {
	base := fullPage(func(i int) byte { return byte(i * 7) })
	home := fullPage(func(i int) byte { return byte(200 - i) })

	cases := []struct {
		label string
		dirty []int // byte offsets flipped in data relative to twin
	}{
		{"all-equal", nil},
		{"first-byte", []int{0}},
		{"last-byte", []int{PageSize - 1}},
		{"word-interior", []int{3}},
		{"straddle-word", []int{5, 6, 7, 8, 9, 10, 11}},
		{"straddle-three-words", []int{14, 15, 16, 17, 18, 19, 20, 21, 22, 23, 24, 25}},
		{"alternating-in-word", []int{32, 34, 36, 38}},
		{"adjacent-words-gap", []int{40, 41, 42, 43, 44, 45, 46, 47, 49}},
		{"run-to-page-end", []int{PageSize - 3, PageSize - 2, PageSize - 1}},
	}
	for _, tc := range cases {
		data := bytes.Clone(base)
		for _, off := range tc.dirty {
			data[off] ^= 0xff
		}
		checkAgainstRef(t, data, base, home, tc.label)
	}

	// All-different page.
	data := fullPage(func(i int) byte { return byte(i*7) ^ 0x5a })
	checkAgainstRef(t, data, base, home, "all-different")
	if _, n := kernelDiff(data, base, home); n != PageSize {
		t.Errorf("all-different: diffBytes %d, want %d", n, PageSize)
	}

	// A flipped byte whose new value is zero (zero is not "equal").
	data = bytes.Clone(base)
	data[77] = 0
	if base[77] == 0 {
		t.Fatal("test setup: base[77] must be nonzero")
	}
	checkAgainstRef(t, data, base, home, "dirty-byte-to-zero")
}

// TestDiffPageQuick is the property test: random page/twin pairs with
// random dirty geometry (sparse flips, dense runs, word-aligned and
// straddling runs) must produce byte-identical merged homes and identical
// diff counts to the reference.
func TestDiffPageQuick(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		twin := make([]byte, PageSize)
		r.Read(twin)
		data := bytes.Clone(twin)
		home := make([]byte, PageSize)
		r.Read(home)

		// Scatter dirty geometry: point flips plus runs of random length
		// and alignment (frequently straddling 8-byte boundaries).
		for n := r.Intn(30); n > 0; n-- {
			data[r.Intn(PageSize)] ^= byte(1 + r.Intn(255))
		}
		for n := r.Intn(8); n > 0; n-- {
			start := r.Intn(PageSize)
			length := 1 + r.Intn(64)
			for i := start; i < start+length && i < PageSize; i++ {
				data[i] ^= byte(1 + r.Intn(255))
			}
		}
		if r.Intn(4) == 0 { // occasionally a huge dense run
			start := r.Intn(PageSize / 2)
			length := r.Intn(PageSize - start)
			r.Read(data[start : start+length])
		}

		wantHome, wantN := refDiff(data, twin, home)
		gotHome, gotN := kernelDiff(data, twin, home)
		return gotN == wantN && bytes.Equal(gotHome, wantHome)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestPageBufPool checks the pool contract: GetPageBuf hands out zeroed
// PageSize buffers even after a dirty one was returned, while GetPageBufRaw
// skips the clear (contents are arbitrary, length still PageSize).
func TestPageBufPool(t *testing.T) {
	b := GetPageBuf()
	if len(b) != PageSize {
		t.Fatalf("GetPageBuf length %d, want %d", len(b), PageSize)
	}
	for i := range b {
		b[i] = 0xab
	}
	PutPageBuf(b)
	for i := 0; i < 64; i++ { // pooled or fresh, it must arrive zeroed
		g := GetPageBuf()
		for j, v := range g {
			if v != 0 {
				t.Fatalf("iteration %d: pooled buffer byte %d = %#x, want 0", i, j, v)
			}
		}
		g[len(g)-1] = 0xff
		PutPageBuf(g)
	}
	if r := GetPageBufRaw(); len(r) != PageSize {
		t.Fatalf("GetPageBufRaw length %d, want %d", len(r), PageSize)
	} else {
		PutPageBuf(r)
	}
}

// TestTwinLifecycle checks the frame-based twin contract: capture aliases
// the current frame (a reference, not a copy), retire drops it, and a nil
// retire is idempotent.
func TestTwinLifecycle(t *testing.T) {
	sp := NewSpace(1, 1<<16)
	pc := sp.Copy(0, 0)
	pc.Mu.Lock()
	defer pc.Mu.Unlock()
	if _, unshared := pc.EnsureExclusive(sp); unshared {
		t.Fatal("fresh copy reported an unshare")
	}
	pc.Data()[0] = 0x5a
	pc.CaptureTwin()
	if !pc.HasTwin() || !pc.TwinAliasesData() {
		t.Fatal("captured twin does not alias the current frame")
	}
	if got := pc.TwinData()[0]; got != 0x5a {
		t.Fatalf("twin byte %#x, want 0x5a", got)
	}
	if f := pc.Frame(); f.Exclusive() {
		t.Error("frame still exclusive after twin capture")
	}
	if _, unshared := pc.EnsureExclusive(sp); !unshared {
		t.Fatal("write on twinned frame did not unshare")
	}
	pc.Data()[0] = 0x77
	if pc.TwinAliasesData() {
		t.Error("twin still aliases after unshare")
	}
	if got := pc.TwinData()[0]; got != 0x5a {
		t.Errorf("twin lost the pristine image: %#x", got)
	}
	pc.RetireTwin(sp)
	if pc.HasTwin() {
		t.Error("RetireTwin left the twin set")
	}
	pc.RetireTwin(sp) // idempotent on nil
}
