package memsys

import (
	"hash/maphash"
	"sync"
	"sync/atomic"
)

// This file is the copy-on-write frame store.  A Frame is a refcounted 4 KB
// page image: a fetched page, its twin, the home's primary copy and other
// nodes' clean replicas all alias one frame until the first local write,
// which unshares just that copy (copy into a pooled frame, swap the copy's
// pointer, drop the ref).  A frame with more than one reference is immutable;
// a frame with exactly one reference is private and may be written in place.
//
// Invariance contract: frames change which host array a page's bytes live
// in, never the bytes a simulated access observes or the virtual time it is
// charged.  Twin capture still charges the paper's page-copy cost, fetches
// still charge the wire, and DiffPage still sees byte-exact data/twin pairs
// — every table and figure must be bit-identical with eager copies.
//
// Pool-reuse safety: a frame's array may return to the page pool only when
// no reader can still hold a pointer to it.  Readers hold their node's flush
// lock shared across the byte access, and every release that can free a
// same-node-only frame runs under that node's flush lock held exclusively
// (invalidation, twin retirement) — except unshare, which by construction
// releases a frame with at least one reference remaining.  A frame that was
// ever visible to another node (fetch adoption, interning, migration) sets
// crossNode and is dropped to the garbage collector instead of the pool:
// the GC keeps stale readers safe, and the space's end-of-run Release — when
// the simulation is quiescent — recovers those frames for reuse.
type Frame struct {
	data *[PageSize]byte
	refs atomic.Int32

	// crossNode marks a frame that escaped its creating node: another
	// node's copy, a twin of a migrated page, or the intern table may still
	// be read concurrently with the final release, so the array must not be
	// recycled mid-run (see pool-reuse safety above).
	crossNode atomic.Bool

	// interned marks a frame registered in a Space's dedup table, which
	// holds one reference; the release that leaves only the table's
	// reference evicts and frees it.
	interned atomic.Bool

	// hash is the content hash under which the frame was interned.
	hash uint64

	// zero marks the canonical all-zero frame: permanently shared, never
	// refcounted, never freed.
	zero bool
}

// Data returns the frame's byte image.
func (f *Frame) Data() []byte { return f.data[:] }

// Refs returns the current reference count (the zero frame reports its
// pinned count).  Test hook.
func (f *Frame) Refs() int32 { return f.refs.Load() }

// Exclusive reports whether the frame may be written in place: exactly one
// reference and not the canonical zero frame (whose count is pinned).
func (f *Frame) Exclusive() bool { return !f.zero && f.refs.Load() == 1 }

// Ref takes one more reference and returns f.  The caller must already hold
// a reference (or the intern table's lock for table lookups), so the count
// cannot concurrently reach zero.
func (f *Frame) Ref() *Frame {
	if f.zero {
		return f
	}
	if n := f.refs.Add(1); n == 2 {
		framesShared.Add(1)
	}
	return f
}

// Release drops one reference.  The release that leaves only the intern
// table's reference evicts the frame from its table; the release of the
// last reference frees the frame (pool or GC per crossNode).  sp is the
// owning space, needed only for table eviction; nil is allowed for frames
// that were never interned.
func (f *Frame) Release(sp *Space) {
	if f.zero {
		return
	}
	n := f.refs.Add(-1)
	switch {
	case n < 0:
		panic("memsys: frame released below zero references")
	case n == 1:
		framesShared.Add(-1)
		if f.interned.Load() && sp != nil {
			sp.evictFrame(f)
		}
	case n == 0:
		f.free()
	}
}

// free retires a frame whose last reference just dropped.
func (f *Frame) free() {
	framesResident.Add(-1)
	if f.crossNode.Load() {
		return // stale cross-node readers may remain; let the GC reclaim it
	}
	framePool.Put(f)
}

// framePool recycles frames together with their arrays.  Pooling the Frame
// struct (which owns its *[PageSize]byte for life) keeps the steady-state
// flush cycle — twin ref, unshare, twin release — allocation-free.
var framePool = sync.Pool{
	New: func() any { return &Frame{data: new([PageSize]byte)} },
}

// Global frame gauges (process-wide, host-side observability only; never
// read by simulation code, so they cannot perturb virtual time).
var (
	framesResident     atomic.Int64 // frames live in some space (excludes pool inventory and the zero frame)
	framesResidentPeak atomic.Int64 // high-water mark of framesResident since the last ResetFramesPeak
	framesShared       atomic.Int64 // frames with two or more references
)

// FramesResident returns the number of live frames across all spaces.
func FramesResident() int64 { return framesResident.Load() }

// FramesShared returns the number of frames currently aliased by more than
// one holder (copy, twin, replica or intern table).
func FramesShared() int64 { return framesShared.Load() }

// FramesResidentPeak returns the high-water mark of FramesResident since
// the last ResetFramesPeak.
func FramesResidentPeak() int64 { return framesResidentPeak.Load() }

// ResetFramesPeak rebases the resident high-water mark to the current
// level; hostperf calls it around each measured benchmark body.
func ResetFramesPeak() { framesResidentPeak.Store(framesResident.Load()) }

// newFrame takes a frame from the pool with one reference.  The array holds
// whatever the previous user left (raw); callers that need zeroes use
// newFrameZeroed.  Pool buffers are no longer cleared on return — the fetch
// and unshare paths overwrite the whole page anyway, so clearing twice was
// pure host cost (the "zero-page fast path audit").
func newFrame() *Frame {
	f := framePool.Get().(*Frame)
	f.refs.Store(1)
	f.crossNode.Store(false)
	f.interned.Store(false)
	f.hash = 0
	if n := framesResident.Add(1); n > framesResidentPeak.Load() {
		// Racy max is fine: the peak is a host-side gauge, and a lost
		// update can only under-report by a transient frame or two.
		framesResidentPeak.Store(n)
	}
	return f
}

// newFrameZeroed is newFrame with the array cleared.
func newFrameZeroed() *Frame {
	f := newFrame()
	clear(f.data[:])
	return f
}

// zeroFrame is the canonical all-zero page: every never-written valid copy
// aliases it without allocating, and the dedup table maps the all-zero
// content hash to it so a page written back to zeroes collapses onto it.
var zeroFrame = func() *Frame {
	f := &Frame{data: new([PageSize]byte), zero: true}
	f.refs.Store(2) // pinned above 1 so Exclusive is never true
	f.crossNode.Store(true)
	return f
}()

// ZeroFrame returns the canonical all-zero frame.  Test hook.
func ZeroFrame() *Frame { return zeroFrame }

// frameHashSeed is the process-wide seed for content hashing.  The hash is
// host-only (dedup candidates are confirmed by a full byte compare, and
// dedup never changes simulated bytes or charges), so a random per-process
// seed cannot perturb any virtual-time result.
var frameHashSeed = maphash.MakeSeed()

// hashPage returns the content hash of a page image.
func hashPage(b []byte) uint64 {
	return maphash.Bytes(frameHashSeed, b[:PageSize])
}

// interner is a Space's content-hash dedup table: hash → canonical frame.
// The table holds one reference per entry; entries are evicted when only
// that reference remains.  A frame in the table has at least two references
// and is therefore immutable, so aliasing it is always safe.
type interner struct {
	mu    sync.Mutex
	table map[uint64]*Frame
}

// evictFrame removes f from the space's dedup table if it is still there
// with only the table's reference, dropping that reference (which frees
// the frame).  Called from Release on the 2→1 transition.
func (s *Space) evictFrame(f *Frame) {
	in := &s.intern
	in.mu.Lock()
	if !f.interned.Load() || f.refs.Load() != 1 || in.table[f.hash] != f {
		in.mu.Unlock() // re-acquired through the table, or already evicted
		return
	}
	delete(in.table, f.hash)
	f.interned.Store(false)
	in.mu.Unlock()
	f.Release(s)
}

// DedupFrame interns pc's current frame in the space's content-hash table:
// if an identical-content frame is already canonical, pc's frame is swapped
// for it (a dedup hit); otherwise pc's frame becomes the canonical entry.
// The caller must own pc (hold its Mu) and guarantee no in-flight writer on
// the frame (the fetch path holds the home's flush lock exclusively).
// Returns whether an existing frame was reused.
func (s *Space) DedupFrame(pc *PageCopy) bool {
	f := pc.frame.Load()
	if f == nil || f.zero {
		return false
	}
	if f.interned.Load() {
		return false // already canonical for its content
	}
	h := hashPage(f.data[:])
	in := &s.intern
	in.mu.Lock()
	if g, ok := in.table[h]; ok {
		// Weak hash: confirm the match byte-for-byte before aliasing.
		if g != f && *g.data == *f.data {
			g.Ref()
			in.mu.Unlock()
			pc.frame.Store(g)
			f.Release(s)
			return true
		}
		in.mu.Unlock()
		return false // collision (or self): leave both frames alone
	}
	f.hash = h
	f.interned.Store(true)
	f.crossNode.Store(true) // the table may hand it to any node
	f.Ref()                 // the table's reference
	in.table[h] = f
	in.mu.Unlock()
	return false
}
