// Package memsys implements the shared virtual address space: 4 KB pages,
// per-node page copies with twins for diffing, the home directory, and a
// first-toucher record used to quantify page misplacement (paper Figure 6).
//
// There is no mmap/SIGSEGV here: a "page fault" is a state check on the
// access path (see Accessor in access.go).  That is the substitution this
// reproduction makes for VM hardware — the state machine is identical, and
// the fault-handling cost is charged in virtual time.
package memsys

import (
	"fmt"
	"sync"
	"sync/atomic"
	"unsafe"
)

// Page geometry.
const (
	PageShift = 12
	PageSize  = 1 << PageShift // 4 KB, as in the paper's testbed
	PageMask  = PageSize - 1
)

// Addr is a global shared virtual address.
type Addr uint64

// PageID indexes a page within the shared arena.
type PageID uint64

// SpaceBase is where the global shared arena starts in the (simulated)
// process virtual address space.
const SpaceBase Addr = 0x4000_0000

// NoHome marks a page whose primary copy has not been placed yet.
const NoHome = int32(-1)

// PageCopy is one node's copy of one shared page.  The zero state is
// Invalid with no storage; storage is allocated on first validation.
//
// The backing array is held behind an atomic pointer to a fixed-size array
// (no slice header, so installing or clearing it never allocates).  Byte
// access is synchronized through the owning node's flush lock: loads and
// stores hold it shared, while invalidation — the only path that retires an
// array back to the page pool — holds it exclusively, so a retired array
// can never still be observed by a racing reader.
type PageCopy struct {
	// Mu serializes state transitions and diff application on this copy.
	Mu sync.Mutex
	// Twin is a pristine copy taken at the first write of the current
	// interval on a non-home node; diffs are computed against it at flush.
	// Guarded by Mu.
	Twin []byte

	data    atomic.Pointer[[PageSize]byte]
	valid   atomic.Bool
	written atomic.Bool
}

// Data returns the current backing array (nil before first validation).
func (p *PageCopy) Data() []byte {
	if b := p.data.Load(); b != nil {
		return b[:]
	}
	return nil
}

// RetireData returns the backing array to the page pool and clears the
// field.  Caller must hold Mu and exclude all readers of the array (the
// acquire path holds the node's flush lock exclusively).
func (p *PageCopy) RetireData() {
	if b := p.data.Load(); b != nil {
		p.data.Store(nil)
		putPageArr(b)
	}
}

// Written reports whether the page is dirty in the current interval.
func (p *PageCopy) Written() bool { return p.written.Load() }

// SetWritten marks or clears the dirty flag.
func (p *PageCopy) SetWritten(v bool) { p.written.Store(v) }

// Valid reports whether this copy may be read without a fault.
func (p *PageCopy) Valid() bool { return p.valid.Load() }

// SetValid marks the copy readable.
func (p *PageCopy) SetValid(v bool) { p.valid.Store(v) }

// EnsureData allocates the page storage (from the page pool) if needed and
// returns it.  Caller must hold Mu or otherwise own the copy.
func (p *PageCopy) EnsureData() []byte {
	if b := p.data.Load(); b != nil {
		return b[:]
	}
	b := getPageArr()
	p.data.Store(b)
	return b[:]
}

// Space is the cluster-wide shared address space.
type Space struct {
	nodes    int
	size     int64
	numPages int

	// pages[node][pid>>pageChunkShift] groups node's page-copy slots into
	// chunks created on demand.  Two levels keep a fresh space cheap: a
	// flat nodes×numPages slot array for a 256 MB arena is megabytes of
	// zeroed, GC-scanned pointers per simulation, which dominated the
	// experiment harness's wall-clock cost before chunking.
	pages [][]atomic.Pointer[pageChunk]

	// flush[node] is the node's writer/flusher lock: shared-memory loads and
	// stores hold it shared, interval flushes and acquire-side invalidations
	// hold it exclusively, so a flush observes a stable page image (avoids
	// lost updates between same-node threads) and an invalidation can retire
	// page arrays with no reader left holding them.  Owned by the space so
	// its lifetime matches the pages it guards (it used to live in a
	// process-global registry keyed by *Space, which retained every space
	// ever created).  Each lock is padded to its own cache line: every
	// simulated access of a node touches its lock word, and neighboring
	// nodes' locks sharing a line would ping-pong across host cores.
	flush []flushLock

	// home[pid] is the node holding the primary copy, stored biased by +1
	// so the zero value means NoHome and a fresh space needs no init sweep.
	home []atomic.Int32
	// toucher[pid] is the node that first accessed the page, recorded at
	// 4 KB granularity (same bias); this is the reference placement against
	// which CableS's map-unit-granularity homes are compared (Figure 6).
	toucher []atomic.Int32

	allocMu sync.Mutex
	next    Addr
	segs    []Segment
}

// flushLock pads a per-node RWMutex out to a full cache line.
type flushLock struct {
	sync.RWMutex
	_ [(cacheLine - unsafe.Sizeof(sync.RWMutex{})%cacheLine) % cacheLine]byte
}

// pageChunk is one on-demand block of page-copy slots (2 MB of arena).
type pageChunk [pageChunkSize]atomic.Pointer[PageCopy]

const (
	pageChunkShift = 9
	pageChunkSize  = 1 << pageChunkShift
)

// cacheLine is the assumed false-sharing granularity of the host.
const cacheLine = 64

// Segment records one allocation in the shared arena.
type Segment struct {
	Label string
	Start Addr
	Size  int64
}

// NewSpace creates a shared arena of size bytes for a cluster of nodes.
func NewSpace(nodes int, size int64) *Space {
	if nodes <= 0 || size <= 0 {
		panic(fmt.Sprintf("memsys: bad space geometry nodes=%d size=%d", nodes, size))
	}
	np := int((size + PageSize - 1) / PageSize)
	nc := (np + pageChunkSize - 1) >> pageChunkShift
	s := &Space{
		nodes:    nodes,
		size:     int64(np) * PageSize,
		numPages: np,
		pages:    make([][]atomic.Pointer[pageChunk], nodes),
		flush:    make([]flushLock, nodes),
		home:     make([]atomic.Int32, np),
		toucher:  make([]atomic.Int32, np),
		next:     SpaceBase,
	}
	for n := range s.pages {
		s.pages[n] = make([]atomic.Pointer[pageChunk], nc)
	}
	return s
}

// Nodes returns the node count the space was built for.
func (s *Space) Nodes() int { return s.nodes }

// Size returns the arena size in bytes.
func (s *Space) Size() int64 { return s.size }

// NumPages returns the number of pages in the arena.
func (s *Space) NumPages() int { return s.numPages }

// Base returns the arena's starting virtual address.
func (s *Space) Base() Addr { return SpaceBase }

// Contains reports whether [a, a+n) lies within the arena.
func (s *Space) Contains(a Addr, n int) bool {
	return a >= SpaceBase && int64(a-SpaceBase)+int64(n) <= s.size
}

// PageOf maps an address to its page.
func (s *Space) PageOf(a Addr) PageID {
	if !s.Contains(a, 1) {
		panic(fmt.Sprintf("memsys: address %#x outside shared arena", uint64(a)))
	}
	return PageID((a - SpaceBase) >> PageShift)
}

// PageAddr returns the first address of page pid.
func (s *Space) PageAddr(pid PageID) Addr { return SpaceBase + Addr(pid)<<PageShift }

// Copy returns node's copy of page pid, creating the descriptor (and its
// chunk) on demand.
func (s *Space) Copy(node int, pid PageID) *PageCopy {
	cslot := &s.pages[node][pid>>pageChunkShift]
	ch := cslot.Load()
	if ch == nil {
		fresh := new(pageChunk)
		if cslot.CompareAndSwap(nil, fresh) {
			ch = fresh
		} else {
			ch = cslot.Load()
		}
	}
	slot := &ch[pid&(pageChunkSize-1)]
	if pc := slot.Load(); pc != nil {
		return pc
	}
	pc := &PageCopy{}
	if slot.CompareAndSwap(nil, pc) {
		return pc
	}
	return slot.Load()
}

// Home returns the page's home node, or NoHome as an int (-1).
func (s *Space) Home(pid PageID) int { return int(s.home[pid].Load()) - 1 }

// SetHome forcibly places the primary copy of pid on node (static placement
// in the base system; migration in CableS).
func (s *Space) SetHome(pid PageID, node int) { s.home[pid].Store(int32(node) + 1) }

// TryFirstTouch sets node as home if the page is unplaced, returning the
// page's home after the operation and whether this call placed it.
func (s *Space) TryFirstTouch(pid PageID, node int) (home int, placed bool) {
	if s.home[pid].CompareAndSwap(0, int32(node)+1) {
		return node, true
	}
	return int(s.home[pid].Load()) - 1, false
}

// RecordToucher records node as the page's 4 KB-granularity first toucher.
func (s *Space) RecordToucher(pid PageID, node int) {
	s.toucher[pid].CompareAndSwap(0, int32(node)+1)
}

// Toucher returns the 4 KB-granularity first toucher, or -1.
func (s *Space) Toucher(pid PageID) int { return int(s.toucher[pid].Load()) - 1 }

// AllocSegment carves size bytes out of the arena, aligned to align (which
// must be a power of two; 0 means 64).  It returns the segment start.
func (s *Space) AllocSegment(label string, size int64, align int64) (Addr, error) {
	if size <= 0 {
		return 0, fmt.Errorf("memsys: allocation of %d bytes", size)
	}
	if align == 0 {
		align = 64
	}
	if align&(align-1) != 0 {
		return 0, fmt.Errorf("memsys: alignment %d not a power of two", align)
	}
	s.allocMu.Lock()
	defer s.allocMu.Unlock()
	start := Addr((int64(s.next) + align - 1) &^ (align - 1))
	if int64(start-SpaceBase)+size > s.size {
		return 0, fmt.Errorf("memsys: shared arena exhausted (%d bytes requested, %d free)",
			size, s.size-int64(s.next-SpaceBase))
	}
	s.next = start + Addr(size)
	s.segs = append(s.segs, Segment{Label: label, Start: start, Size: size})
	return start, nil
}

// Segments returns a snapshot of all allocations made so far.
func (s *Space) Segments() []Segment {
	s.allocMu.Lock()
	defer s.allocMu.Unlock()
	out := make([]Segment, len(s.segs))
	copy(out, s.segs)
	return out
}

// Used returns the number of arena bytes allocated so far.
func (s *Space) Used() int64 {
	s.allocMu.Lock()
	defer s.allocMu.Unlock()
	return int64(s.next - SpaceBase)
}

// MisplacedPages compares each touched page's home against its 4 KB
// first-toucher reference and returns (misplaced, total touched).  This is
// the Figure 6 metric: a page is misplaced when map-unit-granularity home
// binding gave it a different home than per-page first touch would have.
func (s *Space) MisplacedPages() (misplaced, total int) {
	for pid := 0; pid < s.numPages; pid++ {
		ref := s.toucher[pid].Load()
		if ref == 0 {
			continue
		}
		total++
		if s.home[pid].Load() != ref {
			misplaced++
		}
	}
	return misplaced, total
}
