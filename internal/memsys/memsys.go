// Package memsys implements the shared virtual address space: 4 KB pages,
// per-node page copies with twins for diffing, the home directory, and a
// first-toucher record used to quantify page misplacement (paper Figure 6).
//
// There is no mmap/SIGSEGV here: a "page fault" is a state check on the
// access path (see Accessor in access.go).  That is the substitution this
// reproduction makes for VM hardware — the state machine is identical, and
// the fault-handling cost is charged in virtual time.
package memsys

import (
	"fmt"
	"sync"
	"sync/atomic"
	"unsafe"
)

// Page geometry.
const (
	PageShift = 12
	PageSize  = 1 << PageShift // 4 KB, as in the paper's testbed
	PageMask  = PageSize - 1
)

// Addr is a global shared virtual address.
type Addr uint64

// PageID indexes a page within the shared arena.
type PageID uint64

// SpaceBase is where the global shared arena starts in the (simulated)
// process virtual address space.
const SpaceBase Addr = 0x4000_0000

// NoHome marks a page whose primary copy has not been placed yet.
const NoHome = int32(-1)

// PageCopy is one node's copy of one shared page.  The zero state is
// Invalid with no storage; storage is bound on first validation.
//
// Storage is a refcounted copy-on-write frame (see frame.go) held behind an
// atomic pointer: a fetched page, its twin and other nodes' replicas alias
// one frame, and the first local write unshares it.  Byte access is
// synchronized through the owning node's flush lock: loads and stores hold
// it shared, while invalidation — the path that releases a copy's frame —
// holds it exclusively, so a recycled frame can never still be observed by
// a racing reader (crossNode frames additionally bypass the pool; see
// frame.go).
type PageCopy struct {
	// Mu serializes state transitions and diff application on this copy.
	Mu sync.Mutex

	// twin is the pristine image captured at the first write of the
	// current interval on a non-home node; diffs are computed against it
	// at flush.  It is a reference on the pre-write frame, not a copy.
	// Guarded by Mu.
	twin *Frame

	frame   atomic.Pointer[Frame]
	valid   atomic.Bool
	written atomic.Bool
}

// Data returns the current byte image (nil before first validation).
func (p *PageCopy) Data() []byte {
	if f := p.frame.Load(); f != nil {
		return f.data[:]
	}
	return nil
}

// Frame returns the current frame (nil before first validation).  Test hook.
func (p *PageCopy) Frame() *Frame { return p.frame.Load() }

// RetireData releases the copy's frame and clears the pointer.  Caller must
// hold Mu and exclude all readers of the copy (the acquire path holds the
// node's flush lock exclusively).
func (p *PageCopy) RetireData(sp *Space) {
	if f := p.frame.Load(); f != nil {
		p.frame.Store(nil)
		f.Release(sp)
	}
}

// Written reports whether the page is dirty in the current interval.
func (p *PageCopy) Written() bool { return p.written.Load() }

// SetWritten marks or clears the dirty flag.
func (p *PageCopy) SetWritten(v bool) { p.written.Store(v) }

// Valid reports whether this copy may be read without a fault.
func (p *PageCopy) Valid() bool { return p.valid.Load() }

// SetValid marks the copy readable.
func (p *PageCopy) SetValid(v bool) { p.valid.Store(v) }

// EnsureFrame binds storage to the copy if it has none and returns the byte
// image.  A fresh copy aliases the canonical zero frame — the same all-zero
// content a fresh allocation had, without allocating.  The result is
// read-only; writers go through EnsureExclusive or the accessor's
// unshare-on-write path.  Caller must hold Mu or otherwise own the copy.
func (p *PageCopy) EnsureFrame() []byte {
	if f := p.frame.Load(); f != nil {
		return f.data[:]
	}
	p.frame.Store(zeroFrame)
	return zeroFrame.data[:]
}

// EnsureExclusive makes the copy's frame privately owned and returns its
// writable byte image, unsharing (or allocating) if needed.  Returns
// whether a shared frame had to be copied — the caller charges nothing
// (unshare is host work; the paper's system wrote in place), but counts it.
// Caller must hold Mu.
func (p *PageCopy) EnsureExclusive(sp *Space) (data []byte, unshared bool) {
	f := p.frame.Load()
	switch {
	case f == nil:
		nf := newFrameZeroed()
		p.frame.Store(nf)
		return nf.data[:], false
	case f.Exclusive():
		return f.data[:], false
	case f.zero:
		nf := newFrameZeroed()
		p.frame.Store(nf)
		return nf.data[:], true
	default:
		nf := newFrame()
		copy(nf.data[:], f.data[:])
		p.frame.Store(nf)
		f.Release(sp) // at least the releaser's alias remains (refs were ≥2)
		return nf.data[:], true
	}
}

// CaptureTwin records the copy's current image as the interval twin — a
// reference on the current frame, not a page copy.  The frame becomes
// shared, so the next write unshares it and the twin keeps the pristine
// image.  Caller must hold Mu; the copy must be valid with no twin.
func (p *PageCopy) CaptureTwin() {
	p.twin = p.frame.Load().Ref()
}

// TwinData returns the twin's byte image, or nil if no twin is captured.
// Caller must hold Mu.
func (p *PageCopy) TwinData() []byte {
	if p.twin == nil {
		return nil
	}
	return p.twin.data[:]
}

// HasTwin reports whether an interval twin is captured.  Caller must hold Mu.
func (p *PageCopy) HasTwin() bool { return p.twin != nil }

// TwinAliasesData reports whether the twin still aliases the copy's current
// frame — i.e. no write landed since capture, so the page is byte-identical
// to its twin and a diff would be empty.  Caller must hold Mu.
func (p *PageCopy) TwinAliasesData() bool {
	return p.twin != nil && p.twin == p.frame.Load()
}

// RetireTwin releases the twin reference (if any).  The caller must hold Mu
// and must not retain the twin.
func (p *PageCopy) RetireTwin(sp *Space) {
	if p.twin != nil {
		p.twin.Release(sp)
		p.twin = nil
	}
}

// AdoptFrame points this copy at src's current frame (the fetch path: the
// fetched replica aliases the home's frame instead of copying it).  The
// frame escapes its home node, so it is marked crossNode and will not be
// recycled mid-run.  Caller must hold both copies' Mu (fetch also holds the
// home's flush lock exclusively, so no home store is mid-flight).
func (p *PageCopy) AdoptFrame(sp *Space, src *PageCopy) {
	f := src.frame.Load()
	if f == nil {
		return
	}
	f.crossNode.Store(true)
	f.Ref()
	if old := p.frame.Load(); old != nil {
		p.frame.Store(nil)
		old.Release(sp)
	}
	p.frame.Store(f)
}

// Space is the cluster-wide shared address space.
type Space struct {
	nodes    int
	size     int64
	numPages int

	// pages[node][pid>>pageChunkShift] groups node's page-copy slots into
	// chunks created on demand.  Two levels keep a fresh space cheap: a
	// flat nodes×numPages slot array for a 256 MB arena is megabytes of
	// zeroed, GC-scanned pointers per simulation, which dominated the
	// experiment harness's wall-clock cost before chunking.
	pages [][]atomic.Pointer[pageChunk]

	// flush[node] is the node's writer/flusher lock: shared-memory loads and
	// stores hold it shared, interval flushes and acquire-side invalidations
	// hold it exclusively, so a flush observes a stable page image (avoids
	// lost updates between same-node threads) and an invalidation can retire
	// page frames with no reader left holding them.  Owned by the space so
	// its lifetime matches the pages it guards (it used to live in a
	// process-global registry keyed by *Space, which retained every space
	// ever created).  Each lock is padded to its own cache line: every
	// simulated access of a node touches its lock word, and neighboring
	// nodes' locks sharing a line would ping-pong across host cores.
	flush []flushLock

	// meta[pid>>pageChunkShift] holds the page's home and first-toucher
	// records in on-demand chunks (same chunking as page copies): home is
	// the node holding the primary copy, toucher the node that first
	// accessed the page at 4 KB granularity — the reference placement
	// against which CableS's map-unit-granularity homes are compared
	// (Figure 6).  Both are stored biased by +1 so the zero value means
	// "unset".  Chunking replaces two flat []atomic.Int32 arrays that cost
	// half a megabyte of zeroed memory per 256 MB space — visible per-op
	// garbage once frames went copy-on-write.
	meta []atomic.Pointer[metaChunk]

	// intern is the content-hash dedup table (see frame.go), seeded with
	// the canonical zero frame.
	intern interner

	// unshares counts copy-on-write unshares performed by the accessor's
	// write path, reported per node; bound by the protocol (BindUnshares)
	// because memsys itself has no stats sink.
	unshares func(node int)

	allocMu sync.Mutex
	next    Addr
	segs    []Segment
}

// flushLock pads a per-node RWMutex out to a full cache line.
type flushLock struct {
	sync.RWMutex
	_ [(cacheLine - unsafe.Sizeof(sync.RWMutex{})%cacheLine) % cacheLine]byte
}

// pageChunk is one on-demand block of page-copy slots (2 MB of arena).
type pageChunk [pageChunkSize]atomic.Pointer[PageCopy]

// metaChunk is one on-demand block of per-page home/toucher records.
type metaChunk [pageChunkSize]struct{ home, toucher atomic.Int32 }

const (
	pageChunkShift = 9
	pageChunkSize  = 1 << pageChunkShift
)

// cacheLine is the assumed false-sharing granularity of the host.
const cacheLine = 64

// Segment records one allocation in the shared arena.
type Segment struct {
	Label string
	Start Addr
	Size  int64
}

// NewSpace creates a shared arena of size bytes for a cluster of nodes.
func NewSpace(nodes int, size int64) *Space {
	if nodes <= 0 || size <= 0 {
		panic(fmt.Sprintf("memsys: bad space geometry nodes=%d size=%d", nodes, size))
	}
	np := int((size + PageSize - 1) / PageSize)
	nc := (np + pageChunkSize - 1) >> pageChunkShift
	s := &Space{
		nodes:    nodes,
		size:     int64(np) * PageSize,
		numPages: np,
		pages:    make([][]atomic.Pointer[pageChunk], nodes),
		flush:    make([]flushLock, nodes),
		meta:     make([]atomic.Pointer[metaChunk], nc),
		next:     SpaceBase,
	}
	for n := range s.pages {
		s.pages[n] = make([]atomic.Pointer[pageChunk], nc)
	}
	s.intern.table = map[uint64]*Frame{hashPage(zeroFrame.data[:]): zeroFrame}
	return s
}

// BindUnshares sets the sink for per-node unshare counts (the protocol's
// stats counters).  Must be set before threads run; nil disables counting.
func (s *Space) BindUnshares(fn func(node int)) { s.unshares = fn }

// Nodes returns the node count the space was built for.
func (s *Space) Nodes() int { return s.nodes }

// Size returns the arena size in bytes.
func (s *Space) Size() int64 { return s.size }

// NumPages returns the number of pages in the arena.
func (s *Space) NumPages() int { return s.numPages }

// Base returns the arena's starting virtual address.
func (s *Space) Base() Addr { return SpaceBase }

// Contains reports whether [a, a+n) lies within the arena.
func (s *Space) Contains(a Addr, n int) bool {
	return a >= SpaceBase && int64(a-SpaceBase)+int64(n) <= s.size
}

// PageOf maps an address to its page.
func (s *Space) PageOf(a Addr) PageID {
	if !s.Contains(a, 1) {
		panic(fmt.Sprintf("memsys: address %#x outside shared arena", uint64(a)))
	}
	return PageID((a - SpaceBase) >> PageShift)
}

// PageAddr returns the first address of page pid.
func (s *Space) PageAddr(pid PageID) Addr { return SpaceBase + Addr(pid)<<PageShift }

// Copy returns node's copy of page pid, creating the descriptor (and its
// chunk) on demand.
func (s *Space) Copy(node int, pid PageID) *PageCopy {
	cslot := &s.pages[node][pid>>pageChunkShift]
	ch := cslot.Load()
	if ch == nil {
		fresh := new(pageChunk)
		if cslot.CompareAndSwap(nil, fresh) {
			ch = fresh
		} else {
			ch = cslot.Load()
		}
	}
	slot := &ch[pid&(pageChunkSize-1)]
	if pc := slot.Load(); pc != nil {
		return pc
	}
	pc := &PageCopy{}
	if slot.CompareAndSwap(nil, pc) {
		return pc
	}
	return slot.Load()
}

// metaAt returns pid's home/toucher record, or nil if its chunk was never
// created (every record in it is unset).
func (s *Space) metaAt(pid PageID) *struct{ home, toucher atomic.Int32 } {
	ch := s.meta[pid>>pageChunkShift].Load()
	if ch == nil {
		return nil
	}
	return &ch[pid&(pageChunkSize-1)]
}

// metaEnsure returns pid's home/toucher record, creating its chunk on demand.
func (s *Space) metaEnsure(pid PageID) *struct{ home, toucher atomic.Int32 } {
	cslot := &s.meta[pid>>pageChunkShift]
	ch := cslot.Load()
	if ch == nil {
		fresh := new(metaChunk)
		if cslot.CompareAndSwap(nil, fresh) {
			ch = fresh
		} else {
			ch = cslot.Load()
		}
	}
	return &ch[pid&(pageChunkSize-1)]
}

// Home returns the page's home node, or NoHome as an int (-1).
func (s *Space) Home(pid PageID) int {
	if m := s.metaAt(pid); m != nil {
		return int(m.home.Load()) - 1
	}
	return -1
}

// SetHome forcibly places the primary copy of pid on node (static placement
// in the base system; migration in CableS).
func (s *Space) SetHome(pid PageID, node int) {
	s.metaEnsure(pid).home.Store(int32(node) + 1)
}

// TryFirstTouch sets node as home if the page is unplaced, returning the
// page's home after the operation and whether this call placed it.
func (s *Space) TryFirstTouch(pid PageID, node int) (home int, placed bool) {
	m := s.metaEnsure(pid)
	if m.home.CompareAndSwap(0, int32(node)+1) {
		return node, true
	}
	return int(m.home.Load()) - 1, false
}

// RecordToucher records node as the page's 4 KB-granularity first toucher.
func (s *Space) RecordToucher(pid PageID, node int) {
	s.metaEnsure(pid).toucher.CompareAndSwap(0, int32(node)+1)
}

// Toucher returns the 4 KB-granularity first toucher, or -1.
func (s *Space) Toucher(pid PageID) int {
	if m := s.metaAt(pid); m != nil {
		return int(m.toucher.Load()) - 1
	}
	return -1
}

// AllocSegment carves size bytes out of the arena, aligned to align (which
// must be a power of two; 0 means 64).  It returns the segment start.
func (s *Space) AllocSegment(label string, size int64, align int64) (Addr, error) {
	if size <= 0 {
		return 0, fmt.Errorf("memsys: allocation of %d bytes", size)
	}
	if align == 0 {
		align = 64
	}
	if align&(align-1) != 0 {
		return 0, fmt.Errorf("memsys: alignment %d not a power of two", align)
	}
	s.allocMu.Lock()
	defer s.allocMu.Unlock()
	start := Addr((int64(s.next) + align - 1) &^ (align - 1))
	if int64(start-SpaceBase)+size > s.size {
		return 0, fmt.Errorf("memsys: shared arena exhausted (%d bytes requested, %d free)",
			size, s.size-int64(s.next-SpaceBase))
	}
	s.next = start + Addr(size)
	s.segs = append(s.segs, Segment{Label: label, Start: start, Size: size})
	return start, nil
}

// Segments returns a snapshot of all allocations made so far.
func (s *Space) Segments() []Segment {
	s.allocMu.Lock()
	defer s.allocMu.Unlock()
	out := make([]Segment, len(s.segs))
	copy(out, s.segs)
	return out
}

// Used returns the number of arena bytes allocated so far.
func (s *Space) Used() int64 {
	s.allocMu.Lock()
	defer s.allocMu.Unlock()
	return int64(s.next - SpaceBase)
}

// MisplacedPages compares each touched page's home against its 4 KB
// first-toucher reference and returns (misplaced, total touched).  This is
// the Figure 6 metric: a page is misplaced when map-unit-granularity home
// binding gave it a different home than per-page first touch would have.
func (s *Space) MisplacedPages() (misplaced, total int) {
	for ci := range s.meta {
		ch := s.meta[ci].Load()
		if ch == nil {
			continue
		}
		for i := range ch {
			ref := ch[i].toucher.Load()
			if ref == 0 {
				continue
			}
			total++
			if ch[i].home.Load() != ref {
				misplaced++
			}
		}
	}
	return misplaced, total
}

// Release tears the space down after a run: every copy's frame and twin
// reference is dropped and the dedup table drained, returning frames to the
// page pool for the next run (cross-node frames included — at teardown the
// simulation is quiescent, so no stale reader can exist).  The space must
// not be used afterwards.  Callers skip Release when a run failed: a
// panicked cell can leak blocked worker goroutines that still hold frame
// pointers, and those frames must age out through the GC instead.
func (s *Space) Release() {
	for node := range s.pages {
		s.flush[node].Lock()
		for ci := range s.pages[node] {
			ch := s.pages[node][ci].Load()
			if ch == nil {
				continue
			}
			for i := range ch {
				pc := ch[i].Load()
				if pc == nil {
					continue
				}
				pc.Mu.Lock()
				pc.SetValid(false)
				pc.SetWritten(false)
				if pc.twin != nil {
					releaseQuiesced(pc.twin, s)
					pc.twin = nil
				}
				if f := pc.frame.Load(); f != nil {
					pc.frame.Store(nil)
					releaseQuiesced(f, s)
				}
				pc.Mu.Unlock()
			}
		}
		s.flush[node].Unlock()
	}
	in := &s.intern
	in.mu.Lock()
	drain := make([]*Frame, 0, len(in.table))
	for h, f := range in.table {
		delete(in.table, h)
		if !f.zero {
			f.interned.Store(false)
			drain = append(drain, f)
		}
	}
	in.mu.Unlock()
	for _, f := range drain {
		releaseQuiesced(f, s)
	}
}

// releaseQuiesced drops one reference on a quiescent frame, first clearing
// crossNode so the final release recycles the array into the pool (safe:
// no reader exists at teardown).
func releaseQuiesced(f *Frame, sp *Space) {
	if f.zero {
		return
	}
	f.crossNode.Store(false)
	f.Release(sp)
}
