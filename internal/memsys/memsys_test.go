package memsys

import (
	"sync"
	"testing"
	"testing/quick"

	"cables/internal/sim"
)

func TestSpaceGeometry(t *testing.T) {
	s := NewSpace(4, 1<<20)
	if s.NumPages() != 256 {
		t.Errorf("pages: %d", s.NumPages())
	}
	if s.Base() != SpaceBase {
		t.Errorf("base: %#x", uint64(s.Base()))
	}
	if !s.Contains(SpaceBase, 1<<20) || s.Contains(SpaceBase, 1<<20+1) {
		t.Error("contains wrong")
	}
	if s.PageOf(SpaceBase+PageSize) != 1 {
		t.Error("PageOf wrong")
	}
	if s.PageAddr(3) != SpaceBase+3*PageSize {
		t.Error("PageAddr wrong")
	}
}

func TestPageOfPanicsOutsideArena(t *testing.T) {
	s := NewSpace(1, 1<<16)
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	s.PageOf(SpaceBase - 1)
}

// TestCopyIsPerNodeSingleton: concurrent Copy calls return one descriptor.
func TestCopyIsPerNodeSingleton(t *testing.T) {
	s := NewSpace(2, 1<<16)
	const goroutines = 16
	got := make([]*PageCopy, goroutines)
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			got[i] = s.Copy(0, 3)
		}()
	}
	wg.Wait()
	for i := 1; i < goroutines; i++ {
		if got[i] != got[0] {
			t.Fatal("Copy returned distinct descriptors")
		}
	}
	if s.Copy(1, 3) == got[0] {
		t.Error("copies not per-node")
	}
}

// TestFirstTouchIsExactlyOnce: under concurrency exactly one node places
// the page and everyone agrees on the home afterwards.
func TestFirstTouchIsExactlyOnce(t *testing.T) {
	s := NewSpace(8, 1<<16)
	var wg sync.WaitGroup
	placed := make([]bool, 8)
	for n := 0; n < 8; n++ {
		n := n
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, p := s.TryFirstTouch(5, n)
			placed[n] = p
		}()
	}
	wg.Wait()
	count := 0
	for n, p := range placed {
		if p && s.Home(5) != n {
			t.Errorf("node %d placed but home is %d", n, s.Home(5))
		}
		if p {
			count++
		}
	}
	if count != 1 {
		t.Errorf("placements: %d", count)
	}
}

// TestMisplacedPagesMetric: the Figure 6 metric counts exactly the touched
// pages whose home differs from the 4 KB first toucher.
func TestMisplacedPagesMetric(t *testing.T) {
	s := NewSpace(4, 1<<20)
	for pid := PageID(0); pid < 10; pid++ {
		s.RecordToucher(pid, int(pid%4))
		if pid < 6 {
			s.SetHome(pid, int(pid%4)) // well placed
		} else {
			s.SetHome(pid, (int(pid)+1)%4) // misplaced
		}
	}
	mis, total := s.MisplacedPages()
	if total != 10 || mis != 4 {
		t.Errorf("got %d/%d want 4/10", mis, total)
	}
}

// TestAllocSegmentProperties: allocations never overlap, respect alignment,
// and fail cleanly when the arena is exhausted.
func TestAllocSegmentProperties(t *testing.T) {
	type alloc struct{ start, size int64 }
	f := func(sizes []uint16) bool {
		s := NewSpace(1, 1<<20)
		var allocs []alloc
		for _, raw := range sizes {
			size := int64(raw%2048) + 1
			a, err := s.AllocSegment("x", size, 64)
			if err != nil {
				continue
			}
			if uint64(a)%64 != 0 {
				return false
			}
			na := alloc{int64(a), size}
			for _, o := range allocs {
				if na.start < o.start+o.size && o.start < na.start+na.size {
					return false // overlap
				}
			}
			allocs = append(allocs, na)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestAllocSegmentErrors(t *testing.T) {
	s := NewSpace(1, 1<<16)
	if _, err := s.AllocSegment("zero", 0, 0); err == nil {
		t.Error("zero-size accepted")
	}
	if _, err := s.AllocSegment("align", 8, 3); err == nil {
		t.Error("non-power-of-two alignment accepted")
	}
	if _, err := s.AllocSegment("big", 1<<20, 0); err == nil {
		t.Error("oversized accepted")
	}
	if _, err := s.AllocSegment("ok", 1<<15, 0); err != nil {
		t.Errorf("valid alloc failed: %v", err)
	}
	if used := s.Used(); used < 1<<15 {
		t.Errorf("used: %d", used)
	}
	if segs := s.Segments(); len(segs) != 1 || segs[0].Label != "ok" {
		t.Errorf("segments: %+v", segs)
	}
}

// fakeHandler validates pages immediately (no protocol).
type fakeHandler struct {
	sp          *Space
	readFaults  int
	writeFaults int
}

func (h *fakeHandler) ReadFault(t *sim.Task, pid PageID) {
	pc := h.sp.Copy(t.NodeID, pid)
	pc.Mu.Lock()
	pc.EnsureFrame()
	pc.SetValid(true)
	pc.Mu.Unlock()
	h.readFaults++
}

func (h *fakeHandler) WriteFault(t *sim.Task, pid PageID) {
	h.ReadFault(t, pid)
	pc := h.sp.Copy(t.NodeID, pid)
	pc.Mu.Lock()
	pc.SetWritten(true)
	pc.Mu.Unlock()
	h.writeFaults++
}

func newAcc() (*Accessor, *fakeHandler, *sim.Task) {
	sp := NewSpace(2, 1<<20)
	h := &fakeHandler{sp: sp}
	task := sim.NewTask(1, 0, sim.DefaultCosts())
	return NewAccessor(sp, h), h, task
}

// TestScalarRoundTrips covers every typed accessor.
func TestScalarRoundTrips(t *testing.T) {
	acc, _, task := newAcc()
	a := SpaceBase
	acc.WriteF64(task, a, 3.25)
	if got := acc.ReadF64(task, a); got != 3.25 {
		t.Errorf("f64: %v", got)
	}
	acc.WriteI64(task, a+8, -77)
	if got := acc.ReadI64(task, a+8); got != -77 {
		t.Errorf("i64: %v", got)
	}
	acc.WriteI32(task, a+16, 123456)
	if got := acc.ReadI32(task, a+16); got != 123456 {
		t.Errorf("i32: %v", got)
	}
}

// TestBlockRoundTripAcrossPages: block ops spanning page boundaries agree
// with scalar ops.
func TestBlockRoundTripAcrossPages(t *testing.T) {
	acc, _, task := newAcc()
	const n = 1500 // ~3 pages of float64
	src := make([]float64, n)
	for i := range src {
		src[i] = float64(i) * 1.5
	}
	a := SpaceBase + 512 // start mid-page (8-aligned)
	acc.WriteF64s(task, a, src)
	dst := make([]float64, n)
	acc.ReadF64s(task, a, dst)
	for i := range dst {
		if dst[i] != src[i] {
			t.Fatalf("f64s mismatch at %d", i)
		}
		if got := acc.ReadF64(task, a+Addr(i*8)); got != src[i] {
			t.Fatalf("scalar/block mismatch at %d", i)
		}
	}
	is := make([]int64, 600)
	for i := range is {
		is[i] = int64(-i)
	}
	acc.WriteI64s(task, a, is)
	ds := make([]int64, 600)
	acc.ReadI64s(task, a, ds)
	for i := range ds {
		if ds[i] != is[i] {
			t.Fatalf("i64s mismatch at %d", i)
		}
	}
}

func TestUnalignedAccessPanics(t *testing.T) {
	acc, _, task := newAcc()
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	acc.ReadF64(task, SpaceBase+3)
}

func TestTouchValidatesRange(t *testing.T) {
	acc, h, task := newAcc()
	acc.Touch(task, SpaceBase, 3*PageSize)
	if h.readFaults != 3 {
		t.Errorf("faults: %d", h.readFaults)
	}
	acc.Touch(task, SpaceBase, 3*PageSize) // cached now
	if h.readFaults != 3 {
		t.Errorf("refaulted: %d", h.readFaults)
	}
}

func TestWriteFaultOncePerInterval(t *testing.T) {
	acc, h, task := newAcc()
	for i := 0; i < 10; i++ {
		acc.WriteI64(task, SpaceBase+Addr(i*8), int64(i))
	}
	if h.writeFaults != 1 {
		t.Errorf("write faults: %d", h.writeFaults)
	}
	// Simulate an interval flush clearing the dirty bit.
	pc := acc.Sp.Copy(0, 0)
	acc.FlushBegin(0)
	pc.SetWritten(false)
	acc.FlushEnd(0)
	acc.WriteI64(task, SpaceBase, 9)
	if h.writeFaults != 2 {
		t.Errorf("write faults after flush: %d", h.writeFaults)
	}
}

func TestAccessesChargeTime(t *testing.T) {
	acc, _, task := newAcc()
	before := task.Now()
	acc.WriteF64(task, SpaceBase, 1)
	acc.ReadF64(task, SpaceBase)
	if task.Now() <= before {
		t.Error("accesses charged no time")
	}
}
