package metrics

import (
	"bufio"
	"io"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus renders every family in Prometheus text exposition format
// (version 0.0.4): per family a `# HELP` line, a `# TYPE` line, then one
// sample line per series, families sorted by name and series by label
// values, so two scrapes of an unchanged registry are byte-identical.
// Histograms render cumulative `_bucket` samples (the `le` label, ending in
// `le="+Inf"` whose value equals `_count`), then `_sum` and `_count`.
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	r.mu.RLock()
	names := make([]string, 0, len(r.families))
	for n := range r.families {
		names = append(names, n)
	}
	sort.Strings(names)
	fams := make([]*family, len(names))
	for i, n := range names {
		fams[i] = r.families[n]
	}
	r.mu.RUnlock()

	for _, f := range fams {
		bw.WriteString("# HELP ")
		bw.WriteString(f.name)
		bw.WriteByte(' ')
		bw.WriteString(escapeHelp(f.help))
		bw.WriteString("\n# TYPE ")
		bw.WriteString(f.name)
		bw.WriteByte(' ')
		bw.WriteString(string(f.kind))
		bw.WriteByte('\n')
		f.writeSeries(bw)
	}
	return bw.Flush()
}

// writeSeries renders every series of one family, sorted by label values.
func (f *family) writeSeries(bw *bufio.Writer) {
	f.mu.RLock()
	keys := make([]labelKey, 0, len(f.series))
	for k := range f.series {
		keys = append(keys, k)
	}
	children := make([]any, len(keys))
	sort.Slice(keys, func(i, j int) bool {
		for l := 0; l < len(f.labels); l++ {
			if keys[i][l] != keys[j][l] {
				return keys[i][l] < keys[j][l]
			}
		}
		return false
	})
	for i, k := range keys {
		children[i] = f.series[k]
	}
	f.mu.RUnlock()

	for i, k := range keys {
		labels := f.renderLabels(k, "", "")
		switch c := children[i].(type) {
		case *Counter:
			writeSample(bw, f.name, labels, formatInt(c.Load()))
		case *Gauge:
			writeSample(bw, f.name, labels, formatInt(c.Load()))
		case *Histogram:
			// Cumulative buckets: each le value includes all smaller ones.
			cum := int64(0)
			for bi, ub := range c.upper {
				cum += c.counts[bi].Load()
				writeSample(bw, f.name+"_bucket",
					f.renderLabels(k, "le", formatFloat(ub)), formatInt(cum))
			}
			// The +Inf bucket is by definition the total count.  Load the
			// overflow bucket first so a concurrent Observe can make the
			// rendered +Inf only >= the buckets below it, never smaller.
			cum += c.counts[len(c.upper)].Load()
			writeSample(bw, f.name+"_bucket", f.renderLabels(k, "le", "+Inf"), formatInt(cum))
			writeSample(bw, f.name+"_sum", labels, formatFloat(c.Sum()))
			writeSample(bw, f.name+"_count", labels, formatInt(cum))
		}
	}
}

// renderLabels renders one series' label set as `{k="v",...}` (empty string
// for an unlabeled series), optionally appending one extra pair — the
// histogram `le` label.
func (f *family) renderLabels(k labelKey, extraName, extraVal string) string {
	if len(f.labels) == 0 && extraName == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, name := range f.labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(name)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(k[i]))
		b.WriteByte('"')
	}
	if extraName != "" {
		if len(f.labels) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extraName)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(extraVal))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func writeSample(bw *bufio.Writer, name, labels, value string) {
	bw.WriteString(name)
	bw.WriteString(labels)
	bw.WriteByte(' ')
	bw.WriteString(value)
	bw.WriteByte('\n')
}

// escapeLabel escapes a label value per the exposition format: backslash,
// double quote, and newline.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, c := range v {
		switch c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(c)
		}
	}
	return b.String()
}

// escapeHelp escapes a help string: backslash and newline (quotes are legal
// in HELP text).
func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

func formatInt(v int64) string { return strconv.FormatInt(v, 10) }

// formatFloat renders a float the way Prometheus clients expect: shortest
// round-trip representation.
func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
