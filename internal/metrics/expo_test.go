package metrics

import (
	"fmt"
	"math"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// validateExposition is a strict line-oriented validator of the Prometheus
// text format, independent of the package's own parser: every family must
// open with a `# HELP` then a `# TYPE` line, every sample must belong to the
// most recent family, label values must stay correctly quoted/escaped, and
// each histogram series must have cumulative buckets ending in a `+Inf`
// bucket equal to its `_count`.  It returns the per-family sample counts so
// callers can assert coverage.
func validateExposition(t *testing.T, text string) map[string]int {
	t.Helper()
	var (
		sampleRe = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{([^{}]*)\})? (-?[0-9.e+-]+|[+-]Inf|NaN)$`)
		labelRe  = regexp.MustCompile(`^([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\\\|\\"|\\n)*)"$`)
	)
	type histSeries struct {
		lastCum  float64
		infCum   float64
		haveInf  bool
		count    float64
		haveCnt  bool
		haveSum  bool
		lastName string
	}

	counts := map[string]int{}
	helped := map[string]bool{}
	typed := map[string]Kind{}
	curFamily := ""
	hists := map[string]*histSeries{} // series key -> running state

	for n, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		lineNo := n + 1
		switch {
		case strings.HasPrefix(line, "# HELP "):
			rest := strings.SplitN(strings.TrimPrefix(line, "# HELP "), " ", 2)
			name := rest[0]
			if helped[name] {
				t.Errorf("line %d: duplicate HELP for %s", lineNo, name)
			}
			helped[name] = true
		case strings.HasPrefix(line, "# TYPE "):
			rest := strings.Fields(strings.TrimPrefix(line, "# TYPE "))
			if len(rest) != 2 {
				t.Fatalf("line %d: malformed TYPE line %q", lineNo, line)
			}
			name, kind := rest[0], Kind(rest[1])
			if !helped[name] {
				t.Errorf("line %d: TYPE for %s before its HELP", lineNo, name)
			}
			if _, dup := typed[name]; dup {
				t.Errorf("line %d: duplicate TYPE for %s", lineNo, name)
			}
			if kind != KindCounter && kind != KindGauge && kind != KindHistogram {
				t.Errorf("line %d: unknown kind %q", lineNo, kind)
			}
			typed[name] = kind
			curFamily = name
		case strings.HasPrefix(line, "#"):
			// free-form comment: legal
		default:
			m := sampleRe.FindStringSubmatch(line)
			if m == nil {
				t.Fatalf("line %d: malformed sample %q", lineNo, line)
			}
			name, labelBlock, valueStr := m[1], m[3], m[4]
			fam := name
			for _, suffix := range []string{"_bucket", "_sum", "_count"} {
				if typed[curFamily] == KindHistogram && name == curFamily+suffix {
					fam = curFamily
				}
			}
			if fam != curFamily {
				t.Errorf("line %d: sample %s outside its family block (current %s)", lineNo, name, curFamily)
			}
			kind, ok := typed[fam]
			if !ok {
				t.Errorf("line %d: sample %s has no TYPE header", lineNo, name)
			}
			counts[fam]++

			labels := map[string]string{}
			if labelBlock != "" {
				for _, pair := range splitLabelPairs(t, lineNo, labelBlock) {
					lm := labelRe.FindStringSubmatch(pair)
					if lm == nil {
						t.Fatalf("line %d: malformed label pair %q", lineNo, pair)
					}
					if _, dup := labels[lm[1]]; dup {
						t.Errorf("line %d: duplicate label %s", lineNo, lm[1])
					}
					labels[lm[1]] = lm[2]
				}
			}
			value, err := strconv.ParseFloat(strings.Replace(strings.Replace(valueStr, "+Inf", "Inf", 1), "-Inf", "-Inf", 1), 64)
			if err != nil {
				t.Fatalf("line %d: bad value %q: %v", lineNo, valueStr, err)
			}

			if kind == KindHistogram {
				// Key the series by its labels minus le.
				le, hasLE := labels["le"]
				delete(labels, "le")
				skey := fam + "|" + labelKeyString(labels)
				hs := hists[skey]
				if hs == nil {
					hs = &histSeries{}
					hists[skey] = hs
				}
				switch {
				case name == fam+"_bucket":
					if !hasLE {
						t.Errorf("line %d: bucket sample without le", lineNo)
					}
					if value < hs.lastCum {
						t.Errorf("line %d: bucket counts not cumulative (%v after %v)", lineNo, value, hs.lastCum)
					}
					hs.lastCum = value
					if le == "+Inf" {
						hs.infCum, hs.haveInf = value, true
					} else if _, err := strconv.ParseFloat(le, 64); err != nil {
						t.Errorf("line %d: non-numeric le %q", lineNo, le)
					}
				case name == fam+"_sum":
					hs.haveSum = true
				case name == fam+"_count":
					hs.count, hs.haveCnt = value, true
				}
				hs.lastName = name
			} else if value != value { // NaN on a counter/gauge
				t.Errorf("line %d: NaN value on %s", lineNo, name)
			}
			_ = math.Abs
		}
	}
	for skey, hs := range hists {
		if !hs.haveInf || !hs.haveCnt || !hs.haveSum {
			t.Errorf("histogram series %s missing +Inf/_count/_sum (%t/%t/%t)",
				skey, hs.haveInf, hs.haveCnt, hs.haveSum)
			continue
		}
		if hs.infCum != hs.count {
			t.Errorf("histogram series %s: +Inf bucket %v != _count %v", skey, hs.infCum, hs.count)
		}
	}
	return counts
}

// splitLabelPairs splits `k="v",k2="v2"` on commas outside quotes.
func splitLabelPairs(t *testing.T, lineNo int, block string) []string {
	t.Helper()
	var pairs []string
	depth := false // inside quotes
	start := 0
	for i := 0; i < len(block); i++ {
		switch block[i] {
		case '\\':
			i++
		case '"':
			depth = !depth
		case ',':
			if !depth {
				pairs = append(pairs, block[start:i])
				start = i + 1
			}
		}
	}
	if depth {
		t.Fatalf("line %d: unbalanced quotes in label block %q", lineNo, block)
	}
	pairs = append(pairs, block[start:])
	return pairs
}

func labelKeyString(labels map[string]string) string {
	parts := make([]string, 0, len(labels))
	for k, v := range labels {
		parts = append(parts, k+"="+v)
	}
	// Order-insensitive key: sort via simple insertion (few labels).
	for i := 1; i < len(parts); i++ {
		for j := i; j > 0 && parts[j] < parts[j-1]; j-- {
			parts[j], parts[j-1] = parts[j-1], parts[j]
		}
	}
	return strings.Join(parts, ",")
}

// TestExpositionFormatStrict renders a populated registry and runs the
// strict validator over it: header ordering, label escaping, and histogram
// bucket monotonicity with `+Inf` == `_count`.
func TestExpositionFormatStrict(t *testing.T) {
	r := NewRegistry()
	r.Counter("plain_total", "no labels").Add(3)
	v := r.CounterVec("labeled_total", "labels", "app", "backend")
	v.With("FFT", "genima").Add(1)
	v.With("LU", "cables").Add(2)
	v.With(`we"ird\val`+"\n", "x").Add(9)
	r.Gauge("depth", "a gauge").Set(-4)
	h := r.HistogramVec("run_seconds", "latency", []float64{0.01, 0.1, 1}, "outcome")
	for _, d := range []float64{0.005, 0.02, 0.02, 0.5, 3} {
		h.With("done").Observe(d)
	}
	h.With("failed").Observe(0.2)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	counts := validateExposition(t, b.String())
	for fam, want := range map[string]int{
		"plain_total":   1,
		"labeled_total": 3,
		"depth":         1,
		// 2 series × (4 buckets + sum + count)
		"run_seconds": 12,
	} {
		if counts[fam] != want {
			t.Errorf("family %s: %d samples, want %d\n%s", fam, counts[fam], want, b.String())
		}
	}
	// Determinism: a second scrape of the unchanged registry is byte-equal.
	var b2 strings.Builder
	if err := r.WritePrometheus(&b2); err != nil {
		t.Fatal(err)
	}
	if b.String() != b2.String() {
		t.Error("two scrapes of an unchanged registry differ")
	}
}

// TestExpositionUnderConcurrentWrites scrapes while writers mutate the very
// histograms being rendered; every scrape must still pass the strict
// validator (cumulative buckets, +Inf == _count).  With -race this is the
// scrape-vs-write race gate.
func TestExpositionUnderConcurrentWrites(t *testing.T) {
	r := NewRegistry()
	h := r.HistogramVec("live_seconds", "live", []float64{0.001, 0.01, 0.1, 1}, "app")
	c := r.CounterVec("live_total", "live", "app")
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		i := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			app := fmt.Sprintf("app%d", i%3)
			h.With(app).Observe(float64(i%100) / 50)
			c.With(app).Inc()
			i++
		}
	}()
	for i := 0; i < 100; i++ {
		var b strings.Builder
		if err := r.WritePrometheus(&b); err != nil {
			t.Fatal(err)
		}
		validateExposition(t, b.String())
	}
	close(stop)
	<-done
}
