// Package metrics is the simulator's dependency-free operational telemetry
// plane: a registry of typed Counter/Gauge/Histogram instruments with label
// sets, rendered in Prometheus text exposition format (expo.go) and parsed
// back by the same package (parse.go), so `cablesim top` and the smoke tests
// consume exactly what `GET /metrics` serves.
//
// The hot-path discipline mirrors internal/stats: an instrument increment is
// one atomic add on a cache-line-padded word — no locks, no allocations, no
// formatting.  Labeled families resolve a label-value tuple to its child
// instrument through a read-locked map keyed by a fixed-size array (so the
// lookup itself is allocation-free); call sites on genuinely hot paths
// resolve once and cache the child pointer, exactly as they would cache a
// stats lane.  All rendering cost is paid at scrape time by the reader.
//
// These are host-side service metrics (real time), entirely separate from
// the virtual-time counters of internal/stats; attaching, scraping, or
// dropping them can never change a simulated result.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Kind is the instrument type of a family, named as Prometheus spells it in
// `# TYPE` lines.
type Kind string

// The instrument kinds.
const (
	KindCounter   Kind = "counter"
	KindGauge     Kind = "gauge"
	KindHistogram Kind = "histogram"
)

// MaxLabels is the most labels one family may declare.  The bound is what
// makes label resolution allocation-free: label-value tuples are fixed-size
// arrays, usable directly as map keys.
const MaxLabels = 6

// labelKey is one series' label-value tuple, the child-map key.
type labelKey [MaxLabels]string

// Counter is a monotonically increasing instrument.  The value is one
// padded atomic word: Add is wait-free and allocation-free, the same
// discipline as an internal/stats lane.
type Counter struct {
	v atomic.Int64
	_ [56]byte // pad to a cache line so adjacent counters never false-share
}

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add accumulates d (d must be >= 0 for the exposition to stay a counter).
func (c *Counter) Add(d int64) { c.v.Add(d) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// Gauge is a current-value instrument (may go up and down).
type Gauge struct {
	v atomic.Int64
	_ [56]byte
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add accumulates d.
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// Histogram is a latency/size distribution: per-bucket atomic counts over
// fixed upper bounds, plus a running sum and total count.  Observe is
// lock-free (one linear bucket scan, two atomic adds, one CAS loop for the
// float sum) and allocation-free.
type Histogram struct {
	upper  []float64 // ascending bucket upper bounds; +Inf is implicit
	counts []atomic.Int64
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.upper) && v > h.upper[i] {
		i++
	}
	h.counts[i].Add(1) // i == len(upper) is the +Inf bucket
	h.count.Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// DefLatencyBuckets are the default upper bounds (seconds) for latency
// histograms: 1 ms to 60 s, roughly logarithmic — wide enough for both an
// HTTP handler and a full-scale simulation cell.
func DefLatencyBuckets() []float64 {
	return []float64{
		0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
		0.25, 0.5, 1, 2.5, 5, 10, 30, 60,
	}
}

// family is one named metric family: kind, help, label names, and the child
// series keyed by label-value tuple.
type family struct {
	name    string
	help    string
	kind    Kind
	labels  []string
	buckets []float64 // histograms only

	mu     sync.RWMutex
	series map[labelKey]any // *Counter, *Gauge, or *Histogram
}

// child resolves (creating on first use) the series for key.  The read path
// is a shared-lock map lookup on an array key: no allocation.
func (f *family) child(key labelKey) any {
	f.mu.RLock()
	s, ok := f.series[key]
	f.mu.RUnlock()
	if ok {
		return s
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok := f.series[key]; ok {
		return s
	}
	switch f.kind {
	case KindCounter:
		s = &Counter{}
	case KindGauge:
		s = &Gauge{}
	case KindHistogram:
		s = &Histogram{upper: f.buckets, counts: make([]atomic.Int64, len(f.buckets)+1)}
	}
	f.series[key] = s
	return s
}

// keyOf validates a label-value tuple against the family's declared labels
// and packs it into the fixed-size map key.
func (f *family) keyOf(values []string) labelKey {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("metrics: family %s wants %d label values, got %d",
			f.name, len(f.labels), len(values)))
	}
	var k labelKey
	copy(k[:], values)
	return k
}

// CounterVec is a labeled counter family; With resolves one child.
type CounterVec struct{ f *family }

// With returns the child counter for the given label values (in the order
// the labels were declared).  The returned pointer is stable — hot call
// sites resolve once and cache it.
func (v *CounterVec) With(values ...string) *Counter {
	return v.f.child(v.f.keyOf(values)).(*Counter)
}

// GaugeVec is a labeled gauge family.
type GaugeVec struct{ f *family }

// With returns the child gauge for the given label values.
func (v *GaugeVec) With(values ...string) *Gauge {
	return v.f.child(v.f.keyOf(values)).(*Gauge)
}

// HistogramVec is a labeled histogram family.
type HistogramVec struct{ f *family }

// With returns the child histogram for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram {
	return v.f.child(v.f.keyOf(values)).(*Histogram)
}

// Registry holds a set of metric families and renders them for scraping.
// Registration happens at service construction; instruments are then used
// concurrently without further coordination with the registry.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// register adds a family, panicking on a duplicate name or too many labels
// (both are construction-time programming errors, not runtime conditions).
func (r *Registry) register(name, help string, kind Kind, labels []string, buckets []float64) *family {
	if len(labels) > MaxLabels {
		panic(fmt.Sprintf("metrics: family %s declares %d labels; max %d", name, len(labels), MaxLabels))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.families[name]; dup {
		panic("metrics: duplicate family " + name)
	}
	f := &family{
		name: name, help: help, kind: kind,
		labels: labels, buckets: buckets,
		series: make(map[labelKey]any),
	}
	r.families[name] = f
	return f
}

// Counter registers an unlabeled counter family and returns its single
// instrument.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.register(name, help, KindCounter, nil, nil)
	return f.child(labelKey{}).(*Counter)
}

// CounterVec registers a labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{r.register(name, help, KindCounter, labels, nil)}
}

// Gauge registers an unlabeled gauge family and returns its instrument.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.register(name, help, KindGauge, nil, nil)
	return f.child(labelKey{}).(*Gauge)
}

// GaugeVec registers a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{r.register(name, help, KindGauge, labels, nil)}
}

// Histogram registers an unlabeled histogram family with the given ascending
// bucket upper bounds (nil selects DefLatencyBuckets) and returns its
// instrument.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	if buckets == nil {
		buckets = DefLatencyBuckets()
	}
	f := r.register(name, help, KindHistogram, nil, buckets)
	return f.child(labelKey{}).(*Histogram)
}

// HistogramVec registers a labeled histogram family (nil buckets selects
// DefLatencyBuckets).
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	if buckets == nil {
		buckets = DefLatencyBuckets()
	}
	return &HistogramVec{r.register(name, help, KindHistogram, labels, buckets)}
}

// Families returns the registered family names, sorted — the inventory the
// farm's doc-drift test pins against its familyNames literal.
func (r *Registry) Families() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.families))
	for n := range r.families {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
