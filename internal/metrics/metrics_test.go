package metrics

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterAndGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "a counter")
	g := r.Gauge("g", "a gauge")
	c.Inc()
	c.Add(4)
	if c.Load() != 5 {
		t.Errorf("counter = %d, want 5", c.Load())
	}
	g.Set(7)
	g.Add(-3)
	if g.Load() != 4 {
		t.Errorf("gauge = %d, want 4", g.Load())
	}
}

func TestVecChildIdentity(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("cells_total", "cells", "app", "backend")
	a := v.With("FFT", "genima")
	b := v.With("FFT", "genima")
	if a != b {
		t.Error("same label values resolved different children")
	}
	other := v.With("FFT", "cables")
	if a == other {
		t.Error("different label values shared a child")
	}
	a.Add(2)
	other.Inc()
	if a.Load() != 2 || other.Load() != 1 {
		t.Errorf("children cross-talk: %d %d", a.Load(), other.Load())
	}
}

func TestVecLabelArityPanics(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("x_total", "x", "app")
	defer func() {
		if recover() == nil {
			t.Error("wrong label arity did not panic")
		}
	}()
	v.With("a", "b")
}

func TestDuplicateFamilyPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dup_total", "first")
	defer func() {
		if recover() == nil {
			t.Error("duplicate family name did not panic")
		}
	}()
	r.Gauge("dup_total", "second")
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "latency", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.05, 0.5, 5, 0.05} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Errorf("count = %d, want 5", h.Count())
	}
	if got, want := h.Sum(), 0.005+0.05+0.5+5+0.05; math.Abs(got-want) > 1e-9 {
		t.Errorf("sum = %v, want %v", got, want)
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`lat_seconds_bucket{le="0.01"} 1`,
		`lat_seconds_bucket{le="0.1"} 3`,
		`lat_seconds_bucket{le="1"} 4`,
		`lat_seconds_bucket{le="+Inf"} 5`,
		`lat_seconds_count 5`,
	} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("exposition missing %q:\n%s", want, b.String())
		}
	}
}

// TestQuantile pins the interpolation math cablesim top relies on.
func TestQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("q_seconds", "q", []float64{0.1, 0.2, 0.4})
	// 10 observations uniformly in (0.1, 0.2]: the quantile interpolates
	// inside that bucket.
	for i := 0; i < 10; i++ {
		h.Observe(0.15)
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	s, err := ParseText(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	p50, ok := s.Quantile("q_seconds", 0.5, nil)
	if !ok || p50 <= 0.1 || p50 > 0.2 {
		t.Errorf("p50 = %v ok=%t, want within (0.1, 0.2]", p50, ok)
	}
	if _, ok := s.Quantile("absent_seconds", 0.5, nil); ok {
		t.Error("quantile of an absent histogram reported ok")
	}
}

// TestParseRoundTrip: everything the writer emits, the parser reads back
// with identical names, labels (escapes included), and values.
func TestParseRoundTrip(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("rt_total", "round trip", "app", "note")
	v.With("FFT", `quote " slash \ newline`+"\n").Add(3)
	g := r.Gauge("rt_gauge", "g")
	g.Set(-12)
	h := r.HistogramVec("rt_seconds", "h", []float64{0.5}, "outcome")
	h.With("done").Observe(0.25)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	s, err := ParseText(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("parse: %v\n%s", err, b.String())
	}
	if got, ok := s.Value("rt_total", map[string]string{"app": "FFT"}); !ok || got != 3 {
		t.Errorf("rt_total = %v ok=%t, want 3", got, ok)
	}
	// The escaped label value must round-trip to the original bytes.
	found := false
	for _, sm := range s.Samples {
		if sm.Name == "rt_total" && sm.Labels["note"] == `quote " slash \ newline`+"\n" {
			found = true
		}
	}
	if !found {
		t.Errorf("escaped label value did not round-trip:\n%s", b.String())
	}
	if got, ok := s.Value("rt_gauge", nil); !ok || got != -12 {
		t.Errorf("rt_gauge = %v ok=%t, want -12", got, ok)
	}
	if got, ok := s.Value("rt_seconds_count", map[string]string{"outcome": "done"}); !ok || got != 1 {
		t.Errorf("rt_seconds_count = %v ok=%t, want 1", got, ok)
	}
	if s.Type["rt_seconds"] != KindHistogram || s.Type["rt_total"] != KindCounter {
		t.Errorf("TYPE headers not parsed: %v", s.Type)
	}
}

// TestConcurrentUse hammers one registry from many goroutines — increments,
// label resolution, observations, and scrapes all at once — and checks the
// totals.  Run under -race this is the package's data-race gate.
func TestConcurrentUse(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("conc_total", "c", "worker")
	h := r.Histogram("conc_seconds", "h", nil)
	const workers, perWorker = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := v.With(string(rune('a' + w)))
			for i := 0; i < perWorker; i++ {
				c.Inc()
				h.Observe(float64(i) / perWorker)
			}
		}()
	}
	// Concurrent scrapes while writers run.
	for s := 0; s < 4; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				var b strings.Builder
				if err := r.WritePrometheus(&b); err != nil {
					t.Error(err)
					return
				}
				if _, err := ParseText(strings.NewReader(b.String())); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	total := int64(0)
	for w := 0; w < workers; w++ {
		total += v.With(string(rune('a' + w))).Load()
	}
	if total != workers*perWorker {
		t.Errorf("lost increments: %d, want %d", total, workers*perWorker)
	}
	if h.Count() != workers*perWorker {
		t.Errorf("lost observations: %d, want %d", h.Count(), workers*perWorker)
	}
}
