package metrics

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Sample is one parsed exposition line: a metric name (for histograms the
// suffixed `_bucket`/`_sum`/`_count` form), its label set, and the value.
type Sample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// Scrape is one parsed exposition payload — what `cablesim top` builds from
// each poll of `GET /metrics`.
type Scrape struct {
	// Help and Type index the `# HELP` / `# TYPE` headers by family name.
	Help map[string]string
	Type map[string]Kind
	// Samples are the data lines in document order.
	Samples []Sample
}

// ParseText parses a Prometheus text exposition payload.  It is strict about
// everything the writer produces (header shape, quoting, escapes) and
// returns an error with the offending line on any malformed input.
func ParseText(r io.Reader) (*Scrape, error) {
	s := &Scrape{Help: map[string]string{}, Type: map[string]Kind{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if err := s.parseHeader(line); err != nil {
				return nil, fmt.Errorf("line %d: %v", lineNo, err)
			}
			continue
		}
		sample, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %v", lineNo, err)
		}
		s.Samples = append(s.Samples, sample)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return s, nil
}

// parseHeader consumes a `# HELP name text` or `# TYPE name kind` line
// (other comments are ignored, as the format allows).
func (s *Scrape) parseHeader(line string) error {
	fields := strings.SplitN(line, " ", 4)
	if len(fields) < 3 || fields[0] != "#" {
		return nil // free-form comment
	}
	switch fields[1] {
	case "HELP":
		text := ""
		if len(fields) == 4 {
			text = fields[3]
		}
		s.Help[fields[2]] = text
	case "TYPE":
		if len(fields) != 4 {
			return fmt.Errorf("malformed TYPE line %q", line)
		}
		kind := Kind(fields[3])
		if kind != KindCounter && kind != KindGauge && kind != KindHistogram {
			return fmt.Errorf("unknown metric type %q", fields[3])
		}
		s.Type[fields[2]] = kind
	}
	return nil
}

// parseSample consumes one `name{k="v",...} value` data line.
func parseSample(line string) (Sample, error) {
	sm := Sample{Labels: map[string]string{}}
	i := strings.IndexAny(line, "{ ")
	if i < 0 {
		return sm, fmt.Errorf("malformed sample %q", line)
	}
	sm.Name = line[:i]
	rest := line[i:]
	if rest[0] == '{' {
		end, err := parseLabels(rest, sm.Labels)
		if err != nil {
			return sm, fmt.Errorf("%v in %q", err, line)
		}
		rest = rest[end:]
	}
	rest = strings.TrimSpace(rest)
	v, err := parseValue(rest)
	if err != nil {
		return sm, fmt.Errorf("bad value %q in %q", rest, line)
	}
	sm.Value = v
	return sm, nil
}

// parseLabels consumes a `{k="v",...}` block starting at s[0] == '{' and
// returns the index just past the closing brace.  Escapes in values
// (\\, \", \n) are decoded.
func parseLabels(s string, out map[string]string) (int, error) {
	i := 1
	for {
		if i >= len(s) {
			return 0, fmt.Errorf("unterminated label block")
		}
		if s[i] == '}' {
			return i + 1, nil
		}
		eq := strings.IndexByte(s[i:], '=')
		if eq < 0 {
			return 0, fmt.Errorf("label without '='")
		}
		name := s[i : i+eq]
		i += eq + 1
		if i >= len(s) || s[i] != '"' {
			return 0, fmt.Errorf("label %s value not quoted", name)
		}
		i++
		var val strings.Builder
		for {
			if i >= len(s) {
				return 0, fmt.Errorf("unterminated label value for %s", name)
			}
			c := s[i]
			if c == '"' {
				i++
				break
			}
			if c == '\\' {
				if i+1 >= len(s) {
					return 0, fmt.Errorf("dangling escape in label %s", name)
				}
				switch s[i+1] {
				case '\\':
					val.WriteByte('\\')
				case '"':
					val.WriteByte('"')
				case 'n':
					val.WriteByte('\n')
				default:
					return 0, fmt.Errorf("bad escape \\%c in label %s", s[i+1], name)
				}
				i += 2
				continue
			}
			val.WriteByte(c)
			i++
		}
		out[name] = val.String()
		if i < len(s) && s[i] == ',' {
			i++
		}
	}
}

// parseValue parses a sample value, accepting the +Inf/-Inf/NaN spellings.
func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	}
	return strconv.ParseFloat(s, 64)
}

// Value returns the sample with the given name whose labels are a superset
// of want (nil matches the first sample of that name).
func (s *Scrape) Value(name string, want map[string]string) (float64, bool) {
	for _, sm := range s.Samples {
		if sm.Name != name || !labelsMatch(sm.Labels, want) {
			continue
		}
		return sm.Value, true
	}
	return 0, false
}

// SumBy sums every sample of the given name, grouped by one label's value
// (samples missing the label group under "").
func (s *Scrape) SumBy(name, label string) map[string]float64 {
	out := map[string]float64{}
	for _, sm := range s.Samples {
		if sm.Name == name {
			out[sm.Labels[label]] += sm.Value
		}
	}
	return out
}

// Quantile estimates the q-quantile (0 < q <= 1) of a histogram family from
// its cumulative `_bucket` samples, aggregated across all series whose
// labels are a superset of want.  It interpolates linearly within the
// bucket containing the target rank; an empty histogram returns (0, false).
func (s *Scrape) Quantile(histName string, q float64, want map[string]string) (float64, bool) {
	// Aggregate cumulative counts per le across matching series.
	type bucket struct {
		le  float64
		cum float64
	}
	byLE := map[float64]float64{}
	for _, sm := range s.Samples {
		if sm.Name != histName+"_bucket" || !labelsMatch(sm.Labels, want) {
			continue
		}
		le, err := parseValue(sm.Labels["le"])
		if err != nil {
			continue
		}
		byLE[le] += sm.Value
	}
	if len(byLE) == 0 {
		return 0, false
	}
	buckets := make([]bucket, 0, len(byLE))
	for le, cum := range byLE {
		buckets = append(buckets, bucket{le, cum})
	}
	sort.Slice(buckets, func(i, j int) bool { return buckets[i].le < buckets[j].le })
	total := buckets[len(buckets)-1].cum
	if total == 0 {
		return 0, false
	}
	rank := q * total
	prevLE, prevCum := 0.0, 0.0
	for _, b := range buckets {
		if b.cum >= rank {
			if math.IsInf(b.le, 1) { // the +Inf bucket: report the last finite bound
				return prevLE, true
			}
			span := b.cum - prevCum
			if span <= 0 {
				return b.le, true
			}
			return prevLE + (b.le-prevLE)*(rank-prevCum)/span, true
		}
		prevLE, prevCum = b.le, b.cum
	}
	return buckets[len(buckets)-1].le, true
}

// labelsMatch reports whether have contains every pair of want.
func labelsMatch(have, want map[string]string) bool {
	for k, v := range want {
		if have[k] != v {
			return false
		}
	}
	return true
}
