// Package nodeos models the per-node operating system (WindowsNT in the
// paper) and assembles the cluster: nodes with a fixed processor count,
// kernel-thread scheduling with time-sharing dilation when threads exceed
// processors, OS service costs (thread/process creation, virtual-memory
// remapping), and the OS virtual-memory mapping granularity that drives the
// paper's data-placement results.
//
// NewCluster also assembles the wire plane (internal/wire) over the SAN
// fabric and VMMC system, and installs an optional fault injector
// (Config.Fault, see internal/fault) through the plane's single wiring
// point — one injector then governs every fault site of a simulation.
package nodeos

import (
	"fmt"
	"sync/atomic"

	"cables/internal/fault"
	"cables/internal/profile"
	"cables/internal/san"
	"cables/internal/sim"
	"cables/internal/stats"
	"cables/internal/vmmc"
	"cables/internal/wire"
)

// Node is one cluster machine (a 2-way SMP in the paper's testbed).
type Node struct {
	// ID is the node's cluster-wide identifier.
	ID int
	// Processors is the number of CPUs on the node.
	Processors int

	costs    *sim.Costs
	runnable atomic.Int32
	attached atomic.Bool
}

// LoadFactor reports the computation dilation on this node: when more
// threads are runnable than there are processors, computation time stretches
// proportionally (a time-sharing approximation; the local OS schedules
// threads, paper §2.2).
func (n *Node) LoadFactor() float64 {
	r := int(n.runnable.Load())
	if r <= n.Processors {
		return 1
	}
	return float64(r) / float64(n.Processors)
}

// ThreadStarted registers a runnable thread with the node scheduler.
func (n *Node) ThreadStarted() { n.runnable.Add(1) }

// ThreadStopped removes a thread from the runnable count (exit or block).
func (n *Node) ThreadStopped() { n.runnable.Add(-1) }

// Runnable returns the current runnable-thread count.
func (n *Node) Runnable() int { return int(n.runnable.Load()) }

// Attached reports whether the node has been attached to the application.
func (n *Node) Attached() bool { return n.attached.Load() }

// SetAttached marks the node attached/detached.
func (n *Node) SetAttached(v bool) { n.attached.Store(v) }

// ChargeThreadCreate charges t for a local kernel-thread creation.
func (n *Node) ChargeThreadCreate(t *sim.Task) {
	t.Charge(sim.CatLocalOS, n.costs.OSThreadCreate)
}

// ChargeMapSegment charges t for an OS virtual-memory (re)mapping call.
func (n *Node) ChargeMapSegment(t *sim.Task) {
	t.Charge(sim.CatLocalOS, n.costs.OSMapSegment)
}

// MapUnit returns the OS virtual-memory mapping granularity in bytes
// (64 KB on WindowsNT, 4 KB on the Linux profile).
func (n *Node) MapUnit() int { return n.costs.MapGranularity }

// Cluster bundles the full simulated machine: nodes, fabric, VMMC.
type Cluster struct {
	Nodes  []*Node
	Costs  *sim.Costs
	Ctr    *stats.Counters
	Fabric *san.Fabric
	VMMC   *vmmc.System
	// Wire is the typed operation plane all cross-node traffic goes
	// through (internal/wire).
	Wire *wire.Plane
	// Sched is the simulation's thread-manager backend; every task the
	// cluster creates is bound to it (one scheduler instance per
	// simulation, so concurrent harness cells never share run queues).
	Sched sim.Scheduler
	// Fault is the installed fault injector (nil when faults are disabled).
	Fault *fault.Injector
	// Prof, when set (bench.AttachProfiler), adopts every task the cluster
	// creates into the virtual-time profiler.  Attach before the run
	// starts; adoption records spans and charges nothing.
	Prof *profile.Profiler

	taskSeq atomic.Int64
}

// Config selects the cluster shape and NIC limits.
type Config struct {
	// NumNodes is the number of machines (paper: up to 16).
	NumNodes int
	// ProcsPerNode is the SMP width (paper: 2).
	ProcsPerNode int
	// Costs is the virtual-time cost table; nil selects DefaultCosts.
	Costs *sim.Costs
	// Limits are the NIC registration limits; zero selects DefaultLimits.
	Limits vmmc.Limits
	// Fault optionally injects deterministic faults (see internal/fault);
	// nil keeps the happy path bit-identical.
	Fault *fault.Injector
	// Wire selects the wire plane's opt-in modes (contended sync, release
	// coalescing); the zero value reproduces the default schedule.
	Wire wire.Options
	// Sched names the thread-manager backend (sim.SchedulerNames); empty
	// selects the process default (CABLES_SCHED / `cablesim -sched`).
	Sched string
}

// NewCluster builds a cluster.
func NewCluster(cfg Config) *Cluster {
	if cfg.NumNodes <= 0 {
		panic(fmt.Sprintf("nodeos: invalid node count %d", cfg.NumNodes))
	}
	if cfg.ProcsPerNode <= 0 {
		cfg.ProcsPerNode = 2
	}
	costs := cfg.Costs
	if costs == nil {
		costs = sim.DefaultCosts()
	}
	limits := cfg.Limits
	if limits == (vmmc.Limits{}) {
		limits = vmmc.DefaultLimits()
	}
	ctr := stats.NewCounters(cfg.NumNodes)
	fab := san.New(cfg.NumNodes, costs, ctr)
	cl := &Cluster{
		Nodes:  make([]*Node, cfg.NumNodes),
		Costs:  costs,
		Ctr:    ctr,
		Fabric: fab,
		VMMC:   vmmc.NewSystem(fab, limits),
		Fault:  cfg.Fault,
		Sched:  sim.NewScheduler(cfg.Sched),
	}
	cl.Wire = wire.New(fab, cl.VMMC, cfg.Wire)
	if cfg.Fault != nil {
		cl.Wire.SetFault(cfg.Fault)
	}
	for i := range cl.Nodes {
		cl.Nodes[i] = &Node{ID: i, Processors: cfg.ProcsPerNode, costs: costs}
	}
	return cl
}

// NumNodes returns the machine count.
func (c *Cluster) NumNodes() int { return len(c.Nodes) }

// TotalProcessors returns the processor count across all nodes.
func (c *Cluster) TotalProcessors() int {
	p := 0
	for _, n := range c.Nodes {
		p += n.Processors
	}
	return p
}

// NewTask creates a simulated thread bound to node, starting at virtual time
// start, with the node's load-factor hook installed.
func (c *Cluster) NewTask(node int, start sim.Time) *sim.Task {
	t := sim.NewTask(int(c.taskSeq.Add(1)), node, c.Costs)
	t.BindScheduler(c.Sched)
	t.SetNow(start)
	t.Load = c.Nodes[node].LoadFactor
	if c.Prof != nil {
		c.Prof.Adopt(t)
	}
	return t
}
