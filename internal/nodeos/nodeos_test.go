package nodeos

import (
	"testing"

	"cables/internal/sim"
)

func TestClusterShape(t *testing.T) {
	cl := NewCluster(Config{NumNodes: 4, ProcsPerNode: 2})
	if cl.NumNodes() != 4 || cl.TotalProcessors() != 8 {
		t.Errorf("shape: %d nodes %d procs", cl.NumNodes(), cl.TotalProcessors())
	}
	if cl.Fabric.Nodes() != 4 {
		t.Error("fabric node count")
	}
}

func TestClusterDefaults(t *testing.T) {
	cl := NewCluster(Config{NumNodes: 2})
	if cl.Nodes[0].Processors != 2 {
		t.Errorf("default SMP width: %d", cl.Nodes[0].Processors)
	}
	if cl.Costs == nil || cl.VMMC == nil {
		t.Fatal("defaults missing")
	}
	if cl.Nodes[0].MapUnit() != 64<<10 {
		t.Errorf("default granularity: %d", cl.Nodes[0].MapUnit())
	}
}

func TestInvalidClusterPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	NewCluster(Config{NumNodes: 0})
}

func TestLoadFactorTimeSharing(t *testing.T) {
	cl := NewCluster(Config{NumNodes: 1, ProcsPerNode: 2})
	n := cl.Nodes[0]
	if n.LoadFactor() != 1 {
		t.Error("idle load factor")
	}
	for i := 0; i < 2; i++ {
		n.ThreadStarted()
	}
	if n.LoadFactor() != 1 {
		t.Error("full-but-not-over load factor")
	}
	n.ThreadStarted() // 3 runnable on 2 processors
	if got := n.LoadFactor(); got != 1.5 {
		t.Errorf("oversubscribed load factor: %v", got)
	}
	n.ThreadStopped()
	n.ThreadStopped()
	n.ThreadStopped()
	if n.Runnable() != 0 {
		t.Errorf("runnable: %d", n.Runnable())
	}
}

func TestNewTaskWiring(t *testing.T) {
	cl := NewCluster(Config{NumNodes: 2, ProcsPerNode: 2})
	cl.Nodes[1].ThreadStarted()
	cl.Nodes[1].ThreadStarted()
	cl.Nodes[1].ThreadStarted()
	task := cl.NewTask(1, 5*sim.Microsecond)
	if task.NodeID != 1 || task.Now() != 5*sim.Microsecond {
		t.Errorf("task wiring: node=%d now=%v", task.NodeID, task.Now())
	}
	task.Compute(10 * sim.Microsecond)
	if got := task.Now() - 5*sim.Microsecond; got != 15*sim.Microsecond {
		t.Errorf("load-dilated compute on task: %v", got)
	}
	t2 := cl.NewTask(0, 0)
	if t2.ID == task.ID {
		t.Error("task ids not unique")
	}
}

func TestOSChargeHelpers(t *testing.T) {
	cl := NewCluster(Config{NumNodes: 1, ProcsPerNode: 2})
	task := cl.NewTask(0, 0)
	cl.Nodes[0].ChargeThreadCreate(task)
	cl.Nodes[0].ChargeMapSegment(task)
	b := task.Snapshot()
	want := cl.Costs.OSThreadCreate + cl.Costs.OSMapSegment
	if b[sim.CatLocalOS] != want {
		t.Errorf("OS charges: %v want %v", b[sim.CatLocalOS], want)
	}
}

func TestAttachedFlag(t *testing.T) {
	cl := NewCluster(Config{NumNodes: 2, ProcsPerNode: 2})
	if cl.Nodes[1].Attached() {
		t.Error("node attached by default")
	}
	cl.Nodes[1].SetAttached(true)
	if !cl.Nodes[1].Attached() {
		t.Error("attach flag lost")
	}
}
