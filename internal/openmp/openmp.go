// Package openmp implements the runtime that an OpenMP-to-pthreads
// translator such as OdinMP emits: parallel regions backed by dynamically
// created pthreads, statically scheduled work-shared loops, critical
// sections, barriers and reductions — all expressed in terms of the CableS
// pthreads API, exactly how the paper runs OpenMP programs on the cluster
// (§3.3).  Programs written against this package are "SMP-style": the
// master initializes shared data, so placement is naive and the speedups
// mirror the paper's Table 6 rather than the tuned SPLASH-2 numbers.
package openmp

import (
	"fmt"
	"sync"

	"cables/internal/apps/appapi"
	cables "cables/internal/core"
	"cables/internal/memsys"
	"cables/internal/nodeos"
	"cables/internal/sim"
	"cables/internal/stats"
)

// Runtime hosts OpenMP programs on CableS.
type Runtime struct {
	rt      *cables.Runtime
	procs   int
	mu      sync.Mutex
	crit    map[string]*cables.Mutex
	nextBar int
	pool    []*poolWorker

	// Stats, when set, records per-operation costs (Table 5's OMP rows).
	Stats *stats.OpStats
}

// record times fn under op when Stats is attached.
func (r *Runtime) record(t *sim.Task, op string, fn func()) {
	if r.Stats == nil {
		fn()
		return
	}
	r.Stats.Time(t, op, fn)
}

// poolWorker is one pooled pthread serving parallel regions.  Pooling is
// what the paper suggests OdinMP-style runtimes do to amortize remote
// thread-creation and node-attach costs ("the potential for pooling threads
// on nodes to save time", §3.2).
type poolWorker struct {
	th   *cables.Thread
	work chan func(th *cables.Thread)
	done chan sim.Time
}

// Config shapes an OpenMP run.
type Config struct {
	Procs        int
	ProcsPerNode int
	ArenaBytes   int64
	Costs        *sim.Costs
	// Sched names the thread-manager backend (sim.SchedulerNames); empty
	// selects the process default (CABLES_SCHED / `cablesim -sched`).
	Sched string
}

// New builds an OpenMP runtime over a fresh CableS instance.
func New(cfg Config) *Runtime {
	if cfg.Procs <= 0 {
		panic(fmt.Sprintf("openmp: invalid processor count %d", cfg.Procs))
	}
	if cfg.ProcsPerNode <= 0 {
		cfg.ProcsPerNode = 2
	}
	nodes := (cfg.Procs + cfg.ProcsPerNode - 1) / cfg.ProcsPerNode
	rt := cables.New(cables.Config{
		MaxNodes:        nodes,
		ProcsPerNode:    cfg.ProcsPerNode,
		ArenaBytes:      cfg.ArenaBytes,
		Costs:           cfg.Costs,
		CoordinatorMain: true,
		Sched:           cfg.Sched,
	})
	rt.Start()
	return &Runtime{rt: rt, procs: cfg.Procs, crit: make(map[string]*cables.Mutex)}
}

// Cables exposes the underlying CableS runtime.
func (r *Runtime) Cables() *cables.Runtime { return r.rt }

// Cluster exposes the simulated machine.
func (r *Runtime) Cluster() *nodeos.Cluster { return r.rt.Cluster() }

// Procs returns the region width.
func (r *Runtime) Procs() int { return r.procs }

// Main returns the master thread's task.
func (r *Runtime) Main() *sim.Task { return r.rt.Main().Task }

// Acc returns the shared-memory accessor.
func (r *Runtime) Acc() *memsys.Accessor { return r.rt.Acc() }

// Malloc allocates shared memory (what translated global arrays become).
func (r *Runtime) Malloc(t *sim.Task, size int64) memsys.Addr {
	a, err := r.rt.Mem().Malloc(t, size)
	if err != nil {
		panic("openmp: " + err.Error())
	}
	return a
}

// OMP is the per-thread view inside a parallel region.
type OMP struct {
	r   *Runtime
	th  *cables.Thread
	tid int
	bar string
}

// Task returns the simulated execution context.
func (o *OMP) Task() *sim.Task { return o.th.Task }

// Thread returns the underlying pthread.
func (o *OMP) Thread() *cables.Thread { return o.th }

// TID returns the OpenMP thread number.
func (o *OMP) TID() int { return o.tid }

// Warmup creates the region-serving thread pool up front (attaching the
// nodes), so later parallel regions measure computation rather than
// node-attach costs.  Called implicitly by the first Parallel otherwise.
func (r *Runtime) Warmup() { r.ensurePool() }

// ensurePool lazily creates the region-serving thread pool.
func (r *Runtime) ensurePool() {
	if r.pool != nil {
		return
	}
	main := r.rt.Main().Task
	sched := r.rt.Cluster().Sched
	r.pool = make([]*poolWorker, r.procs)
	for i := range r.pool {
		w := &poolWorker{
			work: make(chan func(th *cables.Thread)),
			// Buffered: a worker must be able to post its region end and
			// return to the idle wait without holding its scheduler slot
			// hostage while the master is still collecting other workers.
			done: make(chan sim.Time, 1),
		}
		r.pool[i] = w
		r.record(main, "create", func() {
			w.th = r.rt.Create(main, func(th *cables.Thread) {
				node := r.rt.Cluster().Nodes[th.Task.NodeID]
				for {
					node.ThreadStopped() // idle between regions
					sched.Block(th.Task) // release the slot while idle
					fn, ok := <-w.work
					sched.Unblock(th.Task)
					node.ThreadStarted()
					if !ok {
						break
					}
					fn(th)
					w.done <- th.Task.Now()
				}
				w.done <- th.Task.Now()
			})
		})
	}
}

// Parallel runs body on Procs() pooled pthreads — the translation of
// `#pragma omp parallel`.
func (r *Runtime) Parallel(body func(o *OMP)) {
	main := r.rt.Main().Task
	r.ensurePool()
	r.mu.Lock()
	r.nextBar++
	region := r.nextBar
	r.mu.Unlock()
	start := main.Now()
	for i, w := range r.pool {
		i, w := i, w
		o := &OMP{r: r, tid: i, bar: fmt.Sprintf("omp.%d", region)}
		r.rt.Cluster().Ctr.Add(main.NodeID, stats.EvAdminRequests, 1)
		w.work <- func(th *cables.Thread) {
			o.th = th
			th.Task.WaitUntil(start) // region dispatch message
			body(o)
		}
	}
	for _, w := range r.pool {
		end := <-w.done
		main.WaitUntil(end)
	}
}

// Close retires the pool (end of program).
func (r *Runtime) Close() {
	for _, w := range r.pool {
		close(w.work)
		<-w.done
	}
	r.pool = nil
}

// For executes a statically scheduled work-shared loop over [lo,hi) with an
// implicit closing barrier — `#pragma omp for`.
func (o *OMP) For(lo, hi int, body func(i int)) {
	n := hi - lo
	per := n / o.r.procs
	rem := n % o.r.procs
	myLo := lo + o.tid*per + min(o.tid, rem)
	myHi := myLo + per
	if o.tid < rem {
		myHi++
	}
	for i := myLo; i < myHi; i++ {
		body(i)
	}
	o.Barrier()
}

// ForNowait is `#pragma omp for nowait`: no closing barrier.
func (o *OMP) ForNowait(lo, hi int, body func(i int)) {
	n := hi - lo
	per := n / o.r.procs
	rem := n % o.r.procs
	myLo := lo + o.tid*per + min(o.tid, rem)
	myHi := myLo + per
	if o.tid < rem {
		myHi++
	}
	for i := myLo; i < myHi; i++ {
		body(i)
	}
}

// Barrier is `#pragma omp barrier`, mapped onto the pthread_barrier
// extension.
func (o *OMP) Barrier() {
	o.r.record(o.th.Task, "barrier", func() {
		o.r.rt.Barrier(o.th.Task, o.bar, o.r.procs)
	})
}

// Critical runs body under the named critical section's mutex.
func (o *OMP) Critical(name string, body func()) {
	o.r.mu.Lock()
	mx, ok := o.r.crit[name]
	if !ok {
		mx = o.r.rt.NewMutex(o.th.Task)
		o.r.crit[name] = mx
	}
	o.r.mu.Unlock()
	o.r.record(o.th.Task, "mutex_lock", func() { mx.Lock(o.th.Task) })
	body()
	o.r.record(o.th.Task, "mutex_unlock", func() { mx.Unlock(o.th.Task) })
}

// Single runs body on thread 0 only, with an implicit barrier —
// `#pragma omp single` (master-variant).
func (o *OMP) Single(body func()) {
	if o.tid == 0 {
		body()
	}
	o.Barrier()
}

// Finish reports the application's virtual end time.
func (r *Runtime) Finish() sim.Time { return r.rt.End(r.rt.Main().Task) }

// Misplacement reports the Figure 6 metric for the run.
func (r *Runtime) Misplacement() (int, int) {
	return r.rt.Acc().Sp.MisplacedPages()
}

// Result assembles an appapi.Result for reporting.
func (r *Runtime) Result(app string, parallel sim.Time, checksum float64) appapi.Result {
	mis, tot := r.Misplacement()
	return appapi.Result{
		App: app, Backend: "openmp/cables", Procs: r.procs,
		Total: r.Finish(), Parallel: parallel, Checksum: checksum,
		Misplaced: mis, Touched: tot,
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
