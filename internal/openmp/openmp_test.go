package openmp

import (
	"sync"
	"testing"

	"cables/internal/sim"
	"cables/internal/stats"
)

func newOMP(procs int) *Runtime {
	return New(Config{Procs: procs, ProcsPerNode: 2})
}

// TestParallelForCoversRangeExactlyOnce: static scheduling partitions the
// iteration space without gaps or overlaps.
func TestParallelForCoversRangeExactlyOnce(t *testing.T) {
	r := newOMP(4)
	const n = 103 // deliberately not divisible by 4
	var mu sync.Mutex
	seen := make([]int, n)
	r.Parallel(func(o *OMP) {
		o.For(0, n, func(i int) {
			mu.Lock()
			seen[i]++
			mu.Unlock()
		})
	})
	r.Close()
	for i, c := range seen {
		if c != 1 {
			t.Fatalf("iteration %d ran %d times", i, c)
		}
	}
}

// TestCriticalIsMutuallyExclusive: concurrent criticals serialize.
func TestCriticalIsMutuallyExclusive(t *testing.T) {
	r := newOMP(8)
	counter := 0
	r.Parallel(func(o *OMP) {
		for i := 0; i < 25; i++ {
			o.Critical("c", func() { counter++ })
		}
	})
	r.Close()
	if counter != 8*25 {
		t.Errorf("counter: %d", counter)
	}
}

// TestSingleRunsOnce: the single construct executes on thread 0 only, with
// all threads synchronized after it.
func TestSingleRunsOnce(t *testing.T) {
	r := newOMP(4)
	runs := 0
	var mu sync.Mutex
	after := make([]sim.Time, 0, 4)
	r.Parallel(func(o *OMP) {
		o.Task().Compute(sim.Time(o.TID()) * sim.Millisecond)
		o.Single(func() { runs++ })
		mu.Lock()
		after = append(after, o.Task().Now())
		mu.Unlock()
	})
	r.Close()
	if runs != 1 {
		t.Errorf("single ran %d times", runs)
	}
	for _, now := range after {
		if now < 3*sim.Millisecond {
			t.Errorf("thread left single barrier at %v before slowest arrival", now)
		}
	}
}

// TestBarrierSynchronizesRegions: within a region, a barrier merges
// virtual clocks.
func TestBarrierSynchronizesRegions(t *testing.T) {
	r := newOMP(4)
	var mu sync.Mutex
	var maxBefore, minAfter sim.Time
	minAfter = 1 << 62
	r.Parallel(func(o *OMP) {
		o.Task().Compute(sim.Time(o.TID()+1) * sim.Millisecond)
		mu.Lock()
		if now := o.Task().Now(); now > maxBefore {
			maxBefore = now
		}
		mu.Unlock()
		o.Barrier()
		mu.Lock()
		if now := o.Task().Now(); now < minAfter {
			minAfter = now
		}
		mu.Unlock()
	})
	r.Close()
	if minAfter < maxBefore {
		t.Errorf("barrier did not merge clocks: maxBefore=%v minAfter=%v", maxBefore, minAfter)
	}
}

// TestPoolReuseAcrossRegions: the pool attaches nodes once; subsequent
// regions reuse threads (no further creates).
func TestPoolReuseAcrossRegions(t *testing.T) {
	r := newOMP(8)
	r.Warmup()
	created := r.Cluster().Ctr.Load(stats.EvThreadsCreated)
	for i := 0; i < 5; i++ {
		r.Parallel(func(o *OMP) { o.Task().Compute(sim.Microsecond) })
	}
	if got := r.Cluster().Ctr.Load(stats.EvThreadsCreated); got != created {
		t.Errorf("regions created %d extra threads", got-created)
	}
	r.Close()
}

// TestStatsRecording: with a collector attached, ops are measured.
func TestStatsRecording(t *testing.T) {
	r := newOMP(2)
	r.Stats = &stats.OpStats{}
	r.Parallel(func(o *OMP) {
		o.Critical("x", func() {})
		o.Barrier()
	})
	r.Close()
	for _, op := range []string{"create", "mutex_lock", "barrier"} {
		if _, n := r.Stats.Avg(op); n == 0 {
			t.Errorf("op %q not recorded", op)
		}
	}
}

// TestForNowaitSkipsBarrier: nowait loops do not synchronize.
func TestForNowaitSkipsBarrier(t *testing.T) {
	r := newOMP(2)
	var mu sync.Mutex
	ends := map[int]sim.Time{}
	r.Parallel(func(o *OMP) {
		if o.TID() == 1 {
			o.Task().Compute(10 * sim.Millisecond)
		}
		o.ForNowait(0, 2, func(int) {})
		mu.Lock()
		ends[o.TID()] = o.Task().Now()
		mu.Unlock()
	})
	r.Close()
	if ends[0] >= 10*sim.Millisecond {
		t.Errorf("nowait loop synchronized: thread 0 ended at %v", ends[0])
	}
}
