package profile

import (
	"encoding/json"
	"fmt"
	"io"
)

// TraceCell is one run's contribution to a timeline export: its task logs
// plus the label shown in the trace viewer's process track.
type TraceCell struct {
	Label string
	Logs  []*TaskLog
}

// argKey names the Arg of each span kind in the exported event args.
var argKey = [NumSpanKinds]string{
	"task", "page", "page", "lock", "barrier", "cond",
	"node", "node", "page", "op",
}

// WriteTrace exports cells as Chrome trace-viewer / Perfetto JSON: one
// process per (cell, node), one thread per task, complete ("X") events per
// span and instant ("i") events per mark, all timestamped in virtual-time
// microseconds.  Load the file in https://ui.perfetto.dev or
// chrome://tracing.
func WriteTrace(w io.Writer, cells []TraceCell) error {
	us := func(t int64) float64 { return float64(t) / 1e3 }
	events := make([]map[string]any, 0, 1024)
	for ci, cell := range cells {
		nodesSeen := map[int]bool{}
		for _, l := range cell.Logs {
			t := l.Task()
			pid := ci*1000 + t.NodeID
			if !nodesSeen[t.NodeID] {
				nodesSeen[t.NodeID] = true
				events = append(events, map[string]any{
					"ph": "M", "name": "process_name", "pid": pid,
					"args": map[string]any{
						"name": fmt.Sprintf("%s node%d", cell.Label, t.NodeID),
					},
				})
				events = append(events, map[string]any{
					"ph": "M", "name": "process_sort_index", "pid": pid,
					"args": map[string]any{"sort_index": pid},
				})
			}
			events = append(events, map[string]any{
				"ph": "M", "name": "thread_name", "pid": pid, "tid": t.ID,
				"args": map[string]any{"name": fmt.Sprintf("task %d", t.ID)},
			})
			for i := range l.Spans() {
				s := &l.Spans()[i]
				name := s.Kind.String()
				if s.Kind == SpanWire && WireArgName != nil {
					name = "wire." + WireArgName(s.Arg)
				}
				events = append(events, map[string]any{
					"ph": "X", "name": name, "cat": s.Kind.String(),
					"pid": pid, "tid": t.ID,
					"ts": us(int64(s.Start)), "dur": us(int64(s.Dur())),
					"args": map[string]any{argKey[s.Kind]: s.Arg},
				})
			}
			for i := range l.Marks() {
				m := &l.Marks()[i]
				events = append(events, map[string]any{
					"ph": "i", "name": m.Kind.String(), "s": "t",
					"pid": pid, "tid": t.ID, "ts": us(int64(m.At)),
					"args": map[string]any{"arg": m.Arg, "val": m.Val},
				})
			}
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(map[string]any{
		"displayTimeUnit": "ns",
		"traceEvents":     events,
	})
}
