// Package profile is the span-structured virtual-time profiler.  It layers
// on the observability invariance rule (docs/OBSERVABILITY.md): spans and
// marks record boundaries the simulation crosses anyway — page-fault
// handling, diff flushes, lock/cond/barrier waits, thread creation, node
// attach, wire ops — and charge nothing, so every deterministic pin
// (table4 bit-identity, fig5 checksums) holds with a profiler attached.
//
// Each task owns a TaskLog, attached through the narrow sim.SpanProbe
// interface; the log is an append-only slice written only by the task's
// goroutine (ring-free: nothing is ever dropped, unlike trace.Ring).  At
// run end the logs merge into a Report — per-span-kind category roll-up,
// per-page heat, per-lock contention — and export as a Chrome
// trace-viewer / Perfetto timeline (WriteTrace).
//
// Accounting model: a span captures the task's cumulative sim.Breakdown at
// open and close; the difference is the span's *inclusive* cost, and its
// *self* cost subtracts the inclusive costs of its direct children.  Self
// costs over a task's span tree therefore telescope to exactly the task's
// own breakdown — the reconciliation invariant the profile tests pin on
// both backends.
package profile

import (
	"sync"

	"cables/internal/sim"
	"cables/internal/stats"
)

// SpanKind classifies one profiled activity.  Values are stable identifiers
// (they cross the sim.SpanProbe boundary as uint8); new kinds are appended.
type SpanKind uint8

// The span inventory (docs/OBSERVABILITY.md lists each kind's emitter).
const (
	// SpanRun is the implicit root covering a task's whole profiled
	// lifetime; Arg is the task id.
	SpanRun SpanKind = iota
	// SpanFault is page-fault handling (validate: fault→fetch→fill); Arg
	// is the page id.
	SpanFault
	// SpanDiff is the diff of one dirty page to its home; Arg is the page id.
	SpanDiff
	// SpanLock is a lock acquisition, including the acquire-side coherence
	// pass; Arg is the lock id.
	SpanLock
	// SpanBarrier is a barrier wait (flush → arrive → release → coherence);
	// Arg is the barrier's name hash.
	SpanBarrier
	// SpanCond is a condition-variable wait; Arg is the cond id.
	SpanCond
	// SpanCreate is thread creation, parent side; Arg is the chosen node.
	SpanCreate
	// SpanAttach is a node attach; Arg is the node id.
	SpanAttach
	// SpanMigrate is a page migration on the CableS memory manager; Arg is
	// the page id.
	SpanMigrate
	// SpanWire is one wire-plane op; Arg is the wire.Kind.
	SpanWire

	numSpanKinds
)

// NumSpanKinds is the number of distinct span kinds.
const NumSpanKinds = int(numSpanKinds)

var spanNames = [NumSpanKinds]string{
	"run", "fault", "diff", "lock", "barrier", "cond",
	"create", "attach", "migrate", "wire",
}

// String returns the span kind's short name (the inventory key).
func (k SpanKind) String() string {
	if int(k) >= NumSpanKinds {
		return "span?"
	}
	return spanNames[k]
}

// MarkKind classifies a point event on a task's timeline.
type MarkKind uint8

// The mark inventory.
const (
	// MarkFill records a page filled from a remote home; Arg is the page
	// id, Val the bytes fetched.
	MarkFill MarkKind = iota
	// MarkLockAcquired records the instant a lock was obtained; Arg is the
	// lock id, Val a LockContended/LockRemote bit set.
	MarkLockAcquired
	// MarkLockReleased records the instant a lock was released; Arg is the
	// lock id.
	MarkLockReleased
	// MarkDelegate records a critical section shipped to a delegation
	// server; Arg is the lock id, Val the server node.
	MarkDelegate
	// MarkMerge records a batched commutative merge sent at a flush; Arg
	// is the home node, Val the merged diff bytes.
	MarkMerge

	numMarkKinds
)

// NumMarkKinds is the number of distinct mark kinds.
const NumMarkKinds = int(numMarkKinds)

var markNames = [NumMarkKinds]string{"fill", "acquired", "released", "delegate", "merge"}

// String returns the mark kind's short name.
func (k MarkKind) String() string {
	if int(k) >= NumMarkKinds {
		return "mark?"
	}
	return markNames[k]
}

// MarkLockAcquired Val bits.
const (
	// LockContended marks an acquire that parked behind the holder.
	LockContended uint64 = 1 << iota
	// LockRemote marks an acquire whose manager was a remote node.
	LockRemote
	// LockDelegated marks an acquire whose critical section was shipped
	// to the lock's delegation server (delegate protocol).
	LockDelegated
)

// WireArgName, when set (package wire registers it at init), names a
// SpanWire Arg — the wire op kind — for report and timeline rendering.
// The indirection keeps profile free of a wire import (wire imports
// profile for the span hook).
var WireArgName func(arg uint64) string

// Span is one closed (or still-open) activity interval of a task.
type Span struct {
	Kind  SpanKind
	Arg   uint64
	Start sim.Time
	End   sim.Time
	// Parent indexes the enclosing span in the same TaskLog; -1 for the root.
	Parent int32

	// Incl is the span's inclusive cost: the task breakdown accumulated
	// between open and close.  (While the span is open it temporarily
	// holds the breakdown snapshot taken at open.)
	Incl sim.Breakdown

	child sim.Breakdown // sum of direct children's Incl
	open  bool
}

// Self returns the span's exclusive cost: inclusive minus direct children.
func (s *Span) Self() sim.Breakdown { return s.Incl.Sub(s.child) }

// Dur returns the span's virtual duration.
func (s *Span) Dur() sim.Time { return s.End - s.Start }

// Mark is one point event of a task.
type Mark struct {
	Kind MarkKind
	Arg  uint64
	Val  uint64
	At   sim.Time
}

// TaskLog is one task's span log.  It implements sim.SpanProbe and is
// written only by the task's goroutine (the probe ownership rule), so it
// needs no locking; read it only after the run has quiesced.
type TaskLog struct {
	task      *sim.Task
	base      sim.Breakdown // breakdown already accumulated at adoption
	spans     []Span
	marks     []Mark
	stack     []int32
	anomalies int // unbalanced closes / spans leaked open at finalize
}

// Task returns the profiled task.
func (l *TaskLog) Task() *sim.Task { return l.task }

// Base returns the breakdown the task had already accumulated when it was
// adopted (non-zero only for tasks profiled mid-life, e.g. a runtime's main
// task attached after initialization).  The reconciliation invariant is
// span self sums == Task().Snapshot() - Base().
func (l *TaskLog) Base() sim.Breakdown { return l.base }

// Spans returns the recorded spans, in open order.  Valid after the run.
func (l *TaskLog) Spans() []Span { return l.spans }

// Marks returns the recorded point events, in time order.
func (l *TaskLog) Marks() []Mark { return l.marks }

// Anomalies reports stack-discipline violations (a close without an open,
// or spans an error unwind left open at finalize).  Zero on a clean run.
func (l *TaskLog) Anomalies() int { return l.anomalies }

// SpanOpen implements sim.SpanProbe.
func (l *TaskLog) SpanOpen(kind uint8, arg uint64, now sim.Time, brk *sim.Breakdown) {
	parent := int32(-1)
	if n := len(l.stack); n > 0 {
		parent = l.stack[n-1]
	}
	l.spans = append(l.spans, Span{
		Kind: SpanKind(kind), Arg: arg, Start: now, Parent: parent,
		Incl: *brk, open: true,
	})
	l.stack = append(l.stack, int32(len(l.spans)-1))
}

// SpanClose implements sim.SpanProbe.
func (l *TaskLog) SpanClose(now sim.Time, brk *sim.Breakdown) {
	n := len(l.stack)
	if n == 0 {
		l.anomalies++
		return
	}
	idx := l.stack[n-1]
	l.stack = l.stack[:n-1]
	s := &l.spans[idx]
	s.End = now
	s.Incl = brk.Sub(s.Incl)
	s.open = false
	if s.Parent >= 0 {
		l.spans[s.Parent].child.AddAll(&s.Incl)
	}
}

// SpanMark implements sim.SpanProbe.
func (l *TaskLog) SpanMark(kind uint8, arg, val uint64, now sim.Time) {
	l.marks = append(l.marks, Mark{Kind: MarkKind(kind), Arg: arg, Val: val, At: now})
}

// finalize closes any spans an unwind left open — at minimum the SpanRun
// root — at the task's final clock and breakdown.  Leaked non-root spans
// count as anomalies.  Call only once the task has quiesced.
func (l *TaskLog) finalize() {
	if len(l.stack) == 0 {
		return
	}
	l.anomalies += len(l.stack) - 1 // everything above the root leaked
	now := l.task.Now()
	brk := l.task.Snapshot()
	for len(l.stack) > 0 {
		l.SpanClose(now, &brk)
	}
}

// Profiler collects the TaskLogs of one run.  Adopt is the only
// cross-goroutine entry point; everything else reads after quiescence.
type Profiler struct {
	mu   sync.Mutex
	logs []*TaskLog

	// Epochs, when set by the attach point, receives a counter snapshot at
	// every barrier release, giving per-epoch counter windows (the
	// stats.EpochLog satellite).
	Epochs *stats.EpochLog
}

// New creates an empty profiler.
func New() *Profiler { return &Profiler{} }

// Adopt attaches a fresh TaskLog to t and opens its SpanRun root.  Call
// before the task's goroutine starts (nodeos.Cluster.NewTask calls it for
// every task when a profiler is installed).  A task that already carries a
// probe is left alone.
func (p *Profiler) Adopt(t *sim.Task) {
	if t.Probe() != nil {
		return
	}
	l := &TaskLog{task: t, base: t.Snapshot()}
	t.SetProbe(l)
	t.OpenSpan(uint8(SpanRun), uint64(t.ID))
	p.mu.Lock()
	p.logs = append(p.logs, l)
	p.mu.Unlock()
}

// Logs returns the adopted task logs, finalized (root spans closed at each
// task's final clock).  Call only after the run has quiesced.
func (p *Profiler) Logs() []*TaskLog {
	p.mu.Lock()
	logs := p.logs
	p.mu.Unlock()
	for _, l := range logs {
		l.finalize()
	}
	return logs
}
