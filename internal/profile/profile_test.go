package profile

import (
	"bytes"
	"encoding/json"
	"testing"

	"cables/internal/sim"
)

// newProfiledTask returns a task adopted by a fresh profiler, plus its log.
func newProfiledTask(t *testing.T, id, node int) (*sim.Task, *TaskLog, *Profiler) {
	t.Helper()
	tk := sim.NewTask(id, node, sim.DefaultCosts())
	p := New()
	p.Adopt(tk)
	l, ok := tk.Probe().(*TaskLog)
	if !ok {
		t.Fatalf("probe is %T, want *TaskLog", tk.Probe())
	}
	return tk, l, p
}

// TestSpanTreeTelescopes pins the accounting model: a span's inclusive cost
// is the breakdown accumulated inside it, self subtracts direct children,
// and self costs over the whole tree telescope to the task's breakdown.
func TestSpanTreeTelescopes(t *testing.T) {
	tk, l, p := newProfiledTask(t, 1, 0)

	tk.Charge(sim.CatCompute, 10*sim.Microsecond) // root self
	tk.OpenSpan(uint8(SpanFault), 42)
	tk.Charge(sim.CatLocal, 5*sim.Microsecond) // fault self
	tk.OpenSpan(uint8(SpanWire), 3)
	tk.Charge(sim.CatComm, 7*sim.Microsecond) // wire self
	tk.CloseSpan()
	tk.Charge(sim.CatLocal, 2*sim.Microsecond) // fault self again
	tk.CloseSpan()
	tk.Charge(sim.CatCompute, 1*sim.Microsecond) // root self

	logs := p.Logs()
	if len(logs) != 1 || logs[0] != l {
		t.Fatalf("Logs() = %v, want the one adopted log", logs)
	}
	if l.Anomalies() != 0 {
		t.Fatalf("anomalies = %d, want 0", l.Anomalies())
	}
	spans := l.Spans()
	if len(spans) != 3 {
		t.Fatalf("len(spans) = %d, want 3", len(spans))
	}
	root, fault, wire := &spans[0], &spans[1], &spans[2]
	if root.Kind != SpanRun || fault.Kind != SpanFault || wire.Kind != SpanWire {
		t.Fatalf("span kinds = %v/%v/%v", root.Kind, fault.Kind, wire.Kind)
	}
	if root.Parent != -1 || fault.Parent != 0 || wire.Parent != 1 {
		t.Fatalf("parents = %d/%d/%d, want -1/0/1", root.Parent, fault.Parent, wire.Parent)
	}
	if got := fault.Incl.Total(); got != 14*sim.Microsecond {
		t.Errorf("fault inclusive = %v, want 14us", got)
	}
	if fs := fault.Self(); fs.Total() != 7*sim.Microsecond {
		t.Errorf("fault self = %v, want 7us", fs.Total())
	}
	if ws := wire.Self(); ws.Total() != 7*sim.Microsecond {
		t.Errorf("wire self = %v, want 7us", ws.Total())
	}
	// The reconciliation invariant, at the single-task level.
	var selves sim.Breakdown
	for i := range spans {
		s := spans[i].Self()
		selves.AddAll(&s)
	}
	want := tk.Snapshot().Sub(l.Base())
	if selves != want {
		t.Errorf("self sum = %v, want task breakdown %v", selves, want)
	}
	if root.Incl != want {
		t.Errorf("root inclusive = %v, want %v", root.Incl, want)
	}
}

// TestAdoptMidLifeBases a task that already accumulated cost before
// adoption: the base is excluded from the profiled breakdown.
func TestAdoptMidLifeBases(t *testing.T) {
	tk := sim.NewTask(1, 0, sim.DefaultCosts())
	tk.Charge(sim.CatLocalOS, 100*sim.Microsecond) // pre-adoption history
	p := New()
	p.Adopt(tk)
	tk.Charge(sim.CatCompute, 5*sim.Microsecond)
	logs := p.Logs()
	l := logs[0]
	if base := l.Base(); base.Total() != 100*sim.Microsecond {
		t.Fatalf("base = %v, want 100us", base.Total())
	}
	if got := l.Spans()[0].Incl.Total(); got != 5*sim.Microsecond {
		t.Errorf("profiled total = %v, want 5us", got)
	}
	// Re-adoption is a no-op.
	p.Adopt(tk)
	if n := len(p.Logs()); n != 1 {
		t.Errorf("re-adopt created a log: %d logs", n)
	}
}

// TestUnbalancedCloseCounts pins anomaly accounting for a close with no
// matching open.
func TestUnbalancedCloseCounts(t *testing.T) {
	tk, l, _ := newProfiledTask(t, 1, 0)
	tk.CloseSpan() // closes the root
	tk.CloseSpan() // nothing left: anomaly
	if l.Anomalies() != 1 {
		t.Errorf("anomalies = %d, want 1", l.Anomalies())
	}
}

// TestFinalizeClosesLeaks pins the error-unwind path: spans left open are
// closed at the task's final clock, non-root leaks count as anomalies, and
// the telescoping invariant still holds.
func TestFinalizeClosesLeaks(t *testing.T) {
	tk, l, p := newProfiledTask(t, 1, 0)
	tk.OpenSpan(uint8(SpanLock), 9)
	tk.Charge(sim.CatWait, 3*sim.Microsecond)
	tk.OpenSpan(uint8(SpanWire), 1)
	tk.Charge(sim.CatComm, 2*sim.Microsecond)
	// No closes: simulate a panic unwind.
	p.Logs()
	if l.Anomalies() != 2 { // lock + wire leaked; the root close is expected
		t.Errorf("anomalies = %d, want 2", l.Anomalies())
	}
	for i := range l.Spans() {
		s := &l.Spans()[i]
		if s.End < s.Start {
			t.Errorf("span %d not closed: [%v,%v]", i, s.Start, s.End)
		}
	}
	var selves sim.Breakdown
	for i := range l.Spans() {
		s := l.Spans()[i].Self()
		selves.AddAll(&s)
	}
	if want := tk.Snapshot().Sub(l.Base()); selves != want {
		t.Errorf("self sum after finalize = %v, want %v", selves, want)
	}
}

// TestReportLockSplit pins the lock contention math on a hand-built
// two-task schedule: task A holds lock 7 for 20us; task B requests it 5us
// in, acquires 2us after A releases (the transfer), having sat behind the
// holder for the rest of its wait.
func TestReportLockSplit(t *testing.T) {
	p := New()
	a := sim.NewTask(1, 0, sim.DefaultCosts())
	b := sim.NewTask(2, 1, sim.DefaultCosts())
	p.Adopt(a)
	p.Adopt(b)

	// Task A: uncontended local acquire at t=10, release at t=30.
	a.OpenSpan(uint8(SpanLock), 7)
	a.Charge(sim.CatLocal, 10*sim.Microsecond)
	a.MarkSpan(uint8(MarkLockAcquired), 7, 0)
	a.CloseSpan()
	a.Charge(sim.CatCompute, 20*sim.Microsecond)
	a.MarkSpan(uint8(MarkLockReleased), 7, 0)

	// Task B: requests at t=5, acquires at t=32 (contended, remote).
	b.Charge(sim.CatCompute, 5*sim.Microsecond)
	b.OpenSpan(uint8(SpanLock), 7)
	b.Charge(sim.CatWait, 27*sim.Microsecond)
	b.MarkSpan(uint8(MarkLockAcquired), 7, LockContended|LockRemote)
	b.CloseSpan()
	b.Charge(sim.CatCompute, 8*sim.Microsecond)
	b.MarkSpan(uint8(MarkLockReleased), 7, 0)

	r := Build(p.Logs())
	if len(r.Locks) != 1 {
		t.Fatalf("locks = %d, want 1", len(r.Locks))
	}
	ls := r.Locks[0]
	if ls.Lock != 7 || ls.Acquires != 2 || ls.Contended != 1 || ls.Remote != 1 {
		t.Fatalf("lock stat = %+v", ls)
	}
	us := sim.Microsecond
	if ls.Wait != 10*us+27*us || ls.MaxWait != 27*us {
		t.Errorf("wait = %v max %v, want 37us max 27us", ls.Wait, ls.MaxWait)
	}
	if ls.Transfer != 2*us {
		t.Errorf("transfer = %v, want 2us", ls.Transfer)
	}
	if ls.HoldBlocked != 25*us {
		t.Errorf("holdBlocked = %v, want 25us", ls.HoldBlocked)
	}
	if ls.Hold != 20*us+8*us || ls.MaxHold != 20*us {
		t.Errorf("hold = %v max %v, want 28us max 20us", ls.Hold, ls.MaxHold)
	}
}

// TestReportPagesAndKinds pins page heat aggregation and the report-level
// reconciliation helpers.
func TestReportPagesAndKinds(t *testing.T) {
	p := New()
	tk := sim.NewTask(1, 0, sim.DefaultCosts())
	p.Adopt(tk)
	for i := 0; i < 3; i++ {
		tk.OpenSpan(uint8(SpanFault), 5)
		tk.Charge(sim.CatLocal, sim.Time(i+1)*sim.Microsecond)
		if i == 0 {
			tk.MarkSpan(uint8(MarkFill), 5, 4096)
		}
		tk.CloseSpan()
	}
	tk.OpenSpan(uint8(SpanDiff), 5)
	tk.Charge(sim.CatLocal, sim.Microsecond)
	tk.CloseSpan()
	tk.OpenSpan(uint8(SpanFault), 6)
	tk.Charge(sim.CatLocal, 10*sim.Microsecond)
	tk.CloseSpan()

	r := Build(p.Logs())
	if len(r.Pages) != 2 {
		t.Fatalf("pages = %d, want 2", len(r.Pages))
	}
	// Page 6 stalls longest, so it sorts first.
	if r.Pages[0].Page != 6 || r.Pages[0].Stall != 10*sim.Microsecond {
		t.Errorf("hottest page = %+v", r.Pages[0])
	}
	p5 := r.Pages[1]
	if p5.Faults != 3 || p5.Fills != 1 || p5.Diffs != 1 {
		t.Errorf("page 5 = %+v", p5)
	}
	if p5.Stall != 6*sim.Microsecond || p5.MaxStall != 3*sim.Microsecond {
		t.Errorf("page 5 stall = %v max %v", p5.Stall, p5.MaxStall)
	}
	if r.KindSum() != r.Total {
		t.Errorf("KindSum %v != Total %v", r.KindSum(), r.Total)
	}
	if got := r.FaultTime(); got != 16*sim.Microsecond {
		t.Errorf("FaultTime = %v, want 16us", got)
	}
	if r.Kinds[SpanFault].Count != 4 || r.Kinds[SpanDiff].Count != 1 {
		t.Errorf("kind counts = %+v", r.Kinds)
	}
}

// TestWriteTraceShape decodes an exported timeline and checks the Chrome
// trace-viewer contract: the traceEvents wrapper, metadata rows, and
// complete events with non-negative microsecond timestamps.
func TestWriteTraceShape(t *testing.T) {
	p := New()
	tk := sim.NewTask(3, 1, sim.DefaultCosts())
	p.Adopt(tk)
	tk.OpenSpan(uint8(SpanFault), 8)
	tk.Charge(sim.CatLocal, 4*sim.Microsecond)
	tk.MarkSpan(uint8(MarkFill), 8, 4096)
	tk.CloseSpan()

	var buf bytes.Buffer
	if err := WriteTrace(&buf, []TraceCell{{Label: "X/genima p=1", Logs: p.Logs()}}); err != nil {
		t.Fatalf("WriteTrace: %v", err)
	}
	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Ph   string  `json:"ph"`
			Name string  `json:"name"`
			Pid  int     `json:"pid"`
			Tid  int     `json:"tid"`
			Ts   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("exported trace is not JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ns" {
		t.Errorf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	var meta, complete, instant int
	for _, e := range doc.TraceEvents {
		switch e.Ph {
		case "M":
			meta++
		case "X":
			complete++
			if e.Ts < 0 || e.Dur < 0 {
				t.Errorf("negative ts/dur on %q: ts=%v dur=%v", e.Name, e.Ts, e.Dur)
			}
		case "i":
			instant++
		default:
			t.Errorf("unknown phase %q", e.Ph)
		}
	}
	// process_name + process_sort_index + thread_name; run + fault; fill.
	if meta != 3 || complete != 2 || instant != 1 {
		t.Errorf("events = %d meta / %d complete / %d instant, want 3/2/1",
			meta, complete, instant)
	}
	// The fault span is 4us wide in a trace timestamped in microseconds.
	for _, e := range doc.TraceEvents {
		if e.Ph == "X" && e.Name == "fault" && e.Dur != 4 {
			t.Errorf("fault dur = %vus, want 4", e.Dur)
		}
	}
}

// TestSpanKindNames keeps the inventory names stable: they key the
// docs/OBSERVABILITY.md tables that cmd/doccheck enforces.
func TestSpanKindNames(t *testing.T) {
	want := []string{"run", "fault", "diff", "lock", "barrier", "cond",
		"create", "attach", "migrate", "wire"}
	for i, name := range want {
		if got := SpanKind(i).String(); got != name {
			t.Errorf("SpanKind(%d) = %q, want %q", i, got, name)
		}
	}
	if SpanKind(NumSpanKinds).String() != "span?" {
		t.Errorf("out-of-range kind not flagged")
	}
	for i, name := range []string{"fill", "acquired", "released"} {
		if got := MarkKind(i).String(); got != name {
			t.Errorf("MarkKind(%d) = %q, want %q", i, got, name)
		}
	}
}
