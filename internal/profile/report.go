package profile

import (
	"sort"

	"cables/internal/sim"
)

// KindTotal aggregates one span kind across a cell: how many spans and the
// sum of their self (exclusive) breakdowns.
type KindTotal struct {
	Count int
	Self  sim.Breakdown
}

// TaskProfile summarizes one task: its SpanRun root's inclusive breakdown
// (== the task's own sim breakdown accumulated while profiled) and span
// count.
type TaskProfile struct {
	ID    int
	Node  int
	Total sim.Breakdown
	Spans int
}

// PageStat is one page's heat: how often it faulted, filled remotely,
// diffed and migrated, and how much virtual time threads stalled in its
// fault handling (inclusive over fault spans).
type PageStat struct {
	Page       uint64
	Faults     int
	Fills      int
	Diffs      int
	Migrations int
	Stall      sim.Time
	MaxStall   sim.Time
}

// LockStat is one lock's contention profile.  Wait is the request→acquire
// interval summed over acquires; for contended acquires it splits into
// Transfer (the grant's wire latency after the holder released) and
// HoldBlocked (time the waiter sat behind the holder).  Hold is the total
// time the lock was held (acquire→release, paired globally).
type LockStat struct {
	Lock        uint64
	Acquires    int
	Contended   int
	Remote      int
	Wait        sim.Time
	MaxWait     sim.Time
	Transfer    sim.Time
	HoldBlocked sim.Time
	Hold        sim.Time
	MaxHold     sim.Time
}

// Report is the merged profile of one run (one (app, procs, backend) cell).
type Report struct {
	// Tasks, in adoption order (task ids ascend).
	Tasks []TaskProfile
	// Kinds aggregates self costs per span kind; Kinds[SpanRun] is the
	// time outside any instrumented activity.
	Kinds [NumSpanKinds]KindTotal
	// Total is the sum of all tasks' profiled breakdowns; it equals the
	// category-wise sum over Kinds (the reconciliation invariant).
	Total sim.Breakdown
	// Pages, hottest (most stall) first.
	Pages []PageStat
	// Locks, most waited-on first.
	Locks []LockStat
	// Barriers counts barrier spans; BarrierWait is their total self time.
	Barriers    int
	BarrierWait sim.Time
	// Anomalies sums stack-discipline violations across tasks (non-zero
	// only when an error unwound a task mid-span).
	Anomalies int
}

// lockEvent is one acquire or release, ordered globally per lock to pair
// hold intervals and compute the wait split.
type lockEvent struct {
	lock    uint64
	at      sim.Time
	acquire bool
	reqAt   sim.Time // acquire only: when the wait began (span start)
	flags   uint64   // acquire only: LockContended | LockRemote
}

// Build merges finalized task logs into a report.
func Build(logs []*TaskLog) *Report {
	r := &Report{}
	pages := make(map[uint64]*PageStat)
	locks := make(map[uint64]*LockStat)
	var events []lockEvent

	for _, l := range logs {
		r.Anomalies += l.anomalies
		spans := l.Spans()
		tp := TaskProfile{ID: l.task.ID, Node: l.task.NodeID, Spans: len(spans)}
		if len(spans) > 0 && spans[0].Kind == SpanRun {
			tp.Total = spans[0].Incl
		}
		r.Tasks = append(r.Tasks, tp)
		r.Total.AddAll(&tp.Total)

		for i := range spans {
			s := &spans[i]
			kt := &r.Kinds[s.Kind]
			kt.Count++
			self := s.Self()
			kt.Self.AddAll(&self)
			switch s.Kind {
			case SpanFault:
				ps := pageStat(pages, s.Arg)
				ps.Faults++
				ps.Stall += s.Dur()
				if d := s.Dur(); d > ps.MaxStall {
					ps.MaxStall = d
				}
			case SpanDiff:
				pageStat(pages, s.Arg).Diffs++
			case SpanMigrate:
				pageStat(pages, s.Arg).Migrations++
			case SpanBarrier:
				r.Barriers++
				r.BarrierWait += s.Dur()
			}
		}

		// Pair each lock span with the acquire mark it contains.  Spans of
		// one task are sequential and marks are in time order, so a single
		// forward cursor suffices.
		marks := l.Marks()
		cursor := 0
		for i := range spans {
			s := &spans[i]
			if s.Kind != SpanLock {
				continue
			}
			for cursor < len(marks) && marks[cursor].At < s.Start {
				cursor++
			}
			for j := cursor; j < len(marks) && marks[j].At <= s.End; j++ {
				m := &marks[j]
				if m.Kind == MarkLockAcquired && m.Arg == s.Arg {
					events = append(events, lockEvent{
						lock: m.Arg, at: m.At, acquire: true,
						reqAt: s.Start, flags: m.Val,
					})
					cursor = j + 1
					break
				}
			}
		}
		for i := range marks {
			m := &marks[i]
			switch m.Kind {
			case MarkFill:
				pageStat(pages, m.Arg).Fills++
			case MarkLockReleased:
				events = append(events, lockEvent{lock: m.Arg, at: m.At})
			}
		}
	}

	// Global per-lock walk: releases sort before acquires at equal instants
	// (a release enables the next acquire).
	sort.Slice(events, func(i, j int) bool {
		a, b := events[i], events[j]
		if a.lock != b.lock {
			return a.lock < b.lock
		}
		if a.at != b.at {
			return a.at < b.at
		}
		return !a.acquire && b.acquire
	})
	lastRelease := sim.Time(-1)
	lastAcquire := sim.Time(-1)
	var cur uint64
	for i := range events {
		e := &events[i]
		if i == 0 || e.lock != cur {
			cur, lastRelease, lastAcquire = e.lock, -1, -1
		}
		ls := locks[e.lock]
		if ls == nil {
			ls = &LockStat{Lock: e.lock}
			locks[e.lock] = ls
		}
		if !e.acquire {
			if lastAcquire >= 0 {
				hold := e.at - lastAcquire
				ls.Hold += hold
				if hold > ls.MaxHold {
					ls.MaxHold = hold
				}
				lastAcquire = -1
			}
			lastRelease = e.at
			continue
		}
		ls.Acquires++
		wait := e.at - e.reqAt
		if wait < 0 {
			wait = 0
		}
		ls.Wait += wait
		if wait > ls.MaxWait {
			ls.MaxWait = wait
		}
		if e.flags&LockRemote != 0 {
			ls.Remote++
		}
		if e.flags&LockContended != 0 {
			ls.Contended++
			transfer := sim.Time(0)
			if lastRelease >= 0 {
				transfer = e.at - lastRelease
			}
			if transfer < 0 {
				transfer = 0
			}
			if transfer > wait {
				transfer = wait
			}
			ls.Transfer += transfer
			ls.HoldBlocked += wait - transfer
		}
		lastAcquire = e.at
	}

	r.Pages = make([]PageStat, 0, len(pages))
	for _, ps := range pages {
		r.Pages = append(r.Pages, *ps)
	}
	sort.Slice(r.Pages, func(i, j int) bool {
		if r.Pages[i].Stall != r.Pages[j].Stall {
			return r.Pages[i].Stall > r.Pages[j].Stall
		}
		return r.Pages[i].Page < r.Pages[j].Page
	})
	r.Locks = make([]LockStat, 0, len(locks))
	for _, ls := range locks {
		r.Locks = append(r.Locks, *ls)
	}
	sort.Slice(r.Locks, func(i, j int) bool {
		if r.Locks[i].Wait != r.Locks[j].Wait {
			return r.Locks[i].Wait > r.Locks[j].Wait
		}
		return r.Locks[i].Lock < r.Locks[j].Lock
	})
	sort.Slice(r.Tasks, func(i, j int) bool { return r.Tasks[i].ID < r.Tasks[j].ID })
	return r
}

func pageStat(m map[uint64]*PageStat, pid uint64) *PageStat {
	ps := m[pid]
	if ps == nil {
		ps = &PageStat{Page: pid}
		m[pid] = ps
	}
	return ps
}

// KindSum returns the category-wise sum over all span kinds' self costs.
// The reconciliation invariant is KindSum() == Total.
func (r *Report) KindSum() sim.Breakdown {
	var b sim.Breakdown
	for i := range r.Kinds {
		b.AddAll(&r.Kinds[i].Self)
	}
	return b
}

// FaultTime returns the cell's total page-fault handling time (inclusive
// over fault spans); it equals the sum of per-page stalls.
func (r *Report) FaultTime() sim.Time {
	var t sim.Time
	for i := range r.Pages {
		t += r.Pages[i].Stall
	}
	return t
}
