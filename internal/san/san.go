// Package san models the system-area network fabric (Myrinet in the paper):
// point-to-point message latencies, per-NIC occupancy (bandwidth and
// contention), and traffic accounting.  It knows nothing about registration
// or protocols; package vmmc layers those on top.
//
// An optional fault injector (SetFault, see internal/fault) makes sends and
// fetches suffer deterministic transient failures: each failed attempt costs
// the sender a full transfer timeout plus exponential backoff before the
// retry, bounded by fault.MaxSendRetries — faults stretch virtual time but
// never lose data.
package san

import (
	"fmt"
	"sync/atomic"

	"cables/internal/fault"
	"cables/internal/sim"
	"cables/internal/stats"
)

// Fabric is the interconnect connecting all cluster nodes.
type Fabric struct {
	costs *sim.Costs
	ctr   *stats.Counters
	inj   *fault.Injector // nil = no fault injection
	ports []port
}

// port models one NIC's transmit engine: it is busy until freeAt (virtual
// time), serializing back-to-back transfers at the link bandwidth.
type port struct {
	freeAt atomic.Int64
	_      [7]int64 // avoid false sharing between ports
}

// New creates a fabric with one NIC port per node.
func New(nodes int, costs *sim.Costs, ctr *stats.Counters) *Fabric {
	if nodes <= 0 {
		panic(fmt.Sprintf("san: invalid node count %d", nodes))
	}
	return &Fabric{costs: costs, ctr: ctr, ports: make([]port, nodes)}
}

// SetFault installs a fault injector; sends and fetches then suffer the
// plan's transient failures (each failed attempt costs a full transfer
// timeout plus exponential backoff before the retry).  nil disables
// injection.
func (f *Fabric) SetFault(inj *fault.Injector) { f.inj = inj }

// Nodes returns the number of nodes on the fabric.
func (f *Fabric) Nodes() int { return len(f.ports) }

// Costs exposes the cost table (layers above share it).
func (f *Fabric) Costs() *sim.Costs { return f.costs }

// Counters exposes the shared event counters.
func (f *Fabric) Counters() *stats.Counters { return f.ctr }

// Reserve books the src port for occ starting no earlier than now and
// returns the transmission start time.  The wire plane uses it to make
// control traffic (lock grants, barrier arrivals) queue behind data
// transfers under -contended-sync; data transfers reserve implicitly via
// Send/Fetch.
func (f *Fabric) Reserve(src int, now, occ sim.Time) sim.Time {
	if src < 0 || src >= len(f.ports) {
		panic(fmt.Sprintf("san: node out of range (src=%d nodes=%d)", src, len(f.ports)))
	}
	return f.reserve(src, now, occ)
}

// reserve books the src port for occ starting no earlier than now and
// returns the transmission start time.
func (f *Fabric) reserve(src int, now, occ sim.Time) sim.Time {
	p := &f.ports[src]
	for {
		free := sim.Time(p.freeAt.Load())
		start := sim.MaxTime(now, free)
		if p.freeAt.CompareAndSwap(int64(free), int64(start+occ)) {
			return start
		}
	}
}

// Send models a one-way transfer of size payload bytes from src to dst and
// returns the total virtual duration experienced by the sender's thread
// (queueing for the NIC + end-to-end latency).
func (f *Fabric) Send(t *sim.Task, src, dst, size int) sim.Time {
	f.checkNodes(src, dst)
	now := t.Now()
	// Each transiently failed attempt costs a full transfer timeout plus
	// backoff before the wire is tried again; past MaxSendRetries the
	// transfer goes through regardless (faults delay, they never lose data).
	var penalty sim.Time
	for a := 0; a < fault.MaxSendRetries && f.inj.FailSend(src, dst, a, now); a++ {
		penalty += f.costs.SendTime(size) + fault.Backoff(a)
	}
	start := f.reserve(src, now, f.costs.Occupancy(size))
	d := (start - now) + penalty + f.costs.SendTime(size)
	f.ctr.Add(src, stats.EvMessagesSent, 1)
	f.ctr.Add(src, stats.EvBytesSent, int64(size))
	return d
}

// Fetch models a direct remote read (round trip) of size bytes from src's
// point of view, pulling from dst.  The remote side's DMA engine serves the
// read without remote-processor intervention, so only the requester's NIC is
// reserved (for the returning payload).
func (f *Fabric) Fetch(t *sim.Task, src, dst, size int) sim.Time {
	f.checkNodes(src, dst)
	now := t.Now()
	var penalty sim.Time
	for a := 0; a < fault.MaxSendRetries && f.inj.FailFetch(src, dst, a, now); a++ {
		penalty += f.costs.FetchTime(size) + fault.Backoff(a)
	}
	start := f.reserve(src, now, f.costs.Occupancy(size))
	d := (start - now) + penalty + f.costs.FetchTime(size)
	f.ctr.Add(src, stats.EvFetches, 1)
	f.ctr.Add(src, stats.EvBytesFetched, int64(size))
	return d
}

func (f *Fabric) checkNodes(src, dst int) {
	if src < 0 || src >= len(f.ports) || dst < 0 || dst >= len(f.ports) {
		panic(fmt.Sprintf("san: node out of range (src=%d dst=%d nodes=%d)",
			src, dst, len(f.ports)))
	}
}
