package san

import (
	"sync"
	"testing"

	"cables/internal/sim"
	"cables/internal/stats"
)

func newFabric(nodes int) (*Fabric, *stats.Counters) {
	ctr := stats.NewCounters(4)
	return New(nodes, sim.DefaultCosts(), ctr), ctr
}

func TestSendLatencyMatchesCostTable(t *testing.T) {
	f, ctr := newFabric(2)
	task := sim.NewTask(1, 0, f.Costs())
	d := f.Send(task, 0, 1, 8)
	if want := f.Costs().SendTime(8); d != want {
		t.Errorf("idle send: got %v want %v", d, want)
	}
	if ctr.Load(stats.EvMessagesSent) != 1 || ctr.Load(stats.EvBytesSent) != 8 {
		t.Errorf("counters: %v", ctr)
	}
}

func TestFetchLatencyMatchesCostTable(t *testing.T) {
	f, ctr := newFabric(2)
	task := sim.NewTask(1, 0, f.Costs())
	d := f.Fetch(task, 0, 1, 4096)
	if want := f.Costs().FetchTime(4096); d != want {
		t.Errorf("idle fetch: got %v want %v", d, want)
	}
	if ctr.Load(stats.EvFetches) != 1 || ctr.Load(stats.EvBytesFetched) != 4096 {
		t.Errorf("counters: %v", ctr)
	}
}

// TestNICOccupancySerializes: back-to-back sends from one node queue behind
// each other at link bandwidth.
func TestNICOccupancySerializes(t *testing.T) {
	f, _ := newFabric(2)
	task := sim.NewTask(1, 0, f.Costs())
	const size = 64 << 10
	d1 := f.Send(task, 0, 1, size)
	d2 := f.Send(task, 0, 1, size) // task clock unchanged: queues behind d1
	occ := f.Costs().Occupancy(size)
	if d2 < d1+occ-sim.Microsecond {
		t.Errorf("second send did not queue: d1=%v d2=%v occ=%v", d1, d2, occ)
	}
}

// TestDistinctPortsDoNotContend: senders on different nodes are independent.
func TestDistinctPortsDoNotContend(t *testing.T) {
	f, _ := newFabric(3)
	t0 := sim.NewTask(1, 0, f.Costs())
	t1 := sim.NewTask(2, 1, f.Costs())
	const size = 64 << 10
	d0 := f.Send(t0, 0, 2, size)
	d1 := f.Send(t1, 1, 2, size)
	if d0 != d1 {
		t.Errorf("independent ports disagree: %v vs %v", d0, d1)
	}
}

// TestConcurrentReserveIsRaceFreeAndConserving: total occupancy booked under
// contention equals the sum of individual occupancies.
func TestConcurrentReserveIsRaceFreeAndConserving(t *testing.T) {
	f, _ := newFabric(2)
	const senders, msgs, size = 8, 50, 4096
	var wg sync.WaitGroup
	for s := 0; s < senders; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			task := sim.NewTask(1, 0, f.Costs())
			for i := 0; i < msgs; i++ {
				f.Send(task, 0, 1, size)
			}
		}()
	}
	wg.Wait()
	free := sim.Time(f.ports[0].freeAt.Load())
	want := f.Costs().Occupancy(size) * senders * msgs
	if free != want {
		t.Errorf("booked occupancy: got %v want %v", free, want)
	}
}

func TestNodeRangeChecks(t *testing.T) {
	f, _ := newFabric(2)
	task := sim.NewTask(1, 0, f.Costs())
	for _, fn := range []func(){
		func() { f.Send(task, 0, 5, 8) },
		func() { f.Fetch(task, -1, 0, 8) },
		func() { New(0, sim.DefaultCosts(), stats.NewCounters(4)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}
