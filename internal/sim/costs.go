package sim

// Costs is the calibrated virtual-time cost table.  The communication
// constants reproduce the paper's Table 3 (VMMC on Myrinet with PentiumPro
// hosts); the library and OS constants reproduce the direct-cost rows of
// Table 4.  All values are virtual durations; experiments derive every
// reported number from these plus the protocol's message/fault counts.
type Costs struct {
	// --- VMMC / SAN (Table 3) ---

	// SendBase is the fixed one-way cost of a send, excluding per-byte time.
	SendBase Time
	// SendPerByte is the additional one-way latency per payload byte.
	// Calibrated from the 1-word (7.8us) and 4KB (52us) send latencies.
	SendPerByte float64
	// FetchBase is the fixed round-trip cost of a direct remote read.
	FetchBase Time
	// FetchPerByte is the additional round-trip latency per fetched byte.
	// Calibrated from the 1-word (22us) and 4KB (81us) fetch latencies.
	FetchPerByte float64
	// OccupancyPerByte is per-byte NIC/link occupancy; its inverse is the
	// streaming bandwidth (125 MB/s in the paper).
	OccupancyPerByte float64
	// Notification is the extra receiver-side cost of delivering a
	// notification (handler dispatch), on top of the carrying send.
	Notification Time

	// --- Node operating system (WindowsNT model unless reconfigured) ---

	// OSThreadCreate is the local OS cost of creating a kernel thread.
	OSThreadCreate Time
	// OSRemoteThreadCreate is the remote OS share of a remote thread create.
	OSRemoteThreadCreate Time
	// OSProcessCreate is the OS cost of creating a process on a node being
	// attached to the application.
	OSProcessCreate Time
	// OSMapSegment is the OS cost of (re)mapping a virtual-memory segment.
	OSMapSegment Time
	// OSBlockWake is the cost of waking a thread that blocked on an OS event
	// (the slow half of spin-then-block synchronization).
	OSBlockWake Time
	// SpinBeforeBlock is how long a synchronization primitive spins before
	// parking the thread on an OS event.
	SpinBeforeBlock Time
	// MapGranularity is the smallest unit, in bytes, at which the OS can remap
	// virtual memory.  WindowsNT: 64 KB; this single constant drives the
	// paper's data-placement overhead results.
	MapGranularity int

	// --- CableS library processing (Table 4 direct costs) ---

	ThreadCreateLocal     Time // library work for a local pthread_create
	ThreadCreateReqLocal  Time // local library work for a remote create
	ThreadCreateReqRemote Time // remote library work for a remote create
	ThreadCreateComm      Time // communication share of a remote create

	AttachLocal    Time // master-side library work when attaching a node
	AttachLocalOS  Time // master-side OS work when attaching a node
	AttachRemote   Time // new-node library initialization
	AttachRemoteOS Time // new-node process creation (OS)
	AttachComm     Time // mapping-exchange communication
	AttachTotal    Time // observed wall time (parts overlap; < sum of above)

	MutexLocalFast      Time // lock already cached on this node
	MutexLocalFirstBase Time // first acquire, local: library share
	MutexLocalFirstComm Time // first acquire, local: registration comm
	MutexRemoteBase     Time // lock last held on another node: library share
	MutexRemoteRemote   Time // ...: remote-node library share
	MutexRemoteComm     Time // ...: communication share
	MutexRemoteFirstAdd Time // extra comm on very first remote acquire
	MutexUnlock         Time

	CondWaitLocal   Time // library share of a condition wait
	CondWaitComm    Time // ACB update communication of a condition wait
	CondSignalLocal Time
	CondSignalOS    Time
	CondSignalComm  Time
	CondBcastLocal  Time
	CondBcastOS     Time
	CondBcastComm   Time // per waiting node

	BarrierNative     Time // GeNIMA native barrier, fixed share
	BarrierNativeComm Time // GeNIMA native barrier, communication share

	SegMigrateLocal    Time // segment migration: library share
	SegMigrateLocalOS  Time // segment migration: OS remap share
	SegMigrateComm     Time // segment migration off the ACB owner: comm share
	SegDetectLocal     Time // owner detect, information cached
	SegDetectFirstComm Time // owner detect, first time: directory fetch
	AdminReqLocal      Time // administration request: library share
	AdminReqComm       Time // administration request: communication share

	// --- Protocol processing (GeNIMA page handling) ---

	FaultHandler Time // fixed software fault-handling cost per page fault
	DiffCreate   Time // twin comparison cost per dirty page
	DiffPerByte  float64
	WriteNotice  Time // per write notice processed at an acquire

	// --- Application modelling ---

	// MemAccess is the charged cost of one shared-memory access that hits in
	// local memory (amortized cache/DRAM model).
	MemAccess Time
	// ComputeScale scales Compute() charges (1.0 = PentiumPro-era baseline).
	ComputeScale float64
}

// DefaultCosts returns the cost table calibrated against the paper.
func DefaultCosts() *Costs {
	return &Costs{
		// Table 3. 1-word send: 7.71us + 8B*10.8ns ~= 7.8us.
		// 4KB send: 7.71us + 4096B*10.8ns ~= 52us.
		SendBase:    7710 * Nanosecond,
		SendPerByte: 10.8,
		// 1-word fetch: 21.9us + 8B*14.4ns ~= 22us; 4KB: ~81us.
		FetchBase:    21880 * Nanosecond,
		FetchPerByte: 14.4,
		// 125 MB/s => 8 ns per byte.
		OccupancyPerByte: 8.0,
		Notification:     10200 * Nanosecond, // 7.8us send + 10.2us = 18us

		OSThreadCreate:       626 * Microsecond,
		OSRemoteThreadCreate: 622 * Microsecond,
		OSProcessCreate:      2031 * Millisecond,
		OSMapSegment:         66 * Microsecond,
		OSBlockWake:          1500 * Microsecond,
		SpinBeforeBlock:      200 * Microsecond,
		MapGranularity:       64 << 10,

		ThreadCreateLocal:     140 * Microsecond,
		ThreadCreateReqLocal:  110 * Microsecond,
		ThreadCreateReqRemote: 40 * Microsecond,
		ThreadCreateComm:      47 * Microsecond,

		AttachLocal:    1 * Millisecond,
		AttachLocalOS:  523 * Millisecond,
		AttachRemote:   1978 * Millisecond,
		AttachRemoteOS: 2031 * Millisecond,
		AttachComm:     1188 * Millisecond,
		AttachTotal:    3690 * Millisecond,

		MutexLocalFast:      4 * Microsecond,
		MutexLocalFirstBase: 10 * Microsecond,
		MutexLocalFirstComm: 23 * Microsecond,
		MutexRemoteBase:     16 * Microsecond,
		MutexRemoteRemote:   35 * Microsecond,
		MutexRemoteComm:     50 * Microsecond,
		MutexRemoteFirstAdd: 22 * Microsecond,
		MutexUnlock:         6 * Microsecond,

		CondWaitLocal:   5 * Microsecond,
		CondWaitComm:    15 * Microsecond,
		CondSignalLocal: 14 * Microsecond,
		CondSignalOS:    2 * Microsecond,
		CondSignalComm:  85 * Microsecond,
		CondBcastLocal:  7 * Microsecond,
		CondBcastOS:     2 * Microsecond,
		CondBcastComm:   101 * Microsecond,

		BarrierNative:     5 * Microsecond,
		BarrierNativeComm: 65 * Microsecond,

		SegMigrateLocal:    92 * Microsecond,
		SegMigrateLocalOS:  67 * Microsecond,
		SegMigrateComm:     92 * Microsecond,
		SegDetectLocal:     1 * Microsecond,
		SegDetectFirstComm: 22 * Microsecond,
		AdminReqLocal:      2 * Microsecond,
		AdminReqComm:       18 * Microsecond,

		FaultHandler: 30 * Microsecond,
		DiffCreate:   15 * Microsecond,
		DiffPerByte:  2.0,
		WriteNotice:  1 * Microsecond,

		MemAccess:    20 * Nanosecond,
		ComputeScale: 1.0,
	}
}

// SendTime returns the one-way latency of a message carrying size bytes.
func (c *Costs) SendTime(size int) Time {
	return c.SendBase + Time(float64(size)*c.SendPerByte)
}

// FetchTime returns the round-trip latency of a direct remote read of size
// bytes.
func (c *Costs) FetchTime(size int) Time {
	return c.FetchBase + Time(float64(size)*c.FetchPerByte)
}

// Occupancy returns how long size bytes occupy a NIC (inverse bandwidth).
func (c *Costs) Occupancy(size int) Time {
	return Time(float64(size) * c.OccupancyPerByte)
}

// DiffTime returns the cost of creating and shipping a diff of size bytes.
func (c *Costs) DiffTime(size int) Time {
	return c.DiffCreate + Time(float64(size)*c.DiffPerByte)
}

// LinuxOS reconfigures the OS-dependent constants to a Linux-like profile:
// 4 KB remap granularity and cheaper thread creation.  Used by the ablation
// benchmarks; the paper ports CableS to Linux as future work.
func (c *Costs) LinuxOS() *Costs {
	c.MapGranularity = 4 << 10
	c.OSThreadCreate = 120 * Microsecond
	c.OSRemoteThreadCreate = 120 * Microsecond
	c.OSProcessCreate = 400 * Millisecond
	c.OSMapSegment = 12 * Microsecond
	return c
}
