package sim

import (
	"math"
	"runtime"
	"sync"
	"sync/atomic"
)

// preemptSlack is how far ahead of the earliest ready peer (in virtual
// time) a running task may compute before Preempt hands its slot over.  A
// generous slack bounds the host cost of leapfrog switching — virtual
// compute is nearly free on the host, so switching at every quantum would
// cost more wall-clock than it saves — while still keeping dynamic-queue
// work distribution close to virtual-time order.
const preemptSlack = 20 * schedQuantum

// emptyKey is the ready-queue minimum when nothing is queued.
const emptyKey = math.MaxInt64

// EventScheduler is the event-driven backend: a virtual-time-ordered run
// queue — one min-heap per simulated node, a top-level heap over the nodes'
// earliest entries (the hierarchical run-queue shape of Thibault's flexible
// scheduler for hierarchical machines) — feeding a bounded pool of host
// execution slots.
//
// Managed tasks still own a goroutine each (application code blocks for
// real), but the scheduler decides which of them execute: a task runs only
// while holding one of Workers slots, releases the slot when it parks or
// blocks, and rejoins the run queue keyed by its virtual clock when it
// becomes ready.  Slots are granted strictly to the earliest queued task,
// so real execution order tracks virtual-time order by construction and no
// per-charge host yields (runtime.Gosched) are needed at all — the saving
// that makes this backend fast on oversubscribed hosts.
//
// Unmanaged tasks (main/coordinator threads) are not slot-disciplined;
// their park/unpark degrade to the plain channel hand-off.
type EventScheduler struct {
	workers int

	mu    sync.Mutex
	free  int          // unheld execution slots; > 0 implies empty queues
	nodes []*nodeQueue // lazily created per-node sub-queues, by node id
	order nodeHeap     // non-empty sub-queues, keyed by their earliest entry
	seq   uint64       // global FIFO tiebreak for equal virtual keys

	// minReady caches the earliest queued key (emptyKey when none) so
	// Preempt's fast path is one atomic load, no lock.
	minReady atomic.Int64
}

// NewEventScheduler builds an event scheduler with the given slot count;
// workers <= 0 selects GOMAXPROCS.  One slot gives a fully serialized,
// deterministic interleaving; more slots trade determinism of virtual-time
// jitter for host parallelism inside a single simulation.
func NewEventScheduler(workers int) *EventScheduler {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	s := &EventScheduler{workers: workers, free: workers}
	s.minReady.Store(emptyKey)
	return s
}

// Name implements Scheduler.
func (s *EventScheduler) Name() string { return SchedEvent }

// Workers returns the execution-slot count.
func (s *EventScheduler) Workers() int { return s.workers }

// eventTask is the per-managed-task scheduler state, owned by the task's
// goroutine except for the queue fields, which s.mu guards.
type eventTask struct {
	t     *Task
	token chan struct{} // slot grant; buffered so dispatch never blocks
	key   Time          // queued virtual instant
	seq   uint64        // FIFO tiebreak
	pos   int           // index within the node sub-heap
}

// Go implements Scheduler: the task's goroutine starts immediately but fn
// runs only once the task is admitted to a slot, and the slot is returned
// when fn unwinds.
func (s *EventScheduler) Go(t *Task, fn func()) {
	et := &eventTask{t: t, token: make(chan struct{}, 1), pos: -1}
	t.evt = et
	go func() {
		s.ready(et, t.Now())
		defer s.releaseSlot()
		fn()
	}()
}

// Park implements Scheduler: give up the slot, wait for the hand-off, then
// rejoin the run queue at the granted instant.
func (s *EventScheduler) Park(t *Task) Time {
	et := t.evt
	if et == nil {
		return <-t.grant
	}
	s.releaseSlot()
	v := <-t.grant
	s.ready(et, MaxTime(t.Now(), v))
	return v
}

// ParkCancelable implements Scheduler.  Both outcomes readmit the task
// before returning, so an abandoning primitive may drain an in-flight grant
// while holding its slot: granters never need a slot between claiming a
// waiter and delivering (the grant channel is buffered), so the drain
// cannot deadlock the pool.
func (s *EventScheduler) ParkCancelable(t *Task, cancel <-chan struct{}) (Time, bool) {
	et := t.evt
	if et == nil {
		select {
		case v := <-t.grant:
			return v, true
		case <-cancel:
			return 0, false
		}
	}
	s.releaseSlot()
	select {
	case v := <-t.grant:
		s.ready(et, MaxTime(t.Now(), v))
		return v, true
	case <-cancel:
		s.ready(et, t.Now())
		return 0, false
	}
}

// Unpark implements Scheduler.
func (s *EventScheduler) Unpark(t *Task, v Time) { t.grant <- v }

// Yield implements Scheduler: charges may occur under the simulator's host
// mutexes, where blocking for readmission could deadlock the slot pool —
// and admission order already tracks virtual time, so there is nothing to
// do.  This no-op is what removes the goroutine backend's per-quantum
// Gosched cost.
func (s *EventScheduler) Yield(*Task) {}

// Preempt implements Scheduler: at a safe point (no host locks held), hand
// the slot over when a ready peer has fallen more than preemptSlack behind
// this task's virtual clock.
func (s *EventScheduler) Preempt(t *Task) {
	et := t.evt
	if et == nil {
		return
	}
	if now := t.Now(); now < preemptSlack || Time(s.minReady.Load()) > now-preemptSlack {
		return
	}
	s.releaseSlot()
	s.ready(et, t.Now())
}

// Block implements Scheduler: release the slot around a raw host-blocking
// operation.
func (s *EventScheduler) Block(t *Task) {
	if t.evt != nil {
		s.releaseSlot()
	}
}

// Unblock implements Scheduler: rejoin the run queue after a raw block.
func (s *EventScheduler) Unblock(t *Task) {
	if et := t.evt; et != nil {
		s.ready(et, t.Now())
	}
}

// ready queues et at virtual instant key and blocks until a slot is
// granted.
func (s *EventScheduler) ready(et *eventTask, key Time) {
	s.mu.Lock()
	et.key = key
	s.seq++
	et.seq = s.seq
	s.pushLocked(et)
	s.dispatchLocked()
	s.mu.Unlock()
	<-et.token
}

// releaseSlot returns the caller's slot to the pool and hands it to the
// earliest queued task, if any.
func (s *EventScheduler) releaseSlot() {
	s.mu.Lock()
	s.free++
	s.dispatchLocked()
	s.mu.Unlock()
}

// dispatchLocked grants free slots to queued tasks in (key, seq) order and
// refreshes the cached minimum.  Caller holds s.mu.
func (s *EventScheduler) dispatchLocked() {
	for s.free > 0 && len(s.order) > 0 {
		et := s.popMinLocked()
		s.free--
		et.token <- struct{}{}
	}
	if len(s.order) == 0 {
		s.minReady.Store(emptyKey)
	} else {
		s.minReady.Store(int64(s.order[0].min().key))
	}
}

// nodeQueue is one simulated node's sub-queue: a min-heap of ready tasks
// on that node, ordered by (key, seq).
type nodeQueue struct {
	node int
	heap []*eventTask
	pos  int // index in the top-level order heap, -1 when empty
}

func (nq *nodeQueue) min() *eventTask { return nq.heap[0] }

func taskLess(a, b *eventTask) bool {
	if a.key != b.key {
		return a.key < b.key
	}
	return a.seq < b.seq
}

// pushLocked inserts et into its node's sub-queue and repositions the node
// in the top-level heap.  Caller holds s.mu.
func (s *EventScheduler) pushLocked(et *eventTask) {
	node := et.t.NodeID
	for node >= len(s.nodes) {
		s.nodes = append(s.nodes, nil)
	}
	nq := s.nodes[node]
	if nq == nil {
		nq = &nodeQueue{node: node, pos: -1}
		s.nodes[node] = nq
	}
	nq.heap = append(nq.heap, et)
	et.pos = len(nq.heap) - 1
	nq.siftUp(et.pos)
	if nq.pos < 0 {
		s.order.push(nq)
	} else {
		s.order.fix(nq.pos)
	}
}

// popMinLocked removes and returns the globally earliest task.  Caller
// holds s.mu and guarantees the queue is non-empty.
func (s *EventScheduler) popMinLocked() *eventTask {
	nq := s.order[0]
	et := nq.heap[0]
	last := len(nq.heap) - 1
	nq.heap[0] = nq.heap[last]
	nq.heap[0].pos = 0
	nq.heap[last] = nil
	nq.heap = nq.heap[:last]
	if last > 0 {
		nq.siftDown(0)
	}
	et.pos = -1
	if len(nq.heap) == 0 {
		s.order.remove(nq.pos)
		nq.pos = -1
	} else {
		s.order.fix(nq.pos)
	}
	return et
}

func (nq *nodeQueue) siftUp(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !taskLess(nq.heap[i], nq.heap[p]) {
			break
		}
		nq.heap[i], nq.heap[p] = nq.heap[p], nq.heap[i]
		nq.heap[i].pos, nq.heap[p].pos = i, p
		i = p
	}
}

func (nq *nodeQueue) siftDown(i int) {
	n := len(nq.heap)
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < n && taskLess(nq.heap[l], nq.heap[m]) {
			m = l
		}
		if r < n && taskLess(nq.heap[r], nq.heap[m]) {
			m = r
		}
		if m == i {
			return
		}
		nq.heap[i], nq.heap[m] = nq.heap[m], nq.heap[i]
		nq.heap[i].pos, nq.heap[m].pos = i, m
		i = m
	}
}

// nodeHeap is the top-level min-heap over non-empty node sub-queues,
// keyed by each node's earliest (key, seq).
type nodeHeap []*nodeQueue

func nodeLess(a, b *nodeQueue) bool { return taskLess(a.min(), b.min()) }

func (h *nodeHeap) push(nq *nodeQueue) {
	*h = append(*h, nq)
	nq.pos = len(*h) - 1
	h.up(nq.pos)
}

// remove deletes the sub-queue at index i.
func (h *nodeHeap) remove(i int) {
	q := *h
	last := len(q) - 1
	if i != last {
		q[i] = q[last]
		q[i].pos = i
	}
	q[last] = nil
	*h = q[:last]
	if i != last {
		h.fix(i)
	}
}

// fix restores heap order after the key at index i changed.
func (h *nodeHeap) fix(i int) {
	h.up(i)
	h.down(i)
}

func (h nodeHeap) up(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !nodeLess(h[i], h[p]) {
			break
		}
		h[i], h[p] = h[p], h[i]
		h[i].pos, h[p].pos = i, p
		i = p
	}
}

func (h nodeHeap) down(i int) {
	n := len(h)
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < n && nodeLess(h[l], h[m]) {
			m = l
		}
		if r < n && nodeLess(h[r], h[m]) {
			m = r
		}
		if m == i {
			return
		}
		h[i], h[m] = h[m], h[i]
		h[i].pos, h[m].pos = i, m
		i = m
	}
}
