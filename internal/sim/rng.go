package sim

// RNG is a small deterministic pseudo-random generator (SplitMix64).  The
// workloads use it instead of math/rand so that runs are reproducible from a
// seed regardless of Go version.
type RNG struct{ state uint64 }

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed*0x9E3779B97F4A7C15 + 1} }

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Intn returns a pseudo-random int in [0, n).  n must be positive.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: RNG.Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a pseudo-random float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Split derives an independent generator, useful for giving each simulated
// thread its own stream.
func (r *RNG) Split() *RNG { return NewRNG(r.Uint64()) }
