package sim

import (
	"fmt"
	"os"
	"runtime"
	"sync/atomic"
)

// Scheduler is the thread-manager interface behind which the simulator's
// goroutine-per-thread machinery lives (the BRU thread-manager pattern:
// spawn/park/unpark/yield behind one vtable so policies can be swapped).
// One Scheduler instance manages the tasks of one simulation (one cluster);
// independent simulations running concurrently on the host (bench.RunCells)
// each have their own instance.
//
// Two kinds of task interact with a scheduler:
//
//   - managed tasks, spawned through Go — the worker threads of a run.  A
//     backend may discipline when a managed task's goroutine actually
//     executes (the event backend admits them in virtual-time order through
//     a bounded slot pool);
//   - unmanaged tasks — main/coordinator tasks whose goroutine the harness
//     owns.  Every method must accept them; park/unpark degrade to a plain
//     channel hand-off and the admission hooks to no-ops.
//
// The park/unpark pair rides the task's reusable grant channel (Task.Grant):
// a parked task is blocked in exactly one primitive at a time, so at most
// one grant is ever outstanding and Unpark never blocks.  Primitives that
// abandon a wait (cancellation) must drain an in-flight grant before the
// channel is reused — see ParkCancelable.
type Scheduler interface {
	// Name identifies the backend ("goroutine", "event").
	Name() string

	// Go spawns fn as the body of managed task t.  The backend owns the
	// goroutine: it may defer execution until t is admitted.  fn must fully
	// unwind its own panics except through the spawner's recovery; when fn
	// returns, the task is retired from the scheduler.
	Go(t *Task, fn func())

	// Park blocks t until a peer delivers a hand-off instant via Unpark,
	// and returns that instant.  Called only by t's owner goroutine.
	Park(t *Task) Time

	// ParkCancelable is Park that also unblocks when cancel is closed.
	// It returns (grant, true) on a normal hand-off and (0, false) when the
	// wait was abandoned; in the latter case a grant may still be in flight
	// and the abandoning primitive must drain it (Task.Grant reuse
	// contract) before the task parks again.
	ParkCancelable(t *Task, cancel <-chan struct{}) (Time, bool)

	// Unpark delivers hand-off instant v to parked task t.  Never blocks:
	// the grant channel is buffered and at most one grant is outstanding.
	Unpark(t *Task, v Time)

	// Yield is the quantum hint Task.Charge raises every schedQuantum of
	// charged virtual time.  It must never block: charges occur under the
	// simulator's internal host mutexes (lock, cond and barrier state).
	// The goroutine backend yields the host CPU; the event backend ignores
	// it, because admission order already tracks virtual time.
	Yield(t *Task)

	// Preempt is a safe-point reschedule: the caller holds no host locks
	// and is prepared to block until readmitted.  Task.Compute calls it so
	// a task that has run far ahead in virtual time hands the host to the
	// earliest runnable peer.  No-op for unmanaged tasks.
	Preempt(t *Task)

	// Block and Unblock bracket a raw host-blocking operation outside the
	// scheduler's park path (a join's done-channel receive, a worker pool's
	// idle receive).  Block releases the task's execution admission before
	// the operation; Unblock reacquires it after.  No-ops for unmanaged
	// tasks.
	Block(t *Task)
	Unblock(t *Task)
}

// Scheduler backend names.
const (
	// SchedGoroutine runs every simulated thread as a free goroutine and
	// keeps real execution roughly aligned with virtual time by yielding
	// the host CPU every charged quantum (the original machinery).
	SchedGoroutine = "goroutine"
	// SchedEvent admits simulated threads in virtual-time order from
	// per-node run queues through a bounded pool of host execution slots,
	// paying no per-charge yields (see EventScheduler).
	SchedEvent = "event"
)

// schedulerNames lists the registered backends as string literals:
// cmd/doccheck parses this literal to keep the EXPERIMENTS.md -sched
// documentation in sync, and TestSchedulerRegistry pins it to the
// constants above.
var schedulerNames = []string{"goroutine", "event"}

// SchedulerNames returns the registered backend names in registration order.
func SchedulerNames() []string {
	return append([]string(nil), schedulerNames...)
}

// defaultSched is the process-wide default backend name, settable by the
// CABLES_SCHED environment variable (read at init, how CI runs the test
// matrix) and the `cablesim -sched` flag (SetDefaultScheduler).
var defaultSched atomic.Pointer[string]

func init() {
	name := SchedGoroutine
	if env := os.Getenv("CABLES_SCHED"); env != "" {
		if !validSchedName(env) {
			panic(fmt.Sprintf("sim: CABLES_SCHED=%q is not a scheduler backend (have %v)",
				env, schedulerNames))
		}
		name = env
	}
	defaultSched.Store(&name)
}

func validSchedName(name string) bool {
	for _, n := range schedulerNames {
		if n == name {
			return true
		}
	}
	return false
}

// DefaultSchedulerName returns the process-wide default backend name.
func DefaultSchedulerName() string { return *defaultSched.Load() }

// SetDefaultScheduler selects the default backend for subsequently created
// clusters (the `cablesim -sched` plumbing).  Running simulations keep the
// scheduler they were built with.
func SetDefaultScheduler(name string) error {
	if !validSchedName(name) {
		return fmt.Errorf("sim: unknown scheduler backend %q (have %v)", name, schedulerNames)
	}
	defaultSched.Store(&name)
	return nil
}

// NewScheduler builds a fresh scheduler instance for one simulation.  The
// empty name selects the process default.
func NewScheduler(name string) Scheduler {
	if name == "" {
		name = DefaultSchedulerName()
	}
	switch name {
	case SchedGoroutine:
		return goroutineSched{}
	case SchedEvent:
		return NewEventScheduler(0)
	default:
		panic(fmt.Sprintf("sim: unknown scheduler backend %q (have %v)", name, schedulerNames))
	}
}

// goroutineSched is the original backend: one free-running goroutine per
// simulated thread, channel hand-offs, and a host-CPU yield every charged
// quantum so the Go scheduler's real execution order tracks virtual time
// well enough for work distribution through dynamic queues.  It is
// stateless; all instances are equivalent.
type goroutineSched struct{}

// Name implements Scheduler.
func (goroutineSched) Name() string { return SchedGoroutine }

// Go implements Scheduler: the goroutine runs immediately and freely.
func (goroutineSched) Go(t *Task, fn func()) { go fn() }

// Park implements Scheduler.
func (goroutineSched) Park(t *Task) Time { return <-t.grant }

// ParkCancelable implements Scheduler.
func (goroutineSched) ParkCancelable(t *Task, cancel <-chan struct{}) (Time, bool) {
	select {
	case v := <-t.grant:
		return v, true
	case <-cancel:
		return 0, false
	}
}

// Unpark implements Scheduler.
func (goroutineSched) Unpark(t *Task, v Time) { t.grant <- v }

// Yield implements Scheduler: hand the host CPU to another goroutine.
func (goroutineSched) Yield(*Task) { runtime.Gosched() }

// Preempt implements Scheduler: free goroutines need no safe-point switch.
func (goroutineSched) Preempt(*Task) {}

// Block implements Scheduler: free goroutines may block anywhere.
func (goroutineSched) Block(*Task) {}

// Unblock implements Scheduler.
func (goroutineSched) Unblock(*Task) {}
