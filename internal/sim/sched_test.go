package sim

import (
	"sync"
	"testing"
	"time"
)

func newTestTask(id, node int) *Task {
	return NewTask(id, node, DefaultCosts())
}

func TestSchedulerRegistry(t *testing.T) {
	names := SchedulerNames()
	if len(names) != 2 || names[0] != SchedGoroutine || names[1] != SchedEvent {
		t.Fatalf("SchedulerNames: got %v", names)
	}
	// Returned slice must be a copy: mutating it must not poison the registry.
	names[0] = "poisoned"
	if got := SchedulerNames()[0]; got != SchedGoroutine {
		t.Fatalf("SchedulerNames leaked its backing array: got %q", got)
	}
	for _, n := range SchedulerNames() {
		if s := NewScheduler(n); s.Name() != n {
			t.Errorf("NewScheduler(%q).Name() = %q", n, s.Name())
		}
	}

	saved := DefaultSchedulerName()
	defer func() {
		if err := SetDefaultScheduler(saved); err != nil {
			t.Fatalf("restore default scheduler: %v", err)
		}
	}()
	if err := SetDefaultScheduler("bogus"); err == nil {
		t.Error("SetDefaultScheduler(bogus): want error, got nil")
	}
	if got := DefaultSchedulerName(); got != saved {
		t.Errorf("failed SetDefaultScheduler changed the default to %q", got)
	}
	if err := SetDefaultScheduler(SchedEvent); err != nil {
		t.Fatalf("SetDefaultScheduler(event): %v", err)
	}
	if s := NewScheduler(""); s.Name() != SchedEvent {
		t.Errorf("NewScheduler(\"\") after SetDefaultScheduler(event): got %q", s.Name())
	}
}

// TestEventParkUnpark round-trips one managed task through Park/Unpark and
// checks the grant value advances the clock via the caller's WaitUntil.
func TestEventParkUnpark(t *testing.T) {
	s := NewEventScheduler(1)
	tk := newTestTask(1, 0)
	tk.BindScheduler(s)

	parked := make(chan struct{})
	done := make(chan Time, 1)
	s.Go(tk, func() {
		close(parked)
		v := s.Park(tk)
		done <- v
	})
	<-parked
	s.Unpark(tk, 42*Millisecond)
	if got := <-done; got != 42*Millisecond {
		t.Errorf("Park returned %v, want 42ms", got)
	}
}

// TestEventAdmitsInVirtualTimeOrder queues three managed tasks with
// distinct virtual clocks behind a gate task holding the only slot, then
// releases the gate and checks they ran earliest-clock-first regardless of
// spawn order.
func TestEventAdmitsInVirtualTimeOrder(t *testing.T) {
	s := NewEventScheduler(1)

	release := make(chan struct{})
	gateRunning := make(chan struct{})
	gate := newTestTask(0, 0)
	gate.BindScheduler(s)
	s.Go(gate, func() {
		// Hold the only slot until all three contenders are queued.
		close(gateRunning)
		<-release
	})
	<-gateRunning // gate owns the slot before any contender can claim it

	var mu sync.Mutex
	var order []int
	var wg sync.WaitGroup
	// Spawn in the reverse of virtual-time order, across two nodes, so the
	// observed order can only come from the (key, seq) heap discipline.
	for _, c := range []struct {
		id    int
		node  int
		clock Time
	}{
		{id: 30, node: 0, clock: 30 * Millisecond},
		{id: 20, node: 1, clock: 20 * Millisecond},
		{id: 10, node: 0, clock: 10 * Millisecond},
	} {
		tk := newTestTask(c.id, c.node)
		tk.SetNow(c.clock)
		tk.BindScheduler(s)
		wg.Add(1)
		s.Go(tk, func() {
			defer wg.Done()
			mu.Lock()
			order = append(order, c.id)
			mu.Unlock()
		})
	}
	// Wait until all three are queued (their goroutines block in ready()).
	waitFor(t, func() bool {
		s.mu.Lock()
		defer s.mu.Unlock()
		n := 0
		for _, nq := range s.nodes {
			if nq != nil {
				n += len(nq.heap)
			}
		}
		return n == 3
	})
	if got := Time(s.minReady.Load()); got != 10*Millisecond {
		t.Errorf("minReady with queue loaded: got %v want 10ms", got)
	}
	close(release)
	wg.Wait()
	if len(order) != 3 || order[0] != 10 || order[1] != 20 || order[2] != 30 {
		t.Errorf("admission order: got %v want [10 20 30]", order)
	}
	if got := Time(s.minReady.Load()); got != Time(emptyKey) {
		t.Errorf("minReady after drain: got %v want emptyKey", got)
	}
}

// TestEventParkCancelableDrain exercises the grant-reuse contract on the
// cancel path: a canceled waiter is readmitted holding its slot and must be
// able to drain an in-flight grant without deadlocking the pool.
func TestEventParkCancelableDrain(t *testing.T) {
	s := NewEventScheduler(1)
	tk := newTestTask(1, 0)
	tk.BindScheduler(s)

	cancel := make(chan struct{})
	close(cancel) // cancellation already pending when the task parks
	canceled := make(chan struct{}, 1)
	done := make(chan struct{})
	s.Go(tk, func() {
		defer close(done)
		v, ok := s.ParkCancelable(tk, cancel)
		if ok || v != 0 {
			// The grant is delivered only after the cancel branch returns
			// (see the canceled hand-shake below), so cancel must win here.
			t.Errorf("ParkCancelable: got (%v, %v), want (0, false)", v, ok)
			return
		}
		canceled <- struct{}{}
		// A granter claimed this waiter concurrently; the abandoning
		// primitive drains the stale grant while holding its slot.
		if got := <-tk.Grant(); got != 7*Millisecond {
			t.Errorf("drained grant: got %v want 7ms", got)
		}
	})
	<-canceled
	s.Unpark(tk, 7*Millisecond) // buffered: never needs a slot to deliver
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("canceled waiter never resumed: slot pool deadlocked")
	}
	if n := len(tk.Grant()); n != 0 {
		t.Errorf("grant channel left with %d stale entries", n)
	}
}

// TestEventBlockReleasesSlot checks Block/Unblock bracket a raw
// host-blocking operation: with one slot, a second task can only run if the
// first task's Block actually released it.
func TestEventBlockReleasesSlot(t *testing.T) {
	s := NewEventScheduler(1)
	a := newTestTask(1, 0)
	b := newTestTask(2, 0)
	a.BindScheduler(s)
	b.BindScheduler(s)

	fromB := make(chan struct{})
	done := make(chan struct{})
	s.Go(a, func() {
		defer close(done)
		s.Block(a)
		<-fromB // would deadlock the 1-slot pool if Block kept the slot
		s.Unblock(a)
	})
	s.Go(b, func() { close(fromB) })
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Block did not release the execution slot")
	}
}

// TestEventPreemptHandsOver checks Preempt switches to a ready peer that
// has fallen more than preemptSlack behind, and is a no-op when the queue
// is empty or the peer is within slack.
func TestEventPreemptHandsOver(t *testing.T) {
	s := NewEventScheduler(1)
	ahead := newTestTask(1, 0)
	ahead.SetNow(10 * preemptSlack)
	ahead.BindScheduler(s)

	ranBehind := make(chan struct{})
	aheadRunning := make(chan struct{})
	proceed := make(chan struct{})
	done := make(chan struct{})
	s.Go(ahead, func() {
		defer close(done)
		s.Preempt(ahead) // empty queue: must not block
		close(aheadRunning)
		<-proceed // main has queued the lagging peer behind us
		s.Preempt(ahead)
		// The peer held the earlier virtual instant, so the hand-off must
		// have let it finish before this task got the slot back.
		select {
		case <-ranBehind:
		default:
			t.Error("Preempt did not admit the lagging peer first")
		}
	})
	<-aheadRunning // ahead owns the slot before the peer can claim it
	behind := newTestTask(2, 0)
	behind.BindScheduler(s) // starts at Now()=0, far behind ahead's clock
	s.Go(behind, func() { close(ranBehind) })
	waitFor(t, func() bool { // behind is queued waiting for the slot
		s.mu.Lock()
		defer s.mu.Unlock()
		return len(s.order) > 0
	})
	close(proceed)
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Preempt deadlocked")
	}
}

// TestUnmanagedFallback checks a task never spawned through Scheduler.Go
// (a coordinator) parks and cancels through the plain channel hand-off.
func TestUnmanagedFallback(t *testing.T) {
	s := NewEventScheduler(1)
	tk := newTestTask(1, 0)
	tk.BindScheduler(s)

	// Park/Unpark round-trip without a slot.
	go s.Unpark(tk, 5*Millisecond)
	if got := s.Park(tk); got != 5*Millisecond {
		t.Errorf("unmanaged Park: got %v want 5ms", got)
	}
	// Cancelable park takes the cancel branch.
	cancel := make(chan struct{})
	close(cancel)
	if v, ok := s.ParkCancelable(tk, cancel); ok || v != 0 {
		t.Errorf("unmanaged ParkCancelable: got (%v, %v), want (0, false)", v, ok)
	}
	// Block/Unblock/Preempt/Yield are no-ops and must not panic or hang.
	s.Block(tk)
	s.Unblock(tk)
	s.Preempt(tk)
	s.Yield(tk)
}

// waitFor polls cond until it holds or the deadline lapses.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never held")
		}
		time.Sleep(100 * time.Microsecond)
	}
}
