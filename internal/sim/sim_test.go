package sim

import (
	"testing"
	"testing/quick"
)

func TestTimeString(t *testing.T) {
	cases := []struct {
		d    Time
		want string
	}{
		{7800 * Nanosecond, "7.80us"},
		{22 * Microsecond, "22.0us"},
		{13 * Millisecond, "13.00ms"},
		{3690 * Millisecond, "3.690s"},
		{-4 * Microsecond, "-4.00us"},
	}
	for _, c := range cases {
		if got := c.d.String(); got != c.want {
			t.Errorf("%d ns: got %q want %q", int64(c.d), got, c.want)
		}
	}
}

func TestTimeConversions(t *testing.T) {
	d := 1500 * Microsecond
	if d.Micros() != 1500 {
		t.Errorf("Micros: %v", d.Micros())
	}
	if d.Millis() != 1.5 {
		t.Errorf("Millis: %v", d.Millis())
	}
	if d.Seconds() != 0.0015 {
		t.Errorf("Seconds: %v", d.Seconds())
	}
}

func TestMaxTime(t *testing.T) {
	if MaxTime(3, 5) != 5 || MaxTime(5, 3) != 5 || MaxTime(4, 4) != 4 {
		t.Error("MaxTime wrong")
	}
}

// TestBreakdownTotalIsSum is a property test: Total always equals the sum
// of the categories, and AddAll composes.
func TestBreakdownTotalIsSum(t *testing.T) {
	f := func(vals [NumCategories]int32) bool {
		var b Breakdown
		var sum Time
		for i, v := range vals {
			d := Time(v)
			if d < 0 {
				d = -d
			}
			b.Add(Category(i), d)
			sum += d
		}
		var c Breakdown
		c.AddAll(&b)
		c.AddAll(&b)
		return b.Total() == sum && c.Total() == 2*sum
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestBreakdownSub checks b.Sub(a) + a == b category-wise.
func TestBreakdownSub(t *testing.T) {
	f := func(a, b [NumCategories]int32) bool {
		var x, y Breakdown
		for i := range a {
			x.Add(Category(i), Time(a[i]))
			y.Add(Category(i), Time(b[i]))
		}
		d := y.Sub(x)
		for i := range d {
			if d[i]+x[i] != y[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCategoryString(t *testing.T) {
	if CatLocal.String() != "local" || CatComm.String() != "comm" {
		t.Error("category names wrong")
	}
	if Category(99).String() != "Category(99)" {
		t.Error("out-of-range category formatting wrong")
	}
}

func TestTaskChargeAdvancesClockAndBreakdown(t *testing.T) {
	task := NewTask(1, 0, DefaultCosts())
	task.Charge(CatComm, 10*Microsecond)
	task.Charge(CatLocal, 5*Microsecond)
	task.Charge(CatComm, -3) // ignored
	if task.Now() != 15*Microsecond {
		t.Errorf("clock: %v", task.Now())
	}
	b := task.Snapshot()
	if b[CatComm] != 10*Microsecond || b[CatLocal] != 5*Microsecond {
		t.Errorf("breakdown: %v", b)
	}
}

func TestTaskAttributeDoesNotAdvanceClock(t *testing.T) {
	task := NewTask(1, 0, DefaultCosts())
	task.Attribute(CatRemoteOS, 2031*Millisecond)
	if task.Now() != 0 {
		t.Errorf("clock advanced: %v", task.Now())
	}
	if task.Snapshot()[CatRemoteOS] != 2031*Millisecond {
		t.Error("attribution lost")
	}
}

func TestTaskComputeAppliesLoadFactor(t *testing.T) {
	task := NewTask(1, 0, DefaultCosts())
	task.Load = func() float64 { return 2.0 }
	task.Compute(100 * Microsecond)
	if got := task.Now(); got != 200*Microsecond {
		t.Errorf("dilated compute: %v", got)
	}
	if task.Snapshot()[CatCompute] != 200*Microsecond {
		t.Error("compute attribution wrong")
	}
}

func TestTaskWaitUntil(t *testing.T) {
	task := NewTask(1, 0, DefaultCosts())
	task.Charge(CatLocal, 10*Microsecond)
	if now := task.WaitUntil(5 * Microsecond); now != 10*Microsecond {
		t.Errorf("past wait moved clock: %v", now)
	}
	if now := task.WaitUntil(25 * Microsecond); now != 25*Microsecond {
		t.Errorf("future wait: %v", now)
	}
	if task.Snapshot()[CatWait] != 15*Microsecond {
		t.Errorf("wait attribution: %v", task.Snapshot())
	}
}

func TestTaskCancel(t *testing.T) {
	task := NewTask(1, 0, DefaultCosts())
	task.CancelPoint() // no-op
	task.Cancel()
	if !task.Canceled() {
		t.Fatal("not canceled")
	}
	defer func() {
		if r := recover(); r != ErrCanceled {
			t.Errorf("panic value: %v", r)
		}
	}()
	task.CancelPoint()
	t.Fatal("unreachable")
}

func TestCostsCalibration(t *testing.T) {
	c := DefaultCosts()
	if got := c.SendTime(8); got < 7700*Nanosecond || got > 7900*Nanosecond {
		t.Errorf("1-word send: %v", got)
	}
	if got := c.SendTime(4096); got < 51*Microsecond || got > 53*Microsecond {
		t.Errorf("4KB send: %v", got)
	}
	if got := c.FetchTime(8); got < 21*Microsecond || got > 23*Microsecond {
		t.Errorf("1-word fetch: %v", got)
	}
	if got := c.FetchTime(4096); got < 79*Microsecond || got > 83*Microsecond {
		t.Errorf("4KB fetch: %v", got)
	}
	// 125 MB/s occupancy.
	if got := c.Occupancy(1 << 20); got != Time((1<<20)*8) {
		t.Errorf("occupancy: %v", got)
	}
}

func TestLinuxProfile(t *testing.T) {
	c := DefaultCosts().LinuxOS()
	if c.MapGranularity != 4<<10 {
		t.Errorf("linux granularity: %d", c.MapGranularity)
	}
	if c.OSThreadCreate >= DefaultCosts().OSThreadCreate {
		t.Error("linux thread create should be cheaper")
	}
}

// TestRNGDeterminism: same seed, same stream; Split gives a different one.
func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRNG(42)
	d := c.Split()
	same := true
	for i := 0; i < 10; i++ {
		if c.Uint64() != d.Uint64() {
			same = false
		}
	}
	if same {
		t.Error("split stream identical to parent")
	}
}

// TestRNGRanges is a property test on Intn/Float64 bounds.
func TestRNGRanges(t *testing.T) {
	r := NewRNG(7)
	f := func(n uint16) bool {
		m := int(n%1000) + 1
		v := r.Intn(m)
		fl := r.Float64()
		return v >= 0 && v < m && fl >= 0 && fl < 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRNGIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	NewRNG(1).Intn(0)
}
