package sim

import (
	"errors"
	"sync/atomic"
)

// schedQuantum is how much charged virtual time a task may accumulate
// before raising the scheduler backend's Yield hint.  Keeping real
// execution order roughly aligned with virtual-time order matters for work
// distribution through dynamic queues (task stealing): without it one
// thread can drain a whole queue in real time while its peers — earlier in
// virtual time — never get scheduled.  The goroutine backend answers the
// hint with runtime.Gosched; the event backend ignores it, because its
// run-queue admission is virtual-time-ordered by construction.
const schedQuantum = 50 * Microsecond

// ErrCanceled is the panic value used to unwind a simulated thread that has
// been canceled (pthread_cancel).  The thread-runner recovers it.
var ErrCanceled = errors.New("sim: task canceled")

// SpanProbe observes span boundaries and point marks on one task.  It is the
// narrow waist between the simulator and the virtual-time profiler
// (internal/profile): sim stays free of profiler types, and a task with no
// probe attached pays one nil check per instrumentation site.  A probe is
// owned by the task's goroutine — the same single-owner rule as the clock —
// so implementations need no locking for per-task state.
//
// Probes observe; they never charge.  The Breakdown pointer passed at open
// and close lets the probe attribute a span's virtual time to categories by
// differencing, without sim exposing its accounting internals.
type SpanProbe interface {
	// SpanOpen begins a nested span of the given kind (a
	// profile.SpanKind value) with one argument (page id, lock id, ...).
	SpanOpen(kind uint8, arg uint64, now Time, brk *Breakdown)
	// SpanClose ends the innermost open span.
	SpanClose(now Time, brk *Breakdown)
	// SpanMark records a point event (a profile.MarkKind value) at now.
	SpanMark(kind uint8, arg, val uint64, now Time)
}

// Task is one simulated thread of execution.  It is owned by exactly one
// goroutine; only that goroutine calls Charge/Compute/Attribute.  Other
// goroutines may read the clock (synchronization primitives merge peers'
// clocks) and may request cancellation, which is why those fields are atomic.
type Task struct {
	// ID is the application-wide thread identifier.
	ID int
	// NodeID is the cluster node the task runs on.
	NodeID int

	// execNode, when non-zero, overrides the node the task's memory-side
	// operations act on: node n is stored as n+1 so the zero value means
	// "no override" and NewTask needs no extra argument.  Set by the
	// delegate coherence protocol for the span of a delegated critical
	// section; written and read only by the owner goroutine.
	execNode int

	clock    atomic.Int64 // virtual now, ns
	canceled atomic.Bool

	// brk is the cumulative cost breakdown.  Owner-goroutine writes; readers
	// must hold the task quiescent (e.g. after join).
	brk Breakdown

	// Load, if set, reports the current computation dilation factor of the
	// node (runnable threads / processors, floored at 1).  Installed by the
	// node OS model.
	Load func() float64

	costs     *Costs
	schedDebt Time // charged time since the last scheduler yield

	// sched is the thread-manager backend the task runs under; NewTask
	// binds the goroutine backend and nodeos.Cluster.NewTask rebinds to the
	// cluster's scheduler.  evt is the event backend's per-task state, nil
	// for unmanaged tasks and under every other backend — primitives use it
	// as the zero-cost "is this task slot-disciplined" check.
	sched Scheduler
	evt   *eventTask

	// prof is the attached span probe, nil when no profiler is observing
	// the run.  Set before the task's goroutine starts (or by the owner);
	// called only from the owner goroutine.
	prof SpanProbe

	// grant is the task's reusable hand-off channel: contended lock
	// acquires and condition waits park the task on it and the releaser or
	// signaler delivers the hand-off instant through it.  Reusing one
	// buffered channel per task removes a heap allocation from every
	// contended synchronization operation.  A parked task is blocked in
	// exactly one primitive at a time, so at most one grant is ever
	// outstanding; primitives that abandon a wait (cancellation) must drain
	// any in-flight grant before the channel is reused.
	grant chan Time
}

// NewTask returns a task with the given identifiers running against the cost
// table c.  The grant channel is allocated eagerly: a releaser may Unpark a
// task from another goroutine before the task's own first park, so lazy
// creation would race.
func NewTask(id, node int, c *Costs) *Task {
	return &Task{ID: id, NodeID: node, costs: c, sched: goroutineSched{},
		grant: make(chan Time, 1)}
}

// Costs returns the task's cost table.
func (t *Task) Costs() *Costs { return t.costs }

// MemNode returns the node the task's memory and communication operations
// act on: NodeID, unless a delegated critical section has moved execution
// to a server node (SetExecNode), in which case page faults, flushes and
// wire-op sources are attributed there.  Scheduling stays keyed on NodeID.
func (t *Task) MemNode() int {
	if t.execNode != 0 {
		return t.execNode - 1
	}
	return t.NodeID
}

// SetExecNode moves the task's memory-side execution to node n (a
// delegated critical section running at its server); n < 0 clears the
// override and returns the task to NodeID.  Owner goroutine only.
func (t *Task) SetExecNode(n int) {
	if n < 0 {
		t.execNode = 0
		return
	}
	t.execNode = n + 1
}

// Sched returns the task's scheduler backend.
func (t *Task) Sched() Scheduler { return t.sched }

// BindScheduler attaches the task to a scheduler backend.  Call before the
// task's goroutine starts (nodeos.Cluster.NewTask does).
func (t *Task) BindScheduler(s Scheduler) { t.sched = s }

// Grant returns the task's reusable hand-off channel (buffered, capacity 1);
// see the field comment for the reuse contract.
func (t *Task) Grant() chan Time { return t.grant }

// Now returns the task's current virtual time.
func (t *Task) Now() Time { return Time(t.clock.Load()) }

// SetNow initializes the clock (used when spawning a child at the parent's
// current time).
func (t *Task) SetNow(v Time) { t.clock.Store(int64(v)) }

// Charge advances the clock by d and attributes it to category cat.  Every
// schedQuantum of charged time raises the backend's Yield hint; the debt
// keeps its sub-quantum remainder so yield pacing stays proportional to
// virtual progress across charges of any size.  Yield must not block —
// charges occur under the simulator's internal host mutexes — which is why
// clock-ordered switching has its own safe point (Compute/Preempt).
func (t *Task) Charge(cat Category, d Time) {
	if d <= 0 {
		return
	}
	t.clock.Add(int64(d))
	t.brk.Add(cat, d)
	t.schedDebt += d
	if t.schedDebt >= schedQuantum {
		t.schedDebt -= schedQuantum
		t.sched.Yield(t)
	}
}

// Attribute records d against category cat without advancing the clock.
// Used for work that overlaps other charged work (the paper notes that node
// attach breakdowns "will not exactly add up to the total" for this reason).
func (t *Task) Attribute(cat Category, d Time) {
	if d > 0 {
		t.brk.Add(cat, d)
	}
}

// Compute charges application computation of duration d, dilated by the
// node's current load factor (threads time-share processors) and by the cost
// table's compute scale.  Compute is also the scheduler's safe point: the
// caller holds no host locks here, so a slot-disciplined task that has run
// far ahead in virtual time may block until readmitted (event backend).
func (t *Task) Compute(d Time) {
	if d <= 0 {
		return
	}
	f := t.costs.ComputeScale
	if t.Load != nil {
		f *= t.Load()
	}
	t.Charge(CatCompute, Time(float64(d)*f))
	if t.evt != nil {
		t.sched.Preempt(t)
	}
}

// WaitUntil advances the clock to instant v if v is in the task's future,
// attributing the gap to CatWait.  Returns the (possibly unchanged) now.
func (t *Task) WaitUntil(v Time) Time {
	now := t.Now()
	if v > now {
		t.Charge(CatWait, v-now)
		return v
	}
	return now
}

// Snapshot returns a copy of the cumulative breakdown.  Call only from the
// owner goroutine or after the task has finished.
func (t *Task) Snapshot() Breakdown { return t.brk }

// SetProbe attaches (or, with nil, detaches) a span probe.  Call before the
// task's goroutine starts, or from the owner goroutine.
func (t *Task) SetProbe(p SpanProbe) { t.prof = p }

// Probe returns the attached span probe, nil when none.
func (t *Task) Probe() SpanProbe { return t.prof }

// OpenSpan begins a profiling span of the given kind.  With no probe
// attached this is a single nil check — the detached fast path the hostperf
// profile_overhead gate holds at ≤0.5% of a flush operation.
func (t *Task) OpenSpan(kind uint8, arg uint64) {
	if t.prof != nil {
		t.prof.SpanOpen(kind, arg, t.Now(), &t.brk)
	}
}

// CloseSpan ends the innermost span opened by OpenSpan.
func (t *Task) CloseSpan() {
	if t.prof != nil {
		t.prof.SpanClose(t.Now(), &t.brk)
	}
}

// MarkSpan records a point event on the task's timeline.
func (t *Task) MarkSpan(kind uint8, arg, val uint64) {
	if t.prof != nil {
		t.prof.SpanMark(kind, arg, val, t.Now())
	}
}

// Cancel marks the task canceled; the owning goroutine unwinds at its next
// cancellation point.
func (t *Task) Cancel() { t.canceled.Store(true) }

// Canceled reports whether cancellation has been requested.
func (t *Task) Canceled() bool { return t.canceled.Load() }

// CancelPoint panics with ErrCanceled if cancellation has been requested.
// Synchronization operations and page faults are cancellation points,
// mirroring POSIX deferred cancellation.
func (t *Task) CancelPoint() {
	if t.canceled.Load() {
		panic(ErrCanceled)
	}
}
