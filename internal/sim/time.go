// Package sim provides the virtual-time execution substrate on which the
// whole CableS reproduction runs.
//
// The paper measures a real 32-processor cluster.  This reproduction instead
// executes simulated threads as goroutines and accounts all costs —
// computation, operating-system services, and communication — in *virtual
// time*.  Each simulated thread owns a Clock; synchronization primitives
// merge clocks with max(), and communication charges are taken from a cost
// table calibrated against the paper's Table 3 and Table 4.  This keeps the
// experiments independent of the host machine and of the Go scheduler, which
// cannot host a page-fault-driven SVM directly.
package sim

import "fmt"

// Time is a duration or instant of virtual time, in nanoseconds.
type Time int64

// Convenient virtual-time units.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Micros reports t as a floating-point number of microseconds.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

// Millis reports t as a floating-point number of milliseconds.
func (t Time) Millis() float64 { return float64(t) / float64(Millisecond) }

// Seconds reports t as a floating-point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// String renders t with an auto-selected unit, e.g. "7.8us" or "3690ms".
func (t Time) String() string {
	switch {
	case t < 0:
		return fmt.Sprintf("-%s", (-t).String())
	case t < 10*Microsecond:
		return fmt.Sprintf("%.2fus", t.Micros())
	case t < Millisecond:
		return fmt.Sprintf("%.1fus", t.Micros())
	case t < Second:
		return fmt.Sprintf("%.2fms", t.Millis())
	default:
		return fmt.Sprintf("%.3fs", t.Seconds())
	}
}

// MaxTime returns the later of a and b.
func MaxTime(a, b Time) Time {
	if a > b {
		return a
	}
	return b
}

// Category classifies where a cost was incurred.  The categories mirror the
// breakdown columns of the paper's Table 4.
type Category int

const (
	// CatLocal is processing inside the CableS library on the calling node.
	CatLocal Category = iota
	// CatRemote is processing inside the CableS library on a remote node.
	CatRemote
	// CatLocalOS is time spent in operating-system services on the calling
	// node (thread creation, virtual-memory mapping, ...).
	CatLocalOS
	// CatRemoteOS is operating-system time on a remote node.
	CatRemoteOS
	// CatComm is network communication time (VMMC operations).
	CatComm
	// CatCompute is application computation.
	CatCompute
	// CatWait is time spent blocked on synchronization (lock hand-off delay,
	// barrier imbalance, condition waits).
	CatWait
	numCategories
)

// NumCategories is the number of distinct cost categories.
const NumCategories = int(numCategories)

var categoryNames = [NumCategories]string{
	"local", "remote", "localOS", "remoteOS", "comm", "compute", "wait",
}

// String returns the short name of the category.
func (c Category) String() string {
	if c < 0 || int(c) >= NumCategories {
		return fmt.Sprintf("Category(%d)", int(c))
	}
	return categoryNames[c]
}

// Breakdown accumulates virtual time per cost category.
type Breakdown [NumCategories]Time

// Add accumulates d into category c.
func (b *Breakdown) Add(c Category, d Time) { b[c] += d }

// AddAll accumulates every category of o into b.
func (b *Breakdown) AddAll(o *Breakdown) {
	for i := range b {
		b[i] += o[i]
	}
}

// Total returns the sum over all categories.
func (b *Breakdown) Total() Time {
	var t Time
	for _, v := range b {
		t += v
	}
	return t
}

// Sub returns b - o, category-wise.
func (b Breakdown) Sub(o Breakdown) Breakdown {
	for i := range b {
		b[i] -= o[i]
	}
	return b
}

// String lists the non-zero categories.
func (b Breakdown) String() string {
	s := ""
	for i, v := range b {
		if v != 0 {
			if s != "" {
				s += " "
			}
			s += fmt.Sprintf("%s=%s", Category(i), v)
		}
	}
	if s == "" {
		return "(zero)"
	}
	return s
}
