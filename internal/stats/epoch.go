package stats

import (
	"sort"
	"sync"
)

// EpochLog captures per-phase counter windows.  A phase boundary — for the
// profiler, every barrier release — calls Mark with a label and the virtual
// instant; the log snapshots the counters there.  Windows then differences
// consecutive snapshots (in virtual-time order) into per-epoch counter
// deltas, which is how `cablesim profile` prints what each barrier epoch
// cost.
//
// Marks fire from concurrently running simulated threads, so a snapshot is
// the counter state at the *host* moment of the boundary; cells with
// dynamic contention carry the simulator's usual scheduling jitter in how
// in-flight events land on either side of a window (the trace-interleaving
// caveat, DESIGN.md §5b).  Deterministic cells window deterministically.
type EpochLog struct {
	ctr *Counters

	mu    sync.Mutex
	marks []epochMark
}

type epochMark struct {
	label string
	at    int64 // virtual ns of the boundary
	snap  Snapshot
}

// EpochWindow is one phase's counter delta: everything counted between the
// previous boundary (or the run start) and this one.
type EpochWindow struct {
	Label string
	At    int64 // virtual ns of the window's closing boundary
	Delta Snapshot
}

// NewEpochLog creates a log reading from c at every mark.
func NewEpochLog(c *Counters) *EpochLog { return &EpochLog{ctr: c} }

// Mark records a phase boundary labeled label at virtual instant at.
func (l *EpochLog) Mark(label string, at int64) {
	snap := l.ctr.Snapshot()
	l.mu.Lock()
	l.marks = append(l.marks, epochMark{label: label, at: at, snap: snap})
	l.mu.Unlock()
}

// Len reports how many boundaries have been marked.
func (l *EpochLog) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.marks)
}

// Windows returns the per-phase counter deltas, ordered by boundary
// instant.  The first window counts from the run start (zero counters).
func (l *EpochLog) Windows() []EpochWindow {
	l.mu.Lock()
	marks := make([]epochMark, len(l.marks))
	copy(marks, l.marks)
	l.mu.Unlock()
	// Stable sort: insertion order breaks ties between boundaries at the
	// same virtual instant (e.g. different barriers releasing together).
	sort.SliceStable(marks, func(i, j int) bool { return marks[i].at < marks[j].at })
	out := make([]EpochWindow, len(marks))
	var prev Snapshot
	for i, m := range marks {
		out[i] = EpochWindow{Label: m.label, At: m.at, Delta: m.snap.Delta(prev)}
		prev = m.snap
	}
	return out
}
