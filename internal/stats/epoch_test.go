package stats

import (
	"sync"
	"testing"
)

// TestSnapshotDelta pins per-key subtraction, including against a nil
// previous snapshot (the run-start window).
func TestSnapshotDelta(t *testing.T) {
	cur := Snapshot{"pageFaults": 10, "diffs": 4}
	prev := Snapshot{"pageFaults": 7}
	d := cur.Delta(prev)
	if d["pageFaults"] != 3 || d["diffs"] != 4 {
		t.Errorf("delta = %v", d)
	}
	if d0 := cur.Delta(nil); d0["pageFaults"] != 10 || d0["diffs"] != 4 {
		t.Errorf("delta vs nil = %v", d0)
	}
}

// TestCountersDelta drives the phase-window pattern: snapshot, count more,
// Delta against the snapshot gives only the new activity.
func TestCountersDelta(t *testing.T) {
	c := NewCounters(2)
	c.Add(0, EvPageFaults, 5)
	phase1 := c.Snapshot()
	c.Add(1, EvPageFaults, 2)
	c.Add(0, EvDiffsSent, 3)
	d := c.Delta(phase1)
	if d["pageFaults"] != 2 || d["diffs"] != 3 {
		t.Errorf("window = %v", d)
	}
	if d["barriers"] != 0 {
		t.Errorf("untouched counter leaked into window: %v", d)
	}
	// A fresh window from the new baseline is empty.
	if s := c.Delta(c.Snapshot()).String(); s != "" {
		t.Errorf("empty window renders %q", s)
	}
}

// TestEpochLogWindows pins the windowing semantics: marks difference
// consecutive snapshots in virtual-time order, the first window counts
// from the run start, and ties keep insertion order.
func TestEpochLogWindows(t *testing.T) {
	c := NewCounters(1)
	l := NewEpochLog(c)

	c.Add(0, EvPageFaults, 4)
	l.Mark("init", 100)
	c.Add(0, EvPageFaults, 6)
	c.Add(0, EvBarriers, 1)
	// Marked out of virtual-time order: Windows must sort by instant.
	l.Mark("t2", 300)
	l.Mark("t1", 200)

	if l.Len() != 3 {
		t.Fatalf("Len = %d, want 3", l.Len())
	}
	ws := l.Windows()
	if len(ws) != 3 {
		t.Fatalf("windows = %d, want 3", len(ws))
	}
	if ws[0].Label != "init" || ws[0].At != 100 || ws[0].Delta["pageFaults"] != 4 {
		t.Errorf("window 0 = %+v", ws[0])
	}
	if ws[1].Label != "t1" || ws[1].At != 200 {
		t.Errorf("window 1 = %+v (virtual-time order violated)", ws[1])
	}
	// t1's snapshot was taken after t2's, so differencing in virtual-time
	// order puts all post-init activity in t2's window and none in t1's.
	if ws[2].Label != "t2" || ws[2].Delta["pageFaults"] != 0 {
		t.Errorf("window 2 = %+v", ws[2])
	}
	if got := ws[1].Delta["pageFaults"] + ws[2].Delta["pageFaults"]; got != 6 {
		t.Errorf("post-init faults split %d, want 6 total", got)
	}
	// Ties at one instant keep insertion order (stable sort).
	l2 := NewEpochLog(c)
	l2.Mark("a", 50)
	l2.Mark("b", 50)
	ws2 := l2.Windows()
	if ws2[0].Label != "a" || ws2[1].Label != "b" {
		t.Errorf("tie order = %s,%s, want a,b", ws2[0].Label, ws2[1].Label)
	}
}

// TestEpochLogConcurrentMarks checks Mark is safe from concurrent barrier
// releases and loses nothing.
func TestEpochLogConcurrentMarks(t *testing.T) {
	c := NewCounters(4)
	l := NewEpochLog(c)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				c.Add(g, EvBarriers, 1)
				l.Mark("b", int64(g*1000+i))
			}
		}(g)
	}
	wg.Wait()
	if l.Len() != 200 {
		t.Errorf("marks = %d, want 200", l.Len())
	}
	ws := l.Windows()
	var total int64
	for _, w := range ws {
		total += w.Delta["barriers"]
	}
	// Windows telescope: the sum of deltas is the last snapshot's reading,
	// which saw at least its own goroutine's final count and at most all 200.
	if total <= 0 || total > 200 {
		t.Errorf("telescoped barrier count = %d, want in (0,200]", total)
	}
}
