package stats

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"cables/internal/sim"
)

// OpStats accumulates per-API-call virtual-time costs; Table 5 reports the
// averages per program.
type OpStats struct {
	mu  sync.Mutex
	agg map[string]*opAgg
}

type opAgg struct {
	count int64
	total sim.Time
}

// Time runs fn and books its virtual duration on t's clock under op.
func (s *OpStats) Time(t *sim.Task, op string, fn func()) {
	before := t.Now()
	fn()
	s.Record(op, t.Now()-before)
}

// Record books one occurrence of op costing d.
func (s *OpStats) Record(op string, d sim.Time) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.agg == nil {
		s.agg = make(map[string]*opAgg)
	}
	a := s.agg[op]
	if a == nil {
		a = &opAgg{}
		s.agg[op] = a
	}
	a.count++
	a.total += d
}

// Avg returns the mean cost of op and how often it ran.
func (s *OpStats) Avg(op string) (sim.Time, int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	a := s.agg[op]
	if a == nil || a.count == 0 {
		return 0, 0
	}
	return a.total / sim.Time(a.count), a.count
}

// Ops lists the measured operations in sorted order.
func (s *OpStats) Ops() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	ops := make([]string, 0, len(s.agg))
	for op := range s.agg {
		ops = append(ops, op)
	}
	sort.Strings(ops)
	return ops
}

// String renders "op=avg(xN)" pairs.
func (s *OpStats) String() string {
	var parts []string
	for _, op := range s.Ops() {
		avg, n := s.Avg(op)
		parts = append(parts, fmt.Sprintf("%s=%v(x%d)", op, avg, n))
	}
	return strings.Join(parts, " ")
}
