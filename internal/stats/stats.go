// Package stats collects event counters and formats the experiment tables.
// Counters are atomic so that every layer (VMMC, protocol, CableS) can bump
// them from concurrently running simulated threads.
package stats

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counters aggregates system-wide event counts for one application run.
type Counters struct {
	// Communication layer.
	MessagesSent  atomic.Int64
	BytesSent     atomic.Int64
	Fetches       atomic.Int64
	BytesFetched  atomic.Int64
	Notifications atomic.Int64

	// SVM protocol.
	PageFaults       atomic.Int64 // all page faults taken
	RemotePageFaults atomic.Int64 // faults served by a remote home
	DiffsSent        atomic.Int64
	DiffBytes        atomic.Int64
	Invalidations    atomic.Int64
	WriteNotices     atomic.Int64

	// Synchronization.
	LockAcquires       atomic.Int64
	RemoteLockAcquires atomic.Int64
	Barriers           atomic.Int64
	CondWaits          atomic.Int64
	CondSignals        atomic.Int64

	// CableS management.
	ThreadsCreated  atomic.Int64
	NodesAttached   atomic.Int64
	SegMigrations   atomic.Int64
	OwnerDetects    atomic.Int64
	AdminRequests   atomic.Int64
	SharedAllocated atomic.Int64 // bytes of global shared memory allocated
}

// Snapshot returns the counters as a name->value map, for reporting.
func (c *Counters) Snapshot() map[string]int64 {
	return map[string]int64{
		"messages":       c.MessagesSent.Load(),
		"bytesSent":      c.BytesSent.Load(),
		"fetches":        c.Fetches.Load(),
		"bytesFetched":   c.BytesFetched.Load(),
		"notifications":  c.Notifications.Load(),
		"pageFaults":     c.PageFaults.Load(),
		"remoteFaults":   c.RemotePageFaults.Load(),
		"diffs":          c.DiffsSent.Load(),
		"diffBytes":      c.DiffBytes.Load(),
		"invalidations":  c.Invalidations.Load(),
		"writeNotices":   c.WriteNotices.Load(),
		"lockAcquires":   c.LockAcquires.Load(),
		"remoteLocks":    c.RemoteLockAcquires.Load(),
		"barriers":       c.Barriers.Load(),
		"condWaits":      c.CondWaits.Load(),
		"condSignals":    c.CondSignals.Load(),
		"threadsCreated": c.ThreadsCreated.Load(),
		"nodesAttached":  c.NodesAttached.Load(),
		"segMigrations":  c.SegMigrations.Load(),
		"ownerDetects":   c.OwnerDetects.Load(),
		"adminRequests":  c.AdminRequests.Load(),
		"sharedBytes":    c.SharedAllocated.Load(),
	}
}

// String lists the non-zero counters in sorted order.
func (c *Counters) String() string {
	m := c.Snapshot()
	keys := make([]string, 0, len(m))
	for k, v := range m {
		if v != 0 {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = fmt.Sprintf("%s=%d", k, m[k])
	}
	return strings.Join(parts, " ")
}

// Table is a minimal fixed-width text table writer used by the experiment
// harness to print rows in the shape of the paper's tables.
type Table struct {
	mu     sync.Mutex
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table { return &Table{header: header} }

// AddRow appends one row; cells beyond the header width are dropped.
func (t *Table) AddRow(cells ...string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(cells) > len(t.header) {
		cells = cells[:len(t.header)]
	}
	row := make([]string, len(t.header))
	copy(row, cells)
	t.rows = append(t.rows, row)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	t.mu.Lock()
	defer t.mu.Unlock()
	width := make([]int, len(t.header))
	for i, h := range t.header {
		width[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	var b strings.Builder
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", width[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.header)
	total := 0
	for _, w := range width {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total-2))
	b.WriteByte('\n')
	for _, r := range t.rows {
		line(r)
	}
	return b.String()
}
