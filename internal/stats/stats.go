// Package stats collects event counters and formats the experiment tables.
// Counters are sharded per cluster node so that every layer (VMMC, protocol,
// CableS, fault injection) can bump them from concurrently running simulated
// threads without ping-ponging a shared cache line across host cores; totals
// are aggregated at read time.
//
// Call sites name a node and a typed Event; Event.String is the stable
// Snapshot key (docs/OBSERVABILITY.md lists every event and which layer
// emits it).  New events are appended to the enum so earlier events keep
// their numeric identities across versions.
package stats

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Event identifies one system-wide event counter.
type Event uint32

// The counted events, by layer.
const (
	// Communication layer.
	EvMessagesSent Event = iota
	EvBytesSent
	EvFetches
	EvBytesFetched
	EvNotifications

	// SVM protocol.
	EvPageFaults       // all page faults taken
	EvRemotePageFaults // faults served by a remote home
	EvDiffsSent
	EvDiffBytes
	EvInvalidations
	EvWriteNotices

	// Synchronization.
	EvLockAcquires
	EvRemoteLockAcquires
	EvBarriers
	EvCondWaits
	EvCondSignals

	// CableS management.
	EvThreadsCreated
	EvNodesAttached
	EvSegMigrations
	EvOwnerDetects
	EvAdminRequests
	EvSharedAllocated // bytes of global shared memory allocated

	// Fault injection and recovery (internal/fault).  Appended after the
	// original enum so earlier events keep their numeric identities.
	EvFaultsInjected // total fault firings of any class
	EvSendRetries    // sends retried after a transient NIC failure
	EvFetchRetries   // remote reads retried after a transient failure
	EvNotifyLost     // notifications lost in flight and re-sent
	EvRegRecoveries  // NIC region deregister/re-register recovery cycles
	EvLockRehomes    // locks re-homed away from a detached node
	EvBarrierRehomes // barriers re-homed away from a detached node
	EvPageRehomes    // pages re-homed away from a detached node
	EvNodeDetaches   // nodes detached mid-run by a fault plan
	EvAttachDelays   // node attaches delayed by a fault plan

	// Wire plane (internal/wire).  Appended so earlier events keep their
	// numeric identities.
	EvWireOps        // operations issued through the wire plane
	EvPageMigrations // page homes moved through the wire plane (KindMigrate)

	// COW frame store (internal/memsys frame.go).  Appended so earlier
	// events keep their numeric identities.  Host-memory observability:
	// both events describe work the paper's system did eagerly (page
	// copies), so they carry no virtual-time charge of their own.
	EvCowUnshares // shared frames privatized by the first write of an interval
	EvDedupHits   // fetches that aliased an existing identical-content frame

	// Coherence-protocol variants (internal/coherence).  Appended so
	// earlier events keep their numeric identities.
	EvDelegations // critical sections shipped to a lock's delegation server
	EvCommMerges  // batched commutative merge ops sent at a flush

	numEvents
)

// NumEvents is the number of distinct counted events.
const NumEvents = int(numEvents)

// eventKeys are the Snapshot map keys, indexed by Event.
var eventKeys = [NumEvents]string{
	"messages", "bytesSent", "fetches", "bytesFetched", "notifications",
	"pageFaults", "remoteFaults", "diffs", "diffBytes", "invalidations",
	"writeNotices",
	"lockAcquires", "remoteLocks", "barriers", "condWaits", "condSignals",
	"threadsCreated", "nodesAttached", "segMigrations", "ownerDetects",
	"adminRequests", "sharedBytes",
	"faultsInjected", "sendRetries", "fetchRetries", "notifyLost",
	"regRecoveries", "lockRehomes", "barrierRehomes", "pageRehomes",
	"nodeDetaches", "attachDelays",
	"wireOps", "pageMigrations",
	"cowUnshares", "dedupHits",
	"delegations", "commMerges",
}

// String returns the Snapshot key of the event.
func (e Event) String() string {
	if int(e) >= NumEvents {
		return fmt.Sprintf("Event(%d)", uint32(e))
	}
	return eventKeys[e]
}

// cacheLine is the padding unit separating per-node counter lanes.
const cacheLine = 64

// lane is one node's private block of event counters, padded so two nodes'
// lanes never share a cache line.  The pad leads the struct: when the
// counters already fill whole cache lines the pad is zero-sized, and a
// trailing zero-size field would force the compiler to append alignment
// padding anyway.
type lane struct {
	_ [(cacheLine - (NumEvents*8)%cacheLine) % cacheLine]byte
	v [NumEvents]atomic.Int64
}

// Counters aggregates system-wide event counts for one application run.
// Writes go to the caller's node lane; reads sum all lanes.  Construct with
// NewCounters.
type Counters struct {
	lanes []lane
}

// NewCounters creates a counter set sharded across nodes lanes (at least 1).
func NewCounters(nodes int) *Counters {
	if nodes < 1 {
		nodes = 1
	}
	return &Counters{lanes: make([]lane, nodes)}
}

// Add accumulates d into event e on node's lane.  node must be a valid
// cluster node index (counters are attributed to the node whose simulated
// work caused the event).
func (c *Counters) Add(node int, e Event, d int64) {
	c.lanes[node].v[e].Add(d)
}

// Load returns the cluster-wide total for event e.
func (c *Counters) Load(e Event) int64 {
	var s int64
	for i := range c.lanes {
		s += c.lanes[i].v[e].Load()
	}
	return s
}

// Snapshot is one point-in-time reading of every counter, keyed by
// Event.String().  Snapshots subtract (Delta) to form counter windows.
type Snapshot map[string]int64

// Snapshot returns the counters as a name->value map, for reporting.
func (c *Counters) Snapshot() Snapshot {
	m := make(Snapshot, NumEvents)
	for e := Event(0); e < numEvents; e++ {
		m[eventKeys[e]] = c.Load(e)
	}
	return m
}

// Delta returns the counter window since prev: the current reading minus
// prev, per key.  A nil prev yields the current reading itself, so a
// phase loop can start from nothing.
func (c *Counters) Delta(prev Snapshot) Snapshot {
	return c.Snapshot().Delta(prev)
}

// Delta returns s - prev, per key (keys missing from prev count as zero).
func (s Snapshot) Delta(prev Snapshot) Snapshot {
	d := make(Snapshot, len(s))
	for k, v := range s {
		d[k] = v - prev[k]
	}
	return d
}

// String lists the non-zero entries in sorted order.
func (s Snapshot) String() string {
	keys := make([]string, 0, len(s))
	for k, v := range s {
		if v != 0 {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = fmt.Sprintf("%s=%d", k, s[k])
	}
	return strings.Join(parts, " ")
}

// String lists the non-zero counters in sorted order.
func (c *Counters) String() string {
	return c.Snapshot().String()
}

// Table is a minimal fixed-width text table writer used by the experiment
// harness to print rows in the shape of the paper's tables.
type Table struct {
	mu     sync.Mutex
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table { return &Table{header: header} }

// AddRow appends one row; cells beyond the header width are dropped.
func (t *Table) AddRow(cells ...string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(cells) > len(t.header) {
		cells = cells[:len(t.header)]
	}
	row := make([]string, len(t.header))
	copy(row, cells)
	t.rows = append(t.rows, row)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	t.mu.Lock()
	defer t.mu.Unlock()
	width := make([]int, len(t.header))
	for i, h := range t.header {
		width[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	var b strings.Builder
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", width[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.header)
	total := 0
	for _, w := range width {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total-2))
	b.WriteByte('\n')
	for _, r := range t.rows {
		line(r)
	}
	return b.String()
}
