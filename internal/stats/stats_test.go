package stats

import (
	"strings"
	"sync"
	"testing"
	"unsafe"

	"cables/internal/sim"
)

func TestCountersSnapshotAndString(t *testing.T) {
	c := NewCounters(4)
	c.Add(0, EvPageFaults, 2)
	c.Add(3, EvPageFaults, 1) // totals aggregate across node lanes
	c.Add(1, EvDiffsSent, 2)
	snap := c.Snapshot()
	if snap["pageFaults"] != 3 || snap["diffs"] != 2 || snap["barriers"] != 0 {
		t.Errorf("snapshot: %v", snap)
	}
	s := c.String()
	if !strings.Contains(s, "pageFaults=3") || !strings.Contains(s, "diffs=2") {
		t.Errorf("string: %s", s)
	}
	if strings.Contains(s, "barriers") {
		t.Error("zero counters should be omitted")
	}
}

func TestCountersConcurrent(t *testing.T) {
	c := NewCounters(8)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Add(i, EvMessagesSent, 1)
			}
		}()
	}
	wg.Wait()
	if c.Load(EvMessagesSent) != 8000 {
		t.Errorf("messages: %d", c.Load(EvMessagesSent))
	}
}

func TestCounterLanePadding(t *testing.T) {
	// Two nodes' lanes must never share a cache line, or the sharding buys
	// nothing on a multicore host.
	c := NewCounters(2)
	if n := len(c.lanes); n != 2 {
		t.Fatalf("lanes: %d", n)
	}
	var l lane
	if s := unsafe.Sizeof(l); s%cacheLine != 0 {
		t.Errorf("lane size %d is not a multiple of the %d-byte cache line", s, cacheLine)
	}
}

func TestTableRendering(t *testing.T) {
	tab := NewTable("Name", "Value")
	tab.AddRow("short", "1")
	tab.AddRow("a much longer name", "2", "dropped-extra-cell")
	tab.AddRow("partial")
	s := tab.String()
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 5 { // header + rule + 3 rows
		t.Fatalf("lines: %d\n%s", len(lines), s)
	}
	if !strings.HasPrefix(lines[0], "Name") {
		t.Errorf("header: %q", lines[0])
	}
	width := len(lines[0])
	for _, l := range lines[2:] {
		if len(l) > width+8 {
			t.Errorf("ragged row: %q", l)
		}
	}
	if !strings.Contains(s, "a much longer name  2") {
		t.Errorf("row content:\n%s", s)
	}
}

func TestOpStats(t *testing.T) {
	var s OpStats
	task := sim.NewTask(1, 0, sim.DefaultCosts())
	s.Time(task, "op", func() { task.Charge(sim.CatLocal, 10*sim.Microsecond) })
	s.Time(task, "op", func() { task.Charge(sim.CatLocal, 20*sim.Microsecond) })
	s.Record("other", 5*sim.Microsecond)
	avg, n := s.Avg("op")
	if n != 2 || avg != 15*sim.Microsecond {
		t.Errorf("avg: %v x%d", avg, n)
	}
	if _, n := s.Avg("missing"); n != 0 {
		t.Error("missing op has count")
	}
	if ops := s.Ops(); len(ops) != 2 || ops[0] != "op" || ops[1] != "other" {
		t.Errorf("ops: %v", ops)
	}
	if str := s.String(); !strings.Contains(str, "op=15.0us(x2)") {
		t.Errorf("string: %s", str)
	}
}
