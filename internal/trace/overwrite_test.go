package trace

import (
	"sync"
	"testing"

	"cables/internal/sim"
)

// TestConcurrentOverwritePinsDropped hammers a small ring from many
// goroutines, far past capacity: every overwritten event must be accounted
// for in Dropped, and the retained window must hold exactly capacity
// events.
func TestConcurrentOverwritePinsDropped(t *testing.T) {
	const (
		capacity    = 64
		writers     = 8
		perWriter   = 1000
		totalAdds   = writers * perWriter
		wantKept    = capacity
		wantDropped = int64(totalAdds - capacity)
	)
	r := NewRing(capacity)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				r.Add(sim.Time(i), w, KindFault, uint64(i))
			}
		}(w)
	}
	wg.Wait()
	if got := r.Dropped(); got != wantDropped {
		t.Errorf("Dropped() = %d, want %d", got, wantDropped)
	}
	if got := len(r.Events()); got != wantKept {
		t.Errorf("len(Events()) = %d, want %d", got, wantKept)
	}
	// Counts covers exactly the retained suffix, never the dropped prefix.
	sum := 0
	for _, n := range r.Counts() {
		sum += n
	}
	if sum != wantKept {
		t.Errorf("Counts() sums to %d, want %d", sum, wantKept)
	}
}

// TestCountsCoverRetainedSuffix drives a ring past capacity with a known
// event schedule and checks the per-kind census reflects only the last
// `capacity` events.
func TestCountsCoverRetainedSuffix(t *testing.T) {
	r := NewRing(4)
	// 6 appends: the first two (faults) are overwritten; the retained
	// suffix is diff, lock, lock, barrier.
	r.Add(1, 0, KindFault, 1)
	r.Add(2, 0, KindFault, 2)
	r.Add(3, 0, KindDiff, 3)
	r.Add(4, 0, KindLock, 4)
	r.Add(5, 0, KindLock, 5)
	r.Add(6, 0, KindBarrier, 6)
	if got := r.Dropped(); got != 2 {
		t.Fatalf("Dropped() = %d, want 2", got)
	}
	counts := r.Counts()
	want := map[Kind]int{KindDiff: 1, KindLock: 2, KindBarrier: 1}
	if len(counts) != len(want) {
		t.Fatalf("Counts() = %v, want %v", counts, want)
	}
	for k, n := range want {
		if counts[k] != n {
			t.Errorf("Counts()[%s] = %d, want %d", k, counts[k], n)
		}
	}
	evs := r.Events()
	if len(evs) != 4 || evs[0].Kind != KindDiff || evs[3].Kind != KindBarrier {
		t.Errorf("retained suffix wrong: %v", evs)
	}
}

// TestChecksumStableAcrossOverwrite pins checksum determinism on a wrapped
// ring: the same append schedule yields the same checksum (the retained
// multiset is identical), and a schedule whose retained suffix differs
// yields a different one.
func TestChecksumStableAcrossOverwrite(t *testing.T) {
	fill := func(last uint64) *Ring {
		r := NewRing(8)
		for i := uint64(0); i < 20; i++ {
			r.Add(sim.Time(i), int(i%3), KindFault, i)
		}
		r.Add(20, 0, KindDiff, last)
		return r
	}
	a, b, c := fill(99), fill(99), fill(100)
	if a.Checksum() != b.Checksum() {
		t.Errorf("identical schedules: checksums differ: %#x vs %#x",
			a.Checksum(), b.Checksum())
	}
	if a.Checksum() == c.Checksum() {
		t.Errorf("different retained suffix, same checksum %#x", a.Checksum())
	}
	// The checksum is a pure read: recomputing it must not perturb it.
	if a.Checksum() != a.Checksum() {
		t.Error("Checksum() not idempotent")
	}
}
