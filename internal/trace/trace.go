// Package trace provides a bounded in-memory event trace for the SVM
// protocol and the fault-injection layer: page faults, diffs,
// invalidations, synchronization events, injected faults and recovery
// actions, all with virtual timestamps.  It exists for debugging protocol
// behavior and for inspecting experiment runs (`cablesim counters -trace`,
// `cablesim faults`).
//
// The Ring is a fixed-capacity overwrite buffer: Dropped reports how many
// events were overwritten so a truncated trace is never mistaken for a
// complete one, and Checksum folds the retained events into an
// order-insensitive hash used by the fault-determinism tests (docs/
// OBSERVABILITY.md documents the event kinds and tooling).
package trace

import (
	"fmt"
	"strings"
	"sync"

	"cables/internal/sim"
)

// Kind classifies trace events.
type Kind string

// Event kinds emitted by the protocol layers.
const (
	KindFault      Kind = "fault"      // page fault taken
	KindRemoteFill Kind = "fill"       // page fetched from a remote home
	KindDiff       Kind = "diff"       // diff applied to a home
	KindInvalidate Kind = "invalidate" // copy dropped at an acquire
	KindBarrier    Kind = "barrier"    // barrier departure
	KindLock       Kind = "lock"       // lock acquired
	KindMigrate    Kind = "migrate"    // home moved
)

// Event kinds emitted by the fault-injection layer (internal/fault).
const (
	KindInject Kind = "inject" // a fault fired (send/fetch/notify/attach)
	KindDetach Kind = "detach" // a node left the application
	KindRehome Kind = "rehome" // lock/barrier/page re-homed off a dead node
	KindRereg  Kind = "rereg"  // NIC region deregister/re-register recovery
)

// Event is one protocol occurrence.
type Event struct {
	At   sim.Time
	Node int
	Kind Kind
	Arg  uint64 // page id, lock id, ... depending on Kind
}

// String renders the event compactly.
func (e Event) String() string {
	return fmt.Sprintf("%-10v n%d %-10s %#x", e.At, e.Node, e.Kind, e.Arg)
}

// Ring is a fixed-capacity, concurrency-safe event buffer; when full, the
// oldest events are overwritten.
type Ring struct {
	mu      sync.Mutex
	buf     []Event
	next    int
	wrapped bool
	dropped int64
}

// NewRing creates a ring holding up to capacity events.
func NewRing(capacity int) *Ring {
	if capacity <= 0 {
		capacity = 1024
	}
	return &Ring{buf: make([]Event, capacity)}
}

// Add records an event.
func (r *Ring) Add(at sim.Time, node int, kind Kind, arg uint64) {
	r.mu.Lock()
	if r.wrapped {
		r.dropped++
	}
	r.buf[r.next] = Event{At: at, Node: node, Kind: kind, Arg: arg}
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.wrapped = true
	}
	r.mu.Unlock()
}

// Events returns the retained events, oldest first.
func (r *Ring) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.wrapped {
		out := make([]Event, r.next)
		copy(out, r.buf[:r.next])
		return out
	}
	out := make([]Event, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}

// Dropped reports how many events were overwritten.
func (r *Ring) Dropped() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// Checksum folds the retained events into a single order-insensitive hash:
// each event is hashed independently (SplitMix64 over its fields) and the
// hashes are summed, so two rings holding the same multiset of events match
// even when concurrent nodes interleaved their appends differently.
func (r *Ring) Checksum() uint64 {
	var sum uint64
	for _, e := range r.Events() {
		x := uint64(e.At) ^ uint64(e.Node)<<48 ^ e.Arg*0xC2B2AE3D27D4EB4F
		for _, c := range []byte(e.Kind) {
			x = (x ^ uint64(c)) * 0x100000001B3
		}
		x += 0x9E3779B97F4A7C15
		x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
		x = (x ^ (x >> 27)) * 0x94D049BB133111EB
		sum += x ^ (x >> 31)
	}
	return sum
}

// Counts aggregates retained events per kind.
func (r *Ring) Counts() map[Kind]int {
	m := make(map[Kind]int)
	for _, e := range r.Events() {
		m[e.Kind]++
	}
	return m
}

// Tail renders the most recent n events.
func (r *Ring) Tail(n int) string {
	evs := r.Events()
	if n > 0 && len(evs) > n {
		evs = evs[len(evs)-n:]
	}
	var b strings.Builder
	for _, e := range evs {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}
