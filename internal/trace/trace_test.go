package trace

import (
	"strings"
	"sync"
	"testing"

	"cables/internal/sim"
)

func TestRingOrderAndWrap(t *testing.T) {
	r := NewRing(4)
	for i := 0; i < 6; i++ {
		r.Add(sim.Time(i), i, KindFault, uint64(i))
	}
	evs := r.Events()
	if len(evs) != 4 {
		t.Fatalf("retained %d events", len(evs))
	}
	for i, e := range evs {
		if e.Arg != uint64(i+2) {
			t.Errorf("event %d arg %d, want %d (oldest-first after wrap)", i, e.Arg, i+2)
		}
	}
	if r.Dropped() != 2 {
		t.Errorf("dropped: %d", r.Dropped())
	}
}

func TestRingNoWrap(t *testing.T) {
	r := NewRing(8)
	r.Add(5, 1, KindDiff, 42)
	r.Add(9, 2, KindBarrier, 0)
	evs := r.Events()
	if len(evs) != 2 || evs[0].Kind != KindDiff || evs[1].Kind != KindBarrier {
		t.Fatalf("events: %v", evs)
	}
	if r.Dropped() != 0 {
		t.Error("dropped should be zero")
	}
}

func TestCountsAndTail(t *testing.T) {
	r := NewRing(16)
	for i := 0; i < 3; i++ {
		r.Add(sim.Time(i), 0, KindInvalidate, uint64(i))
	}
	r.Add(10, 1, KindLock, 7)
	c := r.Counts()
	if c[KindInvalidate] != 3 || c[KindLock] != 1 {
		t.Errorf("counts: %v", c)
	}
	tail := r.Tail(2)
	if !strings.Contains(tail, "lock") || strings.Count(tail, "\n") != 2 {
		t.Errorf("tail:\n%s", tail)
	}
}

func TestRingConcurrent(t *testing.T) {
	r := NewRing(64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				r.Add(sim.Time(i), 0, KindFault, uint64(i))
			}
		}()
	}
	wg.Wait()
	if got := len(r.Events()); got != 64 {
		t.Errorf("retained: %d", got)
	}
	if r.Dropped() != 8*100-64 {
		t.Errorf("dropped: %d", r.Dropped())
	}
}

// TestChecksumOrderInsensitive pins the property fault-determinism tests
// rely on: two rings holding the same multiset of events produce the same
// checksum even when concurrent appends interleaved differently.
func TestChecksumOrderInsensitive(t *testing.T) {
	evs := []Event{
		{At: 10, Node: 0, Kind: KindFault, Arg: 3},
		{At: 20, Node: 1, Kind: KindDiff, Arg: 7},
		{At: 30, Node: 2, Kind: KindInject, Arg: 1},
		{At: 30, Node: 2, Kind: KindInject, Arg: 1}, // duplicate must count twice
	}
	a, b := NewRing(8), NewRing(8)
	for _, e := range evs {
		a.Add(e.At, e.Node, e.Kind, e.Arg)
	}
	for i := len(evs) - 1; i >= 0; i-- {
		b.Add(evs[i].At, evs[i].Node, evs[i].Kind, evs[i].Arg)
	}
	if a.Checksum() != b.Checksum() {
		t.Error("checksum depends on append order")
	}
	if a.Checksum() == 0 {
		t.Error("non-empty ring checksums to zero")
	}
	// Dropping the duplicate must change the sum (multiset, not set).
	c := NewRing(8)
	for _, e := range evs[:3] {
		c.Add(e.At, e.Node, e.Kind, e.Arg)
	}
	if c.Checksum() == a.Checksum() {
		t.Error("checksum ignores event multiplicity")
	}
	if NewRing(4).Checksum() != 0 {
		t.Error("empty ring should checksum to zero")
	}
}

func TestZeroCapacityDefaults(t *testing.T) {
	r := NewRing(0)
	r.Add(1, 0, KindMigrate, 1)
	if len(r.Events()) != 1 {
		t.Error("default-capacity ring broken")
	}
}
