package vmmc

import (
	"errors"
	"testing"

	"cables/internal/fault"
	"cables/internal/san"
	"cables/internal/sim"
	"cables/internal/stats"
)

// newFaultSys builds a system with an installed injector and returns both
// plus the counters, for registration-pressure tests.
func newFaultSys(limits Limits, plan string, seed uint64) (*System, *fault.Injector, *stats.Counters) {
	ctr := stats.NewCounters(4)
	fab := san.New(4, sim.DefaultCosts(), ctr)
	s := NewSystem(fab, limits)
	inj := fault.New(fault.MustParsePlan(plan), seed)
	inj.BindCounters(ctr)
	s.SetFault(inj)
	return s, inj, ctr
}

// TestNICMemPressureShrinksLimit checks that a nicmem rule shrinks the
// effective registered-byte limit only for time-aware calls inside the rule
// window; construction-time registration (Register/Grow) never sees it.
func TestNICMemPressureShrinksLimit(t *testing.T) {
	s, _, _ := newFaultSys(
		Limits{MaxRegions: 8, MaxRegisteredBytes: 100 << 20, MaxPinnedBytes: 100 << 20},
		"nicmem:node=1,reserve=64M,from=1ms,to=10ms", 1)
	nic := s.NIC(1)
	// Construction-time path ignores pressure even though the rule's window
	// technically includes t=0..; runtimes register their base regions here.
	id, err := nic.Register("home", 80<<20, true, false)
	if err != nil {
		t.Fatalf("construction-time register saw fault pressure: %v", err)
	}
	nic.Unregister(id)
	// Time-aware path: inside the window only 36M are left.
	if _, err := nic.RegisterAt("home", 80<<20, true, false, 5*sim.Millisecond); !errors.Is(err, ErrRegisteredLimit) {
		t.Errorf("pressured register: %v, want ErrRegisteredLimit", err)
	}
	if _, err := nic.RegisterAt("home", 80<<20, true, false, 20*sim.Millisecond); err != nil {
		t.Errorf("register after window: %v", err)
	}
	// An unpressured node is unaffected inside the window.
	if _, err := s.NIC(2).RegisterAt("home", 80<<20, true, false, 5*sim.Millisecond); err != nil {
		t.Errorf("other node pressured: %v", err)
	}
}

// TestGrowRecoverRidesOutPressure drives the recovery loop: a grow that hits
// transient NIC registration exhaustion backs off, models deregister/
// re-register cycles, and succeeds once the pressure window closes — all in
// virtual time, with the recovery recorded in the counters.
func TestGrowRecoverRidesOutPressure(t *testing.T) {
	s, inj, ctr := newFaultSys(
		Limits{MaxRegions: 8, MaxRegisteredBytes: 64 << 20, MaxPinnedBytes: 64 << 20},
		"nicmem:node=0,reserve=32M,from=0ms,to=2ms", 1)
	nic := s.NIC(0)
	id, err := nic.Register("home", 48<<20, true, false)
	if err != nil {
		t.Fatal(err)
	}
	task := sim.NewTask(1, 0, sim.DefaultCosts())
	// At t=0 only 32M are free and 48M are registered: growing by 8M trips
	// the pressured limit (48+8 > 64-32) until the window closes at 2ms.
	if err := s.GrowRecover(task, 0, id, 8<<20); err != nil {
		t.Fatalf("GrowRecover: %v", err)
	}
	if task.Now() < 2*sim.Millisecond {
		t.Errorf("recovery finished at %v, before the pressure window closed", task.Now())
	}
	if got := ctr.Load(stats.EvRegRecoveries); got != 1 {
		t.Errorf("regRecoveries: %d, want 1", got)
	}
	if inj.Injected() == 0 {
		t.Error("recovery not tallied as an injection")
	}
	if _, reg, _ := nic.Usage(); reg != 56<<20 {
		t.Errorf("registered bytes after grow: %d, want 56M", reg)
	}
}

// TestGrowRecoverGivesUpUnderPermanentPressure checks the bounded-retry
// contract: open-ended pressure exhausts MaxRegRetries and surfaces
// ErrRegisteredLimit so the caller can fall back to master homing.
func TestGrowRecoverGivesUpUnderPermanentPressure(t *testing.T) {
	s, _, ctr := newFaultSys(
		Limits{MaxRegions: 8, MaxRegisteredBytes: 64 << 20, MaxPinnedBytes: 64 << 20},
		"nicmem:node=0,reserve=32M", 1)
	nic := s.NIC(0)
	id, err := nic.Register("home", 48<<20, true, false)
	if err != nil {
		t.Fatal(err)
	}
	task := sim.NewTask(1, 0, sim.DefaultCosts())
	if err := s.GrowRecover(task, 0, id, 8<<20); !errors.Is(err, ErrRegisteredLimit) {
		t.Fatalf("GrowRecover under permanent pressure: %v, want ErrRegisteredLimit", err)
	}
	if ctr.Load(stats.EvRegRecoveries) != 0 {
		t.Error("failed recovery recorded a success")
	}
	if task.Now() == 0 {
		t.Error("retry attempts charged no virtual time")
	}
	// The region is unchanged after the failed grow.
	if _, reg, _ := nic.Usage(); reg != 48<<20 {
		t.Errorf("registered bytes after failed grow: %d, want 48M", reg)
	}
}

// TestGrowRecoverWithoutInjectorPassesErrorThrough checks that with no fault
// plan installed GrowRecover is plain GrowAt: a genuine limit error returns
// immediately with no retry charges.
func TestGrowRecoverWithoutInjectorPassesErrorThrough(t *testing.T) {
	fab := san.New(2, sim.DefaultCosts(), stats.NewCounters(2))
	s := NewSystem(fab, Limits{MaxRegions: 8, MaxRegisteredBytes: 32 << 20, MaxPinnedBytes: 32 << 20})
	id, err := s.NIC(0).Register("home", 32<<20, true, false)
	if err != nil {
		t.Fatal(err)
	}
	task := sim.NewTask(1, 0, sim.DefaultCosts())
	if err := s.GrowRecover(task, 0, id, 1); !errors.Is(err, ErrRegisteredLimit) {
		t.Fatalf("GrowRecover: %v", err)
	}
	if task.Now() != 0 {
		t.Errorf("no-injector failure charged %v", task.Now())
	}
}
