// Package vmmc models the Virtual Memory Mapped Communication layer the
// paper builds on: user-level direct remote memory writes and reads, a
// send/notification primitive, and — critically for CableS — NIC memory
// registration with hardware resource limits (number of regions, total
// registered bytes, total pinned bytes).  GeNIMA and CableS differ in how
// many NIC resources they consume; those differences produce the paper's
// Table 1/2 results and the OCEAN-at-32-processors registration failure.
//
// Under a fault plan (SetFault, see internal/fault) notifications can be
// lost in flight (the sender times out and re-sends with backoff) and a
// nicmem rule applies registration-memory pressure to time-aware calls
// (RegisterAt/GrowAt): the effective registered-byte limit shrinks for the
// rule's window, surfacing mid-run exhaustion that GrowRecover rides out
// with deregister/re-register recovery cycles.
package vmmc

import (
	"errors"
	"fmt"
	"sync"

	"cables/internal/fault"
	"cables/internal/san"
	"cables/internal/stats"
	"cables/internal/sim"
)

// Registration failure modes (SAN limitations, paper §2.1.1).
var (
	// ErrRegionLimit means the NIC cannot hold another exported region.
	ErrRegionLimit = errors.New("vmmc: NIC region table full")
	// ErrRegisteredLimit means the total registered memory limit is exceeded.
	ErrRegisteredLimit = errors.New("vmmc: NIC registered-memory limit exceeded")
	// ErrPinnedLimit means the OS cannot pin more physical memory.
	ErrPinnedLimit = errors.New("vmmc: pinned-memory limit exceeded")
)

// Limits describes a NIC's (and host OS's) registration resources.
type Limits struct {
	// MaxRegions is the number of region entries the NIC can hold.
	MaxRegions int
	// MaxRegisteredBytes is the total memory mappable on the NIC.
	MaxRegisteredBytes int64
	// MaxPinnedBytes is the OS limit on non-pageable memory.
	MaxPinnedBytes int64
}

// DefaultLimits returns limits calibrated so the base SVM system reproduces
// the paper's registration failure point (see DESIGN.md §4).
func DefaultLimits() Limits {
	return Limits{
		MaxRegions:         512,
		MaxRegisteredBytes: 256 << 20,
		MaxPinnedBytes:     256 << 20,
	}
}

// RegionID names one registered region on a NIC.
type RegionID int

// Region is one NIC registration entry.
type Region struct {
	ID     RegionID
	Label  string
	Bytes  int64
	Pinned bool
	// Dynamic regions are managed by the communication layer on demand
	// (UTLB-style, refs [9,4] in the paper); they bypass the static limits
	// but cost more per first access.
	Dynamic bool
}

// NIC is the per-node registration state.
type NIC struct {
	node   int
	limits Limits
	inj    *fault.Injector // nil = no registration-memory pressure

	mu       sync.Mutex
	regions  map[RegionID]*Region
	nextID   RegionID
	regBytes int64
	pinBytes int64
}

// effRegLimit returns the registered-byte limit visible at virtual instant
// now: the hardware limit minus any registration-memory pressure a fault
// plan applies to this node during that window.
func (n *NIC) effRegLimit(now sim.Time) int64 {
	lim := n.limits.MaxRegisteredBytes
	if n.inj != nil {
		lim -= n.inj.RegReserve(n.node, now)
	}
	return lim
}

// noPressure is the RegisterAt/GrowAt instant meaning "ignore any fault
// plan's registration-memory pressure" (virtual time is never negative).
const noPressure = sim.Time(-1)

// Register enters a region of the given size into the NIC's tables.  Static
// registrations (dynamic=false) consume the limited resources and may fail;
// dynamic registrations always succeed but are tracked for reporting.
// Registration pressure from fault plans is not applied (use RegisterAt).
func (n *NIC) Register(label string, bytes int64, pinned, dynamic bool) (RegionID, error) {
	return n.RegisterAt(label, bytes, pinned, dynamic, noPressure)
}

// RegisterAt is Register evaluated at virtual instant now, so a fault
// plan's NIC registration-memory pressure active in that window shrinks the
// effective registered-byte limit.
func (n *NIC) RegisterAt(label string, bytes int64, pinned, dynamic bool, now sim.Time) (RegionID, error) {
	if bytes < 0 {
		return 0, fmt.Errorf("vmmc: negative region size %d", bytes)
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if !dynamic {
		staticCount := 0
		for _, r := range n.regions {
			if !r.Dynamic {
				staticCount++
			}
		}
		if staticCount+1 > n.limits.MaxRegions {
			return 0, fmt.Errorf("node %d registering %q (%d regions in use): %w",
				n.node, label, staticCount, ErrRegionLimit)
		}
		if lim := n.effRegLimit(now); n.regBytes+bytes > lim {
			return 0, fmt.Errorf("node %d registering %q (%d+%d > %d bytes): %w",
				n.node, label, n.regBytes, bytes, lim, ErrRegisteredLimit)
		}
		if pinned && n.pinBytes+bytes > n.limits.MaxPinnedBytes {
			return 0, fmt.Errorf("node %d pinning %q (%d+%d > %d bytes): %w",
				n.node, label, n.pinBytes, bytes, n.limits.MaxPinnedBytes,
				ErrPinnedLimit)
		}
		n.regBytes += bytes
		if pinned {
			n.pinBytes += bytes
		}
	}
	n.nextID++
	id := n.nextID
	n.regions[id] = &Region{ID: id, Label: label, Bytes: bytes, Pinned: pinned, Dynamic: dynamic}
	return id, nil
}

// Grow extends an existing static region in place (used by CableS when the
// contiguous home-pages section is extended on first touch).
func (n *NIC) Grow(id RegionID, extra int64) error {
	return n.GrowAt(id, extra, noPressure)
}

// GrowAt is Grow evaluated at virtual instant now; fault-plan registration
// pressure active at that instant shrinks the effective limit, which is how
// NIC memory exhaustion surfaces mid-run (recover with System.GrowRecover).
func (n *NIC) GrowAt(id RegionID, extra int64, now sim.Time) error {
	if extra < 0 {
		return fmt.Errorf("vmmc: negative grow %d", extra)
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	r, ok := n.regions[id]
	if !ok {
		return fmt.Errorf("vmmc: grow of unknown region %d on node %d", id, n.node)
	}
	if !r.Dynamic {
		if lim := n.effRegLimit(now); n.regBytes+extra > lim {
			return fmt.Errorf("node %d growing %q: %w", n.node, r.Label, ErrRegisteredLimit)
		}
		if r.Pinned && n.pinBytes+extra > n.limits.MaxPinnedBytes {
			return fmt.Errorf("node %d growing %q: %w", n.node, r.Label, ErrPinnedLimit)
		}
		n.regBytes += extra
		if r.Pinned {
			n.pinBytes += extra
		}
	}
	r.Bytes += extra
	return nil
}

// Unregister removes a region and releases its resources.
func (n *NIC) Unregister(id RegionID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	r, ok := n.regions[id]
	if !ok {
		return
	}
	if !r.Dynamic {
		n.regBytes -= r.Bytes
		if r.Pinned {
			n.pinBytes -= r.Bytes
		}
	}
	delete(n.regions, id)
}

// Usage reports the current static resource consumption.
func (n *NIC) Usage() (regions int, registered, pinned int64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	for _, r := range n.regions {
		if !r.Dynamic {
			regions++
		}
	}
	return regions, n.regBytes, n.pinBytes
}

// System is the cluster-wide VMMC instance: one NIC per node plus the fabric.
type System struct {
	fab  *san.Fabric
	nics []*NIC
	inj  *fault.Injector // nil = no fault injection
}

// SetFault installs a fault injector on the system and all its NICs:
// notifications may be lost (and re-sent), and NIC registration-memory
// pressure applies to time-aware registration calls.  nil disables both.
func (s *System) SetFault(inj *fault.Injector) {
	s.inj = inj
	for _, n := range s.nics {
		n.inj = inj
	}
}

// NewSystem builds a VMMC system over the fabric with uniform NIC limits.
func NewSystem(fab *san.Fabric, limits Limits) *System {
	s := &System{fab: fab, nics: make([]*NIC, fab.Nodes())}
	for i := range s.nics {
		s.nics[i] = &NIC{node: i, limits: limits, regions: make(map[RegionID]*Region)}
	}
	return s
}

// NIC returns node's NIC.
func (s *System) NIC(node int) *NIC { return s.nics[node] }

// Fabric returns the underlying SAN fabric.
func (s *System) Fabric() *san.Fabric { return s.fab }

// localCopyCost models a same-node memory copy (no network involvement).
func localCopyCost(size int) sim.Time { return sim.Time(size) } // ~1GB/s memcpy

// RemoteWrite charges t for a direct remote write of size bytes from its
// node to dst.  The data movement itself is performed by the caller on the
// simulated memory; VMMC accounts time and traffic.
func (s *System) RemoteWrite(t *sim.Task, dst, size int) {
	n := t.MemNode()
	if dst == n {
		t.Charge(sim.CatLocal, localCopyCost(size))
		return
	}
	t.Charge(sim.CatComm, s.fab.Send(t, n, dst, size))
}

// Fetch charges t for a direct remote read (round trip) of size bytes from
// node src into t's node.
func (s *System) Fetch(t *sim.Task, src, size int) {
	n := t.MemNode()
	if src == n {
		t.Charge(sim.CatLocal, localCopyCost(size))
		return
	}
	t.Charge(sim.CatComm, s.fab.Fetch(t, n, src, size))
}

// StreamWrite charges t for a pipelined bulk transfer of size bytes to dst:
// one end-to-end latency plus bandwidth-limited occupancy.  This is the
// access pattern of the bandwidth microbenchmarks (Table 3's 125 MB/s).
// Under a fault plan the stream suffers the same transient send failures as
// ordinary sends: each failed attempt costs one pipelined transfer time plus
// backoff before the retry.
func (s *System) StreamWrite(t *sim.Task, dst, size int) {
	n := t.MemNode()
	if dst == n {
		t.Charge(sim.CatLocal, localCopyCost(size))
		return
	}
	c := s.fab.Costs()
	now := t.Now()
	var penalty sim.Time
	for a := 0; a < fault.MaxSendRetries && s.inj.FailSend(n, dst, a, now); a++ {
		penalty += c.SendBase + c.Occupancy(size) + fault.Backoff(a)
	}
	t.Charge(sim.CatComm, c.SendBase+c.Occupancy(size)+penalty)
	s.fab.Counters().Add(n, stats.EvMessagesSent, 1)
	s.fab.Counters().Add(n, stats.EvBytesSent, int64(size))
}

// StreamFetch is the read-side mirror of StreamWrite: a pipelined bulk read
// of size bytes from src — one round-trip base latency plus bandwidth-limited
// occupancy (Table 3's read-bandwidth microbenchmark).
func (s *System) StreamFetch(t *sim.Task, src, size int) {
	n := t.MemNode()
	if src == n {
		t.Charge(sim.CatLocal, localCopyCost(size))
		return
	}
	c := s.fab.Costs()
	now := t.Now()
	var penalty sim.Time
	for a := 0; a < fault.MaxSendRetries && s.inj.FailFetch(n, src, a, now); a++ {
		penalty += c.FetchBase + c.Occupancy(size) + fault.Backoff(a)
	}
	t.Charge(sim.CatComm, c.FetchBase+c.Occupancy(size)+penalty)
	s.fab.Counters().Add(n, stats.EvFetches, 1)
	s.fab.Counters().Add(n, stats.EvBytesFetched, int64(size))
}

// Notify charges t for a send carrying size bytes to dst plus the
// receiver-side notification dispatch.  Under a fault plan, a notification
// lost in flight costs the sender a full delivery timeout plus backoff
// before the re-send; delivery is guaranteed within MaxSendRetries.
func (s *System) Notify(t *sim.Task, dst, size int) {
	c := s.fab.Costs()
	n := t.MemNode()
	if dst == n {
		t.Charge(sim.CatLocal, localCopyCost(size)+c.Notification/4)
	} else {
		now := t.Now()
		var penalty sim.Time
		for a := 0; a < fault.MaxSendRetries && s.inj.LoseNotify(n, dst, a, now); a++ {
			penalty += c.SendTime(size) + c.Notification + fault.Backoff(a)
		}
		t.Charge(sim.CatComm, s.fab.Send(t, n, dst, size)+c.Notification+penalty)
	}
	s.fab.Counters().Add(n, stats.EvNotifications, 1)
}

// GrowRecover grows region id on node's NIC on behalf of thread t, riding
// out transient NIC registration-memory exhaustion (a fault plan's nicmem
// pressure): each recovery attempt backs off exponentially, then models a
// deregister/re-register cycle — two OS mapping operations — before
// retrying the grow.  The region keeps its identity across the cycle.
// After MaxRegRetries the exhaustion error is returned and the caller falls
// back (CableS homes the pages on the master instead).
func (s *System) GrowRecover(t *sim.Task, node int, id RegionID, extra int64) error {
	n := s.nics[node]
	err := n.GrowAt(id, extra, t.Now())
	if err == nil || !errors.Is(err, ErrRegisteredLimit) || s.inj == nil {
		return err
	}
	c := s.fab.Costs()
	for attempt := 0; attempt < fault.MaxRegRetries; attempt++ {
		t.Charge(sim.CatWait, fault.Backoff(attempt))
		t.Charge(sim.CatLocalOS, 2*c.OSMapSegment)
		if err = n.GrowAt(id, extra, t.Now()); err == nil {
			s.inj.NoteRegRecovery(node, t.Now(), uint64(id))
			return nil
		}
		if !errors.Is(err, ErrRegisteredLimit) {
			return err
		}
	}
	return err
}
