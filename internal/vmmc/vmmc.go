// Package vmmc models the Virtual Memory Mapped Communication layer the
// paper builds on: user-level direct remote memory writes and reads, a
// send/notification primitive, and — critically for CableS — NIC memory
// registration with hardware resource limits (number of regions, total
// registered bytes, total pinned bytes).  GeNIMA and CableS differ in how
// many NIC resources they consume; those differences produce the paper's
// Table 1/2 results and the OCEAN-at-32-processors registration failure.
package vmmc

import (
	"errors"
	"fmt"
	"sync"

	"cables/internal/san"
	"cables/internal/stats"
	"cables/internal/sim"
)

// Registration failure modes (SAN limitations, paper §2.1.1).
var (
	// ErrRegionLimit means the NIC cannot hold another exported region.
	ErrRegionLimit = errors.New("vmmc: NIC region table full")
	// ErrRegisteredLimit means the total registered memory limit is exceeded.
	ErrRegisteredLimit = errors.New("vmmc: NIC registered-memory limit exceeded")
	// ErrPinnedLimit means the OS cannot pin more physical memory.
	ErrPinnedLimit = errors.New("vmmc: pinned-memory limit exceeded")
)

// Limits describes a NIC's (and host OS's) registration resources.
type Limits struct {
	// MaxRegions is the number of region entries the NIC can hold.
	MaxRegions int
	// MaxRegisteredBytes is the total memory mappable on the NIC.
	MaxRegisteredBytes int64
	// MaxPinnedBytes is the OS limit on non-pageable memory.
	MaxPinnedBytes int64
}

// DefaultLimits returns limits calibrated so the base SVM system reproduces
// the paper's registration failure point (see DESIGN.md §4).
func DefaultLimits() Limits {
	return Limits{
		MaxRegions:         512,
		MaxRegisteredBytes: 256 << 20,
		MaxPinnedBytes:     256 << 20,
	}
}

// RegionID names one registered region on a NIC.
type RegionID int

// Region is one NIC registration entry.
type Region struct {
	ID     RegionID
	Label  string
	Bytes  int64
	Pinned bool
	// Dynamic regions are managed by the communication layer on demand
	// (UTLB-style, refs [9,4] in the paper); they bypass the static limits
	// but cost more per first access.
	Dynamic bool
}

// NIC is the per-node registration state.
type NIC struct {
	node   int
	limits Limits

	mu       sync.Mutex
	regions  map[RegionID]*Region
	nextID   RegionID
	regBytes int64
	pinBytes int64
}

// Register enters a region of the given size into the NIC's tables.  Static
// registrations (dynamic=false) consume the limited resources and may fail;
// dynamic registrations always succeed but are tracked for reporting.
func (n *NIC) Register(label string, bytes int64, pinned, dynamic bool) (RegionID, error) {
	if bytes < 0 {
		return 0, fmt.Errorf("vmmc: negative region size %d", bytes)
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if !dynamic {
		staticCount := 0
		for _, r := range n.regions {
			if !r.Dynamic {
				staticCount++
			}
		}
		if staticCount+1 > n.limits.MaxRegions {
			return 0, fmt.Errorf("node %d registering %q (%d regions in use): %w",
				n.node, label, staticCount, ErrRegionLimit)
		}
		if n.regBytes+bytes > n.limits.MaxRegisteredBytes {
			return 0, fmt.Errorf("node %d registering %q (%d+%d > %d bytes): %w",
				n.node, label, n.regBytes, bytes, n.limits.MaxRegisteredBytes,
				ErrRegisteredLimit)
		}
		if pinned && n.pinBytes+bytes > n.limits.MaxPinnedBytes {
			return 0, fmt.Errorf("node %d pinning %q (%d+%d > %d bytes): %w",
				n.node, label, n.pinBytes, bytes, n.limits.MaxPinnedBytes,
				ErrPinnedLimit)
		}
		n.regBytes += bytes
		if pinned {
			n.pinBytes += bytes
		}
	}
	n.nextID++
	id := n.nextID
	n.regions[id] = &Region{ID: id, Label: label, Bytes: bytes, Pinned: pinned, Dynamic: dynamic}
	return id, nil
}

// Grow extends an existing static region in place (used by CableS when the
// contiguous home-pages section is extended on first touch).
func (n *NIC) Grow(id RegionID, extra int64) error {
	if extra < 0 {
		return fmt.Errorf("vmmc: negative grow %d", extra)
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	r, ok := n.regions[id]
	if !ok {
		return fmt.Errorf("vmmc: grow of unknown region %d on node %d", id, n.node)
	}
	if !r.Dynamic {
		if n.regBytes+extra > n.limits.MaxRegisteredBytes {
			return fmt.Errorf("node %d growing %q: %w", n.node, r.Label, ErrRegisteredLimit)
		}
		if r.Pinned && n.pinBytes+extra > n.limits.MaxPinnedBytes {
			return fmt.Errorf("node %d growing %q: %w", n.node, r.Label, ErrPinnedLimit)
		}
		n.regBytes += extra
		if r.Pinned {
			n.pinBytes += extra
		}
	}
	r.Bytes += extra
	return nil
}

// Unregister removes a region and releases its resources.
func (n *NIC) Unregister(id RegionID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	r, ok := n.regions[id]
	if !ok {
		return
	}
	if !r.Dynamic {
		n.regBytes -= r.Bytes
		if r.Pinned {
			n.pinBytes -= r.Bytes
		}
	}
	delete(n.regions, id)
}

// Usage reports the current static resource consumption.
func (n *NIC) Usage() (regions int, registered, pinned int64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	for _, r := range n.regions {
		if !r.Dynamic {
			regions++
		}
	}
	return regions, n.regBytes, n.pinBytes
}

// System is the cluster-wide VMMC instance: one NIC per node plus the fabric.
type System struct {
	fab  *san.Fabric
	nics []*NIC
}

// NewSystem builds a VMMC system over the fabric with uniform NIC limits.
func NewSystem(fab *san.Fabric, limits Limits) *System {
	s := &System{fab: fab, nics: make([]*NIC, fab.Nodes())}
	for i := range s.nics {
		s.nics[i] = &NIC{node: i, limits: limits, regions: make(map[RegionID]*Region)}
	}
	return s
}

// NIC returns node's NIC.
func (s *System) NIC(node int) *NIC { return s.nics[node] }

// Fabric returns the underlying SAN fabric.
func (s *System) Fabric() *san.Fabric { return s.fab }

// localCopyCost models a same-node memory copy (no network involvement).
func localCopyCost(size int) sim.Time { return sim.Time(size) } // ~1GB/s memcpy

// RemoteWrite charges t for a direct remote write of size bytes from its
// node to dst.  The data movement itself is performed by the caller on the
// simulated memory; VMMC accounts time and traffic.
func (s *System) RemoteWrite(t *sim.Task, dst, size int) {
	if dst == t.NodeID {
		t.Charge(sim.CatLocal, localCopyCost(size))
		return
	}
	t.Charge(sim.CatComm, s.fab.Send(t, t.NodeID, dst, size))
}

// Fetch charges t for a direct remote read (round trip) of size bytes from
// node src into t's node.
func (s *System) Fetch(t *sim.Task, src, size int) {
	if src == t.NodeID {
		t.Charge(sim.CatLocal, localCopyCost(size))
		return
	}
	t.Charge(sim.CatComm, s.fab.Fetch(t, t.NodeID, src, size))
}

// StreamWrite charges t for a pipelined bulk transfer of size bytes to dst:
// one end-to-end latency plus bandwidth-limited occupancy.  This is the
// access pattern of the bandwidth microbenchmarks (Table 3's 125 MB/s).
func (s *System) StreamWrite(t *sim.Task, dst, size int) {
	if dst == t.NodeID {
		t.Charge(sim.CatLocal, localCopyCost(size))
		return
	}
	c := s.fab.Costs()
	t.Charge(sim.CatComm, c.SendBase+c.Occupancy(size))
	s.fab.Counters().Add(t.NodeID, stats.EvMessagesSent, 1)
	s.fab.Counters().Add(t.NodeID, stats.EvBytesSent, int64(size))
}

// Notify charges t for a send carrying size bytes to dst plus the
// receiver-side notification dispatch.
func (s *System) Notify(t *sim.Task, dst, size int) {
	c := s.fab.Costs()
	if dst == t.NodeID {
		t.Charge(sim.CatLocal, localCopyCost(size)+c.Notification/4)
	} else {
		t.Charge(sim.CatComm, s.fab.Send(t, t.NodeID, dst, size)+c.Notification)
	}
	s.fab.Counters().Add(t.NodeID, stats.EvNotifications, 1)
}
