package vmmc

import (
	"errors"
	"testing"
	"testing/quick"

	"cables/internal/fault"
	"cables/internal/san"
	"cables/internal/sim"
	"cables/internal/stats"
)

func newSys(limits Limits) *System {
	fab := san.New(4, sim.DefaultCosts(), stats.NewCounters(4))
	return NewSystem(fab, limits)
}

func TestRegisterWithinLimits(t *testing.T) {
	s := newSys(Limits{MaxRegions: 2, MaxRegisteredBytes: 100, MaxPinnedBytes: 50})
	nic := s.NIC(0)
	id1, err := nic.Register("a", 40, true, false)
	if err != nil {
		t.Fatalf("first: %v", err)
	}
	if _, err := nic.Register("b", 30, false, false); err != nil {
		t.Fatalf("second: %v", err)
	}
	if _, err := nic.Register("c", 10, false, false); !errors.Is(err, ErrRegionLimit) {
		t.Errorf("region limit: %v", err)
	}
	nic.Unregister(id1)
	if _, err := nic.Register("c", 10, false, false); err != nil {
		t.Errorf("after unregister: %v", err)
	}
	regions, reg, pin := nic.Usage()
	if regions != 2 || reg != 40 || pin != 0 {
		t.Errorf("usage: %d regions %d reg %d pin", regions, reg, pin)
	}
}

func TestRegisteredBytesLimit(t *testing.T) {
	s := newSys(Limits{MaxRegions: 10, MaxRegisteredBytes: 100, MaxPinnedBytes: 100})
	nic := s.NIC(0)
	if _, err := nic.Register("a", 80, false, false); err != nil {
		t.Fatal(err)
	}
	if _, err := nic.Register("b", 30, false, false); !errors.Is(err, ErrRegisteredLimit) {
		t.Errorf("registered limit: %v", err)
	}
}

func TestPinnedBytesLimit(t *testing.T) {
	s := newSys(Limits{MaxRegions: 10, MaxRegisteredBytes: 1000, MaxPinnedBytes: 50})
	nic := s.NIC(0)
	if _, err := nic.Register("a", 40, true, false); err != nil {
		t.Fatal(err)
	}
	if _, err := nic.Register("b", 20, true, false); !errors.Is(err, ErrPinnedLimit) {
		t.Errorf("pinned limit: %v", err)
	}
	// Unpinned registration of the same size is fine.
	if _, err := nic.Register("c", 20, false, false); err != nil {
		t.Errorf("unpinned: %v", err)
	}
}

func TestDynamicRegionsBypassLimits(t *testing.T) {
	s := newSys(Limits{MaxRegions: 1, MaxRegisteredBytes: 10, MaxPinnedBytes: 10})
	nic := s.NIC(0)
	for i := 0; i < 5; i++ {
		if _, err := nic.Register("dyn", 1<<20, false, true); err != nil {
			t.Fatalf("dynamic %d: %v", i, err)
		}
	}
	regions, reg, _ := nic.Usage()
	if regions != 0 || reg != 0 {
		t.Errorf("dynamic regions counted against limits: %d/%d", regions, reg)
	}
}

func TestGrow(t *testing.T) {
	s := newSys(Limits{MaxRegions: 4, MaxRegisteredBytes: 100, MaxPinnedBytes: 100})
	nic := s.NIC(0)
	id, err := nic.Register("home", 10, true, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := nic.Grow(id, 80); err != nil {
		t.Fatalf("grow: %v", err)
	}
	if err := nic.Grow(id, 20); !errors.Is(err, ErrRegisteredLimit) {
		t.Errorf("grow past limit: %v", err)
	}
	if err := nic.Grow(RegionID(999), 1); err == nil {
		t.Error("grow of unknown region succeeded")
	}
	if err := nic.Grow(id, -1); err == nil {
		t.Error("negative grow succeeded")
	}
}

// TestUsageNeverNegative is a property test: any sequence of register /
// unregister operations leaves non-negative usage equal to the live set.
func TestUsageNeverNegative(t *testing.T) {
	f := func(ops []uint8) bool {
		s := newSys(Limits{MaxRegions: 8, MaxRegisteredBytes: 1 << 20, MaxPinnedBytes: 1 << 20})
		nic := s.NIC(0)
		live := make(map[RegionID]int64)
		var order []RegionID
		for _, op := range ops {
			if op%2 == 0 || len(order) == 0 {
				size := int64(op) * 64
				id, err := nic.Register("x", size, op%3 == 0, false)
				if err == nil {
					live[id] = size
					order = append(order, id)
				}
			} else {
				i := int(op) % len(order)
				id := order[i]
				nic.Unregister(id)
				delete(live, id)
				order = append(order[:i], order[i+1:]...)
			}
		}
		var liveBytes int64
		for _, sz := range live {
			liveBytes += sz
		}
		regions, reg, pin := nic.Usage()
		return regions == len(live) && reg == liveBytes && pin >= 0 && pin <= reg
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestTransfersChargeCommOnlyWhenRemote(t *testing.T) {
	s := newSys(DefaultLimits())
	task := sim.NewTask(1, 0, sim.DefaultCosts())
	s.RemoteWrite(task, 0, 4096) // local: cheap memcpy
	localCost := task.Now()
	if localCost >= 10*sim.Microsecond {
		t.Errorf("local write too expensive: %v", localCost)
	}
	s.RemoteWrite(task, 1, 4096)
	if task.Snapshot()[sim.CatComm] == 0 {
		t.Error("remote write charged no comm")
	}
	s.Fetch(task, 2, 64)
	s.Notify(task, 3, 16)
	b := task.Snapshot()
	if b[sim.CatComm] < 50*sim.Microsecond {
		t.Errorf("comm total too small: %v", b[sim.CatComm])
	}
}

func TestStreamWriteHitsBandwidth(t *testing.T) {
	s := newSys(DefaultLimits())
	task := sim.NewTask(1, 0, sim.DefaultCosts())
	const size = 32 << 20
	s.StreamWrite(task, 1, size)
	mbps := float64(size) / task.Now().Seconds() / 1e6
	if mbps < 120 || mbps > 130 {
		t.Errorf("stream bandwidth: %.1f MB/s, want ~125", mbps)
	}
}

func TestNegativeRegionSizeRejected(t *testing.T) {
	s := newSys(DefaultLimits())
	if _, err := s.NIC(0).Register("bad", -5, false, false); err == nil {
		t.Error("negative size accepted")
	}
}

// TestStreamFetchHitsBandwidth mirrors the write-side pin: the pipelined
// fetch path also converges to the NIC's ~125 MB/s.
func TestStreamFetchHitsBandwidth(t *testing.T) {
	s := newSys(DefaultLimits())
	task := sim.NewTask(1, 0, sim.DefaultCosts())
	const size = 32 << 20
	s.StreamFetch(task, 1, size)
	mbps := float64(size) / task.Now().Seconds() / 1e6
	if mbps < 120 || mbps > 130 {
		t.Errorf("stream fetch bandwidth: %.1f MB/s, want ~125", mbps)
	}
}

// TestStreamFaultPenalty: transient send/fetch faults inflate a stream
// transfer (each failed attempt repeats the full transfer plus backoff)
// without changing what the counters attribute — one message, size bytes.
func TestStreamFaultPenalty(t *testing.T) {
	const size = 1 << 20
	cases := []struct {
		name string
		plan string
		op   func(s *System, task *sim.Task)
		msgs stats.Event
		byts stats.Event
		rtry stats.Event
	}{
		{"write", "send:p=1", func(s *System, task *sim.Task) { s.StreamWrite(task, 1, size) },
			stats.EvMessagesSent, stats.EvBytesSent, stats.EvSendRetries},
		{"fetch", "fetch:p=1", func(s *System, task *sim.Task) { s.StreamFetch(task, 1, size) },
			stats.EvFetches, stats.EvBytesFetched, stats.EvFetchRetries},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			clean := newSys(DefaultLimits())
			cleanTask := sim.NewTask(1, 0, sim.DefaultCosts())
			tc.op(clean, cleanTask)

			s := newSys(DefaultLimits())
			inj := fault.New(fault.MustParsePlan(tc.plan), 3)
			s.SetFault(inj)
			inj.BindCounters(s.fab.Counters())
			task := sim.NewTask(1, 0, sim.DefaultCosts())
			tc.op(s, task)

			if task.Now() <= cleanTask.Now() {
				t.Errorf("certain faults did not slow the stream: %v vs clean %v",
					task.Now(), cleanTask.Now())
			}
			ctr := s.fab.Counters()
			if got := ctr.Load(tc.msgs); got != 1 {
				t.Errorf("faulted stream attributed %d transfers, want 1", got)
			}
			if got := ctr.Load(tc.byts); got != size {
				t.Errorf("faulted stream attributed %d bytes, want %d", got, size)
			}
			if got := ctr.Load(tc.rtry); got == 0 {
				t.Error("no retries counted under a certain-failure plan")
			}
			if brk := task.Snapshot(); brk[sim.CatComm] != task.Now() {
				t.Errorf("penalty escaped CatComm: breakdown %v, clock %v",
					brk[sim.CatComm], task.Now())
			}
		})
	}
}

// TestStreamLocalBypassesWire: a same-node stream is a memory copy — no
// messages, no bytes on the wire, CatLocal only.
func TestStreamLocalBypassesWire(t *testing.T) {
	s := newSys(DefaultLimits())
	task := sim.NewTask(1, 0, sim.DefaultCosts())
	s.StreamWrite(task, 0, 1<<20)
	s.StreamFetch(task, 0, 1<<20)
	ctr := s.fab.Counters()
	if ctr.Load(stats.EvMessagesSent) != 0 || ctr.Load(stats.EvBytesFetched) != 0 {
		t.Error("local stream leaked onto the wire")
	}
	if brk := task.Snapshot(); brk[sim.CatComm] != 0 {
		t.Errorf("local stream charged CatComm %v", brk[sim.CatComm])
	}
}
