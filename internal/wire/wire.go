// Package wire is the typed operation plane for all cross-node traffic in
// the simulator.  Every message a node sends another — page fetches, diff
// flushes, write notices, notifications, lock requests and grants, barrier
// arrivals, condition-variable traffic, ACB admin requests, remote thread
// creation, node attach, page/segment migration — is expressed as a
// wire.Op and issued through one choke point, Plane.Do, which
//
//   - applies the op's cost schedule (delegating data-plane ops to
//     vmmc/san so they see NIC occupancy and latency, and charging the
//     calibrated flat communication shares for control-plane ops),
//   - consults the fault injector at exactly one site per op class, and
//   - emits the trace event and EvMessagesSent/EvBytesSent/EvWireOps
//     counters uniformly.
//
// The default cost schedule reproduces the per-site charges the layers
// used before the plane existed, so `cablesim table4` and the fig5
// checksums are bit-identical.  Two opt-in modes become possible because
// the traffic shares one path:
//
//   - Options.ContendedSync (-contended-sync): control-plane ops reserve
//     NIC occupancy like data transfers and suffer the fault plan's
//     transient send failures, exposing sync-vs-data interference.
//   - Options.Coalesce (-coalesce): the GeNIMA release "protocol opt" —
//     package genima gathers adjacent diff runs and piggybacks write
//     notices into one remote write per home (see genima.Flush).
//
// Conservation invariant: a wire trace event (kind prefix "wire.") is
// emitted exactly when the op adds its size to EvBytesSent or
// EvBytesFetched, with Arg = that size, so the per-op sizes in a trace
// ring always sum to the byte counters' total for the run.
package wire

import (
	"fmt"
	"sync/atomic"

	"cables/internal/fault"
	"cables/internal/profile"
	"cables/internal/san"
	"cables/internal/sim"
	"cables/internal/stats"
	"cables/internal/trace"
	"cables/internal/vmmc"
)

// Kind classifies wire operations.
type Kind int

// Data-plane kinds: the plane delegates their cost to vmmc/san, which model
// NIC queueing, occupancy and transient faults.
const (
	// KindFetch pulls Size bytes from the home node Dst (page fetch).
	KindFetch Kind = iota
	// KindWrite pushes Size bytes to Dst (diff flush, write notice).
	KindWrite
	// KindStream is a pipelined bulk write to Dst (bandwidth pattern).
	KindStream
	// KindStreamFetch is a pipelined bulk read from Dst.
	KindStreamFetch
	// KindNotify is a send plus receiver-side notification dispatch.
	KindNotify
	// KindMigrate re-fetches a page from its old home Dst when the home
	// moves; Arg is the page id (also emitted as a `migrate` trace event).
	KindMigrate

	// Control-plane kinds: flat calibrated communication shares (Table 4).
	// Under Options.ContendedSync they additionally queue for the NIC.

	// KindLockFirst is the registration message of a first, local acquire.
	KindLockFirst
	// KindLockRemote is a remote lock request to the manager Dst.
	KindLockRemote
	// KindLockRemoteFirst is a remote request that first registers the lock.
	KindLockRemoteFirst
	// KindLockGrant hands a released lock to the waiter Dst (DeliverAt).
	KindLockGrant
	// KindLockProbe is a failed remote trylock probe.
	KindLockProbe
	// KindBarrierArrive announces arrival to the barrier manager Dst.
	KindBarrierArrive
	// KindCondWait updates the ACB when a thread blocks on a condition.
	KindCondWait
	// KindCondSignal wakes one waiter on node Dst.
	KindCondSignal
	// KindCondBcast wakes the waiters of one remote node Dst (one op per
	// distinct node).
	KindCondBcast
	// KindAdminReq is an ACB administration request to the master Dst.
	KindAdminReq
	// KindAttach is the mapping exchange when node Src joins the cluster.
	KindAttach
	// KindThreadCreate asks node Dst to start a thread.
	KindThreadCreate
	// KindSpawn is the M4 m_fork work-dispatch message to Dst.
	KindSpawn
	// KindSegMigrate moves a segment's ACB entry off the master.
	KindSegMigrate
	// KindSegDetect is the first-touch owner-directory fetch.
	KindSegDetect
	// KindRehome redirects a lock/barrier manager off a detached node.
	KindRehome
	// KindCommMerge is the commutative protocol's batched reduction
	// merge: one remote write to home Dst carrying every merged diff of
	// the flush (data-plane; rides vmmc.RemoteWrite like KindWrite).
	KindCommMerge
	// KindDelegateReq ships a critical-section descriptor to the lock's
	// delegation server Dst; Arg is the lock id.
	KindDelegateReq
	// KindDelegateDone returns a delegated critical section's completion
	// from the server to the origin node Dst; Arg is the lock id.
	KindDelegateDone

	numKinds
)

var kindNames = [numKinds]string{
	"fetch", "write", "stream", "streamfetch", "notify", "migrate",
	"lock1", "lockr", "lockr1", "grant", "probe", "barrier",
	"cwait", "csignal", "cbcast", "admin", "attach", "tcreate",
	"spawn", "segmig", "segdet", "rehome", "merge", "delreq", "deldone",
}

// Register the plane's kind names with the profiler so SpanWire timeline
// events render as "wire.<kind>" without profile importing wire.
func init() {
	profile.WireArgName = func(arg uint64) string { return Kind(arg).String() }
}

// String names the kind (also the suffix of its trace kind).
func (k Kind) String() string {
	if k < 0 || k >= numKinds {
		return fmt.Sprintf("Kind(%d)", int(k))
	}
	return kindNames[k]
}

// traceKinds precomputes every kind's trace kind so the hot path does not
// allocate a string per op.
var traceKinds = func() (tk [numKinds]trace.Kind) {
	for k := range tk {
		tk[k] = trace.Kind("wire." + kindNames[k])
	}
	return tk
}()

// TraceKind is the trace event kind the plane emits for this op kind:
// "wire." plus the kind name.
func (k Kind) TraceKind() trace.Kind {
	if k < 0 || k >= numKinds {
		return trace.Kind("wire." + k.String())
	}
	return traceKinds[k]
}

// IsWire reports whether a trace event kind was emitted by the plane (its
// Arg is then the op's on-wire size in bytes).
func IsWire(k trace.Kind) bool {
	return len(k) > 5 && k[:5] == "wire."
}

// delegated reports whether the kind's cost comes from vmmc/san rather
// than the flat schedule.
func (k Kind) delegated() bool { return k <= KindMigrate || k == KindCommMerge }

// nominalSize is the modeled message size when the caller leaves Op.Size
// zero: control messages are small; thread-control, migration and
// critical-section-descriptor messages carry a descriptor.
func (k Kind) nominalSize() int {
	switch k {
	case KindAttach, KindThreadCreate, KindSpawn, KindSegMigrate, KindRehome,
		KindDelegateReq, KindDelegateDone:
		return 64
	default:
		return 16
	}
}

// Op is one cross-node operation.
type Op struct {
	Kind Kind
	Src  int // issuing node; Do fills it from the task
	Dst  int // peer node (home, manager, waiter, master, ...)
	Size int // payload bytes; 0 means the kind's nominal size
	Arg  uint64 // page id / lock id payload, forwarded to protocol traces
}

// Options selects the plane's opt-in modes.  The zero value reproduces the
// pre-plane behavior bit-identically.
type Options struct {
	// ContendedSync makes control-plane ops reserve NIC occupancy like
	// data traffic and suffer the fault plan's transient send failures.
	ContendedSync bool
	// Coalesce enables release coalescing in package genima: one remote
	// write per home at a release, carrying all diff runs and piggybacked
	// write notices.
	Coalesce bool
}

// Plane is the single choke point for cross-node operations.  One Plane
// serves a whole cluster; it is safe for concurrent use by all tasks.
type Plane struct {
	fab   *san.Fabric
	vm    *vmmc.System
	costs *sim.Costs
	ctr   *stats.Counters
	inj   *fault.Injector // nil = no fault injection
	opts  Options
	ring  atomic.Pointer[trace.Ring]
}

// New builds a plane over the fabric and VMMC system.
func New(fab *san.Fabric, vm *vmmc.System, opts Options) *Plane {
	return &Plane{fab: fab, vm: vm, costs: fab.Costs(), ctr: fab.Counters(), opts: opts}
}

// Options returns the plane's mode selection.
func (p *Plane) Options() Options { return p.opts }

// SetFault installs the fault injector on the whole communication stack —
// the plane itself, the SAN fabric, and VMMC with all its NICs — and binds
// the injector's counters.  This is the single wiring point that replaced
// the per-layer san.SetFault/vmmc.SetFault/BindCounters calls.  nil
// disables injection everywhere.
func (p *Plane) SetFault(inj *fault.Injector) {
	p.inj = inj
	p.fab.SetFault(inj)
	p.vm.SetFault(inj)
	if inj != nil {
		inj.BindCounters(p.ctr)
	}
}

// Fault returns the installed injector (nil when faults are disabled).
func (p *Plane) Fault() *fault.Injector { return p.inj }

// BindTrace attaches a ring; every op the plane performs is then recorded
// (kind "wire.<op>", Arg = on-wire size) alongside the protocol's own
// events.  nil detaches.
func (p *Plane) BindTrace(ring *trace.Ring) { p.ring.Store(ring) }

// trace records a wire event if a ring is attached.
func (p *Plane) trace(at sim.Time, node int, kind trace.Kind, arg uint64) {
	if r := p.ring.Load(); r != nil {
		r.Add(at, node, kind, arg)
	}
}

// Do performs op on behalf of task t, charging t the op's full cost.  Src
// is taken from the task.  It returns the communication duration charged
// for control-plane ops (0 for delegated data-plane ops, whose charge is
// applied inside vmmc/san).
func (p *Plane) Do(t *sim.Task, op Op) sim.Time {
	op.Src = t.MemNode()
	if op.Size == 0 {
		op.Size = op.Kind.nominalSize()
	}
	t.OpenSpan(uint8(profile.SpanWire), uint64(op.Kind))
	p.ctr.Add(op.Src, stats.EvWireOps, 1)
	if op.Kind.delegated() {
		p.doData(t, op)
		t.CloseSpan()
		return 0
	}
	d := p.doControl(t, op)
	t.CloseSpan()
	return d
}

// doData routes a data-plane op through vmmc (which models NIC occupancy,
// latency and faults, and bumps the message/byte counters when the op
// actually crosses nodes).
func (p *Plane) doData(t *sim.Task, op Op) {
	remote := op.Dst != op.Src
	switch op.Kind {
	case KindFetch:
		p.vm.Fetch(t, op.Dst, op.Size)
	case KindMigrate:
		p.vm.Fetch(t, op.Dst, op.Size)
		p.ctr.Add(op.Src, stats.EvPageMigrations, 1)
		p.trace(t.Now(), op.Src, trace.KindMigrate, op.Arg)
	case KindWrite, KindCommMerge:
		p.vm.RemoteWrite(t, op.Dst, op.Size)
	case KindStream:
		p.vm.StreamWrite(t, op.Dst, op.Size)
	case KindStreamFetch:
		p.vm.StreamFetch(t, op.Dst, op.Size)
	case KindNotify:
		p.vm.Notify(t, op.Dst, op.Size)
	}
	if remote {
		p.trace(t.Now(), op.Src, op.Kind.TraceKind(), uint64(op.Size))
	}
}

// doControl charges the flat calibrated communication share for a
// control-plane op.  Control messages always traverse the communication
// substrate (the ACB lives in registered memory), so the share is charged
// and the message counted even when Dst is the issuing node; under
// ContendedSync a cross-node op additionally queues for the sender's NIC
// and suffers transient send faults.
func (p *Plane) doControl(t *sim.Task, op Op) sim.Time {
	d := p.flatCost(op.Kind, op.Size)
	if p.opts.ContendedSync && op.Dst != op.Src {
		now := t.Now()
		var penalty sim.Time
		for a := 0; a < fault.MaxSendRetries && p.inj.FailSend(op.Src, op.Dst, a, now); a++ {
			penalty += p.costs.SendTime(op.Size) + fault.Backoff(a)
		}
		start := p.fab.Reserve(op.Src, now, p.costs.Occupancy(op.Size))
		d += (start - now) + penalty
	}
	t.Charge(sim.CatComm, d)
	p.count(op)
	p.trace(t.Now(), op.Src, op.Kind.TraceKind(), uint64(op.Size))
	return d
}

// DeliverAt performs a control-plane op issued at virtual instant `now` on
// behalf of node op.Src without a running task to charge — the lock-grant
// handoff, where the releaser has moved on and the waiter pays the latency
// as wait time.  It returns the delivery instant at the destination.
func (p *Plane) DeliverAt(now sim.Time, op Op) sim.Time {
	if op.Size == 0 {
		op.Size = op.Kind.nominalSize()
	}
	p.ctr.Add(op.Src, stats.EvWireOps, 1)
	d := p.flatCost(op.Kind, op.Size)
	if p.opts.ContendedSync && op.Dst != op.Src {
		start := p.fab.Reserve(op.Src, now, p.costs.Occupancy(op.Size))
		d += start - now
	}
	p.count(op)
	p.trace(now, op.Src, op.Kind.TraceKind(), uint64(op.Size))
	return now + d
}

// count attributes a control-plane message to its sender.
func (p *Plane) count(op Op) {
	p.ctr.Add(op.Src, stats.EvMessagesSent, 1)
	p.ctr.Add(op.Src, stats.EvBytesSent, int64(op.Size))
}

// flatCost is the default control-plane cost schedule: exactly the
// calibrated Table-4 communication shares the call sites charged before
// the plane existed (see DESIGN.md §3 for the full table).
func (p *Plane) flatCost(k Kind, size int) sim.Time {
	c := p.costs
	switch k {
	case KindLockFirst:
		return c.MutexLocalFirstComm
	case KindLockRemote:
		return c.MutexRemoteComm
	case KindLockRemoteFirst:
		return c.MutexRemoteComm + c.MutexRemoteFirstAdd
	case KindLockGrant, KindLockProbe:
		return c.SendTime(size)
	case KindBarrierArrive:
		return c.BarrierNativeComm
	case KindCondWait:
		return c.CondWaitComm
	case KindCondSignal:
		return c.CondSignalComm
	case KindCondBcast:
		return c.CondBcastComm
	case KindAdminReq:
		return c.AdminReqComm
	case KindAttach:
		return c.AttachComm
	case KindThreadCreate:
		return c.ThreadCreateComm
	case KindSpawn, KindRehome, KindDelegateReq, KindDelegateDone:
		return c.SendTime(size)
	case KindSegMigrate:
		return c.SegMigrateComm
	case KindSegDetect:
		return c.SegDetectFirstComm
	}
	panic(fmt.Sprintf("wire: no cost schedule for kind %v", k))
}
