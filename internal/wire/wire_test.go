package wire

import (
	"testing"

	"cables/internal/fault"
	"cables/internal/san"
	"cables/internal/sim"
	"cables/internal/stats"
	"cables/internal/trace"
	"cables/internal/vmmc"
)

// newPlane builds a 4-node plane (and its fabric/VMMC substrate) for tests.
func newPlane(opts Options) (*Plane, *stats.Counters) {
	ctr := stats.NewCounters(4)
	fab := san.New(4, sim.DefaultCosts(), ctr)
	vm := vmmc.NewSystem(fab, vmmc.DefaultLimits())
	return New(fab, vm, opts), ctr
}

func newTask(node int) *sim.Task { return sim.NewTask(0, node, sim.DefaultCosts()) }

// TestFlatSchedule pins the default control-plane cost schedule to the
// calibrated Table-4 communication shares: the plane must charge exactly
// what the call sites charged before it existed (the bit-identity
// contract behind `cablesim table4`).
func TestFlatSchedule(t *testing.T) {
	c := sim.DefaultCosts()
	cases := []struct {
		kind Kind
		want sim.Time
	}{
		{KindLockFirst, c.MutexLocalFirstComm},
		{KindLockRemote, c.MutexRemoteComm},
		{KindLockRemoteFirst, c.MutexRemoteComm + c.MutexRemoteFirstAdd},
		{KindLockGrant, c.SendTime(16)},
		{KindLockProbe, c.SendTime(16)},
		{KindBarrierArrive, c.BarrierNativeComm},
		{KindCondWait, c.CondWaitComm},
		{KindCondSignal, c.CondSignalComm},
		{KindCondBcast, c.CondBcastComm},
		{KindAdminReq, c.AdminReqComm},
		{KindAttach, c.AttachComm},
		{KindThreadCreate, c.ThreadCreateComm},
		{KindSpawn, c.SendTime(64)},
		{KindSegMigrate, c.SegMigrateComm},
		{KindSegDetect, c.SegDetectFirstComm},
		{KindRehome, c.SendTime(64)},
	}
	for _, tc := range cases {
		p, _ := newPlane(Options{})
		task := newTask(0)
		got := p.Do(task, Op{Kind: tc.kind, Dst: 1})
		if got != tc.want {
			t.Errorf("%v: charged %v, want %v", tc.kind, got, tc.want)
		}
		if brk := task.Snapshot(); brk[sim.CatComm] != tc.want {
			t.Errorf("%v: CatComm %v, want %v", tc.kind, brk[sim.CatComm], tc.want)
		}
		if task.Now() != tc.want {
			t.Errorf("%v: clock %v, want %v", tc.kind, task.Now(), tc.want)
		}
	}
}

// TestNominalSizes checks the default on-wire sizes: descriptor-carrying
// ops model 64 bytes, plain control messages 16, and an explicit Size wins.
func TestNominalSizes(t *testing.T) {
	for _, tc := range []struct {
		kind Kind
		size int
		want int64
	}{
		{KindAdminReq, 0, 16},
		{KindBarrierArrive, 0, 16},
		{KindAttach, 0, 64},
		{KindThreadCreate, 0, 64},
		{KindSpawn, 0, 64},
		{KindSegMigrate, 0, 64},
		{KindRehome, 0, 64},
		{KindAdminReq, 128, 128},
	} {
		p, ctr := newPlane(Options{})
		p.Do(newTask(0), Op{Kind: tc.kind, Dst: 1, Size: tc.size})
		if got := ctr.Load(stats.EvBytesSent); got != tc.want {
			t.Errorf("%v size %d: bytesSent %d, want %d", tc.kind, tc.size, got, tc.want)
		}
		if got := ctr.Load(stats.EvMessagesSent); got != 1 {
			t.Errorf("%v: messagesSent %d, want 1", tc.kind, got)
		}
		if got := ctr.Load(stats.EvWireOps); got != 1 {
			t.Errorf("%v: wireOps %d, want 1", tc.kind, got)
		}
	}
}

// TestDelegatedOps checks that data-plane kinds route through VMMC: fetches
// bump the fetch counters, writes the send counters, and a node-local op
// crosses no wire (no counters, no wire trace event).
func TestDelegatedOps(t *testing.T) {
	p, ctr := newPlane(Options{})
	ring := trace.NewRing(64)
	p.BindTrace(ring)

	p.Do(newTask(0), Op{Kind: KindFetch, Dst: 1, Size: 4096})
	if got := ctr.Load(stats.EvBytesFetched); got != 4096 {
		t.Errorf("fetch: bytesFetched %d, want 4096", got)
	}
	p.Do(newTask(0), Op{Kind: KindWrite, Dst: 1, Size: 256})
	if got := ctr.Load(stats.EvBytesSent); got != 256 {
		t.Errorf("write: bytesSent %d, want 256", got)
	}

	// Node-local delegated op: no traffic, no wire event.
	before := len(ring.Events())
	p.Do(newTask(1), Op{Kind: KindWrite, Dst: 1, Size: 512})
	if got := ctr.Load(stats.EvBytesSent); got != 256 {
		t.Errorf("local write leaked onto the wire: bytesSent %d, want 256", got)
	}
	if got := len(ring.Events()); got != before {
		t.Errorf("local write emitted %d wire events", got-before)
	}
}

// TestMigrateEmitsTrace checks satellite semantics of KindMigrate: the
// fetch from the old home plus a `migrate` protocol event and the
// pageMigrations counter.
func TestMigrateEmitsTrace(t *testing.T) {
	p, ctr := newPlane(Options{})
	ring := trace.NewRing(64)
	p.BindTrace(ring)
	p.Do(newTask(0), Op{Kind: KindMigrate, Dst: 2, Size: 4096, Arg: 77})
	if got := ctr.Load(stats.EvPageMigrations); got != 1 {
		t.Errorf("pageMigrations %d, want 1", got)
	}
	counts := ring.Counts()
	if counts[trace.KindMigrate] != 1 {
		t.Errorf("migrate trace events %d, want 1", counts[trace.KindMigrate])
	}
	if counts[KindMigrate.TraceKind()] != 1 {
		t.Errorf("wire.migrate trace events %d, want 1", counts[KindMigrate.TraceKind()])
	}
	var pageArg uint64
	for _, e := range ring.Events() {
		if e.Kind == trace.KindMigrate {
			pageArg = e.Arg
		}
	}
	if pageArg != 77 {
		t.Errorf("migrate event Arg %d, want page id 77", pageArg)
	}
}

// TestTraceConservation is the unit form of the plane's conservation
// invariant: the Args of wire.* trace events sum to the run's
// bytesSent+bytesFetched.
func TestTraceConservation(t *testing.T) {
	p, ctr := newPlane(Options{})
	ring := trace.NewRing(256)
	p.BindTrace(ring)
	task := newTask(0)
	ops := []Op{
		{Kind: KindFetch, Dst: 1, Size: 4096},
		{Kind: KindWrite, Dst: 2, Size: 300},
		{Kind: KindNotify, Dst: 3, Size: 8},
		{Kind: KindWrite, Dst: 0, Size: 999}, // local: neither counted nor traced
		{Kind: KindLockRemote, Dst: 1},
		{Kind: KindBarrierArrive, Dst: 0}, // control ops count even when local
		{Kind: KindAdminReq, Dst: 2, Size: 32},
		{Kind: KindMigrate, Dst: 3, Size: 4096, Arg: 5},
	}
	for _, op := range ops {
		p.Do(task, op)
	}
	var traced int64
	for _, e := range ring.Events() {
		if IsWire(e.Kind) {
			traced += int64(e.Arg)
		}
	}
	counted := ctr.Load(stats.EvBytesSent) + ctr.Load(stats.EvBytesFetched)
	if traced != counted {
		t.Errorf("conservation violated: trace Args sum to %d, counters to %d", traced, counted)
	}
	if traced == 0 {
		t.Error("no wire bytes traced; the invariant is vacuous")
	}
}

// TestDeliverAt checks the grant handoff path: deterministic delivery
// instant, message accounting, and no dependence on a running task.
func TestDeliverAt(t *testing.T) {
	p, ctr := newPlane(Options{})
	c := sim.DefaultCosts()
	now := 5 * sim.Millisecond
	at := p.DeliverAt(now, Op{Kind: KindLockGrant, Src: 1, Dst: 2, Arg: 9})
	if want := now + c.SendTime(16); at != want {
		t.Errorf("delivery at %v, want %v", at, want)
	}
	if got := ctr.Load(stats.EvMessagesSent); got != 1 {
		t.Errorf("messagesSent %d, want 1", got)
	}
	// Determinism: same instant, same op, same answer (default mode has no
	// queueing state).
	if again := p.DeliverAt(now, Op{Kind: KindLockGrant, Src: 1, Dst: 2, Arg: 9}); again != at {
		t.Errorf("DeliverAt not deterministic: %v then %v", at, again)
	}
}

// TestContendedSyncQueues checks the opt-in mode: back-to-back control ops
// from one node queue for the NIC, so the second delivery is later — and
// that with the mode off the plane has no such state.
func TestContendedSyncQueues(t *testing.T) {
	p, _ := newPlane(Options{ContendedSync: true})
	now := sim.Millisecond
	first := p.DeliverAt(now, Op{Kind: KindLockGrant, Src: 0, Dst: 1, Size: 8 << 10})
	second := p.DeliverAt(now, Op{Kind: KindLockGrant, Src: 0, Dst: 2, Size: 8 << 10})
	if second <= first {
		t.Errorf("no NIC queueing under -contended-sync: first %v, second %v", first, second)
	}

	off, _ := newPlane(Options{})
	a := off.DeliverAt(now, Op{Kind: KindLockGrant, Src: 0, Dst: 1, Size: 8 << 10})
	b := off.DeliverAt(now, Op{Kind: KindLockGrant, Src: 0, Dst: 2, Size: 8 << 10})
	if a != b {
		t.Errorf("default mode queued sync traffic: %v then %v", a, b)
	}
}

// TestContendedSyncFaults checks the injector is consulted for control ops
// only under -contended-sync: a certain-failure send plan inflates the
// charged duration and counts retries in contended mode, and is ignored
// (bit-identity contract) in default mode.
func TestContendedSyncFaults(t *testing.T) {
	plan := fault.MustParsePlan("send:p=1")

	p, ctr := newPlane(Options{ContendedSync: true})
	p.SetFault(fault.New(plan, 42))
	base := sim.DefaultCosts().MutexRemoteComm
	d := p.Do(newTask(0), Op{Kind: KindLockRemote, Dst: 1})
	if d <= base {
		t.Errorf("certain send failure did not inflate the op: charged %v, base %v", d, base)
	}
	if got := ctr.Load(stats.EvSendRetries); got == 0 {
		t.Error("no send retries counted under -contended-sync")
	}

	off, offCtr := newPlane(Options{})
	off.SetFault(fault.New(plan, 42))
	if d := off.Do(newTask(0), Op{Kind: KindLockRemote, Dst: 1}); d != base {
		t.Errorf("default mode consulted the injector for a control op: charged %v, want %v", d, base)
	}
	if got := offCtr.Load(stats.EvSendRetries); got != 0 {
		t.Errorf("default mode counted %d send retries for a control op", got)
	}
}

// TestSetFaultWiresWholeStack checks the single wiring point: one SetFault
// call must arm the delegated data path (vmmc/san) too.
func TestSetFaultWiresWholeStack(t *testing.T) {
	p, ctr := newPlane(Options{})
	inj := fault.New(fault.MustParsePlan("fetch:p=1"), 7)
	p.SetFault(inj)
	if p.Fault() != inj {
		t.Fatal("Fault() does not return the installed injector")
	}
	p.Do(newTask(0), Op{Kind: KindFetch, Dst: 1, Size: 4096})
	if got := ctr.Load(stats.EvFetchRetries); got == 0 {
		t.Error("fetch faults not armed through SetFault; per-layer wiring is back")
	}
	if inj.Injected() == 0 {
		t.Error("injector observed no faults")
	}
}

// TestKindNames pins the Kind/trace-kind mapping the observability docs
// promise.
func TestKindNames(t *testing.T) {
	if got := KindFetch.TraceKind(); got != trace.Kind("wire.fetch") {
		t.Errorf("KindFetch trace kind %q", got)
	}
	if got := KindBarrierArrive.TraceKind(); got != trace.Kind("wire.barrier") {
		t.Errorf("KindBarrierArrive trace kind %q", got)
	}
	for k := Kind(0); k < numKinds; k++ {
		if k.String() == "" {
			t.Errorf("kind %d has no name", int(k))
		}
		if !IsWire(k.TraceKind()) {
			t.Errorf("IsWire(%v) = false", k.TraceKind())
		}
	}
	if IsWire(trace.KindMigrate) || IsWire(trace.KindLock) {
		t.Error("IsWire claims protocol events")
	}
}
